(* Benchmark harness: regenerates EVERY table and figure of the paper's
   evaluation (Sections VI/VII) and runs Bechamel micro-benchmarks of the
   hot CHEx86 hardware structures.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- figure6   # one target
     dune exec bench/main.exe -- --jobs 4 figure6   # parallel sweep
     CHEX86_SCALE=2 dune exec bench/main.exe
     CHEX86_WORKLOADS=mcf,canneal dune exec bench/main.exe -- figure6

   --jobs N sizes the domain pool the sweeps shard over (default:
   recommended_domain_count - 1; --jobs 1 is the exact serial path;
   results are bit-identical at any job count). --batch-size N groups
   tasks into chunks of N per dispatch (default: auto, about four
   chunks per worker); results are bit-identical at any batch size
   too. Sweeps are supervised:
   a crashing or wedged task degrades its cells to FAULTED/TIMEOUT
   instead of killing the run (--retries N / --task-timeout S bound
   each task; --strict flips the exit code when anything faulted), and
   completed runs checkpoint to _chex86_cache/ so an interrupted
   invocation resumes where it stopped (--cache-dir / --no-cache). The
   per-experiment index mapping each target to the paper's table or
   figure lives in DESIGN.md; EXPERIMENTS.md records the
   paper-vs-measured comparison of a full run. *)

module Experiments = Chex86_harness.Experiments
module Pool = Chex86_harness.Pool

(* --- Bechamel micro-benchmarks of the added hardware structures -------- *)

let microbench_tests () =
  let open Bechamel in
  let counters = Chex86_stats.Counter.create_group () in
  (* capability cache: steady-state access over 96 live PIDs *)
  let cap_cache = Chex86.Cap_cache.create ~entries:64 counters in
  let cap_i = ref 0 in
  let cap_cache_access =
    Test.make ~name:"cap_cache.access (64-entry FA)"
      (Staged.stage (fun () ->
           incr cap_i;
           ignore (Chex86.Cap_cache.access cap_cache (1 + (!cap_i mod 96)))))
  in
  (* alias predictor: predict + update on a strided PID stream *)
  let predictor = Chex86.Alias_predictor.create counters in
  let pred_i = ref 0 in
  let predictor_cycle =
    Test.make ~name:"alias_predictor.predict+update"
      (Staged.stage (fun () ->
           incr pred_i;
           let pc = 0x400000 + ((!pred_i mod 64) * 4) in
           ignore (Chex86.Alias_predictor.predict predictor pc);
           Chex86.Alias_predictor.update predictor pc ~actual:(1 + (!pred_i mod 32))))
  in
  (* 5-level shadow alias table walk *)
  let alias_table = Chex86.Alias_table.create counters in
  for i = 0 to 1023 do
    Chex86.Alias_table.set alias_table (0x10000000 + (i * 8)) (1 + (i mod 64))
  done;
  let walk_i = ref 0 in
  let alias_walk =
    Test.make ~name:"alias_table.walk (5-level)"
      (Staged.stage (fun () ->
           incr walk_i;
           ignore
             (Chex86.Alias_table.get alias_table (0x10000000 + (!walk_i mod 1024 * 8)))))
  in
  (* rule database lookup per micro-op *)
  let rules = Chex86.Rules.create () in
  let uops =
    [|
      Chex86_isa.Uop.Mov { dst = Greg RAX; src = Greg RBX };
      Chex86_isa.Uop.Alu
        { op = Chex86_isa.Insn.Add; dst = Greg RAX; src1 = Greg RAX; src2 = Imm 8 };
      Chex86_isa.Uop.Load
        {
          dst = Greg RAX;
          mem = Chex86_isa.Insn.mem_of_reg RBX;
          width = Chex86_isa.Insn.W64;
        };
      Chex86_isa.Uop.Limm { dst = Greg RAX; imm = 42 };
    |]
  in
  let rule_i = ref 0 in
  let rule_lookup =
    Test.make ~name:"rules.action_for (Table I lookup)"
      (Staged.stage (fun () ->
           incr rule_i;
           ignore (Chex86.Rules.action_for rules uops.(!rule_i land 3))))
  in
  (* decoder crack *)
  let insns =
    [|
      Chex86_isa.Insn.Mov (W64, Reg RAX, Mem (Chex86_isa.Insn.mem_of_reg RBX));
      Chex86_isa.Insn.Alu (Add, Mem (Chex86_isa.Insn.mem_of_reg RBX), Reg RAX);
      Chex86_isa.Insn.Push (Reg RAX);
      Chex86_isa.Insn.Call (Label "f");
    |]
  in
  let dec_i = ref 0 in
  let decode =
    Test.make ~name:"decoder.decode (CISC->uop crack)"
      (Staged.stage (fun () ->
           incr dec_i;
           ignore (Chex86_isa.Decoder.decode insns.(!dec_i land 3))))
  in
  (* tracker propagate + commit *)
  let tracker = Chex86.Tracker.create () in
  let trk_i = ref 0 in
  let tracker_cycle =
    Test.make ~name:"tracker.set+commit"
      (Staged.stage (fun () ->
           incr trk_i;
           let seq = Chex86.Tracker.next_seq tracker in
           Chex86.Tracker.set_pid tracker (Greg RAX) ~seq ~pid:(!trk_i mod 7);
           Chex86.Tracker.commit_upto tracker ~seq))
  in
  [ cap_cache_access; predictor_cycle; alias_walk; rule_lookup; decode; tracker_cycle ]

let run_microbenches () =
  let open Bechamel in
  print_endline (Chex86_stats.Render.banner "Bechamel micro-benchmarks (hot structures)");
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          let ns = match Analyze.OLS.estimates est with Some (t :: _) -> t | _ -> nan in
          Printf.printf "%-40s %10.1f ns/op\n%!" (Test.Elt.name elt) ns)
        (Test.elements test))
    (microbench_tests ())

(* --- simulated-machine throughput --------------------------------------- *)

let run_throughput () =
  print_endline (Chex86_stats.Render.banner "Simulator throughput");
  let w = Chex86_workloads.Workloads.find "mcf" in
  List.iter
    (fun (name, config) ->
      let t0 = Pool.now () in
      let run = Chex86_harness.Runner.run_program config (w.build ~scale:1) in
      let dt = Pool.now () -. t0 in
      Printf.printf "%-40s %8.0f kinsn/s (%d macro-ops in %.2fs)\n%!" name
        (float_of_int run.Chex86_harness.Runner.macro_insns /. dt /. 1000.)
        run.Chex86_harness.Runner.macro_insns dt)
    [
      ("insecure baseline", Chex86_harness.Runner.insecure);
      ("CHEx86 prediction-driven", Chex86_harness.Runner.prediction);
      ("ASan", Chex86_harness.Runner.Asan);
    ]

(* --- BENCH_<n>.json benchmark trajectory --------------------------------- *)

(* `bench` times simulated macro-instructions per second for each
   (workload, variant) pair and appends an atomically written
   BENCH_<n>.json snapshot (next free index) so successive PRs leave a
   perf trajectory to defend.  When an earlier snapshot exists, any pair
   whose insns/sec drops by more than CHEX86_BENCH_MAX_REGRESS (default
   0.20; set to 1 to disable) fails the run with exit 1 — the snapshot is
   still written first so the regression is inspectable. *)

module Json = Chex86_stats.Json
module Runner = Chex86_harness.Runner

let bench_variants =
  [
    ("insecure", Runner.insecure);
    ("chex86", Runner.prediction);
    ("always_on", Runner.Chex (Chex86.Variant.make Chex86.Variant.Microcode_always_on));
    ("asan", Runner.Asan);
  ]

let default_bench_workloads = [ "mcf"; "canneal"; "freqmine" ]

let bench_workloads () =
  match Sys.getenv_opt "CHEX86_WORKLOADS" with
  | None | Some "" -> List.map Chex86_workloads.Workloads.find default_bench_workloads
  | Some _ -> Experiments.workloads ()

let env_float name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> (
    match float_of_string_opt s with
    | Some f -> f
    | None ->
      Printf.eprintf "%s: not a number: %S\n" name s;
      exit 1)

let bench_min_seconds () = env_float "CHEX86_BENCH_MIN_SECONDS" 0.5
let bench_max_regress () = env_float "CHEX86_BENCH_MAX_REGRESS" 0.20
let bench_dir () = Option.value (Sys.getenv_opt "CHEX86_BENCH_DIR") ~default:"."

(* Snapshot files are BENCH_<n>.json in [dir]; returns the highest index
   present, with its path. *)
let latest_snapshot dir =
  let best = ref None in
  (try
     Array.iter
       (fun f ->
         if
           String.length f > 11
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json"
         then
           match int_of_string_opt (String.sub f 6 (String.length f - 11)) with
           | Some n when (match !best with Some (m, _) -> n > m | None -> true) ->
             best := Some (n, Filename.concat dir f)
           | _ -> ())
       (Sys.readdir dir)
   with Sys_error _ -> ());
  !best

(* One timed (workload, variant) cell: repeat fresh end-to-end runs until
   the accumulated simulation time crosses the minimum window, then
   report aggregate macro-insns/sec. *)
let measure_pair (w : Chex86_workloads.Bench_spec.t) config =
  let program = w.build ~scale:Experiments.scale in
  let min_seconds = bench_min_seconds () in
  let runs = ref 0
  and insns = ref 0
  and uops = ref 0
  and cycles = ref 0
  and seconds = ref 0. in
  while !seconds < min_seconds || !runs < 2 do
    let t0 = Pool.now () in
    let r = Runner.run_program config program in
    seconds := !seconds +. (Pool.now () -. t0);
    incr runs;
    insns := !insns + r.Runner.macro_insns;
    uops := !uops + r.Runner.uops;
    cycles := r.Runner.cycles
  done;
  let rate = float_of_int !insns /. !seconds in
  (`Runs !runs, `Insns !insns, `Uops !uops, `Cycles !cycles, `Seconds !seconds, `Rate rate)

let atomic_write_json path (doc : Json.t) =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

(* The previous snapshot's insns/sec per (workload, variant). *)
let rates_of_snapshot path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  match Json.of_string body with
  | Error e ->
    Printf.eprintf "bench: unreadable snapshot %s: %s\n" path e;
    []
  | Ok doc -> (
    match Json.member "results" doc with
    | Some (Json.List entries) ->
      List.filter_map
        (fun e ->
          match
            ( Option.bind (Json.member "workload" e) Json.to_string_opt,
              Option.bind (Json.member "variant" e) Json.to_string_opt,
              Option.bind (Json.member "insns_per_sec" e) Json.to_float_opt )
          with
          | Some w, Some v, Some r -> Some ((w, v), r)
          | _ -> None)
        entries
    | _ -> [])

let run_bench () =
  (* A live chex86d scheduling sweeps into the same store would both
     skew the measurement and race the snapshot trajectory; refuse
     rather than publish a BENCH_<n>.json taken under contention. *)
  let store_root =
    match Chex86_harness.Runner.Store.dir () with
    | Some d -> d
    | None -> Chex86_harness.Runner.Store.default_dir
  in
  (match Chex86_harness.Daemon.lock_holder ~store_root with
  | Some pid ->
    Printf.eprintf
      "bench: a chex86d daemon (pid %d) holds the store lock on %s; stop it (or \
       point --cache-dir elsewhere) before benchmarking\n\
       %!"
      pid store_root;
    exit 1
  | None -> ());
  (* The de-allocated cycle core leaves a small, short-lived allocation
     profile; an 8 MW minor heap keeps what remains from being promoted
     (and then major-collected) inside the measured window. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  let dir = bench_dir () in
  let prev = latest_snapshot dir in
  let index = match prev with Some (n, _) -> n + 1 | None -> 1 in
  let workloads = bench_workloads () in
  let results =
    List.concat_map
      (fun (w : Chex86_workloads.Bench_spec.t) ->
        List.map
          (fun (vname, config) ->
            let ( `Runs runs,
                  `Insns insns,
                  `Uops uops,
                  `Cycles cycles,
                  `Seconds seconds,
                  `Rate rate ) =
              measure_pair w config
            in
            Printf.printf "%-12s %-10s %10.0f insn/s (%d run(s), %.2fs)\n%!" w.name
              vname rate runs seconds;
            ( (w.name, vname),
              Json.Obj
                [
                  ("workload", Json.String w.name);
                  ("variant", Json.String vname);
                  ("runs", Json.Int runs);
                  ("macro_insns", Json.Int insns);
                  ("uops", Json.Int uops);
                  ("cycles", Json.Int cycles);
                  ("seconds", Json.Float seconds);
                  ("insns_per_sec", Json.Float rate);
                ],
              rate ))
          bench_variants)
      workloads
  in
  let path = Filename.concat dir (Printf.sprintf "BENCH_%d.json" index) in
  let doc =
    Json.Obj
      [
        ("schema", Json.String "chex86-bench-v1");
        ("index", Json.Int index);
        ("scale", Json.Int Experiments.scale);
        ("unix_time", Json.Float (Unix.time ()));
        ("hostname", Json.String (Unix.gethostname ()));
        ("min_seconds", Json.Float (bench_min_seconds ()));
        ("results", Json.List (List.map (fun (_, obj, _) -> obj) results));
      ]
  in
  atomic_write_json path doc;
  Printf.printf "[wrote %s]\n%!" path;
  (* Trajectory gate: compare against the previous snapshot. *)
  (match prev with
  | None -> ()
  | Some (pn, ppath) ->
    let old_rates = rates_of_snapshot ppath in
    let tolerance = bench_max_regress () in
    let regressions =
      List.filter_map
        (fun (key, _, rate) ->
          match List.assoc_opt key old_rates with
          | Some old_rate when old_rate > 0. && rate < (1. -. tolerance) *. old_rate ->
            Some (key, rate /. old_rate)
          | _ -> None)
        results
    in
    List.iter
      (fun ((w, v), ratio) ->
        Printf.eprintf
          "bench: REGRESSION %s/%s at %.2fx of BENCH_%d.json (floor %.2fx)\n%!" w v
          ratio pn (1. -. tolerance))
      regressions;
    if regressions <> [] then exit 1);
  ""

(* --- driver -------------------------------------------------------------- *)

let targets =
  Experiments.all
  @ Chex86_harness.Ablations.all
  @ [ ("multicore", Chex86_harness.Multicore.report) ]
  @ [
      ( "microbench",
        fun () ->
          run_microbenches ();
          "" );
      ( "throughput",
        fun () ->
          run_throughput ();
          "" );
      ("bench", run_bench);
    ]

let () =
  (* Cli.parse_common strips the sweep flags (--jobs, --strict,
     --retries, --task-timeout, --cache-dir, ...) and applies them to
     the process-wide knobs; whatever remains are target names. *)
  let requested = Chex86_harness.Cli.parse_common (List.tl (Array.to_list Sys.argv)) in
  let chosen =
    if requested = [] then List.map fst targets
    else begin
      List.iter
        (fun name ->
          if not (List.mem_assoc name targets) then begin
            Printf.eprintf "unknown target %S; available: %s\nflags:\n%s\n" name
              (String.concat ", " (List.map fst targets))
              Chex86_harness.Cli.common_flags_doc;
            exit 1
          end)
        requested;
      requested
    end
  in
  (match Chex86_harness.Remote.spec () with
  | Chex86_harness.Remote.Off ->
    Printf.printf "[domain pool: %d job(s)]\n%!" (Pool.jobs ())
  | Chex86_harness.Remote.Spawn n ->
    Printf.printf "[worker processes: %d spawned, heartbeat %.0fs]\n%!" n
      (Chex86_harness.Remote.heartbeat ())
  | Chex86_harness.Remote.Peers peers ->
    Printf.printf "[worker peers: %s, heartbeat %.0fs]\n%!"
      (String.concat ", "
         (List.map (fun (h, p) -> Printf.sprintf "%s:%d" h p) peers))
      (Chex86_harness.Remote.heartbeat ()));
  List.iter
    (fun name ->
      let t0 = Pool.now () in
      (* One span per bench target, so trace-summary can break a full
         regeneration down by table/figure. *)
      let out =
        Chex86_harness.Trace.with_span ~stage:"target" [ ("name", name) ]
          (List.assoc name targets)
      in
      if out <> "" then print_endline out;
      Printf.printf "[%s: %.1fs]\n\n%!" name (Pool.now () -. t0))
    chosen;
  Chex86_harness.Cli.exit_for_faults ()
