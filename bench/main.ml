(* Benchmark harness: regenerates EVERY table and figure of the paper's
   evaluation (Sections VI/VII) and runs Bechamel micro-benchmarks of the
   hot CHEx86 hardware structures.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- figure6   # one target
     dune exec bench/main.exe -- --jobs 4 figure6   # parallel sweep
     CHEX86_SCALE=2 dune exec bench/main.exe
     CHEX86_WORKLOADS=mcf,canneal dune exec bench/main.exe -- figure6

   --jobs N sizes the domain pool the sweeps shard over (default:
   recommended_domain_count - 1; --jobs 1 is the exact serial path;
   results are bit-identical at any job count). --batch-size N groups
   tasks into chunks of N per dispatch (default: auto, about four
   chunks per worker); results are bit-identical at any batch size
   too. Sweeps are supervised:
   a crashing or wedged task degrades its cells to FAULTED/TIMEOUT
   instead of killing the run (--retries N / --task-timeout S bound
   each task; --strict flips the exit code when anything faulted), and
   completed runs checkpoint to _chex86_cache/ so an interrupted
   invocation resumes where it stopped (--cache-dir / --no-cache). The
   per-experiment index mapping each target to the paper's table or
   figure lives in DESIGN.md; EXPERIMENTS.md records the
   paper-vs-measured comparison of a full run. *)

module Experiments = Chex86_harness.Experiments
module Pool = Chex86_harness.Pool

(* --- Bechamel micro-benchmarks of the added hardware structures -------- *)

let microbench_tests () =
  let open Bechamel in
  let counters = Chex86_stats.Counter.create_group () in
  (* capability cache: steady-state access over 96 live PIDs *)
  let cap_cache = Chex86.Cap_cache.create ~entries:64 counters in
  let cap_i = ref 0 in
  let cap_cache_access =
    Test.make ~name:"cap_cache.access (64-entry FA)"
      (Staged.stage (fun () ->
           incr cap_i;
           ignore (Chex86.Cap_cache.access cap_cache (1 + (!cap_i mod 96)))))
  in
  (* alias predictor: predict + update on a strided PID stream *)
  let predictor = Chex86.Alias_predictor.create counters in
  let pred_i = ref 0 in
  let predictor_cycle =
    Test.make ~name:"alias_predictor.predict+update"
      (Staged.stage (fun () ->
           incr pred_i;
           let pc = 0x400000 + ((!pred_i mod 64) * 4) in
           ignore (Chex86.Alias_predictor.predict predictor pc);
           Chex86.Alias_predictor.update predictor pc ~actual:(1 + (!pred_i mod 32))))
  in
  (* 5-level shadow alias table walk *)
  let alias_table = Chex86.Alias_table.create counters in
  for i = 0 to 1023 do
    Chex86.Alias_table.set alias_table (0x10000000 + (i * 8)) (1 + (i mod 64))
  done;
  let walk_i = ref 0 in
  let alias_walk =
    Test.make ~name:"alias_table.walk (5-level)"
      (Staged.stage (fun () ->
           incr walk_i;
           ignore
             (Chex86.Alias_table.get alias_table (0x10000000 + (!walk_i mod 1024 * 8)))))
  in
  (* rule database lookup per micro-op *)
  let rules = Chex86.Rules.create () in
  let uops =
    [|
      Chex86_isa.Uop.Mov { dst = Greg RAX; src = Greg RBX };
      Chex86_isa.Uop.Alu
        { op = Chex86_isa.Insn.Add; dst = Greg RAX; src1 = Greg RAX; src2 = Imm 8 };
      Chex86_isa.Uop.Load
        {
          dst = Greg RAX;
          mem = Chex86_isa.Insn.mem_of_reg RBX;
          width = Chex86_isa.Insn.W64;
        };
      Chex86_isa.Uop.Limm { dst = Greg RAX; imm = 42 };
    |]
  in
  let rule_i = ref 0 in
  let rule_lookup =
    Test.make ~name:"rules.action_for (Table I lookup)"
      (Staged.stage (fun () ->
           incr rule_i;
           ignore (Chex86.Rules.action_for rules uops.(!rule_i land 3))))
  in
  (* decoder crack *)
  let insns =
    [|
      Chex86_isa.Insn.Mov (W64, Reg RAX, Mem (Chex86_isa.Insn.mem_of_reg RBX));
      Chex86_isa.Insn.Alu (Add, Mem (Chex86_isa.Insn.mem_of_reg RBX), Reg RAX);
      Chex86_isa.Insn.Push (Reg RAX);
      Chex86_isa.Insn.Call (Label "f");
    |]
  in
  let dec_i = ref 0 in
  let decode =
    Test.make ~name:"decoder.decode (CISC->uop crack)"
      (Staged.stage (fun () ->
           incr dec_i;
           ignore (Chex86_isa.Decoder.decode insns.(!dec_i land 3))))
  in
  (* tracker propagate + commit *)
  let tracker = Chex86.Tracker.create () in
  let trk_i = ref 0 in
  let tracker_cycle =
    Test.make ~name:"tracker.set+commit"
      (Staged.stage (fun () ->
           incr trk_i;
           let seq = Chex86.Tracker.next_seq tracker in
           Chex86.Tracker.set_pid tracker (Greg RAX) ~seq ~pid:(!trk_i mod 7);
           Chex86.Tracker.commit_upto tracker ~seq))
  in
  [ cap_cache_access; predictor_cycle; alias_walk; rule_lookup; decode; tracker_cycle ]

let run_microbenches () =
  let open Bechamel in
  print_endline (Chex86_stats.Render.banner "Bechamel micro-benchmarks (hot structures)");
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          let ns = match Analyze.OLS.estimates est with Some (t :: _) -> t | _ -> nan in
          Printf.printf "%-40s %10.1f ns/op\n%!" (Test.Elt.name elt) ns)
        (Test.elements test))
    (microbench_tests ())

(* --- simulated-machine throughput --------------------------------------- *)

let run_throughput () =
  print_endline (Chex86_stats.Render.banner "Simulator throughput");
  let w = Chex86_workloads.Workloads.find "mcf" in
  List.iter
    (fun (name, config) ->
      let t0 = Pool.now () in
      let run = Chex86_harness.Runner.run_program config (w.build ~scale:1) in
      let dt = Pool.now () -. t0 in
      Printf.printf "%-40s %8.0f kinsn/s (%d macro-ops in %.2fs)\n%!" name
        (float_of_int run.Chex86_harness.Runner.macro_insns /. dt /. 1000.)
        run.Chex86_harness.Runner.macro_insns dt)
    [
      ("insecure baseline", Chex86_harness.Runner.insecure);
      ("CHEx86 prediction-driven", Chex86_harness.Runner.prediction);
      ("ASan", Chex86_harness.Runner.Asan);
    ]

(* --- driver -------------------------------------------------------------- *)

let targets =
  Experiments.all
  @ Chex86_harness.Ablations.all
  @ [ ("multicore", Chex86_harness.Multicore.report) ]
  @ [
      ( "microbench",
        fun () ->
          run_microbenches ();
          "" );
      ( "throughput",
        fun () ->
          run_throughput ();
          "" );
    ]

let () =
  (* Cli.parse_common strips the sweep flags (--jobs, --strict,
     --retries, --task-timeout, --cache-dir, ...) and applies them to
     the process-wide knobs; whatever remains are target names. *)
  let requested = Chex86_harness.Cli.parse_common (List.tl (Array.to_list Sys.argv)) in
  let chosen =
    if requested = [] then List.map fst targets
    else begin
      List.iter
        (fun name ->
          if not (List.mem_assoc name targets) then begin
            Printf.eprintf "unknown target %S; available: %s\nflags:\n%s\n" name
              (String.concat ", " (List.map fst targets))
              Chex86_harness.Cli.common_flags_doc;
            exit 1
          end)
        requested;
      requested
    end
  in
  (match Chex86_harness.Remote.spec () with
  | Chex86_harness.Remote.Off ->
    Printf.printf "[domain pool: %d job(s)]\n%!" (Pool.jobs ())
  | Chex86_harness.Remote.Spawn n ->
    Printf.printf "[worker processes: %d spawned, heartbeat %.0fs]\n%!" n
      (Chex86_harness.Remote.heartbeat ())
  | Chex86_harness.Remote.Peers peers ->
    Printf.printf "[worker peers: %s, heartbeat %.0fs]\n%!"
      (String.concat ", "
         (List.map (fun (h, p) -> Printf.sprintf "%s:%d" h p) peers))
      (Chex86_harness.Remote.heartbeat ()));
  List.iter
    (fun name ->
      let t0 = Pool.now () in
      (* One span per bench target, so trace-summary can break a full
         regeneration down by table/figure. *)
      let out =
        Chex86_harness.Trace.with_span ~stage:"target" [ ("name", name) ]
          (List.assoc name targets)
      in
      if out <> "" then print_endline out;
      Printf.printf "[%s: %.1fs]\n\n%!" name (Pool.now () -. t0))
    chosen;
  Chex86_harness.Cli.exit_for_faults ()
