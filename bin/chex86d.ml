(* chex86d: the persistent sweep daemon.  All the common sweep flags
   (--jobs, --workers/--worker, --cache-dir, --heartbeat, --trace, …)
   come through Cli.parse_common and configure the dispatch stack the
   daemon schedules onto; the flags below configure the daemon itself.

   Diagnostics go to stderr; the one-line serving banner on stdout is
   the readiness signal smoke drivers wait for. *)

module H = Chex86_harness

let usage () =
  prerr_endline
    "usage: chex86d [common flags] [--port N] [--frame-port N]\n\
    \               [--queue-limit N] [--client-inflight N] [--volatile]\n\
     \n\
     daemon flags:\n\
    \  --port N             JSON control port on 127.0.0.1 (default 7860)\n\
    \  --frame-port N       also serve the framed worker protocol on this port\n\
    \  --queue-limit N      queued-job cap before REJECTED busy (default 64)\n\
    \  --client-inflight N  per-client queued+running cap (default 16)\n\
    \  --volatile           skip the write-ahead journal (no crash recovery)\n\
     \n\
     common flags:";
  prerr_endline H.Cli.common_flags_doc;
  exit 2

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "chex86d: %s\n%!" msg;
      exit 1)
    fmt

let parse_port what s =
  match int_of_string_opt s with
  | Some p when p > 0 && p < 65536 -> p
  | _ -> die "invalid %s %S (want 1..65535)" what s

let parse_pos what s =
  match int_of_string_opt s with
  | Some n when n > 0 -> n
  | _ -> die "invalid %s %S (want a positive integer)" what s

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* The daemon executes jobs itself when no fleet is configured, and
     its frame port can serve other supervisors — so it registers every
     kind a worker does. *)
  H.Security.register_remote ();
  H.Runner.register_remote ();
  H.Daemon.register_test_kinds ();
  let rest = H.Cli.parse_common (List.tl (Array.to_list Sys.argv)) in
  let store_root =
    match H.Runner.Store.dir () with
    | Some d -> d
    | None -> H.Runner.Store.default_dir
  in
  let cfg = ref (H.Daemon.default_config ~port:7860 ~store_root) in
  let rec parse = function
    | [] -> ()
    | ("--help" | "-h") :: _ -> usage ()
    | "--port" :: v :: rest ->
      cfg := { !cfg with H.Daemon.port = parse_port "--port" v };
      parse rest
    | "--frame-port" :: v :: rest ->
      cfg := { !cfg with H.Daemon.frame_port = Some (parse_port "--frame-port" v) };
      parse rest
    | "--queue-limit" :: v :: rest ->
      cfg := { !cfg with H.Daemon.queue_limit = parse_pos "--queue-limit" v };
      parse rest
    | "--client-inflight" :: v :: rest ->
      cfg := { !cfg with H.Daemon.client_inflight = parse_pos "--client-inflight" v };
      parse rest
    | "--volatile" :: rest ->
      cfg := { !cfg with H.Daemon.volatile = true };
      parse rest
    | arg :: _ -> die "unknown argument %S (try --help)" arg
  in
  parse rest;
  match H.Daemon.serve !cfg with
  | () -> ()
  | exception Failure msg -> die "%s" msg
