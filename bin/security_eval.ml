(* security_eval: run the three exploit suites (RIPE, ASan tests,
   How2Heap) against a protection configuration and print the Section
   VII-A summary plus a per-exploit listing for the named suites.

   --jobs N shards the sweep over N worker domains (default: recommended
   domain count - 1; results are bit-identical at any job count).
   --batch-size N dispatches the exploits in chunks of N (default:
   auto-sized, about four chunks per worker); results are bit-identical
   at any batch size. The sweep is supervised: a crashing or wedged
   evaluation is reported and the rest — including the faulted task's
   chunk-mates — completes (--retries / --task-timeout bound each task;
   --strict makes any fault flip the exit code). --workers N moves the
   sweep into N spawned worker processes (--worker HOST:PORT for TCP
   peers): same results, but a wedged evaluation is killed at the
   --heartbeat deadline instead of holding a domain forever. *)

module Runner = Chex86_harness.Runner
module Security = Chex86_harness.Security
module Pool = Chex86_harness.Pool
module Cli = Chex86_harness.Cli
module Exploit = Chex86_exploits.Exploit

let parse_args () =
  let verbose = ref false in
  let rec go = function
    | [] -> ()
    | ("-v" | "--verbose") :: rest ->
      verbose := true;
      go rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %S (expected --verbose plus:)\n%s\n" arg
        Cli.common_flags_doc;
      exit 1
  in
  go (Cli.parse_common (List.tl (Array.to_list Sys.argv)));
  !verbose

let () =
  let verbose = parse_args () in
  let slots, _stats, report =
    (* Root span: groups the suite sweep (and any retries inside it)
       under one top-level node in trace-summary output. *)
    Chex86_harness.Trace.with_span ~stage:"security-eval"
      [ ("exploits", string_of_int (List.length Chex86_exploits.Exploits.all)) ]
      (fun () -> Security.sweep_stats_supervised Chex86_exploits.Exploits.all)
  in
  let results = List.filter_map (fun (_, r) -> Result.to_option r) slots in
  if verbose then
    List.iter
      (fun (r : Security.result) ->
        if r.exploit.Exploit.suite <> Exploit.Ripe then begin
          let status =
            match r.under_protection.Runner.outcome with
            | Runner.Blocked kind -> "blocked: " ^ Chex86.Violation.to_string kind
            | Runner.Completed -> "NOT DETECTED"
            | Runner.Aborted msg -> "allocator abort: " ^ msg
            | Runner.Faulted msg -> "fault: " ^ msg
            | Runner.Budget_exhausted -> "budget exhausted"
          in
          Printf.printf "%-34s %s\n" r.exploit.Exploit.name status
        end)
      results;
  List.iter
    (fun suite ->
      let s = Security.summarize suite results in
      Printf.printf "%-16s %4d exploits, %4d blocked, %4d with the expected class\n"
        (Exploit.suite_name suite) s.Security.total s.Security.blocked
        s.Security.expected_class)
    [ Exploit.Ripe; Exploit.Asan_suite; Exploit.How2heap ];
  let total = List.length results in
  let blocked = List.length (List.filter Security.blocked results) in
  Printf.printf "\n%d/%d exploits blocked under CHEx86 (micro-code prediction driven)\n"
    blocked total;
  if report.Pool.crashed + report.Pool.timed_out + report.Pool.worker_lost > 0
     || report.Pool.worker_losses > 0
  then print_endline (Pool.render_fault_report report);
  Cli.exit_for_faults ();
  if blocked < total then exit 1
