(* security_eval: run the three exploit suites (RIPE, ASan tests,
   How2Heap) against a protection configuration and print the Section
   VII-A summary plus a per-exploit listing for the named suites.

   --jobs N shards the sweep over N worker domains (default: recommended
   domain count - 1; results are bit-identical at any job count).
   --batch-size N dispatches the exploits in chunks of N (default:
   auto-sized, about four chunks per worker); results are bit-identical
   at any batch size. The sweep is supervised: a crashing or wedged
   evaluation is reported and the rest — including the faulted task's
   chunk-mates — completes (--retries / --task-timeout bound each task;
   --strict makes any fault flip the exit code). --workers N moves the
   sweep into N spawned worker processes (--worker HOST:PORT for TCP
   peers): same results, but a wedged evaluation is killed at the
   --heartbeat deadline instead of holding a domain forever. *)

module Runner = Chex86_harness.Runner
module Security = Chex86_harness.Security
module Pool = Chex86_harness.Pool
module Cli = Chex86_harness.Cli
module Exploit = Chex86_exploits.Exploit
module Campaign = Chex86_exploits.Campaign

type opts = {
  verbose : bool;
  campaign_matrix : bool;
  matrix_out : string option;
  matrix_seed : int;
  matrix_per_family : int;
}

let parse_args () =
  let verbose = ref false in
  let campaign_matrix = ref false in
  let matrix_out = ref None in
  let matrix_seed = ref 1 in
  let matrix_per_family = ref 12 in
  let usage =
    "expected --verbose, --campaign-matrix [--matrix-out FILE] [--matrix-seed N] \
     [--matrix-per-family N] plus:"
  in
  let rec go = function
    | [] -> ()
    | ("-v" | "--verbose") :: rest ->
      verbose := true;
      go rest
    | "--campaign-matrix" :: rest ->
      campaign_matrix := true;
      go rest
    | "--matrix-out" :: file :: rest ->
      matrix_out := Some file;
      go rest
    | "--matrix-seed" :: n :: rest ->
      matrix_seed := int_of_string n;
      go rest
    | "--matrix-per-family" :: n :: rest ->
      matrix_per_family := int_of_string n;
      go rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %S (%s)\n%s\n" arg usage Cli.common_flags_doc;
      exit 1
  in
  go (Cli.parse_common (List.tl (Array.to_list Sys.argv)));
  {
    verbose = !verbose;
    campaign_matrix = !campaign_matrix;
    matrix_out = !matrix_out;
    matrix_seed = !matrix_seed;
    matrix_per_family = !matrix_per_family;
  }

(* The three matrix columns of the campaign evaluation: no protection,
   microcode always-on, and the prediction-driven scheme. *)
let matrix_configs =
  [
    Runner.insecure;
    Runner.Chex (Chex86.Variant.make Chex86.Variant.Microcode_always_on);
    Runner.prediction;
  ]

let run_campaign_matrix opts =
  let campaigns =
    Campaign.corpus ~seed:opts.matrix_seed ~per_family:opts.matrix_per_family
  in
  let matrix =
    Chex86_harness.Trace.with_span ~stage:"campaign-matrix"
      [ ("campaigns", string_of_int (List.length campaigns)) ]
      (fun () -> Security.campaign_matrix ~configs:matrix_configs campaigns)
  in
  print_string (Security.render_matrix matrix);
  let json = Chex86_stats.Json.to_string (Security.matrix_to_json matrix) ^ "\n" in
  (match opts.matrix_out with
  | Some file ->
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc json)
  | None -> ());
  Cli.exit_for_faults ()

let () =
  let opts = parse_args () in
  if opts.campaign_matrix then begin
    run_campaign_matrix opts;
    exit 0
  end;
  let verbose = opts.verbose in
  let slots, _stats, report =
    (* Root span: groups the suite sweep (and any retries inside it)
       under one top-level node in trace-summary output. *)
    Chex86_harness.Trace.with_span ~stage:"security-eval"
      [ ("exploits", string_of_int (List.length Chex86_exploits.Exploits.all)) ]
      (fun () -> Security.sweep_stats_supervised Chex86_exploits.Exploits.all)
  in
  let results = List.filter_map (fun (_, r) -> Result.to_option r) slots in
  if verbose then
    List.iter
      (fun (r : Security.result) ->
        if r.exploit.Exploit.suite <> Exploit.Ripe then begin
          let status =
            match r.under_protection.Runner.outcome with
            | Runner.Blocked kind -> "blocked: " ^ Chex86.Violation.to_string kind
            | Runner.Completed -> "NOT DETECTED"
            | Runner.Aborted msg -> "allocator abort: " ^ msg
            | Runner.Faulted msg -> "fault: " ^ msg
            | Runner.Budget_exhausted -> "budget exhausted"
          in
          Printf.printf "%-34s %s\n" r.exploit.Exploit.name status
        end)
      results;
  List.iter
    (fun suite ->
      let s = Security.summarize suite results in
      Printf.printf "%-16s %4d exploits, %4d blocked, %4d with the expected class\n"
        (Exploit.suite_name suite) s.Security.total s.Security.blocked
        s.Security.expected_class)
    [ Exploit.Ripe; Exploit.Asan_suite; Exploit.How2heap ];
  let total = List.length results in
  let blocked = List.length (List.filter Security.blocked results) in
  Printf.printf "\n%d/%d exploits blocked under CHEx86 (micro-code prediction driven)\n"
    blocked total;
  if report.Pool.crashed + report.Pool.timed_out + report.Pool.worker_lost > 0
     || report.Pool.worker_losses > 0
  then print_endline (Pool.render_fault_report report);
  Cli.exit_for_faults ();
  if blocked < total then exit 1
