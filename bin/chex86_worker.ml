(* Remote sweep worker: one process per worker slot, driven by the
   supervisor in Chex86_harness.Remote over stdio (socketpair) or TCP.

   In --stdio mode stdout IS the frame channel, so nothing here may
   print to it; diagnostics go to stderr. *)

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* Register the task kinds this binary can execute; the supervisor
     ships only (kind, key, arg) strings, never code. *)
  Chex86_harness.Security.register_remote ();
  Chex86_harness.Runner.register_remote ();
  (* daemon.sleep: chex86d soak jobs must be runnable on fleet workers
     too, so every worker binary registers the daemon's test kinds. *)
  Chex86_harness.Daemon.register_test_kinds ();
  (* Named fault points (CHEX86_FAULT_POINT) arm from the inherited
     environment so the chaos soak can kill store operations inside
     workers too; the per-chunk key plan still arrives over the wire
     and is armed by Remote per chunk. Malformed values are fatal here
     exactly as in the supervisor binaries. *)
  (match Chex86_harness.Faultinject.arm_from_env () with
  | Ok _ -> ()
  | Error msg ->
    Printf.eprintf "chex86_worker: %s\n%!" msg;
    exit 2);
  (* --trace FILE gives this worker a local span file of its own; it
     then opts out of shipping spans back to the supervisor (the
     explicit file sink takes precedence over collection). Without it,
     spans are collected and piggybacked on Chunk_done whenever the
     supervisor's request asks for them. *)
  let args =
    match Array.to_list Sys.argv with
    | exe :: "--trace" :: file :: rest when file <> "" ->
      Chex86_harness.Trace.set_src (Printf.sprintf "w%d" (Unix.getpid ()));
      Chex86_harness.Trace.set_output (Some file);
      exe :: rest
    | args -> args
  in
  match args with
  | [ _; "--stdio" ] ->
    Chex86_harness.Remote.Worker.serve ~input:Unix.stdin ~output:Unix.stdout
  | [ _; "--listen"; port ] -> (
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 -> Chex86_harness.Remote.Worker.listen ~port:p
    | _ ->
      Printf.eprintf "chex86_worker: invalid port %S\n%!" port;
      exit 2)
  | _ ->
    prerr_endline "usage: chex86_worker [--trace FILE] (--stdio | --listen PORT)";
    exit 2
