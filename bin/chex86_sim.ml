(* chex86_sim: run a benchmark workload on the simulated CHEx86 machine.

     chex86_sim run --workload mcf --variant prediction --scale 1
     chex86_sim list
     chex86_sim experiment figure6

   The [experiment] subcommand regenerates any single table/figure of the
   paper (the bench executable regenerates all of them). *)

open Cmdliner
module Runner = Chex86_harness.Runner

let variant_of_string = function
  | "insecure" -> Ok Runner.insecure
  | "hardware" -> Ok (Runner.Chex (Chex86.Variant.make Chex86.Variant.Hardware_only))
  | "bt" -> Ok (Runner.Chex (Chex86.Variant.make Chex86.Variant.Binary_translation))
  | "always-on" ->
    Ok (Runner.Chex (Chex86.Variant.make Chex86.Variant.Microcode_always_on))
  | "prediction" -> Ok Runner.prediction
  | "asan" -> Ok Runner.Asan
  | s -> Error (`Msg (Printf.sprintf "unknown variant %S" s))

let variant_conv =
  Arg.conv
    ( variant_of_string,
      fun ppf c -> Format.pp_print_string ppf (Runner.config_name c) )

let preset_conv =
  Arg.conv
    ( (fun s ->
        match Chex86_machine.Preset.find s with
        | Some p -> Ok p
        | None ->
          Error
            (`Msg
               (Printf.sprintf "unknown --cpu preset %S (available: %s)" s
                  (String.concat ", " (Chex86_machine.Preset.names ()))))),
      fun ppf p -> Format.pp_print_string ppf p.Chex86_machine.Preset.name )

let cpu_arg =
  Arg.(
    value
    & opt preset_conv Chex86_machine.Preset.skylake
    & info [ "cpu" ] ~docv:"PRESET"
        ~doc:
          "Named \xc2\xb5arch preset (skylake | nehalem | tiny): core widths/queues, \
           cache geometry and replacement policy, monitor-structure sizing. \
           The preset digest is part of every result-store key.")

let workload_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Benchmark workload to run.")

let variant_arg =
  Arg.(
    value
    & opt variant_conv Runner.prediction
    & info [ "v"; "variant" ] ~docv:"VARIANT"
        ~doc:
          "Protection configuration: insecure | hardware | bt | always-on | \
           prediction | asan.")

let scale_arg =
  Arg.(value & opt int 1 & info [ "s"; "scale" ] ~docv:"N" ~doc:"Workload scale factor.")

(* Integer >= [min], rejected with a one-line message otherwise (plain
   [Arg.int] happily accepts negative job counts). *)
let bounded_int_conv ~what ~min =
  Arg.conv
    ( (fun s ->
        match int_of_string_opt s with
        | Some n when n >= min -> Ok n
        | _ ->
          Error
            (`Msg (Printf.sprintf "invalid %s value %S (expected an integer >= %d)" what s min))),
      Format.pp_print_int )

let pos_float_conv ~what =
  Arg.conv
    ( (fun s ->
        match float_of_string_opt s with
        | Some f when f > 0. -> Ok f
        | _ ->
          Error (`Msg (Printf.sprintf "invalid %s value %S (expected seconds > 0)" what s))),
      Format.pp_print_float )

(* Shared by the sweeping subcommands: size of the domain pool. Results
   are bit-identical at any job count; --jobs 1 is the exact serial
   path. *)
let jobs_arg =
  Arg.(
    value
    & opt (bounded_int_conv ~what:"--jobs" ~min:1) (Chex86_harness.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains to shard simulations over (default: \
           recommended domain count - 1; 1 = serial).")

let batch_size_arg =
  Arg.(
    value
    & opt (some (bounded_int_conv ~what:"--batch-size" ~min:1)) None
    & info [ "batch-size" ] ~docv:"N"
        ~doc:
          "Tasks per dispatched chunk (default: auto-sized to about four \
           chunks per worker). Results are bit-identical at any batch size.")

(* Supervision and result-store knobs of the sweeping subcommands
   (mirrors bench/main.exe; see DESIGN.md "Sweep supervision"). *)
let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Exit 1 if any supervised task faulted; unknown CHEX86_WORKLOADS names \
           become errors.")

let keep_going_arg =
  Arg.(
    value & flag
    & info [ "keep-going" ] ~doc:"Report faults and continue (the default).")

let retries_arg =
  Arg.(
    value
    & opt (bounded_int_conv ~what:"--retries" ~min:0) 0
    & info [ "retries" ] ~docv:"N" ~doc:"Retry budget per faulted task (default 0).")

let task_timeout_arg =
  Arg.(
    value
    & opt (some (pos_float_conv ~what:"--task-timeout")) None
    & info [ "task-timeout" ] ~docv:"SECONDS"
        ~doc:"Per-task wall budget, enforced cooperatively.")

let cache_dir_arg =
  Arg.(
    value
    & opt string Runner.Store.default_dir
    & info [ "cache-dir" ] ~docv:"DIR" ~doc:"On-disk result store location.")

let no_cache_arg =
  Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the on-disk result store.")

let bytes_conv =
  Arg.conv
    ( (fun s -> Result.map_error (fun m -> `Msg m) (Chex86_harness.Cli.parse_bytes s)),
      Format.pp_print_int )

let store_max_bytes_arg =
  Arg.(
    value
    & opt (some bytes_conv) None
    & info [ "store-max-bytes" ] ~docv:"BYTES"
        ~doc:
          "Result-store size budget with oldest-first eviction (K/M/G suffixes \
           accepted; entries used by the running sweep are never evicted). \
           Default: no eviction.")

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write structured span events (JSONL) to $(docv); inspect with \
           $(b,chex86_sim trace-summary). Off by default; merged sweep stats \
           are bit-identical either way.")

let metrics_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Dump the merged sweep counters and histograms to $(docv) as one \
           JSON object at exit.")

(* Apply the sweep knobs to the process-wide state, arming the
   fault-injection plan from the environment like the other binaries. *)
let apply_sweep_knobs jobs batch_size strict _keep_going retries task_timeout cache_dir
    no_cache store_max_bytes trace_file metrics_file =
  let module Pool = Chex86_harness.Pool in
  Pool.set_jobs jobs;
  Pool.set_batch_size batch_size;
  Pool.set_strict strict;
  Pool.set_retries retries;
  Pool.set_task_timeout task_timeout;
  if no_cache then Runner.Store.disable () else Runner.Store.configure ~dir:cache_dir;
  Runner.Store.set_max_bytes store_max_bytes;
  Chex86_harness.Trace.set_output trace_file;
  Chex86_harness.Trace.set_metrics metrics_file;
  match Chex86_harness.Faultinject.arm_from_env () with
  | Ok _ -> ()
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 1

let counters_arg =
  Arg.(value & flag & info [ "counters" ] ~doc:"Dump all event counters after the run.")

let print_run name config (run : Runner.run) ~dump_counters =
  Printf.printf "workload:      %s\n" name;
  Printf.printf "configuration: %s\n" (Runner.config_name config);
  (match run.outcome with
  | Runner.Completed -> Printf.printf "outcome:       completed\n"
  | Runner.Blocked kind ->
    Printf.printf "outcome:       blocked (%s)\n" (Chex86.Violation.to_string kind)
  | Runner.Aborted msg -> Printf.printf "outcome:       allocator abort (%s)\n" msg
  | Runner.Faulted msg -> Printf.printf "outcome:       guest fault (%s)\n" msg
  | Runner.Budget_exhausted -> Printf.printf "outcome:       instruction budget exhausted\n");
  Printf.printf "macro insns:   %d\n" run.macro_insns;
  Printf.printf "micro-ops:     %d (%d injected, %d killed)\n" run.uops run.uops_injected
    run.uops_killed;
  Printf.printf "cycles:        %d (IPC %.2f)\n" run.cycles
    (if run.cycles = 0 then 0.
     else float_of_int run.macro_insns /. float_of_int run.cycles);
  Printf.printf "resident:      %d KB (+%d KB shadow)\n" (run.resident_bytes / 1024)
    (run.shadow_bytes / 1024);
  Printf.printf "DRAM traffic:  %d KB\n" (run.mem_bytes / 1024);
  if dump_counters then begin
    print_newline ();
    List.iter
      (fun (name, v) -> Printf.printf "%-40s %d\n" name v)
      (Chex86_stats.Counter.to_list run.counters)
  end

let run_cmd =
  let run cpu workload config scale dump_counters =
    Chex86_machine.Preset.set cpu;
    match
      List.find_opt
        (fun (w : Chex86_workloads.Bench_spec.t) -> w.name = workload)
        Chex86_workloads.Workloads.all
    with
    | None ->
      Printf.eprintf "unknown workload %S; try `chex86_sim list`\n" workload;
      exit 1
    | Some w ->
      let result = Runner.run_workload ~scale config w in
      print_run workload config result ~dump_counters
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload under a protection configuration.")
    Term.(const run $ cpu_arg $ workload_arg $ variant_arg $ scale_arg $ counters_arg)

let list_cmd =
  let list () =
    List.iter
      (fun (w : Chex86_workloads.Bench_spec.t) ->
        Printf.printf "%-14s %-12s %s\n" w.name
          (Chex86_workloads.Bench_spec.suite_name w.suite)
          w.description)
      Chex86_workloads.Workloads.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available workloads.") Term.(const list $ const ())

let experiment_cmd =
  let targets = Chex86_harness.Experiments.all @ Chex86_harness.Ablations.all in
  let names = List.map fst targets in
  let experiment cpu jobs batch_size strict keep_going retries task_timeout cache_dir
      no_cache store_max_bytes trace_file metrics_file name =
    Chex86_machine.Preset.set cpu;
    apply_sweep_knobs jobs batch_size strict keep_going retries task_timeout cache_dir
      no_cache store_max_bytes trace_file metrics_file;
    match List.assoc_opt name targets with
    | Some f ->
      print_endline (f ());
      Chex86_harness.Cli.exit_for_faults ()
    | None ->
      Printf.eprintf "unknown experiment %S (one of: %s)\n" name
        (String.concat ", " names);
      exit 1
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate one of the paper's tables/figures (figure1..9, table1..4, security).")
    Term.(
      const experiment $ cpu_arg $ jobs_arg $ batch_size_arg $ strict_arg $ keep_going_arg
      $ retries_arg $ task_timeout_arg $ cache_dir_arg $ no_cache_arg
      $ store_max_bytes_arg $ trace_file_arg $ metrics_file_arg $ name_arg)

(* Print the instrumented micro-op stream of a workload's first N
   macro-ops: what the decoder cracked and what the microcode
   customization unit injected (cf. examples/microcode_view.ml). *)
let uops_cmd =
  let trace workload count =
    match
      List.find_opt
        (fun (w : Chex86_workloads.Bench_spec.t) -> w.name = workload)
        Chex86_workloads.Workloads.all
    with
    | None ->
      Printf.eprintf "unknown workload %S; try `chex86_sim list`\n" workload;
      exit 1
    | Some w ->
      let module Machine = Chex86_machine in
      let proc = Chex86_os.Process.load (w.build ~scale:1) in
      let hooks = Machine.Hooks.none () in
      let sim = Machine.Simulator.create ~hooks proc in
      let monitor =
        Chex86.Monitor.create ~proc ~hier:(Machine.Simulator.hierarchy sim) ()
      in
      Chex86.Monitor.install monitor hooks;
      let remaining = ref count in
      let inner = hooks.Machine.Hooks.instrument in
      hooks.Machine.Hooks.instrument <-
        (fun ctx uops ->
          let out = inner ctx uops in
          if !remaining > 0 then begin
            decr remaining;
            let describe =
              match (ctx.Machine.Hooks.insn, ctx.Machine.Hooks.stub) with
              | _, Some (name, Machine.Hooks.Entry) -> Printf.sprintf "<%s>" name
              | _, Some (name, Machine.Hooks.Exit) -> Printf.sprintf "<%s ret>" name
              | Some insn, None -> Format.asprintf "%a" Chex86_isa.Insn.pp insn
              | None, None -> "<?>"
            in
            Printf.printf "%#x  %-32s " ctx.Machine.Hooks.pc describe;
            List.iter
              (fun uop ->
                let s = Format.asprintf "%a" Chex86_isa.Uop.pp uop in
                if Chex86_isa.Uop.is_injected uop then Printf.printf "[+%s] " s
                else Printf.printf "%s; " s)
              out;
            print_newline ()
          end;
          out);
      ignore (Machine.Simulator.run_functional ~max_insns:(count * 4) sim)
  in
  let count_arg =
    Arg.(value & opt int 40 & info [ "n" ] ~docv:"N" ~doc:"Macro-ops to trace.")
  in
  Cmd.v
    (Cmd.info "uops"
       ~doc:"Print the instrumented micro-op stream of a workload's first macro-ops.")
    Term.(const trace $ workload_arg $ count_arg)

(* Aggregate a --trace span file into per-stage latency histograms and a
   per-source utilization table. *)
let trace_summary_cmd =
  let summary file =
    match Chex86_harness.Trace.summarize_file file with
    | Ok rendered -> print_endline rendered
    | Error msg ->
      Printf.eprintf "trace-summary: %s\n" msg;
      exit 1
  in
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "trace-summary"
       ~doc:
         "Summarize a --trace JSONL file: per-stage latency percentiles and \
          per-worker utilization. Exits 1 on parse or structural errors.")
    Term.(const summary $ file_arg)

(* Trace-driven frontend: feed an external access trace (cachetrace
   text or uoptrace JSONL) to the cache hierarchy / timing pipeline of
   the selected preset, with optional per-access CSV. *)
let trace_frontend_cmd =
  let module Frontend = Chex86_frontend in
  let module Machine = Chex86_machine in
  let module Counter = Chex86_stats.Counter in
  let module Render = Chex86_stats.Render in
  let run cpu format file csv =
    Machine.Preset.set cpu;
    let preset = cpu in
    let counters = Counter.create_group () in
    let hier =
      Chex86_mem.Hierarchy.create ~config:preset.Machine.Preset.hier counters
    in
    let ic =
      match file with
      | None | Some "-" -> stdin
      | Some f -> (
        try open_in f
        with Sys_error msg ->
          Printf.eprintf "trace: %s\n" msg;
          exit 1)
    in
    let read_line () = try Some (input_line ic) with End_of_file -> None in
    let csv_oc =
      match csv with
      | None -> None
      | Some f -> (
        try Some (open_out f)
        with Sys_error msg ->
          Printf.eprintf "trace: %s\n" msg;
          exit 1)
    in
    let close_csv () = match csv_oc with Some oc -> close_out oc | None -> () in
    let fail msg =
      close_csv ();
      Printf.eprintf "trace: %s\n" msg;
      exit 1
    in
    let pct x = Printf.sprintf "%.2f%%" (100. *. x) in
    (match format with
    | `Cachetrace -> (
      match Frontend.Cachetrace.run ?csv:csv_oc ~counters hier read_line with
      | Error msg -> fail msg
      | Ok s ->
        let open Frontend.Cachetrace in
        print_endline
          (Render.table
             ~header:[ "metric"; "value" ]
             [
               [ "preset"; Machine.Preset.id preset ];
               [ "accesses"; string_of_int s.accesses ];
               [ "reads"; string_of_int s.reads ];
               [ "writes"; string_of_int s.writes ];
               [ "L1 hits"; string_of_int s.l1_hits ];
               [ "L2 hits"; string_of_int s.l2_hits ];
               [ "memory"; string_of_int s.misses ];
               [ "miss rate"; pct (miss_rate s) ];
               [ "avg latency"; Printf.sprintf "%.1f cycles" (avg_latency s) ];
               [ "DRAM traffic"; Printf.sprintf "%d B" s.mem_bytes ];
               [ "writebacks"; Printf.sprintf "%d B" s.writeback_bytes ];
             ]))
    | `Uoptrace -> (
      match Frontend.Uoptrace.read read_line with
      | Error msg -> fail msg
      | Ok records ->
        let pipeline =
          Machine.Pipeline.create ~config:preset.Machine.Preset.core hier counters
        in
        let observe =
          match csv_oc with
          | None -> None
          | Some oc ->
            output_string oc "seq,pc,op,cycles\n";
            Some
              (fun ~seq (r : Frontend.Uoptrace.record) ~cycles ->
                Printf.fprintf oc "%d,0x%x,%s,%d\n" seq r.Frontend.Uoptrace.pc
                  (Frontend.Uoptrace.op_name r.Frontend.Uoptrace.op)
                  cycles)
        in
        Frontend.Uoptrace.replay ?observe ~pipeline records;
        let cycles = Machine.Pipeline.cycles pipeline in
        let uops = Counter.get counters "pipeline.uops" in
        print_endline
          (Render.table
             ~header:[ "metric"; "value" ]
             [
               [ "preset"; Machine.Preset.id preset ];
               [ "records"; string_of_int (List.length records) ];
               [ "uops"; string_of_int uops ];
               [ "cycles"; string_of_int cycles ];
               [
                 "uops/cycle";
                 (if cycles = 0 then "-"
                  else Printf.sprintf "%.2f" (float_of_int uops /. float_of_int cycles));
               ];
               [
                 "branch flushes";
                 string_of_int (Counter.get counters "pipeline.branch_flushes");
               ];
               [
                 "L1d miss rate";
                 (let h = Counter.get counters "l1d.hit"
                  and m = Counter.get counters "l1d.miss" in
                  if h + m = 0 then "-"
                  else pct (float_of_int m /. float_of_int (h + m)));
               ];
               [ "DRAM traffic"; Printf.sprintf "%d B" (Chex86_mem.Hierarchy.mem_bytes hier) ];
               [
                 "writebacks";
                 Printf.sprintf "%d B" (Chex86_mem.Hierarchy.writeback_bytes hier);
               ];
             ])));
    close_csv ();
    if ic != stdin then close_in ic
  in
  let format_conv =
    Arg.conv
      ( (function
         | "cachetrace" -> Ok `Cachetrace
         | "uoptrace" -> Ok `Uoptrace
         | s ->
           Error (`Msg (Printf.sprintf "unknown --format %S (cachetrace | uoptrace)" s))),
        fun ppf f ->
          Format.pp_print_string ppf
            (match f with `Cachetrace -> "cachetrace" | `Uoptrace -> "uoptrace") )
  in
  let format_arg =
    Arg.(
      value
      & opt format_conv `Cachetrace
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Trace format: $(b,cachetrace) (R 0xADDR / W 0xADDR lines) or \
             $(b,uoptrace) (self-describing \xc2\xb5op JSONL).")
  in
  let file_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Trace file; omit or use - for stdin.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write one CSV row per access to $(docv).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Simulate an external access trace against a \xc2\xb5arch preset's cache \
          hierarchy (and, for uoptrace input, its timing pipeline).")
    Term.(const run $ cpu_arg $ format_arg $ file_arg $ csv_arg)

let trace_gen_cmd =
  let gen format seed n =
    match format with
    | `Cachetrace -> print_string (Chex86_frontend.Gen.cachetrace ~seed ~n ())
    | `Uoptrace ->
      Chex86_frontend.Uoptrace.write stdout (Chex86_frontend.Gen.uoptrace ~seed ~n ())
  in
  let format_conv =
    Arg.conv
      ( (function
         | "cachetrace" -> Ok `Cachetrace
         | "uoptrace" -> Ok `Uoptrace
         | s ->
           Error (`Msg (Printf.sprintf "unknown --format %S (cachetrace | uoptrace)" s))),
        fun ppf f ->
          Format.pp_print_string ppf
            (match f with `Cachetrace -> "cachetrace" | `Uoptrace -> "uoptrace") )
  in
  let format_arg =
    Arg.(value & opt format_conv `Cachetrace & info [ "format" ] ~docv:"FORMAT")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Deterministic LCG seed.")
  in
  let n_arg =
    Arg.(
      value & opt int 10000 & info [ "count"; "n" ] ~docv:"N" ~doc:"Records to generate.")
  in
  Cmd.v
    (Cmd.info "trace-gen"
       ~doc:
         "Emit a deterministic synthetic trace (same seed, same bytes) for \
          smoke tests and goldens.")
    Term.(const gen $ format_arg $ seed_arg $ n_arg)

let presets_cmd =
  let show () =
    let module P = Chex86_machine.Preset in
    print_endline
      (Chex86_stats.Render.table
         ~header:[ "name"; "id"; "description" ]
         (List.map (fun p -> [ p.P.name; P.id p; p.P.description ]) P.all))
  in
  Cmd.v
    (Cmd.info "presets" ~doc:"List the registered \xc2\xb5arch presets and their ids.")
    Term.(const show $ const ())

(* Offline maintenance of the on-disk result store: stats / gc / fsck.
   These operate on an explicit directory and never require a sweep. *)
let store_cmd =
  let store_dir_arg =
    Arg.(
      value
      & opt string Runner.Store.default_dir
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Result store location.")
  in
  let require_dir dir =
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      Printf.eprintf "store: no such store directory %S\n" dir;
      exit 1
    end
  in
  let stats_cmd =
    let stats dir =
      require_dir dir;
      let s = Runner.Store.disk_stats ~dir in
      Printf.printf "entries:            %d (%d bytes)\n" s.Runner.Store.d_entries
        s.Runner.Store.d_bytes;
      Printf.printf "legacy v1 entries:  %d\n" s.Runner.Store.d_v1;
      Printf.printf "in-flight tmp:      %d\n" s.Runner.Store.d_tmp;
      Printf.printf "quarantine backlog: %d\n" s.Runner.Store.d_quarantine
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Report entry/byte counts for a store directory.")
      Term.(const stats $ store_dir_arg)
  in
  let gc_cmd =
    let gc dir max_bytes =
      require_dir dir;
      let r = Runner.Store.gc ~dir ?max_bytes () in
      Printf.printf "tmp reclaimed:      %d\n" r.Runner.Store.g_tmp_reclaimed;
      Printf.printf "evicted:            %d (%d bytes)\n" r.Runner.Store.g_evicted
        r.Runner.Store.g_evicted_bytes;
      Printf.printf "remaining:          %d entries (%d bytes)\n"
        r.Runner.Store.g_entries r.Runner.Store.g_bytes
    in
    let max_bytes_arg =
      Arg.(
        value
        & opt (some bytes_conv) None
        & info [ "store-max-bytes" ] ~docv:"BYTES"
            ~doc:"Evict oldest-first down to this budget (K/M/G suffixes accepted).")
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:
           "Reclaim stale tmp files and (with $(b,--store-max-bytes)) evict \
            oldest-first down to a size budget.")
      Term.(const gc $ store_dir_arg $ max_bytes_arg)
  in
  let fsck_cmd =
    let fsck dir out =
      require_dir dir;
      let r = Runner.Store.fsck ~dir in
      let body = Chex86_stats.Json.to_string (Runner.Store.fsck_json r) in
      (match out with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc body;
            output_char oc '\n'));
      Printf.printf "scanned:            %d entries (%d ok, %d legacy v1, %d bytes)\n"
        r.Runner.Store.f_scanned r.Runner.Store.f_ok r.Runner.Store.f_v1
        r.Runner.Store.f_bytes;
      Printf.printf "tmp:                %d pending, %d reclaimed\n"
        r.Runner.Store.f_tmp_pending r.Runner.Store.f_tmp_reclaimed;
      Printf.printf "quarantined:        %d now, %d backlog\n"
        r.Runner.Store.f_quarantined r.Runner.Store.f_quarantine_backlog;
      if Runner.Store.fsck_clean r then print_endline "verdict:            clean"
      else begin
        Printf.printf "verdict:            %d invariant violation(s)\n"
          (List.length r.Runner.Store.f_issues);
        List.iter
          (fun i ->
            Printf.printf "  %s: %s\n" i.Runner.Store.f_path i.Runner.Store.f_problem)
          r.Runner.Store.f_issues;
        exit 1
      end
    in
    let out_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "out" ] ~docv:"FILE" ~doc:"Also write the report to $(docv) as JSON.")
    in
    Cmd.v
      (Cmd.info "fsck"
         ~doc:
           "Verify every store invariant (entry digests, shard placement, \
            foreign files); quarantine corrupt entries and reclaim stale tmp \
            files so a second run comes back clean. Exits 1 on violations.")
      Term.(const fsck $ store_dir_arg $ out_arg)
  in
  Cmd.group
    (Cmd.info "store" ~doc:"Inspect and maintain the on-disk result store.")
    [ stats_cmd; gc_cmd; fsck_cmd ]

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "chex86_sim" ~version:"1.0.0"
             ~doc:"CHEx86 capability-hardware simulator")
          [
            run_cmd;
            list_cmd;
            experiment_cmd;
            uops_cmd;
            trace_frontend_cmd;
            trace_gen_cmd;
            presets_cmd;
            trace_summary_cmd;
            store_cmd;
          ]))
