(** RISC-style micro-ops produced by the decoder and injected by the
    microcode customization unit. *)

type loc = Greg of Reg.t | Xreg of int | Tmp of int
type src = Loc of loc | Imm of int
type branch_kind = Jump | Cond of Insn.cond | Call | Ret | Indirect

(** Capability micro-ops (Section IV-C). [pid] 0 = untracked, -1 = wild. *)
type cap =
  | Cap_gen_begin
  | Cap_gen_end
  | Cap_check of { mutable pid : int; mem : Insn.mem; width : Insn.width; is_store : bool }
      (** [pid] is mutable so decode-time memos can re-tag a cached
          check in place rather than re-splice the crack per PID
          change. *)
  | Cap_free_begin of { pid : int }
  | Cap_free_end of { pid : int }

(** Software-check micro-ops for the ASan and binary-translation baselines. *)
type guard_kind =
  | Shadow_addr_calc
  | Shadow_load
  | Shadow_compare
  | Bt_bounds_low
  | Bt_bounds_high

type guard = { kind : guard_kind; mem : Insn.mem; width : Insn.width; is_store : bool }

type t =
  | Mov of { dst : loc; src : loc }
  | Limm of { dst : loc; imm : int }
  | Alu of { op : Insn.alu; dst : loc; src1 : loc; src2 : src }
  | Lea of { dst : loc; mem : Insn.mem }
  | Load of { dst : loc; mem : Insn.mem; width : Insn.width }
  | Store of { src : src; mem : Insn.mem; width : Insn.width }
  | Fp of { op : Insn.fpop; dst : loc; src : loc }
  | Cvt of { dst : loc; src : loc; to_fp : bool }
  | Cmp of { src1 : loc; src2 : src; is_test : bool }
  | Branch of { kind : branch_kind; target : Insn.target option }
  | Cap of cap
  | Guard of guard
  | Nop

(** Functional-unit classes matching the pools of Table III. *)
type fu_class = FU_int | FU_mult | FU_fp | FU_load | FU_store | FU_branch | FU_none

val fu_class : t -> fu_class

(** Base latency in cycles, excluding dynamic memory-hierarchy latency. *)
val latency : t -> int

(** [(mem, width, is_store)] for micro-ops touching program memory. *)
val mem_operand : t -> (Insn.mem * Insn.width * bool) option

val is_memory : t -> bool

(** Locations read / written, for dependence tracking. *)
val reads : t -> loc list

val writes : t -> loc option

(** True for [Cap]/[Guard] micro-ops added on top of the native crack. *)
val is_injected : t -> bool

val pp_loc : Format.formatter -> loc -> unit
val pp_src : Format.formatter -> src -> unit
val pp : Format.formatter -> t -> unit
