(* RISC-style micro-ops.

   Macro instructions are cracked into these by the decoder; the microcode
   customization unit (and the ASan / binary-translation baselines) inject
   additional [Cap]/[Guard] micro-ops into the stream at decode time.

   Micro-ops name architectural locations directly ([Greg]/[Xreg]) plus
   two decoder temporaries ([Tmp]) used by load-op and load-op-store
   cracks, mirroring how the paper's Fig 5(f) cracks `inc (%rax)` into
   ld/add/st through a temporary. *)

type loc = Greg of Reg.t | Xreg of int | Tmp of int

type src = Loc of loc | Imm of int

type branch_kind = Jump | Cond of Insn.cond | Call | Ret | Indirect

(* Capability micro-ops injected by the microcode customization unit
   (Section IV-C of the paper).  [pid] is the capability identifier the
   front-end associated with the operation; 0 means untracked and -1 is
   the wild-pointer PID of the MOVI rule. *)
type cap =
  | Cap_gen_begin
  | Cap_gen_end
  | Cap_check of { mutable pid : int; mem : Insn.mem; width : Insn.width; is_store : bool }
      (* [pid] is mutable so decode-time memos can re-tag a cached check
         in place (Monitor's per-PC injection memo) instead of
         re-allocating the spliced crack on every PID change. *)
  | Cap_free_begin of { pid : int }
  | Cap_free_end of { pid : int }

(* Software-check micro-ops modelling the instrumentation sequences of the
   ASan baseline (shadow address computation, shadow byte load, compare +
   branch) and of the binary-translation variant (ISA-extension bounds
   check pair). *)
type guard_kind =
  | Shadow_addr_calc
  | Shadow_load
  | Shadow_compare
  | Bt_bounds_low
  | Bt_bounds_high

type guard = { kind : guard_kind; mem : Insn.mem; width : Insn.width; is_store : bool }

type t =
  | Mov of { dst : loc; src : loc }
  | Limm of { dst : loc; imm : int }
  | Alu of { op : Insn.alu; dst : loc; src1 : loc; src2 : src }
  | Lea of { dst : loc; mem : Insn.mem }
  | Load of { dst : loc; mem : Insn.mem; width : Insn.width }
  | Store of { src : src; mem : Insn.mem; width : Insn.width }
  | Fp of { op : Insn.fpop; dst : loc; src : loc }
  | Cvt of { dst : loc; src : loc; to_fp : bool }
  | Cmp of { src1 : loc; src2 : src; is_test : bool }
  | Branch of { kind : branch_kind; target : Insn.target option }
  | Cap of cap
  | Guard of guard
  | Nop

(* Functional-unit classes, matching the pools of Table III. *)
type fu_class = FU_int | FU_mult | FU_fp | FU_load | FU_store | FU_branch | FU_none

let fu_class = function
  | Mov _ | Limm _ | Lea _ | Cmp _ -> FU_int
  | Alu { op = Insn.Imul; _ } -> FU_mult
  | Alu _ -> FU_int
  | Load _ -> FU_load
  | Store _ -> FU_store
  | Fp _ | Cvt _ -> FU_fp
  | Branch _ -> FU_branch
  | Cap Cap_gen_begin | Cap Cap_gen_end -> FU_int
  | Cap (Cap_check _) -> FU_int
  | Cap (Cap_free_begin _) | Cap (Cap_free_end _) -> FU_int
  | Guard { kind = Shadow_load; _ } -> FU_load
  | Guard { kind = Shadow_compare; _ } -> FU_branch
  | Guard _ -> FU_int
  | Nop -> FU_none

(* Base execution latency in cycles, excluding memory-hierarchy and
   shadow-structure latencies which are added dynamically. *)
let latency uop =
  match uop with
  | Alu { op = Insn.Imul; _ } -> 3
  | Fp { op = Insn.Fdiv; _ } -> 14
  | Fp { op = Insn.Fsqrt; _ } -> 15
  | Fp _ -> 4
  | Cvt _ -> 4
  | Load _ | Guard { kind = Shadow_load; _ } -> 0 (* cache latency added dynamically *)
  | _ -> 1

(* Memory operand of a micro-op that accesses program-visible memory
   (shadow accesses of [Guard] ops live in a disjoint space and are
   excluded here). *)
let mem_operand = function
  | Load { mem; width; _ } -> Some (mem, width, false)
  | Store { mem; width; _ } -> Some (mem, width, true)
  | _ -> None

let is_memory uop = mem_operand uop <> None

let reads uop =
  let of_src = function Loc l -> [ l ] | Imm _ -> [] in
  let of_mem m = List.map (fun r -> Greg r) (Insn.mem_regs m) in
  match uop with
  | Mov { src; _ } -> [ src ]
  | Limm _ -> []
  | Alu { src1; src2; _ } -> src1 :: of_src src2
  | Lea { mem; _ } -> of_mem mem
  | Load { mem; _ } -> of_mem mem
  | Store { src; mem; _ } -> of_src src @ of_mem mem
  | Fp { dst; src; _ } -> [ dst; src ]
  | Cvt { src; _ } -> [ src ]
  | Cmp { src1; src2; _ } -> src1 :: of_src src2
  | Branch _ -> []
  | Cap (Cap_check { mem; _ }) -> of_mem mem
  | Cap _ -> []
  | Guard { mem; _ } -> of_mem mem
  | Nop -> []

let writes = function
  | Mov { dst; _ }
  | Limm { dst; _ }
  | Alu { dst; _ }
  | Lea { dst; _ }
  | Load { dst; _ }
  | Fp { dst; _ }
  | Cvt { dst; _ } ->
    Some dst
  | Store _ | Cmp _ | Branch _ | Cap _ | Guard _ | Nop -> None

let is_injected = function Cap _ | Guard _ -> true | _ -> false

let pp_loc ppf = function
  | Greg r -> Reg.pp ppf r
  | Xreg i -> Format.fprintf ppf "%%xmm%d" i
  | Tmp i -> Format.fprintf ppf "t%d" i

let pp_src ppf = function
  | Loc l -> pp_loc ppf l
  | Imm i -> Format.fprintf ppf "$%d" i

let pp ppf = function
  | Mov { dst; src } -> Format.fprintf ppf "mov %a, %a" pp_loc src pp_loc dst
  | Limm { dst; imm } -> Format.fprintf ppf "limm %a, $%d" pp_loc dst imm
  | Alu { op; dst; src1; src2 } ->
    Format.fprintf ppf "%s %a, %a, %a" (Insn.alu_name op) pp_loc dst pp_loc src1 pp_src
      src2
  | Lea { dst; mem } -> Format.fprintf ppf "lea %a, %a" pp_loc dst Insn.pp_mem mem
  | Load { dst; mem; _ } -> Format.fprintf ppf "ld %a, %a" pp_loc dst Insn.pp_mem mem
  | Store { src; mem; _ } -> Format.fprintf ppf "st %a, %a" pp_src src Insn.pp_mem mem
  | Fp { op; dst; src } ->
    let n =
      match op with
      | Insn.Fadd -> "fadd"
      | Insn.Fsub -> "fsub"
      | Insn.Fmul -> "fmul"
      | Insn.Fdiv -> "fdiv"
      | Insn.Fsqrt -> "fsqrt"
    in
    Format.fprintf ppf "%s %a, %a" n pp_loc dst pp_loc src
  | Cvt { dst; src; to_fp } ->
    Format.fprintf ppf "%s %a, %a" (if to_fp then "cvt2sd" else "cvt2si") pp_loc dst
      pp_loc src
  | Cmp { src1; src2; is_test } ->
    Format.fprintf ppf "%s %a, %a" (if is_test then "test" else "cmp") pp_loc src1 pp_src
      src2
  | Branch { kind; _ } ->
    let n =
      match kind with
      | Jump -> "jmp"
      | Cond c -> "j" ^ Insn.cond_name c
      | Call -> "call"
      | Ret -> "ret"
      | Indirect -> "jmp*"
    in
    Format.fprintf ppf "%s" n
  | Cap Cap_gen_begin -> Format.fprintf ppf "capGen.Begin"
  | Cap Cap_gen_end -> Format.fprintf ppf "capGen.End"
  | Cap (Cap_check { pid; _ }) -> Format.fprintf ppf "capCheck(PID=%d)" pid
  | Cap (Cap_free_begin { pid }) -> Format.fprintf ppf "capFree.Begin(PID=%d)" pid
  | Cap (Cap_free_end { pid }) -> Format.fprintf ppf "capFree.End(PID=%d)" pid
  | Guard { kind; _ } ->
    let n =
      match kind with
      | Shadow_addr_calc -> "shadowAddr"
      | Shadow_load -> "shadowLd"
      | Shadow_compare -> "shadowCmp"
      | Bt_bounds_low -> "btChkLo"
      | Bt_bounds_high -> "btChkHi"
    in
    Format.fprintf ppf "%s" n
  | Nop -> Format.fprintf ppf "unop"
