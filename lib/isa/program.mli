(** An assembled guest program: text, labels, globals/symbol table. *)

val text_base : int
val data_base : int
val stack_top : int
val stack_limit : int

type global = { name : string; addr : int; size : int; writable : bool }

type t = {
  insns : Insn.t array;
  labels : (string, int) Hashtbl.t;
  globals : global list;
  entry : int;
  data_end : int;
}

(** Address of the instruction at index [i] (4 bytes per macro-op). *)
val addr_of_index : int -> int

(** Inverse of [addr_of_index]; [None] for non-text addresses. *)
val index_of_addr : int -> int option

val length : t -> int

(** Instruction at a text address, [None] outside the program. *)
val fetch : t -> int -> Insn.t option

(** Instruction index at a text address, -1 outside the program —
    the allocation-free form of [index_of_addr] for per-step fetch. *)
val fetch_index : t -> int -> int

val label_index : t -> string -> int
val label_addr : t -> string -> int
val entry_addr : t -> int
val find_global : t -> string -> global option
val global_addr : t -> string -> int

(** Build and validate (all referenced labels defined). *)
val make :
  insns:Insn.t array ->
  labels:(string, int) Hashtbl.t ->
  globals:global list ->
  entry:int ->
  data_end:int ->
  t

val pp : Format.formatter -> t -> unit
