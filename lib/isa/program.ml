(* An assembled guest program.

   Text is an array of macro instructions; each occupies 4 bytes of the
   text segment starting at [text_base] so that instruction addresses
   (used by the MSR entry/exit registration, the alias predictor and the
   BTB) are plain integers.  Globals live in a data segment at fixed
   addresses assigned at assembly time; their (name, address, size)
   triples form the symbol table the OS loader hands to CHEx86 for
   capability initialization of global objects. *)

let text_base = 0x400000
let data_base = 0x600000
let stack_top = 0x7FFF_FFF0
let stack_limit = 0x7FF0_0000

(* [writable = false] models .rodata objects; the symbol table carries
   the permission into the global's capability. *)
type global = { name : string; addr : int; size : int; writable : bool }

type t = {
  insns : Insn.t array;
  labels : (string, int) Hashtbl.t;
  globals : global list;
  entry : int;  (* instruction index *)
  data_end : int;  (* first free data address *)
}

let addr_of_index i = text_base + (4 * i)

let index_of_addr addr =
  if addr < text_base || (addr - text_base) mod 4 <> 0 then None
  else
    let i = (addr - text_base) / 4 in
    Some i

let length p = Array.length p.insns

let fetch p addr =
  match index_of_addr addr with
  | Some i when i >= 0 && i < Array.length p.insns -> Some p.insns.(i)
  | _ -> None

(* Allocation-free [index_of_addr] for the engine's fetch path: the
   instruction index at [addr], or -1 outside the text segment. *)
let fetch_index p addr =
  if addr < text_base || (addr - text_base) land 3 <> 0 then -1
  else
    let i = (addr - text_base) lsr 2 in
    if i < Array.length p.insns then i else -1

let label_index p name =
  match Hashtbl.find_opt p.labels name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Program.label_index: unknown label %S" name)

let label_addr p name = addr_of_index (label_index p name)
let entry_addr p = addr_of_index p.entry

let find_global p name = List.find_opt (fun g -> g.name = name) p.globals

let global_addr p name =
  match find_global p name with
  | Some g -> g.addr
  | None -> invalid_arg (Printf.sprintf "Program.global_addr: unknown global %S" name)

(* Labels referenced by control flow that must exist in [labels]. *)
let referenced_labels insns =
  Array.to_list insns
  |> List.filter_map (function
       | Insn.Call (Insn.Label l) | Insn.Jmp l | Insn.Jcc (_, l) -> Some l
       | _ -> None)

let validate p =
  List.iter
    (fun l ->
      if not (Hashtbl.mem p.labels l) then
        invalid_arg (Printf.sprintf "Program: undefined label %S" l))
    (referenced_labels p.insns)

let make ~insns ~labels ~globals ~entry ~data_end =
  let p = { insns; labels; globals; entry; data_end } in
  validate p;
  p

let pp ppf p =
  let index_labels = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name i ->
      let existing = try Hashtbl.find index_labels i with Not_found -> [] in
      Hashtbl.replace index_labels i (name :: existing))
    p.labels;
  Array.iteri
    (fun i insn ->
      (match Hashtbl.find_opt index_labels i with
      | Some names -> List.iter (fun n -> Format.fprintf ppf "%s:@." n) names
      | None -> ());
      Format.fprintf ppf "  %06x: %a@." (addr_of_index i) Insn.pp insn)
    p.insns
