(** Guest heap allocator with two selectable personalities:

    - [Glibc] (the default): glibc-flavoured, with in-guest-memory
      metadata, exploitable by design (fastbins, unsorted bin, boundary
      tags, top chunk; fasttop / !prev / safe-unlink checks as in the
      How2Heap-era glibc);
    - [Segregated]: size-class-segregated with {e out-of-line}
      metadata.  Free lists and per-slot state live on the host side
      where guest writes cannot reach them, so heap-metadata grooming
      attacks (fd poisoning, forged chunks, size-field overflows) have
      no allocator-visible effect, and double / invalid frees are
      detected precisely from the authoritative slot table.

    The exploit campaign generator runs the same attack against both
    personalities to demonstrate context-sensitive detection. *)

(** Raised when an allocator integrity check fires (the analogue of
    glibc's abort). *)
exception Heap_abort of string

(** Allocation-policy personality, chosen at [create] time. *)
type personality = Glibc | Segregated

val personality_name : personality -> string

(** Inverse of [personality_name]. *)
val personality_of_name : string -> personality option

type event =
  | Alloc of { addr : int; size : int }
  | Free of { addr : int }
  | Alloc_failed of { size : int }

type t

val create :
  ?personality:personality ->
  ?initial_heap:int ->
  Chex86_mem.Image.t ->
  Chex86_stats.Counter.group ->
  t

val personality : t -> personality

(** Subscribe to allocation events (profiling, Fig 3). *)
val set_event_handler : t -> (event -> unit) -> unit

(** [malloc t req] returns the user pointer, or 0 on failure. *)
val malloc : t -> int -> int

(** May raise [Heap_abort] on detected metadata corruption. *)
val free : t -> int -> unit

val calloc : t -> count:int -> size:int -> int
val realloc : t -> int -> int -> int

(** Chunk size of the allocation at a user pointer.  Under [Glibc] this
    is read from the in-memory boundary tag (includes the 16-byte
    header); under [Segregated] it is the out-of-line slot's payload
    capacity (no header). *)
val chunk_size : t -> int -> int

val chunk_size_of_request : int -> int
val fastbin_max : int

(** Arena addresses, exposed for the exploit suite. *)
val top_ptr_addr : int

val fastbin_head_addr : int -> int
val unsorted_anchor : int

(** Number of currently live (bookkept) allocations. *)
val live_allocations : t -> int

(** [(base, size, id)] of the live allocation containing [addr], if any. *)
val find_allocation : t -> int -> (int * int * int) option

val iter_live : t -> (base:int -> size:int -> id:int -> unit) -> unit

(** Bytes between heap base and the top chunk. *)
val heap_used : t -> int
