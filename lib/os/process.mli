(** A loaded process: program, memory, heap, MSRs. *)

(** Heap entry points used by the native libc stubs; the ASan baseline
    interposes its redzone allocator here. *)
type runtime = {
  malloc : int -> int;
  free : int -> unit;
  calloc : count:int -> size:int -> int;
  realloc : int -> int -> int;
}

type t = {
  program : Chex86_isa.Program.t;
  mem : Chex86_mem.Image.t;
  heap : Allocator.t;
  msrs : Msrs.t;
  counters : Chex86_stats.Counter.group;
  mutable runtime : runtime;
}

val default_runtime : Allocator.t -> runtime

(** [load ?counters ?heap program]; [heap] selects the allocator
    personality (default [Glibc]). *)
val load :
  ?counters:Chex86_stats.Counter.group ->
  ?heap:Allocator.personality ->
  Chex86_isa.Program.t ->
  t

(** [(name, addr, size, writable)] for every global, for capability
    initialization; read-only objects yield non-writable capabilities. *)
val symbols : t -> (string * int * int * bool) list
