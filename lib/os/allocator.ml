(* A glibc-flavoured heap allocator, exploitable by design.

   All allocator metadata lives in *guest memory* so that the How2Heap
   suite behaves as it does against real allocators:

   - boundary tags: for a user pointer [p], prev_size is at [p-16] and
     size|flags at [p-8]; bit 0 of the size field is PREV_INUSE;
   - free fastbin chunks keep a singly-linked fd at [p];
   - free normal chunks sit in a circular doubly-linked unsorted bin
     (fd at [p], bk at [p+8]) anchored in the arena;
   - the arena itself (fastbin heads, unsorted anchor, top pointer) is in
     guest memory at [Layout.arena_base] and can be corrupted;
   - the top chunk's size field sits in the heap and is overflowable
     (house-of-force).

   Safety checks mirror the classic glibc set that the exploit suite
   bypasses: fasttop double-free check, !prev double-free check, safe
   unlink on coalescing (but, as in the glibc of the How2Heap era, the
   unsorted-bin take-out path is unchecked, enabling the unsorted-bin
   attack).  Violated checks raise [Heap_abort], the analogue of glibc's
   abort. *)

exception Heap_abort of string

type personality = Glibc | Segregated

let personality_name = function Glibc -> "glibc" | Segregated -> "seg"

let personality_of_name = function
  | "glibc" -> Some Glibc
  | "seg" | "segregated" -> Some Segregated
  | _ -> None

type event =
  | Alloc of { addr : int; size : int }  (* user address, requested size *)
  | Free of { addr : int }
  | Alloc_failed of { size : int }

(* Segregated personality: all metadata is out of line, on the host
   side.  A slot never changes size class once carved, and frees never
   write to guest memory, so heap grooming cannot disturb the
   allocator. *)
type seg_slot = { slot_size : int; mutable slot_free : bool }

type t = {
  mem : Chex86_mem.Image.t;
  personality : personality;
  mutable on_event : event -> unit;
  (* OCaml-side bookkeeping of live allocations for profiling; under
     [Glibc] the authoritative metadata is the in-memory boundary
     tags. *)
  mutable live : (int * int) Map.Make(Int).t;  (* base -> (size, id) *)
  mutable next_id : int;
  counters : Chex86_stats.Counter.group;
  (* Segregated-personality state (unused under Glibc). *)
  seg_slots : (int, seg_slot) Hashtbl.t;  (* base -> slot *)
  seg_free : (int, int list ref) Hashtbl.t;  (* class size -> LIFO bases *)
  mutable seg_bump : int;
}

module Int_map = Map.Make (Int)

let min_chunk = 32
let fastbin_max = 128


(* Arena layout (guest memory). *)
let top_ptr_addr = Layout.arena_base + 0x8
let fastbin_head_addr i = Layout.arena_base + 0x10 + (8 * i)
let unsorted_anchor = Layout.arena_base + 0x60 (* fd at +0, bk at +8 *)

let align16 n = (n + 15) land lnot 15
let chunk_size_of_request req = max min_chunk (align16 (req + 16))
let fastbin_index size = (size - min_chunk) / 16

let read64 t a = Chex86_mem.Image.read64 t.mem a
let write64 t a v = Chex86_mem.Image.write64 t.mem a v

let size_field t p = read64 t (p - 8)
let chunk_size t p = size_field t p land lnot 0xF
let prev_inuse t p = size_field t p land 1 = 1
let set_size t p size flags = write64 t (p - 8) (size lor flags)

let top t = read64 t top_ptr_addr
let set_top t p = write64 t top_ptr_addr p

let create ?(personality = Glibc) ?(initial_heap = 1 lsl 20) mem counters =
  let t =
    {
      mem;
      personality;
      on_event = (fun _ -> ());
      live = Int_map.empty;
      next_id = 0;
      counters;
      seg_slots = Hashtbl.create 64;
      seg_free = Hashtbl.create 16;
      seg_bump = Layout.heap_base + 16;
    }
  in
  (match personality with
  | Glibc ->
    (* Initial top chunk spans the whole initial heap. *)
    let top0 = Layout.heap_base + 16 in
    set_top t top0;
    set_size t top0 initial_heap 1;
    (* Empty circular unsorted bin. *)
    write64 t unsorted_anchor unsorted_anchor;
    write64 t (unsorted_anchor + 8) unsorted_anchor
  | Segregated ->
    (* No guest-visible arena: nothing to corrupt. *)
    ());
  t

let personality t = t.personality
let set_event_handler t f = t.on_event <- f

(* --- doubly-linked list primitives -------------------------------------- *)

(* Safe unlink (glibc's corrupted-double-linked-list check), used on
   coalescing paths; the unsafe-unlink exploit constructs state that
   passes the check. *)
let unlink_checked t p =
  let fd = read64 t p and bk = read64 t (p + 8) in
  if read64 t (fd + 8) <> p || read64 t bk <> p then
    raise (Heap_abort "corrupted double-linked list");
  write64 t (fd + 8) bk;
  write64 t bk fd

(* Unchecked take-out used by the unsorted-bin scan in malloc, as in the
   How2Heap-era glibc: this is the write primitive of the unsorted-bin
   attack. *)
let unlink_unchecked t p =
  let fd = read64 t p and bk = read64 t (p + 8) in
  write64 t bk fd;
  write64 t (fd + 8) bk

let unsorted_insert t p =
  let first = read64 t unsorted_anchor in
  write64 t p first;  (* p.fd *)
  write64 t (p + 8) unsorted_anchor;  (* p.bk *)
  write64 t (first + 8) p;  (* first.bk *)
  write64 t unsorted_anchor p

(* --- allocation ---------------------------------------------------------- *)

let record_alloc t p req =
  t.next_id <- t.next_id + 1;
  t.live <- Int_map.add p (req, t.next_id) t.live;
  Chex86_stats.Counter.incr t.counters "heap.mallocs";
  t.on_event (Alloc { addr = p; size = req })

let split_or_take t p csize need =
  if csize - need >= min_chunk then begin
    (* Split: remainder goes back to the unsorted bin. *)
    let rem = p + need in
    set_size t rem (csize - need) 1;
    (* prev_size of chunk after remainder refers to remainder. *)
    write64 t (rem + (csize - need) - 16) (csize - need);
    set_size t p need (size_field t p land 1);
    unsorted_insert t rem
  end
  else begin
    (* Take whole chunk: mark next chunk's PREV_INUSE. *)
    let next = p + csize in
    if next <> top t then begin
      let nsize = read64 t (next - 8) in
      write64 t (next - 8) (nsize lor 1)
    end
  end

let from_top t need =
  let tp = top t in
  let tsize = chunk_size t tp in
  if tsize >= need + min_chunk then begin
    let p = tp in
    let new_top = tp + need in
    set_size t new_top (tsize - need) 1;
    set_top t new_top;
    set_size t p need 1;
    Some p
  end
  else None

let grow_heap t need =
  let tp = top t in
  let tsize = chunk_size t tp in
  let grown = max (need + min_chunk) (1 lsl 20) in
  if tp + tsize + grown <= Layout.heap_max then begin
    set_size t tp (tsize + grown) (size_field t tp land 1);
    true
  end
  else false

(* malloc_consolidate: large requests drain the fastbins into the
   unsorted bin (glibc behaviour that fastbin_dup_consolidate relies on:
   the chunk leaves the fastbin, so a second free of it passes the
   fasttop check). *)
let consolidate_fastbins t =
  for i = 0 to (fastbin_max - min_chunk) / 16 do
    let head_addr = fastbin_head_addr i in
    let rec drain p =
      if p <> 0 then begin
        let next = read64 t p in
        let size = chunk_size t p in
        let nxt = p + size in
        if nxt <> top t then begin
          write64 t (nxt - 16) size;
          write64 t (nxt - 8) (read64 t (nxt - 8) land lnot 1)
        end;
        unsorted_insert t p;
        drain next
      end
    in
    drain (read64 t head_addr);
    write64 t head_addr 0
  done

(* --- segregated personality ----------------------------------------- *)

(* Size classes: powers of two from 16 to 1024 bytes, then 16-byte
   aligned exact sizes for large requests.  All classes are multiples of
   16, so user pointers stay 16-aligned. *)
let seg_class_of_request req =
  if req <= 16 then 16
  else if req <= 1024 then begin
    let c = ref 16 in
    while !c < req do
      c := !c * 2
    done;
    !c
  end
  else align16 req

let seg_free_list t cls =
  match Hashtbl.find_opt t.seg_free cls with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add t.seg_free cls l;
    l

let seg_malloc t req =
  if req <= 0 then begin
    t.on_event (Alloc_failed { size = req });
    0
  end
  else begin
    let cls = seg_class_of_request req in
    let fl = seg_free_list t cls in
    let p =
      match !fl with
      | p :: rest ->
        fl := rest;
        (Hashtbl.find t.seg_slots p).slot_free <- false;
        p
      | [] ->
        let p = t.seg_bump in
        if p + cls > Layout.heap_max then 0
        else begin
          t.seg_bump <- p + cls;
          Hashtbl.replace t.seg_slots p { slot_size = cls; slot_free = false };
          p
        end
    in
    if p = 0 then begin
      Chex86_stats.Counter.incr t.counters "heap.failed_mallocs";
      t.on_event (Alloc_failed { size = req });
      0
    end
    else begin
      record_alloc t p req;
      p
    end
  end

(* The slot table is authoritative, so invalid and double frees are
   detected exactly, and freeing writes nothing into guest memory. *)
let seg_free t p =
  if p = 0 then ()
  else
    match Hashtbl.find_opt t.seg_slots p with
    | None -> raise (Heap_abort "free(): invalid pointer (segregated)")
    | Some slot ->
      if slot.slot_free then
        raise (Heap_abort "double free (segregated)");
      slot.slot_free <- true;
      let fl = seg_free_list t slot.slot_size in
      fl := p :: !fl;
      Chex86_stats.Counter.incr t.counters "heap.frees";
      t.live <- Int_map.remove p t.live;
      t.on_event (Free { addr = p })

(* --- glibc personality ------------------------------------------------ *)

let glibc_malloc t req =
  if req <= 0 then begin
    t.on_event (Alloc_failed { size = req });
    0
  end
  else begin
    let need = chunk_size_of_request req in
    if need > fastbin_max then consolidate_fastbins t;
    let p =
      (* 1. fastbin exact-class pop (fd read from guest memory). *)
      if need <= fastbin_max then begin
        let head_addr = fastbin_head_addr (fastbin_index need) in
        let head = read64 t head_addr in
        if head <> 0 then begin
          write64 t head_addr (read64 t head);
          head
        end
        else 0
      end
      else 0
    in
    let p =
      if p <> 0 then p
      else begin
        (* 2. first-fit scan of the unsorted bin. *)
        let rec scan q guard =
          if q = unsorted_anchor || guard = 0 then 0
          else
            let csize = chunk_size t q in
            if csize >= need then begin
              unlink_unchecked t q;
              split_or_take t q csize need;
              q
            end
            else scan (read64 t q) (guard - 1)
        in
        let p = scan (read64 t unsorted_anchor) 1024 in
        if p <> 0 then p
        else
          (* 3. carve from the top chunk, growing the heap if needed. *)
          match from_top t need with
          | Some p -> p
          | None ->
            if grow_heap t need then
              match from_top t need with Some p -> p | None -> 0
            else 0
      end
    in
    if p = 0 then begin
      Chex86_stats.Counter.incr t.counters "heap.failed_mallocs";
      t.on_event (Alloc_failed { size = req });
      0
    end
    else begin
      record_alloc t p req;
      p
    end
  end

(* --- free ---------------------------------------------------------------- *)

let glibc_free t p =
  if p = 0 then ()
  else begin
    if p land 0xF <> 0 then raise (Heap_abort "free(): invalid pointer");
    let size = chunk_size t p in
    if size < min_chunk || size land 0xF <> 0 || size > Layout.heap_max then
      raise (Heap_abort "free(): invalid size");
    Chex86_stats.Counter.incr t.counters "heap.frees";
    t.live <- Int_map.remove p t.live;
    t.on_event (Free { addr = p });
    if size <= fastbin_max then begin
      (* Fastbin push with glibc's fasttop double-free check. *)
      let head_addr = fastbin_head_addr (fastbin_index size) in
      let head = read64 t head_addr in
      if head = p then raise (Heap_abort "double free or corruption (fasttop)");
      write64 t p head;
      write64 t head_addr p
    end
    else begin
      let next = p + size in
      let tp = top t in
      if next <> tp then begin
        let nsize_field = read64 t (next - 8) in
        if nsize_field land 1 = 0 then
          raise (Heap_abort "double free or corruption (!prev)")
      end;
      (* Backward coalescing via safe unlink. *)
      let p, size =
        if not (prev_inuse t p) then begin
          let psize = read64 t (p - 16) in
          let prev = p - psize in
          unlink_checked t prev;
          (prev, size + psize)
        end
        else (p, size)
      in
      let next = p + size in
      if next = top t then begin
        (* Merge into top. *)
        let tsize = chunk_size t (top t) in
        set_top t p;
        set_size t p (size + tsize) (size_field t p land 1)
      end
      else begin
        let nsize = chunk_size t next in
        let nnext = next + nsize in
        let next_free = nnext <> top t && read64 t (nnext - 8) land 1 = 0 in
        let size =
          if next_free then begin
            unlink_checked t next;
            size + nsize
          end
          else size
        in
        let next = p + size in
        set_size t p size (size_field t p land 1);
        (* Publish free state to the following chunk's boundary tag. *)
        write64 t (next - 16) size;
        let nfield = read64 t (next - 8) in
        write64 t (next - 8) (nfield land lnot 1);
        unsorted_insert t p
      end
    end
  end

(* --- personality dispatch ------------------------------------------------ *)

let malloc t req =
  match t.personality with
  | Glibc -> glibc_malloc t req
  | Segregated -> seg_malloc t req

let free t p =
  match t.personality with
  | Glibc -> glibc_free t p
  | Segregated -> seg_free t p

(* Exported chunk size: boundary tag under Glibc, slot table under
   Segregated (payload capacity, no header). *)
let chunk_size t p =
  match t.personality with
  | Glibc -> chunk_size t p
  | Segregated -> (
    match Hashtbl.find_opt t.seg_slots p with
    | Some s -> s.slot_size
    | None -> 0)

(* --- derived entry points ------------------------------------------------ *)

let calloc t ~count ~size =
  let total = count * size in
  let p = malloc t total in
  if p <> 0 then Chex86_mem.Image.zero_range t.mem p total;
  p

let realloc t p req =
  if p = 0 then malloc t req
  else begin
    let old_payload =
      match t.personality with
      | Glibc -> chunk_size t p - 16
      | Segregated -> chunk_size t p
    in
    let q = malloc t req in
    if q <> 0 then begin
      let n = min old_payload req in
      for i = 0 to (n / 8) - 1 do
        write64 t (q + (8 * i)) (read64 t (p + (8 * i)))
      done;
      free t p
    end;
    q
  end

(* --- introspection -------------------------------------------------------- *)

let live_allocations t = Int_map.cardinal t.live

let find_allocation t addr =
  match Int_map.find_last_opt (fun base -> base <= addr) t.live with
  | Some (base, (size, id)) when addr < base + size -> Some (base, size, id)
  | _ -> None

let iter_live t f = Int_map.iter (fun base (size, id) -> f ~base ~size ~id) t.live

let heap_used t =
  match t.personality with
  | Glibc ->
    let tp = top t in
    tp - Layout.heap_base
  | Segregated -> t.seg_bump - Layout.heap_base
