(* A loaded process: program text, memory image, heap and registered
   MSRs.  The loader zero-fills the data segment (implicitly, via
   first-touch pages), points the stack at [Program.stack_top] and
   registers the default libc entry/exit points. *)

(* Heap entry points used by the native libc stubs.  The default binds
   the exploitable allocator directly; the ASan baseline interposes its
   redzone + quarantine allocator here. *)
type runtime = {
  malloc : int -> int;
  free : int -> unit;
  calloc : count:int -> size:int -> int;
  realloc : int -> int -> int;
}

type t = {
  program : Chex86_isa.Program.t;
  mem : Chex86_mem.Image.t;
  heap : Allocator.t;
  msrs : Msrs.t;
  counters : Chex86_stats.Counter.group;
  mutable runtime : runtime;
}

let default_runtime heap =
  {
    malloc = Allocator.malloc heap;
    free = Allocator.free heap;
    calloc = Allocator.calloc heap;
    realloc = Allocator.realloc heap;
  }

let load ?counters ?(heap = Allocator.Glibc) program =
  let counters =
    match counters with Some c -> c | None -> Chex86_stats.Counter.create_group ()
  in
  let mem = Chex86_mem.Image.create () in
  let heap = Allocator.create ~personality:heap mem counters in
  let msrs = Msrs.create () in
  Msrs.register_default_libc msrs;
  { program; mem; heap; msrs; counters; runtime = default_runtime heap }

(* Symbol-table view handed to CHEx86 at load time for global-object
   capability initialization (Section IV-C "Initial Configuration"). *)
let symbols t =
  List.map
    (fun (g : Chex86_isa.Program.global) -> (g.name, g.addr, g.size, g.writable))
    t.program.globals
