(** Generic set-associative cache with selectable replacement and an
    optional victim cache; [sets = 1] gives a fully associative cache. *)

type t

(** Replacement policy: true LRU (stamps), Tree-PLRU (per-set bit tree;
    requires a power-of-two way count), or MRU (evict the most recently
    touched valid way). *)
type policy = Lru | Tree_plru | Mru

val policy_name : policy -> string

(** Inverse of [policy_name]; also accepts ["plru"]. *)
val policy_of_string : string -> policy option

(** [create ?victim ?policy ~name ~sets ~ways ~line_bytes counters] —
    hit/miss events are counted as ["<name>.hit"], ["<name>.miss"] and
    ["<name>.victim_hit"] in [counters]. [sets] and [line_bytes] must be
    powers of two and [ways >= 1] ([Invalid_argument] otherwise);
    [Tree_plru] additionally needs a power-of-two [ways]. *)
val create :
  ?victim:t ->
  ?hash_index:bool ->
  ?policy:policy ->
  name:string ->
  sets:int ->
  ways:int ->
  line_bytes:int ->
  Chex86_stats.Counter.group ->
  t

(** [access c ~write addr] returns whether the access hit (main array or
    victim); misses allocate. *)
val access : t -> write:bool -> int -> bool

(** Full block number displaced out of the cache (past the victim cache,
    when one is attached) by the last [access]; -1 if none, or if the
    casualty left through a victim cache with a different line size. *)
val evicted_block : t -> int

(** Side-effect-free presence check (main array or victim): no counters,
    no replacement-state update. *)
val peek : t -> int -> bool

val policy : t -> policy
val invalidate : t -> int -> unit
val invalidate_all : t -> unit
val hits : t -> int
val misses : t -> int

(** Misses / (hits + victim hits + misses); 0. before any access. *)
val miss_rate : t -> float
