(** Open-addressed set of non-negative ints for hot-path membership
    tracking (see DESIGN.md hot-path rules).  Keys must be [>= 0]. *)

type t

(** [create ?capacity ()] makes an empty set; [capacity] is a hint for
    the initial slot count (rounded up to a power of two). *)
val create : ?capacity:int -> unit -> t

val add : t -> int -> unit
val mem : t -> int -> bool
val remove : t -> int -> unit
val cardinal : t -> int
