(* Open-addressed map from non-negative ints to ints (linear probing,
   tombstone deletion) — the value-carrying sibling of [Intset].
   Replaces [(int, 'a) Hashtbl.t] on per-access hot paths where the
   common case is "absent": [find] returns a caller-supplied default
   with no exception raised and no [option] boxed.

   Keys must be >= 0; empty slots hold -1 and deleted slots -2.  Load
   factor (live + tombstones) stays under 1/2, so probes terminate. *)

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable live : int;
  mutable used : int;
}

let empty_slot = -1
let tomb_slot = -2
let hashc = 0x2545F4914F6CDD1D

let create ?(capacity = 1024) () =
  let rec pow2 n = if n >= capacity then n else pow2 (2 * n) in
  let n = pow2 16 in
  { keys = Array.make n empty_slot; vals = Array.make n 0; live = 0; used = 0 }

(* Top-level probe recursions, as in [Intset]: no closure per call. *)
let rec set_probe t (k : int) m i first_tomb v =
  let s = t.keys.(i) in
  if s = k then t.vals.(i) <- v
  else if s = empty_slot then begin
    let slot = if first_tomb >= 0 then first_tomb else (t.used <- t.used + 1; i) in
    t.keys.(slot) <- k;
    t.vals.(slot) <- v;
    t.live <- t.live + 1
  end
  else if s = tomb_slot then
    set_probe t k m ((i + 1) land m) (if first_tomb >= 0 then first_tomb else i) v
  else set_probe t k m ((i + 1) land m) first_tomb v

let rec set t k v =
  if 2 * (t.used + 1) > Array.length t.keys then grow t;
  let m = Array.length t.keys - 1 in
  set_probe t k m (k * hashc land m) (-1) v

and grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let n = Array.length old_keys in
  let cap = if 4 * (t.live + 1) > n then 2 * n else n in
  t.keys <- Array.make cap empty_slot;
  t.vals <- Array.make cap 0;
  t.live <- 0;
  t.used <- 0;
  for i = 0 to n - 1 do
    if old_keys.(i) >= 0 then set t old_keys.(i) old_vals.(i)
  done

let rec find_probe (keys : int array) (vals : int array) (k : int) m i default =
  let s = keys.(i) in
  if s = k then vals.(i)
  else if s = empty_slot then default
  else find_probe keys vals k m ((i + 1) land m) default

let find t k ~default =
  let m = Array.length t.keys - 1 in
  find_probe t.keys t.vals k m (k * hashc land m) default

let rec remove_probe t (k : int) m i =
  let s = t.keys.(i) in
  if s = k then begin
    t.keys.(i) <- tomb_slot;
    t.live <- t.live - 1
  end
  else if s <> empty_slot then remove_probe t k m ((i + 1) land m)

let remove t k =
  let m = Array.length t.keys - 1 in
  remove_probe t k m (k * hashc land m)

let cardinal t = t.live
