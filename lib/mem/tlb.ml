(* TLB with the paper's alias-hosting extension.

   Section V-C: "we extend the metadata bits in the TLB and the page
   tables to include an alias-hosting bit that indicates if a page
   contains a spilled pointer, to further minimize the number of
   lookups".  The authoritative alias-hosting bit lives in page-table
   metadata (a side table here); the TLB caches it per entry, and entries
   are refreshed when a page first gains a spilled pointer. *)

type entry = {
  mutable vpn : int;
  mutable valid : bool;
  mutable stamp : int;
  mutable alias_hosting : bool;
}

type t = {
  name : string;
  sets : entry array array;
  set_bits : int;
  page_table_bits : (int, bool ref) Hashtbl.t;  (* vpn -> alias-hosting *)
  counters : Chex86_stats.Counter.group;
  h_hit : Chex86_stats.Counter.handle;
  h_miss : Chex86_stats.Counter.handle;
  mutable clock : int;
}

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2)

let create ~name ~sets ~ways counters =
  (* Set indexing is [vpn land (sets - 1)], which silently aliases most
     of the index space when [sets] is not a power of two. *)
  if sets <= 0 || sets land (sets - 1) <> 0 then
    invalid_arg "Tlb.create: sets not a power of 2";
  {
    name;
    sets =
      Array.init sets (fun _ ->
          Array.init ways (fun _ ->
              { vpn = -1; valid = false; stamp = 0; alias_hosting = false }));
    set_bits = log2 sets;
    page_table_bits = Hashtbl.create 256;
    counters;
    h_hit = Chex86_stats.Counter.handle counters (name ^ ".hit");
    h_miss = Chex86_stats.Counter.handle counters (name ^ ".miss");
    clock = 0;
  }

let page_alias_bit t vpn =
  match Hashtbl.find_opt t.page_table_bits vpn with
  | Some cell -> !cell
  | None -> false

(* Mark the page containing [addr] as hosting a spilled pointer alias;
   refresh any cached TLB entry. *)
let set_alias_hosting t addr =
  let vpn = addr lsr Image.page_bits in
  (match Hashtbl.find_opt t.page_table_bits vpn with
  | Some cell -> cell := true
  | None -> Hashtbl.add t.page_table_bits vpn (ref true));
  let idx = vpn land (Array.length t.sets - 1) in
  Array.iter
    (fun e -> if e.valid && e.vpn = vpn then e.alias_hosting <- true)
    t.sets.(idx)

(* Way holding [vpn] in [set], or -1.  Top-level recursion: an inner
   [rec] capturing [set]/[vpn] allocates a closure per access without
   flambda. *)
let rec find_way_from set vpn n i =
  if i >= n then -1
  else if set.(i).valid && set.(i).vpn = vpn then i
  else find_way_from set vpn n (i + 1)

(* [lookup_hit t addr] is the per-access timing probe: true on hit.  A
   miss triggers a (modelled) page walk and fills the entry with the
   page-table bit.  The hierarchy only consumes the hit bit, so this
   path returns an unboxed bool rather than the [lookup] tuple. *)
let lookup_hit t addr =
  t.clock <- t.clock + 1;
  let vpn = addr lsr Image.page_bits in
  let idx = vpn land (Array.length t.sets - 1) in
  let set = t.sets.(idx) in
  let n = Array.length set in
  let way = find_way_from set vpn n 0 in
  if way >= 0 then begin
    set.(way).stamp <- t.clock;
    Chex86_stats.Counter.incr_handle t.counters t.h_hit;
    true
  end
  else begin
    Chex86_stats.Counter.incr_handle t.counters t.h_miss;
    let way = ref 0 in
    for i = 1 to n - 1 do
      if (not set.(i).valid) && set.(!way).valid then way := i
      else if set.(i).valid = set.(!way).valid && set.(i).stamp < set.(!way).stamp then
        way := i
    done;
    let e = set.(!way) in
    e.vpn <- vpn;
    e.valid <- true;
    e.stamp <- t.clock;
    e.alias_hosting <- page_alias_bit t vpn;
    false
  end

(* [lookup t addr] returns [(hit, alias_hosting)].  Wrapper over
   [lookup_hit]: after the probe the entry is guaranteed resident, so the
   alias bit is re-read from the (just touched or just filled) way. *)
let lookup t addr =
  let hit = lookup_hit t addr in
  let vpn = addr lsr Image.page_bits in
  let set = t.sets.(vpn land (Array.length t.sets - 1)) in
  let way = find_way_from set vpn (Array.length set) 0 in
  (hit, set.(way).alias_hosting)

let alias_hosting_pages t =
  Hashtbl.fold (fun _ cell acc -> if !cell then acc + 1 else acc) t.page_table_bits 0
