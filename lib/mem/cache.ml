(* Generic set-associative cache model with selectable replacement.

   Used for the L1/L2 data and instruction caches, and reused (with
   [sets = 1]) for the fully associative in-processor capability cache
   and the alias victim cache of the paper.  Only tags are modelled; the
   data payload lives in the functional memory image.

   An optional victim cache catches blocks evicted from the main array,
   as in the paper's "256-entry 2-way alias cache augmented by a
   32-entry victim cache".

   Replacement is runtime-selectable per cache: true LRU (stamps),
   Tree-PLRU (a per-set bit tree packed into one int — ways must be a
   power of two), or MRU (evict the most recently touched valid way,
   the pathological point for scans that sensitivity sweeps want).

   This sits on the per-memory-access hot path of the whole simulator, so
   it follows the hot-path rules of DESIGN.md: lines store the full block
   number (no tag/index reassembly — which was also outright wrong for
   hash-indexed caches, where the set index is an XOR fold and not the
   block's low bits), way lookup and insertion speak int sentinels
   instead of [option], and hit/miss counters are bumped through
   pre-resolved handles instead of per-access string concatenation. *)

type policy = Lru | Tree_plru | Mru

let policy_name = function Lru -> "lru" | Tree_plru -> "tree-plru" | Mru -> "mru"

let policy_of_string = function
  | "lru" -> Some Lru
  | "tree-plru" | "plru" -> Some Tree_plru
  | "mru" -> Some Mru
  | _ -> None

(* [block] is the full block number (addr lsr line_bits); -1 when the
   line is invalid.  Storing the whole number costs nothing in a model
   and makes eviction reconstruct the block exactly, whatever the
   indexing function. *)
type line = { mutable block : int; mutable valid : bool; mutable stamp : int }

type t = {
  name : string;
  sets : line array array;
  set_bits : int;
  line_bits : int;
  hash_index : bool;  (* XOR-fold the block number into the set index *)
  policy : policy;
  (* Tree-PLRU state: one bit-tree per set packed into an int.  Node i's
     bit is [(plru.(set) lsr i) land 1]; 0 sends the victim walk left.
     Empty array for the other policies. *)
  plru : int array;
  victim : t option;
  counters : Chex86_stats.Counter.group;
  h_hit : Chex86_stats.Counter.handle;
  h_miss : Chex86_stats.Counter.handle;
  h_victim_hit : Chex86_stats.Counter.handle;
  mutable clock : int;
  (* Block displaced out of the cache entirely by the last [access]
     (past the victim cache when one is attached), -1 if none.  The
     hierarchy reads this to charge dirty writebacks at eviction time. *)
  mutable last_evicted : int;
}

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ?victim ?(hash_index = false) ?(policy = Lru) ~name ~sets ~ways
    ~line_bytes counters =
  if not (is_pow2 sets) then invalid_arg "Cache.create: sets not a power of 2";
  if ways < 1 then invalid_arg "Cache.create: ways must be >= 1";
  if not (is_pow2 line_bytes) then
    invalid_arg "Cache.create: line_bytes not a power of 2";
  if policy = Tree_plru && not (is_pow2 ways) then
    invalid_arg "Cache.create: Tree-PLRU needs a power-of-2 way count";
  {
    name;
    sets = Array.init sets (fun _ -> Array.init ways (fun _ -> { block = -1; valid = false; stamp = 0 }));
    set_bits = log2 sets;
    line_bits = log2 line_bytes;
    hash_index;
    policy;
    plru = (if policy = Tree_plru then Array.make sets 0 else [||]);
    victim;
    counters;
    h_hit = Chex86_stats.Counter.handle counters (name ^ ".hit");
    h_miss = Chex86_stats.Counter.handle counters (name ^ ".miss");
    h_victim_hit = Chex86_stats.Counter.handle counters (name ^ ".victim_hit");
    clock = 0;
    last_evicted = -1;
  }

let set_count c = Array.length c.sets

let policy c = c.policy

let index_of c block =
  if c.hash_index then
    (block lxor (block lsr c.set_bits) lxor (block lsr (2 * c.set_bits)))
    land (set_count c - 1)
  else block land (set_count c - 1)

(* Way holding [block], or -1.  Top-level recursion (not an inner
   closure): without flambda an inner [rec] capturing [set]/[block]
   allocates a closure on every access. *)
let rec find_way_from set block n i =
  if i >= n then -1
  else if set.(i).valid && set.(i).block = block then i
  else find_way_from set block n (i + 1)

let find_way set block = find_way_from set block (Array.length set) 0

(* Tree-PLRU: leaves are ways; internal node i has children 2i+1/2i+2;
   leaf for way w is w + ways - 1.  Touching a way flips every ancestor
   bit to point away from it; the victim walk follows the bits down. *)
let plru_touch c set_idx way ways =
  let p = ref c.plru.(set_idx) in
  let l = ref (way + ways - 1) in
  while !l > 0 do
    let parent = (!l - 1) / 2 in
    let from_right = !l = (2 * parent) + 2 in
    (* Point the victim at the sibling subtree. *)
    if from_right then p := !p land lnot (1 lsl parent)
    else p := !p lor (1 lsl parent);
    l := parent
  done;
  c.plru.(set_idx) <- !p

let plru_victim c set_idx ways =
  let p = c.plru.(set_idx) in
  let i = ref 0 in
  while !i < ways - 1 do
    i := (2 * !i) + 1 + ((p lsr !i) land 1)
  done;
  !i - (ways - 1)

(* First invalid way, or -1. *)
let rec invalid_way_from set n i =
  if i >= n then -1 else if not set.(i).valid then i else invalid_way_from set n (i + 1)

(* Victim way under the cache's policy, assuming every way is valid is
   already ruled out by the caller trying [invalid_way_from] first for
   PLRU; the stamp policies fold invalidity in directly. *)
let lru_way set =
  let best = ref 0 in
  for i = 1 to Array.length set - 1 do
    if (not set.(i).valid) && set.(!best).valid then best := i
    else if set.(i).valid = set.(!best).valid && set.(i).stamp < set.(!best).stamp then
      best := i
  done;
  !best

let mru_way set =
  let best = ref 0 in
  for i = 1 to Array.length set - 1 do
    if (not set.(i).valid) && set.(!best).valid then best := i
    else if set.(i).valid = set.(!best).valid && set.(i).stamp > set.(!best).stamp then
      best := i
  done;
  !best

let victim_way c set_idx set =
  match c.policy with
  | Lru -> lru_way set
  | Mru -> mru_way set
  | Tree_plru ->
    let n = Array.length set in
    let w = invalid_way_from set n 0 in
    if w >= 0 then w else plru_victim c set_idx n

(* Refresh replacement state for a touched way. *)
let touch c set_idx set way =
  set.(way).stamp <- c.clock;
  if c.policy = Tree_plru then plru_touch c set_idx way (Array.length set)

(* Insert [block] into set [set_idx], returning the evicted block number
   if a valid line was displaced, -1 otherwise.  If the block is already
   present (e.g. a swap-back racing an earlier spill) the existing copy
   is refreshed instead of duplicated. *)
let insert c set_idx block =
  let set = c.sets.(set_idx) in
  let existing = find_way set block in
  if existing >= 0 then begin
    touch c set_idx set existing;
    -1
  end
  else begin
    let way = victim_way c set_idx set in
    let evicted = if set.(way).valid then set.(way).block else -1 in
    set.(way).block <- block;
    set.(way).valid <- true;
    touch c set_idx set way;
    evicted
  end

(* Probe-and-invalidate: a victim-cache hit moves the block back to the
   main array, so the victim's copy must die — leaving it behind is the
   duplication bug this guards against (the block then lived in both
   arrays, and a later spill of the same block stacked a second copy in
   the victim set). *)
let probe_take c addr =
  let block = addr lsr c.line_bits in
  let set = c.sets.(index_of c block) in
  let way = find_way set block in
  if way >= 0 then begin
    set.(way).valid <- false;
    true
  end
  else false

(* Hand a block evicted from the main array of [c] to its victim cache
   [v].  The block number is exact, so re-deriving the victim's index and
   comparing full block numbers is correct for any indexing function of
   either cache (the victim may use a different line size).  Returns the
   block displaced out of [v], renumbered back into [c]'s line size when
   the two agree, -1 otherwise (a casualty in a differently-grained
   victim has no exact main-array equivalent). *)
let spill_to_victim c v evicted =
  let vblock = (evicted lsl c.line_bits) lsr v.line_bits in
  let casualty = insert v (index_of v vblock) vblock in
  if casualty >= 0 && v.line_bits = c.line_bits then casualty else -1

let access c ~write:_ addr =
  c.clock <- c.clock + 1;
  c.last_evicted <- -1;
  let block = addr lsr c.line_bits in
  let set_idx = index_of c block in
  let set = c.sets.(set_idx) in
  let way = find_way set block in
  if way >= 0 then begin
    touch c set_idx set way;
    Chex86_stats.Counter.incr_handle c.counters c.h_hit;
    true
  end
  else begin
    let hit_in_victim =
      match c.victim with
      | None -> false
      | Some v ->
        v.clock <- v.clock + 1;
        if probe_take v addr then begin
          (* Swap back into the main array; the victim's copy is gone. *)
          let evicted = insert c set_idx block in
          if evicted >= 0 then c.last_evicted <- spill_to_victim c v evicted;
          true
        end
        else false
    in
    if hit_in_victim then begin
      Chex86_stats.Counter.incr_handle c.counters c.h_victim_hit;
      true
    end
    else begin
      Chex86_stats.Counter.incr_handle c.counters c.h_miss;
      let evicted = insert c set_idx block in
      (match c.victim with
      | Some v -> if evicted >= 0 then c.last_evicted <- spill_to_victim c v evicted
      | None -> c.last_evicted <- evicted);
      false
    end
  end

let evicted_block c = c.last_evicted

(* Presence check with no side effects: no counters, no replacement
   update, no clock tick.  Checks the victim array too, so "is this line
   still cached here" means the whole structure. *)
let peek c addr =
  let block = addr lsr c.line_bits in
  let set = c.sets.(index_of c block) in
  find_way set block >= 0
  ||
  match c.victim with
  | None -> false
  | Some v ->
    let vblock = addr lsr v.line_bits in
    find_way v.sets.(index_of v vblock) vblock >= 0

let invalidate c addr =
  let block = addr lsr c.line_bits in
  let set = c.sets.(index_of c block) in
  let way = find_way set block in
  if way >= 0 then set.(way).valid <- false;
  match c.victim with
  | None -> ()
  | Some v ->
    let vblock = addr lsr v.line_bits in
    let vset = v.sets.(index_of v vblock) in
    let vway = find_way vset vblock in
    if vway >= 0 then vset.(vway).valid <- false

let invalidate_all c =
  Array.iter (fun set -> Array.iter (fun l -> l.valid <- false) set) c.sets;
  match c.victim with
  | None -> ()
  | Some v -> Array.iter (fun set -> Array.iter (fun l -> l.valid <- false) set) v.sets

let hits c = Chex86_stats.Counter.get_handle c.counters c.h_hit

let misses c = Chex86_stats.Counter.get_handle c.counters c.h_miss

let miss_rate c =
  let vh = Chex86_stats.Counter.get_handle c.counters c.h_victim_hit in
  let h = hits c + vh and m = misses c in
  if h + m = 0 then 0. else float_of_int m /. float_of_int (h + m)
