(* Generic set-associative cache model with true-LRU replacement.

   Used for the L1/L2 data and instruction caches, and reused (with
   [sets = 1]) for the fully associative in-processor capability cache
   and the alias victim cache of the paper.  Only tags are modelled; the
   data payload lives in the functional memory image.

   An optional victim cache catches blocks evicted from the main array,
   as in the paper's "256-entry 2-way alias cache augmented by a
   32-entry victim cache".

   This sits on the per-memory-access hot path of the whole simulator, so
   it follows the hot-path rules of DESIGN.md: lines store the full block
   number (no tag/index reassembly — which was also outright wrong for
   hash-indexed caches, where the set index is an XOR fold and not the
   block's low bits), way lookup and insertion speak int sentinels
   instead of [option], and hit/miss counters are bumped through
   pre-resolved handles instead of per-access string concatenation. *)

(* [block] is the full block number (addr lsr line_bits); -1 when the
   line is invalid.  Storing the whole number costs nothing in a model
   and makes eviction reconstruct the block exactly, whatever the
   indexing function. *)
type line = { mutable block : int; mutable valid : bool; mutable stamp : int }

type t = {
  name : string;
  sets : line array array;
  set_bits : int;
  line_bits : int;
  hash_index : bool;  (* XOR-fold the block number into the set index *)
  victim : t option;
  counters : Chex86_stats.Counter.group;
  h_hit : Chex86_stats.Counter.handle;
  h_miss : Chex86_stats.Counter.handle;
  h_victim_hit : Chex86_stats.Counter.handle;
  mutable clock : int;
}

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2)

let create ?victim ?(hash_index = false) ~name ~sets ~ways ~line_bytes counters =
  if sets land (sets - 1) <> 0 then invalid_arg "Cache.create: sets not a power of 2";
  {
    name;
    sets = Array.init sets (fun _ -> Array.init ways (fun _ -> { block = -1; valid = false; stamp = 0 }));
    set_bits = log2 sets;
    line_bits = log2 line_bytes;
    hash_index;
    victim;
    counters;
    h_hit = Chex86_stats.Counter.handle counters (name ^ ".hit");
    h_miss = Chex86_stats.Counter.handle counters (name ^ ".miss");
    h_victim_hit = Chex86_stats.Counter.handle counters (name ^ ".victim_hit");
    clock = 0;
  }

let set_count c = Array.length c.sets

let index_of c block =
  if c.hash_index then
    (block lxor (block lsr c.set_bits) lxor (block lsr (2 * c.set_bits)))
    land (set_count c - 1)
  else block land (set_count c - 1)

(* Way holding [block], or -1.  Top-level recursion (not an inner
   closure): without flambda an inner [rec] capturing [set]/[block]
   allocates a closure on every access. *)
let rec find_way_from set block n i =
  if i >= n then -1
  else if set.(i).valid && set.(i).block = block then i
  else find_way_from set block n (i + 1)

let find_way set block = find_way_from set block (Array.length set) 0

let lru_way set =
  let best = ref 0 in
  for i = 1 to Array.length set - 1 do
    if (not set.(i).valid) && set.(!best).valid then best := i
    else if set.(i).valid = set.(!best).valid && set.(i).stamp < set.(!best).stamp then
      best := i
  done;
  !best

(* Insert [block] into [set], returning the evicted block number if a
   valid line was displaced, -1 otherwise. *)
let insert c set block =
  let way = lru_way set in
  let evicted = if set.(way).valid then set.(way).block else -1 in
  set.(way).block <- block;
  set.(way).valid <- true;
  set.(way).stamp <- c.clock;
  evicted

(* Probe without the victim path. *)
let probe_main c addr =
  let block = addr lsr c.line_bits in
  let set = c.sets.(index_of c block) in
  let way = find_way set block in
  if way >= 0 then begin
    set.(way).stamp <- c.clock;
    true
  end
  else false

(* Hand a block evicted from the main array of [c] to its victim cache
   [v].  The block number is exact, so re-deriving the victim's index and
   comparing full block numbers is correct for any indexing function of
   either cache (the victim may use a different line size). *)
let spill_to_victim c v evicted =
  let vblock = (evicted lsl c.line_bits) lsr v.line_bits in
  ignore (insert v v.sets.(index_of v vblock) vblock)

let access c ~write:_ addr =
  c.clock <- c.clock + 1;
  let block = addr lsr c.line_bits in
  let set = c.sets.(index_of c block) in
  let way = find_way set block in
  if way >= 0 then begin
    set.(way).stamp <- c.clock;
    Chex86_stats.Counter.incr_handle c.counters c.h_hit;
    true
  end
  else begin
    let hit_in_victim =
      match c.victim with
      | None -> false
      | Some v ->
        v.clock <- v.clock + 1;
        if probe_main v addr then begin
          (* Swap back into the main array. *)
          let evicted = insert c set block in
          if evicted >= 0 then spill_to_victim c v evicted;
          true
        end
        else false
    in
    if hit_in_victim then begin
      Chex86_stats.Counter.incr_handle c.counters c.h_victim_hit;
      true
    end
    else begin
      Chex86_stats.Counter.incr_handle c.counters c.h_miss;
      let evicted = insert c set block in
      (match c.victim with
      | Some v -> if evicted >= 0 then spill_to_victim c v evicted
      | None -> ());
      false
    end
  end

let invalidate c addr =
  let block = addr lsr c.line_bits in
  let set = c.sets.(index_of c block) in
  let way = find_way set block in
  if way >= 0 then set.(way).valid <- false;
  match c.victim with
  | None -> ()
  | Some v ->
    let vblock = addr lsr v.line_bits in
    let vset = v.sets.(index_of v vblock) in
    let vway = find_way vset vblock in
    if vway >= 0 then vset.(vway).valid <- false

let invalidate_all c =
  Array.iter (fun set -> Array.iter (fun l -> l.valid <- false) set) c.sets;
  match c.victim with
  | None -> ()
  | Some v -> Array.iter (fun set -> Array.iter (fun l -> l.valid <- false) set) v.sets

let hits c = Chex86_stats.Counter.get_handle c.counters c.h_hit

let misses c = Chex86_stats.Counter.get_handle c.counters c.h_miss

let miss_rate c =
  let vh = Chex86_stats.Counter.get_handle c.counters c.h_victim_hit in
  let h = hits c + vh and m = misses c in
  if h + m = 0 then 0. else float_of_int m /. float_of_int (h + m)
