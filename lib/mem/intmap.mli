(** Open-addressed map from non-negative ints to ints — the
    value-carrying sibling of {!Intset} for hot paths where the common
    case is "absent": {!find} returns a default with no exception and
    no [option] (see DESIGN.md hot-path rules).  Keys must be [>= 0]. *)

type t

(** [create ?capacity ()] makes an empty map; [capacity] is a hint for
    the initial slot count (rounded up to a power of two). *)
val create : ?capacity:int -> unit -> t

val set : t -> int -> int -> unit
val find : t -> int -> default:int -> int
val remove : t -> int -> unit
val cardinal : t -> int
