(* Memory hierarchy timing: L1I + L1D (Table III: 32 KB, 8-way), a
   unified L2, and main memory.  [access] returns the load-to-use latency
   in cycles and accounts DRAM traffic in bytes for the bandwidth figure
   (Fig 9 bottom): every L2 miss transfers one line from memory, and
   dirty-line writebacks are modelled by charging a line transfer on the
   first write to a line after it is (re)fetched. *)

type config = {
  l1_sets : int;
  l1_ways : int;
  l2_sets : int;
  l2_ways : int;
  line_bytes : int;
  l1_latency : int;
  l2_latency : int;
  mem_latency : int;
  tlb_walk_latency : int;
}

let default_config =
  {
    l1_sets = 64 (* 64 sets x 8 ways x 64 B = 32 KB *);
    l1_ways = 8;
    l2_sets = 512 (* 512 x 8 x 64 = 256 KB *);
    l2_ways = 8;
    line_bytes = 64;
    l1_latency = 4;
    l2_latency = 14;
    mem_latency = 180;
    tlb_walk_latency = 30;
  }

type t = {
  config : config;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  dtlb : Tlb.t;
  dirty_lines : Intset.t;
  line_bits : int;  (* log2 line_bytes: [line_of] must not idiv per access *)
  counters : Chex86_stats.Counter.group;
  h_mem_bytes : Chex86_stats.Counter.handle;
}

let create ?(config = default_config) counters =
  {
    config;
    l1i =
      Cache.create ~name:"l1i" ~sets:config.l1_sets ~ways:config.l1_ways
        ~line_bytes:config.line_bytes counters;
    l1d =
      Cache.create ~name:"l1d" ~sets:config.l1_sets ~ways:config.l1_ways
        ~line_bytes:config.line_bytes counters;
    l2 =
      Cache.create ~name:"l2" ~sets:config.l2_sets ~ways:config.l2_ways
        ~line_bytes:config.line_bytes counters;
    dtlb = Tlb.create ~name:"dtlb" ~sets:16 ~ways:4 counters;
    dirty_lines = Intset.create ~capacity:1024 ();
    line_bits =
      (let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
       log2 config.line_bytes);
    counters;
    h_mem_bytes = Chex86_stats.Counter.handle counters "mem.bytes";
  }

let dtlb t = t.dtlb

let line_of t addr = addr lsr t.line_bits

let mem_traffic t bytes = Chex86_stats.Counter.incr_handle ~by:bytes t.counters t.h_mem_bytes

type kind = Inst | Data

(* [access t ~kind ~write addr] -> latency in cycles. *)
let access t ~kind ~write addr =
  let cfg = t.config in
  let tlb_lat =
    match kind with
    | Inst -> 0 (* ITLB not modelled separately *)
    | Data ->
      if Tlb.lookup_hit t.dtlb addr then 0 else cfg.tlb_walk_latency
  in
  let l1 = match kind with Inst -> t.l1i | Data -> t.l1d in
  if Cache.access l1 ~write addr then begin
    if write then Intset.add t.dirty_lines (line_of t addr);
    tlb_lat + cfg.l1_latency
  end
  else if Cache.access t.l2 ~write addr then begin
    if write then Intset.add t.dirty_lines (line_of t addr);
    tlb_lat + cfg.l2_latency
  end
  else begin
    (* Line fill from DRAM; a previously dirty copy of the displaced line
       is charged as a writeback the first time the line is refetched. *)
    mem_traffic t cfg.line_bytes;
    let line = line_of t addr in
    if Intset.mem t.dirty_lines line then begin
      Intset.remove t.dirty_lines line;
      mem_traffic t cfg.line_bytes
    end;
    if write then Intset.add t.dirty_lines line;
    tlb_lat + cfg.mem_latency
  end

let mem_bytes t = Chex86_stats.Counter.get_handle t.counters t.h_mem_bytes
