(* Memory hierarchy timing: L1I + L1D (Table III: 32 KB, 8-way), a
   unified L2, and main memory.  [access] returns the load-to-use latency
   in cycles and accounts DRAM traffic in bytes for the bandwidth figure
   (Fig 9 bottom): every L2 miss transfers one line from memory, and a
   dirty line pays its writeback exactly once — when it is evicted from
   the last data-holding level (an L1D eviction defers to a surviving L2
   copy and vice versa), so streaming stores that never refetch still pay
   and [dirty_lines] stays bounded by the cache capacity. *)

type config = {
  l1_sets : int;
  l1_ways : int;
  l2_sets : int;
  l2_ways : int;
  line_bytes : int;
  l1_latency : int;
  l2_latency : int;
  mem_latency : int;
  tlb_walk_latency : int;
  replacement : Cache.policy;
}

let default_config =
  {
    l1_sets = 64 (* 64 sets x 8 ways x 64 B = 32 KB *);
    l1_ways = 8;
    l2_sets = 512 (* 512 x 8 x 64 = 256 KB *);
    l2_ways = 8;
    line_bytes = 64;
    l1_latency = 4;
    l2_latency = 14;
    mem_latency = 180;
    tlb_walk_latency = 30;
    replacement = Cache.Lru;
  }

type t = {
  config : config;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  dtlb : Tlb.t;
  dirty_lines : Intset.t;
  line_bits : int;  (* log2 line_bytes: [line_of] must not idiv per access *)
  counters : Chex86_stats.Counter.group;
  h_mem_bytes : Chex86_stats.Counter.handle;
  h_wb_bytes : Chex86_stats.Counter.handle;
}

let create ?(config = default_config) counters =
  {
    config;
    l1i =
      Cache.create ~name:"l1i" ~sets:config.l1_sets ~ways:config.l1_ways
        ~line_bytes:config.line_bytes ~policy:config.replacement counters;
    l1d =
      Cache.create ~name:"l1d" ~sets:config.l1_sets ~ways:config.l1_ways
        ~line_bytes:config.line_bytes ~policy:config.replacement counters;
    l2 =
      Cache.create ~name:"l2" ~sets:config.l2_sets ~ways:config.l2_ways
        ~line_bytes:config.line_bytes ~policy:config.replacement counters;
    dtlb = Tlb.create ~name:"dtlb" ~sets:16 ~ways:4 counters;
    dirty_lines = Intset.create ~capacity:1024 ();
    line_bits =
      (let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
       log2 config.line_bytes);
    counters;
    h_mem_bytes = Chex86_stats.Counter.handle counters "mem.bytes";
    h_wb_bytes = Chex86_stats.Counter.handle counters "mem.writeback_bytes";
  }

let config t = t.config

let dtlb t = t.dtlb

let line_of t addr = addr lsr t.line_bits

let mem_traffic t bytes = Chex86_stats.Counter.incr_handle ~by:bytes t.counters t.h_mem_bytes

(* A dirty line just left [from]; if no other data-holding cache still
   has it, its modified bytes go back to DRAM now.  [still_in] is the
   other level that could be sheltering a copy (the L1I never holds
   dirty data, so it cannot defer a writeback). *)
let note_eviction t ~still_in evicted =
  if evicted >= 0 && Intset.mem t.dirty_lines evicted then
    if not (Cache.peek still_in (evicted lsl t.line_bits)) then begin
      Intset.remove t.dirty_lines evicted;
      let bytes = t.config.line_bytes in
      Chex86_stats.Counter.incr_handle ~by:bytes t.counters t.h_mem_bytes;
      Chex86_stats.Counter.incr_handle ~by:bytes t.counters t.h_wb_bytes
    end

type kind = Inst | Data

(* [access t ~kind ~write addr] -> latency in cycles. *)
let access t ~kind ~write addr =
  let cfg = t.config in
  let tlb_lat =
    match kind with
    | Inst -> 0 (* ITLB not modelled separately *)
    | Data ->
      if Tlb.lookup_hit t.dtlb addr then 0 else cfg.tlb_walk_latency
  in
  let l1 = match kind with Inst -> t.l1i | Data -> t.l1d in
  if Cache.access l1 ~write addr then begin
    if write then Intset.add t.dirty_lines (line_of t addr);
    tlb_lat + cfg.l1_latency
  end
  else begin
    (* The L1 miss allocated a line; a displaced dirty line that the L2
       no longer shelters writes back now.  Instruction-side evictions
       never carry dirty data. *)
    (match kind with
    | Data -> note_eviction t ~still_in:t.l2 (Cache.evicted_block t.l1d)
    | Inst -> ());
    if Cache.access t.l2 ~write addr then begin
      if write then Intset.add t.dirty_lines (line_of t addr);
      tlb_lat + cfg.l2_latency
    end
    else begin
      (* Line fill from DRAM; the L2 casualty pays its writeback here
         unless the L1D still holds it (then the L1D eviction pays). *)
      note_eviction t ~still_in:t.l1d (Cache.evicted_block t.l2);
      mem_traffic t cfg.line_bytes;
      if write then Intset.add t.dirty_lines (line_of t addr);
      tlb_lat + cfg.mem_latency
    end
  end

let mem_bytes t = Chex86_stats.Counter.get_handle t.counters t.h_mem_bytes

let writeback_bytes t = Chex86_stats.Counter.get_handle t.counters t.h_wb_bytes

let dirty_line_count t = Intset.cardinal t.dirty_lines
