(* Sparse byte-addressable guest memory.

   Pages (4 KB) are allocated on first touch; the number of touched pages
   is the program's resident set size, which Fig 9 compares across the
   insecure baseline, ASan and CHEx86.  Values are little-endian.

   Addresses and 64-bit values are OCaml native ints: guest virtual
   addresses fit in 48 bits, and workloads never need the 64th value
   bit. *)

let page_bits = 12
let page_size = 1 lsl page_bits

(* A one-entry page cache front-ends the hashtable: guest accesses are
   strongly page-local, and the cached path is branch + array read with
   no [option] boxed per access.  Pages are never removed, so the cache
   can only go stale by growing the table — which [Hashtbl] never moves
   existing [Bytes.t] payloads for.  Absent pages are not cached (reads
   of untouched memory stay allocation-free without materializing the
   page). *)
type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  mutable last_vpn : int;
  mutable last_page : Bytes.t;
}

let no_page = Bytes.create 0

let create () = { pages = Hashtbl.create 1024; last_vpn = -1; last_page = no_page }

let page mem addr =
  let vpn = addr lsr page_bits in
  if vpn = mem.last_vpn then mem.last_page
  else begin
    let bytes =
      try Hashtbl.find mem.pages vpn
      with Not_found ->
        let bytes = Bytes.make page_size '\000' in
        Hashtbl.add mem.pages vpn bytes;
        bytes
    in
    mem.last_vpn <- vpn;
    mem.last_page <- bytes;
    bytes
  end

(* Like [page] but without materializing absent pages; [no_page] when
   the page was never touched. *)
let page_if_present mem addr =
  let vpn = addr lsr page_bits in
  if vpn = mem.last_vpn then mem.last_page
  else
    match Hashtbl.find mem.pages vpn with
    | bytes ->
      mem.last_vpn <- vpn;
      mem.last_page <- bytes;
      bytes
    | exception Not_found -> no_page

let read_byte mem addr =
  let bytes = page_if_present mem addr in
  if bytes == no_page then 0
  else Char.code (Bytes.unsafe_get bytes (addr land (page_size - 1)))

let write_byte mem addr value =
  let bytes = page mem addr in
  Bytes.unsafe_set bytes (addr land (page_size - 1)) (Char.chr (value land 0xFF))

(* Little-endian accumulation as top-level recursions: inner closures
   capturing [bytes]/[off] (or [mem]/[addr]) would allocate on every
   guest load without flambda. *)
let rec read_le bytes off i acc =
  if i < 0 then acc
  else read_le bytes off (i - 1) ((acc lsl 8) lor Char.code (Bytes.unsafe_get bytes (off + i)))

let rec read_le_slow mem addr i acc =
  if i < 0 then acc
  else read_le_slow mem addr (i - 1) ((acc lsl 8) lor read_byte mem (addr + i))

(* [read mem addr n] reads an [n]-byte little-endian value (n <= 8).  The
   common aligned-within-page case reads bytes directly; page-crossing
   accesses fall back to per-byte reads. *)
let read mem addr n =
  let off = addr land (page_size - 1) in
  if off + n <= page_size then begin
    let bytes = page_if_present mem addr in
    if bytes == no_page then 0 else read_le bytes off (n - 1) 0
  end
  else read_le_slow mem addr (n - 1) 0

let write mem addr n value =
  let off = addr land (page_size - 1) in
  if off + n <= page_size then begin
    let bytes = page mem addr in
    for i = 0 to n - 1 do
      Bytes.unsafe_set bytes (off + i) (Char.unsafe_chr ((value lsr (8 * i)) land 0xFF))
    done
  end
  else
    for i = 0 to n - 1 do
      write_byte mem (addr + i) ((value lsr (8 * i)) land 0xFF)
    done

let read64 mem addr = read mem addr 8
let write64 mem addr v = write mem addr 8 v

let zero_range mem addr len =
  for i = 0 to len - 1 do
    write_byte mem (addr + i) 0
  done

let resident_pages mem = Hashtbl.length mem.pages
let resident_bytes mem = resident_pages mem * page_size

(* IEEE double stored bit-exactly: the top bit of the payload does not
   survive a 63-bit int, so doubles are stored via their bit pattern split
   across the 8 bytes using Int64. *)
let read_float mem addr =
  let lo = read mem addr 4 and hi = read mem (addr + 4) 4 in
  Int64.float_of_bits Int64.(logor (of_int lo) (shift_left (of_int hi) 32))

let write_float mem addr f =
  let bits = Int64.bits_of_float f in
  write mem addr 4 Int64.(to_int (logand bits 0xFFFFFFFFL));
  write mem (addr + 4) 4 Int64.(to_int (shift_right_logical bits 32))
