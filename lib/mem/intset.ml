(* Open-addressed set of non-negative ints (linear probing, tombstone
   deletion).  Replaces [(int, unit) Hashtbl.t] on per-memory-access hot
   paths — membership and insertion are a multiply, a mask and a short
   probe over a flat int array, with no boxing and no bucket chasing.

   Keys must be >= 0; the table encodes empty slots as -1 and deleted
   slots as -2.  Load factor (live + tombstones) is kept under 1/2, so
   probes terminate. *)

type t = { mutable keys : int array; mutable live : int; mutable used : int }

let empty_slot = -1
let tomb_slot = -2

(* Odd multiplier scrambles low bits of sequential keys; the product's
   low bits (after [land mask]) are well distributed. *)
let hashc = 0x2545F4914F6CDD1D

let create ?(capacity = 1024) () =
  let rec pow2 n = if n >= capacity then n else pow2 (2 * n) in
  { keys = Array.make (pow2 16) empty_slot; live = 0; used = 0 }

(* All probe loops are top-level recursions with the table state passed
   as arguments — an inner [rec] capturing [t]/[k] allocates a closure
   per membership test without flambda, and these run on every modelled
   cache access (dirty-line tracking). *)
let rec add_probe t k m i first_tomb =
  let s = t.keys.(i) in
  if s = k then ()
  else if s = empty_slot then begin
    if first_tomb >= 0 then t.keys.(first_tomb) <- k
    else begin
      t.keys.(i) <- k;
      t.used <- t.used + 1
    end;
    t.live <- t.live + 1
  end
  else if s = tomb_slot then
    add_probe t k m ((i + 1) land m) (if first_tomb >= 0 then first_tomb else i)
  else add_probe t k m ((i + 1) land m) first_tomb

let rec add t k =
  if 2 * (t.used + 1) > Array.length t.keys then grow t;
  let m = Array.length t.keys - 1 in
  add_probe t k m (k * hashc land m) (-1)

(* Rehash: doubles when genuinely full, otherwise just clears tombstones. *)
and grow t =
  let old = t.keys in
  let n = Array.length old in
  let cap = if 4 * (t.live + 1) > n then 2 * n else n in
  t.keys <- Array.make cap empty_slot;
  t.live <- 0;
  t.used <- 0;
  Array.iter (fun k -> if k >= 0 then add t k) old

let rec mem_probe (keys : int array) (k : int) m i =
  let s = keys.(i) in
  if s = k then true else if s = empty_slot then false else mem_probe keys k m ((i + 1) land m)

let mem t k =
  let m = Array.length t.keys - 1 in
  mem_probe t.keys k m (k * hashc land m)

let rec remove_probe t k m i =
  let s = t.keys.(i) in
  if s = k then begin
    t.keys.(i) <- tomb_slot;
    t.live <- t.live - 1
  end
  else if s <> empty_slot then remove_probe t k m ((i + 1) land m)

let remove t k =
  let m = Array.length t.keys - 1 in
  remove_probe t k m (k * hashc land m)

let cardinal t = t.live
