(** L1I/L1D + L2 + DRAM timing model with bandwidth accounting. *)

type config = {
  l1_sets : int;
  l1_ways : int;
  l2_sets : int;
  l2_ways : int;
  line_bytes : int;
  l1_latency : int;
  l2_latency : int;
  mem_latency : int;
  tlb_walk_latency : int;
  replacement : Cache.policy;
}

(** Table III-like: 32 KB 8-way L1s, 256 KB L2, 64 B lines, true LRU. *)
val default_config : config

type t

val create : ?config:config -> Chex86_stats.Counter.group -> t

(** The configuration this hierarchy was built with. *)
val config : t -> config

(** The data TLB (carries the alias-hosting bits). *)
val dtlb : t -> Tlb.t

type kind = Inst | Data

(** [access t ~kind ~write addr] returns the access latency in cycles and
    updates cache state, TLB state and DRAM traffic counters.  Dirty
    lines are written back (charged to ["mem.bytes"] and
    ["mem.writeback_bytes"]) when evicted from the last data-holding
    level. *)
val access : t -> kind:kind -> write:bool -> int -> int

(** Extra DRAM traffic in bytes charged by shadow structures etc. *)
val mem_traffic : t -> int -> unit

(** Total DRAM bytes transferred so far (includes writebacks). *)
val mem_bytes : t -> int

(** Dirty-line writeback bytes charged so far. *)
val writeback_bytes : t -> int

(** Lines currently dirty somewhere in the hierarchy — bounded by cache
    capacity now that evictions clear their entries. *)
val dirty_line_count : t -> int
