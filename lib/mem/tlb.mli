(** TLB extended with the paper's per-page alias-hosting bit. *)

type t

val create :
  name:string -> sets:int -> ways:int -> Chex86_stats.Counter.group -> t

(** [lookup t addr] is [(hit, alias_hosting)]; misses fill from page-table
    metadata. *)
val lookup : t -> int -> bool * bool

(** [lookup_hit t addr] is [fst (lookup t addr)] without allocating the
    pair — the per-access form used by the timing hierarchy. *)
val lookup_hit : t -> int -> bool

(** Record that the page containing [addr] hosts a spilled pointer alias. *)
val set_alias_hosting : t -> int -> unit

(** Authoritative page-table bit (independent of TLB residency). *)
val page_alias_bit : t -> int -> bool

(** Number of pages currently marked alias-hosting. *)
val alias_hosting_pages : t -> int
