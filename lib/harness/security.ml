(* Security evaluation sweep (Section VII-A): run every exploit of the
   three suites on the insecure baseline and under a protection
   configuration, and tabulate who got caught, with what violation
   class. *)

module Exploit = Chex86_exploits.Exploit

type result = {
  exploit : Exploit.t;
  insecure : Runner.run;
  under_protection : Runner.run;
}

let evaluate ?(config = Runner.prediction) (exploit : Exploit.t) =
  let insecure =
    Runner.run_program ~timing:false ~max_insns:2_000_000 Runner.insecure
      (exploit.build ())
  in
  let under_protection =
    Runner.run_program ~timing:false ~max_insns:2_000_000 config (exploit.build ())
  in
  { exploit; insecure; under_protection }

let blocked result =
  match result.under_protection.Runner.outcome with
  | Runner.Blocked _ -> true
  | _ -> false

let blocked_as_expected result =
  match result.under_protection.Runner.outcome with
  | Runner.Blocked kind -> Exploit.matches result.exploit.Exploit.expected kind
  | _ -> false

(* The attack must not land under protection: not even the allocator
   should see the corruption. *)
let corruption_prevented result = not result.under_protection.Runner.pwned

let tally_result (ctx : Pool.ctx) r =
  let c = ctx.Pool.counters in
  Chex86_stats.Counter.incr c "sweep.total";
  if blocked r then Chex86_stats.Counter.incr c "sweep.blocked";
  if blocked_as_expected r then Chex86_stats.Counter.incr c "sweep.expected_class";
  if corruption_prevented r then Chex86_stats.Counter.incr c "sweep.prevented";
  (match r.under_protection.Runner.outcome with
  | Runner.Blocked kind ->
    Chex86_stats.Counter.incr c ("sweep.class." ^ Chex86.Violation.class_name kind)
  | _ -> ());
  Chex86_stats.Histogram.add
    (ctx.Pool.histogram "sweep.protected_macro_insns")
    r.under_protection.Runner.macro_insns

(* The 800+ exploits shard trivially: each evaluation builds its own two
   guest programs and monitors.  Dispatch is batched (Pool.map_stats_batched):
   workers tally outcome counters and an instruction-count histogram into
   chunk-shared stats snapshotted once per chunk; the coordinator merges
   them in chunk (= ascending exploit) order, so the sweep is
   bit-identical at any job count and batch size (modulo the
   [pool.chunks] dispatch counter). *)
let sweep_stats ?config ?jobs ?batch_size exploits =
  Trace.with_span ~stage:"sweep"
    [ ("kind", "security"); ("tasks", string_of_int (List.length exploits)) ]
  @@ fun () ->
  let results, stats =
    Pool.map_stats_batched ?jobs ?batch_size
      ~key:(fun (e : Exploit.t) -> e.Exploit.name)
      (fun exploit (ctx : Pool.ctx) ->
        let r = evaluate ?config exploit in
        tally_result ctx r;
        r)
      (Array.of_list exploits)
  in
  (Array.to_list results, stats)

let sweep ?config ?jobs ?batch_size exploits =
  fst (sweep_stats ?config ?jobs ?batch_size exploits)

(* Remote task kind: the wire carries the exploit's name and a
   marshalled config; the worker re-looks the exploit up in its own
   registry (Exploit.t holds a build closure, which can't cross the
   process boundary) and returns the two runs marshalled.  Registered
   on both sides: here for the supervisor's degraded/local path, and by
   bin/chex86_worker.ml at startup. *)
let remote_kind = "security"

let register_remote () =
  Remote.register_kind remote_kind (fun ~key ~arg (ctx : Pool.ctx) ->
      let exploit = Chex86_exploits.Exploits.find key in
      let config : Runner.config = Marshal.from_string arg 0 in
      Pool.check_deadline ();
      let r = evaluate ~config exploit in
      tally_result ctx r;
      Marshal.to_string (r.insecure, r.under_protection) [])

(* Supervised variant: a crashing or wedged exploit evaluation is
   classified and reported instead of killing the sweep; its stats are
   discarded wholesale, so the [sweep.*] counters only count completed
   evaluations (plus the [pool.*] fault counters the supervisor adds).
   With workers configured ([--workers]/[--worker]) the sweep runs in
   worker processes instead of domains — same results, but a wedged
   evaluation can also be killed at the heartbeat deadline. *)
let sweep_stats_supervised ?config ?jobs ?batch_size ?retries ?task_timeout exploits =
  Trace.with_span ~stage:"sweep"
    [ ("kind", "security"); ("tasks", string_of_int (List.length exploits)) ]
  @@ fun () ->
  if Remote.enabled () then begin
    register_remote ();
    let config = Option.value ~default:Runner.prediction config in
    let config_arg = Marshal.to_string config [] in
    let results, stats, report =
      Remote.sweep ?batch_size ?retries ?task_timeout ~kind:remote_kind
        ~key:(fun (e : Exploit.t) -> e.Exploit.name)
        ~arg:(fun _ -> config_arg)
        (Array.of_list exploits)
    in
    ignore jobs;
    let results =
      Array.to_list results
      |> List.map2
           (fun exploit outcome ->
             ( exploit,
               Result.map
                 (fun payload ->
                   let insecure, under_protection =
                     (Marshal.from_string payload 0 : Runner.run * Runner.run)
                   in
                   { exploit; insecure; under_protection })
                 outcome ))
           exploits
    in
    (results, stats, report)
  end
  else
    let results, stats, report =
      Pool.map_stats_supervised_batched ?jobs ?batch_size ?retries ?task_timeout
        ~key:(fun (e : Exploit.t) -> e.Exploit.name)
        (fun exploit (ctx : Pool.ctx) ->
          Pool.check_deadline ();
          let r = evaluate ?config exploit in
          tally_result ctx r;
          r)
        (Array.of_list exploits)
    in
    (List.map2 (fun e r -> (e, r)) exploits (Array.to_list results), stats, report)

type suite_summary = {
  suite : Exploit.suite;
  total : int;
  blocked : int;
  expected_class : int;
  prevented : int;
  insecure_corrupts : int;
  insecure_aborts : int;
}

let summarize suite results =
  let mine = List.filter (fun r -> r.exploit.Exploit.suite = suite) results in
  {
    suite;
    total = List.length mine;
    blocked = List.length (List.filter blocked mine);
    expected_class = List.length (List.filter blocked_as_expected mine);
    prevented = List.length (List.filter corruption_prevented mine);
    insecure_corrupts =
      List.length (List.filter (fun r -> r.insecure.Runner.pwned) mine);
    insecure_aborts =
      List.length
        (List.filter
           (fun r -> match r.insecure.Runner.outcome with Runner.Aborted _ -> true | _ -> false)
           mine);
  }

(* Violation-class breakdown of the blocked exploits (the per-class
   discussion of Section VII-A). *)
let class_breakdown results =
  let table = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match r.under_protection.Runner.outcome with
      | Runner.Blocked kind ->
        let name = Chex86.Violation.class_name kind in
        Hashtbl.replace table name (1 + Option.value ~default:0 (Hashtbl.find_opt table name))
      | _ -> ())
    results;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] |> List.sort compare
