(* Security evaluation sweep (Section VII-A): run every exploit of the
   three suites on the insecure baseline and under a protection
   configuration, and tabulate who got caught, with what violation
   class. *)

module Exploit = Chex86_exploits.Exploit

type result = {
  exploit : Exploit.t;
  insecure : Runner.run;
  under_protection : Runner.run;
}

(* One run of an exploit under one configuration, honouring the
   exploit's allocator personality and execution mode (single-core Sim
   vs. the SMP driver for cross-core campaigns). *)
let run_exploit config (exploit : Exploit.t) =
  match exploit.Exploit.execution with
  | Exploit.Single_core ->
    Runner.run_program ~timing:false ~max_insns:2_000_000 ~heap:exploit.Exploit.heap
      config (exploit.build ())
  | Exploit.Multi_core { threads; quantum } ->
    Runner.run_threads ~timing:false ~max_insns:2_000_000 ~heap:exploit.Exploit.heap
      ~quantum ~threads config
      (exploit.build ())

let evaluate ?(config = Runner.prediction) (exploit : Exploit.t) =
  let insecure = run_exploit Runner.insecure exploit in
  let under_protection = run_exploit config exploit in
  { exploit; insecure; under_protection }

let blocked result =
  match result.under_protection.Runner.outcome with
  | Runner.Blocked _ -> true
  | _ -> false

let blocked_as_expected result =
  match result.under_protection.Runner.outcome with
  | Runner.Blocked kind -> Exploit.matches result.exploit.Exploit.expected kind
  | _ -> false

(* The attack must not land under protection: not even the allocator
   should see the corruption. *)
let corruption_prevented result = not result.under_protection.Runner.pwned

(* Outcome bucket of a protected run.  A heap abort is the *allocator*
   stopping the attack, not the protection scheme detecting it — the
   [sweep.outcome.*] counters keep the two separate (folding them into
   one bucket hid allocator saves as detections). *)
let outcome_bucket = function
  | Runner.Completed -> "completed"
  | Runner.Blocked _ -> "violation"
  | Runner.Aborted _ -> "heap_abort"
  | Runner.Faulted _ -> "faulted"
  | Runner.Budget_exhausted -> "budget_exhausted"

let tally_result (ctx : Pool.ctx) r =
  let c = ctx.Pool.counters in
  Chex86_stats.Counter.incr c "sweep.total";
  if blocked r then Chex86_stats.Counter.incr c "sweep.blocked";
  if blocked_as_expected r then Chex86_stats.Counter.incr c "sweep.expected_class";
  if corruption_prevented r then Chex86_stats.Counter.incr c "sweep.prevented";
  Chex86_stats.Counter.incr c
    ("sweep.outcome." ^ outcome_bucket r.under_protection.Runner.outcome);
  (match r.under_protection.Runner.outcome with
  | Runner.Blocked kind ->
    Chex86_stats.Counter.incr c ("sweep.class." ^ Chex86.Violation.class_name kind)
  | _ -> ());
  Chex86_stats.Histogram.add
    (ctx.Pool.histogram "sweep.protected_macro_insns")
    r.under_protection.Runner.macro_insns

(* The 800+ exploits shard trivially: each evaluation builds its own two
   guest programs and monitors.  Dispatch is batched (Pool.map_stats_batched):
   workers tally outcome counters and an instruction-count histogram into
   chunk-shared stats snapshotted once per chunk; the coordinator merges
   them in chunk (= ascending exploit) order, so the sweep is
   bit-identical at any job count and batch size (modulo the
   [pool.chunks] dispatch counter). *)
let sweep_stats ?config ?jobs ?batch_size exploits =
  Trace.with_span ~stage:"sweep"
    [ ("kind", "security"); ("tasks", string_of_int (List.length exploits)) ]
  @@ fun () ->
  let results, stats =
    Pool.map_stats_batched ?jobs ?batch_size
      ~key:(fun (e : Exploit.t) -> e.Exploit.name)
      (fun exploit (ctx : Pool.ctx) ->
        let r = evaluate ?config exploit in
        tally_result ctx r;
        r)
      (Array.of_list exploits)
  in
  (Array.to_list results, stats)

let sweep ?config ?jobs ?batch_size exploits =
  fst (sweep_stats ?config ?jobs ?batch_size exploits)

(* Remote task kind: the wire carries the exploit's name and a
   marshalled config; the worker re-looks the exploit up in its own
   registry (Exploit.t holds a build closure, which can't cross the
   process boundary) and returns the two runs marshalled.  Registered
   on both sides: here for the supervisor's degraded/local path, and by
   bin/chex86_worker.ml at startup. *)
let remote_kind = "security"

let register_remote () =
  Remote.register_kind remote_kind (fun ~key ~arg (ctx : Pool.ctx) ->
      let exploit = Chex86_exploits.Exploits.find key in
      let config : Runner.config = Marshal.from_string arg 0 in
      Pool.check_deadline ();
      let r = evaluate ~config exploit in
      tally_result ctx r;
      Marshal.to_string (r.insecure, r.under_protection) [])

(* Supervised variant: a crashing or wedged exploit evaluation is
   classified and reported instead of killing the sweep; its stats are
   discarded wholesale, so the [sweep.*] counters only count completed
   evaluations (plus the [pool.*] fault counters the supervisor adds).
   With workers configured ([--workers]/[--worker]) the sweep runs in
   worker processes instead of domains — same results, but a wedged
   evaluation can also be killed at the heartbeat deadline. *)
let sweep_stats_supervised ?config ?jobs ?batch_size ?retries ?task_timeout exploits =
  Trace.with_span ~stage:"sweep"
    [ ("kind", "security"); ("tasks", string_of_int (List.length exploits)) ]
  @@ fun () ->
  if Remote.enabled () then begin
    register_remote ();
    let config = Option.value ~default:Runner.prediction config in
    let config_arg = Marshal.to_string config [] in
    let results, stats, report =
      Remote.sweep ?batch_size ?retries ?task_timeout ~kind:remote_kind
        ~key:(fun (e : Exploit.t) -> e.Exploit.name)
        ~arg:(fun _ -> config_arg)
        (Array.of_list exploits)
    in
    ignore jobs;
    let results =
      Array.to_list results
      |> List.map2
           (fun exploit outcome ->
             ( exploit,
               Result.map
                 (fun payload ->
                   let insecure, under_protection =
                     (Marshal.from_string payload 0 : Runner.run * Runner.run)
                   in
                   { exploit; insecure; under_protection })
                 outcome ))
           exploits
    in
    (results, stats, report)
  end
  else
    let results, stats, report =
      Pool.map_stats_supervised_batched ?jobs ?batch_size ?retries ?task_timeout
        ~key:(fun (e : Exploit.t) -> e.Exploit.name)
        (fun exploit (ctx : Pool.ctx) ->
          Pool.check_deadline ();
          let r = evaluate ?config exploit in
          tally_result ctx r;
          r)
        (Array.of_list exploits)
    in
    (List.map2 (fun e r -> (e, r)) exploits (Array.to_list results), stats, report)

type suite_summary = {
  suite : Exploit.suite;
  total : int;
  blocked : int;
  expected_class : int;
  prevented : int;
  insecure_corrupts : int;
  insecure_aborts : int;
}

let summarize suite results =
  let mine = List.filter (fun r -> r.exploit.Exploit.suite = suite) results in
  {
    suite;
    total = List.length mine;
    blocked = List.length (List.filter blocked mine);
    expected_class = List.length (List.filter blocked_as_expected mine);
    prevented = List.length (List.filter corruption_prevented mine);
    insecure_corrupts =
      List.length (List.filter (fun r -> r.insecure.Runner.pwned) mine);
    insecure_aborts =
      List.length
        (List.filter
           (fun r -> match r.insecure.Runner.outcome with Runner.Aborted _ -> true | _ -> false)
           mine);
  }

(* --- campaign detection matrices ------------------------------------------ *)

module Campaign = Chex86_exploits.Campaign

(* One (family x allocator x config) cell of a detection matrix. *)
type matrix_cell = {
  total : int;
  detected : int;  (* a security violation was raised *)
  expected_class : int;  (* ... of the campaign's expected class *)
  aborted : int;  (* the allocator's own integrity check fired *)
  missed : int;  (* completed with the pwned flag set *)
  benign : int;  (* completed without corrupting *)
  undetermined : int;  (* faulted, budget-exhausted, or sweep fault *)
}

let empty_cell =
  {
    total = 0;
    detected = 0;
    expected_class = 0;
    aborted = 0;
    missed = 0;
    benign = 0;
    undetermined = 0;
  }

let add_run cell (exploit : Exploit.t) (run : Runner.run) =
  let cell = { cell with total = cell.total + 1 } in
  match run.Runner.outcome with
  | Runner.Blocked kind ->
    {
      cell with
      detected = cell.detected + 1;
      expected_class =
        (cell.expected_class
        + if Exploit.matches exploit.Exploit.expected kind then 1 else 0);
    }
  | Runner.Aborted _ -> { cell with aborted = cell.aborted + 1 }
  | Runner.Completed ->
    if run.Runner.pwned then { cell with missed = cell.missed + 1 }
    else { cell with benign = cell.benign + 1 }
  | Runner.Faulted _ | Runner.Budget_exhausted ->
    { cell with undetermined = cell.undetermined + 1 }

let add_fault cell =
  { cell with total = cell.total + 1; undetermined = cell.undetermined + 1 }

(* Per-(family x allocator x config) detection matrix over a campaign
   corpus.  Each config is one supervised sweep over the synthesized
   exploits, so the evaluations shard over the domain pool — or over
   remote workers when configured — and rows are folded serially in
   deterministic (family, allocator, config) order: the matrix is
   bit-identical at any jobs / batch-size / workers geometry. *)
let campaign_matrix ?jobs ?batch_size ?retries ?task_timeout ~configs campaigns =
  let exploits = List.map Campaign.to_exploit campaigns in
  let cells = Hashtbl.create 64 in
  let bump key f =
    Hashtbl.replace cells key (f (Option.value ~default:empty_cell (Hashtbl.find_opt cells key)))
  in
  List.iter
    (fun config ->
      let results, _stats, _report =
        sweep_stats_supervised ~config ?jobs ?batch_size ?retries ?task_timeout exploits
      in
      List.iter2
        (fun campaign (exploit, outcome) ->
          let key =
            ( Campaign.family campaign,
              Chex86_os.Allocator.personality_name campaign.Campaign.alloc,
              Runner.config_name config )
          in
          match outcome with
          | Ok r -> bump key (fun cell -> add_run cell exploit r.under_protection)
          | Error (_ : Pool.fault) -> bump key add_fault)
        campaigns results)
    configs;
  (* deterministic row order: family, then allocator, then config order
     as given *)
  List.concat_map
    (fun family ->
      List.concat_map
        (fun alloc ->
          List.filter_map
            (fun config ->
              let key = (family, alloc, Runner.config_name config) in
              Option.map (fun cell -> (key, cell)) (Hashtbl.find_opt cells key))
            configs)
        [ "glibc"; "seg" ])
    Campaign.families

let render_matrix matrix =
  Chex86_stats.Render.table
    ~header:
      [ "family"; "heap"; "configuration"; "total"; "detected"; "expected-class";
        "aborted"; "missed"; "benign"; "undet" ]
    (List.map
       (fun ((family, alloc, config), c) ->
         [ family; alloc; config; string_of_int c.total; string_of_int c.detected;
           string_of_int c.expected_class; string_of_int c.aborted;
           string_of_int c.missed; string_of_int c.benign;
           string_of_int c.undetermined ])
       matrix)

(* Deterministic compact JSON; the golden matrix files in CI are a
   byte-for-byte diff against this. *)
let matrix_to_json matrix =
  let module J = Chex86_stats.Json in
  J.Obj
    [
      ("schema", J.String "chex86-campaign-matrix-v1");
      ( "rows",
        J.List
          (List.map
             (fun ((family, alloc, config), c) ->
               J.Obj
                 [
                   ("family", J.String family);
                   ("heap", J.String alloc);
                   ("config", J.String config);
                   ("total", J.Int c.total);
                   ("detected", J.Int c.detected);
                   ("expected_class", J.Int c.expected_class);
                   ("aborted", J.Int c.aborted);
                   ("missed", J.Int c.missed);
                   ("benign", J.Int c.benign);
                   ("undetermined", J.Int c.undetermined);
                 ])
             matrix) );
    ]

(* Violation-class breakdown of the blocked exploits (the per-class
   discussion of Section VII-A). *)
let class_breakdown results =
  let table = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match r.under_protection.Runner.outcome with
      | Runner.Blocked kind ->
        let name = Chex86.Violation.class_name kind in
        Hashtbl.replace table name (1 + Option.value ~default:0 (Hashtbl.find_opt table name))
      | _ -> ())
    results;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] |> List.sort compare
