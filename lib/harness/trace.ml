(* Structured, low-overhead tracing and metrics for the sweep stack.

   Span events (begin/end pairs with monotonic timestamps, parent ids
   and key=value attrs) and instant events are written as buffered JSONL
   to the [--trace] file; a merged counter/histogram snapshot goes to
   the [--metrics] file as one JSON object at process exit.  Both are
   off by default.

   Contract with the hot path: when tracing is off, an instrumented
   site costs exactly one branch ([on ()] reads one atomic bool) and
   performs no allocation — every call site guards with
   [if Trace.on () then ...] and only builds its attrs inside the
   guard.  When tracing is on, emission never touches task state (RNG
   streams, counter groups, histograms), so merged sweep stats are
   bit-identical to an untraced run; test/test_trace.ml enforces this
   across (jobs, batch) geometries.

   Worker processes do not get their own trace file: the supervisor's
   [Remote] request carries a trace flag, the worker buffers its span
   lines in memory ([set_collect]) tagged with its own [src] id, and
   ships them back piggybacked on the existing Chunk_done frame — the
   supervisor appends them verbatim ([absorb_payload]).  Span ids are
   only unique per [src], and worker spans reference their supervisor
   counterpart through the chunk id attr both sides stamp, so the
   streams stitch without any cross-process id coordination.

   Layering: this module sits below Pool/Remote/Runner/Security (they
   all hook into it), so it must reference none of them. *)

module Counter = Chex86_stats.Counter
module Histogram = Chex86_stats.Histogram
module Json = Chex86_stats.Json
module Render = Chex86_stats.Render

(* Same monotonic clock as [Pool.now] (which delegates to the same
   binding): span timestamps and deadline arithmetic share one epoch. *)
let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

(* --- sink ------------------------------------------------------------------ *)

type sink =
  | File of out_channel
  | Collect of Buffer.t  (* worker mode: lines held for shipping *)

let lock = Mutex.create ()
let sink : sink option ref = ref None

(* The hot-path guard.  Mirrors [sink <> None]; kept as a separate
   atomic so [on ()] is one unsynchronized load, never a mutex. *)
let active = Atomic.make false
let on () = Atomic.get active

(* Event source tag: "main" in the supervisor, "w<pid>" in workers.
   Ids are unique per source only. *)
let src = ref "main"
let set_src s = Mutex.protect lock (fun () -> src := s)

let next_id = Atomic.make 1
let fresh_id () = Atomic.fetch_and_add next_id 1

(* Telemetry must never fault the sweep: a write error (full disk,
   closed channel) silently drops the event. *)
let write_string s =
  Mutex.protect lock (fun () ->
      match !sink with
      | Some (File oc) -> ( try output_string oc s with Sys_error _ -> ())
      | Some (Collect buf) -> Buffer.add_string buf s
      | None -> ())

let write_line line = write_string (line ^ "\n")

let flush () =
  Mutex.protect lock (fun () ->
      match !sink with
      | Some (File oc) -> ( try Stdlib.flush oc with Sys_error _ -> ())
      | _ -> ())

(* --- metrics accumulator --------------------------------------------------- *)

let metrics_path : string option ref = ref None
let metrics_active = Atomic.make false
let metrics_on () = Atomic.get metrics_active
let metrics_counters = ref Counter.empty_snapshot
let metrics_hists : (string, Histogram.snapshot) Hashtbl.t = Hashtbl.create 8

let metrics_absorb (counters, hists) =
  Mutex.protect lock (fun () ->
      metrics_counters := Counter.merge !metrics_counters counters;
      List.iter
        (fun (name, snap) ->
          let prev =
            Option.value ~default:Histogram.empty_snapshot
              (Hashtbl.find_opt metrics_hists name)
          in
          Hashtbl.replace metrics_hists name (Histogram.merge prev snap))
        hists)

(* Extra top-level sections for the metrics export, contributed by
   layers Trace must not depend on (Runner adds its store counters
   here). Called once at export time. *)
let metrics_extra : (unit -> (string * Json.t) list) ref = ref (fun () -> [])

let metrics_json () =
  let extra = !metrics_extra () in
  Mutex.protect lock (fun () ->
      let hists =
        Hashtbl.fold (fun name snap acc -> (name, snap) :: acc) metrics_hists []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
        |> List.map (fun (name, snap) -> (name, Histogram.json_of_snapshot snap))
      in
      Json.Obj
        ([
           ("counters", Counter.json_of_snapshot !metrics_counters);
           ("histograms", Json.Obj hists);
         ]
        @ extra))

let write_metrics () =
  match !metrics_path with
  | None -> ()
  | Some path -> (
    let body = Json.to_string (metrics_json ()) in
    try
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc body;
          output_char oc '\n')
    with Sys_error msg ->
      Printf.eprintf "chex86-trace: cannot write metrics to %s (%s)\n%!" path msg)

(* --- lifecycle ------------------------------------------------------------- *)

let exit_hook = ref false

let finalize () =
  flush ();
  write_metrics ()

let install_exit_hook () =
  if not !exit_hook then begin
    exit_hook := true;
    at_exit finalize
  end

let close_sink () =
  match !sink with
  | Some (File oc) ->
    (try Stdlib.flush oc with Sys_error _ -> ());
    close_out_noerr oc;
    sink := None
  | Some (Collect _) | None -> sink := None

let set_output = function
  | Some path ->
    install_exit_hook ();
    let oc =
      try open_out path
      with Sys_error msg ->
        Printf.eprintf "chex86-trace: cannot open %s (%s); tracing disabled\n%!" path msg;
        raise Exit
    in
    Mutex.protect lock (fun () ->
        close_sink ();
        sink := Some (File oc));
    Atomic.set active true
  | None ->
    Mutex.protect lock (fun () -> close_sink ());
    Atomic.set active false

let set_output p = try set_output p with Exit -> ()

(* Worker collection mode.  A file sink configured explicitly (a worker
   started with its own --trace) wins over collection: its spans go to
   its own file and are not shipped. *)
let set_collect enable =
  Mutex.protect lock (fun () ->
      match (!sink, enable) with
      | Some (File _), _ -> ()
      | Some (Collect _), true -> ()
      | (Some (Collect _) | None), false ->
        sink := None;
        Atomic.set active false
      | None, true ->
        sink := Some (Collect (Buffer.create 4096));
        Atomic.set active true)

let drain_collected () =
  Mutex.protect lock (fun () ->
      match !sink with
      | Some (Collect buf) ->
        let s = Buffer.contents buf in
        Buffer.clear buf;
        s
      | _ -> "")

(* Supervisor side of the stitch: worker payloads are complete JSONL
   lines already tagged with the worker's [src]; append them verbatim. *)
let absorb_payload payload = if on () && payload <> "" then write_string payload

let set_metrics = function
  | Some path ->
    install_exit_hook ();
    metrics_path := Some path;
    Atomic.set metrics_active true
  | None ->
    metrics_path := None;
    Atomic.set metrics_active false

(* --- events ---------------------------------------------------------------- *)

let event ~ev ~id ~parent ~stage attrs =
  let fields =
    ("ev", Json.String ev)
    :: ("id", Json.Int id)
    :: (if parent <> 0 then [ ("par", Json.Int parent) ] else [])
    @ [ ("t", Json.Float (now ())); ("src", Json.String !src) ]
    @ (if stage = "" then [] else [ ("stage", Json.String stage) ])
    @
    if attrs = [] then []
    else [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) attrs)) ]
  in
  write_line (Json.to_string (Json.Obj fields))

let span_begin ?(parent = 0) ~stage attrs =
  if not (on ()) then 0
  else begin
    let id = fresh_id () in
    event ~ev:"b" ~id ~parent ~stage attrs;
    id
  end

let span_end id = if id <> 0 && on () then event ~ev:"e" ~id ~parent:0 ~stage:"" []

let instant ?(parent = 0) ~stage attrs =
  if on () then event ~ev:"i" ~id:(fresh_id ()) ~parent ~stage attrs

let with_span ?parent ~stage attrs f =
  if not (on ()) then f ()
  else begin
    let id = span_begin ?parent ~stage attrs in
    match f () with
    | v ->
      span_end id;
      v
    | exception e ->
      span_end id;
      raise e
  end

(* --- trace-summary --------------------------------------------------------- *)

(* Aggregate a span file: per-stage latency histograms (p50/p99 via the
   exact Histogram) and a per-source utilization table.  Structural
   validation is part of the contract: every end must name an open
   begin from the same source, and a parent must not close while a
   child is still open.  Unclosed spans at EOF are reported but are not
   errors — a SIGKILLed worker legitimately loses its tail. *)

type open_span = { o_stage : string; o_t : float; o_parent : int }

type src_stats = {
  mutable first_t : float;
  mutable last_t : float;
  mutable tasks : int;
  mutable busy : float;
}

let summarize_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let errors = ref [] in
        let err line fmt =
          Printf.ksprintf
            (fun msg -> errors := Printf.sprintf "line %d: %s" line msg :: !errors)
            fmt
        in
        let opens : (string * int, open_span) Hashtbl.t = Hashtbl.create 64 in
        let stages : (string, Histogram.t) Hashtbl.t = Hashtbl.create 16 in
        let srcs : (string, src_stats) Hashtbl.t = Hashtbl.create 8 in
        let events = ref 0
        and spans = ref 0
        and instants = ref 0 in
        let stage_hist stage =
          match Hashtbl.find_opt stages stage with
          | Some h -> h
          | None ->
            let h = Histogram.create () in
            Hashtbl.add stages stage h;
            h
        in
        let src_stat s t =
          match Hashtbl.find_opt srcs s with
          | Some st ->
            if t < st.first_t then st.first_t <- t;
            if t > st.last_t then st.last_t <- t;
            st
          | None ->
            let st = { first_t = t; last_t = t; tasks = 0; busy = 0. } in
            Hashtbl.add srcs s st;
            st
        in
        let line_no = ref 0 in
        (* A crash mid-write (a SIGKILLed worker or daemon) legitimately
           leaves a torn final line.  A failed parse is held as
           *pending*: if any further non-empty line follows, it was real
           mid-stream garbage and is promoted to an error; if it turns
           out to be the last non-empty line, it is noted in the summary
           header instead, so post-crash traces stay analyzable. *)
        let pending_torn : (int * string) option ref = ref None in
        let promote_pending () =
          match !pending_torn with
          | None -> ()
          | Some (ln, msg) ->
            pending_torn := None;
            err ln "unparseable JSON (%s)" msg
        in
        (try
           while true do
             let line = input_line ic in
             incr line_no;
             let ln = !line_no in
             if String.trim line <> "" then begin
               promote_pending ();
               match Json.of_string line with
               | Error msg -> pending_torn := Some (ln, msg)
               | Ok v -> (
                 incr events;
                 let str k = Option.bind (Json.member k v) Json.to_string_opt in
                 let num k = Option.bind (Json.member k v) Json.to_float_opt in
                 let int k = Option.bind (Json.member k v) Json.to_int_opt in
                 match (str "ev", num "t", str "src") with
                 | None, _, _ -> err ln "missing \"ev\" field"
                 | _, None, _ -> err ln "missing \"t\" timestamp"
                 | _, _, None -> err ln "missing \"src\" field"
                 | Some ev, Some t, Some s -> (
                   let st = src_stat s t in
                   match ev with
                   | "i" -> incr instants
                   | "b" -> (
                     incr spans;
                     match int "id" with
                     | None -> err ln "begin without \"id\""
                     | Some id -> (
                       let stage = Option.value ~default:"?" (str "stage") in
                       let parent = Option.value ~default:0 (int "par") in
                       match Hashtbl.find_opt opens (s, id) with
                       | Some _ -> err ln "duplicate begin for %s/%d" s id
                       | None ->
                         Hashtbl.add opens (s, id)
                           { o_stage = stage; o_t = t; o_parent = parent }))
                   | "e" -> (
                     match int "id" with
                     | None -> err ln "end without \"id\""
                     | Some id -> (
                       match Hashtbl.find_opt opens (s, id) with
                       | None -> err ln "end without matching begin (%s/%d)" s id
                       | Some o ->
                         Hashtbl.remove opens (s, id);
                         (* A child still open under this parent means
                            the parent closed first. *)
                         Hashtbl.iter
                           (fun (cs, cid) c ->
                             if cs = s && c.o_parent = id then
                               err ln "span %s/%d closed before child %d" s id cid)
                           opens;
                         let dt_us = int_of_float ((t -. o.o_t) *. 1e6) in
                         Histogram.add (stage_hist o.o_stage) (max 0 dt_us);
                         if o.o_stage = "task" then begin
                           st.tasks <- st.tasks + 1;
                           st.busy <- st.busy +. Float.max 0. (t -. o.o_t)
                         end))
                   | other -> err ln "unknown event type %S" other))
             end
           done
         with End_of_file -> ());
        if !errors <> [] then
          Error
            (Printf.sprintf "%d error(s):\n  %s"
               (List.length !errors)
               (String.concat "\n  " (List.rev !errors)))
        else begin
          let unclosed = Hashtbl.length opens in
          let stage_rows =
            Hashtbl.fold (fun stage h acc -> (stage, h) :: acc) stages []
            |> List.sort (fun (a, _) (b, _) -> compare a b)
            |> List.map (fun (stage, h) ->
                   [
                     stage;
                     string_of_int (Histogram.count h);
                     string_of_int (Histogram.percentile h 0.50);
                     string_of_int (Histogram.percentile h 0.99);
                     string_of_int (Histogram.max_value h);
                   ])
          in
          let src_rows =
            Hashtbl.fold (fun s st acc -> (s, st) :: acc) srcs []
            |> List.sort (fun (a, _) (b, _) -> compare a b)
            |> List.map (fun (s, st) ->
                   let wall = st.last_t -. st.first_t in
                   [
                     s;
                     string_of_int st.tasks;
                     Printf.sprintf "%.3f" st.busy;
                     Printf.sprintf "%.3f" wall;
                     (if wall > 0. then Render.percent (st.busy /. wall) else "-");
                   ])
          in
          let torn_note =
            match !pending_torn with
            | None -> ""
            | Some (ln, msg) ->
              Printf.sprintf "; truncated final line %d skipped (%s)" ln msg
          in
          Ok
            (String.concat "\n"
               [
                 Printf.sprintf
                   "%d event(s): %d span(s) (%d unclosed), %d instant(s), %d source(s)%s"
                   !events !spans unclosed !instants (Hashtbl.length srcs)
                   torn_note;
                 "";
                 "Per-stage latency (microseconds):";
                 Render.table
                   ~header:[ "stage"; "spans"; "p50"; "p99"; "max" ]
                   stage_rows;
                 "";
                 "Per-source utilization (busy = time inside task spans):";
                 Render.table
                   ~header:[ "source"; "tasks"; "busy(s)"; "wall(s)"; "util" ]
                   src_rows;
               ])
        end)
  with
  | result -> result
  | exception Sys_error msg -> Error msg

(* Test hook: forget accumulated metrics (the sinks are left alone). *)
let reset_metrics_for_tests () =
  Mutex.protect lock (fun () ->
      metrics_counters := Counter.empty_snapshot;
      Hashtbl.reset metrics_hists)
