(* Domains-based parallel experiment engine.

   Shards independent simulation tasks over a fixed-size pool of worker
   domains.  Three properties make parallel sweeps safe to trust:

   - every task is self-contained: it builds its own guest program,
     monitor and counter group, so workers share no mutable state;
   - per-task RNG streams are seeded from a stable hash of the task key
     (FNV-1a over the key string), never from worker identity or
     scheduling order;
   - per-task stats are accumulated into private groups and merged by
     the coordinator in task order, and the merge operators
     ([Counter.merge] / [Histogram.merge]) are order-insensitive.

   Together these guarantee that a sweep at [~jobs:n] is bit-identical
   to the serial [~jobs:1] run (enforced by test/test_parallel.ml).

   [~jobs:1] does not spawn any domain: tasks run in the calling domain,
   in index order, through the exact same code path as before the pool
   existed. *)

module Rng = Chex86_stats.Rng
module Counter = Chex86_stats.Counter
module Histogram = Chex86_stats.Histogram

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* Process-wide job count, set once from the CLI (--jobs). *)
let current_jobs = Atomic.make (default_jobs ())
let set_jobs n = Atomic.set current_jobs (max 1 n)
let jobs () = Atomic.get current_jobs

(* Stable 64-bit FNV-1a over the task key.  [Hashtbl.hash] would also be
   deterministic, but spelling the hash out pins the seed derivation
   against stdlib changes. *)
let seed_of_key key =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    key;
  (* Int64.to_int keeps the low 63 bits; mask the sign bit so the seed
     is always non-negative. *)
  Int64.to_int !h land max_int

let rng_of_key key = Rng.create (seed_of_key key)

(* Run [compute i] for [i < n] across [jobs] workers.  Results land in a
   slot array indexed by task, so output order is input order no matter
   which worker ran what.  Exceptions are re-raised in the coordinator,
   deterministically picking the lowest-index failure. *)
let run_indexed ~jobs n compute =
  let slots = Array.make n None in
  if jobs <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      slots.(i) <- Some (Ok (compute i))
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (slots.(i) <-
            (try Some (Ok (compute i))
             with e -> Some (Error (e, Printexc.get_raw_backtrace ()))));
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker () (* the coordinator is one of the pool's workers *);
    List.iter Domain.join spawned
  end;
  Array.iteri
    (fun i slot ->
      match slot with
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) -> ()
      | None -> failwith (Printf.sprintf "Pool: task %d lost" i))
    slots;
  Array.map (function Some (Ok v) -> v | _ -> assert false) slots

let map ?jobs:j f tasks =
  let jobs = match j with Some j -> max 1 j | None -> jobs () in
  run_indexed ~jobs (Array.length tasks) (fun i -> f tasks.(i))

(* --- keyed tasks with private stats -------------------------------------- *)

type ctx = {
  key : string;
  rng : Rng.t;
  counters : Counter.group;
  histogram : string -> Histogram.t;
}

type merged_stats = {
  counters : Counter.group;
  histograms : (string * Histogram.t) list;
}

let map_stats ?jobs:j ~key f tasks =
  let jobs = match j with Some j -> max 1 j | None -> jobs () in
  let compute i =
    let k = key tasks.(i) in
    let counters = Counter.create_group () in
    let hists : (string, Histogram.t) Hashtbl.t = Hashtbl.create 4 in
    let histogram name =
      match Hashtbl.find_opt hists name with
      | Some h -> h
      | None ->
        let h = Histogram.create () in
        Hashtbl.add hists name h;
        h
    in
    let ctx = { key = k; rng = rng_of_key k; counters; histogram } in
    let v = f tasks.(i) ctx in
    let hist_snaps =
      Hashtbl.fold (fun name h acc -> (name, Histogram.snapshot h) :: acc) hists []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    (v, Counter.group_snapshot counters, hist_snaps)
  in
  let raw = run_indexed ~jobs (Array.length tasks) compute in
  (* Deterministic reduction: fold in task order (= the caller's key
     order), not completion order. *)
  let counter_total =
    Array.fold_left (fun acc (_, snap, _) -> Counter.merge acc snap)
      Counter.empty_snapshot raw
  in
  let hist_total : (string, Histogram.snapshot) Hashtbl.t = Hashtbl.create 4 in
  Array.iter
    (fun (_, _, hs) ->
      List.iter
        (fun (name, snap) ->
          let prev =
            Option.value ~default:Histogram.empty_snapshot
              (Hashtbl.find_opt hist_total name)
          in
          Hashtbl.replace hist_total name (Histogram.merge prev snap))
        hs)
    raw;
  let histograms =
    Hashtbl.fold (fun name snap acc -> (name, Histogram.of_snapshot snap) :: acc)
      hist_total []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  ( Array.map (fun (v, _, _) -> v) raw,
    { counters = Counter.of_snapshot counter_total; histograms } )
