(* Domains-based parallel experiment engine.

   Shards independent simulation tasks over a fixed-size pool of worker
   domains.  Three properties make parallel sweeps safe to trust:

   - every task is self-contained: it builds its own guest program,
     monitor and counter group, so workers share no mutable state;
   - per-task RNG streams are seeded from a stable hash of the task key
     (FNV-1a over the key string), never from worker identity or
     scheduling order;
   - per-task stats are accumulated into private groups and merged by
     the coordinator in task order, and the merge operators
     ([Counter.merge] / [Histogram.merge]) are order-insensitive.

   Together these guarantee that a sweep at [~jobs:n] is bit-identical
   to the serial [~jobs:1] run (enforced by test/test_parallel.ml).

   [~jobs:1] does not spawn any domain: tasks run in the calling domain,
   in index order, through the exact same code path as before the pool
   existed. *)

module Rng = Chex86_stats.Rng
module Counter = Chex86_stats.Counter
module Histogram = Chex86_stats.Histogram

(* Without this, worker-side [Printexc.get_raw_backtrace] returns an
   empty trace and the failure's origin is lost across the domain
   boundary; turning recording on is what makes the re-raise in the
   coordinator (and the [Crashed] fault records) carry the worker's
   stack. *)
let () = Printexc.record_backtrace true

(* Monotonic clock, in seconds from an arbitrary epoch.  Deadlines and
   elapsed-time measurements must not use [Unix.gettimeofday]: a
   wall-clock step (NTP slew, suspend/resume) would fire spurious
   [Task_timed_out] or let a wedged task run forever.  The bechamel stub
   is a C binding to clock_gettime(CLOCK_MONOTONIC) (OCaml 5.1's Unix
   has no clock_gettime of its own). *)
let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* Process-wide job count, set once from the CLI (--jobs). *)
let current_jobs = Atomic.make (default_jobs ())
let set_jobs n = Atomic.set current_jobs (max 1 n)
let jobs () = Atomic.get current_jobs

(* Process-wide batch size for the *_batched maps, set once from the CLI
   (--batch-size).  [None] means auto: size chunks so each worker gets
   ~4 of them (enough slack for dynamic load balancing without paying
   per-task dispatch 864 times on a RIPE-sized sweep), clamped to
   [1, 64]. *)
let current_batch_size : int option Atomic.t = Atomic.make None
let set_batch_size b = Atomic.set current_batch_size (Option.map (max 1) b)
let batch_size () = Atomic.get current_batch_size

let auto_batch_size ~jobs n =
  if n <= 0 then 1 else min 64 (max 1 ((n + (4 * jobs) - 1) / (4 * jobs)))

let resolve_batch ?batch_size:b ~jobs n =
  match (match b with Some _ as b -> b | None -> batch_size ()) with
  | Some b -> max 1 b
  | None -> auto_batch_size ~jobs n

(* Process-wide supervision defaults, set once from the CLI
   (--retries / --task-timeout / --strict); [map_supervised] arguments
   override them per sweep. *)
let current_retries = Atomic.make 0
let set_retries n = Atomic.set current_retries (max 0 n)
let retries () = Atomic.get current_retries
let current_task_timeout : float option Atomic.t = Atomic.make None

(* [Some t] with t <= 0 (or NaN) means every task's deadline has already
   expired when it starts — the whole sweep times out vacuously.  That
   is never what a caller wants; refuse it loudly. *)
let set_task_timeout t =
  (match t with
  | Some s when not (s > 0.) ->
    invalid_arg (Printf.sprintf "Pool.set_task_timeout: timeout must be > 0 (got %g)" s)
  | _ -> ());
  Atomic.set current_task_timeout t
let task_timeout () = Atomic.get current_task_timeout
let current_strict = Atomic.make false
let set_strict b = Atomic.set current_strict b
let strict () = Atomic.get current_strict

(* Faults reported by any supervised sweep this process ran; --strict
   turns a non-zero count into a non-zero exit. *)
let fault_count = Atomic.make 0
let faults_seen () = Atomic.get fault_count

(* Stable 64-bit FNV-1a over the task key.  [Hashtbl.hash] would also be
   deterministic, but spelling the hash out pins the seed derivation
   against stdlib changes. *)
let seed_of_key key =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    key;
  (* Int64.to_int keeps the low 63 bits; mask the sign bit so the seed
     is always non-negative. *)
  Int64.to_int !h land max_int

let rng_of_key key = Rng.create (seed_of_key key)

(* Run [compute i] for [i < n] across [jobs] workers.  Results land in a
   slot array indexed by task, so output order is input order no matter
   which worker ran what.  Exceptions are re-raised in the coordinator,
   deterministically picking the lowest-index failure. *)
let run_indexed ~jobs n compute =
  let slots = Array.make n None in
  if jobs <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      slots.(i) <- Some (Ok (compute i))
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      (* Backtrace recording is per-domain in OCaml 5; the module-level
         call only covers the coordinator. *)
      Printexc.record_backtrace true;
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (slots.(i) <-
            (try Some (Ok (compute i))
             with e -> Some (Error (e, Printexc.get_raw_backtrace ()))));
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker () (* the coordinator is one of the pool's workers *);
    List.iter Domain.join spawned
  end;
  Array.iteri
    (fun i slot ->
      match slot with
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) -> ()
      | None -> failwith (Printf.sprintf "Pool: task %d lost" i))
    slots;
  Array.map (function Some (Ok v) -> v | _ -> assert false) slots

let map ?jobs:j f tasks =
  let jobs = match j with Some j -> max 1 j | None -> jobs () in
  run_indexed ~jobs (Array.length tasks) (fun i -> f tasks.(i))

(* --- keyed tasks with private stats -------------------------------------- *)

type ctx = {
  key : string;
  rng : Rng.t;
  counters : Counter.group;
  histogram : string -> Histogram.t;
}

type merged_stats = {
  counters : Counter.group;
  histograms : (string * Histogram.t) list;
}

(* Plain marshalable data: the unit the remote dispatch layer ships
   across the process boundary. *)
type task_snapshots = Counter.snapshot * (string * Histogram.snapshot) list

(* Deterministic reduction: fold in task order (= the caller's key
   order), not completion order. *)
let merge_snapshots per_task =
  let counter_total =
    List.fold_left (fun acc (snap, _) -> Counter.merge acc snap)
      Counter.empty_snapshot per_task
  in
  let hist_total : (string, Histogram.snapshot) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (_, hs) ->
      List.iter
        (fun (name, snap) ->
          let prev =
            Option.value ~default:Histogram.empty_snapshot
              (Hashtbl.find_opt hist_total name)
          in
          Hashtbl.replace hist_total name (Histogram.merge prev snap))
        hs)
    per_task;
  let histograms =
    Hashtbl.fold (fun name snap acc -> (name, Histogram.of_snapshot snap) :: acc)
      hist_total []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { counters = Counter.of_snapshot counter_total; histograms }

(* Telemetry boundary: fold a sweep's merged stats into the --metrics
   accumulator.  Runs after the merge is complete, so it observes —
   never perturbs — the deterministic totals.  Every map_stats* variant
   (and Remote.sweep) calls this on its way out. *)
let publish_metrics (stats : merged_stats) =
  if Trace.metrics_on () then
    Trace.metrics_absorb
      ( Counter.group_snapshot stats.counters,
        List.map (fun (n, h) -> (n, Histogram.snapshot h)) stats.histograms )

(* Build a task-private context for [k]; reading the snapshots after the
   task body ran yields the mergeable per-task stats. *)
let make_ctx k =
  let counters = Counter.create_group () in
  let hists : (string, Histogram.t) Hashtbl.t = Hashtbl.create 4 in
  let histogram name =
    match Hashtbl.find_opt hists name with
    | Some h -> h
    | None ->
      let h = Histogram.create () in
      Hashtbl.add hists name h;
      h
  in
  let ctx = { key = k; rng = rng_of_key k; counters; histogram } in
  let snapshots () =
    let hist_snaps =
      Hashtbl.fold (fun name h acc -> (name, Histogram.snapshot h) :: acc) hists []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    (Counter.group_snapshot counters, hist_snaps)
  in
  (ctx, snapshots)

let map_stats ?jobs:j ~key f tasks =
  let jobs = match j with Some j -> max 1 j | None -> jobs () in
  let compute i =
    let k = key tasks.(i) in
    let tid =
      if Trace.on () then Trace.span_begin ~stage:"task" [ ("key", k) ] else 0
    in
    let ctx, snapshots = make_ctx k in
    let v = try f tasks.(i) ctx with e -> Trace.span_end tid; raise e in
    Trace.span_end tid;
    let counter_snap, hist_snaps = snapshots () in
    (v, counter_snap, hist_snaps)
  in
  let raw = run_indexed ~jobs (Array.length tasks) compute in
  let stats =
    merge_snapshots (Array.to_list (Array.map (fun (_, c, h) -> (c, h)) raw))
  in
  publish_metrics stats;
  (Array.map (fun (v, _, _) -> v) raw, stats)

(* --- batched scheduling ---------------------------------------------------- *)

(* Chunks are contiguous [start, start+len) slices of the task index
   space, each dispatched to one pool slot as a unit: one dispatch, one
   stats snapshot and one coordinator merge round per *chunk* instead of
   per task.  Contiguity keeps the merge deterministic for free —
   iterating chunks in index order visits tasks in index order — and the
   RNG stays seeded from the *task* key, never the chunk, so results are
   bit-identical to --batch-size 1 and to a serial run. *)
let chunk_ranges ~batch n =
  Array.init
    ((n + batch - 1) / batch)
    (fun ci ->
      let start = ci * batch in
      (start, min batch (n - start)))

(* Lowest-index failure wins, exactly like [run_indexed]'s re-raise. *)
let reraise_first slots =
  Array.iter
    (function Error (e, bt) -> Printexc.raise_with_backtrace e bt | Ok _ -> ())
    slots;
  Array.map (function Ok v -> v | Error _ -> assert false) slots

let map_batched ?jobs:j ?batch_size f tasks =
  let jobs = match j with Some j -> max 1 j | None -> jobs () in
  let n = Array.length tasks in
  let batch = resolve_batch ?batch_size ~jobs n in
  let chunks = chunk_ranges ~batch n in
  let per_chunk =
    run_indexed ~jobs (Array.length chunks) (fun ci ->
        let start, len = chunks.(ci) in
        (* Per-task catch: a crash mid-chunk must not strand its
           chunk-mates' results (the coordinator still re-raises the
           lowest-index failure afterwards). *)
        Array.init len (fun k ->
            let i = start + k in
            try Ok (f tasks.(i))
            with e -> Error (e, Printexc.get_raw_backtrace ())))
  in
  reraise_first (Array.init n (fun i -> per_chunk.(i / batch).(i mod batch)))

(* Chunk-private stats: one counter group and histogram table shared by
   every task of the chunk — the single per-chunk snapshot that cuts
   merge rounds from n to n/B.  Pointwise-additive merges make this
   equivalent to merging per-task groups in task order. *)
let make_chunk_stats () =
  let counters = Counter.create_group () in
  let hists : (string, Histogram.t) Hashtbl.t = Hashtbl.create 4 in
  let histogram name =
    match Hashtbl.find_opt hists name with
    | Some h -> h
    | None ->
      let h = Histogram.create () in
      Hashtbl.add hists name h;
      h
  in
  let snapshots () =
    let hist_snaps =
      Hashtbl.fold (fun name h acc -> (name, Histogram.snapshot h) :: acc) hists []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    (Counter.group_snapshot counters, hist_snaps)
  in
  (counters, histogram, snapshots)

(* [pool.chunks] records how many dispatch rounds the sweep actually
   paid.  It is the *only* scheduling-dependent counter the pool ever
   merges: with auto batch sizing it varies with --jobs, so determinism
   tests compare merged counters modulo this one name. *)
let chunk_counter stats ~chunks = Counter.incr ~by:chunks stats.counters "pool.chunks"

let map_stats_batched ?jobs:j ?batch_size ~key f tasks =
  let jobs = match j with Some j -> max 1 j | None -> jobs () in
  let n = Array.length tasks in
  let batch = resolve_batch ?batch_size ~jobs n in
  let chunks = chunk_ranges ~batch n in
  let per_chunk =
    run_indexed ~jobs (Array.length chunks) (fun ci ->
        let start, len = chunks.(ci) in
        let cid =
          if Trace.on () then
            Trace.span_begin ~stage:"chunk"
              [ ("chunk", string_of_int ci); ("tasks", string_of_int len) ]
          else 0
        in
        let counters, histogram, snapshots = make_chunk_stats () in
        let slots =
          Array.init len (fun k ->
              let i = start + k in
              let task_key = key tasks.(i) in
              let tid =
                if Trace.on () then
                  Trace.span_begin ~parent:cid ~stage:"task" [ ("key", task_key) ]
                else 0
              in
              let ctx =
                { key = task_key; rng = rng_of_key task_key; counters; histogram }
              in
              let slot =
                try Ok (f tasks.(i) ctx)
                with e -> Error (e, Printexc.get_raw_backtrace ())
              in
              Trace.span_end tid;
              slot)
        in
        let out = (slots, snapshots ()) in
        Trace.span_end cid;
        out)
  in
  let values =
    reraise_first (Array.init n (fun i -> (fst per_chunk.(i / batch)).(i mod batch)))
  in
  let stats = merge_snapshots (Array.to_list (Array.map snd per_chunk)) in
  chunk_counter stats ~chunks:(Array.length chunks);
  publish_metrics stats;
  (values, stats)

(* --- supervised tasks: contain the fault, report it, keep going ----------- *)

(* The robustness analogue of CHEx86's fail-safe enforcement: a crashing
   or wedged task must not destroy a multi-hour sweep.  Each task runs
   under a supervisor that classifies the attempt as Ok / Crashed /
   Timed_out, retries within a bounded budget (re-seeding
   deterministically per attempt, so retried runs stay reproducible),
   and folds a sweep-level fault report into the merged stats instead of
   re-raising.

   Wall budgets are cooperative: domains cannot be killed, so the
   supervisor publishes a per-domain deadline and [check_deadline]
   raises once it passes.  The supervisor itself checks on attempt entry
   and exit; long-running task bodies (the Runner, the security sweep)
   call [check_deadline] at their own safe points.  Instruction budgets
   ride on the existing [max_insns] simulation hook, whose exhaustion is
   already a reported outcome, not an exception. *)

exception Task_timed_out

let deadline_key : float option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_deadline d = Domain.DLS.get deadline_key := d

(* Process-wide tick hook, fired on every [check_deadline].  The remote
   worker uses it as a liveness beacon: any task body that reaches its
   cooperative safe points also feeds the supervisor's heartbeat, so
   only tasks that never reach [check_deadline] at all look wedged from
   outside.  The hook must be cheap and rate-limit itself; exceptions
   are swallowed so a broken hook cannot fault the task. *)
let tick_hook : (unit -> unit) Atomic.t = Atomic.make (fun () -> ())
let set_tick_hook = function
  | Some f -> Atomic.set tick_hook f
  | None -> Atomic.set tick_hook (fun () -> ())

let check_deadline () =
  (try (Atomic.get tick_hook) () with _ -> ());
  match !(Domain.DLS.get deadline_key) with
  | Some t when now () > t -> raise Task_timed_out
  | _ -> ()

(* Attempt [a] of task [key] computes under the seed of [retry_key key a]:
   attempt 0 is the plain key (bit-identical to an unsupervised run), and
   each retry gets its own stable stream. *)
let retry_key key attempt =
  if attempt = 0 then key else Printf.sprintf "%s:retry%d" key attempt

type fault =
  | Crashed of { exn : string; backtrace : string }
  | Timed_out of { budget : float }
  | Worker_lost of { reason : string }

type task_fault = { index : int; key : string; attempts : int; fault : fault }

type fault_report = {
  tasks : int;
  chunks : int;
  ok : int;
  retried_ok : int;
  crashed : int;
  timed_out : int;
  worker_lost : int;
  retries_used : int;
  worker_losses : int;
  task_faults : task_fault list;
}

let fault_to_string = function
  | Crashed { exn; _ } -> "crashed: " ^ exn
  | Timed_out { budget } -> Printf.sprintf "timed out (wall budget %.3fs)" budget
  | Worker_lost { reason } -> "worker lost: " ^ reason

let render_fault_report ?(max_backtraces = 3) r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "sweep fault report: %d task(s), %d ok (%d recovered by retry), %d crashed, %d timed out, %d worker-lost, %d retry attempt(s)"
       r.tasks r.ok r.retried_ok r.crashed r.timed_out r.worker_lost
       r.retries_used);
  if r.worker_losses > 0 then
    Buffer.add_string b
      (Printf.sprintf "; %d worker loss event(s)" r.worker_losses);
  List.iteri
    (fun i tf ->
      Buffer.add_string b
        (Printf.sprintf "\n  task %d (%s): %s after %d attempt(s)" tf.index tf.key
           (fault_to_string tf.fault) tf.attempts);
      match tf.fault with
      | Crashed { backtrace; _ } when i < max_backtraces && backtrace <> "" ->
        String.split_on_char '\n' (String.trim backtrace)
        |> List.iter (fun line ->
               if line <> "" then Buffer.add_string b ("\n      " ^ line))
      | _ -> ())
    r.task_faults;
  Buffer.contents b

(* One supervised task: bounded retries, each attempt fenced by the
   injection hook and the cooperative deadline.  Never raises; the
   caller gets the classification plus the index of the last attempt. *)
let attempt_task ?(span_parent = 0) ~retries ~timeout ~key compute =
  let rec go attempt =
    let tid =
      if Trace.on () then
        Trace.span_begin ~parent:span_parent ~stage:"task"
          [ ("key", key); ("attempt", string_of_int attempt) ]
      else 0
    in
    let outcome =
      try
        set_deadline (Option.map (fun b -> now () +. b) timeout);
        (match Faultinject.fault_for ~key ~attempt with
        | Some Faultinject.Crash -> raise (Faultinject.Injected_crash key)
        | Some (Faultinject.Slow s) ->
          (* Sleep in slices with the deadline checked between them: a
             one-shot [Unix.sleepf s] would ignore the cooperative
             budget and stall the task for the full injected delay even
             when --task-timeout is much shorter. *)
          let until = now () +. s in
          let rec nap () =
            check_deadline ();
            let left = until -. now () in
            if left > 0. then begin
              Unix.sleepf (Float.min 0.01 left);
              nap ()
            end
          in
          nap ()
        | Some _ | None -> ());
        check_deadline ();
        let v = compute ~attempt ~attempt_key:(retry_key key attempt) in
        check_deadline ();
        set_deadline None;
        Ok v
      with
      | Task_timed_out ->
        set_deadline None;
        Error (Timed_out { budget = Option.value ~default:0. timeout })
      | e ->
        let backtrace = Printexc.get_backtrace () in
        set_deadline None;
        Error (Crashed { exn = Printexc.to_string e; backtrace })
    in
    Trace.span_end tid;
    match outcome with
    | Ok _ -> (outcome, attempt)
    | Error _ when attempt < retries ->
      if Trace.on () then
        Trace.instant ~parent:span_parent ~stage:"retry"
          [ ("key", key); ("attempt", string_of_int (attempt + 1)) ];
      go (attempt + 1)
    | Error _ -> (outcome, attempt)
  in
  go 0

let build_report ?(worker_losses = 0) ~chunks ~key tasks raw =
  let tasks_n = Array.length tasks in
  let ok = ref 0
  and retried_ok = ref 0
  and crashed = ref 0
  and timed_out = ref 0
  and worker_lost = ref 0
  and retries_used = ref 0
  and faults = ref [] in
  Array.iteri
    (fun i (outcome, attempts) ->
      retries_used := !retries_used + attempts;
      match outcome with
      | Ok _ ->
        incr ok;
        if attempts > 0 then incr retried_ok
      | Error fault ->
        (match fault with
        | Crashed _ -> incr crashed
        | Timed_out _ -> incr timed_out
        | Worker_lost _ -> incr worker_lost);
        faults :=
          { index = i; key = key tasks.(i); attempts = attempts + 1; fault }
          :: !faults)
    raw;
  Atomic.fetch_and_add fault_count (!crashed + !timed_out + !worker_lost)
  |> ignore;
  {
    tasks = tasks_n;
    chunks;
    ok = !ok;
    retried_ok = !retried_ok;
    crashed = !crashed;
    timed_out = !timed_out;
    worker_lost = !worker_lost;
    retries_used = !retries_used;
    worker_losses;
    task_faults = List.rev !faults;
  }

let supervise_params ?retries:r ?task_timeout:t () =
  let retries = match r with Some n -> max 0 n | None -> retries () in
  let timeout = match t with Some _ -> t | None -> task_timeout () in
  (retries, timeout)

let map_supervised ?jobs:j ?retries ?task_timeout ~key f tasks =
  let jobs = match j with Some j -> max 1 j | None -> jobs () in
  let retries, timeout = supervise_params ?retries ?task_timeout () in
  let compute i =
    attempt_task ~retries ~timeout ~key:(key tasks.(i))
      (fun ~attempt:_ ~attempt_key:_ -> f tasks.(i))
  in
  let raw = run_indexed ~jobs (Array.length tasks) compute in
  (Array.map fst raw, build_report ~chunks:(Array.length tasks) ~key tasks raw)

(* Fault counters fold into the merged stats so a partial sweep carries
   its own health record; they are derived from the per-task
   classification (scheduling-independent), preserving the jobs=n ==
   jobs=1 determinism contract. *)
let fault_counters report group =
  Counter.incr ~by:report.tasks group "pool.tasks";
  Counter.incr ~by:report.ok group "pool.ok";
  Counter.incr ~by:report.retried_ok group "pool.retried_ok";
  Counter.incr ~by:report.crashed group "pool.crashed";
  Counter.incr ~by:report.timed_out group "pool.timed_out";
  Counter.incr ~by:report.worker_lost group "pool.worker_lost";
  Counter.incr ~by:report.retries_used group "pool.retries_used"

let map_stats_supervised ?jobs:j ?retries ?task_timeout ~key f tasks =
  let jobs = match j with Some j -> max 1 j | None -> jobs () in
  let retries, timeout = supervise_params ?retries ?task_timeout () in
  let compute i =
    attempt_task ~retries ~timeout ~key:(key tasks.(i))
      (fun ~attempt:_ ~attempt_key ->
        (* A fresh private context per attempt: a faulted attempt's
           partial stats are discarded wholesale, so the merged totals
           only ever count completed tasks. *)
        let ctx, snapshots = make_ctx attempt_key in
        let v = f tasks.(i) ctx in
        let counter_snap, hist_snaps = snapshots () in
        (v, counter_snap, hist_snaps))
  in
  let raw = run_indexed ~jobs (Array.length tasks) compute in
  let report = build_report ~chunks:(Array.length tasks) ~key tasks raw in
  let stats =
    merge_snapshots
      (Array.to_list raw
      |> List.filter_map (fun (outcome, _) ->
             match outcome with Ok (_, c, h) -> Some (c, h) | Error _ -> None))
  in
  fault_counters report stats.counters;
  publish_metrics stats;
  let results =
    Array.map
      (fun (outcome, _) -> Result.map (fun (v, _, _) -> v) outcome)
      raw
  in
  (results, stats, report)

(* --- batched supervision --------------------------------------------------- *)

(* One chunk = one pool dispatch, but supervision stays per *task*: each
   task of the chunk runs under its own [attempt_task] fence (retry
   budget, injection hook, cooperative deadline), and [attempt_task]
   never raises, so a crash or timeout mid-chunk faults exactly that
   task — its chunk-mates keep running and the fault report stays keyed
   per task. *)
let map_supervised_batched ?jobs:j ?batch_size ?retries ?task_timeout ~key f tasks =
  let jobs = match j with Some j -> max 1 j | None -> jobs () in
  let retries, timeout = supervise_params ?retries ?task_timeout () in
  let n = Array.length tasks in
  let batch = resolve_batch ?batch_size ~jobs n in
  let chunks = chunk_ranges ~batch n in
  let per_chunk =
    run_indexed ~jobs (Array.length chunks) (fun ci ->
        let start, len = chunks.(ci) in
        let cid =
          if Trace.on () then
            Trace.span_begin ~stage:"chunk"
              [ ("chunk", string_of_int ci); ("tasks", string_of_int len) ]
          else 0
        in
        let slots =
          Array.init len (fun k ->
              let i = start + k in
              attempt_task ~span_parent:cid ~retries ~timeout ~key:(key tasks.(i))
                (fun ~attempt:_ ~attempt_key:_ -> f tasks.(i)))
        in
        Trace.span_end cid;
        slots)
  in
  let raw = Array.init n (fun i -> per_chunk.(i / batch).(i mod batch)) in
  let report = build_report ~chunks:(Array.length chunks) ~key tasks raw in
  (Array.map fst raw, report)

let map_stats_supervised_batched ?jobs:j ?batch_size ?retries ?task_timeout ~key f
    tasks =
  let jobs = match j with Some j -> max 1 j | None -> jobs () in
  let retries, timeout = supervise_params ?retries ?task_timeout () in
  let n = Array.length tasks in
  let batch = resolve_batch ?batch_size ~jobs n in
  let chunks = chunk_ranges ~batch n in
  let per_chunk =
    run_indexed ~jobs (Array.length chunks) (fun ci ->
        let start, len = chunks.(ci) in
        let cid =
          if Trace.on () then
            Trace.span_begin ~stage:"chunk"
              [ ("chunk", string_of_int ci); ("tasks", string_of_int len) ]
          else 0
        in
        (* Each attempt still gets a fresh private context (a faulted
           attempt's partial stats are discarded wholesale); completed
           tasks fold into one chunk-level accumulator so the
           coordinator merges per chunk, not per task. *)
        let acc_counters = ref Counter.empty_snapshot in
        let acc_hists : (string, Histogram.snapshot) Hashtbl.t = Hashtbl.create 4 in
        let absorb (counter_snap, hist_snaps) =
          acc_counters := Counter.merge !acc_counters counter_snap;
          List.iter
            (fun (name, snap) ->
              let prev =
                Option.value ~default:Histogram.empty_snapshot
                  (Hashtbl.find_opt acc_hists name)
              in
              Hashtbl.replace acc_hists name (Histogram.merge prev snap))
            hist_snaps
        in
        let slots =
          Array.init len (fun k ->
              let i = start + k in
              let outcome, attempts =
                attempt_task ~span_parent:cid ~retries ~timeout
                  ~key:(key tasks.(i)) (fun ~attempt:_ ~attempt_key ->
                    let ctx, snapshots = make_ctx attempt_key in
                    let v = f tasks.(i) ctx in
                    (v, snapshots ()))
              in
              (match outcome with Ok (_, snaps) -> absorb snaps | Error _ -> ());
              (Result.map fst outcome, attempts))
        in
        let hist_snaps =
          Hashtbl.fold (fun name s acc -> (name, s) :: acc) acc_hists []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        Trace.span_end cid;
        (slots, (!acc_counters, hist_snaps)))
  in
  let raw = Array.init n (fun i -> (fst per_chunk.(i / batch)).(i mod batch)) in
  let report = build_report ~chunks:(Array.length chunks) ~key tasks raw in
  let stats = merge_snapshots (Array.to_list (Array.map snd per_chunk)) in
  fault_counters report stats.counters;
  chunk_counter stats ~chunks:report.chunks;
  publish_metrics stats;
  (Array.map fst raw, stats, report)
