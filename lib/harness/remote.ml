(* Process-isolated worker dispatch.

   The in-process pool contains faults cooperatively: a task that never
   reaches [Pool.check_deadline] — stack overflow, runaway allocation, a
   simulator bug spinning in native code — still takes the whole sweep
   down, because domains cannot be killed.  This layer makes containment
   structural: the supervisor forks/execs N copies of
   [bin/chex86_worker.exe] (or connects to [--worker HOST:PORT] peers
   over TCP), ships each batched chunk's task keys as length-prefixed,
   digest-checksummed frames, and merges the returned per-task stats
   snapshots through the exact same [Counter]/[Histogram] merge path the
   pool uses — so results stay bit-identical to a serial run at any
   (jobs, batch, transport) geometry.

   Robustness model:
   - Liveness is observed, never assumed: a worker's frames (Hello,
     Beat, Result) are its heartbeat.  Beats ride the pool's
     [check_deadline] tick hook, so a task that reaches its cooperative
     safe points also proves the worker alive; one that never does goes
     silent and is SIGKILLed at the hard heartbeat deadline.
   - A dead worker loses only its in-flight task's progress: streamed
     per-task results are kept, and the remainder of the chunk is
     re-dispatched.  A task that keeps killing its worker is faulted as
     [Worker_lost] once the loss budget is spent — distinguished in the
     fault report from [Crashed]/[Timed_out].
   - Respawns/reconnects back off exponentially with deterministic
     jitter under a bounded restart budget.
   - If no worker can be started, or every restart budget is exhausted,
     the sweep degrades to the in-process pool path with a warning
     instead of failing.

   Layering: this module sits below Runner/Security (they route sweeps
   through it), so it must not reference them.  The worker-side result
   store wiring goes through [store_dir_provider]/[store_dir_applier],
   set by Runner at module init. *)

module Counter = Chex86_stats.Counter
module Histogram = Chex86_stats.Histogram
module Rng = Chex86_stats.Rng

(* v2: [request] gained the [trace] flag and Chunk_done's payload grew a
   third field carrying the worker's collected trace spans. *)
let protocol_version = 2

(* --- process-wide knobs (CLI-set, argument-overridable) ------------------- *)

type spec = Off | Spawn of int | Peers of (string * int) list

let current_spec : spec Atomic.t = Atomic.make Off
let set_spec s = Atomic.set current_spec s
let spec () = Atomic.get current_spec
let enabled () = spec () <> Off

let current_heartbeat = Atomic.make 30.0

(* A non-positive (or NaN) heartbeat would make the liveness deadline
   fire on every supervision tick — every busy worker is "wedged" the
   instant it is dispatched to.  Clamping silently (the old behaviour)
   hid that misconfiguration; refuse it loudly instead.  Small positive
   values are still floored at 50ms so a just-spawned worker has a
   chance to beat at all. *)
let check_heartbeat ~who s =
  if not (s > 0.) then
    invalid_arg (Printf.sprintf "%s: heartbeat must be > 0 (got %g)" who s);
  Float.max 0.05 s

let set_heartbeat s = Atomic.set current_heartbeat (check_heartbeat ~who:"Remote.set_heartbeat" s)
let heartbeat () = Atomic.get current_heartbeat
let current_restart_budget = Atomic.make 3
let set_restart_budget n = Atomic.set current_restart_budget (max 0 n)
let restart_budget () = Atomic.get current_restart_budget
let current_task_loss_budget = Atomic.make 1
let set_task_loss_budget n = Atomic.set current_task_loss_budget (max 0 n)
let task_loss_budget () = Atomic.get current_task_loss_budget
let current_backoff_base = Atomic.make 0.05
let set_backoff_base s = Atomic.set current_backoff_base (Float.max 0.001 s)
let backoff_base () = Atomic.get current_backoff_base

(* --- store wiring hooks (set by Runner; see layering note above) ---------- *)

let store_dir_provider : (unit -> string option) ref = ref (fun () -> None)
let store_dir_applier : (string option -> unit) ref = ref (fun _ -> ())

(* --- task kinds ----------------------------------------------------------- *)

(* A kind names the computation both sides agree on; the wire carries
   only (kind, key, arg) strings, never closures.  The worker looks the
   kind up in its own registry, so supervisor and worker must link the
   same registration code (Security/Runner register theirs; [selftest]
   is built in). *)
type kind_fn = key:string -> arg:string -> Pool.ctx -> string

let kinds : (string, kind_fn) Hashtbl.t = Hashtbl.create 8
let kinds_lock = Mutex.create ()

let register_kind name fn =
  Mutex.protect kinds_lock (fun () -> Hashtbl.replace kinds name fn)

let find_kind name = Mutex.protect kinds_lock (fun () -> Hashtbl.find_opt kinds name)

(* Built-in self-test kind: draws from the task-keyed RNG into a counter
   and histogram, so tests can assert remote == serial bit-identity
   without simulating anything.  Keys prefixed "wedge" spin forever
   without ever reaching [check_deadline] — the uncooperative-task model
   the heartbeat deadline exists for. *)
let selftest_kind = "selftest"

let () =
  register_kind selftest_kind (fun ~key ~arg ctx ->
      if String.length key >= 5 && String.sub key 0 5 = "wedge" then begin
        let x = ref 1 in
        while Sys.opaque_identity !x <> 0 do
          x := Sys.opaque_identity ((!x + 1) lor 1)
        done
      end;
      let rounds = Option.value ~default:8 (int_of_string_opt arg) in
      let sum = ref 0 in
      for _ = 1 to rounds do
        Pool.check_deadline ();
        let d = Rng.int ctx.Pool.rng 1000 in
        sum := !sum + d;
        Counter.incr ~by:d ctx.Pool.counters "selftest.sum";
        Histogram.add (ctx.Pool.histogram "selftest.draws") d
      done;
      Counter.incr ctx.Pool.counters "selftest.runs";
      string_of_int !sum)

(* --- frames ---------------------------------------------------------------

   Header (22 bytes): 1-byte protocol version, 1-byte frame type, 4-byte
   big-endian payload length, 16-byte MD5 digest of the payload; then
   the payload.  The digest catches transport corruption before
   [Marshal.from_string] ever sees the bytes: a corrupt frame is a
   protocol error to report, never a segfault. *)

type frame_type = Hello | Run | Result | Chunk_done | Beat | Err | Shutdown

let tag_of_frame_type = function
  | Hello -> 0
  | Run -> 1
  | Result -> 2
  | Chunk_done -> 3
  | Beat -> 4
  | Err -> 5
  | Shutdown -> 6

let frame_type_name = function
  | Hello -> "Hello"
  | Run -> "Run"
  | Result -> "Result"
  | Chunk_done -> "Chunk_done"
  | Beat -> "Beat"
  | Err -> "Err"
  | Shutdown -> "Shutdown"

let frame_type_of_tag = function
  | 0 -> Some Hello
  | 1 -> Some Run
  | 2 -> Some Result
  | 3 -> Some Chunk_done
  | 4 -> Some Beat
  | 5 -> Some Err
  | 6 -> Some Shutdown
  | _ -> None

let header_len = 22
let max_frame_payload = 1 lsl 30

exception Frame_error of string

let encode_frame ftype payload =
  let len = String.length payload in
  let b = Bytes.create (header_len + len) in
  Bytes.set b 0 (Char.chr protocol_version);
  Bytes.set b 1 (Char.chr (tag_of_frame_type ftype));
  Bytes.set_int32_be b 2 (Int32.of_int len);
  Bytes.blit_string (Digest.string payload) 0 b 6 16;
  Bytes.blit_string payload 0 b header_len len;
  b

let write_all fd b =
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    let n = Unix.write fd b !pos (len - !pos) in
    if n <= 0 then raise (Frame_error "short write");
    pos := !pos + n
  done

let send_frame fd ftype payload = write_all fd (encode_frame ftype payload)

(* Blocking reader (worker side; the supervisor parses incrementally). *)
let really_read fd len =
  let b = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let n = Unix.read fd b !pos (len - !pos) in
    if n = 0 then raise End_of_file;
    pos := !pos + n
  done;
  Bytes.unsafe_to_string b

let read_frame fd =
  let header = really_read fd header_len in
  let version = Char.code header.[0] in
  if version <> protocol_version then
    raise (Frame_error (Printf.sprintf "protocol version %d, expected %d" version protocol_version));
  let ftype =
    match frame_type_of_tag (Char.code header.[1]) with
    | Some t -> t
    | None -> raise (Frame_error (Printf.sprintf "unknown frame type %d" (Char.code header.[1])))
  in
  let len = Int32.to_int (String.get_int32_be header 2) in
  if len < 0 || len > max_frame_payload then
    raise (Frame_error (Printf.sprintf "frame length %d out of range" len));
  let digest = String.sub header 6 16 in
  let payload = really_read fd len in
  if Digest.string payload <> digest then raise (Frame_error "frame digest mismatch");
  (ftype, payload)

(* --- wire records ---------------------------------------------------------

   Marshalled as plain data (no closures): task keys and opaque arg
   strings go out; per-task outcomes with mergeable stats snapshots come
   back.  [indices] are global task indices — after a loss excludes a
   faulted task, a re-dispatched chunk is no longer contiguous. *)

type request = {
  chunk_id : int;
  req_kind : string;
  dispatch_attempt : int;
  indices : int array;
  keys : string array;
  args : string array;
  retries : int;
  task_timeout : float option;
  store_dir : string option;
  beat_every : float;
  plan : (string * Faultinject.directive) list;
  trace : bool;
      (* supervisor is tracing: collect span lines and ship them back
         piggybacked on Chunk_done — no extra round-trip *)
}

type task_result = {
  t_index : int;
  t_attempts : int;
  t_outcome : (string * Pool.task_snapshots, Pool.fault) result;
}

(* --- worker side ----------------------------------------------------------- *)

module Worker = struct
  (* The store configuration shipped with each request is applied only
     when it changes; reconfiguring re-sweeps the tmp directory. *)
  let applied_store : string option option ref = ref None

  let apply_store_dir dir =
    if !applied_store <> Some dir then begin
      !store_dir_applier dir;
      applied_store := Some dir
    end

  let run_chunk output (req : request) =
    if req.plan = [] then Faultinject.disarm ()
    else Faultinject.arm (Faultinject.of_list req.plan);
    (* Trace collection mirrors the supervisor's tracing state per
       request; lines are tagged with this process's own src so the
       streams stitch offline without id coordination. *)
    if req.trace then Trace.set_src (Printf.sprintf "w%d" (Unix.getpid ()));
    Trace.set_collect req.trace;
    apply_store_dir req.store_dir;
    match find_kind req.req_kind with
    | None ->
      send_frame output Err (Printf.sprintf "unknown task kind %S" req.req_kind)
    | Some fn ->
      let last_beat = ref (Pool.now ()) in
      let beat () =
        send_frame output Beat "";
        last_beat := Pool.now ()
      in
      (* Beats ride the cooperative safe points: a task body calling
         [check_deadline] proves the worker alive at most every
         [beat_every] seconds; one that never calls it goes silent and
         the supervisor's hard deadline fires. *)
      Pool.set_tick_hook
        (Some (fun () -> if Pool.now () -. !last_beat > req.beat_every then beat ()));
      Fun.protect
        ~finally:(fun () -> Pool.set_tick_hook None)
        (fun () ->
          let cid =
            if Trace.on () then
              Trace.span_begin ~stage:"chunk"
                [
                  ("chunk", string_of_int req.chunk_id);
                  ("attempt", string_of_int req.dispatch_attempt);
                  ("tasks", string_of_int (Array.length req.keys));
                ]
            else 0
          in
          Array.iteri
            (fun k key ->
              (* Injected mid-chunk worker death: SIGKILL leaves the
                 supervisor nothing but silence and a closed socket,
                 exactly like an OOM kill. *)
              if Faultinject.worker_kill_for ~key ~attempt:req.dispatch_attempt
              then Unix.kill (Unix.getpid ()) Sys.sigkill;
              beat ();
              let outcome, attempts =
                Pool.attempt_task ~span_parent:cid ~retries:req.retries
                  ~timeout:req.task_timeout ~key (fun ~attempt:_ ~attempt_key ->
                    let ctx, snapshots = Pool.make_ctx attempt_key in
                    let v = fn ~key ~arg:req.args.(k) ctx in
                    (v, snapshots ()))
              in
              let tr =
                { t_index = req.indices.(k); t_attempts = attempts; t_outcome = outcome }
              in
              send_frame output Result (Marshal.to_string tr []))
            req.keys;
          Trace.span_end cid;
          (* Spans drain after the chunk span closed, so the shipped
             stream is self-contained; the Chunk_done frame itself is
             the one event a traced worker cannot record. *)
          let spans = Trace.drain_collected () in
          send_frame output Chunk_done
            (Marshal.to_string (req.chunk_id, req.dispatch_attempt, spans) []))

  let serve ~input ~output =
    send_frame output Hello (string_of_int protocol_version);
    let rec loop () =
      match read_frame input with
      | Run, payload ->
        run_chunk output (Marshal.from_string payload 0 : request);
        loop ()
      | Shutdown, _ -> ()
      | (Hello | Beat | Result | Chunk_done | Err), _ -> loop ()
      | exception End_of_file -> ()
      | exception Frame_error msg ->
        (* The length field was still trusted, so the stream is back in
           sync after skipping the payload; report and keep serving. *)
        send_frame output Err msg;
        loop ()
    in
    loop ()

  let listen ~port =
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_any, port));
    Unix.listen sock 8;
    Printf.eprintf "chex86_worker: listening on port %d\n%!" port;
    let rec accept_loop () =
      let fd, _ = Unix.accept sock in
      (try serve ~input:fd ~output:fd with _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      accept_loop ()
    in
    accept_loop ()
end

(* --- supervisor ------------------------------------------------------------ *)

let warn fmt =
  Printf.ksprintf (fun msg -> Printf.eprintf "chex86-remote: %s\n%!" msg) fmt

(* Worker executable discovery: explicit override, else next to the
   running binary, else the sibling bin/ directory (covers executables
   under _build/default/{bin,bench,test}). *)
let worker_exe () =
  match Sys.getenv_opt "CHEX86_WORKER_EXE" with
  | Some p when p <> "" -> Some p
  | _ ->
    let dir = Filename.dirname Sys.executable_name in
    List.find_opt Sys.file_exists
      [
        Filename.concat dir "chex86_worker.exe";
        Filename.concat dir (Filename.concat ".." (Filename.concat "bin" "chex86_worker.exe"));
      ]

type origin = Spawned | Peer of string * int

type conn = { fd : Unix.file_descr; pid : int option; rbuf : Buffer.t }

type item = {
  i_chunk : int;
  mutable i_attempt : int;  (* dispatch attempt, not task attempt *)
  mutable i_indices : int array;  (* global indices still owed *)
  mutable i_errs : int;  (* Err frames this chunk has cost *)
  mutable i_span : int;  (* open supervisor-side chunk span, 0 if none *)
}

(* A dispatch attempt's chunk span closes wherever the item leaves the
   Busy state (completion, frame error, worker loss); resetting to the
   null id makes the close idempotent. *)
let end_item_span item =
  if item.i_span <> 0 then begin
    Trace.span_end item.i_span;
    item.i_span <- 0
  end

type slot_state =
  | Unborn
  | Idle of conn
  | Busy of conn * item
  | Respawning of float  (* monotonic due time *)
  | Dead

type slot = {
  sid : int;
  origin : origin;
  mutable state : slot_state;
  mutable restarts : int;
  mutable last_activity : float;
}

let spawn_conn exe =
  try
    let sup, wrk = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.set_close_on_exec sup;
    let pid = Unix.create_process exe [| exe; "--stdio" |] wrk wrk Unix.stderr in
    Unix.close wrk;
    Ok { fd = sup; pid = Some pid; rbuf = Buffer.create 4096 }
  with e -> Error (Printexc.to_string e)

let connect_peer host port =
  try
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (addr, port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    Ok { fd; pid = None; rbuf = Buffer.create 4096 }
  with e -> Error (Printexc.to_string e)

(* Deterministic backoff jitter: seeded from (slot, restart ordinal),
   never the clock, so restart schedules are as reproducible as the
   sweep itself. *)

(* Exponential growth is clamped here before jitter: past this the
   delay stops conveying information (the worker is just broken), and
   unclamped [2. ** n] reaches infinity around ordinal 1030, which
   would wedge the supervisor in [sleepf] forever. Jitter stays
   multiplicative, so the worst observable delay is 1.25x this. *)
let max_backoff_delay = 5.0

let backoff_delay ~sid ~restarts =
  let base = backoff_base () in
  let exp =
    Float.min max_backoff_delay (base *. (2. ** float_of_int (max 0 (restarts - 1))))
  in
  let rng = Pool.rng_of_key (Printf.sprintf "respawn/%d/%d" sid restarts) in
  exp *. (1. +. (0.25 *. Rng.float rng))

exception Lost of string

let sweep ?batch_size ?retries ?task_timeout ?spec:spec_override ?heartbeat:hb_override
    ?restart_budget:rb_override ?task_loss_budget:tlb_override ~kind ~key ~arg tasks =
  let n = Array.length tasks in
  let retries, timeout = Pool.supervise_params ?retries ?task_timeout () in
  let sp = match spec_override with Some s -> s | None -> spec () in
  let hb =
    match hb_override with
    | Some h -> check_heartbeat ~who:"Remote.sweep ?heartbeat" h
    | None -> heartbeat ()
  in
  let rb = match rb_override with Some b -> max 0 b | None -> restart_budget () in
  let tlb = match tlb_override with Some b -> max 0 b | None -> task_loss_budget () in
  let kind_fn =
    match find_kind kind with
    | Some f -> f
    | None -> invalid_arg (Printf.sprintf "Remote.sweep: unregistered kind %S" kind)
  in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let keys = Array.map key tasks in
  let args = Array.map arg tasks in
  let outcomes :
      ((string * Pool.task_snapshots, Pool.fault) result * int) option array =
    Array.make n None
  in
  let losses = Array.make n 0 in
  let dispatches = ref 0
  and redispatched = ref 0
  and loss_events = ref 0
  and respawns = ref 0
  and frame_errors = ref 0
  and degraded = ref false in

  let slot_count =
    match sp with Off -> 0 | Spawn w -> max 1 w | Peers l -> List.length l
  in
  let batch = Pool.resolve_batch ?batch_size ~jobs:(max 1 slot_count) n in
  let chunks = Pool.chunk_ranges ~batch n in
  let queue : item Queue.t = Queue.create () in
  Array.iteri
    (fun ci (start, len) ->
      Queue.add
        { i_chunk = ci; i_attempt = 0; i_indices = Array.init len (fun k -> start + k);
          i_errs = 0; i_span = 0 }
        queue)
    chunks;

  (* The in-process path for one task — byte-identical semantics to the
     worker's: same [attempt_task] fence, same per-attempt [make_ctx]. *)
  let run_local i =
    Pool.attempt_task ~retries ~timeout ~key:keys.(i) (fun ~attempt:_ ~attempt_key ->
        let ctx, snapshots = Pool.make_ctx attempt_key in
        let v = kind_fn ~key:keys.(i) ~arg:args.(i) ctx in
        (v, snapshots ()))
  in
  (* Degradation: drain every unresolved task through the in-process
     pool.  Reached when no worker could be started or every restart
     budget is exhausted — the sweep completes either way. *)
  let degrade reason =
    if not !degraded then begin
      degraded := true;
      warn "%s; degrading to in-process domains" reason
    end;
    Queue.clear queue;
    let unresolved =
      Array.of_list (List.filter (fun i -> outcomes.(i) = None) (List.init n Fun.id))
    in
    let computed = Pool.map run_local unresolved in
    Array.iteri (fun k i -> outcomes.(i) <- Some computed.(k)) unresolved
  in

  if n = 0 then begin
    let stats = Pool.merge_snapshots [] in
    let report = Pool.build_report ~chunks:0 ~key tasks [||] in
    Pool.fault_counters report stats.Pool.counters;
    Pool.publish_metrics stats;
    ([||], stats, report)
  end
  else begin
    let slots =
      match sp with
      | Off -> [||]
      | Spawn w ->
        Array.init (max 1 w) (fun sid ->
            { sid; origin = Spawned; state = Unborn; restarts = 0; last_activity = 0. })
      | Peers l ->
        Array.of_list
          (List.mapi
             (fun sid (h, p) ->
               { sid; origin = Peer (h, p); state = Unborn; restarts = 0;
                 last_activity = 0. })
             l)
    in
    let exe = match sp with Spawn _ -> worker_exe () | _ -> None in
    let exe_usable = match exe with Some e -> Sys.file_exists e | None -> false in

    let note_start_failure slot msg =
      slot.restarts <- slot.restarts + 1;
      if slot.restarts > rb then begin
        warn "worker %d: %s; restart budget exhausted" slot.sid msg;
        slot.state <- Dead
      end
      else begin
        incr respawns;
        if Trace.on () then
          Trace.instant ~stage:"worker.respawn"
            [ ("slot", string_of_int slot.sid);
              ("restarts", string_of_int slot.restarts) ];
        slot.state <- Respawning (Pool.now () +. backoff_delay ~sid:slot.sid ~restarts:slot.restarts)
      end
    in
    let start_slot slot =
      match slot.origin with
      | Spawned ->
        if not exe_usable then slot.state <- Dead
        else begin
          match spawn_conn (Option.get exe) with
          | Ok conn ->
            if Trace.on () then
              Trace.instant ~stage:"worker.spawn"
                [ ("slot", string_of_int slot.sid);
                  ("pid", match conn.pid with Some p -> string_of_int p | None -> "-") ];
            slot.state <- Idle conn;
            slot.last_activity <- Pool.now ()
          | Error msg -> note_start_failure slot ("spawn failed: " ^ msg)
        end
      | Peer (h, p) -> (
        match connect_peer h p with
        | Ok conn ->
          if Trace.on () then
            Trace.instant ~stage:"worker.spawn"
              [ ("slot", string_of_int slot.sid);
                ("peer", Printf.sprintf "%s:%d" h p) ];
          slot.state <- Idle conn;
          slot.last_activity <- Pool.now ()
        | Error msg ->
          note_start_failure slot (Printf.sprintf "connect %s:%d failed: %s" h p msg))
    in

    let requeue_or_fault item reason =
      end_item_span item;
      let remaining =
        Array.of_list
          (List.filter (fun i -> outcomes.(i) = None) (Array.to_list item.i_indices))
      in
      if Array.length remaining > 0 then begin
        (* The worker ran tasks in order, so the first index still owed
           is the one that was in flight when the worker died. *)
        let in_flight = remaining.(0) in
        losses.(in_flight) <- losses.(in_flight) + 1;
        let remaining =
          if losses.(in_flight) > tlb then begin
            outcomes.(in_flight) <- Some (Error (Pool.Worker_lost { reason }), 0);
            Array.sub remaining 1 (Array.length remaining - 1)
          end
          else remaining
        in
        if Array.length remaining > 0 then begin
          redispatched := !redispatched + Array.length remaining;
          item.i_attempt <- item.i_attempt + 1;
          item.i_indices <- remaining;
          Queue.add item queue
        end
      end
    in
    let handle_loss slot reason =
      let conn_and_item =
        match slot.state with
        | Busy (conn, item) -> Some (conn, Some item)
        | Idle conn -> Some (conn, None)
        | _ -> None
      in
      match conn_and_item with
      | None -> ()
      | Some (conn, item_opt) ->
        incr loss_events;
        if Trace.on () then
          Trace.instant ~stage:"worker.kill"
            [ ("slot", string_of_int slot.sid); ("reason", reason) ];
        (match conn.pid with
        | Some pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        | None -> ());
        (try Unix.close conn.fd with Unix.Unix_error _ -> ());
        Option.iter (fun item -> requeue_or_fault item reason) item_opt;
        slot.restarts <- slot.restarts + 1;
        if slot.restarts > rb then begin
          warn "worker %d: %s; restart budget exhausted" slot.sid reason;
          slot.state <- Dead
        end
        else begin
          warn "worker %d: %s; respawning" slot.sid reason;
          incr respawns;
          if Trace.on () then
            Trace.instant ~stage:"worker.respawn"
              [ ("slot", string_of_int slot.sid);
                ("restarts", string_of_int slot.restarts) ];
          slot.state <-
            Respawning (Pool.now () +. backoff_delay ~sid:slot.sid ~restarts:slot.restarts)
        end
    in

    let dispatch conn item =
      incr dispatches;
      let idxs = item.i_indices in
      let req =
        {
          chunk_id = item.i_chunk;
          req_kind = kind;
          dispatch_attempt = item.i_attempt;
          indices = idxs;
          keys = Array.map (fun i -> keys.(i)) idxs;
          args = Array.map (fun i -> args.(i)) idxs;
          retries;
          task_timeout = timeout;
          store_dir = !store_dir_provider ();
          beat_every = hb /. 4.;
          trace = Trace.on ();
          plan =
            Array.to_list idxs
            |> List.filter_map (fun i ->
                   Option.map
                     (fun d -> (keys.(i), d))
                     (Faultinject.directive_for keys.(i)));
        }
      in
      let payload = Marshal.to_string req [] in
      if Trace.on () then
        item.i_span <-
          Trace.span_begin ~stage:"chunk"
            [
              ("chunk", string_of_int item.i_chunk);
              ("attempt", string_of_int item.i_attempt);
              ("tasks", string_of_int (Array.length idxs));
            ];
      let sent =
        match
          Faultinject.transport_fault_for
            ~keys:(Array.to_list req.keys)
            ~attempt:item.i_attempt
        with
        | Some Faultinject.Drop_frame ->
          (* Swallowed in transit: the worker stays silent on this chunk
             and the heartbeat deadline recovers it. *)
          false
        | Some (Faultinject.Delay_frame s) ->
          Unix.sleepf s;
          send_frame conn.fd Run payload;
          true
        | Some Faultinject.Corrupt_frame ->
          let b = encode_frame Run payload in
          let pos = header_len + (String.length payload / 2) in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
          write_all conn.fd b;
          true
        | Some _ | None ->
          send_frame conn.fd Run payload;
          true
      in
      if sent && Trace.on () then
        Trace.instant ~parent:item.i_span ~stage:"frame.send"
          [
            ("type", frame_type_name Run);
            ("chunk", string_of_int item.i_chunk);
            ("bytes", string_of_int (String.length payload));
          ]
    in
    let assign () =
      Array.iter
        (fun slot ->
          match slot.state with
          | Idle conn when not (Queue.is_empty queue) -> (
            let item = Queue.pop queue in
            match dispatch conn item with
            | () ->
              slot.state <- Busy (conn, item);
              slot.last_activity <- Pool.now ()
            | exception _ ->
              slot.state <- Busy (conn, item);
              handle_loss slot "write to worker failed")
          | _ -> ())
        slots
    in

    let handle_frame slot conn item_opt ftype payload =
      match ftype with
      | Hello ->
        if payload <> string_of_int protocol_version then
          raise (Lost (Printf.sprintf "protocol version mismatch (worker says %S)" payload))
      | Beat ->
        if Trace.on () then
          Trace.instant ~stage:"worker.heartbeat" [ ("slot", string_of_int slot.sid) ]
      | Result -> (
        match (Marshal.from_string payload 0 : task_result) with
        | tr ->
          if tr.t_index >= 0 && tr.t_index < n && outcomes.(tr.t_index) = None then
            outcomes.(tr.t_index) <- Some (tr.t_outcome, tr.t_attempts)
        | exception _ -> raise (Lost "unparseable Result frame"))
      | Chunk_done -> (
        (* Stitch: the worker's collected span lines ride the payload's
           third field; append them verbatim to our sink. *)
        (match (Marshal.from_string payload 0 : int * int * string) with
        | _, _, spans -> Trace.absorb_payload spans
        | exception _ -> ());
        match item_opt with
        | Some item ->
          end_item_span item;
          slot.state <- Idle conn;
          (* Defensive: a worker that skipped tasks still owes them. *)
          if Array.exists (fun i -> outcomes.(i) = None) item.i_indices then
            requeue_or_fault item "chunk finished with tasks missing"
        | None -> ())
      | Err -> (
        incr frame_errors;
        match item_opt with
        | Some item ->
          end_item_span item;
          slot.state <- Idle conn;
          item.i_errs <- item.i_errs + 1;
          if item.i_errs > 2 then
            Array.iter
              (fun i ->
                if outcomes.(i) = None then
                  outcomes.(i) <-
                    Some (Error (Pool.Worker_lost { reason = "repeated frame errors: " ^ payload }), 0))
              item.i_indices
          else begin
            let remaining =
              Array.of_list
                (List.filter (fun i -> outcomes.(i) = None) (Array.to_list item.i_indices))
            in
            if Array.length remaining > 0 then begin
              redispatched := !redispatched + Array.length remaining;
              item.i_attempt <- item.i_attempt + 1;
              item.i_indices <- remaining;
              Queue.add item queue
            end
          end
        | None -> warn "worker %d reported: %s" slot.sid payload)
      | Run | Shutdown -> raise (Lost "unexpected frame from worker")
    in
    (* Incremental frame parse over whatever bytes arrived; the
       supervisor digest-checks frames exactly like the worker does. *)
    let pump slot conn item_opt =
      let buf = Bytes.create 65536 in
      match Unix.read conn.fd buf 0 65536 with
      | 0 -> raise (Lost "worker closed the connection")
      | len ->
        slot.last_activity <- Pool.now ();
        Buffer.add_subbytes conn.rbuf buf 0 len;
        let data = Buffer.contents conn.rbuf in
        let pos = ref 0 in
        let total = String.length data in
        let complete = ref true in
        while !complete && total - !pos >= header_len do
          let version = Char.code data.[!pos] in
          if version <> protocol_version then
            raise (Lost (Printf.sprintf "bad frame version %d" version));
          let ftype =
            match frame_type_of_tag (Char.code data.[!pos + 1]) with
            | Some t -> t
            | None -> raise (Lost "bad frame type")
          in
          let flen = Int32.to_int (String.get_int32_be data (!pos + 2)) in
          if flen < 0 || flen > max_frame_payload then raise (Lost "bad frame length");
          if total - !pos - header_len < flen then complete := false
          else begin
            let digest = String.sub data (!pos + 6) 16 in
            let payload = String.sub data (!pos + header_len) flen in
            if Digest.string payload <> digest then
              raise (Lost "frame digest mismatch from worker");
            pos := !pos + header_len + flen;
            if Trace.on () then
              Trace.instant ~stage:"frame.recv"
                [
                  ("type", frame_type_name ftype);
                  ("slot", string_of_int slot.sid);
                  ("bytes", string_of_int flen);
                ];
            handle_frame slot conn item_opt ftype payload
          end
        done;
        Buffer.clear conn.rbuf;
        Buffer.add_substring conn.rbuf data !pos (total - !pos)
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        raise (Lost "connection reset")
    in

    let all_dead () = Array.for_all (fun s -> s.state = Dead) slots in
    let work_remaining () =
      (not (Queue.is_empty queue))
      || Array.exists (fun s -> match s.state with Busy _ -> true | _ -> false) slots
    in

    if slot_count = 0 then degrade "no workers configured"
    else begin
      Array.iter start_slot slots;
      let rec loop () =
        if work_remaining () then
          if all_dead () then degrade "all worker restart budgets exhausted"
          else begin
            assign ();
            let now = Pool.now () in
            (* Wake for the earliest heartbeat or respawn deadline. *)
            let timeout =
              Array.fold_left
                (fun acc s ->
                  match s.state with
                  | Busy _ -> Float.min acc (s.last_activity +. hb -. now)
                  | Respawning due -> Float.min acc (due -. now)
                  | _ -> acc)
                0.25 slots
            in
            let timeout = Float.max 0.01 (Float.min 0.5 timeout) in
            let fds =
              Array.to_list slots
              |> List.filter_map (fun s ->
                     match s.state with
                     | Idle conn | Busy (conn, _) -> Some conn.fd
                     | _ -> None)
            in
            let readable, _, _ =
              try Unix.select fds [] [] timeout
              with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
            in
            Array.iter
              (fun slot ->
                match slot.state with
                | (Idle conn | Busy (conn, _)) when List.memq conn.fd readable -> (
                  let item_opt =
                    match slot.state with Busy (_, it) -> Some it | _ -> None
                  in
                  try pump slot conn item_opt
                  with Lost reason -> handle_loss slot reason)
                | _ -> ())
              slots;
            let now = Pool.now () in
            Array.iter
              (fun slot ->
                match slot.state with
                | Busy _ when now -. slot.last_activity > hb ->
                  handle_loss slot
                    (Printf.sprintf "no heartbeat for %.2fs (deadline %.2fs)"
                       (now -. slot.last_activity) hb)
                | Respawning due when now >= due -> start_slot slot
                | _ -> ())
              slots;
            loop ()
          end
      in
      loop ();
      (* Orderly shutdown: spawned workers exit on Shutdown (or the EOF
         from our close); peers return to their accept loop. *)
      Array.iter
        (fun slot ->
          match slot.state with
          | Idle conn | Busy (conn, _) ->
            (try send_frame conn.fd Shutdown "" with Frame_error _ | Unix.Unix_error _ -> ());
            (try Unix.close conn.fd with Unix.Unix_error _ -> ());
            (match conn.pid with
            | Some pid -> (
              try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
            | None -> ())
          | _ -> ())
        slots
    end;
    (* Safety net: any task every path above failed to resolve still
       runs locally — the sweep never returns holes. *)
    let stragglers = List.filter (fun i -> outcomes.(i) = None) (List.init n Fun.id) in
    List.iter (fun i -> outcomes.(i) <- Some (run_local i)) stragglers;

    let raw = Array.map (function Some o -> o | None -> assert false) outcomes in
    let per_task =
      Array.to_list raw
      |> List.filter_map (fun (outcome, _) ->
             match outcome with Ok (_, snaps) -> Some snaps | Error _ -> None)
    in
    let stats = Pool.merge_snapshots per_task in
    let report =
      Pool.build_report ~worker_losses:!loss_events ~chunks:(Array.length chunks) ~key
        tasks raw
    in
    Pool.fault_counters report stats.Pool.counters;
    (* remote.* counters are scheduling- and environment-dependent by
       nature (they record transport behaviour, not simulation results);
       determinism comparisons exclude them, like [pool.chunks]. *)
    let c = stats.Pool.counters in
    Counter.incr ~by:slot_count c "remote.workers";
    Counter.incr ~by:(Array.length chunks) c "remote.chunks";
    Counter.incr ~by:!dispatches c "remote.dispatches";
    Counter.incr ~by:!redispatched c "remote.redispatched_tasks";
    Counter.incr ~by:!loss_events c "remote.worker_losses";
    Counter.incr ~by:!respawns c "remote.respawns";
    Counter.incr ~by:!frame_errors c "remote.frame_errors";
    Counter.incr ~by:(if !degraded then 1 else 0) c "remote.degraded";
    Pool.publish_metrics stats;
    let results =
      Array.map (fun (outcome, _) -> Result.map (fun (v, _) -> v) outcome) raw
    in
    (results, stats, report)
  end
