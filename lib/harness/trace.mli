(** Structured, low-overhead tracing and metrics for the sweep stack.

    Span and instant events are appended as JSONL to the file named by
    {!set_output}; a merged counter/histogram snapshot is written to the
    {!set_metrics} file as one JSON object at process exit.  Both are
    off by default, and an instrumented site must cost exactly one
    branch when off: guard every emission with [if Trace.on () then
    ...] and build attrs only inside the guard.

    Emission never touches sweep state (RNG streams, counters,
    histograms), so traced and untraced runs produce bit-identical
    merged stats; test/test_trace.ml enforces this.

    This module sits below Pool/Remote/Runner/Security in the layering
    and references none of them. *)

(** Whether a trace sink is active.  One atomic load — the hot-path
    guard. *)
val on : unit -> bool

(** Monotonic seconds; the same clock (and epoch) as [Pool.now]. *)
val now : unit -> float

(** [set_output (Some path)] opens [path] (truncating) as the trace
    sink and turns tracing on; [set_output None] flushes, closes and
    turns it off.  An unopenable path prints a warning and leaves
    tracing off. *)
val set_output : string option -> unit

(** Tag for the ["src"] field of every event: ["main"] by default,
    ["w<pid>"] in worker processes.  Span ids are unique per source
    only. *)
val set_src : string -> unit

(** [span_begin ~parent ~stage attrs] emits a begin event and returns
    the span id, or [0] (the null id) when tracing is off.  [parent] is
    a span id from the same source; [0] means no parent. *)
val span_begin : ?parent:int -> stage:string -> (string * string) list -> int

(** [span_end id] emits the matching end event; a null [id] is a
    no-op, so call sites need no extra guard. *)
val span_end : int -> unit

(** A point event with no duration. *)
val instant : ?parent:int -> stage:string -> (string * string) list -> unit

(** [with_span ~stage attrs f] runs [f] inside a span, ending it even
    if [f] raises.  For cold call sites only: the closure and attrs
    are still evaluated when tracing is off costs nothing beyond the
    call, but hot paths should use the [span_begin]/[span_end] pair
    under an [on ()] guard instead. *)
val with_span :
  ?parent:int -> stage:string -> (string * string) list -> (unit -> 'a) -> 'a

(** Flush the trace sink (also registered [at_exit]). *)
val flush : unit -> unit

(** {1 Worker-span shipping}

    Worker processes do not write a file of their own: when the
    supervisor's request carries the trace flag, the worker collects
    its lines in memory, and ships them back piggybacked on the
    Chunk_done frame; the supervisor appends them verbatim.  Streams
    stitch offline via the chunk id attr both sides stamp. *)

(** [set_collect true] switches emission into an in-memory buffer (and
    turns tracing on); [set_collect false] drops the buffer and turns
    tracing off.  A file sink configured explicitly with [set_output]
    takes precedence and is left untouched. *)
val set_collect : bool -> unit

(** Take (and clear) the collected JSONL lines; [""] when not
    collecting. *)
val drain_collected : unit -> string

(** Append a worker's shipped JSONL payload verbatim to the active
    sink; a no-op when tracing is off or the payload is empty. *)
val absorb_payload : string -> unit

(** {1 Metrics} *)

(** [set_metrics (Some path)] arranges for the accumulated metrics to
    be written to [path] as JSON at process exit (or on an explicit
    {!write_metrics}). *)
val set_metrics : string option -> unit

(** Whether a metrics destination is set — guard for
    {!metrics_absorb} call sites. *)
val metrics_on : unit -> bool

(** Fold one sweep's merged counter snapshot and named histogram
    snapshots into the process-wide accumulator. *)
val metrics_absorb :
  Chex86_stats.Counter.snapshot
  * (string * Chex86_stats.Histogram.snapshot) list ->
  unit

(** Write the accumulated metrics now (also registered [at_exit]). *)
val write_metrics : unit -> unit

(** Extra top-level sections appended to the metrics JSON object,
    contributed by layers Trace must not depend on ([Runner] registers
    a ["store"] section here). Called once per export. *)
val metrics_extra : (unit -> (string * Chex86_stats.Json.t) list) ref

(** {1 Offline analysis} *)

(** [summarize_file path] parses a span JSONL file and renders
    per-stage latency histograms (p50/p99/max in microseconds) and a
    per-source utilization table.  [Error _] on unparseable lines or
    structural violations (an end without a begin, a parent closing
    before its child); unclosed spans at EOF are reported in the
    summary but are not errors — a killed worker legitimately loses
    its tail.  For the same reason an unparseable {e final} line (a
    write torn by a crash) is skipped and noted in the summary header
    rather than treated as an error, so post-crash traces from
    [chex86d] stay analyzable; garbage followed by further events is
    still an error. *)
val summarize_file : string -> (string, string) result

(** Forget accumulated metrics (sinks untouched) — test isolation
    hook. *)
val reset_metrics_for_tests : unit -> unit
