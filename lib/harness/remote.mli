(** Process-isolated worker dispatch for supervised sweeps.

    The in-process pool can only contain faults cooperatively — a task
    that never reaches [Pool.check_deadline] wedges its domain for good.
    This layer makes containment structural: a supervisor forks/execs N
    copies of [bin/chex86_worker.exe] (or connects to TCP worker peers),
    ships each batched chunk's task keys as length-prefixed,
    digest-checksummed frames, and merges the streamed per-task results
    and stats snapshots through the same [Counter]/[Histogram] merge
    path the pool uses, so results stay bit-identical to a serial run at
    any (jobs, batch, transport) geometry.

    Robustness: per-worker heartbeats with a hard wall-clock deadline
    and SIGKILL escalation; exponential-backoff respawn with
    deterministic jitter under a bounded restart budget; re-dispatch of
    only a dead worker's unfinished tasks (streamed results are kept); a
    task that keeps killing its worker is faulted as
    [Pool.Worker_lost]; and if no worker can be started at all the
    sweep degrades to the in-process pool path with a warning.

    The [remote.*] counters added to merged stats
    ([remote.workers], [remote.chunks], [remote.dispatches],
    [remote.redispatched_tasks], [remote.worker_losses],
    [remote.respawns], [remote.frame_errors], [remote.degraded]) record
    transport behaviour and are scheduling-dependent by nature;
    determinism comparisons exclude them, like [pool.chunks]. *)

val protocol_version : int
(** Version byte leading every frame; both sides refuse a mismatch. *)

(** How sweeps reach workers: not at all, [Spawn n] local worker
    processes over socketpairs, or TCP [Peers] started with
    [chex86_worker --listen PORT]. *)
type spec = Off | Spawn of int | Peers of (string * int) list

val set_spec : spec -> unit
val spec : unit -> spec

val enabled : unit -> bool
(** [spec () <> Off]; Runner/Security consult this to route sweeps. *)

(** {2 Robustness knobs} (process-wide; [sweep] takes per-call
    overrides for tests) *)

val set_heartbeat : float -> unit
(** Hard liveness deadline in seconds (default 30): a busy worker whose
    last frame is older than this is SIGKILLed and its unfinished tasks
    re-dispatched. Workers beat at a quarter of this interval. Raises
    [Invalid_argument] on a non-positive (or NaN) value — such a
    deadline would declare every worker wedged on dispatch; small
    positive values are floored at 50ms. [sweep]'s [?heartbeat]
    override validates identically. *)

val heartbeat : unit -> float

val set_restart_budget : int -> unit
(** Respawns/reconnects allowed per worker slot (default 3) before the
    slot is written off as dead. *)

val restart_budget : unit -> int

val set_task_loss_budget : int -> unit
(** Worker losses a single task may cause (default 1) before it is
    faulted as [Pool.Worker_lost] instead of re-dispatched. *)

val task_loss_budget : unit -> int

val set_backoff_base : float -> unit
(** First respawn delay in seconds (default 0.05); doubles per restart,
    with deterministic jitter seeded from (slot, restart ordinal). *)

val backoff_base : unit -> float

val max_backoff_delay : float
(** Hard cap (seconds, pre-jitter) on the exponential respawn delay:
    growth is clamped here so high restart ordinals cannot push the
    delay toward infinity and wedge the supervisor. The worst
    observable delay is [1.25 *. max_backoff_delay]. *)

val backoff_delay : sid:int -> restarts:int -> float
(** The respawn delay for worker slot [sid] at restart ordinal
    [restarts]: capped exponential growth from [backoff_base] plus
    deterministic jitter. Exposed for the cap regression test. *)

(** {2 Task kinds}

    The wire carries only (kind, key, arg) strings — never closures.
    Both sides must link the same registration code; workers call the
    [register_remote] entry points of Security and Runner at startup. *)

type kind_fn = key:string -> arg:string -> Pool.ctx -> string

val register_kind : string -> kind_fn -> unit
(** Idempotent (last registration wins). *)

val find_kind : string -> kind_fn option
(** Tests use this to run a kind's body through the in-process pool as
    the bit-identity baseline for remote runs. *)

val selftest_kind : string
(** Built-in kind for tests: draws from the task-keyed RNG into
    [selftest.*] stats; keys prefixed ["wedge"] spin forever without
    reaching [Pool.check_deadline] — the uncooperative task the
    heartbeat deadline exists for. *)

(** {2 Worker-side store wiring}

    Set by [Runner] at module init so the supervisor can ship its
    result-store directory to workers without this module depending on
    [Runner]. *)

val store_dir_provider : (unit -> string option) ref
val store_dir_applier : (string option -> unit) ref

(** {2 The sweep} *)

val sweep :
  ?batch_size:int ->
  ?retries:int ->
  ?task_timeout:float ->
  ?spec:spec ->
  ?heartbeat:float ->
  ?restart_budget:int ->
  ?task_loss_budget:int ->
  kind:string ->
  key:('a -> string) ->
  arg:('a -> string) ->
  'a array ->
  (string, Pool.fault) result array * Pool.merged_stats * Pool.fault_report
(** Dispatch [tasks] to workers in batched chunks and merge the
    per-task outcomes; result slots line up with input order, stats are
    bit-identical to a serial run of the same kind function (modulo
    [pool.chunks] / [remote.*]). Raises [Invalid_argument] for an
    unregistered [kind]; never raises for worker failures — those end
    as [Pool.Worker_lost] faults or degradation to the in-process
    path. *)

(** The worker side, driven by [bin/chex86_worker.exe]. *)
module Worker : sig
  val serve : input:Unix.file_descr -> output:Unix.file_descr -> unit
  (** Serve one supervisor connection until Shutdown or EOF. *)

  val listen : port:int -> unit
  (** TCP accept loop ([--listen PORT]); serves supervisors one at a
      time and returns to [accept] when each disconnects. *)
end
