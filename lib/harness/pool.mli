(** Domains-based parallel experiment engine.

    Shards independent simulation tasks over a fixed pool of worker
    domains with deterministic per-task RNG seeding and order-insensitive
    stats merging, so a sweep at [~jobs:n] is bit-identical to the serial
    [~jobs:1] run (test/test_parallel.ml enforces this). *)

(** Monotonic clock in seconds from an arbitrary epoch
    (clock_gettime(CLOCK_MONOTONIC)). Use this — never
    [Unix.gettimeofday] — for deadlines and elapsed-time measurement: a
    wall-clock step (NTP, suspend) would fire spurious timeouts or let a
    wedged task run forever. *)
val now : unit -> float

(** [Domain.recommended_domain_count () - 1], at least 1. *)
val default_jobs : unit -> int

(** Process-wide job count used when [?jobs] is omitted; starts at
    [default_jobs ()], set once from the CLI ([--jobs N]). Clamped to
    at least 1. *)
val set_jobs : int -> unit

val jobs : unit -> int

(** Process-wide batch size for the batched maps, set once from the CLI
    ([--batch-size N]); [None] (the default) means auto-sizing via
    {!auto_batch_size}. Clamped to at least 1. *)
val set_batch_size : int option -> unit

val batch_size : unit -> int option

(** [auto_batch_size ~jobs n] is [ceil (n / (4 * jobs))] clamped to
    [\[1, 64\]]: about four chunks per worker — enough slack for dynamic
    load balancing without paying per-task dispatch on every task. *)
val auto_batch_size : jobs:int -> int -> int

(** Effective batch size for [n] tasks: the explicit argument if given,
    else the process-wide knob, else {!auto_batch_size}. *)
val resolve_batch : ?batch_size:int -> jobs:int -> int -> int

(** [chunk_ranges ~batch n] is the contiguous [(start, len)] slices the
    batched maps dispatch, in index order. *)
val chunk_ranges : batch:int -> int -> (int * int) array

(** Process-wide supervision defaults, set once from the CLI; the
    [?retries] / [?task_timeout] arguments of the supervised maps
    override them per sweep. Retries clamp to at least 0. *)
val set_retries : int -> unit

val retries : unit -> int
val set_task_timeout : float option -> unit
(** Raises [Invalid_argument] on [Some t] with [t <= 0] (or NaN): a
    non-positive deadline times every task out before it starts. *)

val task_timeout : unit -> float option

(** --strict: faults flip the process exit code (and demote-to-error
    behaviours like unknown CHEX86_WORKLOADS names). Rendering is the
    same either way. *)
val set_strict : bool -> unit

val strict : unit -> bool

(** Total faults reported by every supervised sweep this process ran. *)
val faults_seen : unit -> int

(** Stable FNV-1a hash of a task key; the task's RNG seed. *)
val seed_of_key : string -> int

(** A fresh RNG stream seeded from the task key, independent of worker
    identity and scheduling order. *)
val rng_of_key : string -> Chex86_stats.Rng.t

(** [map ~jobs f tasks] computes [f] over [tasks]; results are returned
    in task order. [~jobs:1] (or a single task) runs everything in the
    calling domain in index order — the exact serial path, no domain is
    spawned. A task exception is re-raised in the caller,
    deterministically picking the lowest-index failure. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array

(** Per-task context: a private counter group and named histograms no
    other task can see, plus an RNG seeded from the task key. *)
type ctx = {
  key : string;
  rng : Chex86_stats.Rng.t;
  counters : Chex86_stats.Counter.group;
  histogram : string -> Chex86_stats.Histogram.t;
      (** named scratch histogram, created on first use *)
}

type merged_stats = {
  counters : Chex86_stats.Counter.group;
  histograms : (string * Chex86_stats.Histogram.t) list;  (** sorted by name *)
}

(** One task's mergeable stats: a counter snapshot plus named histogram
    snapshots sorted by name. Plain marshalable data — this is the unit
    the remote dispatch layer ships across the process boundary. *)
type task_snapshots =
  Chex86_stats.Counter.snapshot
  * (string * Chex86_stats.Histogram.snapshot) list

(** Build a task-private [ctx] for a key; calling the returned thunk
    after the task body ran yields its mergeable snapshots. *)
val make_ctx : string -> ctx * (unit -> task_snapshots)

(** Deterministic reduction of per-task snapshots, folded in list order
    (callers pass task order). Order-insensitive merge operators make
    any chunking of the same snapshots equivalent. *)
val merge_snapshots : task_snapshots list -> merged_stats

(** Fold a sweep's merged stats into the [--metrics] accumulator
    ({!Trace.metrics_absorb}); a no-op unless {!Trace.metrics_on}.
    Every [map_stats*] variant calls this after its merge; sweep
    drivers that assemble [merged_stats] themselves (the remote
    dispatch layer) must call it too. *)
val publish_metrics : merged_stats -> unit

(** [map_stats ~key f tasks] is [map], with each task given a private
    [ctx]; the coordinator merges all per-task stats in task order into
    the returned [merged_stats]. *)
val map_stats :
  ?jobs:int ->
  key:('a -> string) ->
  ('a -> ctx -> 'b) ->
  'a array ->
  'b array * merged_stats

(** {2 Batched scheduling}

    The batched maps group tasks into contiguous chunks of
    [?batch_size] (default: the process-wide knob, else
    {!auto_batch_size}) and dispatch each chunk to one pool slot as a
    unit: one dispatch and one stats snapshot/merge round per chunk
    instead of per task, which is what makes `--jobs`-heavy runs of the
    864-exploit RIPE matrix cheap. RNG streams stay seeded from the
    *task* key (never the chunk), and chunks are contiguous in index
    order, so results and merged stats are bit-identical to
    [--batch-size 1] and to a serial run at any job count — with one
    documented exception: the [pool.chunks] counter added to batched
    merged stats records the actual dispatch rounds and therefore
    varies with the batch geometry (and with [--jobs] under
    auto-sizing). Determinism comparisons must exclude that one name. *)

(** [map] with chunked dispatch. A task exception is re-raised in the
    caller (lowest task index wins); its chunk-mates still ran. *)
val map_batched : ?jobs:int -> ?batch_size:int -> ('a -> 'b) -> 'a array -> 'b array

(** [map_stats] with chunked dispatch: every task of a chunk shares one
    private counter group/histogram table, snapshotted once per chunk.
    Merged stats additionally carry [pool.chunks]. *)
val map_stats_batched :
  ?jobs:int ->
  ?batch_size:int ->
  key:('a -> string) ->
  ('a -> ctx -> 'b) ->
  'a array ->
  'b array * merged_stats

(** {2 Supervised sweeps}

    Fault-tolerant counterparts of [map] / [map_stats]: a crashing or
    wedged task is contained and classified instead of killing the
    sweep. Each task gets a bounded retry budget; attempt [i] of task
    [key] re-seeds from [retry_key key i], so retried runs are as
    reproducible as first runs. Wall budgets are cooperative
    ([check_deadline]); instruction budgets ride on the simulation's
    [max_insns] hook, whose exhaustion is a reported outcome already. *)

(** Raised by [check_deadline] once the current task's wall budget has
    passed; the supervisor classifies it as [Timed_out]. *)
exception Task_timed_out

(** Cooperative deadline check: call from long-running task bodies at
    safe points. No-op outside a supervised task or when no
    [task_timeout] is set. Also fires the {!set_tick_hook} hook. *)
val check_deadline : unit -> unit

(** Install (or clear, with [None]) a process-wide hook fired on every
    [check_deadline]. The remote worker uses it as a liveness beacon:
    tasks that reach their cooperative safe points feed the supervisor's
    heartbeat. The hook must be cheap and rate-limit itself; exceptions
    it raises are swallowed. *)
val set_tick_hook : (unit -> unit) option -> unit

(** [retry_key key 0 = key]; [retry_key key i = key ^ ":retry" ^ i]. *)
val retry_key : string -> int -> string

type fault =
  | Crashed of { exn : string; backtrace : string }
  | Timed_out of { budget : float }
  | Worker_lost of { reason : string }
      (** the process running the task died (or was killed by the
          supervisor's heartbeat deadline) more often than the loss
          budget allows; only the remote dispatch layer produces this *)

type task_fault = {
  index : int;
  key : string;
  attempts : int;  (** total attempts made, initial try included *)
  fault : fault;
}

type fault_report = {
  tasks : int;
  chunks : int;  (** dispatch rounds paid (= [tasks] for the unbatched maps) *)
  ok : int;
  retried_ok : int;  (** tasks that succeeded only after retrying *)
  crashed : int;
  timed_out : int;
  worker_lost : int;  (** tasks faulted as [Worker_lost] *)
  retries_used : int;  (** total extra attempts across all tasks *)
  worker_losses : int;
      (** worker loss {e events} (deaths/kills), 0 on in-process paths;
          a lost worker that re-dispatches cleanly bumps this without
          faulting any task *)
  task_faults : task_fault list;  (** final faults, in task order *)
}

val fault_to_string : fault -> string

(** Multi-line report: the counts line plus one line per faulted task,
    with the first [max_backtraces] crash backtraces inlined. *)
val render_fault_report : ?max_backtraces:int -> fault_report -> string

(** One supervised task: bounded retries, each attempt fenced by the
    armed {!Faultinject} plan and the cooperative deadline. Never
    raises; returns the classification plus the index of the last
    attempt (0-based, so [attempts_index + 1] tries were made). Attempt
    [a] receives [~attempt_key:(retry_key key a)]. Exposed for the
    remote worker, which must run tasks through the exact same fence to
    keep remote stats bit-identical to in-process runs. Emits one
    ["task"] trace span per attempt (parented under [?span_parent],
    default none) and a ["retry"] instant before each retry — both only
    when {!Trace.on}[ ()]. *)
val attempt_task :
  ?span_parent:int ->
  retries:int ->
  timeout:float option ->
  key:string ->
  (attempt:int -> attempt_key:string -> 'a) ->
  ('a, fault) result * int

(** Resolve the effective (retries, timeout) pair: explicit arguments
    win, else the process-wide CLI knobs. *)
val supervise_params :
  ?retries:int -> ?task_timeout:float -> unit -> int * float option

(** Fold per-task [(outcome, attempts_index)] slots (in task order) into
    a {!fault_report}; [?worker_losses] records loss events (default
    0). Also adds the fault count to {!faults_seen}. *)
val build_report :
  ?worker_losses:int ->
  chunks:int ->
  key:('a -> string) ->
  'a array ->
  (('b, fault) result * int) array ->
  fault_report

(** Fold a report's counts into a counter group as the [pool.*] fault
    counters ([pool.tasks] … [pool.retries_used], [pool.worker_lost]);
    scheduling-independent. *)
val fault_counters : fault_report -> Chex86_stats.Counter.group -> unit

(** [map] with per-task supervision; result slots line up with input
    order. Tasks faulted by the armed {!Faultinject} plan and real
    crashes/timeouts are both reported here, never re-raised. *)
val map_supervised :
  ?jobs:int ->
  ?retries:int ->
  ?task_timeout:float ->
  key:('a -> string) ->
  ('a -> 'b) ->
  'a array ->
  ('b, fault) result array * fault_report

(** [map_stats] with per-task supervision. Each attempt gets a fresh
    private context seeded from its [retry_key]; a faulted attempt's
    partial stats are discarded wholesale, so merged totals only count
    completed tasks. The fault counts are folded into the merged
    counters as [pool.tasks], [pool.ok], [pool.retried_ok],
    [pool.crashed], [pool.timed_out], [pool.retries_used] (all derived
    from the per-task classification, hence scheduling-independent). *)
val map_stats_supervised :
  ?jobs:int ->
  ?retries:int ->
  ?task_timeout:float ->
  key:('a -> string) ->
  ('a -> ctx -> 'b) ->
  'a array ->
  ('b, fault) result array * merged_stats * fault_report

(** [map_supervised] with chunked dispatch. Supervision stays per task:
    a crash or timeout mid-chunk faults exactly the offending task (the
    remainder of the chunk keeps running), retry budgets and
    deterministic re-seeding are per task, and the fault report is
    keyed per task with [report.chunks] recording the dispatch rounds. *)
val map_supervised_batched :
  ?jobs:int ->
  ?batch_size:int ->
  ?retries:int ->
  ?task_timeout:float ->
  key:('a -> string) ->
  ('a -> 'b) ->
  'a array ->
  ('b, fault) result array * fault_report

(** [map_stats_supervised] with chunked dispatch: completed tasks fold
    into one chunk-level snapshot (faulted attempts still discarded
    wholesale); merged stats carry the [pool.*] fault counters plus
    [pool.chunks]. *)
val map_stats_supervised_batched :
  ?jobs:int ->
  ?batch_size:int ->
  ?retries:int ->
  ?task_timeout:float ->
  key:('a -> string) ->
  ('a -> ctx -> 'b) ->
  'a array ->
  ('b, fault) result array * merged_stats * fault_report
