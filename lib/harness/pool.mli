(** Domains-based parallel experiment engine.

    Shards independent simulation tasks over a fixed pool of worker
    domains with deterministic per-task RNG seeding and order-insensitive
    stats merging, so a sweep at [~jobs:n] is bit-identical to the serial
    [~jobs:1] run (test/test_parallel.ml enforces this). *)

(** [Domain.recommended_domain_count () - 1], at least 1. *)
val default_jobs : unit -> int

(** Process-wide job count used when [?jobs] is omitted; starts at
    [default_jobs ()], set once from the CLI ([--jobs N]). Clamped to
    at least 1. *)
val set_jobs : int -> unit

val jobs : unit -> int

(** Stable FNV-1a hash of a task key; the task's RNG seed. *)
val seed_of_key : string -> int

(** A fresh RNG stream seeded from the task key, independent of worker
    identity and scheduling order. *)
val rng_of_key : string -> Chex86_stats.Rng.t

(** [map ~jobs f tasks] computes [f] over [tasks]; results are returned
    in task order. [~jobs:1] (or a single task) runs everything in the
    calling domain in index order — the exact serial path, no domain is
    spawned. A task exception is re-raised in the caller,
    deterministically picking the lowest-index failure. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array

(** Per-task context: a private counter group and named histograms no
    other task can see, plus an RNG seeded from the task key. *)
type ctx = {
  key : string;
  rng : Chex86_stats.Rng.t;
  counters : Chex86_stats.Counter.group;
  histogram : string -> Chex86_stats.Histogram.t;
      (** named scratch histogram, created on first use *)
}

type merged_stats = {
  counters : Chex86_stats.Counter.group;
  histograms : (string * Chex86_stats.Histogram.t) list;  (** sorted by name *)
}

(** [map_stats ~key f tasks] is [map], with each task given a private
    [ctx]; the coordinator merges all per-task stats in task order into
    the returned [merged_stats]. *)
val map_stats :
  ?jobs:int ->
  key:('a -> string) ->
  ('a -> ctx -> 'b) ->
  'a array ->
  'b array * merged_stats
