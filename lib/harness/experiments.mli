(** Regeneration of every table and figure of the paper's evaluation.
    Each function runs the required simulations (memoized) and returns
    the rendered ASCII table/figure plus the summary statistics the
    paper quotes in prose. Scale via the CHEX86_SCALE environment
    variable (default 1). *)

val scale : int

(** Pure CHEX86_WORKLOADS resolution: the subset of [all] named by the
    comma-separated [spec] (all of them for an empty spec). Unknown
    names warn-and-ignore by default but are an [Error] under
    [~strict]; if no known name remains, warns and sweeps [all]. *)
val resolve_workloads :
  ?strict:bool ->
  all:Chex86_workloads.Bench_spec.t list ->
  string ->
  (Chex86_workloads.Bench_spec.t list, string) result

(** The workloads every figure sweeps: all 14, or the subset named by
    the CHEX86_WORKLOADS environment variable (comma-separated).
    Resolved on first call — after the CLI has parsed [--strict] —
    then cached; a strict run with unknown names exits 2. *)
val workloads : unit -> Chex86_workloads.Bench_spec.t list

val figure1 : unit -> string

(** Benchmark allocation behaviour (total / max-live / in-use). *)
val figure3 : unit -> string

(** Normalized performance of the six configurations + uop expansion. *)
val figure6 : unit -> string

(** Capability and alias cache miss rates at two sizes each. *)
val figure7 : unit -> string

(** Alias misprediction rates (1024/2048 entries) and squash time. *)
val figure8 : unit -> string

(** Storage overhead and DRAM bandwidth. *)
val figure9 : unit -> string

(** The rule database + hardware-checker validation. *)
val table1 : unit -> string

(** Temporal patterns recovered from machine-level PID streams. *)
val table2 : unit -> string

val table3 : unit -> string

(** Prior-work comparison with the measured CHEx86 row. *)
val table4 : unit -> string

(** RIPE / ASan suite / How2Heap sweep summary. *)
val security : unit -> string

(** All targets by bench name. *)
val all : (string * (unit -> string)) list
