(* Unified runner for benchmarks and exploits across every protection
   configuration (the six bars of Fig 6 plus ASan), with memoization so
   the bench targets that share runs (Fig 6 / Table IV / Fig 9) only
   simulate each (workload, configuration) pair once. *)

module Machine = Chex86_machine
module Os = Chex86_os

type config =
  | Chex of Chex86.Variant.t
  | Asan

let insecure = Chex (Chex86.Variant.make Chex86.Variant.Insecure)
let prediction = Chex Chex86.Variant.default

let config_name = function
  | Chex v -> Chex86.Variant.scheme_name v.Chex86.Variant.scheme
  | Asan -> "ASan"

type outcome =
  | Completed
  | Blocked of Chex86.Violation.kind
  | Aborted of string  (* allocator integrity abort *)
  | Faulted of string
  | Budget_exhausted

type run = {
  outcome : outcome;
  macro_insns : int;
  uops : int;
  uops_injected : int;
  uops_killed : int;
  cycles : int;
  counters : Chex86_stats.Counter.group;
  shadow_bytes : int;  (* capability/alias tables or ASan shadow *)
  resident_bytes : int;
  mem_bytes : int;  (* DRAM traffic *)
  pwned : bool;
  profile : Os.Heap_profile.report option;
}

let read_pwned proc program =
  match Chex86_isa.Program.find_global program Exploit_defs.pwned_global with
  | None -> false
  | Some g ->
    Chex86_mem.Image.read64 proc.Os.Process.mem g.Chex86_isa.Program.addr
    = Chex86_exploits.Exploit.pwned_value

let of_sim_result program proc ~shadow_bytes ~profile
    (result : Machine.Simulator.result) outcome =
  {
    outcome;
    macro_insns = result.macro_insns;
    uops = result.uops;
    uops_injected = result.uops_injected;
    uops_killed = result.uops_killed;
    cycles = result.cycles;
    counters = result.counters;
    shadow_bytes;
    resident_bytes = result.resident_bytes;
    mem_bytes = result.mem_bytes;
    pwned = read_pwned proc program;
    profile;
  }

(* Execute [program] under [config].  [timing:false] runs the functional
   engine only (used for the security sweep, which needs no cycles).
   [heap] selects the allocator personality; the ASan baseline ignores
   it (ASan interposes its own redzone allocator). *)
let run_program ?(timing = true) ?(max_insns = 50_000_000) ?(profile = false)
    ?(configure = fun (_ : Chex86.Monitor.t) -> ())
    ?(heap = Os.Allocator.Glibc) config program =
  match config with
  | Chex variant ->
    let profile_interval = if profile then Some 100_000 else None in
    let run =
      Chex86.Sim.run ~variant ~max_insns ~timing ~configure ?profile_interval ~heap
        program
    in
    let outcome =
      match run.Chex86.Sim.outcome with
      | Chex86.Sim.Completed -> Completed
      | Chex86.Sim.Violation_detected kind -> Blocked kind
      | Chex86.Sim.Heap_abort msg -> Aborted msg
      | Chex86.Sim.Guest_fault msg -> Faulted msg
      | Chex86.Sim.Budget_exhausted -> Budget_exhausted
    in
    of_sim_result program run.Chex86.Sim.proc
      ~shadow_bytes:(Chex86.Monitor.shadow_storage_bytes run.Chex86.Sim.monitor)
      ~profile:(Option.map Os.Heap_profile.report run.Chex86.Sim.profile)
      run.Chex86.Sim.result outcome
  | Asan ->
    let monitor, result, proc = Chex86_asan.Asan_monitor.run ~timing ~max_insns program in
    let outcome =
      match result.Machine.Simulator.outcome with
      | Machine.Simulator.Finished -> Completed
      | Machine.Simulator.Budget_exhausted -> Budget_exhausted
      | Machine.Simulator.Faulted (Chex86.Violation.Security_violation kind) ->
        Blocked kind
      | Machine.Simulator.Faulted (Os.Allocator.Heap_abort msg) -> Aborted msg
      | Machine.Simulator.Faulted (Machine.Engine.Guest_fault msg) -> Faulted msg
      | Machine.Simulator.Faulted e -> Faulted (Printexc.to_string e)
    in
    {
      outcome;
      macro_insns = result.macro_insns;
      uops = result.uops;
      uops_injected = result.uops_injected;
      uops_killed = result.uops_killed;
      cycles = result.cycles;
      counters = result.counters;
      shadow_bytes = Chex86_asan.Asan_monitor.storage_bytes monitor;
      resident_bytes = result.resident_bytes;
      mem_bytes = result.mem_bytes;
      pwned = read_pwned proc program;
      profile = None;
    }

(* Execute [program] on the SMP driver, one hardware thread per entry
   label.  Used by the cross-core exploit campaigns; the per-core
   pipeline totals are folded into [cycles]/[macro_insns], and the uop /
   memory-traffic fields (single-engine notions) are reported as 0.  The
   ASan baseline has no SMP monitor, so Asan configs report [Faulted]
   rather than silently running unprotected. *)
let run_threads ?(timing = false) ?(max_insns = 50_000_000)
    ?(heap = Os.Allocator.Glibc) ~quantum ~threads config program =
  match config with
  | Chex variant ->
    let r = Chex86.Smp.run ~variant ~max_insns ~timing ~quantum ~heap ~threads program in
    let outcome =
      match r.Chex86.Smp.outcome with
      | Chex86.Smp.Completed -> Completed
      | Chex86.Smp.Violation_detected { kind; core = _ } -> Blocked kind
      | Chex86.Smp.Heap_abort { message; core = _ } -> Aborted message
      | Chex86.Smp.Guest_fault { message; core = _ } -> Faulted message
      | Chex86.Smp.Budget_exhausted -> Budget_exhausted
    in
    {
      outcome;
      macro_insns = r.Chex86.Smp.macro_insns;
      uops = 0;
      uops_injected = 0;
      uops_killed = 0;
      cycles = r.Chex86.Smp.cycles;
      counters = r.Chex86.Smp.counters;
      shadow_bytes = 0;
      resident_bytes = 0;
      mem_bytes = 0;
      pwned = read_pwned r.Chex86.Smp.proc program;
      profile = None;
    }
  | Asan ->
    {
      outcome = Faulted "ASan baseline does not support SMP runs";
      macro_insns = 0;
      uops = 0;
      uops_injected = 0;
      uops_killed = 0;
      cycles = 0;
      counters = Chex86_stats.Counter.create_group ();
      shadow_bytes = 0;
      resident_bytes = 0;
      mem_bytes = 0;
      pwned = false;
      profile = None;
    }

(* --- on-disk result store (checkpoint / resume) --------------------------- *)

(* Spills memoized runs to disk so an interrupted sweep resumes where it
   stopped and repeated invocations skip re-simulation entirely.
   Entries are keyed by the memo key ([job_key]) plus a content digest
   of the built workload program, so editing a workload builder
   invalidates its cached runs.

   Robustness over cleverness: entries are written atomically (tmp +
   rename, so a killed process leaves either the old entry or none) and
   validated on load (format version + payload digest); anything
   unreadable is discarded with a warning and re-simulated — a corrupt
   cache can cost time, never correctness, and never a crash. *)
module Store = struct
  let format_version = "chex86-store-v1"

  let dir_ref : string option Atomic.t = Atomic.make None
  let hits = Atomic.make 0
  let misses = Atomic.make 0
  let writes = Atomic.make 0
  let discarded = Atomic.make 0
  let tmp_reclaimed = Atomic.make 0

  type stats = {
    hits : int;
    misses : int;
    writes : int;
    discarded : int;
    tmp_reclaimed : int;
  }

  let stats () =
    {
      hits = Atomic.get hits;
      misses = Atomic.get misses;
      writes = Atomic.get writes;
      discarded = Atomic.get discarded;
      tmp_reclaimed = Atomic.get tmp_reclaimed;
    }

  let reset_stats () =
    Atomic.set hits 0;
    Atomic.set misses 0;
    Atomic.set writes 0;
    Atomic.set discarded 0;
    Atomic.set tmp_reclaimed 0

  let default_dir = "_chex86_cache"

  let warn fmt =
    Printf.ksprintf (fun msg -> Printf.eprintf "chex86-store: %s\n%!" msg) fmt

  (* A tmp file's writer is still alive iff signal 0 reaches its pid
     (EPERM means alive under another uid — leave it alone). *)
  let pid_alive pid =
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
    | exception _ -> true

  (* Age guard for pid reuse: a recycled pid can make a long-dead
     writer look alive, so sufficiently old tmp files go regardless. *)
  let tmp_stale_age = 900. (* seconds *)

  (* Reclaim stale [.tmp-<pid>-*] files left behind by a killed process:
     a live writer renames its tmp away within one entry write, so any
     tmp file whose writer is dead — or that has sat here longer than
     [tmp_stale_age] — is garbage from a torn sweep. *)
  let reclaim_tmp dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | names ->
      let self = Unix.getpid () in
      let now = Unix.time () in
      Array.iter
        (fun name ->
          if String.length name > 5 && String.sub name 0 5 = ".tmp-" then begin
            let path = Filename.concat dir name in
            let writer =
              match String.index_from_opt name 5 '-' with
              | Some dash -> int_of_string_opt (String.sub name 5 (dash - 5))
              | None -> None
            in
            let old =
              match Unix.stat path with
              | st -> now -. st.Unix.st_mtime > tmp_stale_age
              | exception Unix.Unix_error _ -> false
            in
            let stale =
              match writer with
              | Some pid when pid = self -> false
              | Some pid -> (not (pid_alive pid)) || old
              | None -> old
            in
            if stale then begin
              match Sys.remove path with
              | () ->
                Atomic.incr tmp_reclaimed;
                warn "reclaimed stale tmp file %s" path
              | exception Sys_error _ -> ()
            end
          end)
        names

  (* One sweep per configuration: [ensure_dir] runs on every save, and
     re-listing the directory each time would turn writes quadratic. *)
  let swept = Atomic.make false

  (* The directory itself is created on first write, so enabling the
     store in a binary that never saves leaves no empty directory. *)
  let configure ~dir =
    Atomic.set dir_ref (Some dir);
    Atomic.set swept false;
    if Sys.file_exists dir then begin
      Atomic.set swept true;
      reclaim_tmp dir
    end

  let ensure_dir dir =
    (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    if not (Atomic.exchange swept true) then reclaim_tmp dir

  let disable () = Atomic.set dir_ref None
  let enabled () = Option.is_some (Atomic.get dir_ref)
  let dir () = Atomic.get dir_ref

  (* Key scheme: a human-greppable sanitized prefix of the memo key plus
     a digest over (key, program digest) that actually disambiguates. *)
  let entry_name ~key ~digest =
    let slug =
      String.map
        (fun c ->
          match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> c | _ -> '_')
        (if String.length key > 64 then String.sub key 0 64 else key)
    in
    Printf.sprintf "%s-%s.run" slug (Digest.to_hex (Digest.string (key ^ "\x00" ^ digest)))

  let entry_path ~key ~digest =
    Option.map (fun d -> Filename.concat d (entry_name ~key ~digest)) (dir ())

  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

  (* Entry layout: version line, payload-digest line, marshalled payload. *)
  let load ~key ~digest : run option =
    match entry_path ~key ~digest with
    | None -> None
    | Some path ->
      if not (Sys.file_exists path) then begin
        Atomic.incr misses;
        if Trace.on () then Trace.instant ~stage:"store.miss" [ ("key", key) ];
        None
      end
      else begin
        match
          let body = read_file path in
          Scanf.sscanf body "%s@\n%s@\n" (fun version payload_digest ->
              let header_len =
                String.length version + 1 + String.length payload_digest + 1
              in
              let payload =
                String.sub body header_len (String.length body - header_len)
              in
              if version <> format_version then Error "format version mismatch"
              else if Digest.to_hex (Digest.string payload) <> payload_digest then
                Error "payload digest mismatch"
              else
                (* The digest can pass on a payload the unmarshaller
                   still rejects (e.g. an entry truncated inside the
                   marshal header whose digest line happened to match a
                   crafted short payload) — any exception here is a
                   corrupt entry, not a crash. *)
                match (Marshal.from_string payload 0 : run) with
                | run -> Ok run
                | exception e ->
                  Error ("malformed marshal payload: " ^ Printexc.to_string e))
        with
        | Ok run ->
          Atomic.incr hits;
          if Trace.on () then Trace.instant ~stage:"store.hit" [ ("key", key) ];
          Some run
        | Error reason | (exception Scanf.Scan_failure reason) ->
          warn "discarding corrupt entry %s (%s)" path reason;
          (try Sys.remove path with Sys_error _ -> ());
          Atomic.incr discarded;
          Atomic.incr misses;
          if Trace.on () then Trace.instant ~stage:"store.miss" [ ("key", key) ];
          None
        | exception e ->
          warn "discarding unreadable entry %s (%s)" path (Printexc.to_string e);
          (try Sys.remove path with Sys_error _ -> ());
          Atomic.incr discarded;
          Atomic.incr misses;
          if Trace.on () then Trace.instant ~stage:"store.miss" [ ("key", key) ];
          None
      end

  let save ~key ~digest run =
    match (entry_path ~key ~digest, dir ()) with
    | Some path, Some d -> (
      try
        ensure_dir d;
        let payload = Marshal.to_string (run : run) [] in
        let tmp =
          Filename.concat d
            (Printf.sprintf ".tmp-%d-%s" (Unix.getpid ()) (Filename.basename path))
        in
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc format_version;
            output_char oc '\n';
            output_string oc (Digest.to_hex (Digest.string payload));
            output_char oc '\n';
            output_string oc payload);
        Sys.rename tmp path;
        Atomic.incr writes;
        (* Deterministic torn-write injection: the fault plan may ask for
           this entry to be truncated, as if the process died mid-write
           on a filesystem without atomic rename. *)
        match Faultinject.truncation_for ~key with
        | Some keep -> Unix.truncate path (min keep (String.length payload))
        | None -> ()
      with e -> warn "failed to write entry for %s (%s)" key (Printexc.to_string e))
    | _ -> ()
end

(* Content digest of a built workload program: instructions, globals,
   label table (sorted — Hashtbl order is an implementation detail),
   entry point.  Editing a workload builder changes this and so
   invalidates its store entries. *)
let program_digest (p : Chex86_isa.Program.t) =
  let labels =
    Hashtbl.fold (fun name idx acc -> (name, idx) :: acc) p.labels []
    |> List.sort compare
  in
  Digest.to_hex
    (Digest.string (Marshal.to_string (p.insns, labels, p.globals, p.entry, p.data_end) []))

(* --- memoized workload runs ---------------------------------------------- *)

(* The memo table is the only module-level mutable state in the harness;
   it is shared by every domain of a parallel sweep, so all access goes
   through [memo_lock].  (Found by the jobs>=2 determinism sweep: an
   unsynchronized Hashtbl corrupts its bucket chains under concurrent
   Hashtbl.add; test_parallel.ml keeps a regression test hammering it.) *)
let memo : (string, run) Hashtbl.t = Hashtbl.create 64
let memo_lock = Mutex.create ()

let memo_find key = Mutex.protect memo_lock (fun () -> Hashtbl.find_opt memo key)

(* First publication wins, so concurrent computations of the same key
   still yield one canonical [run] value (physical equality of repeated
   [run_workload] calls is part of the API). *)
let memo_publish key run =
  Mutex.protect memo_lock (fun () ->
      match Hashtbl.find_opt memo key with
      | Some existing -> existing
      | None ->
        Hashtbl.add memo key run;
        run)

(* Faults recorded by supervised prefetches, keyed like the memo. A
   faulted job stays faulted for the rest of the process (later sweeps
   sharing the key render the same FAULTED cell instead of silently
   re-simulating), and the figure-assembly code asks here before
   falling back to a blocking [run_workload]. *)
let fault_table : (string, Pool.fault) Hashtbl.t = Hashtbl.create 16
let fault_lock = Mutex.create ()

let record_fault key fault =
  Mutex.protect fault_lock (fun () -> Hashtbl.replace fault_table key fault)

let fault_find key = Mutex.protect fault_lock (fun () -> Hashtbl.find_opt fault_table key)
let faulted_jobs () =
  Mutex.protect fault_lock (fun () ->
      Hashtbl.fold (fun key fault acc -> (key, fault) :: acc) fault_table [])
  |> List.sort compare

(* Store-aware cache fill: consult the on-disk store before simulating,
   and persist fresh results.  [?configure] installs monitor hooks whose
   effects the stored counters can't capture, so those runs bypass the
   store entirely. *)
let compute_run ~key ?(timing = true) ?(profile = false) ?configure config program =
  match configure with
  | Some _ -> run_program ~timing ~profile ?configure config program
  | None ->
    let digest = program_digest program in
    (match Store.load ~key ~digest with
    | Some run -> run
    | None ->
      let run = run_program ~timing ~profile config program in
      Store.save ~key ~digest run;
      run)

let run_workload ?(tag = "") ?(timing = true) ?(profile = false) ?configure ~scale config
    (w : Chex86_workloads.Bench_spec.t) =
  let key =
    Printf.sprintf "%s/%s/%d/%b/%b/%s" w.name (config_name config) scale timing profile
      tag
  in
  match memo_find key with
  | Some run -> run
  | None ->
    let run = compute_run ~key ~timing ~profile ?configure config (w.build ~scale) in
    memo_publish key run

(* [run_workload] that reports instead of running when a supervised
   prefetch already classified this job as faulted. *)
let run_workload_result ?(tag = "") ?(timing = true) ?(profile = false) ?configure ~scale
    config (w : Chex86_workloads.Bench_spec.t) =
  let key =
    Printf.sprintf "%s/%s/%d/%b/%b/%s" w.name (config_name config) scale timing profile
      tag
  in
  match memo_find key with
  | Some run -> Ok run
  | None -> (
    match fault_find key with
    | Some fault -> Error fault
    | None ->
      Ok
        (memo_publish key
           (compute_run ~key ~timing ~profile ?configure config (w.build ~scale))))

(* --- parallel prefetch ---------------------------------------------------- *)

type job = {
  j_workload : Chex86_workloads.Bench_spec.t;
  j_config : config;
  j_tag : string;
  j_timing : bool;
  j_profile : bool;
  j_scale : int;
}

let job ?(tag = "") ?(timing = true) ?(profile = false) ~scale config workload =
  { j_workload = workload; j_config = config; j_tag = tag; j_timing = timing;
    j_profile = profile; j_scale = scale }

let job_key j =
  Printf.sprintf "%s/%s/%d/%b/%b/%s" j.j_workload.name (config_name j.j_config)
    j.j_scale j.j_timing j.j_profile j.j_tag

(* Simulate the not-yet-memoized jobs on the domain pool and publish the
   results into the memo in job order; subsequent [run_workload] calls
   (the serial figure-assembly code) hit the memo.  Each job builds its
   own program and monitor, so jobs share no state; publishing in job
   order keeps the memo's insertion order identical to a serial run. *)
let dedup_jobs job_list =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun j ->
      let key = job_key j in
      if
        Hashtbl.mem seen key
        || Option.is_some (memo_find key)
        || Option.is_some (fault_find key)
      then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    job_list
  |> Array.of_list

let run_job j =
  let key = job_key j in
  compute_run ~key ~timing:j.j_timing ~profile:j.j_profile j.j_config
    (j.j_workload.build ~scale:j.j_scale)

(* Remote task kind: a job crosses the process boundary as its
   workload's name plus the plain-data memo-key fields (Bench_spec.t
   holds a build closure, which can't be marshalled); the worker
   re-looks the workload up in its own registry and runs the exact
   [run_job] path — including its Store consultation, pointed at the
   supervisor's cache directory shipped with each chunk. *)
let remote_kind = "bench"

type remote_job_spec = {
  r_name : string;
  r_config : config;
  r_tag : string;
  r_timing : bool;
  r_profile : bool;
  r_scale : int;
}

let remote_job_arg j =
  Marshal.to_string
    { r_name = j.j_workload.Chex86_workloads.Bench_spec.name; r_config = j.j_config;
      r_tag = j.j_tag; r_timing = j.j_timing; r_profile = j.j_profile;
      r_scale = j.j_scale }
    []

let register_remote () =
  Remote.register_kind remote_kind (fun ~key:_ ~arg _ctx ->
      let spec : remote_job_spec = Marshal.from_string arg 0 in
      let j =
        { j_workload = Chex86_workloads.Workloads.find spec.r_name;
          j_config = spec.r_config; j_tag = spec.r_tag; j_timing = spec.r_timing;
          j_profile = spec.r_profile; j_scale = spec.r_scale }
      in
      Pool.check_deadline ();
      Marshal.to_string (run_job j : run) [])

(* Worker-side store wiring for Remote (which cannot depend on this
   module): the supervisor ships [Store.dir ()] with each chunk; the
   worker applies it here, so remote jobs hit the same on-disk cache. *)
let () =
  Remote.store_dir_provider := Store.dir;
  Remote.store_dir_applier :=
    (function Some dir -> Store.configure ~dir | None -> Store.disable ())

(* Supervised prefetch: a crashing or wedged job is recorded in the
   fault table and the rest of the sweep completes (a mid-chunk fault
   only claims the offending job); healthy results are published to the
   memo in job order exactly like [prefetch].  With workers configured
   the jobs run in worker processes instead ([?jobs] is ignored); a
   lost worker surfaces as a [Pool.Worker_lost] fault on the job that
   was in flight. *)
let prefetch_supervised ?jobs ?batch_size ?retries ?task_timeout job_list =
  let todo = dedup_jobs job_list in
  Trace.with_span ~stage:"sweep"
    [ ("kind", "bench"); ("tasks", string_of_int (Array.length todo)) ]
  @@ fun () ->
  if Remote.enabled () && Array.length todo > 0 then begin
    register_remote ();
    let payloads, _stats, report =
      Remote.sweep ?batch_size ?retries ?task_timeout ~kind:remote_kind ~key:job_key
        ~arg:remote_job_arg todo
    in
    ignore jobs;
    Array.iteri
      (fun i result ->
        let key = job_key todo.(i) in
        match result with
        | Ok payload ->
          ignore (memo_publish key (Marshal.from_string payload 0 : run))
        | Error fault -> record_fault key fault)
      payloads;
    report
  end
  else begin
    let results, report =
      Pool.map_supervised_batched ?jobs ?batch_size ?retries ?task_timeout ~key:job_key
        (fun j ->
          Pool.check_deadline ();
          run_job j)
        todo
    in
    Array.iteri
      (fun i result ->
        let key = job_key todo.(i) in
        match result with
        | Ok run -> ignore (memo_publish key run)
        | Error fault -> record_fault key fault)
      results;
    report
  end

let prefetch ?jobs ?batch_size job_list =
  let todo = dedup_jobs job_list in
  Trace.with_span ~stage:"sweep"
    [ ("kind", "bench"); ("tasks", string_of_int (Array.length todo)) ]
  @@ fun () ->
  let runs = Pool.map_batched ?jobs ?batch_size run_job todo in
  Array.iteri (fun i run -> ignore (memo_publish (job_key todo.(i)) run)) runs

(* Test hook: forget every memoized run and recorded fault so a test can
   exercise the cold path repeatedly in one process. Store stats reset
   too; the store directory itself is left alone. *)
let reset_for_tests () =
  Mutex.protect memo_lock (fun () -> Hashtbl.reset memo);
  Mutex.protect fault_lock (fun () -> Hashtbl.reset fault_table);
  Store.reset_stats ()
