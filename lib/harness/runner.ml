(* Unified runner for benchmarks and exploits across every protection
   configuration (the six bars of Fig 6 plus ASan), with memoization so
   the bench targets that share runs (Fig 6 / Table IV / Fig 9) only
   simulate each (workload, configuration) pair once. *)

module Machine = Chex86_machine
module Os = Chex86_os

type config =
  | Chex of Chex86.Variant.t
  | Asan

let insecure = Chex (Chex86.Variant.make Chex86.Variant.Insecure)
let prediction = Chex Chex86.Variant.default

let config_name = function
  | Chex v -> Chex86.Variant.scheme_name v.Chex86.Variant.scheme
  | Asan -> "ASan"

(* Digest-qualified id of the installed µarch preset, folded into every
   memo/store key: results computed under different machines (or after a
   preset's definition changes) can never false-hit each other. *)
let preset_tag () = Machine.Preset.id (Machine.Preset.current ())

type outcome =
  | Completed
  | Blocked of Chex86.Violation.kind
  | Aborted of string  (* allocator integrity abort *)
  | Faulted of string
  | Budget_exhausted

type run = {
  outcome : outcome;
  macro_insns : int;
  uops : int;
  uops_injected : int;
  uops_killed : int;
  cycles : int;
  counters : Chex86_stats.Counter.group;
  shadow_bytes : int;  (* capability/alias tables or ASan shadow *)
  resident_bytes : int;
  mem_bytes : int;  (* DRAM traffic *)
  pwned : bool;
  profile : Os.Heap_profile.report option;
}

let read_pwned proc program =
  match Chex86_isa.Program.find_global program Exploit_defs.pwned_global with
  | None -> false
  | Some g ->
    Chex86_mem.Image.read64 proc.Os.Process.mem g.Chex86_isa.Program.addr
    = Chex86_exploits.Exploit.pwned_value

let of_sim_result program proc ~shadow_bytes ~profile
    (result : Machine.Simulator.result) outcome =
  {
    outcome;
    macro_insns = result.macro_insns;
    uops = result.uops;
    uops_injected = result.uops_injected;
    uops_killed = result.uops_killed;
    cycles = result.cycles;
    counters = result.counters;
    shadow_bytes;
    resident_bytes = result.resident_bytes;
    mem_bytes = result.mem_bytes;
    pwned = read_pwned proc program;
    profile;
  }

(* Execute [program] under [config].  [timing:false] runs the functional
   engine only (used for the security sweep, which needs no cycles).
   [heap] selects the allocator personality; the ASan baseline ignores
   it (ASan interposes its own redzone allocator). *)
let run_program ?(timing = true) ?(max_insns = 50_000_000) ?(profile = false)
    ?(configure = fun (_ : Chex86.Monitor.t) -> ())
    ?(heap = Os.Allocator.Glibc) config program =
  match config with
  | Chex variant ->
    let profile_interval = if profile then Some 100_000 else None in
    let run =
      Chex86.Sim.run ~variant ~max_insns ~timing ~configure ?profile_interval ~heap
        program
    in
    let outcome =
      match run.Chex86.Sim.outcome with
      | Chex86.Sim.Completed -> Completed
      | Chex86.Sim.Violation_detected kind -> Blocked kind
      | Chex86.Sim.Heap_abort msg -> Aborted msg
      | Chex86.Sim.Guest_fault msg -> Faulted msg
      | Chex86.Sim.Budget_exhausted -> Budget_exhausted
    in
    of_sim_result program run.Chex86.Sim.proc
      ~shadow_bytes:(Chex86.Monitor.shadow_storage_bytes run.Chex86.Sim.monitor)
      ~profile:(Option.map Os.Heap_profile.report run.Chex86.Sim.profile)
      run.Chex86.Sim.result outcome
  | Asan ->
    let monitor, result, proc = Chex86_asan.Asan_monitor.run ~timing ~max_insns program in
    let outcome =
      match result.Machine.Simulator.outcome with
      | Machine.Simulator.Finished -> Completed
      | Machine.Simulator.Budget_exhausted -> Budget_exhausted
      | Machine.Simulator.Faulted (Chex86.Violation.Security_violation kind) ->
        Blocked kind
      | Machine.Simulator.Faulted (Os.Allocator.Heap_abort msg) -> Aborted msg
      | Machine.Simulator.Faulted (Machine.Engine.Guest_fault msg) -> Faulted msg
      | Machine.Simulator.Faulted e -> Faulted (Printexc.to_string e)
    in
    {
      outcome;
      macro_insns = result.macro_insns;
      uops = result.uops;
      uops_injected = result.uops_injected;
      uops_killed = result.uops_killed;
      cycles = result.cycles;
      counters = result.counters;
      shadow_bytes = Chex86_asan.Asan_monitor.storage_bytes monitor;
      resident_bytes = result.resident_bytes;
      mem_bytes = result.mem_bytes;
      pwned = read_pwned proc program;
      profile = None;
    }

(* Execute [program] on the SMP driver, one hardware thread per entry
   label.  Used by the cross-core exploit campaigns; the per-core
   pipeline totals are folded into [cycles]/[macro_insns], and the uop /
   memory-traffic fields (single-engine notions) are reported as 0.  The
   ASan baseline has no SMP monitor, so Asan configs report [Faulted]
   rather than silently running unprotected. *)
let run_threads ?(timing = false) ?(max_insns = 50_000_000)
    ?(heap = Os.Allocator.Glibc) ~quantum ~threads config program =
  match config with
  | Chex variant ->
    let r = Chex86.Smp.run ~variant ~max_insns ~timing ~quantum ~heap ~threads program in
    let outcome =
      match r.Chex86.Smp.outcome with
      | Chex86.Smp.Completed -> Completed
      | Chex86.Smp.Violation_detected { kind; core = _ } -> Blocked kind
      | Chex86.Smp.Heap_abort { message; core = _ } -> Aborted message
      | Chex86.Smp.Guest_fault { message; core = _ } -> Faulted message
      | Chex86.Smp.Budget_exhausted -> Budget_exhausted
    in
    {
      outcome;
      macro_insns = r.Chex86.Smp.macro_insns;
      uops = 0;
      uops_injected = 0;
      uops_killed = 0;
      cycles = r.Chex86.Smp.cycles;
      counters = r.Chex86.Smp.counters;
      shadow_bytes = 0;
      resident_bytes = 0;
      mem_bytes = 0;
      pwned = read_pwned r.Chex86.Smp.proc program;
      profile = None;
    }
  | Asan ->
    {
      outcome = Faulted "ASan baseline does not support SMP runs";
      macro_insns = 0;
      uops = 0;
      uops_injected = 0;
      uops_killed = 0;
      cycles = 0;
      counters = Chex86_stats.Counter.create_group ();
      shadow_bytes = 0;
      resident_bytes = 0;
      mem_bytes = 0;
      pwned = false;
      profile = None;
    }

(* --- on-disk result store (checkpoint / resume / shared cache) ------------ *)

(* Spills memoized runs to disk so an interrupted sweep resumes where it
   stopped, repeated invocations skip re-simulation entirely, and many
   concurrent processes (sweeps, workers, a future chex86d daemon) can
   share one warm cache.  Entries are keyed by the memo key ([job_key])
   plus a content digest of the built workload program, so editing a
   workload builder invalidates its cached runs.

   v2 layout, content-addressed and shared-writer safe:

     <dir>/objects/<hh>/<slug>-<id>.run   published entries, sharded by
                                          the first byte of <id> (the
                                          MD5 of key + program digest)
     <dir>/objects/<hh>/.tmp-<pid>-<n>-*  in-flight writes
     <dir>/quarantine/                    corrupt entries, kept for
                                          post-mortem instead of deleted
     <dir>/<slug>-<id>.run                legacy v1 entries, read through
                                          and migrated into objects/ on
                                          first hit

   Crash model (machine-checked by `chex86_sim store fsck` and the
   kill/resume chaos soak): a writer may be SIGKILLed at any point.
   Entries become visible only via link/rename of a fully written tmp
   file, so a reader can never observe a partial entry; a kill before
   publish leaves only a tmp file that reclamation or fsck collects.
   Two writers racing on one key are benign: the loser's link fails
   with EEXIST and is counted as [race_lost] — a cache hit in effect,
   never corruption.  Anything unreadable is quarantined with a warning
   and re-simulated — a corrupt cache can cost time, never correctness,
   and never a crash.  On ENOSPC/EROFS the store degrades to memo-only
   operation so a sweep on a full disk still completes. *)
module Store = struct
  let format_version = "chex86-store-v2"
  let v1_format_version = "chex86-store-v1"

  let dir_ref : string option Atomic.t = Atomic.make None
  let max_bytes_ref : int option Atomic.t = Atomic.make None
  let hits = Atomic.make 0
  let misses = Atomic.make 0
  let writes = Atomic.make 0
  let discarded = Atomic.make 0
  let tmp_reclaimed = Atomic.make 0
  let quarantined = Atomic.make 0
  let race_lost = Atomic.make 0
  let evicted = Atomic.make 0
  let migrated = Atomic.make 0
  let write_errors = Atomic.make 0
  let degraded = Atomic.make false

  type stats = {
    hits : int;
    misses : int;
    writes : int;
    discarded : int;
    tmp_reclaimed : int;
    quarantined : int;
    race_lost : int;
    evicted : int;
    migrated : int;
    write_errors : int;
    degraded : bool;
  }

  let stats () =
    {
      hits = Atomic.get hits;
      misses = Atomic.get misses;
      writes = Atomic.get writes;
      discarded = Atomic.get discarded;
      tmp_reclaimed = Atomic.get tmp_reclaimed;
      quarantined = Atomic.get quarantined;
      race_lost = Atomic.get race_lost;
      evicted = Atomic.get evicted;
      migrated = Atomic.get migrated;
      write_errors = Atomic.get write_errors;
      degraded = Atomic.get degraded;
    }

  let reset_stats () =
    Atomic.set hits 0;
    Atomic.set misses 0;
    Atomic.set writes 0;
    Atomic.set discarded 0;
    Atomic.set tmp_reclaimed 0;
    Atomic.set quarantined 0;
    Atomic.set race_lost 0;
    Atomic.set evicted 0;
    Atomic.set migrated 0;
    Atomic.set write_errors 0;
    Atomic.set degraded false

  let default_dir = "_chex86_cache"
  let objects_dirname = "objects"
  let quarantine_dirname = "quarantine"

  (* chex86d keeps its job journal and store lock under
     <root>/daemon/ (see Daemon); it is a legitimate tenant of the
     store root, not a foreign directory. *)
  let daemon_dirname = "daemon"
  let objects_dir d = Filename.concat d objects_dirname
  let quarantine_dir d = Filename.concat d quarantine_dirname

  let warn fmt =
    Printf.ksprintf (fun msg -> Printf.eprintf "chex86-store: %s\n%!" msg) fmt

  (* A tmp file's writer is still alive iff signal 0 reaches its pid
     (EPERM means alive under another uid — leave it alone). *)
  let pid_alive pid =
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
    | exception _ -> true

  (* Age floor for reclaiming a dead writer's tmp files: between the
     liveness probe and the unlink the file could belong to a brand-new
     writer that inherited a recycled pid (or, on a shared filesystem,
     to a live writer in another pid namespace whose pid happens to
     look dead here).  A real writer publishes within one entry write,
     so anything older than [tmp_min_age] with a dead owner is garbage;
     younger files are left for the next sweep. *)
  let tmp_min_age = 60. (* seconds *)

  (* Hard age cap for pid reuse in the other direction: a recycled pid
     can also make a long-dead writer look alive, so sufficiently old
     tmp files go regardless of the liveness probe. *)
  let tmp_stale_age = 900. (* seconds *)

  let is_tmp_name name = String.length name > 5 && String.sub name 0 5 = ".tmp-"

  let tmp_writer_pid name =
    match String.index_from_opt name 5 '-' with
    | Some dash -> int_of_string_opt (String.sub name 5 (dash - 5))
    | None -> None

  let tmp_age ~now path =
    match Unix.stat path with
    | st -> now -. st.Unix.st_mtime
    | exception Unix.Unix_error _ -> 0.

  let tmp_is_stale ~self ~now path name =
    let age = tmp_age ~now path in
    match tmp_writer_pid name with
    | Some pid when pid = self -> false
    | Some pid -> ((not (pid_alive pid)) && age > tmp_min_age) || age > tmp_stale_age
    | None -> age > tmp_stale_age

  (* The directories holding entries (and therefore possibly tmp
     files): the root (v1 era) plus every populated shard. *)
  let entry_dirs d =
    let shards =
      match Sys.readdir (objects_dir d) with
      | names ->
        Array.to_list names
        |> List.filter_map (fun n ->
               let p = Filename.concat (objects_dir d) n in
               if Sys.is_directory p then Some p else None)
      | exception Sys_error _ -> []
    in
    d :: List.sort compare shards

  (* Reclaim stale [.tmp-<pid>-*] files left behind by killed processes
     anywhere in the tree. *)
  let reclaim_tmp d =
    let self = Unix.getpid () in
    let now = Unix.time () in
    List.iter
      (fun dir ->
        match Sys.readdir dir with
        | exception Sys_error _ -> ()
        | names ->
          Array.iter
            (fun name ->
              if is_tmp_name name then begin
                let path = Filename.concat dir name in
                if tmp_is_stale ~self ~now path name then begin
                  match Sys.remove path with
                  | () ->
                    Atomic.incr tmp_reclaimed;
                    warn "reclaimed stale tmp file %s" path
                  | exception Sys_error _ -> ()
                end
              end)
            names)
      (entry_dirs d)

  (* One sweep per configuration: [ensure_dir] runs on every save, and
     re-listing the tree each time would turn writes quadratic. *)
  let swept = Atomic.make false

  (* Entries this process has touched (hit or published) since the last
     [configure]/[clear_pins]: the in-flight sweep depends on them, so
     eviction must not take them out from under it. Keyed by entry
     basename — unique per (key, program digest). *)
  let pins : (string, unit) Hashtbl.t = Hashtbl.create 64
  let pins_lock = Mutex.create ()
  let pin name = Mutex.protect pins_lock (fun () -> Hashtbl.replace pins name ())
  let pinned name = Mutex.protect pins_lock (fun () -> Hashtbl.mem pins name)
  let clear_pins () = Mutex.protect pins_lock (fun () -> Hashtbl.reset pins)

  (* Entries that failed to quarantine (read-only store): remembered so
     a corrupt entry is not re-read and re-warned every load. *)
  let bad : (string, unit) Hashtbl.t = Hashtbl.create 8
  let bad_lock = Mutex.create ()
  let mark_bad path = Mutex.protect bad_lock (fun () -> Hashtbl.replace bad path ())
  let is_bad path = Mutex.protect bad_lock (fun () -> Hashtbl.mem bad path)
  let clear_bad () = Mutex.protect bad_lock (fun () -> Hashtbl.reset bad)

  (* Running estimate of the store's published bytes; -1 = unknown (the
     next eviction check re-scans). Only consulted when a budget is
     armed. *)
  let approx_bytes = Atomic.make (-1)

  (* The directory itself is created on first write, so enabling the
     store in a binary that never saves leaves no empty directory. *)
  let configure ~dir =
    Atomic.set dir_ref (Some dir);
    Atomic.set swept false;
    Atomic.set approx_bytes (-1);
    Atomic.set degraded false;
    clear_pins ();
    clear_bad ();
    if Sys.file_exists dir then begin
      Atomic.set swept true;
      reclaim_tmp dir
    end

  let mkdir_exist_ok dir =
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

  let ensure_dir dir =
    mkdir_exist_ok dir;
    if not (Atomic.exchange swept true) then reclaim_tmp dir

  let disable () = Atomic.set dir_ref None
  let enabled () = Option.is_some (Atomic.get dir_ref)
  let dir () = Atomic.get dir_ref
  let set_max_bytes b = Atomic.set max_bytes_ref (Option.map (max 0) b)
  let max_bytes () = Atomic.get max_bytes_ref

  (* Key scheme: a human-greppable sanitized prefix of the memo key plus
     a digest over (key, program digest) that actually disambiguates;
     the digest's first byte is the shard. *)
  let entry_id ~key ~digest = Digest.to_hex (Digest.string (key ^ "\x00" ^ digest))

  let entry_name ~key ~digest =
    let slug =
      String.map
        (fun c ->
          match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> c | _ -> '_')
        (if String.length key > 64 then String.sub key 0 64 else key)
    in
    Printf.sprintf "%s-%s.run" slug (entry_id ~key ~digest)

  let entry_suffix = ".run"
  let is_entry_name name = (not (is_tmp_name name)) && Filename.check_suffix name entry_suffix

  (* The shard an entry name belongs to: first two hex chars of the
     trailing 32-char id. *)
  let shard_of_name name =
    if not (Filename.check_suffix name entry_suffix) then None
    else
      let base = Filename.chop_suffix name entry_suffix in
      if String.length base < 32 then None
      else
        let id = String.sub base (String.length base - 32) 32 in
        if String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) id
        then Some (String.sub id 0 2)
        else None

  (* [entry_paths ~key ~digest] is [(v1 path, v2 path)] under the
     configured directory. *)
  let entry_paths_in d ~key ~digest =
    let name = entry_name ~key ~digest in
    let shard = String.sub (entry_id ~key ~digest) 0 2 in
    (Filename.concat d name, Filename.concat (Filename.concat (objects_dir d) shard) name)

  let entry_paths ~key ~digest = Option.map (fun d -> entry_paths_in d ~key ~digest) (dir ())

  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

  (* Entry layout.
     v2: version line, payload-digest line, payload-length line, payload.
     v1 (legacy): version line, payload-digest line, payload. *)
  let header_lines body n =
    let rec go start acc k =
      if k = 0 then Some (List.rev acc, start)
      else
        match String.index_from_opt body start '\n' with
        | None -> None
        | Some i -> go (i + 1) (String.sub body start (i - start) :: acc) (k - 1)
    in
    go 0 [] n

  type version = V1 | V2

  let parse_entry body : (run * version, string) result =
    let check_payload payload payload_digest =
      if Digest.to_hex (Digest.string payload) <> payload_digest then
        Error "payload digest mismatch"
      else
        (* The digest can pass on a payload the unmarshaller still
           rejects (e.g. an entry truncated inside the marshal header
           whose digest line happened to match a crafted short payload)
           — any exception here is a corrupt entry, not a crash. *)
        match (Marshal.from_string payload 0 : run) with
        | run -> Ok run
        | exception e -> Error ("malformed marshal payload: " ^ Printexc.to_string e)
    in
    match String.index_opt body '\n' with
    | None -> Error "missing header"
    | Some i ->
      let version = String.sub body 0 i in
      if version = format_version then
        match header_lines body 3 with
        | Some ([ _; payload_digest; len_line ], off) -> (
          let payload = String.sub body off (String.length body - off) in
          match int_of_string_opt len_line with
          | None -> Error (Printf.sprintf "malformed length line %S" len_line)
          | Some len when len <> String.length payload ->
            Error
              (Printf.sprintf "payload is %d bytes, header says %d"
                 (String.length payload) len)
          | Some _ -> Result.map (fun run -> (run, V2)) (check_payload payload payload_digest))
        | _ -> Error "truncated header"
      else if version = v1_format_version then
        match header_lines body 2 with
        | Some ([ _; payload_digest ], off) ->
          let payload = String.sub body off (String.length body - off) in
          Result.map (fun run -> (run, V1)) (check_payload payload payload_digest)
        | _ -> Error "truncated header"
      else Error (Printf.sprintf "unknown format version %S" version)

  let parse_file path : (run * version, [ `Missing | `Corrupt of string ]) result =
    if not (Sys.file_exists path) then Error `Missing
    else
      match parse_entry (read_file path) with
      | Ok parsed -> Ok parsed
      | Error reason -> Error (`Corrupt reason)
      | exception e -> Error (`Corrupt ("unreadable: " ^ Printexc.to_string e))

  (* Corrupt entries are moved aside for post-mortem, never trusted and
     never silently deleted; if the move itself fails (read-only store)
     the path is remembered as bad so it is not re-read every load. *)
  let quarantine_counter = Atomic.make 0

  let quarantine_entry d path reason =
    warn "quarantining corrupt entry %s (%s)" path reason;
    Atomic.incr discarded;
    ignore (Faultinject.at_point "store.quarantine.pre_rename");
    let dst =
      Filename.concat (quarantine_dir d)
        (Printf.sprintf "%d-%d-%s" (Unix.getpid ())
           (Atomic.fetch_and_add quarantine_counter 1)
           (Filename.basename path))
    in
    match
      mkdir_exist_ok (quarantine_dir d);
      Sys.rename path dst
    with
    | () ->
      Atomic.incr quarantined;
      if Trace.on () then
        Trace.instant ~stage:"store.quarantine"
          [ ("entry", Filename.basename path); ("reason", reason) ]
    | exception _ -> (
      match Sys.remove path with
      | () -> ()
      | exception _ -> mark_bad path)

  (* --- publish protocol ---------------------------------------------------

     O_EXCL tmp write + link: the entry becomes visible atomically and
     only complete; a concurrent writer of the same key loses the link
     race with EEXIST and treats it as a hit.  Filesystems without hard
     links fall back to rename (still atomic; a lost race overwrites
     the winner with an identical entry). *)
  let tmp_counter = Atomic.make 0

  let write_tmp_file tmp body =
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let b = Bytes.unsafe_of_string body in
        let pos = ref 0 in
        while !pos < Bytes.length b do
          pos := !pos + Unix.write fd b !pos (Bytes.length b - !pos)
        done)

  let raise_point_errno dst = function
    | Some (Faultinject.Errno e) -> raise (Unix.Unix_error (e, "write", dst))
    | _ -> ()

  (* Publish [payload] for entry [name]; returns [true] if this
     process's write is the one now on disk. *)
  let publish d ~key ~v2_path payload =
    let name = Filename.basename v2_path in
    let shard_dir = Filename.dirname v2_path in
    mkdir_exist_ok (objects_dir d);
    mkdir_exist_ok shard_dir;
    raise_point_errno v2_path (Faultinject.at_point "store.publish.pre_write");
    let tmp =
      Filename.concat shard_dir
        (Printf.sprintf ".tmp-%d-%d-%s" (Unix.getpid ())
           (Atomic.fetch_and_add tmp_counter 1)
           name)
    in
    let body =
      String.concat ""
        [
          format_version; "\n";
          Digest.to_hex (Digest.string payload); "\n";
          string_of_int (String.length payload); "\n";
          payload;
        ]
    in
    write_tmp_file tmp body;
    (* Torn-write injection: truncate the tmp as if the writer died
       mid-write; the torn artifact must never become a published
       entry a reader would trust. *)
    (match Faultinject.at_point "store.publish.mid_write" with
    | Some (Faultinject.Torn_artifact keep) ->
      Unix.truncate tmp (min keep (String.length body))
    | hit -> raise_point_errno v2_path hit);
    raise_point_errno v2_path (Faultinject.at_point "store.publish.pre_rename");
    let won =
      if Sys.file_exists v2_path then false
      else
        match Unix.link tmp v2_path with
        | () -> true
        | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false
        | exception
            Unix.Unix_error ((Unix.EPERM | Unix.EOPNOTSUPP | Unix.ENOSYS | Unix.EMLINK), _, _)
          ->
          Sys.rename tmp v2_path;
          true
    in
    (try Sys.remove tmp with Sys_error _ -> ());
    ignore (Faultinject.at_point "store.publish.post_rename");
    if won then begin
      Atomic.incr writes;
      if Trace.on () then
        Trace.instant ~stage:"store.publish"
          [ ("key", key); ("bytes", string_of_int (String.length body)) ]
    end
    else begin
      (* Lost race = someone else already published this exact
         (key, digest): their entry is as good as ours — a hit. *)
      Atomic.incr race_lost;
      if Trace.on () then Trace.instant ~stage:"store.race_lost" [ ("key", key) ]
    end;
    pin name;
    (won, String.length body)

  (* --- eviction ------------------------------------------------------------ *)

  (* Published entries across the whole tree as (path, bytes, mtime). *)
  let scan_entries d =
    let acc = ref [] in
    let add dir name =
      if is_entry_name name then begin
        let path = Filename.concat dir name in
        match Unix.stat path with
        | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
          acc := (path, st_size, st_mtime) :: !acc
        | _ | (exception Unix.Unix_error _) -> ()
      end
    in
    List.iter
      (fun dir ->
        match Sys.readdir dir with
        | names -> Array.iter (add dir) names
        | exception Sys_error _ -> ())
      (entry_dirs d);
    !acc

  (* Oldest-first size eviction down to [budget]; entries pinned by the
     in-flight sweep are never candidates.  Returns (evicted, bytes
     freed). *)
  let evict_to_budget d ~budget =
    let entries = scan_entries d in
    let total = List.fold_left (fun a (_, s, _) -> a + s) 0 entries in
    Atomic.set approx_bytes total;
    if total <= budget then (0, 0)
    else begin
      let by_age = List.sort (fun (_, _, a) (_, _, b) -> compare a b) entries in
      let freed = ref 0 and count = ref 0 in
      List.iter
        (fun (path, size, _) ->
          if total - !freed > budget && not (pinned (Filename.basename path)) then begin
            ignore (Faultinject.at_point "store.evict.pre_unlink");
            match Sys.remove path with
            | () ->
              freed := !freed + size;
              incr count;
              Atomic.incr evicted;
              if Trace.on () then
                Trace.instant ~stage:"store.evict"
                  [ ("entry", Filename.basename path); ("bytes", string_of_int size) ]
            | exception Sys_error _ -> ()
          end)
        by_age;
      Atomic.set approx_bytes (total - !freed);
      if total - !freed > budget then
        warn "store still %d bytes over budget after eviction (all remaining entries pinned)"
          (total - !freed - budget);
      (!count, !freed)
    end

  let maybe_evict d ~published_bytes =
    match max_bytes () with
    | None -> ()
    | Some budget ->
      let approx = Atomic.get approx_bytes in
      let approx =
        if approx < 0 then approx
        else begin
          ignore (Atomic.fetch_and_add approx_bytes published_bytes);
          approx + published_bytes
        end
      in
      if approx < 0 || approx > budget then ignore (evict_to_budget d ~budget)

  (* --- load / save --------------------------------------------------------- *)

  let note_miss ~key =
    Atomic.incr misses;
    if Trace.on () then Trace.instant ~stage:"store.miss" [ ("key", key) ]

  let note_hit ~key name =
    pin name;
    Atomic.incr hits;
    if Trace.on () then Trace.instant ~stage:"store.hit" [ ("key", key) ]

  (* Writes degrade to memo-only on a full / read-only filesystem: the
     sweep's correctness never depended on the store, so it completes
     and only loses warm-start for the next invocation. *)
  let degrade_writes e =
    Atomic.incr write_errors;
    if not (Atomic.exchange degraded true) then begin
      warn "filesystem error (%s): store degraded to memo-only operation"
        (Printexc.to_string e);
      if Trace.on () then
        Trace.instant ~stage:"store.degraded" [ ("error", Printexc.to_string e) ]
    end

  let save_internal d ~key payload ~v2_path =
    if not (Atomic.get degraded) then begin
      try
        ensure_dir d;
        let won, entry_bytes = publish d ~key ~v2_path payload in
        (* Legacy deterministic torn-write injection (key plans):
           truncate the published entry, as if on a filesystem without
           atomic rename. Only our own write is torn — tearing a racing
           winner's entry would corrupt data another process owns. *)
        (match (won, Faultinject.truncation_for ~key) with
        | true, Some keep -> Unix.truncate v2_path (min keep (String.length payload))
        | _ -> ());
        if won then maybe_evict d ~published_bytes:entry_bytes
      with
      | Unix.Unix_error ((Unix.ENOSPC | Unix.EROFS | Unix.EACCES), _, _) as e ->
        degrade_writes e
      | e ->
        Atomic.incr write_errors;
        warn "failed to write entry for %s (%s)" key (Printexc.to_string e)
    end

  let save ~key ~digest run =
    match dir () with
    | None -> ()
    | Some d ->
      let _, v2_path = entry_paths_in d ~key ~digest in
      save_internal d ~key (Marshal.to_string (run : run) []) ~v2_path

  let load ~key ~digest : run option =
    match dir () with
    | None -> None
    | Some d -> (
      let v1_path, v2_path = entry_paths_in d ~key ~digest in
      ignore (Faultinject.at_point "store.load.pre_read");
      if is_bad v2_path then begin
        note_miss ~key;
        None
      end
      else
        match parse_file v2_path with
        | Ok (run, _) ->
          note_hit ~key (Filename.basename v2_path);
          Some run
        | Error (`Corrupt reason) ->
          quarantine_entry d v2_path reason;
          note_miss ~key;
          None
        | Error `Missing -> (
          (* v1 read-through: serve the legacy entry and migrate it
             into the sharded tree so the flat layout drains away. *)
          if is_bad v1_path then begin
            note_miss ~key;
            None
          end
          else
            match parse_file v1_path with
            | Error `Missing ->
              note_miss ~key;
              None
            | Error (`Corrupt reason) ->
              quarantine_entry d v1_path reason;
              note_miss ~key;
              None
            | Ok (run, _) ->
              save_internal d ~key (Marshal.to_string (run : run) []) ~v2_path;
              if Sys.file_exists v2_path then begin
                (try Sys.remove v1_path with Sys_error _ -> ());
                Atomic.incr migrated;
                if Trace.on () then
                  Trace.instant ~stage:"store.migrate" [ ("key", key) ]
              end;
              note_hit ~key (Filename.basename v2_path);
              Some run))

  (* --- offline maintenance: stats / gc / fsck ------------------------------ *)

  type disk_stats = {
    d_entries : int;
    d_bytes : int;
    d_v1 : int;  (* legacy flat entries not yet migrated *)
    d_tmp : int;
    d_quarantine : int;
  }

  let count_dir dir pred =
    match Sys.readdir dir with
    | names -> Array.fold_left (fun n name -> if pred name then n + 1 else n) 0 names
    | exception Sys_error _ -> 0

  let disk_stats ~dir:d =
    let entries = scan_entries d in
    let tmp =
      List.fold_left
        (fun n dir -> n + count_dir dir is_tmp_name)
        0 (entry_dirs d)
    in
    {
      d_entries = List.length entries;
      d_bytes = List.fold_left (fun a (_, s, _) -> a + s) 0 entries;
      d_v1 =
        count_dir d (fun name ->
            is_entry_name name && Sys.file_exists (Filename.concat d name)
            && not (Sys.is_directory (Filename.concat d name)));
      d_tmp = tmp;
      d_quarantine = count_dir (quarantine_dir d) (fun _ -> true);
    }

  type gc_report = {
    g_entries : int;  (* entries remaining after the pass *)
    g_bytes : int;  (* bytes remaining after the pass *)
    g_evicted : int;
    g_evicted_bytes : int;
    g_tmp_reclaimed : int;
  }

  (* Explicit maintenance pass: reclaim stale tmp files, then evict
     oldest-first to [max_bytes] if a budget is given (the process-wide
     budget applies otherwise). *)
  let gc ~dir:d ?max_bytes:budget () =
    let tmp_before = Atomic.get tmp_reclaimed in
    reclaim_tmp d;
    let budget = match budget with Some _ as b -> b | None -> max_bytes () in
    let evicted_n, evicted_b =
      match budget with None -> (0, 0) | Some budget -> evict_to_budget d ~budget
    in
    let entries = scan_entries d in
    {
      g_entries = List.length entries;
      g_bytes = List.fold_left (fun a (_, s, _) -> a + s) 0 entries;
      g_evicted = evicted_n;
      g_evicted_bytes = evicted_b;
      g_tmp_reclaimed = Atomic.get tmp_reclaimed - tmp_before;
    }

  type fsck_issue = { f_path : string; f_problem : string }

  type fsck_report = {
    f_scanned : int;  (* published entries examined *)
    f_ok : int;  (* entries that parsed and verified *)
    f_v1 : int;  (* of which legacy v1 *)
    f_bytes : int;  (* bytes across valid entries *)
    f_tmp_pending : int;  (* young tmp files left in place *)
    f_tmp_reclaimed : int;  (* stale tmp files removed by this pass *)
    f_quarantined : int;  (* corrupt entries moved aside by this pass *)
    f_quarantine_backlog : int;  (* files already in quarantine/ *)
    f_issues : fsck_issue list;  (* invariant violations, oldest first *)
  }

  let fsck_clean r = r.f_issues = []

  (* Full invariant check over a store tree.  Violations: an entry that
     fails to parse/verify, a v2 entry outside (or in the wrong shard
     of) the objects/ tree, a v1 entry inside it, a non-hex shard
     directory.  Young tmp files are in-flight writes, not violations;
     stale ones are reclaimed and reported but also not violations —
     they are exactly what the crash model says a SIGKILL leaves
     behind.  Corrupt and misplaced entries are quarantined so a second
     fsck run comes back clean. *)
  let fsck ~dir:d =
    let scanned = ref 0 and ok = ref 0 and v1 = ref 0 and bytes = ref 0 in
    let tmp_pending = ref 0 and tmp_swept = ref 0 and quarantined_now = ref 0 in
    let issues = ref [] in
    let issue path problem = issues := { f_path = path; f_problem = problem } :: !issues in
    let issue_quarantine path problem =
      issue path problem;
      let before = Atomic.get quarantined in
      quarantine_entry d path problem;
      if Atomic.get quarantined > before then incr quarantined_now
    in
    let self = Unix.getpid () in
    let now = Unix.time () in
    let check_tmp dir name =
      let path = Filename.concat dir name in
      if tmp_is_stale ~self ~now path name then begin
        match Sys.remove path with
        | () ->
          incr tmp_swept;
          Atomic.incr tmp_reclaimed
        | exception Sys_error _ -> incr tmp_pending
      end
      else incr tmp_pending
    in
    let check_entry ~expect_shard dir name =
      let path = Filename.concat dir name in
      incr scanned;
      match parse_file path with
      | Error `Missing -> issue path "vanished mid-scan"
      | Error (`Corrupt reason) -> issue_quarantine path reason
      | Ok (_, version) -> (
        let size = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
        match (version, expect_shard) with
        | V1, None ->
          incr ok;
          incr v1;
          bytes := !bytes + size
        | V2, None -> issue_quarantine path "v2 entry outside the objects/ tree"
        | V1, Some _ -> issue_quarantine path "legacy v1 entry inside the objects/ tree"
        | V2, Some shard -> (
          match shard_of_name name with
          | Some s when s = shard ->
            incr ok;
            bytes := !bytes + size
          | Some s ->
            issue_quarantine path
              (Printf.sprintf "entry named for shard %s found in %s" s shard)
          | None -> issue_quarantine path "entry name carries no digest"))
    in
    (* Root: legacy v1 entries, tmp files, and the two known dirs. *)
    (match Sys.readdir d with
    | exception Sys_error _ -> ()
    | names ->
      Array.iter
        (fun name ->
          let path = Filename.concat d name in
          if Sys.is_directory path then begin
            if
              name <> objects_dirname && name <> quarantine_dirname
              && name <> daemon_dirname
            then issue path "unexpected directory in store root"
          end
          else if is_tmp_name name then check_tmp d name
          else if is_entry_name name then check_entry ~expect_shard:None d name
          else issue path "unexpected file in store root")
        names);
    (* objects/<shard>/ *)
    (match Sys.readdir (objects_dir d) with
    | exception Sys_error _ -> ()
    | shards ->
      Array.iter
        (fun shard ->
          let sd = Filename.concat (objects_dir d) shard in
          if not (Sys.is_directory sd) then issue sd "unexpected file in objects/"
          else if
            not
              (String.length shard = 2
              && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) shard)
          then issue sd "non-hex shard directory"
          else
            match Sys.readdir sd with
            | exception Sys_error _ -> ()
            | names ->
              Array.iter
                (fun name ->
                  if is_tmp_name name then check_tmp sd name
                  else if is_entry_name name then check_entry ~expect_shard:(Some shard) sd name
                  else issue (Filename.concat sd name) "unexpected file in shard")
                names)
        (Array.of_list (List.sort compare (Array.to_list shards))));
    {
      f_scanned = !scanned;
      f_ok = !ok;
      f_v1 = !v1;
      f_bytes = !bytes;
      f_tmp_pending = !tmp_pending;
      f_tmp_reclaimed = !tmp_swept;
      f_quarantined = !quarantined_now;
      f_quarantine_backlog = count_dir (quarantine_dir d) (fun _ -> true);
      f_issues = List.rev !issues;
    }

  let fsck_json r =
    let module Json = Chex86_stats.Json in
    Json.Obj
      [
        ("clean", Json.Bool (fsck_clean r));
        ("scanned", Json.Int r.f_scanned);
        ("ok", Json.Int r.f_ok);
        ("v1", Json.Int r.f_v1);
        ("bytes", Json.Int r.f_bytes);
        ("tmp_pending", Json.Int r.f_tmp_pending);
        ("tmp_reclaimed", Json.Int r.f_tmp_reclaimed);
        ("quarantined", Json.Int r.f_quarantined);
        ("quarantine_backlog", Json.Int r.f_quarantine_backlog);
        ( "issues",
          Json.List
            (List.map
               (fun i ->
                 Json.Obj
                   [ ("path", Json.String i.f_path); ("problem", Json.String i.f_problem) ])
               r.f_issues) );
      ]
end

(* Content digest of a built workload program: instructions, globals,
   label table (sorted — Hashtbl order is an implementation detail),
   entry point.  Editing a workload builder changes this and so
   invalidates its store entries. *)
let program_digest (p : Chex86_isa.Program.t) =
  let labels =
    Hashtbl.fold (fun name idx acc -> (name, idx) :: acc) p.labels []
    |> List.sort compare
  in
  Digest.to_hex
    (Digest.string (Marshal.to_string (p.insns, labels, p.globals, p.entry, p.data_end) []))

(* --- memoized workload runs ---------------------------------------------- *)

(* The memo table is the only module-level mutable state in the harness;
   it is shared by every domain of a parallel sweep, so all access goes
   through [memo_lock].  (Found by the jobs>=2 determinism sweep: an
   unsynchronized Hashtbl corrupts its bucket chains under concurrent
   Hashtbl.add; test_parallel.ml keeps a regression test hammering it.) *)
let memo : (string, run) Hashtbl.t = Hashtbl.create 64
let memo_lock = Mutex.create ()

let memo_find key = Mutex.protect memo_lock (fun () -> Hashtbl.find_opt memo key)

(* First publication wins, so concurrent computations of the same key
   still yield one canonical [run] value (physical equality of repeated
   [run_workload] calls is part of the API). *)
let memo_publish key run =
  Mutex.protect memo_lock (fun () ->
      match Hashtbl.find_opt memo key with
      | Some existing -> existing
      | None ->
        Hashtbl.add memo key run;
        run)

(* Faults recorded by supervised prefetches, keyed like the memo. A
   faulted job stays faulted for the rest of the process (later sweeps
   sharing the key render the same FAULTED cell instead of silently
   re-simulating), and the figure-assembly code asks here before
   falling back to a blocking [run_workload]. *)
let fault_table : (string, Pool.fault) Hashtbl.t = Hashtbl.create 16
let fault_lock = Mutex.create ()

let record_fault key fault =
  Mutex.protect fault_lock (fun () -> Hashtbl.replace fault_table key fault)

let fault_find key = Mutex.protect fault_lock (fun () -> Hashtbl.find_opt fault_table key)
let faulted_jobs () =
  Mutex.protect fault_lock (fun () ->
      Hashtbl.fold (fun key fault acc -> (key, fault) :: acc) fault_table [])
  |> List.sort compare

(* Store-aware cache fill: consult the on-disk store before simulating,
   and persist fresh results.  [?configure] installs monitor hooks whose
   effects the stored counters can't capture, so those runs bypass the
   store entirely. *)
let compute_run ~key ?(timing = true) ?(profile = false) ?configure config program =
  match configure with
  | Some _ -> run_program ~timing ~profile ?configure config program
  | None ->
    let digest = program_digest program in
    (match Store.load ~key ~digest with
    | Some run -> run
    | None ->
      let run = run_program ~timing ~profile config program in
      Store.save ~key ~digest run;
      run)

let run_workload ?(tag = "") ?(timing = true) ?(profile = false) ?configure ~scale config
    (w : Chex86_workloads.Bench_spec.t) =
  let key =
    Printf.sprintf "%s/%s/%s/%d/%b/%b/%s" w.name (preset_tag ()) (config_name config)
      scale timing profile tag
  in
  match memo_find key with
  | Some run -> run
  | None ->
    let run = compute_run ~key ~timing ~profile ?configure config (w.build ~scale) in
    memo_publish key run

(* [run_workload] that reports instead of running when a supervised
   prefetch already classified this job as faulted. *)
let run_workload_result ?(tag = "") ?(timing = true) ?(profile = false) ?configure ~scale
    config (w : Chex86_workloads.Bench_spec.t) =
  let key =
    Printf.sprintf "%s/%s/%s/%d/%b/%b/%s" w.name (preset_tag ()) (config_name config)
      scale timing profile tag
  in
  match memo_find key with
  | Some run -> Ok run
  | None -> (
    match fault_find key with
    | Some fault -> Error fault
    | None ->
      Ok
        (memo_publish key
           (compute_run ~key ~timing ~profile ?configure config (w.build ~scale))))

(* --- parallel prefetch ---------------------------------------------------- *)

type job = {
  j_workload : Chex86_workloads.Bench_spec.t;
  j_config : config;
  j_tag : string;
  j_timing : bool;
  j_profile : bool;
  j_scale : int;
}

let job ?(tag = "") ?(timing = true) ?(profile = false) ~scale config workload =
  { j_workload = workload; j_config = config; j_tag = tag; j_timing = timing;
    j_profile = profile; j_scale = scale }

let job_key j =
  Printf.sprintf "%s/%s/%s/%d/%b/%b/%s" j.j_workload.name (preset_tag ())
    (config_name j.j_config) j.j_scale j.j_timing j.j_profile j.j_tag

(* Simulate the not-yet-memoized jobs on the domain pool and publish the
   results into the memo in job order; subsequent [run_workload] calls
   (the serial figure-assembly code) hit the memo.  Each job builds its
   own program and monitor, so jobs share no state; publishing in job
   order keeps the memo's insertion order identical to a serial run. *)
let dedup_jobs job_list =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun j ->
      let key = job_key j in
      if
        Hashtbl.mem seen key
        || Option.is_some (memo_find key)
        || Option.is_some (fault_find key)
      then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    job_list
  |> Array.of_list

let run_job j =
  let key = job_key j in
  compute_run ~key ~timing:j.j_timing ~profile:j.j_profile j.j_config
    (j.j_workload.build ~scale:j.j_scale)

(* Remote task kind: a job crosses the process boundary as its
   workload's name plus the plain-data memo-key fields (Bench_spec.t
   holds a build closure, which can't be marshalled); the worker
   re-looks the workload up in its own registry and runs the exact
   [run_job] path — including its Store consultation, pointed at the
   supervisor's cache directory shipped with each chunk. *)
let remote_kind = "bench"

type remote_job_spec = {
  r_name : string;
  r_config : config;
  r_tag : string;
  r_timing : bool;
  r_profile : bool;
  r_scale : int;
  (* µarch preset name: the worker re-installs it before running so the
     simulation and its store key match the supervisor's machine. *)
  r_preset : string;
}

let remote_job_arg j =
  Marshal.to_string
    { r_name = j.j_workload.Chex86_workloads.Bench_spec.name; r_config = j.j_config;
      r_tag = j.j_tag; r_timing = j.j_timing; r_profile = j.j_profile;
      r_scale = j.j_scale; r_preset = (Machine.Preset.current ()).Machine.Preset.name }
    []

let register_remote () =
  Remote.register_kind remote_kind (fun ~key:_ ~arg _ctx ->
      let spec : remote_job_spec = Marshal.from_string arg 0 in
      (match Machine.Preset.find spec.r_preset with
      | Some p -> Machine.Preset.set p
      | None -> failwith ("unknown remote preset: " ^ spec.r_preset));
      let j =
        { j_workload = Chex86_workloads.Workloads.find spec.r_name;
          j_config = spec.r_config; j_tag = spec.r_tag; j_timing = spec.r_timing;
          j_profile = spec.r_profile; j_scale = spec.r_scale }
      in
      Pool.check_deadline ();
      Marshal.to_string (run_job j : run) [])

(* Worker-side store wiring for Remote (which cannot depend on this
   module): the supervisor ships [Store.dir ()] with each chunk; the
   worker applies it here, so remote jobs hit the same on-disk cache. *)
let () =
  Remote.store_dir_provider := Store.dir;
  Remote.store_dir_applier :=
    (function Some dir -> Store.configure ~dir | None -> Store.disable ())

(* Store counters ride the [--metrics] export as a top-level "store"
   section (Trace cannot depend on this module, so it exposes a hook). *)
let () =
  let module Json = Chex86_stats.Json in
  let prev = !Trace.metrics_extra in
  Trace.metrics_extra :=
    fun () ->
      let s = Store.stats () in
      prev ()
      @ [
          ( "store",
            Json.Obj
              [
                ("hits", Json.Int s.Store.hits);
                ("misses", Json.Int s.Store.misses);
                ("writes", Json.Int s.Store.writes);
                ("discarded", Json.Int s.Store.discarded);
                ("tmp_reclaimed", Json.Int s.Store.tmp_reclaimed);
                ("quarantined", Json.Int s.Store.quarantined);
                ("race_lost", Json.Int s.Store.race_lost);
                ("evicted", Json.Int s.Store.evicted);
                ("migrated", Json.Int s.Store.migrated);
                ("write_errors", Json.Int s.Store.write_errors);
                ("degraded", Json.Bool s.Store.degraded);
              ] );
        ]

(* Supervised prefetch: a crashing or wedged job is recorded in the
   fault table and the rest of the sweep completes (a mid-chunk fault
   only claims the offending job); healthy results are published to the
   memo in job order exactly like [prefetch].  With workers configured
   the jobs run in worker processes instead ([?jobs] is ignored); a
   lost worker surfaces as a [Pool.Worker_lost] fault on the job that
   was in flight. *)
let prefetch_supervised ?jobs ?batch_size ?retries ?task_timeout job_list =
  let todo = dedup_jobs job_list in
  Trace.with_span ~stage:"sweep"
    [ ("kind", "bench"); ("tasks", string_of_int (Array.length todo)) ]
  @@ fun () ->
  if Remote.enabled () && Array.length todo > 0 then begin
    register_remote ();
    let payloads, _stats, report =
      Remote.sweep ?batch_size ?retries ?task_timeout ~kind:remote_kind ~key:job_key
        ~arg:remote_job_arg todo
    in
    ignore jobs;
    Array.iteri
      (fun i result ->
        let key = job_key todo.(i) in
        match result with
        | Ok payload ->
          ignore (memo_publish key (Marshal.from_string payload 0 : run))
        | Error fault -> record_fault key fault)
      payloads;
    report
  end
  else begin
    let results, report =
      Pool.map_supervised_batched ?jobs ?batch_size ?retries ?task_timeout ~key:job_key
        (fun j ->
          Pool.check_deadline ();
          run_job j)
        todo
    in
    Array.iteri
      (fun i result ->
        let key = job_key todo.(i) in
        match result with
        | Ok run -> ignore (memo_publish key run)
        | Error fault -> record_fault key fault)
      results;
    report
  end

let prefetch ?jobs ?batch_size job_list =
  let todo = dedup_jobs job_list in
  Trace.with_span ~stage:"sweep"
    [ ("kind", "bench"); ("tasks", string_of_int (Array.length todo)) ]
  @@ fun () ->
  let runs = Pool.map_batched ?jobs ?batch_size run_job todo in
  Array.iteri (fun i run -> ignore (memo_publish (job_key todo.(i)) run)) runs

(* Test hook: forget every memoized run and recorded fault so a test can
   exercise the cold path repeatedly in one process. Store stats reset
   too; the store directory itself is left alone. *)
let reset_for_tests () =
  Mutex.protect memo_lock (fun () -> Hashtbl.reset memo);
  Mutex.protect fault_lock (fun () -> Hashtbl.reset fault_table);
  Store.reset_stats ()
