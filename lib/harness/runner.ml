(* Unified runner for benchmarks and exploits across every protection
   configuration (the six bars of Fig 6 plus ASan), with memoization so
   the bench targets that share runs (Fig 6 / Table IV / Fig 9) only
   simulate each (workload, configuration) pair once. *)

module Machine = Chex86_machine
module Os = Chex86_os

type config =
  | Chex of Chex86.Variant.t
  | Asan

let insecure = Chex (Chex86.Variant.make Chex86.Variant.Insecure)
let prediction = Chex Chex86.Variant.default

let config_name = function
  | Chex v -> Chex86.Variant.scheme_name v.Chex86.Variant.scheme
  | Asan -> "ASan"

type outcome =
  | Completed
  | Blocked of Chex86.Violation.kind
  | Aborted of string  (* allocator integrity abort *)
  | Faulted of string
  | Budget_exhausted

type run = {
  outcome : outcome;
  macro_insns : int;
  uops : int;
  uops_injected : int;
  uops_killed : int;
  cycles : int;
  counters : Chex86_stats.Counter.group;
  shadow_bytes : int;  (* capability/alias tables or ASan shadow *)
  resident_bytes : int;
  mem_bytes : int;  (* DRAM traffic *)
  pwned : bool;
  profile : Os.Heap_profile.report option;
}

let read_pwned proc program =
  match Chex86_isa.Program.find_global program Exploit_defs.pwned_global with
  | None -> false
  | Some g ->
    Chex86_mem.Image.read64 proc.Os.Process.mem g.Chex86_isa.Program.addr
    = Chex86_exploits.Exploit.pwned_value

let of_sim_result program proc ~shadow_bytes ~profile
    (result : Machine.Simulator.result) outcome =
  {
    outcome;
    macro_insns = result.macro_insns;
    uops = result.uops;
    uops_injected = result.uops_injected;
    uops_killed = result.uops_killed;
    cycles = result.cycles;
    counters = result.counters;
    shadow_bytes;
    resident_bytes = result.resident_bytes;
    mem_bytes = result.mem_bytes;
    pwned = read_pwned proc program;
    profile;
  }

(* Execute [program] under [config].  [timing:false] runs the functional
   engine only (used for the security sweep, which needs no cycles). *)
let run_program ?(timing = true) ?(max_insns = 50_000_000) ?(profile = false)
    ?(configure = fun (_ : Chex86.Monitor.t) -> ()) config program =
  match config with
  | Chex variant ->
    let profile_interval = if profile then Some 100_000 else None in
    let run =
      Chex86.Sim.run ~variant ~max_insns ~timing ~configure ?profile_interval program
    in
    let outcome =
      match run.Chex86.Sim.outcome with
      | Chex86.Sim.Completed -> Completed
      | Chex86.Sim.Violation_detected kind -> Blocked kind
      | Chex86.Sim.Heap_abort msg -> Aborted msg
      | Chex86.Sim.Guest_fault msg -> Faulted msg
      | Chex86.Sim.Budget_exhausted -> Budget_exhausted
    in
    of_sim_result program run.Chex86.Sim.proc
      ~shadow_bytes:(Chex86.Monitor.shadow_storage_bytes run.Chex86.Sim.monitor)
      ~profile:(Option.map Os.Heap_profile.report run.Chex86.Sim.profile)
      run.Chex86.Sim.result outcome
  | Asan ->
    let monitor, result, proc = Chex86_asan.Asan_monitor.run ~timing ~max_insns program in
    let outcome =
      match result.Machine.Simulator.outcome with
      | Machine.Simulator.Finished -> Completed
      | Machine.Simulator.Budget_exhausted -> Budget_exhausted
      | Machine.Simulator.Faulted (Chex86.Violation.Security_violation kind) ->
        Blocked kind
      | Machine.Simulator.Faulted (Os.Allocator.Heap_abort msg) -> Aborted msg
      | Machine.Simulator.Faulted (Machine.Engine.Guest_fault msg) -> Faulted msg
      | Machine.Simulator.Faulted e -> Faulted (Printexc.to_string e)
    in
    {
      outcome;
      macro_insns = result.macro_insns;
      uops = result.uops;
      uops_injected = result.uops_injected;
      uops_killed = result.uops_killed;
      cycles = result.cycles;
      counters = result.counters;
      shadow_bytes = Chex86_asan.Asan_monitor.storage_bytes monitor;
      resident_bytes = result.resident_bytes;
      mem_bytes = result.mem_bytes;
      pwned = read_pwned proc program;
      profile = None;
    }

(* --- memoized workload runs ---------------------------------------------- *)

(* The memo table is the only module-level mutable state in the harness;
   it is shared by every domain of a parallel sweep, so all access goes
   through [memo_lock].  (Found by the jobs>=2 determinism sweep: an
   unsynchronized Hashtbl corrupts its bucket chains under concurrent
   Hashtbl.add; test_parallel.ml keeps a regression test hammering it.) *)
let memo : (string, run) Hashtbl.t = Hashtbl.create 64
let memo_lock = Mutex.create ()

let memo_find key = Mutex.protect memo_lock (fun () -> Hashtbl.find_opt memo key)

(* First publication wins, so concurrent computations of the same key
   still yield one canonical [run] value (physical equality of repeated
   [run_workload] calls is part of the API). *)
let memo_publish key run =
  Mutex.protect memo_lock (fun () ->
      match Hashtbl.find_opt memo key with
      | Some existing -> existing
      | None ->
        Hashtbl.add memo key run;
        run)

let run_workload ?(tag = "") ?(timing = true) ?(profile = false) ?configure ~scale config
    (w : Chex86_workloads.Bench_spec.t) =
  let key =
    Printf.sprintf "%s/%s/%d/%b/%b/%s" w.name (config_name config) scale timing profile
      tag
  in
  match memo_find key with
  | Some run -> run
  | None ->
    let run = run_program ~timing ~profile ?configure config (w.build ~scale) in
    memo_publish key run

(* --- parallel prefetch ---------------------------------------------------- *)

type job = {
  j_workload : Chex86_workloads.Bench_spec.t;
  j_config : config;
  j_tag : string;
  j_timing : bool;
  j_profile : bool;
  j_scale : int;
}

let job ?(tag = "") ?(timing = true) ?(profile = false) ~scale config workload =
  { j_workload = workload; j_config = config; j_tag = tag; j_timing = timing;
    j_profile = profile; j_scale = scale }

let job_key j =
  Printf.sprintf "%s/%s/%d/%b/%b/%s" j.j_workload.name (config_name j.j_config)
    j.j_scale j.j_timing j.j_profile j.j_tag

(* Simulate the not-yet-memoized jobs on the domain pool and publish the
   results into the memo in job order; subsequent [run_workload] calls
   (the serial figure-assembly code) hit the memo.  Each job builds its
   own program and monitor, so jobs share no state; publishing in job
   order keeps the memo's insertion order identical to a serial run. *)
let prefetch ?jobs job_list =
  let seen = Hashtbl.create 16 in
  let todo =
    List.filter
      (fun j ->
        let key = job_key j in
        if Hashtbl.mem seen key || Option.is_some (memo_find key) then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      job_list
    |> Array.of_list
  in
  let runs =
    Pool.map ?jobs
      (fun j ->
        run_program ~timing:j.j_timing ~profile:j.j_profile j.j_config
          (j.j_workload.build ~scale:j.j_scale))
      todo
  in
  Array.iteri (fun i run -> ignore (memo_publish (job_key todo.(i)) run)) runs
