(** Shared flag parsing for the hand-rolled sweep executables.

    [parse_common args] strips the common sweep flags — [--jobs]/[-j],
    [--batch-size] (an integer or ['auto']), [--strict], [--keep-going],
    [--retries], [--task-timeout], [--cache-dir], [--no-cache],
    [--store-max-bytes B] (store eviction budget, K/M/G suffixes
    accepted), [--workers], [--worker] (repeatable HOST:PORT),
    [--heartbeat], [--trace FILE] (structured span events as JSONL),
    [--metrics FILE] (merged sweep stats as JSON at exit) (each also as
    [--flag=value]) — applies them to the process-wide knobs ({!Pool},
    {!Runner.Store}, {!Remote}, {!Trace}), arms the fault-injection
    plan and named points from CHEX86_FAULT_RATE / CHEX86_FAULT_SEED /
    CHEX86_FAULT_KIND / CHEX86_FAULT_POINT, and returns the remaining
    arguments. Malformed
    values print a one-line error and exit 1. The on-disk store
    defaults to [Runner.Store.default_dir] unless [--no-cache] is
    given. [--worker] peers take precedence over [--workers] when both
    are given; [--workers 0] forces in-process domains. *)
val parse_common : string list -> string list

(** One-line-per-flag usage text for the common flags. *)
val common_flags_doc : string

(** Parse a byte count with an optional K/M/G (binary) suffix;
    [Error] carries a human-readable message naming the input. Shared
    with chex86_sim's cmdliner converter. *)
val parse_bytes : string -> (int, string) result

(** Exit 1 when [--strict] was given and any supervised task faulted;
    otherwise return. Call after all sweeps have rendered. *)
val exit_for_faults : unit -> unit
