(** Deterministic fault injection for the supervised sweep engine.

    A plan maps a task's stable key (the same key [Pool] seeds RNG
    streams from) to a fault directive, so injected faults hit exactly
    the same tasks at any job count and across processes. Used by the
    test suite and by [make fault-smoke] to prove every supervision
    path fires; production sweeps run with no plan armed. *)

(** Raised inside a task the armed plan marked [Crash]. *)
exception Injected_crash of string

type kind =
  | Crash  (** raise [Injected_crash] before the task body runs *)
  | Slow of float
      (** sleep this many seconds before the task body, so a per-task
          wall budget's cooperative deadline check fires *)
  | Truncate_cache of int
      (** truncate the task's freshly written [Runner.Store] entry to
          this many bytes (a torn write / killed process) *)
  | Kill_worker
      (** the remote worker SIGKILLs itself before running this task,
          modelling an OOM kill / fatal native crash mid-chunk *)
  | Drop_frame
      (** the transport silently swallows the chunk's request frame, so
          the supervisor's heartbeat deadline must fire *)
  | Corrupt_frame
      (** flip a byte of the request payload after its digest was
          computed; the worker must reject the frame *)
  | Delay_frame of float  (** stall the chunk's request frame *)

type directive = { kind : kind; attempts : int }
(** [attempts] is how many attempts of the task fault ([Crash]/[Slow]
    fire while [attempt < attempts], so retried attempts succeed once
    the budget is spent; for the transport kinds the budget counts the
    chunk's {e dispatch} attempts). *)

val crash : ?attempts:int -> unit -> directive
val slow : ?attempts:int -> float -> directive
val truncate_cache : int -> directive
val kill_worker : ?attempts:int -> unit -> directive
val drop_frame : ?attempts:int -> unit -> directive
val corrupt_frame : ?attempts:int -> unit -> directive
val delay_frame : ?attempts:int -> float -> directive

type plan

val none : plan

(** Fault exactly the listed keys. *)
val of_list : (string * directive) list -> plan

(** Fire [?directive] (default: [crash ()]) on every task whose key
    hashes under [rate], deterministically in [key] and [seed]. *)
val seeded : ?directive:directive -> rate:float -> seed:int -> unit -> plan

(** Install / remove the process-wide plan. Arm before the sweep
    starts; workers only read it. *)
val arm : plan -> unit

val disarm : unit -> unit
val armed : unit -> bool
val describe : unit -> string

(** {2 Named injection points}

    Key plans fire per task; named points fire per {e code location} —
    a specific line of the result store's publish / evict / quarantine
    protocol. The kill/resume chaos soak uses them to SIGKILL a sweep
    at a chosen store operation and arrival ordinal, machine-checking
    the crash-safety invariants at every point of the protocol.

    Point state is separate from the key plan: the remote worker's
    per-chunk [arm]/[disarm] does not touch armed points, so workers
    inherit point injections from their environment. *)

type point_action =
  | Point_kill  (** SIGKILL this process at the point *)
  | Point_crash  (** raise [Injected_crash] at the point *)
  | Point_torn of int
      (** the call site truncates its in-flight artifact (e.g. the
          store's tmp file) to this many bytes *)
  | Point_delay of float  (** stall this many seconds at the point *)
  | Point_enospc  (** the call site fails its write with [ENOSPC] *)

type point_spec = { action : point_action; arm_at : int }
(** [arm_at] is the 1-based arrival ordinal the point fires at; 0 fires
    on every arrival. *)

(** What [at_point] asks its call site to do; [Point_kill]/[Point_crash]
    /[Point_delay] are performed internally and never returned. *)
type point_hit = Torn_artifact of int | Errno of Unix.error

val known_points : string list
(** The catalog compiled into the binary; arming any other name is a
    loud error. *)

val arm_points : (string * point_spec) list -> unit
val disarm_points : unit -> unit
val points_armed : unit -> bool

(** Consulted at each named point. A single atomic load when nothing is
    armed. Fires the armed action when the arrival ordinal matches:
    kill/crash/delay happen here; [Torn_artifact]/[Errno] are returned
    for the call site to apply. *)
val at_point : string -> point_hit option

(** Parse a [CHEX86_FAULT_POINT] spec — comma-separated
    [NAME[=ACTION][@N]] entries, ACTION one of [kill] (default),
    [crash], [enospc], [torn:BYTES], [delay:SECONDS] — rejecting
    unknown point names and malformed actions/ordinals with the
    offending string. *)
val points_of_spec : string -> ((string * point_spec) list, string) result

(** Arm from [CHEX86_FAULT_RATE] (a rate in [0,1]), the optional
    [CHEX86_FAULT_SEED] (default 0), the optional [CHEX86_FAULT_KIND]
    ([crash], the default, or [kill] for [Kill_worker]), and the
    optional [CHEX86_FAULT_POINT] point spec. [Ok true] if a plan or
    point set was armed, [Ok false] if nothing is set, [Error msg] on
    any malformed value — including a malformed [CHEX86_FAULT_SEED] /
    [CHEX86_FAULT_KIND] that would have gone unused because
    [CHEX86_FAULT_RATE] is unset (a set-but-unused valid variable only
    warns on stderr). *)
val arm_from_env : unit -> (bool, string) result

(** The armed directive for a key, any kind; the remote supervisor uses
    this to ship a chunk's slice of the plan to the worker process. *)
val directive_for : string -> directive option

(** Consulted by [Pool] before each task attempt ([Crash]/[Slow] only). *)
val fault_for : key:string -> attempt:int -> kind option

(** Consulted by [Runner.Store] after writing an entry. *)
val truncation_for : key:string -> int option

(** Consulted by the remote worker before each task of a chunk: [true]
    if the armed plan says the worker should SIGKILL itself. [attempt]
    is the chunk's dispatch attempt, so the default one-attempt budget
    kills the first dispatch and lets the re-dispatch complete. *)
val worker_kill_for : key:string -> attempt:int -> bool

(** Consulted by the remote supervisor before shipping a chunk: the
    first of [keys] carrying a transport directive (with dispatch
    budget left) decides the frame's fate. *)
val transport_fault_for : keys:string list -> attempt:int -> kind option
