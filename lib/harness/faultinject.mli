(** Deterministic fault injection for the supervised sweep engine.

    A plan maps a task's stable key (the same key [Pool] seeds RNG
    streams from) to a fault directive, so injected faults hit exactly
    the same tasks at any job count and across processes. Used by the
    test suite and by [make fault-smoke] to prove every supervision
    path fires; production sweeps run with no plan armed. *)

(** Raised inside a task the armed plan marked [Crash]. *)
exception Injected_crash of string

type kind =
  | Crash  (** raise [Injected_crash] before the task body runs *)
  | Slow of float
      (** sleep this many seconds before the task body, so a per-task
          wall budget's cooperative deadline check fires *)
  | Truncate_cache of int
      (** truncate the task's freshly written [Runner.Store] entry to
          this many bytes (a torn write / killed process) *)

type directive = { kind : kind; attempts : int }
(** [attempts] is how many attempts of the task fault ([Crash]/[Slow]
    fire while [attempt < attempts], so retried attempts succeed once
    the budget is spent). *)

val crash : ?attempts:int -> unit -> directive
val slow : ?attempts:int -> float -> directive
val truncate_cache : int -> directive

type plan

val none : plan

(** Fault exactly the listed keys. *)
val of_list : (string * directive) list -> plan

(** Crash (first attempt) every task whose key hashes under [rate],
    deterministically in [key] and [seed]. *)
val seeded : rate:float -> seed:int -> plan

(** Install / remove the process-wide plan. Arm before the sweep
    starts; workers only read it. *)
val arm : plan -> unit

val disarm : unit -> unit
val armed : unit -> bool
val describe : unit -> string

(** Arm from [CHEX86_FAULT_RATE] (a rate in [0,1]) and the optional
    [CHEX86_FAULT_SEED] (default 0). [Ok true] if a plan was armed,
    [Ok false] if the variable is unset, [Error msg] on a malformed
    value. *)
val arm_from_env : unit -> (bool, string) result

(** Consulted by [Pool] before each task attempt. *)
val fault_for : key:string -> attempt:int -> kind option

(** Consulted by [Runner.Store] after writing an entry. *)
val truncation_for : key:string -> int option
