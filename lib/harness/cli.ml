(* Shared flag parsing for the hand-rolled sweep executables
   (bench/main.exe, security_eval).  chex86_sim is cmdliner-based and
   declares the same flags natively; both paths end up setting the same
   process-wide knobs (Pool.set_jobs/set_strict/..., Runner.Store). *)

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "%s\n" msg;
      exit 1)
    fmt

let common_flags_doc =
  "  --jobs N, -j N      worker domains to shard sweeps over (>= 1)\n\
  \  --batch-size N      tasks per dispatched chunk (>= 1, or 'auto': ~4 chunks/worker)\n\
  \  --strict            exit 1 if any task faulted; unknown CHEX86_WORKLOADS error\n\
  \  --keep-going        report faults and continue (default)\n\
  \  --retries N         retry budget per faulted task (default 0)\n\
  \  --task-timeout S    per-task wall budget in seconds (cooperative)\n\
  \  --cache-dir DIR     on-disk result store location (default _chex86_cache)\n\
  \  --no-cache          disable the on-disk result store\n\
  \  --store-max-bytes B store size budget with oldest-first eviction\n\
  \                      (accepts K/M/G suffixes; default: no eviction)\n\
  \  --cpu PRESET        select the \xc2\xb5arch preset (skylake, nehalem, tiny)\n\
  \  --workers N         shard sweeps over N spawned worker processes (0 = off)\n\
  \  --worker HOST:PORT  add a TCP worker peer (repeatable; overrides --workers)\n\
  \  --heartbeat S       worker liveness deadline in seconds (default 30)\n\
  \  --trace FILE        write structured span events (JSONL) to FILE\n\
  \  --metrics FILE      dump merged sweep counters/histograms to FILE as JSON at exit"

(* [--flag=value] becomes [--flag; value] so every flag below accepts
   both spellings. *)
let split_eq args =
  List.concat_map
    (fun arg ->
      if String.length arg > 2 && String.sub arg 0 2 = "--" && String.contains arg '='
      then begin
        let i = String.index arg '=' in
        [ String.sub arg 0 i; String.sub arg (i + 1) (String.length arg - i - 1) ]
      end
      else [ arg ])
    args

let set_jobs value =
  match int_of_string_opt value with
  | Some n when n >= 1 -> Pool.set_jobs n
  | _ -> die "invalid --jobs value %S (expected an integer >= 1)" value

let set_batch_size value =
  match value with
  | "auto" -> Pool.set_batch_size None
  | _ -> (
    match int_of_string_opt value with
    | Some n when n >= 1 -> Pool.set_batch_size (Some n)
    | _ -> die "invalid --batch-size value %S (expected an integer >= 1 or 'auto')" value)

let set_retries value =
  match int_of_string_opt value with
  | Some n when n >= 0 -> Pool.set_retries n
  | _ -> die "invalid --retries value %S (expected an integer >= 0)" value

let set_task_timeout value =
  match float_of_string_opt value with
  | Some s when s > 0. -> Pool.set_task_timeout (Some s)
  | _ -> die "invalid --task-timeout value %S (expected seconds > 0)" value

let parse_workers value =
  match int_of_string_opt value with
  | Some n when n >= 0 -> n
  | _ -> die "invalid --workers value %S (expected an integer >= 0)" value

let parse_peer value =
  match String.rindex_opt value ':' with
  | Some i when i > 0 && i < String.length value - 1 -> (
    let host = String.sub value 0 i in
    let port = String.sub value (i + 1) (String.length value - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 -> (host, p)
    | _ -> die "invalid --worker port in %S (expected HOST:PORT)" value)
  | _ -> die "invalid --worker value %S (expected HOST:PORT)" value

let set_cpu value =
  match Chex86_machine.Preset.find value with
  | Some p -> Chex86_machine.Preset.set p
  | None ->
    die "unknown --cpu preset %S (available: %s)" value
      (String.concat ", " (Chex86_machine.Preset.names ()))

let set_heartbeat value =
  match float_of_string_opt value with
  | Some s when s > 0. -> Remote.set_heartbeat s
  | _ -> die "invalid --heartbeat value %S (expected seconds > 0)" value

(* "64M" / "1G" / plain bytes.  Exposed so chex86_sim's cmdliner
   converter shares the one parser. *)
let parse_bytes value =
  let fail () = Error (Printf.sprintf "invalid size %S (expected BYTES with optional K/M/G suffix)" value) in
  if value = "" then fail ()
  else
    let n = String.length value in
    let mult, digits =
      match value.[n - 1] with
      | 'k' | 'K' -> (1024, String.sub value 0 (n - 1))
      | 'm' | 'M' -> (1024 * 1024, String.sub value 0 (n - 1))
      | 'g' | 'G' -> (1024 * 1024 * 1024, String.sub value 0 (n - 1))
      | _ -> (1, value)
    in
    match int_of_string_opt digits with
    | Some b when b >= 0 && b <= max_int / mult -> Ok (b * mult)
    | _ -> fail ()

let set_store_max_bytes value =
  match parse_bytes value with
  | Ok b -> Runner.Store.set_max_bytes (Some b)
  | Error msg -> die "invalid --store-max-bytes value: %s" msg

(* Strip the common sweep flags out of [args], applying each to the
   process-wide knobs; whatever remains is returned for the caller's own
   parsing.  Also arms the fault-injection plan from the environment
   (CHEX86_FAULT_RATE / CHEX86_FAULT_SEED), rejecting malformed values
   the same way as a bad flag. *)
let parse_common args =
  let cache_dir = ref (Some Runner.Store.default_dir) in
  let workers = ref None in
  let peers = ref [] in
  let rec go = function
    | [] -> []
    | ("--jobs" | "-j") :: value :: rest ->
      set_jobs value;
      go rest
    | ("--jobs" | "-j") :: [] -> die "missing value for --jobs"
    | "--batch-size" :: value :: rest ->
      set_batch_size value;
      go rest
    | "--batch-size" :: [] -> die "missing value for --batch-size"
    | "--strict" :: rest ->
      Pool.set_strict true;
      go rest
    | "--keep-going" :: rest ->
      Pool.set_strict false;
      go rest
    | "--retries" :: value :: rest ->
      set_retries value;
      go rest
    | "--retries" :: [] -> die "missing value for --retries"
    | "--task-timeout" :: value :: rest ->
      set_task_timeout value;
      go rest
    | "--task-timeout" :: [] -> die "missing value for --task-timeout"
    | "--cache-dir" :: value :: rest ->
      if value = "" then die "invalid --cache-dir value: empty";
      cache_dir := Some value;
      go rest
    | "--cache-dir" :: [] -> die "missing value for --cache-dir"
    | "--no-cache" :: rest ->
      cache_dir := None;
      go rest
    | "--store-max-bytes" :: value :: rest ->
      set_store_max_bytes value;
      go rest
    | "--store-max-bytes" :: [] -> die "missing value for --store-max-bytes"
    | "--workers" :: value :: rest ->
      workers := Some (parse_workers value);
      go rest
    | "--workers" :: [] -> die "missing value for --workers"
    | "--worker" :: value :: rest ->
      peers := parse_peer value :: !peers;
      go rest
    | "--worker" :: [] -> die "missing value for --worker"
    | "--heartbeat" :: value :: rest ->
      set_heartbeat value;
      go rest
    | "--heartbeat" :: [] -> die "missing value for --heartbeat"
    | "--cpu" :: value :: rest ->
      set_cpu value;
      go rest
    | "--cpu" :: [] -> die "missing value for --cpu"
    | "--trace" :: value :: rest ->
      if value = "" then die "invalid --trace value: empty";
      Trace.set_output (Some value);
      go rest
    | "--trace" :: [] -> die "missing value for --trace"
    | "--metrics" :: value :: rest ->
      if value = "" then die "invalid --metrics value: empty";
      Trace.set_metrics (Some value);
      go rest
    | "--metrics" :: [] -> die "missing value for --metrics"
    | arg :: rest -> arg :: go rest
  in
  let rest = go (split_eq args) in
  (match !cache_dir with
  | Some dir -> Runner.Store.configure ~dir
  | None -> Runner.Store.disable ());
  (* TCP peers beat spawned workers when both are given: an explicit
     peer list is the more deliberate configuration. *)
  (match (List.rev !peers, !workers) with
  | [], None -> ()
  | (_ :: _ as ps), _ -> Remote.set_spec (Remote.Peers ps)
  | [], Some 0 -> Remote.set_spec Remote.Off
  | [], Some n -> Remote.set_spec (Remote.Spawn n));
  (match Faultinject.arm_from_env () with
  | Ok _ -> ()
  | Error msg -> die "%s" msg);
  rest

(* Call after the sweeps: under --strict, any supervised fault flips
   the exit code (the results were still rendered). *)
let exit_for_faults () = if Pool.strict () && Pool.faults_seen () > 0 then exit 1
