(* chex86d's engine: a select-driven control loop (newline-delimited
   JSON over a loopback TCP port) in the calling domain, one scheduler
   domain pulling admitted jobs off a bounded queue and running them
   through Remote.sweep (worker fleet) or the in-process Pool — both
   bit-identical to a serial run — and a write-ahead job journal under
   <store-root>/daemon/journal/ with the same O_EXCL-tmp +
   atomic-publish discipline as the result store, so a SIGKILL at any
   point of the job protocol loses no acknowledged work and duplicates
   none.

   Crash model (the chaos soak in test/daemon_soak.ml drives all of
   these through the Faultinject points):

   - killed before the .job record publishes → the submit was never
     acked; the client resubmits under the same id (idempotent).
   - killed after .job, before/while running → replay re-enqueues from
     the journal and the job runs from attempt 0 (deterministic
     re-seeding makes the results byte-identical).
   - killed after the .done record publishes → replay re-serves the
     recorded results; the job body never re-runs (exactly-once).
   - a torn record (crash mid-write) fails its digest check on replay
     and is quarantined as *.corrupt, never trusted. *)

module Json = Chex86_stats.Json

let warn fmt = Printf.ksprintf (fun m -> Printf.eprintf "chex86d: %s\n%!" m) fmt

(* --- layout under the store root ------------------------------------------ *)

let daemon_dirname = "daemon"
let daemon_dir ~store_root = Filename.concat store_root daemon_dirname
let journal_dir ~store_root = Filename.concat (daemon_dir ~store_root) "journal"
let lock_path ~store_root = Filename.concat (daemon_dir ~store_root) "lock"

let rec ensure_dir d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    ensure_dir (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> Some s
        | exception End_of_file -> None)

(* --- the store lock ------------------------------------------------------- *)

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception _ -> true

let lock_holder ~store_root =
  match read_file (lock_path ~store_root) with
  | None -> None
  | Some content -> (
    let line = match String.index_opt content '\n' with
      | Some i -> String.sub content 0 i
      | None -> content
    in
    match int_of_string_opt (String.trim line) with
    | Some pid when pid_alive pid -> Some pid
    | _ -> None)

(* Take the lock or say who holds it.  A stale lock (dead pid) is
   reclaimed; two daemons racing for a fresh lock are serialized by the
   O_EXCL create. *)
let acquire_lock ~store_root =
  let path = lock_path ~store_root in
  let write_self () =
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 in
    let line = string_of_int (Unix.getpid ()) ^ "\n" in
    ignore (Unix.write_substring fd line 0 (String.length line));
    Unix.close fd
  in
  let rec attempt retries =
    match write_self () with
    | () -> Ok ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> (
      match lock_holder ~store_root with
      | Some pid -> Error (Printf.sprintf "live daemon (pid %d) already holds %s" pid path)
      | None ->
        (* Stale: the writer is dead.  Reclaim and retry once. *)
        (try Sys.remove path with Sys_error _ -> ());
        if retries > 0 then attempt (retries - 1)
        else Error (Printf.sprintf "cannot reclaim stale lock %s" path))
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "cannot take %s: %s" path (Unix.error_message e))
  in
  attempt 1

let release_lock ~store_root =
  try Sys.remove (lock_path ~store_root) with Sys_error _ -> ()

(* --- journal records ------------------------------------------------------ *)

(* One record per file:
     chex86d-journal-v1 <md5-hex-of-payload> <payload-bytes>\n
     <payload JSON>\n
   published as .tmp-<pid>-<name> + atomic link (rename fallback), so a
   record either exists whole-and-verified or is quarantined. *)

let record_magic = "chex86d-journal-v1"

let encode_record payload =
  Printf.sprintf "%s %s %d\n%s\n" record_magic
    (Digest.to_hex (Digest.string payload))
    (String.length payload) payload

let decode_record content =
  match String.index_opt content '\n' with
  | None -> Error "no header line"
  | Some nl -> (
    match String.split_on_char ' ' (String.sub content 0 nl) with
    | [ magic; hex; len_s ] when magic = record_magic -> (
      match int_of_string_opt len_s with
      | None -> Error "unparseable length"
      | Some len ->
        let start = nl + 1 in
        if len < 0 || String.length content < start + len then Error "truncated payload"
        else
          let payload = String.sub content start len in
          if Digest.to_hex (Digest.string payload) <> String.lowercase_ascii hex then
            Error "digest mismatch"
          else (
            match Json.of_string payload with
            | Ok v -> Ok v
            | Error e -> Error ("unparseable JSON: " ^ e)))
    | _ -> Error "bad header")

let jstr k v = Option.bind (Json.member k v) Json.to_string_opt
let jint k v = Option.bind (Json.member k v) Json.to_int_opt

let jbool k v =
  match Json.member k v with Some (Json.Bool b) -> Some b | _ -> None

let jlist k v = match Json.member k v with Some (Json.List l) -> Some l | _ -> None

(* Journal filenames carry the md5 of the job id, not the id itself
   (ids are client-chosen free text); the id lives inside the record. *)
let job_basename id = Digest.to_hex (Digest.string id)

(* Write-and-publish with the store's crash discipline.  [point] is the
   Faultinject gate: kill/crash/delay happen inside [at_point]; ENOSPC
   comes back as a raised Unix_error (the caller degrades the journal);
   a torn directive truncates the artifact before publishing, which is
   exactly the on-disk state a crash between write and publish-rename
   can leave on a non-atomic filesystem. *)
let write_record ~point dir name payload =
  let torn =
    match Faultinject.at_point point with
    | Some (Faultinject.Errno e) -> raise (Unix.Unix_error (e, "write", name))
    | Some (Faultinject.Torn_artifact n) -> Some n
    | None -> None
  in
  let content =
    let c = encode_record payload in
    match torn with
    | Some n when n < String.length c -> String.sub c 0 (max 0 n)
    | _ -> c
  in
  let path = Filename.concat dir name in
  let tmp = Filename.concat dir (Printf.sprintf ".tmp-%d-%s" (Unix.getpid ()) name) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 in
  (match
     let n = String.length content in
     let rec go off = if off < n then go (off + Unix.write_substring fd content off (n - off)) in
     go 0
   with
  | () -> Unix.close fd
  | exception e ->
    Unix.close fd;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  (match Unix.link tmp path with
  | () -> ( try Sys.remove tmp with Sys_error _ -> ())
  | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
    (* Lost the publish race (or a previous incarnation already
       published this record): the surviving copy wins. *)
    (try Sys.remove tmp with Sys_error _ -> ())
  | exception Unix.Unix_error ((Unix.EPERM | Unix.EXDEV | Unix.ENOSYS | Unix.EMLINK), _, _) ->
    Sys.rename tmp path)

(* --- journal scan --------------------------------------------------------- *)

module Journal = struct
  type entry = {
    e_id : string;
    e_seq : int;
    e_client : string;
    e_kind : string;
    e_tasks : (string * string) list;
  }

  type completion = {
    c_id : string;
    c_cancelled : bool;
    c_results : (string, string) result list;
  }

  type scan = {
    s_pending : entry list;
    s_done : (entry option * completion) list;
    s_corrupt : string list;
  }

  let entry_json e =
    Json.Obj
      [
        ("v", Json.Int 1);
        ("id", Json.String e.e_id);
        ("seq", Json.Int e.e_seq);
        ("client", Json.String e.e_client);
        ("kind", Json.String e.e_kind);
        ( "tasks",
          Json.List
            (List.map
               (fun (k, a) -> Json.Obj [ ("key", Json.String k); ("arg", Json.String a) ])
               e.e_tasks) );
      ]

  let entry_of_json j =
    match (jstr "id" j, jint "seq" j, jstr "kind" j, jlist "tasks" j) with
    | Some id, Some seq, Some kind, Some ts ->
      let tasks =
        List.filter_map
          (fun t ->
            match (jstr "key" t, jstr "arg" t) with
            | Some k, Some a -> Some (k, a)
            | _ -> None)
          ts
      in
      if List.length tasks <> List.length ts then None
      else
        Some
          {
            e_id = id;
            e_seq = seq;
            e_client = Option.value ~default:"?" (jstr "client" j);
            e_kind = kind;
            e_tasks = tasks;
          }
    | _ -> None

  let completion_json c =
    Json.Obj
      [
        ("v", Json.Int 1);
        ("id", Json.String c.c_id);
        ("cancelled", Json.Bool c.c_cancelled);
        ( "results",
          Json.List
            (List.map
               (function
                 | Ok s -> Json.Obj [ ("ok", Json.String s) ]
                 | Error f -> Json.Obj [ ("fault", Json.String f) ])
               c.c_results) );
      ]

  let completion_of_json j =
    match (jstr "id" j, jlist "results" j) with
    | Some id, Some rs ->
      let results =
        List.filter_map
          (fun r ->
            match (jstr "ok" r, jstr "fault" r) with
            | Some s, _ -> Some (Ok s)
            | None, Some f -> Some (Error f)
            | None, None -> None)
          rs
      in
      if List.length results <> List.length rs then None
      else
        Some
          {
            c_id = id;
            c_cancelled = Option.value ~default:false (jbool "cancelled" j);
            c_results = results;
          }
    | _ -> None

  let scan ~dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> { s_pending = []; s_done = []; s_corrupt = [] }
    | names ->
      let corrupt = ref [] in
      let quarantine path reason =
        warn "journal: quarantining %s (%s)" path reason;
        (try Sys.rename path (path ^ ".corrupt") with Sys_error _ -> ());
        corrupt := path :: !corrupt
      in
      let load suffix decode =
        let table = Hashtbl.create 16 in
        Array.iter
          (fun name ->
            if Filename.check_suffix name suffix then begin
              let path = Filename.concat dir name in
              match read_file path with
              | None -> quarantine path "unreadable"
              | Some content -> (
                match decode_record content with
                | Error reason -> quarantine path reason
                | Ok j -> (
                  match decode j with
                  | None -> quarantine path "missing fields"
                  | Some v -> Hashtbl.replace table (Filename.chop_suffix name suffix) v))
            end)
          names;
        table
      in
      let entries = load ".job" entry_of_json in
      let completions = load ".done" completion_of_json in
      let dones =
        Hashtbl.fold
          (fun base c acc -> (Hashtbl.find_opt entries base, c) :: acc)
          completions []
      in
      let pending =
        Hashtbl.fold
          (fun base e acc -> if Hashtbl.mem completions base then acc else e :: acc)
          entries []
        |> List.sort (fun a b -> compare (a.e_seq, a.e_id) (b.e_seq, b.e_id))
      in
      { s_pending = pending; s_done = dones; s_corrupt = !corrupt }
end

(* --- configuration -------------------------------------------------------- *)

type config = {
  port : int;
  frame_port : int option;
  queue_limit : int;
  client_inflight : int;
  volatile : bool;
  store_root : string;
}

let default_queue_limit = 64
let default_client_inflight = 16

let default_config ~port ~store_root =
  {
    port;
    frame_port = None;
    queue_limit = default_queue_limit;
    client_inflight = default_client_inflight;
    volatile = false;
    store_root;
  }

(* --- daemon state --------------------------------------------------------- *)

type jstate = Queued | Running | Done | Cancelled

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Cancelled -> "cancelled"

type djob = {
  id : string;
  seq : int;
  client : string;
  kind : string;
  tasks : (string * string) array;
  mutable state : jstate;
  mutable results : (string, string) result array;
}

type counters = {
  mutable submitted : int;
  mutable admitted : int;
  mutable rejected_queue : int;
  mutable rejected_client : int;
  mutable rejected_drain : int;
  mutable completed : int;
  mutable reserved : int;  (* answered from a completion record *)
  mutable replayed : int;  (* pending jobs re-enqueued at startup *)
  mutable cancelled : int;
  mutable journal_errors : int;
  mutable corrupt_records : int;
  mutable accept_errors : int;
}

type t = {
  cfg : config;
  m : Mutex.t;
  work : Condition.t;  (* scheduler waits here for queue/stop changes *)
  queue : djob Queue.t;
  jobs : (string, djob) Hashtbl.t;
  inflight : (string, int) Hashtbl.t;  (* client -> queued+running *)
  c : counters;
  mutable seq : int;
  mutable draining : bool;
  mutable stopping : bool;
  mutable running : djob option;
  mutable journal_ok : bool;  (* false: volatile or degraded *)
  wake_r : Unix.file_descr;  (* scheduler -> select() self-pipe *)
  wake_w : Unix.file_descr;
}

let inflight_of t client = Option.value ~default:0 (Hashtbl.find_opt t.inflight client)

let incr_inflight t client = Hashtbl.replace t.inflight client (inflight_of t client + 1)

let decr_inflight t client =
  let n = inflight_of t client - 1 in
  if n <= 0 then Hashtbl.remove t.inflight client else Hashtbl.replace t.inflight client n

let wake t =
  try ignore (Unix.write_substring t.wake_w "!" 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

(* --- the journal, as the daemon writes it --------------------------------- *)

let journal_degrade t exn =
  Mutex.protect t.m (fun () ->
      t.c.journal_errors <- t.c.journal_errors + 1;
      if t.journal_ok then begin
        t.journal_ok <- false;
        warn
          "journal unwritable (%s) — continuing WITHOUT durability: accepted jobs are \
           volatile until the daemon can write %s again"
          (Printexc.to_string exn)
          (journal_dir ~store_root:t.cfg.store_root)
      end)

let journal_append t entry =
  if Mutex.protect t.m (fun () -> t.journal_ok) then begin
    try
      write_record ~point:"daemon.journal.append"
        (journal_dir ~store_root:t.cfg.store_root)
        (job_basename entry.Journal.e_id ^ ".job")
        (Json.to_string (Journal.entry_json entry))
    with e -> journal_degrade t e
  end

let journal_complete t completion =
  if Mutex.protect t.m (fun () -> t.journal_ok) then begin
    try
      write_record ~point:"daemon.result.publish"
        (journal_dir ~store_root:t.cfg.store_root)
        (job_basename completion.Journal.c_id ^ ".done")
        (Json.to_string (Journal.completion_json completion))
    with e -> journal_degrade t e
  end

(* --- running a job -------------------------------------------------------- *)

(* Both paths are bit-identical to a serial run of the kind function
   (test-enforced through the whole dispatch stack), which is what lets
   the soak compare post-crash results against a fault-free serial
   reference byte for byte.  Remote.sweep owns the fleet half of the
   degradation ladder: dead/unspawnable workers fall back to in-process
   domains with a warning, never to a lost job. *)
let run_tasks kind tasks =
  let faults f = Pool.fault_to_string f in
  match
    if Remote.enabled () then
      let r, _, _ = Remote.sweep ~kind ~key:fst ~arg:snd tasks in
      r
    else
      match Remote.find_kind kind with
      | None ->
        Array.map
          (fun _ -> Error (Pool.Crashed { exn = "unknown kind " ^ kind; backtrace = "" }))
          tasks
      | Some fn ->
        let r, _, _ =
          Pool.map_stats_supervised_batched
            ~key:(fun (k, _) -> k)
            (fun (k, a) ctx -> fn ~key:k ~arg:a ctx)
            tasks
        in
        r
  with
  | r -> Array.map (function Ok s -> Ok s | Error f -> Error (faults f)) r
  | exception e ->
    (* A job must never take the scheduler down with it. *)
    Array.map (fun _ -> Error (Printf.sprintf "daemon: %s" (Printexc.to_string e))) tasks

let run_job job =
  ignore (Faultinject.at_point "daemon.dispatch");
  let span =
    if Trace.on () then
      Some
        (Trace.span_begin ~stage:"daemon.job"
           [
             ("id", job.id);
             ("kind", job.kind);
             ("tasks", string_of_int (Array.length job.tasks));
           ])
    else None
  in
  let results = run_tasks job.kind job.tasks in
  Option.iter Trace.span_end span;
  results

let scheduler t () =
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.work t.m
    done;
    if t.stopping then Mutex.unlock t.m
    else begin
      let job = Queue.pop t.queue in
      job.state <- Running;
      t.running <- Some job;
      Mutex.unlock t.m;
      let results = run_job job in
      journal_complete t
        {
          Journal.c_id = job.id;
          c_cancelled = false;
          c_results = Array.to_list results;
        };
      Mutex.lock t.m;
      job.results <- results;
      job.state <- Done;
      t.running <- None;
      t.c.completed <- t.c.completed + 1;
      decr_inflight t job.client;
      Mutex.unlock t.m;
      wake t;
      loop ()
    end
  in
  loop ()

(* --- control protocol ----------------------------------------------------- *)

type client = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  mutable drain_wait : bool;
  mutable dead : bool;
}

let send_json cl v =
  let s = Json.to_string v ^ "\n" in
  let n = String.length s in
  match
    let rec go off = if off < n then go (off + Unix.write_substring cl.fd s off (n - off)) in
    go 0
  with
  | () -> ()
  | exception Unix.Unix_error _ -> cl.dead <- true

let reply_err cl ?id msg =
  send_json cl
    (Json.Obj
       ((match id with Some id -> [ ("id", Json.String id) ] | None -> [])
       @ [ ("ok", Json.Bool false); ("error", Json.String msg) ]))

let results_json rs =
  Json.List
    (Array.to_list rs
    |> List.map (function
         | Ok s -> Json.Obj [ ("ok", Json.String s) ]
         | Error f -> Json.Obj [ ("fault", Json.String f) ]))

(* The scheduler domain mutates [state]/[results]; snapshot them under
   the lock before serializing. *)
let reply_state t cl job =
  let state, results =
    Mutex.protect t.m (fun () -> (job.state, job.results))
  in
  let base = [ ("ok", Json.Bool true); ("id", Json.String job.id);
               ("state", Json.String (state_name state)) ] in
  let fields =
    match state with
    | Done | Cancelled -> base @ [ ("results", results_json results) ]
    | Queued | Running -> base
  in
  send_json cl (Json.Obj fields)

let stats_json t =
  Mutex.protect t.m (fun () ->
      Json.Obj
        [
          ("queued", Json.Int (Queue.length t.queue));
          ("running", Json.Int (match t.running with Some _ -> 1 | None -> 0));
          ("draining", Json.Bool t.draining);
          ( "journal",
            Json.String
              (if t.cfg.volatile then "volatile"
               else if t.journal_ok then "ok"
               else "degraded") );
          ("submitted", Json.Int t.c.submitted);
          ("admitted", Json.Int t.c.admitted);
          ("rejected_queue_full", Json.Int t.c.rejected_queue);
          ("rejected_client_cap", Json.Int t.c.rejected_client);
          ("rejected_draining", Json.Int t.c.rejected_drain);
          ("completed", Json.Int t.c.completed);
          ("reserved", Json.Int t.c.reserved);
          ("replayed", Json.Int t.c.replayed);
          ("cancelled", Json.Int t.c.cancelled);
          ("journal_errors", Json.Int t.c.journal_errors);
          ("corrupt_records", Json.Int t.c.corrupt_records);
          ("accept_errors", Json.Int t.c.accept_errors);
        ])

let handle_submit t cl v =
  match (jstr "id" v, jstr "kind" v, jlist "tasks" v) with
  | (None | Some ""), _, _ -> reply_err cl "submit: missing \"id\""
  | _, None, _ -> reply_err cl "submit: missing \"kind\""
  | _, _, None -> reply_err cl "submit: missing \"tasks\""
  | Some id, Some kind, Some ts -> (
    let tasks =
      List.filter_map
        (fun task ->
          match (jstr "key" task, jstr "arg" task) with
          | Some k, Some a -> Some (k, a)
          | _ -> None)
        ts
    in
    if List.length tasks <> List.length ts then
      reply_err cl ~id "submit: every task needs string \"key\" and \"arg\""
    else begin
      let client = Option.value ~default:"anon" (jstr "client" v) in
      Mutex.lock t.m;
      t.c.submitted <- t.c.submitted + 1;
      match Hashtbl.find_opt t.jobs id with
      | Some job ->
        (* Idempotent resubmit: answer with what we already know. *)
        if job.state = Done || job.state = Cancelled then t.c.reserved <- t.c.reserved + 1;
        Mutex.unlock t.m;
        reply_state t cl job
      | None ->
        if t.draining || t.stopping then begin
          t.c.rejected_drain <- t.c.rejected_drain + 1;
          Mutex.unlock t.m;
          reply_err cl ~id "REJECTED busy (draining)"
        end
        else if Queue.length t.queue >= t.cfg.queue_limit then begin
          t.c.rejected_queue <- t.c.rejected_queue + 1;
          Mutex.unlock t.m;
          reply_err cl ~id "REJECTED busy (queue full)"
        end
        else if inflight_of t client >= t.cfg.client_inflight then begin
          t.c.rejected_client <- t.c.rejected_client + 1;
          Mutex.unlock t.m;
          reply_err cl ~id
            (Printf.sprintf "REJECTED busy (client %S at in-flight cap %d)" client
               t.cfg.client_inflight)
        end
        else if Remote.find_kind kind = None then begin
          Mutex.unlock t.m;
          reply_err cl ~id (Printf.sprintf "unknown kind %S" kind)
        end
        else begin
          t.seq <- t.seq + 1;
          let job =
            {
              id;
              seq = t.seq;
              client;
              kind;
              tasks = Array.of_list tasks;
              state = Queued;
              results = [||];
            }
          in
          (* Visible (and idempotent) immediately, but only enqueued —
             and only acked — once the journal record is down: a crash
             between the ack and the record would otherwise lose an
             acknowledged job. *)
          Hashtbl.replace t.jobs id job;
          incr_inflight t client;
          t.c.admitted <- t.c.admitted + 1;
          Mutex.unlock t.m;
          journal_append t
            {
              Journal.e_id = id;
              e_seq = job.seq;
              e_client = client;
              e_kind = kind;
              e_tasks = tasks;
            };
          Mutex.lock t.m;
          Queue.push job t.queue;
          Condition.signal t.work;
          Mutex.unlock t.m;
          if Trace.on () then
            Trace.instant ~stage:"daemon.admit" [ ("id", id); ("kind", kind) ];
          reply_state t cl job
        end
    end)

let handle_cancel t cl v =
  match jstr "id" v with
  | None -> reply_err cl "cancel: missing \"id\""
  | Some id -> (
    Mutex.lock t.m;
    match Hashtbl.find_opt t.jobs id with
    | None ->
      Mutex.unlock t.m;
      reply_err cl ~id "unknown job"
    | Some job -> (
      match job.state with
      | Running ->
        Mutex.unlock t.m;
        reply_err cl ~id "running"
      | Done ->
        Mutex.unlock t.m;
        reply_err cl ~id "done"
      | Cancelled ->
        Mutex.unlock t.m;
        reply_state t cl job
      | Queued ->
        let keep = Queue.create () in
        Queue.iter (fun j -> if j.id <> id then Queue.push j keep) t.queue;
        Queue.clear t.queue;
        Queue.transfer keep t.queue;
        job.state <- Cancelled;
        job.results <- [||];
        t.c.cancelled <- t.c.cancelled + 1;
        decr_inflight t job.client;
        Mutex.unlock t.m;
        (* Durable: a replayed daemon must not resurrect the job. *)
        journal_complete t { Journal.c_id = id; c_cancelled = true; c_results = [] };
        reply_state t cl job))

let handle_status t cl v =
  match jstr "id" v with
  | None -> reply_err cl "status: missing \"id\""
  | Some id -> (
    match Mutex.protect t.m (fun () -> Hashtbl.find_opt t.jobs id) with
    | Some job -> reply_state t cl job
    | None ->
      send_json cl
        (Json.Obj
           [ ("ok", Json.Bool true); ("id", Json.String id); ("state", Json.String "unknown") ]))

let idle t = Queue.is_empty t.queue && t.running = None

let check_drain_waiters t clients =
  let flush = Mutex.protect t.m (fun () -> t.draining && idle t) in
  if flush then
    List.iter
      (fun cl ->
        if cl.drain_wait && not cl.dead then begin
          cl.drain_wait <- false;
          send_json cl (Json.Obj [ ("ok", Json.Bool true); ("op", Json.String "drain") ])
        end)
      clients

let handle_line t cl line =
  match Json.of_string line with
  | Error e -> reply_err cl (Printf.sprintf "unparseable request: %s" e)
  | Ok v -> (
    match jstr "op" v with
    | Some "submit" -> handle_submit t cl v
    | Some "status" -> handle_status t cl v
    | Some "cancel" -> handle_cancel t cl v
    | Some "stats" -> send_json cl (stats_json t)
    | Some "drain" ->
      Mutex.protect t.m (fun () -> t.draining <- true);
      cl.drain_wait <- true
      (* replied by [check_drain_waiters] once queue and runner are empty *)
    | Some "shutdown" ->
      send_json cl (Json.Obj [ ("ok", Json.Bool true); ("op", Json.String "shutdown") ]);
      Mutex.lock t.m;
      t.stopping <- true;
      Condition.broadcast t.work;
      Mutex.unlock t.m;
      wake t
    | Some op -> reply_err cl (Printf.sprintf "unknown op %S" op)
    | None -> reply_err cl "missing \"op\"")

let feed_client t cl =
  let chunk = Bytes.create 4096 in
  match Unix.read cl.fd chunk 0 (Bytes.length chunk) with
  | 0 -> cl.dead <- true
  | exception Unix.Unix_error _ -> cl.dead <- true
  | n ->
    Buffer.add_subbytes cl.rbuf chunk 0 n;
    let data = Buffer.contents cl.rbuf in
    let rec lines start =
      match String.index_from_opt data start '\n' with
      | None ->
        Buffer.clear cl.rbuf;
        Buffer.add_substring cl.rbuf data start (String.length data - start)
      | Some nl ->
        let line = String.trim (String.sub data start (nl - start)) in
        if line <> "" && not cl.dead then handle_line t cl line;
        lines (nl + 1)
    in
    lines 0

(* --- startup: replay the journal ------------------------------------------ *)

let replay t =
  if not t.cfg.volatile then begin
    let scan = Journal.scan ~dir:(journal_dir ~store_root:t.cfg.store_root) in
    Mutex.lock t.m;
    t.c.corrupt_records <- List.length scan.s_corrupt;
    List.iter
      (fun (entry, comp) ->
        let open Journal in
        let job =
          {
            id = comp.c_id;
            seq = (match entry with Some e -> e.e_seq | None -> 0);
            client = (match entry with Some e -> e.e_client | None -> "?");
            kind = (match entry with Some e -> e.e_kind | None -> "?");
            tasks =
              (match entry with Some e -> Array.of_list e.e_tasks | None -> [||]);
            state = (if comp.c_cancelled then Cancelled else Done);
            results = Array.of_list comp.c_results;
          }
        in
        t.seq <- max t.seq job.seq;
        Hashtbl.replace t.jobs job.id job)
      scan.s_done;
    List.iter
      (fun e ->
        let open Journal in
        let job =
          {
            id = e.e_id;
            seq = e.e_seq;
            client = e.e_client;
            kind = e.e_kind;
            tasks = Array.of_list e.e_tasks;
            state = Queued;
            results = [||];
          }
        in
        t.seq <- max t.seq job.seq;
        Hashtbl.replace t.jobs job.id job;
        incr_inflight t job.client;
        Queue.push job t.queue;
        t.c.replayed <- t.c.replayed + 1)
      scan.s_pending;
    let replayed = t.c.replayed and served = List.length scan.s_done in
    Condition.signal t.work;
    Mutex.unlock t.m;
    if replayed > 0 || served > 0 || scan.s_corrupt <> [] then
      warn "journal replay: %d pending job(s) re-enqueued, %d completion(s) re-served, %d corrupt record(s) quarantined"
        replayed served (List.length scan.s_corrupt)
  end

(* --- test kinds ----------------------------------------------------------- *)

let register_test_kinds () =
  Remote.register_kind "daemon.sleep" (fun ~key ~arg _ctx ->
      let seconds =
        match float_of_string_opt arg with Some s when s > 0. -> Float.min s 30. | _ -> 0.05
      in
      (* Sliced so --task-timeout deadlines can fire cooperatively. *)
      let slice = 0.02 in
      let until = Pool.now () +. seconds in
      while Pool.now () < until do
        Pool.check_deadline ();
        Unix.sleepf (Float.min slice (Float.max 0. (until -. Pool.now ())))
      done;
      "slept:" ^ key)

(* --- serving -------------------------------------------------------------- *)

let stop_requested = Atomic.make false

let listen_on port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let serve cfg =
  ensure_dir (journal_dir ~store_root:cfg.store_root);
  (match acquire_lock ~store_root:cfg.store_root with
  | Ok () -> ()
  | Error msg -> failwith ("chex86d: refusing to start: " ^ msg));
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_w;
  let t =
    {
      cfg;
      m = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      jobs = Hashtbl.create 64;
      inflight = Hashtbl.create 8;
      c =
        {
          submitted = 0;
          admitted = 0;
          rejected_queue = 0;
          rejected_client = 0;
          rejected_drain = 0;
          completed = 0;
          reserved = 0;
          replayed = 0;
          cancelled = 0;
          journal_errors = 0;
          corrupt_records = 0;
          accept_errors = 0;
        };
      seq = 0;
      draining = false;
      stopping = false;
      running = None;
      journal_ok = not cfg.volatile;
      wake_r;
      wake_w;
    }
  in
  let finally () =
    release_lock ~store_root:cfg.store_root;
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ wake_r; wake_w ]
  in
  Fun.protect ~finally (fun () ->
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      let on_stop = Sys.Signal_handle (fun _ -> Atomic.set stop_requested true) in
      Sys.set_signal Sys.sigterm on_stop;
      Sys.set_signal Sys.sigint on_stop;
      Atomic.set stop_requested false;
      let prev_extra = !Trace.metrics_extra in
      Trace.metrics_extra := (fun () -> prev_extra () @ [ ("daemon", stats_json t) ]);
      replay t;
      let worker = Domain.spawn (scheduler t) in
      (* Optional framed port: the daemon doubles as a --worker peer.
         Framed jobs bypass the journal — the connecting supervisor owns
         their replay, exactly as with a plain chex86_worker. *)
      (match cfg.frame_port with
      | None -> ()
      | Some port ->
        ignore
          (Domain.spawn (fun () ->
               try Remote.Worker.listen ~port
               with e -> warn "frame port %d died: %s" port (Printexc.to_string e))));
      let listen_fd = listen_on cfg.port in
      Printf.printf "chex86d: serving control on 127.0.0.1:%d%s (queue-limit %d, client-inflight %d, journal %s)\n%!"
        cfg.port
        (match cfg.frame_port with
        | Some p -> Printf.sprintf " + frames on 127.0.0.1:%d" p
        | None -> "")
        cfg.queue_limit cfg.client_inflight
        (if cfg.volatile then "volatile" else journal_dir ~store_root:cfg.store_root);
      let clients = ref [] in
      let accept_failures = ref 0 in
      let rec loop () =
        if Atomic.get stop_requested then begin
          Mutex.lock t.m;
          t.stopping <- true;
          Condition.broadcast t.work;
          Mutex.unlock t.m
        end;
        let stopping = Mutex.protect t.m (fun () -> t.stopping) in
        if not stopping then begin
          (* Backpressure: while the queue is at its limit, the
             listening socket leaves the select set — new connections
             queue up in the kernel backlog instead of buffering
             unboundedly in the daemon.  Draining does NOT gate the
             accept loop: a drained daemon still answers status/stats/
             shutdown; only submits are rejected. *)
          let accepting =
            Mutex.protect t.m (fun () -> Queue.length t.queue < t.cfg.queue_limit)
          in
          let rds =
            (t.wake_r :: (if accepting then [ listen_fd ] else []))
            @ List.map (fun cl -> cl.fd) !clients
          in
          (match Unix.select rds [] [] 0.25 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | ready, _, _ ->
            if List.mem t.wake_r ready then begin
              let buf = Bytes.create 64 in
              (try ignore (Unix.read t.wake_r buf 0 (Bytes.length buf))
               with Unix.Unix_error _ -> ())
            end;
            if List.mem listen_fd ready then begin
              match Unix.accept listen_fd with
              | fd, _ ->
                ignore (Faultinject.at_point "daemon.accept");
                accept_failures := 0;
                clients :=
                  { fd; rbuf = Buffer.create 256; drain_wait = false; dead = false }
                  :: !clients
              | exception Unix.Unix_error (e, _, _) ->
                (* Transient accept failures (EMFILE, ECONNABORTED…)
                   back off on the same capped-exponential curve as
                   worker respawn, so a resource squeeze cannot spin
                   the control loop hot. *)
                Mutex.protect t.m (fun () ->
                    t.c.accept_errors <- t.c.accept_errors + 1);
                incr accept_failures;
                let delay = Remote.backoff_delay ~sid:0 ~restarts:!accept_failures in
                warn "accept failed (%s); backing off %.2fs" (Unix.error_message e) delay;
                Unix.sleepf delay
            end;
            List.iter
              (fun cl -> if (not cl.dead) && List.mem cl.fd ready then feed_client t cl)
              !clients);
          check_drain_waiters t !clients;
          clients :=
            List.filter
              (fun cl ->
                if cl.dead then (try Unix.close cl.fd with Unix.Unix_error _ -> ());
                not cl.dead)
              !clients;
          loop ()
        end
      in
      loop ();
      Mutex.lock t.m;
      t.stopping <- true;
      Condition.broadcast t.work;
      Mutex.unlock t.m;
      Domain.join worker;
      List.iter (fun cl -> try Unix.close cl.fd with Unix.Unix_error _ -> ()) !clients;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Printf.printf "chex86d: stopped (%d job(s) completed this incarnation)\n%!"
        t.c.completed)
