(** chex86d: a crash-tolerant persistent sweep service over the
    [Remote] dispatch stack.

    The daemon accepts sweep jobs on a newline-delimited JSON control
    port ([submit]/[status]/[cancel]/[drain]/[stats]/[shutdown]), runs
    them through [Remote.sweep] when a worker fleet is configured (or
    the in-process [Pool] otherwise — both bit-identical to serial),
    and optionally serves the framed worker protocol itself on a second
    port so it can be driven as a [--worker HOST:PORT] peer.

    Robustness model:

    - {b Admission control}: a bounded job queue plus a per-client
      in-flight cap; a full queue or a capped client gets an explicit
      ["REJECTED busy ..."] response instead of unbounded buffering,
      and while the queue is full the listening socket is dropped from
      the select set entirely (backpressure into the accept loop).
    - {b Write-ahead journal}: each admitted job is recorded under
      [<store-root>/daemon/journal/] with the same O_EXCL-tmp +
      atomic-publish discipline as the result store {e before} the
      submit is acknowledged; completions are published the same way.
      A SIGKILLed daemon restarts, re-serves completed jobs from their
      completion records, and re-enqueues pending ones — each job
      completes exactly once.
    - {b Degradation ladder}: fleet lost → [Remote] degrades to
      in-process domains; store unwritable → [Runner.Store]'s memo-only
      latch; journal unwritable → one loud warning, then
      accept-but-volatile.
    - {b Fault points}: [daemon.accept], [daemon.journal.append],
      [daemon.dispatch] and [daemon.result.publish] are registered
      [Faultinject] named points, so the chaos soak can SIGKILL the
      daemon at every stage of the job protocol. *)

(** {1 Layout under the store root} *)

val daemon_dir : store_root:string -> string
(** [<store_root>/daemon] — the daemon's tenancy inside the result
    store root ([Runner.Store.default_dir] when no store is
    configured). [Runner.Store.fsck] knows this directory is not
    foreign. *)

val journal_dir : store_root:string -> string
(** [<store_root>/daemon/journal] — one [<md5(id)>.job] record per
    admitted job, one [<md5(id)>.done] record per completed (or
    cancelled) job. Torn records are quarantined as [*.corrupt] on
    replay, never trusted. *)

val lock_path : store_root:string -> string
(** [<store_root>/daemon/lock] — holds the serving daemon's pid. *)

val lock_holder : store_root:string -> int option
(** The pid of a {e live} daemon currently holding the store lock, if
    any. Stale locks (dead pid) read as [None]; [make bench] uses this
    to refuse perf snapshots against a contended cache. *)

(** {1 Configuration} *)

type config = {
  port : int;  (** JSON control port (binds 127.0.0.1). *)
  frame_port : int option;
      (** Optional framed worker-protocol port: serve [Remote.Worker]
          connections so the daemon doubles as a [--worker] peer.
          Framed jobs bypass the journal — their supervisor owns
          replay. *)
  queue_limit : int;  (** Queued (not yet running) job cap. *)
  client_inflight : int;  (** Per-client queued+running cap. *)
  volatile : bool;  (** Skip the journal entirely (tests). *)
  store_root : string;  (** Where [daemon/] lives. *)
}

val default_queue_limit : int
val default_client_inflight : int
val default_config : port:int -> store_root:string -> config

(** {1 Serving} *)

val register_test_kinds : unit -> unit
(** Register the deterministic [daemon.sleep] kind (arg = seconds to
    hold a scheduler slot; returns ["slept:<key>"]). Both [chex86d]
    and [chex86_worker] register it so soak jobs cross the wire. *)

val serve : config -> unit
(** Run the daemon until a [shutdown] op or SIGTERM/SIGINT. Acquires
    the store lock (refusing loudly if a live daemon already holds
    it), replays the journal, then serves. The lock is released on
    graceful return. *)

(** {1 Journal introspection} (tests and tooling) *)

module Journal : sig
  type entry = {
    e_id : string;
    e_seq : int;
    e_client : string;
    e_kind : string;
    e_tasks : (string * string) list;  (** (key, arg) in order. *)
  }

  type completion = {
    c_id : string;
    c_cancelled : bool;
    c_results : (string, string) result list;
        (** [Ok payload] per task, or [Error fault] for a task the
            supervision budget gave up on. *)
  }

  type scan = {
    s_pending : entry list;  (** Admitted, no completion; seq order. *)
    s_done : (entry option * completion) list;
    s_corrupt : string list;  (** Files quarantined as [*.corrupt]. *)
  }

  val scan : dir:string -> scan
  (** Read every record under journal directory [dir], quarantining
      torn or digest-mismatched files. *)
end
