(** Security evaluation sweep (§VII-A): every exploit run on the
    insecure baseline and under a protection configuration. *)

type result = {
  exploit : Chex86_exploits.Exploit.t;
  insecure : Runner.run;
  under_protection : Runner.run;
}

val evaluate : ?config:Runner.config -> Chex86_exploits.Exploit.t -> result

(** Evaluate every exploit, sharded over the domain pool in batched
    chunks ([?jobs] defaults to [Pool.jobs ()], [?batch_size] to the
    process-wide knob / auto-sizing); results are in input order and
    bit-identical at any job count and batch size. *)
val sweep :
  ?config:Runner.config ->
  ?jobs:int ->
  ?batch_size:int ->
  Chex86_exploits.Exploit.t list ->
  result list

(** [sweep], plus sweep-level stats (outcome counters under [sweep.*],
    a [sweep.protected_macro_insns] histogram) accumulated chunk-privately
    and merged deterministically in exploit order. The merged counters
    also carry [pool.chunks] — the dispatch rounds paid, the one counter
    that varies with the batch geometry. *)
val sweep_stats :
  ?config:Runner.config ->
  ?jobs:int ->
  ?batch_size:int ->
  Chex86_exploits.Exploit.t list ->
  result list * Pool.merged_stats

(** Register the ["security"] remote task kind (exploit lookup by name,
    config via a marshalled arg) so sweeps can run in worker processes;
    called by the worker binary at startup and by the supervisor before
    routing. Idempotent. *)
val register_remote : unit -> unit

(** [sweep_stats] with per-task supervision (see
    {!Pool.map_stats_supervised_batched}): a crashing or wedged
    evaluation yields an [Error fault] slot instead of killing the sweep
    (its chunk-mates still complete), and the [sweep.*] counters only
    count completed evaluations. Result slots are in input order, each
    paired with its exploit. When workers are configured
    ({!Remote.enabled}), the sweep is dispatched to worker processes
    instead of domains ([?jobs] is ignored there); a worker lost to a
    crash or heartbeat kill surfaces as a [Pool.Worker_lost] fault. *)
val sweep_stats_supervised :
  ?config:Runner.config ->
  ?jobs:int ->
  ?batch_size:int ->
  ?retries:int ->
  ?task_timeout:float ->
  Chex86_exploits.Exploit.t list ->
  (Chex86_exploits.Exploit.t * (result, Pool.fault) Stdlib.result) list
  * Pool.merged_stats
  * Pool.fault_report

val blocked : result -> bool
val blocked_as_expected : result -> bool

(** The attack did not set the pwned flag under protection. *)
val corruption_prevented : result -> bool

type suite_summary = {
  suite : Chex86_exploits.Exploit.suite;
  total : int;
  blocked : int;
  expected_class : int;
  prevented : int;
  insecure_corrupts : int;
  insecure_aborts : int;
}

val summarize : Chex86_exploits.Exploit.suite -> result list -> suite_summary

(** Violation-class histogram of the blocked exploits. *)
val class_breakdown : result list -> (string * int) list

(** {2 Campaign detection matrices}

    Per-(family x allocator x configuration) outcome matrix over a
    generated campaign corpus (see {!Chex86_exploits.Campaign}).  Each
    configuration is one supervised sweep, so evaluations shard over the
    domain pool or remote workers; rows are folded serially in a fixed
    (family, allocator, config) order, so the matrix — and its JSON —
    is bit-identical at any jobs / batch-size / workers geometry. *)

type matrix_cell = {
  total : int;
  detected : int;  (** a security violation was raised *)
  expected_class : int;  (** ... of the campaign's expected class *)
  aborted : int;  (** the allocator's own integrity check fired *)
  missed : int;  (** completed with the pwned flag set *)
  benign : int;  (** completed without corrupting *)
  undetermined : int;  (** faulted, budget-exhausted, or sweep fault *)
}

val campaign_matrix :
  ?jobs:int ->
  ?batch_size:int ->
  ?retries:int ->
  ?task_timeout:float ->
  configs:Runner.config list ->
  Chex86_exploits.Campaign.t list ->
  ((string * string * string) * matrix_cell) list

(** ASCII table over {!Render.table}. *)
val render_matrix : ((string * string * string) * matrix_cell) list -> string

(** Deterministic compact JSON ({!Chex86_stats.Json.to_string} order);
    golden matrix files diff byte-for-byte against this. *)
val matrix_to_json : ((string * string * string) * matrix_cell) list -> Chex86_stats.Json.t
