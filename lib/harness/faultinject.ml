(* Deterministic fault injection for the supervised sweep engine.

   A [plan] decides, from a task's stable key alone, whether that task
   crashes, stalls, or gets its on-disk result-store entry truncated.
   Keys are the same stable identifiers the pool seeds RNG streams from
   ([Runner.job_key], exploit names), so a plan fires on exactly the
   same tasks at any job count, across retries, and across processes —
   the injection is as reproducible as the sweep itself.

   The armed plan is consulted from two places:
   - [Pool] supervision queries [fault_for] before each task attempt
     (crashes raise [Injected_crash]; slowdowns sleep, then the pool's
     cooperative deadline check fires);
   - [Runner.Store] queries [truncation_for] after writing a cache
     entry, modelling a process killed mid-write / torn file.

   Arming happens once, before a sweep starts (CLI startup or a test's
   [Fun.protect]); workers only read the plan, so no locking is
   needed. *)

exception Injected_crash of string

type kind =
  | Crash
  | Slow of float  (* seconds *)
  | Truncate_cache of int  (* keep only this many bytes of the entry *)
  | Kill_worker  (* the remote worker SIGKILLs itself mid-chunk *)
  | Drop_frame  (* the transport silently swallows the chunk's frame *)
  | Corrupt_frame  (* flip a payload byte after the digest is computed *)
  | Delay_frame of float  (* stall the frame this many seconds *)

type directive = { kind : kind; attempts : int }

let crash ?(attempts = 1) () = { kind = Crash; attempts }
let slow ?(attempts = 1) seconds = { kind = Slow seconds; attempts }
let truncate_cache bytes = { kind = Truncate_cache bytes; attempts = 1 }
let kill_worker ?(attempts = 1) () = { kind = Kill_worker; attempts }
let drop_frame ?(attempts = 1) () = { kind = Drop_frame; attempts }
let corrupt_frame ?(attempts = 1) () = { kind = Corrupt_frame; attempts }
let delay_frame ?(attempts = 1) seconds = { kind = Delay_frame seconds; attempts }

type plan = { lookup : string -> directive option; describe : string }

let none = { lookup = (fun _ -> None); describe = "none" }

let of_list pairs =
  {
    lookup = (fun key -> List.assoc_opt key pairs);
    describe = Printf.sprintf "explicit plan over %d key(s)" (List.length pairs);
  }

(* Private FNV-1a copy: the plan must not depend on Pool (Pool depends
   on us), and pinning the hash keeps plans stable across stdlib
   changes, like Pool.seed_of_key. *)
let fnv1a s =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Int64.to_int !h land max_int

let seeded ?directive ~rate ~seed () =
  let directive = match directive with Some d -> d | None -> crash () in
  let rate = Float.max 0. (Float.min 1. rate) in
  let threshold = int_of_float (rate *. 1_000_000.) in
  {
    lookup =
      (fun key ->
        if fnv1a (string_of_int seed ^ "\x00" ^ key) mod 1_000_000 < threshold then
          Some directive
        else None);
    describe = Printf.sprintf "seeded plan (rate %.3f, seed %d)" rate seed;
  }

let current : plan ref = ref none
let arm plan = current := plan
let disarm () = current := none
let armed () = !current != none
let describe () = (!current).describe

(* CHEX86_FAULT_RATE=0.5 [CHEX86_FAULT_SEED=11] [CHEX86_FAULT_KIND=kill]:
   every task whose key hashes under the rate fires the selected
   directive on its first attempt (default: crash). *)
let directive_of_kind_spec = function
  | None | Some "" | Some "crash" -> Ok (crash ())
  | Some "kill" -> Ok (kill_worker ())
  | Some s -> Error (Printf.sprintf "CHEX86_FAULT_KIND: unknown kind %S (crash|kill)" s)

let plan_of_env_spec ~rate_spec ~seed_spec ~kind_spec =
  match directive_of_kind_spec kind_spec with
  | Error _ as e -> e
  | Ok directive -> (
    match float_of_string_opt rate_spec with
    | Some rate when rate >= 0. && rate <= 1. -> (
      match seed_spec with
      | None -> Ok (seeded ~directive ~rate ~seed:0 ())
      | Some s -> (
        match int_of_string_opt s with
        | Some seed -> Ok (seeded ~directive ~rate ~seed ())
        | None -> Error (Printf.sprintf "CHEX86_FAULT_SEED: not an integer: %S" s)))
    | _ ->
      Error (Printf.sprintf "CHEX86_FAULT_RATE: not a rate in [0,1]: %S" rate_spec))

let arm_from_env () =
  match Sys.getenv_opt "CHEX86_FAULT_RATE" with
  | None | Some "" -> Ok false
  | Some rate_spec -> (
    match
      plan_of_env_spec ~rate_spec
        ~seed_spec:(Sys.getenv_opt "CHEX86_FAULT_SEED")
        ~kind_spec:(Sys.getenv_opt "CHEX86_FAULT_KIND")
    with
    | Ok plan ->
      arm plan;
      Ok true
    | Error _ as e -> e)

let directive_for key = (!current).lookup key

let fault_for ~key ~attempt =
  match directive_for key with
  | Some { kind = (Crash | Slow _) as kind; attempts } when attempt < attempts ->
    Some kind
  | _ -> None

let truncation_for ~key =
  match directive_for key with
  | Some { kind = Truncate_cache n; _ } -> Some n
  | _ -> None

(* Consulted by the remote *worker* before each task of a chunk: a
   matching directive makes the worker SIGKILL itself, modelling an OOM
   kill / fatal crash the supervisor must contain.  [attempt] is the
   chunk's dispatch attempt, so the default one-attempt budget kills the
   first dispatch and lets the re-dispatch through. *)
let worker_kill_for ~key ~attempt =
  match directive_for key with
  | Some { kind = Kill_worker; attempts } -> attempt < attempts
  | _ -> false

(* Consulted by the remote *supervisor* before shipping a chunk's frame:
   the first task key carrying a transport directive decides the frame's
   fate. *)
let transport_fault_for ~keys ~attempt =
  List.find_map
    (fun key ->
      match directive_for key with
      | Some { kind = (Drop_frame | Corrupt_frame | Delay_frame _) as kind; attempts }
        when attempt < attempts ->
        Some kind
      | _ -> None)
    keys
