(* Deterministic fault injection for the supervised sweep engine.

   A [plan] decides, from a task's stable key alone, whether that task
   crashes, stalls, or gets its on-disk result-store entry truncated.
   Keys are the same stable identifiers the pool seeds RNG streams from
   ([Runner.job_key], exploit names), so a plan fires on exactly the
   same tasks at any job count, across retries, and across processes —
   the injection is as reproducible as the sweep itself.

   The armed plan is consulted from two places:
   - [Pool] supervision queries [fault_for] before each task attempt
     (crashes raise [Injected_crash]; slowdowns sleep, then the pool's
     cooperative deadline check fires);
   - [Runner.Store] queries [truncation_for] after writing a cache
     entry, modelling a process killed mid-write / torn file.

   Arming happens once, before a sweep starts (CLI startup or a test's
   [Fun.protect]); workers only read the plan, so no locking is
   needed. *)

exception Injected_crash of string

type kind =
  | Crash
  | Slow of float  (* seconds *)
  | Truncate_cache of int  (* keep only this many bytes of the entry *)
  | Kill_worker  (* the remote worker SIGKILLs itself mid-chunk *)
  | Drop_frame  (* the transport silently swallows the chunk's frame *)
  | Corrupt_frame  (* flip a payload byte after the digest is computed *)
  | Delay_frame of float  (* stall the frame this many seconds *)

type directive = { kind : kind; attempts : int }

let crash ?(attempts = 1) () = { kind = Crash; attempts }
let slow ?(attempts = 1) seconds = { kind = Slow seconds; attempts }
let truncate_cache bytes = { kind = Truncate_cache bytes; attempts = 1 }
let kill_worker ?(attempts = 1) () = { kind = Kill_worker; attempts }
let drop_frame ?(attempts = 1) () = { kind = Drop_frame; attempts }
let corrupt_frame ?(attempts = 1) () = { kind = Corrupt_frame; attempts }
let delay_frame ?(attempts = 1) seconds = { kind = Delay_frame seconds; attempts }

type plan = { lookup : string -> directive option; describe : string }

let none = { lookup = (fun _ -> None); describe = "none" }

let of_list pairs =
  {
    lookup = (fun key -> List.assoc_opt key pairs);
    describe = Printf.sprintf "explicit plan over %d key(s)" (List.length pairs);
  }

(* Private FNV-1a copy: the plan must not depend on Pool (Pool depends
   on us), and pinning the hash keeps plans stable across stdlib
   changes, like Pool.seed_of_key. *)
let fnv1a s =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Int64.to_int !h land max_int

let seeded ?directive ~rate ~seed () =
  let directive = match directive with Some d -> d | None -> crash () in
  let rate = Float.max 0. (Float.min 1. rate) in
  let threshold = int_of_float (rate *. 1_000_000.) in
  {
    lookup =
      (fun key ->
        if fnv1a (string_of_int seed ^ "\x00" ^ key) mod 1_000_000 < threshold then
          Some directive
        else None);
    describe = Printf.sprintf "seeded plan (rate %.3f, seed %d)" rate seed;
  }

let current : plan ref = ref none
let arm plan = current := plan
let disarm () = current := none
let armed () = !current != none
let describe () = (!current).describe

(* --- named injection points ------------------------------------------------

   Key-driven plans fire per *task*; named points fire per *code
   location* — a specific line of the store's publish/evict/quarantine
   machinery. The chaos soak uses them to SIGKILL a sweep at a chosen
   store operation and ordinal ([CHEX86_FAULT_POINT=
   store.publish.pre_rename=kill@3] kills the process the third time
   that line is reached), proving the crash-safety invariants hold at
   every point of the protocol, not just between tasks.

   Points are armed process-wide and survive the per-chunk [arm]/
   [disarm] the remote worker does for key plans, so a worker inherits
   point injections from its environment. *)

type point_action =
  | Point_kill  (* SIGKILL this process at the point *)
  | Point_crash  (* raise Injected_crash at the point *)
  | Point_torn of int  (* caller truncates its in-flight artifact *)
  | Point_delay of float  (* stall at the point *)
  | Point_enospc  (* caller fails its write with ENOSPC *)

type point_spec = { action : point_action; arm_at : int }
(** [arm_at]: fire on the Nth arrival at the point (1-based); 0 fires
    on every arrival. *)

type point_hit = Torn_artifact of int | Errno of Unix.error

(* The catalog of points compiled into the binary; arming an unknown
   name is a loud configuration error, never a silent no-op. *)
let known_points =
  [
    "store.load.pre_read";
    "store.publish.pre_write";
    "store.publish.mid_write";
    "store.publish.pre_rename";
    "store.publish.post_rename";
    "store.evict.pre_unlink";
    "store.quarantine.pre_rename";
    "daemon.accept";
    "daemon.journal.append";
    "daemon.dispatch";
    "daemon.result.publish";
  ]

let points : (string, point_spec) Hashtbl.t = Hashtbl.create 4
let point_counts : (string, int ref) Hashtbl.t = Hashtbl.create 4
let points_lock = Mutex.create ()

(* Single atomic load on the (overwhelmingly common) disarmed path, so
   production store operations pay nothing for the instrumentation. *)
let points_live = Atomic.make false

let arm_points specs =
  Mutex.protect points_lock (fun () ->
      Hashtbl.reset points;
      Hashtbl.reset point_counts;
      List.iter (fun (name, spec) -> Hashtbl.replace points name spec) specs;
      Atomic.set points_live (Hashtbl.length points > 0))

let disarm_points () = arm_points []
let points_armed () = Atomic.get points_live

(* Count the arrival and decide under the lock; side effects happen
   outside it so a Point_delay never holds up other domains' points. *)
let point_decision name =
  Mutex.protect points_lock (fun () ->
      match Hashtbl.find_opt points name with
      | None -> None
      | Some { action; arm_at } ->
        let count =
          match Hashtbl.find_opt point_counts name with
          | Some r -> r
          | None ->
            let r = ref 0 in
            Hashtbl.add point_counts name r;
            r
        in
        incr count;
        if arm_at = 0 || !count = arm_at then Some action else None)

let at_point name =
  if not (Atomic.get points_live) then None
  else
    match point_decision name with
    | None -> None
    | Some Point_kill ->
      Unix.kill (Unix.getpid ()) Sys.sigkill;
      None
    | Some Point_crash -> raise (Injected_crash (Printf.sprintf "injection point %s" name))
    | Some (Point_delay seconds) ->
      Unix.sleepf seconds;
      None
    | Some (Point_torn keep) -> Some (Torn_artifact keep)
    | Some Point_enospc -> Some (Errno Unix.ENOSPC)

(* CHEX86_FAULT_POINT syntax: comma-separated NAME[=ACTION][@N] entries;
   ACTION is kill (default) | crash | enospc | torn:BYTES |
   delay:SECONDS.  Every malformed element is rejected with the
   offending string — a chaos run whose injection silently failed to arm
   would vacuously "pass". *)
let point_action_of_string s =
  match String.index_opt s ':' with
  | None -> (
    match s with
    | "" | "kill" -> Ok Point_kill
    | "crash" -> Ok Point_crash
    | "enospc" -> Ok Point_enospc
    | _ ->
      Error
        (Printf.sprintf "unknown action %S (kill|crash|enospc|torn:BYTES|delay:SECONDS)" s))
  | Some i -> (
    let head = String.sub s 0 i in
    let arg = String.sub s (i + 1) (String.length s - i - 1) in
    match head with
    | "torn" -> (
      match int_of_string_opt arg with
      | Some n when n >= 0 -> Ok (Point_torn n)
      | _ -> Error (Printf.sprintf "torn: not a byte count: %S" arg))
    | "delay" -> (
      match float_of_string_opt arg with
      | Some f when f >= 0. -> Ok (Point_delay f)
      | _ -> Error (Printf.sprintf "delay: not a duration in seconds: %S" arg))
    | _ ->
      Error
        (Printf.sprintf "unknown action %S (kill|crash|enospc|torn:BYTES|delay:SECONDS)" s))

let point_of_spec_entry entry =
  let entry = String.trim entry in
  let body, arm_at =
    match String.rindex_opt entry '@' with
    | None -> (Ok entry, Ok 1)
    | Some i ->
      let ordinal = String.sub entry (i + 1) (String.length entry - i - 1) in
      ( Ok (String.sub entry 0 i),
        match int_of_string_opt ordinal with
        | Some n when n >= 0 -> Ok n
        | _ -> Error (Printf.sprintf "%S: not an arrival ordinal: %S" entry ordinal) )
  in
  match (body, arm_at) with
  | Error e, _ | _, Error e -> Error e
  | Ok body, Ok arm_at -> (
    let name, action_spec =
      match String.index_opt body '=' with
      | None -> (body, "")
      | Some i -> (String.sub body 0 i, String.sub body (i + 1) (String.length body - i - 1))
    in
    if not (List.mem name known_points) then
      Error
        (Printf.sprintf "unknown injection point %S (known: %s)" name
           (String.concat ", " known_points))
    else
      match point_action_of_string action_spec with
      | Error e -> Error (Printf.sprintf "%S: %s" entry e)
      | Ok action -> Ok (name, { action; arm_at }))

let points_of_spec spec =
  let entries =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if entries = [] then Error (Printf.sprintf "CHEX86_FAULT_POINT: empty spec %S" spec)
  else
    List.fold_left
      (fun acc entry ->
        match (acc, point_of_spec_entry entry) with
        | Error e, _ -> Error e
        | _, Error e -> Error ("CHEX86_FAULT_POINT: " ^ e)
        | Ok specs, Ok spec -> Ok (spec :: specs))
      (Ok []) entries
    |> Result.map List.rev

(* CHEX86_FAULT_RATE=0.5 [CHEX86_FAULT_SEED=11] [CHEX86_FAULT_KIND=kill]:
   every task whose key hashes under the rate fires the selected
   directive on its first attempt (default: crash). *)
let directive_of_kind_spec = function
  | None | Some "" | Some "crash" -> Ok (crash ())
  | Some "kill" -> Ok (kill_worker ())
  | Some s -> Error (Printf.sprintf "CHEX86_FAULT_KIND: unknown kind %S (crash|kill)" s)

let plan_of_env_spec ~rate_spec ~seed_spec ~kind_spec =
  match directive_of_kind_spec kind_spec with
  | Error _ as e -> e
  | Ok directive -> (
    match float_of_string_opt rate_spec with
    | Some rate when rate >= 0. && rate <= 1. -> (
      match seed_spec with
      | None | Some "" -> Ok (seeded ~directive ~rate ~seed:0 ())
      | Some s -> (
        match int_of_string_opt s with
        | Some seed -> Ok (seeded ~directive ~rate ~seed ())
        | None -> Error (Printf.sprintf "CHEX86_FAULT_SEED: not an integer: %S" s)))
    | _ ->
      Error (Printf.sprintf "CHEX86_FAULT_RATE: not a rate in [0,1]: %S" rate_spec))

(* Every CHEX86_FAULT_* variable is validated whether or not it ends up
   used: a malformed seed with no rate set is a configuration typo the
   user needs to hear about, not a silent fall-through to defaults. *)
let arm_from_env () =
  let rate_spec = Sys.getenv_opt "CHEX86_FAULT_RATE" in
  let seed_spec = Sys.getenv_opt "CHEX86_FAULT_SEED" in
  let kind_spec = Sys.getenv_opt "CHEX86_FAULT_KIND" in
  let point_spec = Sys.getenv_opt "CHEX86_FAULT_POINT" in
  let seed_valid =
    match seed_spec with
    | None | Some "" -> Ok ()
    | Some s -> (
      match int_of_string_opt s with
      | Some _ -> Ok ()
      | None -> Error (Printf.sprintf "CHEX86_FAULT_SEED: not an integer: %S" s))
  in
  let kind_valid = Result.map ignore (directive_of_kind_spec kind_spec) in
  let plan_armed =
    match rate_spec with
    | None | Some "" ->
      List.iter
        (fun (var, value) ->
          match value with
          | Some v when v <> "" ->
            Printf.eprintf
              "chex86-faultinject: %s=%S is set but CHEX86_FAULT_RATE is not; no key \
               plan armed\n\
               %!"
              var v
          | _ -> ())
        [ ("CHEX86_FAULT_SEED", seed_spec); ("CHEX86_FAULT_KIND", kind_spec) ];
      Ok false
    | Some rate_spec -> (
      match plan_of_env_spec ~rate_spec ~seed_spec ~kind_spec with
      | Ok plan ->
        arm plan;
        Ok true
      | Error _ as e -> e)
  in
  let points_armed_now =
    match point_spec with
    | None | Some "" -> Ok false
    | Some spec -> (
      match points_of_spec spec with
      | Ok specs ->
        arm_points specs;
        Ok true
      | Error _ as e -> e)
  in
  match (seed_valid, kind_valid, plan_armed, points_armed_now) with
  | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e -> Error e
  | Ok (), Ok (), Ok plan, Ok points -> Ok (plan || points)

let directive_for key = (!current).lookup key

let fault_for ~key ~attempt =
  match directive_for key with
  | Some { kind = (Crash | Slow _) as kind; attempts } when attempt < attempts ->
    Some kind
  | _ -> None

let truncation_for ~key =
  match directive_for key with
  | Some { kind = Truncate_cache n; _ } -> Some n
  | _ -> None

(* Consulted by the remote *worker* before each task of a chunk: a
   matching directive makes the worker SIGKILL itself, modelling an OOM
   kill / fatal crash the supervisor must contain.  [attempt] is the
   chunk's dispatch attempt, so the default one-attempt budget kills the
   first dispatch and lets the re-dispatch through. *)
let worker_kill_for ~key ~attempt =
  match directive_for key with
  | Some { kind = Kill_worker; attempts } -> attempt < attempts
  | _ -> false

(* Consulted by the remote *supervisor* before shipping a chunk's frame:
   the first task key carrying a transport directive decides the frame's
   fate. *)
let transport_fault_for ~keys ~attempt =
  List.find_map
    (fun key ->
      match directive_for key with
      | Some { kind = (Drop_frame | Corrupt_frame | Delay_frame _) as kind; attempts }
        when attempt < attempts ->
        Some kind
      | _ -> None)
    keys
