(* Regeneration of every table and figure in the paper's evaluation.

   Each [figureN]/[tableN] function runs the required simulations (via
   the memoizing Runner) and renders an ASCII version of the paper's
   plot or table, followed by the summary statistics the paper quotes in
   prose (e.g. "59% faster than ASan on SPEC").  EXPERIMENTS.md records
   the paper-vs-measured comparison produced from these. *)

module Render = Chex86_stats.Render
module Counter = Chex86_stats.Counter
module W = Chex86_workloads.Workloads

let scale =
  match Sys.getenv_opt "CHEX86_SCALE" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 1)
  | None -> 1

(* CHEX86_WORKLOADS=mcf,canneal,freqmine trims every figure's sweep to
   the named workloads (smoke runs / make check); default is all 14. *)
let workloads =
  match Sys.getenv_opt "CHEX86_WORKLOADS" with
  | None | Some "" -> W.all
  | Some s ->
    let requested =
      String.split_on_char ',' s |> List.map String.trim
      |> List.filter (fun n -> n <> "")
    in
    let known n =
      List.exists (fun (w : Chex86_workloads.Bench_spec.t) -> w.name = n) W.all
    in
    List.iter
      (fun n ->
        if not (known n) then
          Printf.eprintf "CHEX86_WORKLOADS: unknown workload %S (ignored)\n%!" n)
      requested;
    let picked =
      List.filter
        (fun (w : Chex86_workloads.Bench_spec.t) -> List.mem w.name requested)
        W.all
    in
    if picked = [] then begin
      Printf.eprintf "CHEX86_WORKLOADS: no known workloads named; sweeping all %d\n%!"
        (List.length W.all);
      W.all
    end
    else picked

let spec_names = List.map (fun (w : Chex86_workloads.Bench_spec.t) -> w.name) W.spec
let is_spec name = List.mem name spec_names

let geomean values =
  match values with
  | [] -> 0.
  | _ ->
    exp (List.fold_left (fun acc v -> acc +. log (max v 1e-9)) 0. values
        /. float_of_int (List.length values))

(* --- Figure 1 ------------------------------------------------------------- *)

(* Root cause of CVEs by patch year; the paper re-creates this from the
   Microsoft (Miller, BlueHat 2019) and Google data.  The percentages
   below are a re-creation of the published stacked-area figure. *)
let figure1_data =
  (* year, stack, heap, uaf, oob-read, uninit, type-conf, other *)
  [
    (2006, 23, 21, 4, 5, 2, 2, 43);
    (2007, 21, 22, 6, 6, 3, 2, 40);
    (2008, 19, 23, 8, 7, 3, 3, 37);
    (2009, 17, 24, 11, 8, 4, 3, 33);
    (2010, 14, 24, 14, 9, 5, 4, 30);
    (2011, 12, 23, 17, 10, 6, 4, 28);
    (2012, 10, 22, 20, 11, 6, 5, 26);
    (2013, 9, 21, 22, 12, 7, 5, 24);
    (2014, 8, 20, 23, 13, 8, 6, 22);
    (2015, 7, 19, 24, 14, 8, 7, 21);
    (2016, 6, 18, 24, 15, 9, 8, 20);
    (2017, 5, 18, 23, 16, 10, 9, 19);
    (2018, 5, 17, 22, 17, 10, 10, 19);
  ]

let figure1 () =
  let header =
    [ "Year"; "Stack"; "Heap"; "UAF"; "OOB Read"; "Uninit"; "TypeConf"; "Other"; "MemSafety%" ]
  in
  let rows =
    List.map
      (fun (y, st, hp, uaf, oob, un, tc, other) ->
        let mem = st + hp + uaf + oob + un in
        [
          string_of_int y;
          string_of_int st ^ "%";
          string_of_int hp ^ "%";
          string_of_int uaf ^ "%";
          string_of_int oob ^ "%";
          string_of_int un ^ "%";
          string_of_int tc ^ "%";
          string_of_int other ^ "%";
          string_of_int mem ^ "%";
        ])
      figure1_data
  in
  String.concat "\n"
    [
      Render.banner "Figure 1: Root Cause of CVEs by Patch Year (re-created dataset)";
      Render.table ~header rows;
      "Memory-safety classes account for a consistent majority of patched CVEs";
      "(the paper quotes ~70% across vendors).";
    ]

(* --- Figure 3 ------------------------------------------------------------- *)

let figure3 () =
  Runner.prefetch
    (List.map
       (fun w -> Runner.job ~timing:false ~profile:true ~scale Runner.insecure w)
       workloads);
  let rows =
    List.map
      (fun (w : Chex86_workloads.Bench_spec.t) ->
        let run =
          Runner.run_workload ~timing:false ~profile:true ~scale Runner.insecure w
        in
        match run.Runner.profile with
        | Some p ->
          [
            w.name;
            string_of_int p.Chex86_os.Heap_profile.total_allocations;
            string_of_int p.Chex86_os.Heap_profile.max_live_allocations;
            Printf.sprintf "%.0f" p.Chex86_os.Heap_profile.avg_in_use_per_interval;
          ]
        | None -> [ w.name; "-"; "-"; "-" ])
      workloads
  in
  String.concat "\n"
    [
      Render.banner "Figure 3: Benchmark Memory Allocation Behavior";
      Render.table
        ~header:[ "Benchmark"; "Total Allocations"; "Max Live"; "In-use / interval" ]
        rows;
      "(profiling interval: 100k instructions, scaled from the paper's 100M)";
    ]

(* --- Figure 6 ------------------------------------------------------------- *)

let fig6_configs =
  [
    ("Insecure BaseLine", Runner.insecure);
    ("CHEx86: Hardware Only", Runner.Chex (Chex86.Variant.make Chex86.Variant.Hardware_only));
    ( "CHEx86: Binary Translation",
      Runner.Chex (Chex86.Variant.make Chex86.Variant.Binary_translation) );
    ( "CHEx86: Micro-code Level - Always On",
      Runner.Chex (Chex86.Variant.make Chex86.Variant.Microcode_always_on) );
    ("CHEx86: Micro-code Prediction Driven", Runner.prediction);
    ("ASan", Runner.Asan);
  ]

let fig6_runs () =
  Runner.prefetch
    (List.concat_map
       (fun w ->
         List.map (fun (_, config) -> Runner.job ~scale config w) fig6_configs)
       workloads);
  List.map
    (fun (w : Chex86_workloads.Bench_spec.t) ->
      ( w,
        List.map
          (fun (name, config) -> (name, Runner.run_workload ~scale config w))
          fig6_configs ))
    workloads

let figure6 () =
  let runs = fig6_runs () in
  let groups =
    List.map
      (fun ((w : Chex86_workloads.Bench_spec.t), per_config) ->
        let baseline =
          (List.assoc "Insecure BaseLine" per_config).Runner.cycles |> float_of_int
        in
        ( w.name,
          List.map
            (fun (_, run) -> baseline /. float_of_int (max 1 run.Runner.cycles))
            per_config ))
      runs
  in
  let series_names = List.map fst fig6_configs in
  (* Normalized micro-op expansion for the two instrumenting schemes. *)
  let uop_rows =
    List.map
      (fun ((w : Chex86_workloads.Bench_spec.t), per_config) ->
        let base = (List.assoc "Insecure BaseLine" per_config).Runner.uops in
        let exp name =
          let r = List.assoc name per_config in
          float_of_int r.Runner.uops /. float_of_int (max 1 base)
        in
        [
          w.name;
          Printf.sprintf "%.2fx" (exp "CHEx86: Micro-code Prediction Driven");
          Printf.sprintf "%.2fx" (exp "ASan");
        ])
      runs
  in
  (* Headline ratios. *)
  let ratios pick =
    List.filter_map
      (fun ((w : Chex86_workloads.Bench_spec.t), per_config) ->
        if pick w.name then
          let cyc name = float_of_int (List.assoc name per_config).Runner.cycles in
          Some
            ( cyc "CHEx86: Micro-code Prediction Driven" /. cyc "Insecure BaseLine",
              cyc "ASan" /. cyc "CHEx86: Micro-code Prediction Driven" )
        else None)
      runs
  in
  let summarize label pick =
    let rs = ratios pick in
    let slowdown = geomean (List.map fst rs) in
    let vs_asan = geomean (List.map snd rs) in
    Printf.sprintf
      "%s: CHEx86 (prediction) slowdown vs insecure: %.1f%%; speedup vs ASan: %.2fx"
      label
      ((slowdown -. 1.) *. 100.)
      vs_asan
  in
  String.concat "\n"
    [
      Render.banner "Figure 6 (top): Normalized Performance (1.0 = insecure baseline)";
      Render.grouped_bars ~series_names groups;
      "";
      Render.banner "Figure 6 (bottom): Normalized uop Expansion";
      Render.table ~header:[ "Benchmark"; "CHEx86 pred"; "ASan" ] uop_rows;
      "";
      summarize "SPEC" is_spec;
      summarize "PARSEC" (fun n -> not (is_spec n));
    ]

(* --- Figure 7 ------------------------------------------------------------- *)

let cache_variant ~cap_entries ~alias_sets =
  Runner.Chex
    (Chex86.Variant.make ~cap_cache_entries:cap_entries ~alias_cache_sets:alias_sets
       Chex86.Variant.Microcode_prediction)

(* Rates computed on fewer than 200 accesses are noise (suites with
   almost no spilled-pointer reloads) and rendered as n/a. *)
let alias_miss_rate counters =
  let hit = Counter.get counters "aliascache.hit"
  and victim = Counter.get counters "aliascache.victim_hit"
  and miss = Counter.get counters "aliascache.miss" in
  if hit + victim + miss < 200 then None
  else Some (float_of_int miss /. float_of_int (hit + victim + miss))

let cap_miss_rate counters =
  Counter.ratio counters ~num:"capcache.miss" ~den:"capcache.hit"

let figure7 () =
  Runner.prefetch
    (List.concat_map
       (fun w ->
         [
           Runner.job ~tag:"cc64" ~scale (cache_variant ~cap_entries:64 ~alias_sets:128) w;
           Runner.job ~tag:"cc128" ~scale
             (cache_variant ~cap_entries:128 ~alias_sets:256)
             w;
         ])
       workloads);
  let rows =
    List.map
      (fun (w : Chex86_workloads.Bench_spec.t) ->
        let small =
          Runner.run_workload ~tag:"cc64" ~scale
            (cache_variant ~cap_entries:64 ~alias_sets:128)
            w
        and big =
          Runner.run_workload ~tag:"cc128" ~scale
            (cache_variant ~cap_entries:128 ~alias_sets:256)
            w
        in
        let opt = function Some r -> Render.percent r | None -> "n/a" in
        [
          w.name;
          Render.percent (cap_miss_rate small.Runner.counters);
          Render.percent (cap_miss_rate big.Runner.counters);
          opt (alias_miss_rate small.Runner.counters);
          opt (alias_miss_rate big.Runner.counters);
        ])
      workloads
  in
  String.concat "\n"
    [
      Render.banner "Figure 7: Capability and Alias Cache Miss Rates";
      Render.table
        ~header:
          [ "Benchmark"; "Cap$ 64e"; "Cap$ 128e"; "Alias$ 256e"; "Alias$ 512e" ]
        rows;
      "(n/a: fewer than 200 alias-cache accesses - negligible spilled-pointer reloads)";
    ]

(* --- Figure 8 ------------------------------------------------------------- *)

let mispredict_rate counters =
  let events = Counter.get counters "alias.pred_events" in
  if events = 0 then 0.
  else
    float_of_int
      (Counter.get counters "alias.pred_pna0"
      + Counter.get counters "alias.pred_p0an"
      + Counter.get counters "alias.pred_pman")
    /. float_of_int events

let squash_fraction run =
  let squash = Counter.get run.Runner.counters "pipeline.squash_cycles" in
  if run.Runner.cycles = 0 then 0.
  else float_of_int squash /. float_of_int run.Runner.cycles

let predictor_variant entries =
  Runner.Chex
    (Chex86.Variant.make ~predictor_entries:entries Chex86.Variant.Microcode_prediction)

let figure8 () =
  Runner.prefetch
    (List.concat_map
       (fun w ->
         [
           Runner.job ~tag:"pred1024" ~scale (predictor_variant 1024) w;
           Runner.job ~tag:"pred2048" ~scale (predictor_variant 2048) w;
           Runner.job ~scale Runner.insecure w;
           Runner.job ~scale Runner.prediction w;
         ])
       workloads);
  let rows =
    List.map
      (fun (w : Chex86_workloads.Bench_spec.t) ->
        let p1024 =
          Runner.run_workload ~tag:"pred1024" ~scale (predictor_variant 1024) w
        and p2048 =
          Runner.run_workload ~tag:"pred2048" ~scale (predictor_variant 2048) w
        and base = Runner.run_workload ~scale Runner.insecure w
        and pred = Runner.run_workload ~scale Runner.prediction w in
        [
          w.name;
          Render.percent (mispredict_rate p1024.Runner.counters);
          Render.percent (mispredict_rate p2048.Runner.counters);
          Render.percent (squash_fraction base);
          Render.percent (squash_fraction pred);
        ])
      workloads
  in
  let accuracies =
    List.map
      (fun (w : Chex86_workloads.Bench_spec.t) ->
        let run = Runner.run_workload ~tag:"pred1024" ~scale (predictor_variant 1024) w in
        1. -. mispredict_rate run.Runner.counters)
      workloads
  in
  String.concat "\n"
    [
      Render.banner
        "Figure 8: Alias Misprediction Rate (1024/2048-entry predictor) and Squash Time";
      Render.table
        ~header:
          [
            "Benchmark";
            "Mispred 1024e";
            "Mispred 2048e";
            "Squash% base";
            "Squash% CHEx86";
          ]
        rows;
      Printf.sprintf "Average alias prediction accuracy: %s"
        (Render.percent (geomean accuracies));
    ]

(* --- Figure 9 ------------------------------------------------------------- *)

let mb bytes = float_of_int bytes /. (1024. *. 1024.)

let figure9 () =
  let freq = 3.4e9 in
  Runner.prefetch
    (List.concat_map
       (fun w ->
         [
           Runner.job ~scale Runner.insecure w;
           Runner.job ~scale Runner.Asan w;
           Runner.job ~scale Runner.prediction w;
         ])
       workloads);
  let rows =
    List.map
      (fun (w : Chex86_workloads.Bench_spec.t) ->
        let base = Runner.run_workload ~scale Runner.insecure w
        and asan = Runner.run_workload ~scale Runner.Asan w
        and pred = Runner.run_workload ~scale Runner.prediction w in
        let storage (r : Runner.run) = mb (r.resident_bytes + r.shadow_bytes) in
        let bandwidth (r : Runner.run) =
          if r.cycles = 0 then 0.
          else float_of_int r.mem_bytes /. (float_of_int r.cycles /. freq) /. (1024. *. 1024.)
        in
        [
          w.name;
          Printf.sprintf "%.2f" (storage base);
          Printf.sprintf "%.2f" (storage asan);
          Printf.sprintf "%.2f" (storage pred);
          Printf.sprintf "%.0f" (bandwidth base);
          Printf.sprintf "%.0f" (bandwidth pred);
        ])
      workloads
  in
  String.concat "\n"
    [
      Render.banner "Figure 9: Memory Storage Overhead (MB) and Bandwidth (MB/s)";
      Render.table
        ~header:
          [
            "Benchmark";
            "RSS base";
            "RSS ASan";
            "RSS CHEx86";
            "BW base";
            "BW CHEx86";
          ]
        rows;
    ]

(* --- Table I ---------------------------------------------------------------- *)

(* Rule construction/validation: run representative workloads and suites
   with the hardware checker attached, report its agreement rate, then
   print the resulting database. *)
let table1 () =
  (* The paper constructs/validates the database "while running C and
     C++ benchmarks from the SPEC and PARSEC suites, the RIPE security
     suite, LLVM's Address Sanitizer test suite, and the How2Heap
     suite": validate over representatives of all five sources. *)
  let with_checker program =
    let checker = ref None in
    let configure m =
      let c = Chex86.Checker.create (Chex86.Monitor.cap_table m) in
      Chex86.Monitor.attach_checker m c;
      checker := Some c
    in
    ignore (Runner.run_program ~timing:false ~configure Runner.prediction program);
    !checker
  in
  let checker_runs =
    List.map
      (fun name -> (name, with_checker ((W.find name).build ~scale:1)))
      [ "mcf"; "perlbench"; "canneal"; "freqmine" ]
    @ List.map
        (fun name ->
          (name, with_checker ((Chex86_exploits.Exploits.find name).build ())))
        [
          "ripe/heap-funcptr-direct-nopsled-memcpy-32";
          "asan/heap-oob-write";
          "how2heap/first_fit";
        ]
  in
  let validation_rows =
    List.map
      (fun (name, checker) ->
        match checker with
        | Some c ->
          [
            name;
            string_of_int (Chex86.Checker.checked c);
            Render.percent (Chex86.Checker.agreement_rate c);
            string_of_int (List.length (Chex86.Checker.mismatches c));
          ]
        | None -> [ name; "-"; "-"; "-" ])
      checker_runs
  in
  let rules = Chex86.Rules.create () in
  String.concat "\n"
    [
      Render.banner "Table I: Pointer Tracking Rule Database";
      Render.table
        ~header:[ "uop"; "Addr. Mode"; "Example"; "Capability Propagation"; "Code Example" ]
        (Chex86.Rules.render_rows rules);
      "";
      "Hardware-checker validation (exhaustive shadow-table search vs tracker):";
      Render.table
        ~header:[ "Workload"; "uops checked"; "Agreement"; "Mismatches" ]
        validation_rows;
    ]

(* --- Table II --------------------------------------------------------------- *)

let table2 () =
  let classify_program (name, build) =
    let trace = ref [] in
    let configure m =
      Chex86.Monitor.set_on_check m (fun ~pc:_ ~pid ~is_store ->
          (* Record one PID per dereference (the RMW's store side) of a
             heap object; the global pattern and order tables (PIDs 1-2) are filtered
             out. *)
          if is_store && pid > 2 then trace := pid :: !trace)
    in
    let _ = Runner.run_program ~timing:false ~configure Runner.prediction (build ()) in
    let seq = List.rev !trace in
    let classified = Chex86.Pattern_classifier.classify seq in
    let sample =
      seq |> List.filteri (fun i _ -> i < 7) |> List.map string_of_int
      |> String.concat " "
    in
    (name, Chex86.Pattern_classifier.name classified, sample)
  in
  let rows =
    List.map
      (fun (name, build) ->
        let _, got, sample = classify_program (name, build) in
        [ name; got; sample ])
      Chex86_workloads.Patterns.all
  in
  String.concat "\n"
    [
      Render.banner "Table II: Temporal Pointer Access Patterns (from machine-level PID streams)";
      Render.table ~header:[ "Generated pattern"; "Classified as"; "Example PIDs" ] rows;
    ]

(* --- Table III --------------------------------------------------------------- *)

let table3 () =
  String.concat "\n"
    [
      Render.banner "Table III: Hardware Configuration of the Simulated System";
      Render.table
        ~header:[ "Parameter"; "Value"; "Parameter"; "Value" ]
        (Chex86_machine.Config.rows Chex86_machine.Config.default);
    ]

(* --- Table IV ---------------------------------------------------------------- *)

let table4 () =
  let runs = fig6_runs () in
  let measured =
    List.filter_map
      (fun ((w : Chex86_workloads.Bench_spec.t), per_config) ->
        if is_spec w.name then begin
          let base = List.assoc "Insecure BaseLine" per_config
          and pred = List.assoc "CHEx86: Micro-code Prediction Driven" per_config in
          Some
            ( float_of_int pred.Runner.cycles /. float_of_int base.Runner.cycles,
              float_of_int (pred.Runner.resident_bytes + pred.Runner.shadow_bytes)
              /. float_of_int (max 1 base.Runner.resident_bytes) )
        end
        else None)
      runs
  in
  let perf = (geomean (List.map fst measured) -. 1.) *. 100. in
  let worst_perf =
    (List.fold_left (fun acc (p, _) -> max acc p) 1. measured -. 1.) *. 100.
  in
  let storage = (geomean (List.map snd measured) -. 1.) *. 100. in
  let worst_storage =
    (List.fold_left (fun acc (_, s) -> max acc s) 1. measured -. 1.) *. 100.
  in
  let static =
    [
      [ "Hardbound"; "no"; "yes"; "Shadow"; "Partial"; "5% (Olden)"; "55% (Olden)" ];
      [ "Watchdog"; "yes"; "yes"; "Shadow"; "Partial"; "24% (SPEC2000)"; "56% (SPEC2000)" ];
      [ "Intel MPX"; "no"; "yes"; "Inline"; "no"; "80% (SPEC2006)"; "150% (SPEC2006)" ];
      [ "BOGO"; "yes"; "yes"; "Inline"; "no"; "60% (SPEC2006)"; "36% (SPEC2006)" ];
      [ "CHERI"; "no"; "yes"; "Inline"; "no"; "18% (Olden)"; "90% (Olden)" ];
      [ "CHERIvoke"; "yes"; "no"; "Inline"; "no"; "4.7% (SPEC2006)"; "12.5% (SPEC2006)" ];
      [ "REST"; "yes"; "yes"; "Shadow"; "no"; "23% (SPEC2006)"; "N/A" ];
      [ "Califorms"; "yes"; "yes"; "Shadow"; "no"; "16% (SPEC2006)"; "N/A" ];
      [
        "CHEx86 (measured)";
        "yes";
        "yes";
        "Shadow";
        "yes";
        Printf.sprintf "%.0f%% (avg) %.0f%% (worst)" perf worst_perf;
        Printf.sprintf "%.0f%% (avg) %.0f%% (worst)" storage worst_storage;
      ];
    ]
  in
  String.concat "\n"
    [
      Render.banner "Table IV: Comparison with Prior Memory Safety Techniques";
      Render.table
        ~header:
          [ "Proposal"; "Temporal"; "Spatial"; "Metadata"; "BinCompat"; "Performance"; "Storage" ]
        static;
      "(prior-work rows are the paper's reported numbers; the CHEx86 row is measured)";
    ]

(* --- Security ----------------------------------------------------------------- *)

let security () =
  let results, stats = Security.sweep_stats Chex86_exploits.Exploits.all in
  let suites =
    [
      Chex86_exploits.Exploit.Ripe;
      Chex86_exploits.Exploit.Asan_suite;
      Chex86_exploits.Exploit.How2heap;
    ]
  in
  let rows =
    List.map
      (fun suite ->
        let s = Security.summarize suite results in
        [
          Chex86_exploits.Exploit.suite_name suite;
          string_of_int s.Security.total;
          string_of_int s.Security.blocked;
          string_of_int s.Security.expected_class;
          string_of_int s.Security.prevented;
          string_of_int s.Security.insecure_corrupts;
          string_of_int s.Security.insecure_aborts;
        ])
      suites
  in
  let breakdown =
    List.map
      (fun (cls, n) -> [ cls; string_of_int n ])
      (Security.class_breakdown results)
  in
  (* Totals from the merged worker stats (tallied task-privately on the
     domain pool, merged in exploit order). *)
  let merged = stats.Pool.counters in
  let totals =
    Printf.sprintf "Merged sweep stats: %d/%d blocked, %d with the expected class"
      (Counter.get merged "sweep.blocked")
      (Counter.get merged "sweep.total")
      (Counter.get merged "sweep.expected_class")
  in
  let insn_spread =
    match List.assoc_opt "sweep.protected_macro_insns" stats.Pool.histograms with
    | Some h ->
      Printf.sprintf "Protected-run macro-ops per exploit: p50=%d p99=%d max=%d"
        (Chex86_stats.Histogram.percentile h 0.50)
        (Chex86_stats.Histogram.percentile h 0.99)
        (Chex86_stats.Histogram.max_value h)
    | None -> ""
  in
  String.concat "\n"
    [
      Render.banner "Security Evaluation (Section VII-A)";
      Render.table
        ~header:
          [
            "Suite";
            "Exploits";
            "Blocked";
            "Expected class";
            "Corruption prevented";
            "Corrupts insecure";
            "Allocator aborts";
          ]
        rows;
      "";
      totals;
      insn_spread;
      "";
      "Violation-class breakdown of blocked exploits:";
      Render.table ~header:[ "Class"; "Count" ] breakdown;
    ]

let all =
  [
    ("figure1", figure1);
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("figure3", figure3);
    ("figure6", figure6);
    ("figure7", figure7);
    ("figure8", figure8);
    ("table4", table4);
    ("figure9", figure9);
    ("security", security);
  ]
