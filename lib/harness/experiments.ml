(* Regeneration of every table and figure in the paper's evaluation.

   Each [figureN]/[tableN] function runs the required simulations (via
   the memoizing Runner) and renders an ASCII version of the paper's
   plot or table, followed by the summary statistics the paper quotes in
   prose (e.g. "59% faster than ASan on SPEC").  EXPERIMENTS.md records
   the paper-vs-measured comparison produced from these.

   All the sweeps here go through the batched dispatch path
   (Runner.prefetch_supervised / Security.sweep_stats_supervised ride on
   Pool.map_*_batched), so --jobs/--batch-size apply uniformly and the
   rendered output is bit-identical at any (jobs, batch) geometry. *)

module Render = Chex86_stats.Render
module Counter = Chex86_stats.Counter
module W = Chex86_workloads.Workloads

let scale =
  match Sys.getenv_opt "CHEX86_SCALE" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 1)
  | None -> 1

(* CHEX86_WORKLOADS=mcf,canneal,freqmine trims every figure's sweep to
   the named workloads (smoke runs / make check); default is all 14.
   Pure resolution so tests can exercise both strictness modes: unknown
   names warn-and-ignore by default but are a hard error under
   [~strict] (a strict run silently sweeping the wrong set would defeat
   the point of --strict). *)
let resolve_workloads ?(strict = false) ~all spec =
  let requested =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun n -> n <> "")
  in
  match requested with
  | [] -> Ok all
  | _ ->
    let known n =
      List.exists (fun (w : Chex86_workloads.Bench_spec.t) -> w.name = n) all
    in
    let unknown = List.filter (fun n -> not (known n)) requested in
    if strict && unknown <> [] then
      Error
        (Printf.sprintf "unknown workload(s): %s"
           (String.concat ", " (List.map (Printf.sprintf "%S") unknown)))
    else begin
      List.iter
        (fun n ->
          Printf.eprintf "CHEX86_WORKLOADS: unknown workload %S (ignored)\n%!" n)
        unknown;
      let picked =
        List.filter
          (fun (w : Chex86_workloads.Bench_spec.t) -> List.mem w.name requested)
          all
      in
      if picked = [] then begin
        Printf.eprintf "CHEX86_WORKLOADS: no known workloads named; sweeping all %d\n%!"
          (List.length all);
        Ok all
      end
      else Ok picked
    end

(* Resolved on first use — after the CLI has parsed --strict — and
   cached; a strict run with a bad CHEX86_WORKLOADS exits 2 before any
   simulation starts. *)
let workloads_cache = ref None

let workloads () =
  match !workloads_cache with
  | Some ws -> ws
  | None ->
    let ws =
      match Sys.getenv_opt "CHEX86_WORKLOADS" with
      | None | Some "" -> W.all
      | Some s -> (
        match resolve_workloads ~strict:(Pool.strict ()) ~all:W.all s with
        | Ok ws -> ws
        | Error msg ->
          Printf.eprintf "CHEX86_WORKLOADS: %s\n%!" msg;
          exit 2)
    in
    workloads_cache := Some ws;
    ws

(* How a faulted (workload x config) cell renders in any figure; the
   full classification is in the appended fault report. *)
let fault_cell = function
  | Pool.Crashed _ -> "FAULTED"
  | Pool.Timed_out _ -> "TIMEOUT"
  | Pool.Worker_lost _ -> "LOST"

(* Appended to a figure when its sweep had faults (also the marker
   [make fault-smoke] greps for). *)
let fault_footer (report : Pool.fault_report) =
  if report.Pool.crashed + report.Pool.timed_out + report.Pool.worker_lost > 0
  then [ ""; Pool.render_fault_report report ]
  else []

let spec_names = List.map (fun (w : Chex86_workloads.Bench_spec.t) -> w.name) W.spec
let is_spec name = List.mem name spec_names

let geomean values =
  match values with
  | [] -> 0.
  | _ ->
    exp (List.fold_left (fun acc v -> acc +. log (max v 1e-9)) 0. values
        /. float_of_int (List.length values))

(* --- Figure 1 ------------------------------------------------------------- *)

(* Root cause of CVEs by patch year; the paper re-creates this from the
   Microsoft (Miller, BlueHat 2019) and Google data.  The percentages
   below are a re-creation of the published stacked-area figure. *)
let figure1_data =
  (* year, stack, heap, uaf, oob-read, uninit, type-conf, other *)
  [
    (2006, 23, 21, 4, 5, 2, 2, 43);
    (2007, 21, 22, 6, 6, 3, 2, 40);
    (2008, 19, 23, 8, 7, 3, 3, 37);
    (2009, 17, 24, 11, 8, 4, 3, 33);
    (2010, 14, 24, 14, 9, 5, 4, 30);
    (2011, 12, 23, 17, 10, 6, 4, 28);
    (2012, 10, 22, 20, 11, 6, 5, 26);
    (2013, 9, 21, 22, 12, 7, 5, 24);
    (2014, 8, 20, 23, 13, 8, 6, 22);
    (2015, 7, 19, 24, 14, 8, 7, 21);
    (2016, 6, 18, 24, 15, 9, 8, 20);
    (2017, 5, 18, 23, 16, 10, 9, 19);
    (2018, 5, 17, 22, 17, 10, 10, 19);
  ]

let figure1 () =
  let header =
    [ "Year"; "Stack"; "Heap"; "UAF"; "OOB Read"; "Uninit"; "TypeConf"; "Other"; "MemSafety%" ]
  in
  let rows =
    List.map
      (fun (y, st, hp, uaf, oob, un, tc, other) ->
        let mem = st + hp + uaf + oob + un in
        [
          string_of_int y;
          string_of_int st ^ "%";
          string_of_int hp ^ "%";
          string_of_int uaf ^ "%";
          string_of_int oob ^ "%";
          string_of_int un ^ "%";
          string_of_int tc ^ "%";
          string_of_int other ^ "%";
          string_of_int mem ^ "%";
        ])
      figure1_data
  in
  String.concat "\n"
    [
      Render.banner "Figure 1: Root Cause of CVEs by Patch Year (re-created dataset)";
      Render.table ~header rows;
      "Memory-safety classes account for a consistent majority of patched CVEs";
      "(the paper quotes ~70% across vendors).";
    ]

(* --- Figure 3 ------------------------------------------------------------- *)

let figure3 () =
  let workloads = workloads () in
  let report =
    Runner.prefetch_supervised
      (List.map
         (fun w -> Runner.job ~timing:false ~profile:true ~scale Runner.insecure w)
         workloads)
  in
  let rows =
    List.map
      (fun (w : Chex86_workloads.Bench_spec.t) ->
        match
          Runner.run_workload_result ~timing:false ~profile:true ~scale Runner.insecure
            w
        with
        | Ok { Runner.profile = Some p; _ } ->
          [
            w.name;
            string_of_int p.Chex86_os.Heap_profile.total_allocations;
            string_of_int p.Chex86_os.Heap_profile.max_live_allocations;
            Printf.sprintf "%.0f" p.Chex86_os.Heap_profile.avg_in_use_per_interval;
          ]
        | Ok { Runner.profile = None; _ } -> [ w.name; "-"; "-"; "-" ]
        | Error fault ->
          let cell = fault_cell fault in
          [ w.name; cell; cell; cell ])
      workloads
  in
  String.concat "\n"
    ([
       Render.banner "Figure 3: Benchmark Memory Allocation Behavior";
       Render.table
         ~header:[ "Benchmark"; "Total Allocations"; "Max Live"; "In-use / interval" ]
         rows;
       "(profiling interval: 100k instructions, scaled from the paper's 100M)";
     ]
    @ fault_footer report)

(* --- Figure 6 ------------------------------------------------------------- *)

let fig6_configs =
  [
    ("Insecure BaseLine", Runner.insecure);
    ("CHEx86: Hardware Only", Runner.Chex (Chex86.Variant.make Chex86.Variant.Hardware_only));
    ( "CHEx86: Binary Translation",
      Runner.Chex (Chex86.Variant.make Chex86.Variant.Binary_translation) );
    ( "CHEx86: Micro-code Level - Always On",
      Runner.Chex (Chex86.Variant.make Chex86.Variant.Microcode_always_on) );
    ("CHEx86: Micro-code Prediction Driven", Runner.prediction);
    ("ASan", Runner.Asan);
  ]

(* Shared by Figure 6 and Table IV.  Each cell is a supervised result:
   a faulted (workload x config) run degrades that workload's derived
   numbers instead of killing both targets. *)
let fig6_runs () =
  let workloads = workloads () in
  let report =
    Runner.prefetch_supervised
      (List.concat_map
         (fun w ->
           List.map (fun (_, config) -> Runner.job ~scale config w) fig6_configs)
         workloads)
  in
  ( List.map
      (fun (w : Chex86_workloads.Bench_spec.t) ->
        ( w,
          List.map
            (fun (name, config) -> (name, Runner.run_workload_result ~scale config w))
            fig6_configs ))
      workloads,
    report )

let figure6 () =
  let runs, report = fig6_runs () in
  (* Workloads where all six configurations completed chart as before;
     a workload with any faulted configuration is listed under the
     chart instead (its normalizations are undefined). *)
  let complete, degraded =
    List.partition
      (fun (_, per_config) ->
        List.for_all (fun (_, r) -> Result.is_ok r) per_config)
      runs
  in
  let groups =
    List.map
      (fun ((w : Chex86_workloads.Bench_spec.t), per_config) ->
        let run name = Result.get_ok (List.assoc name per_config) in
        let baseline = float_of_int (run "Insecure BaseLine").Runner.cycles in
        ( w.name,
          List.map
            (fun (name, _) ->
              baseline /. float_of_int (max 1 (run name).Runner.cycles))
            per_config ))
      complete
  in
  let degraded_lines =
    List.map
      (fun ((w : Chex86_workloads.Bench_spec.t), per_config) ->
        let cells =
          List.filter_map
            (fun (name, r) ->
              match r with
              | Ok _ -> None
              | Error fault -> Some (Printf.sprintf "%s %s" name (fault_cell fault)))
            per_config
        in
        Printf.sprintf "  %s not charted: %s" w.name (String.concat ", " cells))
      degraded
  in
  let series_names = List.map fst fig6_configs in
  (* Normalized micro-op expansion for the two instrumenting schemes. *)
  let uop_rows =
    List.map
      (fun ((w : Chex86_workloads.Bench_spec.t), per_config) ->
        let exp name =
          match (List.assoc name per_config, List.assoc "Insecure BaseLine" per_config)
          with
          | Error fault, _ | _, Error fault -> fault_cell fault
          | Ok r, Ok base ->
            Printf.sprintf "%.2fx"
              (float_of_int r.Runner.uops /. float_of_int (max 1 base.Runner.uops))
        in
        [
          w.name;
          exp "CHEx86: Micro-code Prediction Driven";
          exp "ASan";
        ])
      runs
  in
  (* Headline ratios, over the fully completed workloads. *)
  let ratios pick =
    List.filter_map
      (fun ((w : Chex86_workloads.Bench_spec.t), per_config) ->
        if pick w.name then
          let cyc name =
            float_of_int (Result.get_ok (List.assoc name per_config)).Runner.cycles
          in
          Some
            ( cyc "CHEx86: Micro-code Prediction Driven" /. cyc "Insecure BaseLine",
              cyc "ASan" /. cyc "CHEx86: Micro-code Prediction Driven" )
        else None)
      complete
  in
  let summarize label pick =
    let rs = ratios pick in
    let slowdown = geomean (List.map fst rs) in
    let vs_asan = geomean (List.map snd rs) in
    Printf.sprintf
      "%s: CHEx86 (prediction) slowdown vs insecure: %.1f%%; speedup vs ASan: %.2fx"
      label
      ((slowdown -. 1.) *. 100.)
      vs_asan
  in
  String.concat "\n"
    ([
       Render.banner "Figure 6 (top): Normalized Performance (1.0 = insecure baseline)";
       Render.grouped_bars ~series_names groups;
     ]
    @ degraded_lines
    @ [
        "";
        Render.banner "Figure 6 (bottom): Normalized uop Expansion";
        Render.table ~header:[ "Benchmark"; "CHEx86 pred"; "ASan" ] uop_rows;
        "";
        summarize "SPEC" is_spec;
        summarize "PARSEC" (fun n -> not (is_spec n));
      ]
    @ fault_footer report)

(* --- Figure 7 ------------------------------------------------------------- *)

let cache_variant ~cap_entries ~alias_sets =
  Runner.Chex
    (Chex86.Variant.make ~cap_cache_entries:cap_entries ~alias_cache_sets:alias_sets
       Chex86.Variant.Microcode_prediction)

(* Rates computed on fewer than 200 accesses are noise (suites with
   almost no spilled-pointer reloads) and rendered as n/a. *)
let alias_miss_rate counters =
  let hit = Counter.get counters "aliascache.hit"
  and victim = Counter.get counters "aliascache.victim_hit"
  and miss = Counter.get counters "aliascache.miss" in
  if hit + victim + miss < 200 then None
  else Some (float_of_int miss /. float_of_int (hit + victim + miss))

let cap_miss_rate counters =
  Counter.ratio counters ~num:"capcache.miss" ~den:"capcache.hit"

let figure7 () =
  let workloads = workloads () in
  let report =
    Runner.prefetch_supervised
      (List.concat_map
         (fun w ->
           [
             Runner.job ~tag:"cc64" ~scale
               (cache_variant ~cap_entries:64 ~alias_sets:128)
               w;
             Runner.job ~tag:"cc128" ~scale
               (cache_variant ~cap_entries:128 ~alias_sets:256)
               w;
           ])
         workloads)
  in
  let rows =
    List.map
      (fun (w : Chex86_workloads.Bench_spec.t) ->
        let small =
          Runner.run_workload_result ~tag:"cc64" ~scale
            (cache_variant ~cap_entries:64 ~alias_sets:128)
            w
        and big =
          Runner.run_workload_result ~tag:"cc128" ~scale
            (cache_variant ~cap_entries:128 ~alias_sets:256)
            w
        in
        let opt = function Some r -> Render.percent r | None -> "n/a" in
        let cap run = Render.percent (cap_miss_rate run.Runner.counters)
        and alias run = opt (alias_miss_rate run.Runner.counters) in
        let cell f = function Ok run -> f run | Error fault -> fault_cell fault in
        [
          w.name;
          cell cap small;
          cell cap big;
          cell alias small;
          cell alias big;
        ])
      workloads
  in
  String.concat "\n"
    ([
       Render.banner "Figure 7: Capability and Alias Cache Miss Rates";
       Render.table
         ~header:
           [ "Benchmark"; "Cap$ 64e"; "Cap$ 128e"; "Alias$ 256e"; "Alias$ 512e" ]
         rows;
       "(n/a: fewer than 200 alias-cache accesses - negligible spilled-pointer reloads)";
     ]
    @ fault_footer report)

(* --- Figure 8 ------------------------------------------------------------- *)

let mispredict_rate counters =
  let events = Counter.get counters "alias.pred_events" in
  if events = 0 then 0.
  else
    float_of_int
      (Counter.get counters "alias.pred_pna0"
      + Counter.get counters "alias.pred_p0an"
      + Counter.get counters "alias.pred_pman")
    /. float_of_int events

let squash_fraction run =
  let squash = Counter.get run.Runner.counters "pipeline.squash_cycles" in
  if run.Runner.cycles = 0 then 0.
  else float_of_int squash /. float_of_int run.Runner.cycles

let predictor_variant entries =
  Runner.Chex
    (Chex86.Variant.make ~predictor_entries:entries Chex86.Variant.Microcode_prediction)

let figure8 () =
  let workloads = workloads () in
  let report =
    Runner.prefetch_supervised
      (List.concat_map
         (fun w ->
           [
             Runner.job ~tag:"pred1024" ~scale (predictor_variant 1024) w;
             Runner.job ~tag:"pred2048" ~scale (predictor_variant 2048) w;
             Runner.job ~scale Runner.insecure w;
             Runner.job ~scale Runner.prediction w;
           ])
         workloads)
  in
  let cell f = function Ok run -> f run | Error fault -> fault_cell fault in
  let rows =
    List.map
      (fun (w : Chex86_workloads.Bench_spec.t) ->
        let p1024 =
          Runner.run_workload_result ~tag:"pred1024" ~scale (predictor_variant 1024) w
        and p2048 =
          Runner.run_workload_result ~tag:"pred2048" ~scale (predictor_variant 2048) w
        and base = Runner.run_workload_result ~scale Runner.insecure w
        and pred = Runner.run_workload_result ~scale Runner.prediction w in
        let mispred run = Render.percent (mispredict_rate run.Runner.counters)
        and squash run = Render.percent (squash_fraction run) in
        [
          w.name;
          cell mispred p1024;
          cell mispred p2048;
          cell squash base;
          cell squash pred;
        ])
      workloads
  in
  (* Faulted runs drop out of the headline geomean. *)
  let accuracies =
    List.filter_map
      (fun (w : Chex86_workloads.Bench_spec.t) ->
        match
          Runner.run_workload_result ~tag:"pred1024" ~scale (predictor_variant 1024) w
        with
        | Ok run -> Some (1. -. mispredict_rate run.Runner.counters)
        | Error _ -> None)
      workloads
  in
  String.concat "\n"
    ([
       Render.banner
         "Figure 8: Alias Misprediction Rate (1024/2048-entry predictor) and Squash Time";
       Render.table
         ~header:
           [
             "Benchmark";
             "Mispred 1024e";
             "Mispred 2048e";
             "Squash% base";
             "Squash% CHEx86";
           ]
         rows;
       Printf.sprintf "Average alias prediction accuracy: %s"
         (Render.percent (geomean accuracies));
     ]
    @ fault_footer report)

(* --- Figure 9 ------------------------------------------------------------- *)

let mb bytes = float_of_int bytes /. (1024. *. 1024.)

let figure9 () =
  let workloads = workloads () in
  let freq = 3.4e9 in
  let report =
    Runner.prefetch_supervised
      (List.concat_map
         (fun w ->
           [
             Runner.job ~scale Runner.insecure w;
             Runner.job ~scale Runner.Asan w;
             Runner.job ~scale Runner.prediction w;
           ])
         workloads)
  in
  let cell f = function Ok run -> f run | Error fault -> fault_cell fault in
  let rows =
    List.map
      (fun (w : Chex86_workloads.Bench_spec.t) ->
        let base = Runner.run_workload_result ~scale Runner.insecure w
        and asan = Runner.run_workload_result ~scale Runner.Asan w
        and pred = Runner.run_workload_result ~scale Runner.prediction w in
        let storage (r : Runner.run) =
          Printf.sprintf "%.2f" (mb (r.resident_bytes + r.shadow_bytes))
        in
        let bandwidth (r : Runner.run) =
          Printf.sprintf "%.0f"
            (if r.cycles = 0 then 0.
             else
               float_of_int r.mem_bytes
               /. (float_of_int r.cycles /. freq)
               /. (1024. *. 1024.))
        in
        [
          w.name;
          cell storage base;
          cell storage asan;
          cell storage pred;
          cell bandwidth base;
          cell bandwidth pred;
        ])
      workloads
  in
  String.concat "\n"
    ([
       Render.banner "Figure 9: Memory Storage Overhead (MB) and Bandwidth (MB/s)";
       Render.table
         ~header:
           [
             "Benchmark";
             "RSS base";
             "RSS ASan";
             "RSS CHEx86";
             "BW base";
             "BW CHEx86";
           ]
         rows;
     ]
    @ fault_footer report)

(* --- Table I ---------------------------------------------------------------- *)

(* Rule construction/validation: run representative workloads and suites
   with the hardware checker attached, report its agreement rate, then
   print the resulting database. *)
let table1 () =
  (* The paper constructs/validates the database "while running C and
     C++ benchmarks from the SPEC and PARSEC suites, the RIPE security
     suite, LLVM's Address Sanitizer test suite, and the How2Heap
     suite": validate over representatives of all five sources. *)
  let with_checker program =
    let checker = ref None in
    let configure m =
      let c = Chex86.Checker.create (Chex86.Monitor.cap_table m) in
      Chex86.Monitor.attach_checker m c;
      checker := Some c
    in
    ignore (Runner.run_program ~timing:false ~configure Runner.prediction program);
    !checker
  in
  let checker_runs =
    List.map
      (fun name -> (name, with_checker ((W.find name).build ~scale:1)))
      [ "mcf"; "perlbench"; "canneal"; "freqmine" ]
    @ List.map
        (fun name ->
          (name, with_checker ((Chex86_exploits.Exploits.find name).build ())))
        [
          "ripe/heap-funcptr-direct-nopsled-memcpy-32";
          "asan/heap-oob-write";
          "how2heap/first_fit";
        ]
  in
  let validation_rows =
    List.map
      (fun (name, checker) ->
        match checker with
        | Some c ->
          [
            name;
            string_of_int (Chex86.Checker.checked c);
            Render.percent (Chex86.Checker.agreement_rate c);
            string_of_int (List.length (Chex86.Checker.mismatches c));
          ]
        | None -> [ name; "-"; "-"; "-" ])
      checker_runs
  in
  let rules = Chex86.Rules.create () in
  String.concat "\n"
    [
      Render.banner "Table I: Pointer Tracking Rule Database";
      Render.table
        ~header:[ "uop"; "Addr. Mode"; "Example"; "Capability Propagation"; "Code Example" ]
        (Chex86.Rules.render_rows rules);
      "";
      "Hardware-checker validation (exhaustive shadow-table search vs tracker):";
      Render.table
        ~header:[ "Workload"; "uops checked"; "Agreement"; "Mismatches" ]
        validation_rows;
    ]

(* --- Table II --------------------------------------------------------------- *)

let table2 () =
  let classify_program (name, build) =
    let trace = ref [] in
    let configure m =
      Chex86.Monitor.set_on_check m (fun ~pc:_ ~pid ~is_store ->
          (* Record one PID per dereference (the RMW's store side) of a
             heap object; the global pattern and order tables (PIDs 1-2) are filtered
             out. *)
          if is_store && pid > 2 then trace := pid :: !trace)
    in
    let _ = Runner.run_program ~timing:false ~configure Runner.prediction (build ()) in
    let seq = List.rev !trace in
    let classified = Chex86.Pattern_classifier.classify seq in
    let sample =
      seq |> List.filteri (fun i _ -> i < 7) |> List.map string_of_int
      |> String.concat " "
    in
    (name, Chex86.Pattern_classifier.name classified, sample)
  in
  let rows =
    List.map
      (fun (name, build) ->
        let _, got, sample = classify_program (name, build) in
        [ name; got; sample ])
      Chex86_workloads.Patterns.all
  in
  String.concat "\n"
    [
      Render.banner "Table II: Temporal Pointer Access Patterns (from machine-level PID streams)";
      Render.table ~header:[ "Generated pattern"; "Classified as"; "Example PIDs" ] rows;
    ]

(* --- Table III --------------------------------------------------------------- *)

let table3 () =
  String.concat "\n"
    [
      Render.banner "Table III: Hardware Configuration of the Simulated System";
      Render.table
        ~header:[ "Parameter"; "Value"; "Parameter"; "Value" ]
        (let preset = Chex86_machine.Preset.current () in
         Chex86_machine.Config.rows ~hier:preset.Chex86_machine.Preset.hier
           preset.Chex86_machine.Preset.core);
    ]

(* --- Table IV ---------------------------------------------------------------- *)

let table4 () =
  let runs, report = fig6_runs () in
  (* A faulted baseline or prediction run drops its workload from the
     measured geomeans; the fault is reported in the footer. *)
  let measured =
    List.filter_map
      (fun ((w : Chex86_workloads.Bench_spec.t), per_config) ->
        match
          ( is_spec w.name,
            List.assoc "Insecure BaseLine" per_config,
            List.assoc "CHEx86: Micro-code Prediction Driven" per_config )
        with
        | true, Ok base, Ok pred ->
          Some
            ( float_of_int pred.Runner.cycles /. float_of_int base.Runner.cycles,
              float_of_int (pred.Runner.resident_bytes + pred.Runner.shadow_bytes)
              /. float_of_int (max 1 base.Runner.resident_bytes) )
        | _ -> None)
      runs
  in
  let perf = (geomean (List.map fst measured) -. 1.) *. 100. in
  let worst_perf =
    (List.fold_left (fun acc (p, _) -> max acc p) 1. measured -. 1.) *. 100.
  in
  let storage = (geomean (List.map snd measured) -. 1.) *. 100. in
  let worst_storage =
    (List.fold_left (fun acc (_, s) -> max acc s) 1. measured -. 1.) *. 100.
  in
  let static =
    [
      [ "Hardbound"; "no"; "yes"; "Shadow"; "Partial"; "5% (Olden)"; "55% (Olden)" ];
      [ "Watchdog"; "yes"; "yes"; "Shadow"; "Partial"; "24% (SPEC2000)"; "56% (SPEC2000)" ];
      [ "Intel MPX"; "no"; "yes"; "Inline"; "no"; "80% (SPEC2006)"; "150% (SPEC2006)" ];
      [ "BOGO"; "yes"; "yes"; "Inline"; "no"; "60% (SPEC2006)"; "36% (SPEC2006)" ];
      [ "CHERI"; "no"; "yes"; "Inline"; "no"; "18% (Olden)"; "90% (Olden)" ];
      [ "CHERIvoke"; "yes"; "no"; "Inline"; "no"; "4.7% (SPEC2006)"; "12.5% (SPEC2006)" ];
      [ "REST"; "yes"; "yes"; "Shadow"; "no"; "23% (SPEC2006)"; "N/A" ];
      [ "Califorms"; "yes"; "yes"; "Shadow"; "no"; "16% (SPEC2006)"; "N/A" ];
      [
        "CHEx86 (measured)";
        "yes";
        "yes";
        "Shadow";
        "yes";
        Printf.sprintf "%.0f%% (avg) %.0f%% (worst)" perf worst_perf;
        Printf.sprintf "%.0f%% (avg) %.0f%% (worst)" storage worst_storage;
      ];
    ]
  in
  String.concat "\n"
    ([
       Render.banner "Table IV: Comparison with Prior Memory Safety Techniques";
       Render.table
         ~header:
           [ "Proposal"; "Temporal"; "Spatial"; "Metadata"; "BinCompat"; "Performance"; "Storage" ]
         static;
       "(prior-work rows are the paper's reported numbers; the CHEx86 row is measured)";
     ]
    @ fault_footer report)

(* --- Security ----------------------------------------------------------------- *)

let security () =
  let slots, stats, report =
    Security.sweep_stats_supervised Chex86_exploits.Exploits.all
  in
  (* Completed evaluations tabulate as before; faulted exploits are
     listed by name (and counted in the fault report) instead of
     silently vanishing from the totals. *)
  let results =
    List.filter_map (fun (_, r) -> Result.to_option r) slots
  in
  let faulted_lines =
    List.filter_map
      (fun ((e : Chex86_exploits.Exploit.t), r) ->
        match r with
        | Ok _ -> None
        | Error fault ->
          Some (Printf.sprintf "  %s: %s" e.Chex86_exploits.Exploit.name (fault_cell fault)))
      slots
  in
  let suites =
    [
      Chex86_exploits.Exploit.Ripe;
      Chex86_exploits.Exploit.Asan_suite;
      Chex86_exploits.Exploit.How2heap;
    ]
  in
  let rows =
    List.map
      (fun suite ->
        let s = Security.summarize suite results in
        [
          Chex86_exploits.Exploit.suite_name suite;
          string_of_int s.Security.total;
          string_of_int s.Security.blocked;
          string_of_int s.Security.expected_class;
          string_of_int s.Security.prevented;
          string_of_int s.Security.insecure_corrupts;
          string_of_int s.Security.insecure_aborts;
        ])
      suites
  in
  let breakdown =
    List.map
      (fun (cls, n) -> [ cls; string_of_int n ])
      (Security.class_breakdown results)
  in
  (* Totals from the merged worker stats (tallied task-privately on the
     domain pool, merged in exploit order). *)
  let merged = stats.Pool.counters in
  let totals =
    Printf.sprintf "Merged sweep stats: %d/%d blocked, %d with the expected class"
      (Counter.get merged "sweep.blocked")
      (Counter.get merged "sweep.total")
      (Counter.get merged "sweep.expected_class")
  in
  let insn_spread =
    match List.assoc_opt "sweep.protected_macro_insns" stats.Pool.histograms with
    (* A merged-but-empty histogram (every task faulted, or a filtered
       sweep ran zero exploits) must not print as a real all-zero
       spread; [Histogram.pp] makes the emptiness explicit. *)
    | Some h when Chex86_stats.Histogram.count h > 0 ->
      Printf.sprintf "Protected-run macro-ops per exploit: p50=%d p99=%d max=%d"
        (Chex86_stats.Histogram.percentile h 0.50)
        (Chex86_stats.Histogram.percentile h 0.99)
        (Chex86_stats.Histogram.max_value h)
    | Some h ->
      Format.asprintf "Protected-run macro-ops per exploit: %a" Chex86_stats.Histogram.pp h
    | None -> ""
  in
  String.concat "\n"
    ([
       Render.banner "Security Evaluation (Section VII-A)";
       Render.table
         ~header:
           [
             "Suite";
             "Exploits";
             "Blocked";
             "Expected class";
             "Corruption prevented";
             "Corrupts insecure";
             "Allocator aborts";
           ]
         rows;
       "";
       totals;
       insn_spread;
       "";
       "Violation-class breakdown of blocked exploits:";
       Render.table ~header:[ "Class"; "Count" ] breakdown;
     ]
    @ (if faulted_lines = [] then []
       else ("" :: "Exploits not evaluated (faulted):" :: faulted_lines))
    @ fault_footer report)

let all =
  [
    ("figure1", figure1);
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("figure3", figure3);
    ("figure6", figure6);
    ("figure7", figure7);
    ("figure8", figure8);
    ("table4", table4);
    ("figure9", figure9);
    ("security", security);
  ]
