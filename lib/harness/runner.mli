(** Unified runner over protection configurations, with memoized
    workload runs shared between bench targets. *)

type config = Chex of Chex86.Variant.t | Asan

val insecure : config
val prediction : config
val config_name : config -> string

type outcome =
  | Completed
  | Blocked of Chex86.Violation.kind
  | Aborted of string  (** allocator integrity abort *)
  | Faulted of string
  | Budget_exhausted

type run = {
  outcome : outcome;
  macro_insns : int;
  uops : int;
  uops_injected : int;
  uops_killed : int;
  cycles : int;
  counters : Chex86_stats.Counter.group;
  shadow_bytes : int;
  resident_bytes : int;
  mem_bytes : int;
  pwned : bool;  (** the exploit pwned flag, read back from guest memory *)
  profile : Chex86_os.Heap_profile.report option;
}

(** [heap] selects the allocator personality (default [Glibc]); the
    ASan baseline ignores it. *)
val run_program :
  ?timing:bool ->
  ?max_insns:int ->
  ?profile:bool ->
  ?configure:(Chex86.Monitor.t -> unit) ->
  ?heap:Chex86_os.Allocator.personality ->
  config ->
  Chex86_isa.Program.t ->
  run

(** Execute on the SMP driver ({!Chex86.Smp.run}): one hardware thread
    per entry label in [threads], interleaved round-robin [quantum]
    macro-ops at a time.  Uop and memory-traffic fields are reported as
    0 (per-engine notions); an [Asan] config yields [Faulted] — the
    ASan baseline has no SMP monitor. *)
val run_threads :
  ?timing:bool ->
  ?max_insns:int ->
  ?heap:Chex86_os.Allocator.personality ->
  quantum:int ->
  threads:string list ->
  config ->
  Chex86_isa.Program.t ->
  run

(** {2 On-disk result store}

    Checkpoint/resume and shared warm cache for sweeps: memoized runs
    are spilled under a cache directory ([_chex86_cache/] by default,
    [--cache-dir] on the CLIs), keyed by the memo key plus a content
    digest of the built program, so an interrupted invocation resumes
    where it stopped, repeated invocations skip re-simulation, and
    concurrent processes share one cache. Disabled until [configure]d.

    v2 layout: entries live in [objects/<shard>/], sharded by the first
    byte of the entry's content digest; legacy flat v1 entries are read
    through and migrated on first hit. Publish is an O_EXCL tmp write
    followed by an atomic link/rename, so readers never observe partial
    entries and two processes racing on one key are benign (the loser
    counts [race_lost] — a hit in effect). Corrupt entries are
    quarantined into [quarantine/] with a warning and re-simulated —
    never a crash. A [--store-max-bytes] budget evicts oldest-first,
    never touching entries the in-flight sweep has pinned. On
    ENOSPC/EROFS writes degrade to memo-only so the sweep completes. *)
module Store : sig
  val default_dir : string
  (** ["_chex86_cache"] *)

  (** Enable the store; [dir] is created on first write. Clears pins
      and resets the degradation latch. *)
  val configure : dir:string -> unit

  val disable : unit -> unit
  val enabled : unit -> bool
  val dir : unit -> string option

  (** Size budget for eviction; [None] (the default) never evicts. *)
  val set_max_bytes : int option -> unit

  val max_bytes : unit -> int option

  type stats = {
    hits : int;
    misses : int;
    writes : int;  (** entries this process published (won the race) *)
    discarded : int;  (** corrupt entries rejected on load *)
    tmp_reclaimed : int;
        (** stale [.tmp-<pid>-*] files swept, guarded by writer-pid
            liveness {e and} a safety age (pid reuse) *)
    quarantined : int;  (** corrupt entries moved into [quarantine/] *)
    race_lost : int;  (** publishes beaten by a concurrent writer *)
    evicted : int;  (** entries removed by the size budget *)
    migrated : int;  (** v1 entries rewritten into the v2 tree *)
    write_errors : int;  (** failed entry writes (any cause) *)
    degraded : bool;  (** store is memo-only after ENOSPC/EROFS *)
  }

  val stats : unit -> stats
  val reset_stats : unit -> unit

  (** Direct entry IO, exposed for the executables and tests. [key] is
      the memo key, [digest] the program digest. *)
  val load : key:string -> digest:string -> run option

  val save : key:string -> digest:string -> run -> unit

  (** [(v1 path, v2 path)] for an entry under the configured directory;
      [None] when the store is disabled. *)
  val entry_paths : key:string -> digest:string -> (string * string) option

  (** Forget the entries pinned by this process, making them eviction
      candidates again (tests / end of sweep). *)
  val clear_pins : unit -> unit

  (** {3 Offline maintenance}

      These operate on an explicit [dir] and do not require the store
      to be [configure]d; [chex86_sim store stats|gc|fsck] wraps them. *)

  type disk_stats = {
    d_entries : int;
    d_bytes : int;
    d_v1 : int;  (** legacy flat entries not yet migrated *)
    d_tmp : int;
    d_quarantine : int;
  }

  val disk_stats : dir:string -> disk_stats

  type gc_report = {
    g_entries : int;  (** entries remaining after the pass *)
    g_bytes : int;  (** bytes remaining after the pass *)
    g_evicted : int;
    g_evicted_bytes : int;
    g_tmp_reclaimed : int;
  }

  (** Reclaim stale tmp files, then evict oldest-first to [?max_bytes]
      (defaults to the process-wide budget; no budget = no eviction). *)
  val gc : dir:string -> ?max_bytes:int -> unit -> gc_report

  type fsck_issue = { f_path : string; f_problem : string }

  type fsck_report = {
    f_scanned : int;  (** published entries examined *)
    f_ok : int;  (** entries that parsed and verified *)
    f_v1 : int;  (** of which legacy v1 *)
    f_bytes : int;  (** bytes across valid entries *)
    f_tmp_pending : int;  (** young tmp files left in place *)
    f_tmp_reclaimed : int;  (** stale tmp files removed by this pass *)
    f_quarantined : int;  (** corrupt entries moved aside by this pass *)
    f_quarantine_backlog : int;  (** files already in [quarantine/] *)
    f_issues : fsck_issue list;  (** invariant violations *)
  }

  (** Verify every store invariant the crash model promises: entries
      parse and digest-verify, v2 entries sit in their named shard, no
      v1 entries inside [objects/], no foreign files. Torn tmp files
      are {e not} violations (they are what a SIGKILL leaves); stale
      ones are reclaimed, corrupt and misplaced entries quarantined, so
      a second run comes back clean. *)
  val fsck : dir:string -> fsck_report

  val fsck_clean : fsck_report -> bool
  val fsck_json : fsck_report -> Chex86_stats.Json.t
end

(** Content digest of a built program; part of the store key, so
    editing a workload builder invalidates its cached runs. *)
val program_digest : Chex86_isa.Program.t -> string

(** Memoized on (workload, config, scale, timing, profile, tag). The
    memo is domain-safe; repeated calls return the same [run] value.
    On a memo miss the enabled {!Store} is consulted before simulating
    (except for runs with a [?configure] hook, whose effects a stored
    result can't capture). *)
val run_workload :
  ?tag:string ->
  ?timing:bool ->
  ?profile:bool ->
  ?configure:(Chex86.Monitor.t -> unit) ->
  scale:int ->
  config ->
  Chex86_workloads.Bench_spec.t ->
  run

(** [run_workload] that reports instead of simulating when a
    supervised prefetch already classified the job as faulted, so
    figure assembly can render an explicit FAULTED / TIMEOUT cell. *)
val run_workload_result :
  ?tag:string ->
  ?timing:bool ->
  ?profile:bool ->
  ?configure:(Chex86.Monitor.t -> unit) ->
  scale:int ->
  config ->
  Chex86_workloads.Bench_spec.t ->
  (run, Pool.fault) result

(** A (workload x config) simulation task for the parallel prefetcher;
    the fields mirror [run_workload]'s memo key. *)
type job

val job :
  ?tag:string ->
  ?timing:bool ->
  ?profile:bool ->
  scale:int ->
  config ->
  Chex86_workloads.Bench_spec.t ->
  job

val job_key : job -> string

(** Simulate the not-yet-memoized jobs on the domain pool in batched
    chunks ([?jobs] defaults to [Pool.jobs ()], [?batch_size] to the
    process-wide knob / auto-sizing) and publish the results into the
    memo in job order, so the serial figure-assembly code then hits the
    memo. Results are bit-identical to running the same jobs serially,
    at any batch size. *)
val prefetch : ?jobs:int -> ?batch_size:int -> job list -> unit

(** Register the ["bench"] remote task kind (workload lookup by name,
    memo-key fields via a marshalled arg) so prefetches can run in
    worker processes; called by the worker binary at startup and by the
    supervisor before routing. Idempotent. *)
val register_remote : unit -> unit

(** [prefetch] with per-task supervision: a crashing or wedged job is
    recorded in the fault table (see {!run_workload_result} /
    {!faulted_jobs}) and the rest of the sweep — including the faulted
    job's chunk-mates — completes. Jobs already faulted are not retried
    by later prefetches sharing the key. When workers are configured
    ({!Remote.enabled}) the jobs run in worker processes instead
    ([?jobs] is ignored); a lost worker surfaces as [Pool.Worker_lost]
    on the in-flight job. *)
val prefetch_supervised :
  ?jobs:int ->
  ?batch_size:int ->
  ?retries:int ->
  ?task_timeout:float ->
  job list ->
  Pool.fault_report

(** Every job a supervised prefetch classified as faulted this process,
    as [(job key, fault)], sorted by key. *)
val faulted_jobs : unit -> (string * Pool.fault) list

(** Test hook: forget every memoized run and recorded fault (and reset
    store stats) so tests can exercise the cold path repeatedly. *)
val reset_for_tests : unit -> unit
