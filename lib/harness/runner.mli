(** Unified runner over protection configurations, with memoized
    workload runs shared between bench targets. *)

type config = Chex of Chex86.Variant.t | Asan

val insecure : config
val prediction : config
val config_name : config -> string

type outcome =
  | Completed
  | Blocked of Chex86.Violation.kind
  | Aborted of string  (** allocator integrity abort *)
  | Faulted of string
  | Budget_exhausted

type run = {
  outcome : outcome;
  macro_insns : int;
  uops : int;
  uops_injected : int;
  uops_killed : int;
  cycles : int;
  counters : Chex86_stats.Counter.group;
  shadow_bytes : int;
  resident_bytes : int;
  mem_bytes : int;
  pwned : bool;  (** the exploit pwned flag, read back from guest memory *)
  profile : Chex86_os.Heap_profile.report option;
}

(** [heap] selects the allocator personality (default [Glibc]); the
    ASan baseline ignores it. *)
val run_program :
  ?timing:bool ->
  ?max_insns:int ->
  ?profile:bool ->
  ?configure:(Chex86.Monitor.t -> unit) ->
  ?heap:Chex86_os.Allocator.personality ->
  config ->
  Chex86_isa.Program.t ->
  run

(** Execute on the SMP driver ({!Chex86.Smp.run}): one hardware thread
    per entry label in [threads], interleaved round-robin [quantum]
    macro-ops at a time.  Uop and memory-traffic fields are reported as
    0 (per-engine notions); an [Asan] config yields [Faulted] — the
    ASan baseline has no SMP monitor. *)
val run_threads :
  ?timing:bool ->
  ?max_insns:int ->
  ?heap:Chex86_os.Allocator.personality ->
  quantum:int ->
  threads:string list ->
  config ->
  Chex86_isa.Program.t ->
  run

(** {2 On-disk result store}

    Checkpoint/resume for sweeps: memoized runs are spilled under a
    cache directory ([_chex86_cache/] by default, [--cache-dir] on the
    CLIs), keyed by the memo key plus a content digest of the built
    program, so an interrupted invocation resumes where it stopped and
    repeated invocations skip re-simulation. Disabled until
    [configure]d. Entries are written atomically (tmp + rename) and
    validated on load (format version + payload digest); corrupt
    entries are discarded with a warning and re-simulated — never a
    crash. *)
module Store : sig
  val default_dir : string
  (** ["_chex86_cache"] *)

  (** Enable the store; [dir] is created on first write. *)
  val configure : dir:string -> unit

  val disable : unit -> unit
  val enabled : unit -> bool
  val dir : unit -> string option

  type stats = {
    hits : int;
    misses : int;
    writes : int;
    discarded : int;
    tmp_reclaimed : int;
        (** stale [.tmp-<pid>-*] files swept on [configure]/first write,
            guarded by writer-pid liveness or age *)
  }

  val stats : unit -> stats
  val reset_stats : unit -> unit
end

(** Content digest of a built program; part of the store key, so
    editing a workload builder invalidates its cached runs. *)
val program_digest : Chex86_isa.Program.t -> string

(** Memoized on (workload, config, scale, timing, profile, tag). The
    memo is domain-safe; repeated calls return the same [run] value.
    On a memo miss the enabled {!Store} is consulted before simulating
    (except for runs with a [?configure] hook, whose effects a stored
    result can't capture). *)
val run_workload :
  ?tag:string ->
  ?timing:bool ->
  ?profile:bool ->
  ?configure:(Chex86.Monitor.t -> unit) ->
  scale:int ->
  config ->
  Chex86_workloads.Bench_spec.t ->
  run

(** [run_workload] that reports instead of simulating when a
    supervised prefetch already classified the job as faulted, so
    figure assembly can render an explicit FAULTED / TIMEOUT cell. *)
val run_workload_result :
  ?tag:string ->
  ?timing:bool ->
  ?profile:bool ->
  ?configure:(Chex86.Monitor.t -> unit) ->
  scale:int ->
  config ->
  Chex86_workloads.Bench_spec.t ->
  (run, Pool.fault) result

(** A (workload x config) simulation task for the parallel prefetcher;
    the fields mirror [run_workload]'s memo key. *)
type job

val job :
  ?tag:string ->
  ?timing:bool ->
  ?profile:bool ->
  scale:int ->
  config ->
  Chex86_workloads.Bench_spec.t ->
  job

val job_key : job -> string

(** Simulate the not-yet-memoized jobs on the domain pool in batched
    chunks ([?jobs] defaults to [Pool.jobs ()], [?batch_size] to the
    process-wide knob / auto-sizing) and publish the results into the
    memo in job order, so the serial figure-assembly code then hits the
    memo. Results are bit-identical to running the same jobs serially,
    at any batch size. *)
val prefetch : ?jobs:int -> ?batch_size:int -> job list -> unit

(** Register the ["bench"] remote task kind (workload lookup by name,
    memo-key fields via a marshalled arg) so prefetches can run in
    worker processes; called by the worker binary at startup and by the
    supervisor before routing. Idempotent. *)
val register_remote : unit -> unit

(** [prefetch] with per-task supervision: a crashing or wedged job is
    recorded in the fault table (see {!run_workload_result} /
    {!faulted_jobs}) and the rest of the sweep — including the faulted
    job's chunk-mates — completes. Jobs already faulted are not retried
    by later prefetches sharing the key. When workers are configured
    ({!Remote.enabled}) the jobs run in worker processes instead
    ([?jobs] is ignored); a lost worker surfaces as [Pool.Worker_lost]
    on the in-flight job. *)
val prefetch_supervised :
  ?jobs:int ->
  ?batch_size:int ->
  ?retries:int ->
  ?task_timeout:float ->
  job list ->
  Pool.fault_report

(** Every job a supervised prefetch classified as faulted this process,
    as [(job key, fault)], sorted by key. *)
val faulted_jobs : unit -> (string * Pool.fault) list

(** Test hook: forget every memoized run and recorded fault (and reset
    store stats) so tests can exercise the cold path repeatedly. *)
val reset_for_tests : unit -> unit
