(** Unified runner over protection configurations, with memoized
    workload runs shared between bench targets. *)

type config = Chex of Chex86.Variant.t | Asan

val insecure : config
val prediction : config
val config_name : config -> string

type outcome =
  | Completed
  | Blocked of Chex86.Violation.kind
  | Aborted of string  (** allocator integrity abort *)
  | Faulted of string
  | Budget_exhausted

type run = {
  outcome : outcome;
  macro_insns : int;
  uops : int;
  uops_injected : int;
  uops_killed : int;
  cycles : int;
  counters : Chex86_stats.Counter.group;
  shadow_bytes : int;
  resident_bytes : int;
  mem_bytes : int;
  pwned : bool;  (** the exploit pwned flag, read back from guest memory *)
  profile : Chex86_os.Heap_profile.report option;
}

val run_program :
  ?timing:bool ->
  ?max_insns:int ->
  ?profile:bool ->
  ?configure:(Chex86.Monitor.t -> unit) ->
  config ->
  Chex86_isa.Program.t ->
  run

(** Memoized on (workload, config, scale, timing, profile, tag). The
    memo is domain-safe; repeated calls return the same [run] value. *)
val run_workload :
  ?tag:string ->
  ?timing:bool ->
  ?profile:bool ->
  ?configure:(Chex86.Monitor.t -> unit) ->
  scale:int ->
  config ->
  Chex86_workloads.Bench_spec.t ->
  run

(** A (workload x config) simulation task for the parallel prefetcher;
    the fields mirror [run_workload]'s memo key. *)
type job

val job :
  ?tag:string ->
  ?timing:bool ->
  ?profile:bool ->
  scale:int ->
  config ->
  Chex86_workloads.Bench_spec.t ->
  job

val job_key : job -> string

(** Simulate the not-yet-memoized jobs on the domain pool ([?jobs]
    defaults to [Pool.jobs ()]) and publish the results into the memo in
    job order, so the serial figure-assembly code then hits the memo.
    Results are bit-identical to running the same jobs serially. *)
val prefetch : ?jobs:int -> job list -> unit
