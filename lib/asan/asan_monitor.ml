(* AddressSanitizer baseline monitor.

   Models the compiler instrumentation: every load and store micro-op is
   preceded by a three-micro-op software check sequence — shadow address
   computation, shadow byte load (real D-cache traffic in shadow space),
   and compare+branch — which is where ASan's >2x micro-op expansion in
   Fig 6 (bottom) comes from.  The functional check happens at the
   compare micro-op; redzone hits and freed-memory hits are reported
   through the same violation vocabulary as CHEx86 so the harness can
   compare detection head-to-head. *)

open Chex86_isa
module Machine = Chex86_machine
module Os = Chex86_os

type t = {
  shadow : Shadow.t;
  runtime : Runtime.t;
  counters : Chex86_stats.Counter.group;
  (* The instrumentation of a crack is a pure function of the micro-ops,
     and the engine's cracks are fixed per PC — so the instrumented list
     is built once per static instruction and replayed thereafter.
     [instrumented] maps pc -> index into [table]; the replay probe runs
     once per macro instruction, so it is an [Intmap] hit rather than a
     [Hashtbl] hash + generic-equality walk. *)
  instrumented : Chex86_mem.Intmap.t;
  mutable table : Uop.t list array;
  mutable n_instrumented : int;
  h_checks : Chex86_stats.Counter.handle;
}

let create ~proc () =
  let counters = proc.Os.Process.counters in
  let shadow = Shadow.create counters in
  let runtime = Runtime.create proc.Os.Process.heap shadow counters in
  (* Interpose the redzone allocator behind the libc stubs. *)
  proc.Os.Process.runtime <- Runtime.as_runtime runtime proc.Os.Process.mem;
  {
    shadow;
    runtime;
    counters;
    instrumented = Chex86_mem.Intmap.create ~capacity:4096 ();
    table = [||];
    n_instrumented = 0;
    h_checks = Chex86_stats.Counter.handle counters "asan.checks";
  }

let storage_bytes t = Runtime.storage_bytes t.runtime

(* Stack and global accesses are checked too (their shadow defaults to
   addressable); only the text segment is exempt, as in ASan. *)
let instrument_uops uops =
  List.concat_map
    (fun uop ->
      match Uop.mem_operand uop with
      | Some (mem, width, is_store) ->
        [
          Uop.Guard { kind = Uop.Shadow_addr_calc; mem; width; is_store };
          Uop.Guard { kind = Uop.Shadow_load; mem; width; is_store };
          Uop.Guard { kind = Uop.Shadow_compare; mem; width; is_store };
          uop;
        ]
      | None -> [ uop ])
    uops

(* The expansion is deterministic per static instruction (the engine
   memoizes cracks per PC), so it is computed once and replayed. *)
let instrument t (ctx : Machine.Hooks.ctx) uops =
  let i = Chex86_mem.Intmap.find t.instrumented ctx.pc ~default:(-1) in
  if i >= 0 then t.table.(i)
  else begin
    let expanded = instrument_uops uops in
    let i = t.n_instrumented in
    if i >= Array.length t.table then begin
      let tbl = Array.make (if i = 0 then 256 else 2 * i) [] in
      Array.blit t.table 0 tbl 0 i;
      t.table <- tbl
    end;
    t.table.(i) <- expanded;
    t.n_instrumented <- i + 1;
    Chex86_mem.Intmap.set t.instrumented ctx.pc i;
    expanded
  end

let violation_of_poison ~ea ~is_store = function
  | Shadow.Heap_redzone | Shadow.Partial _ ->
    Chex86.Violation.Out_of_bounds { pid = 0; ea; base = 0; size = 0; is_store }
  | Shadow.Freed -> Chex86.Violation.Use_after_free { pid = 0; ea; is_store }
  | Shadow.Addressable -> assert false

let exec_uop t (_ctx : Machine.Hooks.ctx) (uop : Uop.t) ~ea ~result:_ =
  match uop with
  | Uop.Guard { kind = Uop.Shadow_compare; width; is_store; _ } -> (
    Chex86_stats.Counter.incr_handle t.counters t.h_checks;
    match Shadow.check t.shadow ea (Insn.bytes_of_width width) with
    | Ok () -> Machine.Hooks.no_reaction
    | Error reason ->
      raise
        (Chex86.Violation.Security_violation (violation_of_poison ~ea ~is_store reason)))
  | _ -> Machine.Hooks.no_reaction

let install t (hooks : Machine.Hooks.t) =
  hooks.Machine.Hooks.instrument <- instrument t;
  hooks.Machine.Hooks.exec_uop <- exec_uop t;
  hooks.Machine.Hooks.active <- true

(* Convenience end-to-end runner mirroring Chex86.Sim.run. *)
let run ?config ?(max_insns = 50_000_000) ?(timing = true) program =
  let proc = Os.Process.load program in
  let hooks = Machine.Hooks.none () in
  let sim = Machine.Simulator.create ?config ~hooks proc in
  let t = create ~proc () in
  install t hooks;
  let result =
    if timing then Machine.Simulator.run ~max_insns sim
    else Machine.Simulator.run_functional ~max_insns sim
  in
  (t, result, proc)
