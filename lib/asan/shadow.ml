(* ASan shadow memory model.

   One shadow state per 8-byte granule of application memory, as in
   AddressSanitizer's 1/8 shadow encoding: a granule is fully
   addressable, partially addressable (first k bytes), or poisoned with
   a reason (heap redzone / freed memory).  Shadow pages touched are
   accounted for the Fig 9 storage comparison.

   Granule states live in an [Intmap] encoded as small ints — the check
   path probes one granule per 8 bytes of every instrumented access, and
   the common "fully addressable" case must be a flat-array miss, not a
   [Not_found] raise or a boxed [option]. *)

type state =
  | Addressable
  | Partial of int  (* first k bytes addressable, 1 <= k <= 7 *)
  | Heap_redzone
  | Freed

(* Encoding: 0 = Addressable (absent), 1..7 = Partial k, 8 = redzone,
   9 = freed. *)
let encode = function Addressable -> 0 | Partial k -> k | Heap_redzone -> 8 | Freed -> 9
let decode = function 0 -> Addressable | 8 -> Heap_redzone | 9 -> Freed | k -> Partial k

type t = {
  granules : Chex86_mem.Intmap.t;
  pages : Chex86_mem.Intset.t;  (* shadow pages touched *)
  counters : Chex86_stats.Counter.group;
}

let create counters =
  {
    granules = Chex86_mem.Intmap.create ~capacity:4096 ();
    pages = Chex86_mem.Intset.create ~capacity:64 ();
    counters;
  }

let granule addr = addr lsr 3

let set_state t addr state =
  let g = granule addr in
  Chex86_mem.Intset.add t.pages (g lsr 12);
  match encode state with
  | 0 -> Chex86_mem.Intmap.remove t.granules g
  | s -> Chex86_mem.Intmap.set t.granules g s

let state_of t addr = decode (Chex86_mem.Intmap.find t.granules (granule addr) ~default:0)

(* Poison [len] bytes starting at [addr] (granule-aligned in practice). *)
let poison t addr len reason =
  let s = encode reason in
  let g0 = granule addr and g1 = granule (addr + len - 1) in
  for g = g0 to g1 do
    Chex86_mem.Intset.add t.pages (g lsr 12);
    Chex86_mem.Intmap.set t.granules g s
  done

let unpoison t addr len =
  let g0 = granule addr and g1 = granule (addr + len - 1) in
  for g = g0 to g1 do
    Chex86_mem.Intset.add t.pages (g lsr 12);
    Chex86_mem.Intmap.remove t.granules g
  done;
  (* Trailing partial granule. *)
  let tail = (addr + len) land 7 in
  if tail <> 0 then Chex86_mem.Intmap.set t.granules (granule (addr + len)) tail

(* Shared failure results: [Error _] would otherwise allocate per
   failing check. *)
let err_redzone : (unit, state) result = Error Heap_redzone
let err_freed : (unit, state) result = Error Freed

(* Is a [width]-byte access at [addr] fully addressable?  Returns the
   poison reason on failure.  Top-level recursion over the encoded
   states; [Ok ()] and the errors are structured constants, so no path
   allocates. *)
let rec check_from t a remaining =
  if remaining <= 0 then Ok ()
  else
    let s = Chex86_mem.Intmap.find t.granules (a lsr 3) ~default:0 in
    if s = 0 then check_from t ((a lor 7) + 1) (remaining - (8 - (a land 7)))
    else if s < 8 then begin
      (* Partial: first [s] bytes addressable. *)
      let off = a land 7 in
      let span = if remaining <= 8 - off then remaining else 8 - off in
      if off + span <= s then check_from t ((a lor 7) + 1) (remaining - (8 - off))
      else err_redzone
    end
    else if s = 8 then err_redzone
    else err_freed

let check t addr width = check_from t addr width

(* Shadow storage: one byte per granule, rounded to touched 4 KB shadow
   pages (each covering 32 KB of application memory). *)
let storage_bytes t = Chex86_mem.Intset.cardinal t.pages * 4096
