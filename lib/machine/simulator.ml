(* Top-level simulation driver: functional engine feeding the timing
   model, with an optional instruction budget.  Protection schemes hook
   in via [Hooks.t]; violations they raise terminate the run and are
   reported in the outcome. *)

type outcome =
  | Finished  (* guest executed Halt *)
  | Budget_exhausted
  | Faulted of exn  (* any exception from guest, allocator or monitor *)

type result = {
  outcome : outcome;
  macro_insns : int;
  uops : int;
  uops_injected : int;
  uops_killed : int;
  cycles : int;
  counters : Chex86_stats.Counter.group;
  resident_bytes : int;
  mem_bytes : int;
}

type t = {
  engine : Engine.t;
  pipeline : Pipeline.t;
  hier : Chex86_mem.Hierarchy.t;
  counters : Chex86_stats.Counter.group;
}

(* Defaults come from the installed [Preset] so `--cpu` reaches every
   construction site without each caller threading configs by hand;
   explicit arguments (ablations, tests) still win. *)
let create ?config ?hier_config ?(hooks = Hooks.none ()) proc =
  let preset = Preset.current () in
  let config = match config with Some c -> c | None -> preset.Preset.core in
  let hier_config =
    match hier_config with Some h -> h | None -> preset.Preset.hier
  in
  let counters = proc.Chex86_os.Process.counters in
  let hier = Chex86_mem.Hierarchy.create ~config:hier_config counters in
  let engine = Engine.create ~hooks proc in
  let pipeline = Pipeline.create ~config hier counters in
  { engine; pipeline; hier; counters }

let engine t = t.engine
let pipeline t = t.pipeline
let hierarchy t = t.hier

let result_of t outcome =
  Pipeline.finalize t.pipeline;
  let get = Chex86_stats.Counter.get t.counters in
  {
    outcome;
    macro_insns = Engine.insn_count t.engine;
    uops = get "pipeline.uops";
    uops_injected = get "pipeline.uops_injected";
    uops_killed = get "pipeline.uops_killed";
    cycles = Pipeline.cycles t.pipeline;
    counters = t.counters;
    resident_bytes =
      Chex86_mem.Image.resident_bytes t.engine.Engine.proc.Chex86_os.Process.mem;
    mem_bytes = Chex86_mem.Hierarchy.mem_bytes t.hier;
  }

(* [run ?max_insns t] executes until Halt, fault, or budget. *)
let run ?(max_insns = 50_000_000) t =
  let rec loop () =
    if Engine.insn_count t.engine >= max_insns then result_of t Budget_exhausted
    else
      match Engine.step t.engine with
      | None -> result_of t Finished
      | Some step ->
        Pipeline.on_step t.pipeline step;
        loop ()
  in
  try loop () with e -> result_of t (Faulted e)

(* Functional-only run (no timing): used by profiling and by tests that
   care about architectural results only. *)
let run_functional ?(max_insns = 50_000_000) t =
  let rec loop () =
    if Engine.insn_count t.engine >= max_insns then result_of t Budget_exhausted
    else match Engine.step t.engine with None -> result_of t Finished | Some _ -> loop ()
  in
  try loop () with e -> result_of t (Faulted e)
