(** Named µarch presets (the [--cpu] registry): core config + cache
    hierarchy + monitor-structure sizing, with a content digest for
    result-store keying and a process-wide current default. *)

type t = {
  name : string;
  description : string;
  core : Config.t;
  hier : Chex86_mem.Hierarchy.config;
  cap_cache_entries : int;
  alias_cache_sets : int;
  alias_victim_entries : int;
}

val skylake : t
val nehalem : t
val tiny : t

(** Every registered preset, [skylake] first. *)
val all : t list

val names : unit -> string list
val find : string -> t option

(** Hex digest over every simulation-relevant field. *)
val digest : t -> string

(** ["<name>-<digest prefix>"] — folded into [Runner.Store] keys. *)
val id : t -> string

(** Install/read the process-wide default picked up by
    [Simulator.create], [Sim.run] and [Smp.run] when no explicit config
    is given. *)
val set : t -> unit

val current : unit -> t

(** [true] for the stock Skylake point: monitor-structure resizing is
    skipped so explicit ablation sizing is never clobbered. *)
val is_stock : t -> bool
