(* LTAGE-style branch predictor, BTB and return-address stack.

   A bimodal base table plus three tagged tables indexed with
   geometrically increasing global-history lengths; the longest-history
   hit provides the prediction (TAGE's "provider"), with a simple
   allocate-on-mispredict policy.  Direction prediction drives the
   squash accounting in the timing model; target prediction uses the BTB
   for computed branches and the RAS for returns. *)

type tagged_entry = { mutable tag : int; mutable ctr : int; mutable useful : int }

type t = {
  bimodal : int array;  (* 2-bit counters *)
  tagged : tagged_entry array array;  (* 3 tables *)
  history_lengths : int array;
  mutable ghist : int;  (* global history, newest outcome in bit 0 *)
  btb : int array;  (* pc -> target *)
  btb_tags : int array;
  ras : int array;
  mutable ras_top : int;
  counters : Chex86_stats.Counter.group;
  (* Pre-resolved outcome counters: [resolve] runs once per branch and
     must not hash strings. *)
  h_cond_correct : Chex86_stats.Counter.handle;
  h_cond_mispredict : Chex86_stats.Counter.handle;
  h_ras_correct : Chex86_stats.Counter.handle;
  h_ras_mispredict : Chex86_stats.Counter.handle;
  h_btb_correct : Chex86_stats.Counter.handle;
  h_btb_mispredict : Chex86_stats.Counter.handle;
}

let bimodal_bits = 13
let tagged_bits = 10
let tag_bits = 9

let create counters =
  {
    bimodal = Array.make (1 lsl bimodal_bits) 2;
    tagged =
      Array.init 3 (fun _ ->
          Array.init (1 lsl tagged_bits) (fun _ -> { tag = -1; ctr = 4; useful = 0 }));
    history_lengths = [| 5; 15; 44 |];
    ghist = 0;
    btb = Array.make 4096 0;
    btb_tags = Array.make 4096 (-1);
    ras = Array.make 64 0;
    ras_top = 0;
    counters;
    h_cond_correct = Chex86_stats.Counter.handle counters "bpred.cond_correct";
    h_cond_mispredict = Chex86_stats.Counter.handle counters "bpred.cond_mispredict";
    h_ras_correct = Chex86_stats.Counter.handle counters "bpred.ras_correct";
    h_ras_mispredict = Chex86_stats.Counter.handle counters "bpred.ras_mispredict";
    h_btb_correct = Chex86_stats.Counter.handle counters "bpred.btb_correct";
    h_btb_mispredict = Chex86_stats.Counter.handle counters "bpred.btb_mispredict";
  }

(* Top-level recursion (DESIGN.md hot-path rules): an inner [rec]
   capturing [bits] allocates a closure on each of the up-to-six
   history folds per branch without flambda. *)
let rec fold_bits h bits acc =
  if h = 0 then acc else fold_bits (h lsr bits) bits (acc lxor (h land ((1 lsl bits) - 1)))

let fold_history ghist len bits = fold_bits (ghist land ((1 lsl len) - 1)) bits 0

let tagged_index t i pc =
  let h = fold_history t.ghist t.history_lengths.(i) tagged_bits in
  ((pc lsr 2) lxor h lxor (i * 0x9E37)) land ((1 lsl tagged_bits) - 1)

let tagged_tag t i pc =
  let h = fold_history t.ghist t.history_lengths.(i) tag_bits in
  ((pc lsr 4) lxor h) land ((1 lsl tag_bits) - 1)

(* Longest-history hitting table, or -1.  Int sentinel instead of the
   former [Some (i, entry)] pair: the provider is probed on every
   conditional branch (and several times per resolve), and the entry is
   recoverable from the index for the price of a re-hash. *)
let rec provider_from t pc i =
  if i < 0 then -1
  else if (t.tagged.(i).(tagged_index t i pc)).tag = tagged_tag t i pc then i
  else provider_from t pc (i - 1)

let provider_index t pc = provider_from t pc 2

let predict_direction t pc =
  let p = provider_index t pc in
  if p >= 0 then (t.tagged.(p).(tagged_index t p pc)).ctr >= 4
  else t.bimodal.((pc lsr 2) land ((1 lsl bimodal_bits) - 1)) >= 2

(* Int-specialized: [Stdlib.max]/[min] are generic-compare calls without
   flambda, and this runs several times per resolved branch. *)
let clamp (v : int) (lo : int) (hi : int) = if v < lo then lo else if v > hi then hi else v

(* Allocate a longer-history entry on misprediction (TAGE's
   decrement-useful-and-retry walk). *)
let rec alloc_entry t pc taken i =
  if i <= 2 then begin
    let e = t.tagged.(i).(tagged_index t i pc) in
    if e.useful = 0 then begin
      e.tag <- tagged_tag t i pc;
      e.ctr <- (if taken then 4 else 3);
      e.useful <- 0
    end
    else begin
      e.useful <- e.useful - 1;
      alloc_entry t pc taken (i + 1)
    end
  end

(* The provider is computed once up front: none of the updates below
   change any tag before it is re-used ([alloc_entry] rewrites tags but
   runs last on its branch), and [ghist] — which the provider hash
   depends on — is only shifted at the very end. *)
let update_direction t pc ~taken =
  let p = provider_index t pc in
  let predicted =
    if p >= 0 then (t.tagged.(p).(tagged_index t p pc)).ctr >= 4
    else t.bimodal.((pc lsr 2) land ((1 lsl bimodal_bits) - 1)) >= 2
  in
  (if p >= 0 then begin
     let e = t.tagged.(p).(tagged_index t p pc) in
     e.ctr <- clamp (e.ctr + if taken then 1 else -1) 0 7
   end
   else begin
     let idx = (pc lsr 2) land ((1 lsl bimodal_bits) - 1) in
     t.bimodal.(idx) <- clamp (t.bimodal.(idx) + if taken then 1 else -1) 0 3
   end);
  if predicted <> taken then alloc_entry t pc taken (p + 1)
  else if p >= 0 then begin
    let e = t.tagged.(p).(tagged_index t p pc) in
    e.useful <- clamp (e.useful + 1) 0 3
  end;
  t.ghist <- ((t.ghist lsl 1) lor if taken then 1 else 0) land ((1 lsl 60) - 1);
  predicted = taken

let btb_lookup t pc =
  let idx = (pc lsr 2) land 4095 in
  if t.btb_tags.(idx) = pc then Some t.btb.(idx) else None

let btb_update t pc target =
  let idx = (pc lsr 2) land 4095 in
  t.btb_tags.(idx) <- pc;
  t.btb.(idx) <- target

let ras_push t addr =
  t.ras.(t.ras_top land 63) <- addr;
  t.ras_top <- t.ras_top + 1

let ras_pop t =
  if t.ras_top = 0 then 0
  else begin
    t.ras_top <- t.ras_top - 1;
    t.ras.(t.ras_top land 63)
  end

(* [resolve t ~pc ~kind ~taken ~target] returns whether the front-end
   prediction (direction and target) was correct, updating all state. *)
let resolve t ~pc ~kind ~taken ~target =
  let open Chex86_isa.Uop in
  match kind with
  | Cond _ ->
    let ok = update_direction t pc ~taken in
    Chex86_stats.Counter.incr_handle t.counters
      (if ok then t.h_cond_correct else t.h_cond_mispredict);
    ok
  | Jump -> true  (* direct unconditional: decoded target, always correct *)
  | Call ->
    ras_push t (pc + 4);
    true
  | Ret ->
    let predicted = ras_pop t in
    let ok = predicted = target in
    Chex86_stats.Counter.incr_handle t.counters
      (if ok then t.h_ras_correct else t.h_ras_mispredict);
    ok
  | Indirect ->
    (* Inline BTB probe: no [option] on the per-branch path. *)
    let idx = (pc lsr 2) land 4095 in
    let ok = t.btb_tags.(idx) = pc && t.btb.(idx) = target in
    btb_update t pc target;
    Chex86_stats.Counter.incr_handle t.counters
      (if ok then t.h_btb_correct else t.h_btb_mispredict);
    ok
