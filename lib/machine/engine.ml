(* Functional execution engine.

   Executes the guest program macro-op by macro-op, cracking each into
   micro-ops, letting the monitor instrument the crack (decode time) and
   observe each executed micro-op (execute time, with resolved effective
   addresses and results).  Architectural state is updated in program
   order; the timing model consumes the step records this engine
   produces, modelling speculation as timing (see Pipeline).

   Runtime (libc) functions are native stubs: the entry address runs the
   allocator/memcpy/etc. natively against guest memory, and the address
   entry+4 holds a Ret.  Both addresses are interceptable by the MSR
   registry, which is how capGen/capFree injection observes allocation
   events with %rdi/%rax in hand (Section IV-C). *)

open Chex86_isa

exception Guest_fault of string

(* [ea] is 0 for micro-ops without a memory operand.  Fields are mutable
   because the engine reuses pooled records across steps (see [step]). *)
type exec_uop = { mutable uop : Uop.t; mutable ea : int; mutable reaction : Hooks.reaction }

type branch_info = { mutable kind : Uop.branch_kind; mutable taken : bool; mutable target : int }

(* The record returned by [step] is a single buffer rewritten in place on
   every call: consumers must finish with it (and its [uops] array)
   before stepping again.  Both in-tree consumers (Simulator, Smp) feed
   it straight into [Pipeline.on_step], which retains nothing. *)
type step = {
  mutable pc : int;
  mutable insn : Insn.t option;  (* None for a native stub body *)
  mutable native : string option;
  mutable path : Decoder.path;
  mutable uops : exec_uop array;  (* program order; array form for the timing model *)
  mutable branch : branch_info option;
}

type t = {
  proc : Chex86_os.Process.t;
  hooks : Hooks.t;
  regs : int array;
  xmm : float array;
  tmps : int array;
  mutable eq : bool;
  mutable lt : bool;
  mutable rip : int;
  mutable halted : bool;
  mutable insn_count : int;
  mutable rand_state : int;
  mutable on_access : addr:int -> write:bool -> unit;
  (* Per-step allocation killers: one [read_reg] closure for every ctx
     (instead of one per step), and per-instruction memos of the crack,
     its decoder path and the boxed instruction.  [Decoder.decode] is a
     pure function of the instruction, so cracking each text index once
     is exact — and also stops [Decoder.path] from re-cracking the same
     macro-op on every dynamic execution. *)
  reg_reader : Reg.t -> int;
  crack : Uop.t list array;  (* [] = not yet decoded (cracks are never empty) *)
  crack_path : Decoder.path array;
  insn_box : Insn.t option array;
  (* Scratch: the last executed micro-op's written value ([Hooks.no_result]
     when none) and the single reused hook context. *)
  mutable last_result : int;
  ctx : Hooks.ctx;
  (* Step-record pool: [step] rewrites [step_buf] in place and returns
     the preallocated [step_some]; [exec_bufs.(n)] is the reused
     [exec_uop array] for an [n]-micro-op step, and [branch_buf]/
     [branch_some] back the [branch] field.  This removes every per-step
     heap allocation of the baseline run. *)
  step_buf : step;
  step_some : step option;
  branch_buf : branch_info;
  branch_some : branch_info option;
  mutable exec_bufs : exec_uop array array;
}

(* [entry]/[stack_top] support SMP: each hardware thread starts at its
   own label with a private stack region. *)
let create ?(hooks = Hooks.none ()) ?entry ?stack_top proc =
  let program = proc.Chex86_os.Process.program in
  let regs = Array.make Reg.count 0 in
  let reg_reader r = regs.(Reg.index r) in
  let len = max 1 (Program.length program) in
  let sb =
    { pc = 0; insn = None; native = None; path = Decoder.Simple; uops = [||]; branch = None }
  in
  let bb = { kind = Uop.Jump; taken = false; target = 0 } in
  let t =
    {
      proc;
      hooks;
      regs;
      xmm = Array.make Insn.xmm_count 0.;
      tmps = Array.make 2 0;
      eq = false;
      lt = false;
      rip =
        (match entry with
        | Some label -> Program.label_addr program label
        | None -> Program.entry_addr program);
      halted = false;
      insn_count = 0;
      rand_state = 0x12345;
      on_access = (fun ~addr:_ ~write:_ -> ());
      reg_reader;
      crack = Array.make len [];
      crack_path = Array.make len Decoder.Simple;
      insn_box = Array.make len None;
      last_result = Hooks.no_result;
      ctx = { Hooks.pc = 0; insn = None; stub = None; read_reg = reg_reader };
      step_buf = sb;
      step_some = Some sb;
      branch_buf = bb;
      branch_some = Some bb;
      exec_bufs = [||];
    }
  in
  t.regs.(Reg.index Reg.RSP) <-
    (match stack_top with Some sp -> sp | None -> Program.stack_top);
  t

let halted t = t.halted
let insn_count t = t.insn_count
let read_reg t r = t.regs.(Reg.index r)
let write_reg t r v = t.regs.(Reg.index r) <- v
let rip t = t.rip

let get_loc t = function
  | Uop.Greg r -> t.regs.(Reg.index r)
  | Uop.Tmp i -> t.tmps.(i)
  | Uop.Xreg _ -> raise (Guest_fault "integer read of xmm register")

let set_loc t loc v =
  match loc with
  | Uop.Greg r -> t.regs.(Reg.index r) <- v
  | Uop.Tmp i -> t.tmps.(i) <- v
  | Uop.Xreg _ -> raise (Guest_fault "integer write of xmm register")

let get_src t = function Uop.Loc l -> get_loc t l | Uop.Imm i -> i

let effective_address t (m : Insn.mem) =
  (match m.base with Some r -> t.regs.(Reg.index r) | None -> 0)
  + (match m.index with Some r -> t.regs.(Reg.index r) * m.scale | None -> 0)
  + m.disp

let mask_width w v =
  match w with
  | Insn.W8 -> v land 0xFF
  | Insn.W16 -> v land 0xFFFF
  | Insn.W32 -> v land 0xFFFFFFFF
  | Insn.W64 -> v

let alu_eval op a b =
  match op with
  | Insn.Add -> a + b
  | Insn.Sub -> a - b
  | Insn.And -> a land b
  | Insn.Or -> a lor b
  | Insn.Xor -> a lxor b
  | Insn.Imul -> a * b
  | Insn.Shl -> a lsl (b land 63)
  | Insn.Shr -> a lsr (b land 63)

let fp_eval op a b =
  match op with
  | Insn.Fadd -> a +. b
  | Insn.Fsub -> a -. b
  | Insn.Fmul -> a *. b
  | Insn.Fdiv -> a /. b
  | Insn.Fsqrt -> sqrt b

let set_flags t v =
  t.eq <- v = 0;
  t.lt <- v < 0

let eval_cond t = function
  | Insn.Eq -> t.eq
  | Insn.Ne -> not t.eq
  | Insn.Lt -> t.lt
  | Insn.Le -> t.lt || t.eq
  | Insn.Gt -> not (t.lt || t.eq)
  | Insn.Ge -> not t.lt

(* Execute one micro-op functionally; returns the effective address (0
   when the micro-op has none) and leaves the written value — or
   [Hooks.no_result] — in [t.last_result].  Plain ints instead of an
   option pair keep this allocation-free.  [insn] gives macro context for
   the return-address store of Call. *)
let exec_uop t (insn : Insn.t option) pc (uop : Uop.t) =
  let mem = t.proc.Chex86_os.Process.mem in
  t.last_result <- Hooks.no_result;
  match uop with
  | Mov { dst; src } ->
    let v = get_loc t src in
    set_loc t dst v;
    t.last_result <- v;
    0
  | Limm { dst; imm } ->
    set_loc t dst imm;
    t.last_result <- imm;
    0
  | Alu { op; dst; src1; src2 } ->
    let v = alu_eval op (get_loc t src1) (get_src t src2) in
    set_loc t dst v;
    set_flags t v;
    t.last_result <- v;
    0
  | Lea { dst; mem = m } ->
    let ea = effective_address t m in
    set_loc t dst ea;
    t.last_result <- ea;
    0
  | Load { dst; mem = m; width } ->
    let ea = effective_address t m in
    t.on_access ~addr:ea ~write:false;
    (match dst with
    | Xreg i -> t.xmm.(i) <- Chex86_mem.Image.read_float mem ea
    | _ ->
      let v = mask_width width (Chex86_mem.Image.read mem ea (Insn.bytes_of_width width)) in
      set_loc t dst v;
      t.last_result <- v);
    ea
  | Store { src; mem = m; width } ->
    let ea = effective_address t m in
    t.on_access ~addr:ea ~write:true;
    (match src with
    | Loc (Xreg i) -> Chex86_mem.Image.write_float mem ea t.xmm.(i)
    | _ ->
      let v =
        match (insn, src) with
        (* Return-address store of a call macro-op. *)
        | (Some (Insn.Call _ | Insn.Call_reg _)), Uop.Imm 0 -> pc + 4
        | _ -> get_src t src
      in
      Chex86_mem.Image.write mem ea (Insn.bytes_of_width width) (mask_width width v));
    ea
  | Fp { op; dst = Xreg d; src = Xreg s } ->
    t.xmm.(d) <- fp_eval op t.xmm.(d) t.xmm.(s);
    0
  | Fp _ -> raise (Guest_fault "fp micro-op on integer register")
  | Cvt { dst = Xreg d; src; to_fp = true } ->
    t.xmm.(d) <- float_of_int (get_loc t src);
    0
  | Cvt { dst; src = Xreg s; to_fp = false } ->
    let v = int_of_float t.xmm.(s) in
    set_loc t dst v;
    t.last_result <- v;
    0
  | Cvt _ -> raise (Guest_fault "malformed cvt micro-op")
  | Cmp { src1; src2; is_test } ->
    let a = get_loc t src1 and b = get_src t src2 in
    if is_test then begin
      let v = a land b in
      t.eq <- v = 0;
      t.lt <- v < 0
    end
    else begin
      t.eq <- a = b;
      t.lt <- a < b
    end;
    0
  | Branch _ -> 0  (* resolved at the macro level *)
  | Cap (Cap_check { mem = m; _ }) | Guard { mem = m; _ } ->
    (* Checks compute the same effective address as the access they
       guard; the monitor performs the actual check. *)
    effective_address t m
  | Cap _ | Nop -> 0

(* --- native runtime stubs ------------------------------------------------ *)

let run_native t name =
  let runtime = t.proc.Chex86_os.Process.runtime in
  let mem = t.proc.Chex86_os.Process.mem in
  let rdi = read_reg t Reg.RDI
  and rsi = read_reg t Reg.RSI
  and rdx = read_reg t Reg.RDX in
  match name with
  | "malloc" -> write_reg t Reg.RAX (runtime.malloc rdi)
  | "free" ->
    runtime.free rdi;
    write_reg t Reg.RAX 0
  | "calloc" -> write_reg t Reg.RAX (runtime.calloc ~count:rdi ~size:rsi)
  | "realloc" -> write_reg t Reg.RAX (runtime.realloc rdi rsi)
  | "memset" ->
    for i = 0 to rdx - 1 do
      Chex86_mem.Image.write_byte mem (rdi + i) (rsi land 0xFF)
    done;
    write_reg t Reg.RAX rdi
  | "memcpy" ->
    for i = 0 to rdx - 1 do
      Chex86_mem.Image.write_byte mem (rdi + i) (Chex86_mem.Image.read_byte mem (rsi + i))
    done;
    write_reg t Reg.RAX rdi
  | "puts" -> write_reg t Reg.RAX 0
  | "rand" ->
    t.rand_state <- (t.rand_state * 1103515245) + 12345;
    write_reg t Reg.RAX ((t.rand_state lsr 16) land 0x3FFFFFFF)
  | _ -> raise (Guest_fault (Printf.sprintf "unknown native stub %S" name))

(* --- macro step ---------------------------------------------------------- *)

(* Resolve the control flow of the macro-op after its micro-ops ran.
   Writes the step buffer's [branch] field (through the pooled
   [branch_buf]) and returns the next rip. *)
(* Shared [Uop.Cond _] payloads: a conditional branch resolves on every
   loop back-edge and must not allocate its kind. *)
let kind_eq = Uop.Cond Insn.Eq
let kind_ne = Uop.Cond Insn.Ne
let kind_lt = Uop.Cond Insn.Lt
let kind_le = Uop.Cond Insn.Le
let kind_gt = Uop.Cond Insn.Gt
let kind_ge = Uop.Cond Insn.Ge

let cond_kind = function
  | Insn.Eq -> kind_eq
  | Insn.Ne -> kind_ne
  | Insn.Lt -> kind_lt
  | Insn.Le -> kind_le
  | Insn.Gt -> kind_gt
  | Insn.Ge -> kind_ge

let set_branch t kind taken target =
  let b = t.branch_buf in
  if b.kind != kind then b.kind <- kind;
  b.taken <- taken;
  b.target <- target;
  if t.step_buf.branch != t.branch_some then t.step_buf.branch <- t.branch_some

let resolve_branch t pc (insn : Insn.t) =
  let prog = t.proc.Chex86_os.Process.program in
  t.step_buf.branch <- None;
  match insn with
  | Jmp l ->
    let tgt = Program.label_addr prog l in
    set_branch t Uop.Jump true tgt;
    tgt
  | Jmp_reg r ->
    let tgt = read_reg t r in
    set_branch t Uop.Indirect true tgt;
    tgt
  | Jcc (c, l) ->
    let taken = eval_cond t c in
    let tgt = if taken then Program.label_addr prog l else pc + 4 in
    set_branch t (cond_kind c) taken tgt;
    tgt
  | Call tgt ->
    let tgt =
      match tgt with
      | Insn.Label l -> Program.label_addr prog l
      | Insn.Extern name -> Chex86_os.Layout.extern_addr name
    in
    set_branch t Uop.Call true tgt;
    tgt
  | Call_reg r ->
    let tgt = read_reg t r in
    set_branch t Uop.Indirect true tgt;
    tgt
  | Ret ->
    let tgt = t.tmps.(0) in
    set_branch t Uop.Ret true tgt;
    tgt
  | Halt ->
    t.halted <- true;
    pc
  | _ -> pc + 4

(* Reused [exec_uop] buffer for an [n]-micro-op step: each length gets
   its own array of preallocated records, created on first use, so the
   steady state allocates nothing. *)
let exec_buf t n =
  if n >= Array.length t.exec_bufs then begin
    let bufs = Array.make (n + 1) [||] in
    Array.blit t.exec_bufs 0 bufs 0 (Array.length t.exec_bufs);
    t.exec_bufs <- bufs
  end;
  let buf = t.exec_bufs.(n) in
  if n > 0 && Array.length buf = 0 then begin
    let buf = Array.init n (fun _ -> { uop = Uop.Nop; ea = 0; reaction = Hooks.no_reaction }) in
    t.exec_bufs.(n) <- buf;
    buf
  end
  else buf

(* Execution mutates architectural state, so the micro-ops must run
   strictly in program order; top-level recursion (no closure per
   step). *)
let rec fill_exec t ctx insn pc arr i = function
  | [] -> ()
  | uop :: rest ->
    let ea = exec_uop t insn pc uop in
    let reaction =
      if t.hooks.Hooks.active then t.hooks.Hooks.exec_uop ctx uop ~ea ~result:t.last_result
      else Hooks.no_reaction
    in
    let eu = arr.(i) in
    (* Pooled records live in the major heap, so every pointer store
       pays the write barrier; skip stores that would not change the
       field (cracks and [Hooks.no_reaction] are shared/memoized, so
       steady-state loops mostly re-store the same pointers). *)
    if eu.uop != uop then eu.uop <- uop;
    eu.ea <- ea;
    if eu.reaction != reaction then eu.reaction <- reaction;
    fill_exec t ctx insn pc arr (i + 1) rest

let execute_uops t ctx insn pc uops =
  let arr = exec_buf t (List.length uops) in
  fill_exec t ctx insn pc arr 0 uops;
  arr

(* Shared cracks for the stub paths (pure, program-independent). *)
let ret_insn_box = Some Insn.Ret
let ret_crack = Decoder.decode Insn.Ret
let nop_crack = [ Uop.Nop ]

let step t =
  if t.halted then None
  else begin
    let pc = t.rip in
    t.insn_count <- t.insn_count + 1;
    match Chex86_os.Layout.extern_of_addr pc with
    | Some (name, `Entry) ->
      (* Native stub body. *)
      let ctx = t.ctx in
      ctx.Hooks.pc <- pc;
      ctx.Hooks.insn <- None;
      ctx.Hooks.stub <- Some (name, Hooks.Entry);
      let uops = if t.hooks.Hooks.active then t.hooks.Hooks.instrument ctx nop_crack else nop_crack in
      (* Injected capability micro-ops run before the native body so that
         capGen.Begin sees %rdi before the allocator clobbers state. *)
      let exec = execute_uops t ctx None pc uops in
      run_native t name;
      t.rip <- pc + 4;
      t.hooks.Hooks.on_retire ctx;
      let sb = t.step_buf in
      sb.pc <- pc;
      sb.insn <- None;
      sb.native <- Some name;
      sb.path <- Decoder.Msrom;
      if sb.uops != exec then sb.uops <- exec;
      sb.branch <- None;
      t.step_some
    | Some (name, `Exit) ->
      (* The Ret at the stub's registered exit point. *)
      let insn = Insn.Ret in
      let ctx = t.ctx in
      ctx.Hooks.pc <- pc;
      ctx.Hooks.insn <- ret_insn_box;
      ctx.Hooks.stub <- Some (name, Hooks.Exit);
      let uops = if t.hooks.Hooks.active then t.hooks.Hooks.instrument ctx ret_crack else ret_crack in
      let exec = execute_uops t ctx ret_insn_box pc uops in
      let sb = t.step_buf in
      sb.pc <- pc;
      if sb.insn != ret_insn_box then sb.insn <- ret_insn_box;
      sb.native <- None;
      sb.path <- Decoder.Simple;
      if sb.uops != exec then sb.uops <- exec;
      let next = resolve_branch t pc insn in
      t.rip <- next;
      t.hooks.Hooks.on_retire ctx;
      t.step_some
    | None ->
      let idx = Program.fetch_index t.proc.Chex86_os.Process.program pc in
      if idx < 0 then
        raise (Guest_fault (Printf.sprintf "execution left the text segment at %#x" pc));
      let insn = t.proc.Chex86_os.Process.program.Program.insns.(idx) in
      let crack =
        match t.crack.(idx) with
        | [] ->
          let c = Decoder.decode insn in
          t.crack.(idx) <- c;
          t.crack_path.(idx) <- Decoder.path insn;
          t.insn_box.(idx) <- Some insn;
          c
        | c -> c
      in
      let boxed = t.insn_box.(idx) in
      let ctx = t.ctx in
      ctx.Hooks.pc <- pc;
      ctx.Hooks.insn <- boxed;
      ctx.Hooks.stub <- None;
      let uops = if t.hooks.Hooks.active then t.hooks.Hooks.instrument ctx crack else crack in
      let exec = execute_uops t ctx boxed pc uops in
      let sb = t.step_buf in
      sb.pc <- pc;
      if sb.insn != boxed then sb.insn <- boxed;
      sb.native <- None;
      sb.path <- t.crack_path.(idx);
      if sb.uops != exec then sb.uops <- exec;
      let next = resolve_branch t pc insn in
      t.rip <- next;
      t.hooks.Hooks.on_retire ctx;
      t.step_some
  end
