(** Top-level simulation driver: functional engine + timing model. *)

type outcome =
  | Finished  (** guest executed Halt *)
  | Budget_exhausted
  | Faulted of exn  (** guest fault, allocator abort, or security violation *)

type result = {
  outcome : outcome;
  macro_insns : int;
  uops : int;
  uops_injected : int;
  uops_killed : int;
  cycles : int;
  counters : Chex86_stats.Counter.group;
  resident_bytes : int;
  mem_bytes : int;  (** DRAM traffic *)
}

type t

(** [config]/[hier_config] default from the installed {!Preset}. *)
val create :
  ?config:Config.t ->
  ?hier_config:Chex86_mem.Hierarchy.config ->
  ?hooks:Hooks.t ->
  Chex86_os.Process.t ->
  t
val engine : t -> Engine.t
val pipeline : t -> Pipeline.t
val hierarchy : t -> Chex86_mem.Hierarchy.t

(** Run with the timing model. *)
val run : ?max_insns:int -> t -> result

(** Functional-only run (no cycle accounting). *)
val run_functional : ?max_insns:int -> t -> result
