(** Simulated core configuration (Table III: Skylake-class). *)

type t = {
  frequency_ghz : float;
  fetch_width : int;  (** fused uops (macro-ops) per cycle *)
  issue_width : int;
  commit_width : int;
  rob_size : int;
  iq_size : int;
  lq_size : int;
  sq_size : int;
  int_regs : int;
  fp_regs : int;
  ras_size : int;
  btb_size : int;
  int_alu_units : int;
  int_mult_units : int;
  fp_alu_units : int;
  simd_units : int;
  load_ports : int;
  store_ports : int;
  front_end_depth : int;
  mispredict_penalty : int;
  msrom_extra_cycles : int;
}

(** Table III's configuration. *)
val default : t

(** The Table III rows, for rendering; cache cells are derived from
    [hier] (default: the stock hierarchy). *)
val rows : ?hier:Chex86_mem.Hierarchy.config -> t -> string list list
