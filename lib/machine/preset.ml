(* Named µarch presets: one record bundling everything a simulation
   point needs — the core config (Table III knobs), the cache hierarchy
   geometry/latencies/replacement, and the sizing of the paper's monitor
   structures (capability cache, alias cache, alias victim cache).

   The registry plays the role of cachetrace's [--cpu=nehalem|…|skl]
   switch: [find "nehalem"] gives a self-consistent machine, [set]
   installs it as the process-wide default that [Simulator]/[Sim]/[Smp]
   pick up when no explicit config is passed, and [id] produces a
   digest-qualified name ("skylake-3fa01b2c") that the result store
   folds into its keys so caches from different machines never collide. *)

type t = {
  name : string;
  description : string;
  core : Config.t;
  hier : Chex86_mem.Hierarchy.config;
  (* Monitor-structure sizing, applied by [Sim]/[Smp] to variants that
     still carry the stock sizes (explicit ablation sweeps keep their
     hand-picked values). *)
  cap_cache_entries : int;
  alias_cache_sets : int;
  alias_victim_entries : int;
}

let skylake =
  {
    name = "skylake";
    description = "Table III Skylake-class: 32 KB 8-way L1s, 256 KB L2, true LRU";
    core = Config.default;
    hier = Chex86_mem.Hierarchy.default_config;
    cap_cache_entries = 64;
    alias_cache_sets = 128;
    alias_victim_entries = 32;
  }

let nehalem =
  {
    name = "nehalem";
    description = "Nehalem-class: 4-wide, 128-entry ROB, Tree-PLRU caches, slower L2/DRAM";
    core =
      {
        Config.frequency_ghz = 2.93;
        fetch_width = 4;
        issue_width = 4;
        commit_width = 4;
        rob_size = 128;
        iq_size = 36;
        lq_size = 48;
        sq_size = 32;
        int_regs = 96;
        fp_regs = 96;
        ras_size = 16;
        btb_size = 2048;
        int_alu_units = 3;
        int_mult_units = 1;
        fp_alu_units = 1;
        simd_units = 1;
        load_ports = 1;
        store_ports = 1;
        front_end_depth = 4;
        mispredict_penalty = 17;
        msrom_extra_cycles = 3;
      };
    hier =
      {
        Chex86_mem.Hierarchy.l1_sets = 64;
        l1_ways = 8;
        l2_sets = 512;
        l2_ways = 8;
        line_bytes = 64;
        l1_latency = 4;
        l2_latency = 10;
        mem_latency = 220;
        tlb_walk_latency = 35;
        replacement = Chex86_mem.Cache.Tree_plru;
      };
    cap_cache_entries = 32;
    alias_cache_sets = 64;
    alias_victim_entries = 16;
  }

let tiny =
  {
    name = "tiny";
    description = "Small-cache sensitivity point: 4 KB L1s, 32 KB L2, MRU, 2-wide core";
    core =
      {
        Config.frequency_ghz = 1.2;
        fetch_width = 2;
        issue_width = 2;
        commit_width = 2;
        rob_size = 32;
        iq_size = 16;
        lq_size = 16;
        sq_size = 12;
        int_regs = 48;
        fp_regs = 48;
        ras_size = 8;
        btb_size = 256;
        int_alu_units = 1;
        int_mult_units = 1;
        fp_alu_units = 1;
        simd_units = 1;
        load_ports = 1;
        store_ports = 1;
        front_end_depth = 3;
        mispredict_penalty = 10;
        msrom_extra_cycles = 3;
      };
    hier =
      {
        Chex86_mem.Hierarchy.l1_sets = 16;
        l1_ways = 4;
        l2_sets = 128;
        l2_ways = 4;
        line_bytes = 64;
        l1_latency = 2;
        l2_latency = 8;
        mem_latency = 150;
        tlb_walk_latency = 30;
        replacement = Chex86_mem.Cache.Mru;
      };
    cap_cache_entries = 16;
    alias_cache_sets = 32;
    alias_victim_entries = 8;
  }

let all = [ skylake; nehalem; tiny ]

let names () = List.map (fun p -> p.name) all

let find name = List.find_opt (fun p -> p.name = name) all

(* Digest over every field that changes simulation results.  Marshal is
   stable for immutable records of scalars/variants, and this runs once
   per preset lookup — never on the simulation path. *)
let digest p =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (p.core, p.hier, p.cap_cache_entries, p.alias_cache_sets, p.alias_victim_entries)
          []))

let id p = p.name ^ "-" ^ String.sub (digest p) 0 8

(* Process-wide default, mirroring the other globally-installed knobs
   (Pool.set_jobs, Store.configure): the CLI sets it once at startup,
   everything downstream defaults from it. *)
let current_preset = Atomic.make skylake

let set p = Atomic.set current_preset p

let current () = Atomic.get current_preset

(* Stock machine?  Monitor-structure resizing only applies to variants
   that carry the defaults, and only for non-stock presets, so explicit
   ablation sizing always wins. *)
let is_stock p = p.name = skylake.name
