(** Functional execution engine producing per-macro-op step records. *)

open Chex86_isa

(** Raised on malformed guest execution (fetch outside text, type-confused
    micro-ops). *)
exception Guest_fault of string

(** [ea] is 0 for micro-ops without a memory operand.

    Steps and their payloads are {e pooled}: [step] returns the same
    [step]/[exec_uop]/[branch_info] records on every call, rewritten in
    place, so a caller must fully consume one step before requesting the
    next and must not retain references across calls.  (Both in-tree
    consumers feed the step straight to [Pipeline.on_step], which keeps
    only ints.) *)
type exec_uop = { mutable uop : Uop.t; mutable ea : int; mutable reaction : Hooks.reaction }
type branch_info = { mutable kind : Uop.branch_kind; mutable taken : bool; mutable target : int }

type step = {
  mutable pc : int;
  mutable insn : Insn.t option;  (** [None] for a native stub body *)
  mutable native : string option;
  mutable path : Decoder.path;
  mutable uops : exec_uop array;  (** program order *)
  mutable branch : branch_info option;
}

type t = {
  proc : Chex86_os.Process.t;
  hooks : Hooks.t;
  regs : int array;
  xmm : float array;
  tmps : int array;
  mutable eq : bool;
  mutable lt : bool;
  mutable rip : int;
  mutable halted : bool;
  mutable insn_count : int;
  mutable rand_state : int;
  mutable on_access : addr:int -> write:bool -> unit;
  reg_reader : Reg.t -> int;  (** shared [read_reg] closure for hook contexts *)
  crack : Uop.t list array;  (** per-instruction memoized crack ([[]] = unfilled) *)
  crack_path : Decoder.path array;
  insn_box : Insn.t option array;
  mutable last_result : int;  (** last micro-op's written value, or [Hooks.no_result] *)
  ctx : Hooks.ctx;  (** single reused hook context (fields rewritten per step) *)
  step_buf : step;  (** the single step record rewritten per [step] call *)
  step_some : step option;  (** preallocated [Some step_buf] *)
  branch_buf : branch_info;
  branch_some : branch_info option;
  mutable exec_bufs : exec_uop array array;  (** pooled per-length uop buffers *)
}

(** [entry] (a label) and [stack_top] support SMP hardware threads. *)
val create : ?hooks:Hooks.t -> ?entry:string -> ?stack_top:int -> Chex86_os.Process.t -> t
val halted : t -> bool
val insn_count : t -> int
val rip : t -> int
val read_reg : t -> Reg.t -> int
val write_reg : t -> Reg.t -> int -> unit

(** Execute one macro-op (or stub); [None] once halted. *)
val step : t -> step option
