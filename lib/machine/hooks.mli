(** Monitor interface between the engine and a protection scheme. *)

type stub_phase = Entry | Exit

type ctx = {
  mutable pc : int;
  mutable insn : Chex86_isa.Insn.t option;  (** [None] inside a native stub body *)
  mutable stub : (string * stub_phase) option;
  read_reg : Chex86_isa.Reg.t -> int;
}
(** The engine reuses one ctx record across steps (fields are rewritten
    in place); hooks must not retain a ctx beyond the call receiving it. *)

type reaction = {
  mutable extra_latency : int;  (** delays the micro-op's result (dependents see it) *)
  mutable commit_latency : int;
      (** delays only validation/commit: off-critical-path shadow lookups *)
  mutable flush : bool;  (** squash + refetch once this micro-op's checks resolve *)
  mutable killed_uops : int;  (** injected checks turned into zero-idioms (PNA0) *)
}

val no_reaction : reaction

(** Ring of reusable reaction records for monitors: the pipeline reads a
    step's reactions before the next step's hooks run, so pooled records
    are never still in flight when reused.  {!take} returns the shared
    {!no_reaction} for the all-zero case and a rewritten ring slot
    otherwise; callers must not retain the result across steps. *)
type pool

val pool : unit -> pool

val take :
  pool -> extra_latency:int -> commit_latency:int -> flush:bool -> killed_uops:int -> reaction

(** [result] value meaning "this micro-op wrote no integer destination". *)
val no_result : int

type t = {
  mutable active : bool;
      (** engine gate: [instrument]/[exec_uop] are only called when set;
          installers assigning those fields must raise it *)
  mutable instrument : ctx -> Chex86_isa.Uop.t list -> Chex86_isa.Uop.t list;
      (** decode-time: may inject Cap/Guard micro-ops into the crack *)
  mutable exec_uop : ctx -> Chex86_isa.Uop.t -> ea:int -> result:int -> reaction;
      (** execute-time: functional checks (may raise) + timing feedback;
          [ea] is 0 for non-memory micro-ops, [result] is [no_result]
          when nothing was written *)
  mutable on_retire : ctx -> unit;  (** after each macro-op completes *)
}

(** Hooks that do nothing (the insecure machine). *)
val none : unit -> t
