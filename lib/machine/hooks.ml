(* Monitor interface between the functional engine and a protection
   scheme (CHEx86, ASan, or nothing).

   [instrument] runs at decode time and may inject Cap/Guard micro-ops
   into the crack (the microcode customization path).  [exec_uop] runs
   when a micro-op executes, with the resolved effective address; it
   performs functional checks (raising on violations) and returns a
   [reaction] that feeds the timing model: extra latency from shadow
   structures, a pipeline-flush request (alias misprediction recovery,
   P0AN), and zero-idiom kills of already-injected checks (PNA0). *)

type stub_phase = Entry | Exit

(* Mutable so the engine can reuse one ctx record per step instead of
   allocating three shapes of it on the hot path; hooks must not retain
   a ctx beyond the call that received it. *)
type ctx = {
  mutable pc : int;
  mutable insn : Chex86_isa.Insn.t option;  (* None while inside a native stub body *)
  mutable stub : (string * stub_phase) option;
  read_reg : Chex86_isa.Reg.t -> int;
}

(* Mutable so monitors can serve reactions from a ring pool ([pool] /
   [take] below) instead of allocating one record per checked micro-op. *)
type reaction = {
  mutable extra_latency : int;  (* delays the micro-op's result (dependents see it) *)
  mutable commit_latency : int;
  (* delays only validation/commit: shadow-structure lookups that run off
     the critical path of the access (capability cache misses, alias
     table walks) *)
  mutable flush : bool;  (* squash + refetch once this micro-op's checks resolve *)
  mutable killed_uops : int;  (* injected checks turned into zero-idioms *)
}

let no_reaction = { extra_latency = 0; commit_latency = 0; flush = false; killed_uops = 0 }

(* Ring of reusable reaction records.  The pipeline consumes a step's
   reactions before the next step's hooks run, so any ring deeper than
   one step's micro-op count (cracks are <= 8, checks double that) never
   hands out a record still in flight. *)
type pool = { ring : reaction array; mutable next : int }

let pool_size = 32

let pool () =
  {
    ring =
      Array.init pool_size (fun _ ->
          { extra_latency = 0; commit_latency = 0; flush = false; killed_uops = 0 });
    next = 0;
  }

(* The all-zero case returns the shared [no_reaction] constant — the
   common path stays a single physical-equality check downstream. *)
let take p ~extra_latency ~commit_latency ~flush ~killed_uops =
  if extra_latency = 0 && commit_latency = 0 && (not flush) && killed_uops = 0 then
    no_reaction
  else begin
    p.next <- (p.next + 1) land (pool_size - 1);
    let r = p.ring.(p.next) in
    r.extra_latency <- extra_latency;
    r.commit_latency <- commit_latency;
    r.flush <- flush;
    r.killed_uops <- killed_uops;
    r
  end

(* [ea] is 0 for micro-ops without a memory operand (every consumer
   already treated "no address" as 0); [result] is [no_result] when the
   micro-op writes no integer destination.  Plain ints keep the per-µop
   hook call allocation-free. *)
let no_result = min_int

type t = {
  (* [active] lets the engine skip the [instrument]/[exec_uop] closure
     calls outright when no monitor needs them (the insecure machine):
     installers that assign those fields must also raise the flag. *)
  mutable active : bool;
  mutable instrument : ctx -> Chex86_isa.Uop.t list -> Chex86_isa.Uop.t list;
  mutable exec_uop : ctx -> Chex86_isa.Uop.t -> ea:int -> result:int -> reaction;
  mutable on_retire : ctx -> unit;  (* after a macro-op completes; always called *)
}

let none () =
  {
    active = false;
    instrument = (fun _ uops -> uops);
    exec_uop = (fun _ _ ~ea:_ ~result:_ -> no_reaction);
    on_retire = (fun _ -> ());
  }
