(* Simulated core configuration (Table III of the paper: Skylake-class). *)

type t = {
  frequency_ghz : float;
  fetch_width : int;  (* fused uops (macro-ops) per cycle *)
  issue_width : int;  (* unfused uops per cycle *)
  commit_width : int;
  rob_size : int;
  iq_size : int;
  lq_size : int;
  sq_size : int;
  int_regs : int;
  fp_regs : int;
  ras_size : int;
  btb_size : int;
  int_alu_units : int;
  int_mult_units : int;
  fp_alu_units : int;
  simd_units : int;
  load_ports : int;
  store_ports : int;
  front_end_depth : int;  (* fetch-to-dispatch stages *)
  mispredict_penalty : int;  (* redirect cost on top of resolve *)
  msrom_extra_cycles : int;  (* decode penalty for MSROM macro-ops *)
}

let default =
  {
    frequency_ghz = 3.4;
    fetch_width = 4;
    issue_width = 6;
    commit_width = 6;
    rob_size = 224;
    iq_size = 64;
    lq_size = 72;
    sq_size = 56;
    int_regs = 180;
    fp_regs = 168;
    ras_size = 64;
    btb_size = 4096;
    int_alu_units = 6;
    int_mult_units = 1;
    fp_alu_units = 3;
    simd_units = 3;
    load_ports = 2;
    store_ports = 1;
    front_end_depth = 5;
    mispredict_penalty = 14;
    msrom_extra_cycles = 2;
  }

(* Cache cells come from the live hierarchy config, not a hardcode: the
   rendered Table III must track whatever preset is actually running. *)
let cache_cell ~sets ~ways ~line_bytes =
  let kb = sets * ways * line_bytes / 1024 in
  Printf.sprintf "%d KB, %d way" kb ways

let rows ?(hier = Chex86_mem.Hierarchy.default_config) t =
  let l1 =
    cache_cell ~sets:hier.Chex86_mem.Hierarchy.l1_sets ~ways:hier.l1_ways
      ~line_bytes:hier.line_bytes
  in
  let l2 =
    cache_cell ~sets:hier.Chex86_mem.Hierarchy.l2_sets ~ways:hier.l2_ways
      ~line_bytes:hier.line_bytes
  in
  [
    [ "Frequency"; Printf.sprintf "%.1f GHz" t.frequency_ghz; "I cache"; l1 ];
    [ "Fetch width"; Printf.sprintf "%d fused uops" t.fetch_width; "D cache"; l1 ];
    [
      "L2 cache";
      Printf.sprintf "%s, %s" l2
        (Chex86_mem.Cache.policy_name hier.Chex86_mem.Hierarchy.replacement);
      "Line size";
      Printf.sprintf "%d B" hier.Chex86_mem.Hierarchy.line_bytes;
    ];
    [
      "Issue width";
      Printf.sprintf "%d unfused uops" t.issue_width;
      "ROB size";
      Printf.sprintf "%d entries" t.rob_size;
    ];
    [
      "INT/FP Regfile";
      Printf.sprintf "%d/%d regs" t.int_regs t.fp_regs;
      "IQ";
      Printf.sprintf "%d entries" t.iq_size;
    ];
    [
      "RAS size";
      Printf.sprintf "%d entries" t.ras_size;
      "BTB size";
      Printf.sprintf "%d entries" t.btb_size;
    ];
    [
      "LQ/SQ size";
      Printf.sprintf "%d/%d entries" t.lq_size t.sq_size;
      "Functional";
      Printf.sprintf "Int ALU (%d) / Mult (%d)," t.int_alu_units t.int_mult_units;
    ];
    [
      "Branch Predictor";
      "LTAGE";
      "Units";
      Printf.sprintf "FPALU (%d) / SIMD (%d)" t.fp_alu_units t.simd_units;
    ];
  ]
