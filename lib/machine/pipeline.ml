(* Dependence-driven out-of-order timing model.

   Consumes the engine's step records in program order and computes, for
   every micro-op, the cycle at which it fetches, dispatches, issues,
   completes and commits, subject to:

   - fetch bandwidth (fused macro-ops/cycle) and I-cache misses;
   - finite ROB / IQ / LQ / SQ occupancy (an entry is reused only after
     the micro-op that held it released it);
   - data dependences through registers, flags and memory (store-to-load
     forwarding on 8-byte granules);
   - functional-unit pools (Table III);
   - branch mispredictions and alias-misprediction flushes, which stall
     the front-end from the resolving micro-op's completion plus the
     redirect penalty (the squashed-slot accounting behind Fig 8).

   Wrong-path work is modelled purely as these stalls: the functional
   engine is an in-order oracle, which is the standard trace-driven
   simplification documented in DESIGN.md. *)

open Chex86_isa

(* Int-specialized max/min: the polymorphic [Stdlib.max] compiles to a
   generic-compare C call without flambda, and this file calls it a
   dozen times per micro-op.  These inline to a compare+cmov. *)
let imax (a : int) (b : int) = if a >= b then a else b
let imin (a : int) (b : int) = if a <= b then a else b

let loc_slots = Reg.count + Insn.xmm_count + 2 + 1
let flags_slot = loc_slots - 1

let slot_of_loc = function
  | Uop.Greg r -> Reg.index r
  | Uop.Xreg i -> Reg.count + i
  | Uop.Tmp i -> Reg.count + Insn.xmm_count + i

type t = {
  cfg : Config.t;
  hier : Chex86_mem.Hierarchy.t;
  bpred : Bpred.t;
  counters : Chex86_stats.Counter.group;
  reg_ready : int array;
  rob : int array;
  mutable rob_pos : int;
  iq : int array;
  mutable iq_pos : int;
  lq : int array;
  mutable lq_pos : int;
  sq : int array;
  mutable sq_pos : int;
  fu_free : int array array;  (* per fu class, per unit *)
  (* Store-to-load forwarding: a direct-mapped table over 8-byte granules.
     [fwd_granule.(slot)] holds the full granule number (-1 when empty)
     and [fwd_ready.(slot)] the cycle its store data forwards.  A
     conflicting store evicts only its own slot — the old hashtable
     dropped *all* in-flight forwarding state wholesale once it crossed
     8192 entries. *)
  fwd_granule : int array;
  fwd_ready : int array;
  mutable fetch_cycle : int;
  mutable fetch_slots : int;
  mutable last_commit : int;
  mutable commit_cycle : int;
  mutable commit_slots : int;
  mutable last_fetch_line : int;
  mutable published_cycles : int;
  (* Pre-resolved counters for the per-µop/per-step paths. *)
  h_uops : Chex86_stats.Counter.handle;
  h_uops_injected : Chex86_stats.Counter.handle;
  h_uops_killed : Chex86_stats.Counter.handle;
  h_macro_insns : Chex86_stats.Counter.handle;
  h_squash_cycles : Chex86_stats.Counter.handle;
  h_branch_flushes : Chex86_stats.Counter.handle;
  h_alias_flushes : Chex86_stats.Counter.handle;
  h_cycles : Chex86_stats.Counter.handle;
}

let fwd_size = 8192  (* slots; power of 2, indexed by the granule's low bits *)

let fu_index = function
  | Uop.FU_int -> 0
  | Uop.FU_mult -> 1
  | Uop.FU_fp -> 2
  | Uop.FU_load -> 3
  | Uop.FU_store -> 4
  | Uop.FU_branch -> 5
  | Uop.FU_none -> 6

let create ?(config = Config.default) hier counters =
  {
    cfg = config;
    hier;
    bpred = Bpred.create counters;
    counters;
    reg_ready = Array.make loc_slots 0;
    rob = Array.make config.rob_size 0;
    rob_pos = 0;
    iq = Array.make config.iq_size 0;
    iq_pos = 0;
    lq = Array.make config.lq_size 0;
    lq_pos = 0;
    sq = Array.make config.sq_size 0;
    sq_pos = 0;
    fu_free =
      [|
        Array.make config.int_alu_units 0;
        Array.make config.int_mult_units 0;
        Array.make config.fp_alu_units 0;
        Array.make config.load_ports 0;
        Array.make config.store_ports 0;
        Array.make 1 0 (* branch unit *);
        Array.make 1 0 (* none *);
      |];
    fwd_granule = Array.make fwd_size (-1);
    fwd_ready = Array.make fwd_size 0;
    fetch_cycle = 0;
    fetch_slots = 0;
    last_commit = 0;
    commit_cycle = 0;
    commit_slots = 0;
    last_fetch_line = -1;
    published_cycles = 0;
    h_uops = Chex86_stats.Counter.handle counters "pipeline.uops";
    h_uops_injected = Chex86_stats.Counter.handle counters "pipeline.uops_injected";
    h_uops_killed = Chex86_stats.Counter.handle counters "pipeline.uops_killed";
    h_macro_insns = Chex86_stats.Counter.handle counters "pipeline.macro_insns";
    h_squash_cycles = Chex86_stats.Counter.handle counters "pipeline.squash_cycles";
    h_branch_flushes = Chex86_stats.Counter.handle counters "pipeline.branch_flushes";
    h_alias_flushes = Chex86_stats.Counter.handle counters "pipeline.alias_flushes";
    h_cycles = Chex86_stats.Counter.handle counters "pipeline.cycles";
  }

(* Earliest free unit of a class at or after [want]; books the unit until
   [until]. *)
let acquire_fu t cls want until_delta =
  let units = t.fu_free.(fu_index cls) in
  let best = ref 0 in
  for i = 1 to Array.length units - 1 do
    if units.(i) < units.(!best) then best := i
  done;
  let start = imax want units.(!best) in
  units.(!best) <- start + until_delta;
  start

(* Zero-idiom kills inflate [fetch_slots] past [fetch_width] in one shot;
   carry the full overflow into whole fetch cycles rather than charging a
   single cycle for an arbitrarily large backlog (a kill burst of
   [3 * fetch_width] µops must cost three fetch cycles, not one). *)
let consume_fetch_slot t =
  if t.fetch_slots >= t.cfg.fetch_width then begin
    t.fetch_cycle <- t.fetch_cycle + (t.fetch_slots / t.cfg.fetch_width);
    t.fetch_slots <- t.fetch_slots mod t.cfg.fetch_width
  end;
  t.fetch_slots <- t.fetch_slots + 1

(* [reason] is a pre-resolved flush counter (branch vs alias). *)
let redirect t ~resolve_time ~(reason : Chex86_stats.Counter.handle) =
  let new_fetch = resolve_time + t.cfg.mispredict_penalty in
  if new_fetch > t.fetch_cycle then begin
    (* Squash accounting (Fig 8 bottom): the redirect penalty itself is
       the squashed-slot time; the remaining gap is resolve/drain latency
       that an out-of-order machine overlaps with older work. *)
    Chex86_stats.Counter.incr_handle
      ~by:(imin (new_fetch - t.fetch_cycle) t.cfg.mispredict_penalty)
      t.counters t.h_squash_cycles;
    t.fetch_cycle <- new_fetch;
    t.fetch_slots <- 0
  end;
  Chex86_stats.Counter.incr_handle t.counters reason

let commit_in_order t complete =
  let c = imax complete (imax t.last_commit t.commit_cycle) in
  if c > t.commit_cycle then begin
    t.commit_cycle <- c;
    t.commit_slots <- 1
  end
  else if t.commit_slots < t.cfg.commit_width then t.commit_slots <- t.commit_slots + 1
  else begin
    t.commit_cycle <- t.commit_cycle + 1;
    t.commit_slots <- 1
  end;
  t.last_commit <- t.commit_cycle;
  t.commit_cycle

let granule addr = addr lsr 3

(* Advance a queue cursor known to be in [0, size): a compare beats the
   idiv that [mod] costs on this per-µop path. *)
let bump pos size = let p = pos + 1 in if p = size then 0 else p

(* Maximum readiness over a micro-op's source locations — the same set
   [Uop.reads] describes, folded in place so the per-µop path builds no
   lists. *)
let max_loc t acc l = imax acc t.reg_ready.(slot_of_loc l)

let max_src t acc = function Uop.Loc l -> max_loc t acc l | Uop.Imm _ -> acc

let max_mem t acc (m : Insn.mem) =
  let acc = match m.base with Some r -> imax acc t.reg_ready.(Reg.index r) | None -> acc in
  match m.index with Some r -> imax acc t.reg_ready.(Reg.index r) | None -> acc

let reads_ready t acc (uop : Uop.t) =
  match uop with
  | Mov { src; _ } -> max_loc t acc src
  | Limm _ -> acc
  | Alu { src1; src2; _ } | Cmp { src1; src2; _ } -> max_src t (max_loc t acc src1) src2
  | Lea { mem; _ } | Load { mem; _ } -> max_mem t acc mem
  | Store { src; mem; _ } -> max_mem t (max_src t acc src) mem
  | Fp { dst; src; _ } -> max_loc t (max_loc t acc dst) src
  | Cvt { src; _ } -> max_loc t acc src
  | Branch _ -> acc
  | Cap (Cap_check { mem; _ }) | Guard { mem; _ } -> max_mem t acc mem
  | Cap _ | Nop -> acc

(* Process one executed micro-op; [dispatch_base] is when the front end
   delivered it. [native_latency] inflates the base latency (stub
   bodies). Returns its completion time. *)
let process_uop t ~pc ~dispatch_base ~native_latency (eu : Engine.exec_uop) branch =
  let uop = eu.uop in
  Chex86_stats.Counter.incr_handle t.counters t.h_uops;
  if Uop.is_injected uop then Chex86_stats.Counter.incr_handle t.counters t.h_uops_injected;
  (* Structural occupancy: reusing a ROB/IQ/LQ/SQ slot waits for its
     previous holder. *)
  let dispatch = imax dispatch_base t.rob.(t.rob_pos) in
  let dispatch = imax dispatch t.iq.(t.iq_pos) in
  let dispatch =
    match uop with
    | Load _ | Guard { kind = Shadow_load; _ } -> imax dispatch t.lq.(t.lq_pos)
    | Store _ -> imax dispatch t.sq.(t.sq_pos)
    | _ -> dispatch
  in
  (* Source readiness. *)
  let ready = reads_ready t dispatch uop in
  let ready =
    match uop with
    | Branch { kind = Cond _; _ } -> imax ready t.reg_ready.(flags_slot)
    | _ -> ready
  in
  let cls = Uop.fu_class uop in
  let complete =
    match uop with
    | Nop when native_latency > 0 ->
      let issue = acquire_fu t FU_int ready 1 in
      issue + native_latency
    | Nop -> ready + 1
    | Load _ ->
      let ea = eu.ea in
      let issue = acquire_fu t cls ready 1 in
      let mem_lat = Chex86_mem.Hierarchy.access t.hier ~kind:Data ~write:false ea in
      let g = granule ea in
      let slot = g land (fwd_size - 1) in
      if t.fwd_granule.(slot) = g then imax (issue + 1) t.fwd_ready.(slot)
      else issue + mem_lat
    | Store _ ->
      let ea = eu.ea in
      let issue = acquire_fu t cls ready 1 in
      ignore (Chex86_mem.Hierarchy.access t.hier ~kind:Data ~write:true ea);
      let g = granule ea in
      let slot = g land (fwd_size - 1) in
      (* Direct-mapped: a conflicting granule displaces only this slot. *)
      t.fwd_granule.(slot) <- g;
      t.fwd_ready.(slot) <- issue + 1;
      issue + 1
    | Guard { kind = Shadow_load; _ } ->
      (* ASan shadow byte load: real D-cache traffic in shadow space. *)
      let ea = eu.ea in
      let shadow_addr = 0x7FFF_8000_0000 + (ea lsr 3) in
      let issue = acquire_fu t cls ready 1 in
      issue + Chex86_mem.Hierarchy.access t.hier ~kind:Data ~write:false shadow_addr
    | _ ->
      let issue = acquire_fu t cls ready 1 in
      issue + Uop.latency uop
  in
  let complete = complete + eu.reaction.Hooks.extra_latency in
  (* Off-critical-path validation work (capability cache misses, alias
     walks) holds the entry longer but does not delay dependents. *)
  let resolved = complete + eu.reaction.Hooks.commit_latency in
  (* Publish results — same destinations as [Uop.writes], matched
     directly so no [Some] is built per µop. *)
  (match uop with
  | Mov { dst; _ }
  | Limm { dst; _ }
  | Alu { dst; _ }
  | Lea { dst; _ }
  | Load { dst; _ }
  | Fp { dst; _ }
  | Cvt { dst; _ } ->
    t.reg_ready.(slot_of_loc dst) <- complete
  | Store _ | Cmp _ | Branch _ | Cap _ | Guard _ | Nop -> ());
  (match uop with
  | Alu _ | Cmp _ -> t.reg_ready.(flags_slot) <- complete
  | _ -> ());
  (* Record occupancy release times. *)
  t.iq.(t.iq_pos) <- complete;
  t.iq_pos <- bump t.iq_pos t.cfg.iq_size;
  (match uop with
  | Load _ | Guard { kind = Shadow_load; _ } ->
    t.lq.(t.lq_pos) <- resolved;
    t.lq_pos <- bump t.lq_pos t.cfg.lq_size
  | Store _ ->
    t.sq.(t.sq_pos) <- resolved;
    t.sq_pos <- bump t.sq_pos t.cfg.sq_size
  | _ -> ());
  let commit = commit_in_order t resolved in
  t.rob.(t.rob_pos) <- commit;
  t.rob_pos <- bump t.rob_pos t.cfg.rob_size;
  (* Control resolution. *)
  (match (uop, branch) with
  | Branch { kind; _ }, Some (bi : Engine.branch_info) ->
    let correct =
      match kind with
      | Uop.Call when (match bi.kind with Uop.Indirect -> true | _ -> false) ->
        (* Indirect call: BTB-predicted target + RAS push of pc+4. *)
        Bpred.ras_push t.bpred (pc + 4);
        Bpred.resolve t.bpred ~pc ~kind:Uop.Indirect ~taken:true ~target:bi.target
      | _ -> Bpred.resolve t.bpred ~pc ~kind:bi.kind ~taken:bi.taken ~target:bi.target
    in
    if not correct then redirect t ~resolve_time:complete ~reason:t.h_branch_flushes
  | _ -> ());
  if eu.reaction.Hooks.flush then
    redirect t ~resolve_time:resolved ~reason:t.h_alias_flushes;
  complete

let native_cost = function
  | "malloc" | "calloc" | "realloc" | "free" -> 40
  | "memset" | "memcpy" -> 60
  | _ -> 10

let on_step t (step : Engine.step) =
  Chex86_stats.Counter.incr_handle t.counters t.h_macro_insns;
  (* Front end: I-cache line fetch + fetch bandwidth + decode path. *)
  let line = step.pc lsr 6 in
  if line <> t.last_fetch_line then begin
    t.last_fetch_line <- line;
    let lat = Chex86_mem.Hierarchy.access t.hier ~kind:Inst ~write:false step.pc in
    (* Charge miss stalls beyond the pipelined L1I hit latency. *)
    if lat > 4 then t.fetch_cycle <- t.fetch_cycle + (lat - 4)
  end;
  consume_fetch_slot t;
  (match step.path with
  | Decoder.Msrom -> t.fetch_cycle <- t.fetch_cycle + t.cfg.msrom_extra_cycles
  | _ -> ());
  let dispatch_base = t.fetch_cycle + t.cfg.front_end_depth in
  let native_latency = match step.native with Some n -> native_cost n | None -> 0 in
  let uops = step.uops in
  let n = Array.length uops in
  for i = 0 to n - 1 do
    let eu = uops.(i) in
    (* Zero-idiom kills (PNA0): consume decode bandwidth only. *)
    let killed = eu.Engine.reaction.Hooks.killed_uops in
    if killed > 0 then begin
      Chex86_stats.Counter.incr_handle ~by:killed t.counters t.h_uops_killed;
      t.fetch_slots <- t.fetch_slots + killed
    end;
    let branch = if i = n - 1 then step.branch else None in
    ignore (process_uop t ~pc:step.pc ~dispatch_base ~native_latency eu branch)
  done

let cycles t = t.last_commit

(* Publish the cycle total as a delta since the last publication:
   overwriting the counter (the old Counter.set) is unsafe under the
   pool's additive snapshot merging — a re-finalized pipeline would
   double-count, and a merged group would clobber siblings. *)
let finalize t =
  let total = cycles t in
  Chex86_stats.Counter.incr_handle ~by:(total - t.published_cycles) t.counters t.h_cycles;
  t.published_cycles <- total
