(* CHEx86 design variants and configuration (Section IV / Fig 6).

   - [Hardware_only]: no micro-op injection; the load/store unit performs
     the capability check as part of every memory micro-op.
   - [Binary_translation]: every register-memory macro-op is dynamically
     instrumented with ISA-extension check micro-ops by a binary
     translator (translation overhead charged per newly seen PC).
   - [Microcode_always_on]: the microcode customization unit injects a
     capCheck for every load/store, regardless of pointer activity.
   - [Microcode_prediction]: the default CHEx86 — capCheck only for
     dereferences whose base register carries a non-zero PID, driven by
     the speculative pointer tracker and alias predictor.

   [scope] enables the context-sensitive mode: only instruction addresses
   inside the given ranges receive check injection (allocations are
   always tracked). *)

type scheme =
  | Insecure
  | Hardware_only
  | Binary_translation
  | Microcode_always_on
  | Microcode_prediction

type scope = All_code | Ranges of (int * int) list

type t = {
  scheme : scheme;
  scope : scope;
  cap_cache_entries : int;
  alias_cache_sets : int;  (* x 2 ways *)
  alias_victim_entries : int;
  predictor_entries : int;
  max_alloc_bytes : int;  (* resource-exhaustion limit, 1 GB in the paper *)
  cap_table_latency : int;  (* shadow capability table access on cache miss *)
  alias_walk_latency_per_level : int;
  bt_translation_cycles : int;  (* per newly translated macro-op *)
  (* Ablation knobs (all on by default; the ablation benches switch them
     off to measure each mechanism's contribution). *)
  predictor_stride : bool;  (* stride field of the alias predictor *)
  predictor_blacklist : bool;  (* non-reload blacklist *)
  tlb_alias_filter : bool;  (* per-page alias-hosting TLB filter *)
  (* Opt-in extension: flag reads of never-written heap bytes.  Off by
     default — reading self-managed uninitialized buffers is legal C. *)
  detect_uninitialized : bool;
}

let make ?(scope = All_code) ?(cap_cache_entries = 64) ?(alias_cache_sets = 128)
    ?(alias_victim_entries = 32) ?(predictor_entries = 512)
    ?(max_alloc_bytes = 1 lsl 30) ?(predictor_stride = true)
    ?(predictor_blacklist = true) ?(tlb_alias_filter = true)
    ?(detect_uninitialized = false) scheme =
  {
    scheme;
    scope;
    cap_cache_entries;
    alias_cache_sets;
    alias_victim_entries;
    predictor_entries;
    max_alloc_bytes;
    cap_table_latency = 20;
    alias_walk_latency_per_level = 8;
    bt_translation_cycles = 30;
    predictor_stride;
    predictor_blacklist;
    tlb_alias_filter;
    detect_uninitialized;
  }

let default = make Microcode_prediction

(* Re-size the monitor structures for a non-stock µarch preset.  Only
   fields still carrying the stock defaults move: an ablation sweep that
   hand-picked [cap_cache_entries = 128] keeps it even under `--cpu`. *)
let resize ~cap_cache_entries ~alias_cache_sets ~alias_victim_entries t =
  {
    t with
    cap_cache_entries =
      (if t.cap_cache_entries = default.cap_cache_entries then cap_cache_entries
       else t.cap_cache_entries);
    alias_cache_sets =
      (if t.alias_cache_sets = default.alias_cache_sets then alias_cache_sets
       else t.alias_cache_sets);
    alias_victim_entries =
      (if t.alias_victim_entries = default.alias_victim_entries then alias_victim_entries
       else t.alias_victim_entries);
  }

let scheme_name = function
  | Insecure -> "Insecure BaseLine"
  | Hardware_only -> "CHEx86: Hardware Only"
  | Binary_translation -> "CHEx86: Binary Translation"
  | Microcode_always_on -> "CHEx86: Micro-code Level - Always On"
  | Microcode_prediction -> "CHEx86: Micro-code Prediction Driven"

(* Matched, not [<>]: this runs per macro-op in Monitor.instrument and a
   structural compare on the enum is a generic-compare call. *)
let protects t = match t.scheme with Insecure -> false | _ -> true

let in_scope t pc =
  match t.scope with
  | All_code -> true
  | Ranges ranges -> List.exists (fun (lo, hi) -> pc >= lo && pc < hi) ranges
