(** End-to-end convenience driver: load a program, attach a CHEx86
    monitor, run on the timing model. *)

type outcome =
  | Completed
  | Violation_detected of Violation.kind
  | Heap_abort of string  (** allocator integrity check fired *)
  | Guest_fault of string
  | Budget_exhausted

type run = {
  outcome : outcome;
  result : Chex86_machine.Simulator.result;
  monitor : Monitor.t;
  proc : Chex86_os.Process.t;
  profile : Chex86_os.Heap_profile.t option;
}

(** [run program] under [variant] (default: microcode prediction-driven).
    [config]/[hier_config] default from the installed
    {!Chex86_machine.Preset}; a non-stock preset also resizes the
    monitor structures of variants still carrying the stock sizes.
    [timing:false] skips the cycle model; [with_checker] attaches the
    hardware checker; [configure] runs against the monitor before the
    simulation starts; [profile_interval] attaches a Fig 3 heap
    profiler; [heap] selects the allocator personality. *)
val run :
  ?variant:Variant.t ->
  ?config:Chex86_machine.Config.t ->
  ?hier_config:Chex86_mem.Hierarchy.config ->
  ?max_insns:int ->
  ?timing:bool ->
  ?with_checker:bool ->
  ?configure:(Monitor.t -> unit) ->
  ?profile_interval:int ->
  ?heap:Chex86_os.Allocator.personality ->
  Chex86_isa.Program.t ->
  run
