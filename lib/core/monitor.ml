(* The CHEx86 monitor: glues the microcode customization unit, the
   shadow capability table/cache, the speculative pointer tracker and the
   alias prediction machinery into the machine's hook interface.

   Decode time ([instrument]): intercept registered heap-function
   entry/exit points (capGen/capFree injection), propagate PIDs through
   the crack with the rule database, predict PIDs for pointer reloads,
   and inject capCheck/guard micro-ops per the active variant and scope.

   Execute time ([exec_uop]): perform capability checks (raising
   [Violation.Security_violation]), validate alias predictions against
   the shadow alias table (PNA0 / P0AN / PMAN recovery), spill PIDs of
   stored pointers, and charge shadow-structure latencies. *)

open Chex86_isa
module Os = Chex86_os
module Mem = Chex86_mem
module Machine = Chex86_machine

type pending_alloc = { pid : int; kind : Os.Msrs.kind; realloc_old : int }

(* Shadow state shared by the per-core monitors of an SMP system: the
   memory-resident capability and alias tables, the page-table
   alias-hosting bits, the invalidation bus, and the (once-registered)
   global capabilities. *)
type shared = {
  s_cap_table : Cap_table.t;
  s_alias_table : Alias_table.t;
  s_alias_pages : (int, unit) Hashtbl.t;  (* vpn -> hosting *)
  s_bus : Bus.t;
  mutable s_globals : (int * int * int) array option;
}

let make_shared counters =
  {
    s_cap_table = Cap_table.create counters;
    s_alias_table = Alias_table.create counters;
    s_alias_pages = Hashtbl.create 256;
    s_bus = Bus.create counters;
    s_globals = None;
  }

type inject_memo = { m_pids : int array; mutable m_uops : Uop.t list }

type t = {
  variant : Variant.t;
  (* Scheme predicates hoisted out of the per-µop paths: a structural
     [=] on the scheme enum is a generic-compare call without flambda. *)
  is_bt : bool;
  is_hw_only : bool;
  is_prediction : bool;
  is_microcode : bool;  (* always_on or prediction: the memoized check-injection path *)
  rules : Rules.t;
  cap_table : Cap_table.t;
  cap_cache : Cap_cache.t;
  tracker : Tracker.t;
  alias_table : Alias_table.t;
  alias_cache : Mem.Cache.t;
  predictor : Alias_predictor.t;
  msrs : Os.Msrs.t;
  tlb : Mem.Tlb.t;
  hier : Mem.Hierarchy.t;
  counters : Chex86_stats.Counter.group;
  mutable globals : (int * int * int) array;  (* (addr, size, pid), sorted *)
  mutable pending_alloc : pending_alloc option;
  mutable pending_free : int option;
  (* (pc, predicted pid) FIFO per tracked load, as parallel int rings:
     a [Queue] of tuples boxes two blocks per push on the per-load
     decode path.  Power-of-two capacity; head/tail grow monotonically. *)
  mutable pq_pc : int array;
  mutable pq_pid : int array;
  mutable pq_head : int;
  mutable pq_tail : int;
  lsu_checks : (int * bool) Queue.t;  (* hardware-only: (pid, is_store) per mem uop *)
  bt_translated : (int, unit) Hashtbl.t;
  (* Per-PC memo of the check-spliced crack (microcode schemes only):
     [mem]/[width]/[is_store] are fixed per site, so the spliced list is
     fully determined by the PIDs captured at decode.  [memo_pids] is the
     scratch the capture walk fills each step. *)
  inject_memo : Mem.Intmap.t;  (* pc -> index into [memo_tbl] *)
  mutable memo_tbl : inject_memo array;
  mutable memo_n : int;
  memo_pids : int array;
  mutable pending_bt_cost : int;
  (* Reaction ring pool + [validate_prediction]'s out-params: the per-
     checked-access timing feedback must not box a record or tuple. *)
  rpool : Machine.Hooks.pool;
  mutable vp_flush : bool;
  mutable vp_killed : int;
  mutable checker : Checker.t option;
  (* Observation hook: fires for every executed capability check with the
     PID it validated (used to recover Table II's temporal PID streams). *)
  mutable on_check : pc:int -> pid:int -> is_store:bool -> unit;
  (* SMP: which hardware thread this monitor serves, and the shared
     shadow state + invalidation bus. *)
  core : int;
  shared : shared option;
  (* Pre-resolved counters for the per-check / per-tracked-load paths. *)
  h_cap_checks : Chex86_stats.Counter.handle;
  h_cap_generated : Chex86_stats.Counter.handle;
  h_cap_freed : Chex86_stats.Counter.handle;
  h_tlb_filtered : Chex86_stats.Counter.handle;
  h_pred_events : Chex86_stats.Counter.handle;
  h_pred_correct : Chex86_stats.Counter.handle;
  h_pred_reloads : Chex86_stats.Counter.handle;
  h_pred_pna0 : Chex86_stats.Counter.handle;
  h_pred_p0an : Chex86_stats.Counter.handle;
  h_pred_pman : Chex86_stats.Counter.handle;
  h_queue_empty : Chex86_stats.Counter.handle;
  h_queue_mismatch : Chex86_stats.Counter.handle;
  h_spills : Chex86_stats.Counter.handle;
  h_bt_translated : Chex86_stats.Counter.handle;
}

let create ?(variant = Variant.default) ?(core = 0) ?shared ~proc ~hier () =
  let counters = proc.Os.Process.counters in
  let victim =
    if variant.Variant.alias_victim_entries = 0 then None
    else
      Some
        (Mem.Cache.create ~name:"aliasvictim" ~sets:1
           ~ways:variant.Variant.alias_victim_entries ~line_bytes:8 counters)
  in
  let t =
    {
      variant;
      is_bt = (match variant.Variant.scheme with Variant.Binary_translation -> true | _ -> false);
      is_hw_only = (match variant.Variant.scheme with Variant.Hardware_only -> true | _ -> false);
      is_prediction =
        (match variant.Variant.scheme with Variant.Microcode_prediction -> true | _ -> false);
      is_microcode =
        (match variant.Variant.scheme with
        | Variant.Microcode_always_on | Variant.Microcode_prediction -> true
        | _ -> false);
      rules = Rules.create ();
      cap_table =
        (match shared with
        | Some s -> s.s_cap_table
        | None -> Cap_table.create counters);
      cap_cache = Cap_cache.create ~entries:variant.Variant.cap_cache_entries counters;
      tracker = Tracker.create ();
      alias_table =
        (match shared with
        | Some s -> s.s_alias_table
        | None -> Alias_table.create counters);
      alias_cache =
        Mem.Cache.create ?victim ~hash_index:true ~name:"aliascache"
          ~sets:variant.Variant.alias_cache_sets ~ways:2 ~line_bytes:8 counters;
      predictor =
        Alias_predictor.create ~entries:variant.Variant.predictor_entries
          ~use_stride:variant.Variant.predictor_stride
          ~use_blacklist:variant.Variant.predictor_blacklist counters;
      msrs = proc.Os.Process.msrs;
      tlb = Mem.Hierarchy.dtlb hier;
      hier;
      counters;
      globals = [||];
      pending_alloc = None;
      pending_free = None;
      pq_pc = Array.make 64 0;
      pq_pid = Array.make 64 0;
      pq_head = 0;
      pq_tail = 0;
      lsu_checks = Queue.create ();
      bt_translated = Hashtbl.create 4096;
      inject_memo = Mem.Intmap.create ~capacity:2048 ();
      memo_tbl = [||];
      memo_n = 0;
      memo_pids = Array.make 16 0;  (* cracks are <= 8 micro-ops *)
      pending_bt_cost = 0;
      rpool = Machine.Hooks.pool ();
      vp_flush = false;
      vp_killed = 0;
      checker = None;
      on_check = (fun ~pc:_ ~pid:_ ~is_store:_ -> ());
      core;
      shared;
      h_cap_checks = Chex86_stats.Counter.handle counters "cap.checks";
      h_cap_generated = Chex86_stats.Counter.handle counters "cap.generated";
      h_cap_freed = Chex86_stats.Counter.handle counters "cap.freed";
      h_tlb_filtered = Chex86_stats.Counter.handle counters "alias.tlb_filtered";
      h_pred_events = Chex86_stats.Counter.handle counters "alias.pred_events";
      h_pred_correct = Chex86_stats.Counter.handle counters "alias.pred_correct";
      h_pred_reloads = Chex86_stats.Counter.handle counters "alias.pred_reloads";
      h_pred_pna0 = Chex86_stats.Counter.handle counters "alias.pred_pna0";
      h_pred_p0an = Chex86_stats.Counter.handle counters "alias.pred_p0an";
      h_pred_pman = Chex86_stats.Counter.handle counters "alias.pred_pman";
      h_queue_empty = Chex86_stats.Counter.handle counters "alias.queue_empty";
      h_queue_mismatch = Chex86_stats.Counter.handle counters "alias.queue_mismatch";
      h_spills = Chex86_stats.Counter.handle counters "alias.spills";
      h_bt_translated = Chex86_stats.Counter.handle counters "bt.translated_pcs";
    }
  in
  (* SMP: receive invalidations for this core's private caches. *)
  (match shared with
  | Some s ->
    Bus.subscribe s.s_bus ~core (function
      | Bus.Cap_invalidate pid -> Cap_cache.invalidate t.cap_cache pid
      | Bus.Alias_invalidate addr -> Mem.Cache.invalidate t.alias_cache addr)
  | None -> ());
  (* Symbol-table capabilities for globals (Section IV-C "Initial
     Configuration"); the insecure baseline builds no shadow state, and
     under SMP only the first core registers (the table is shared). *)
  if Variant.protects variant then begin
    match shared with
    | Some ({ s_globals = Some globals; _ } : shared) -> t.globals <- globals
    | Some ({ s_globals = None; _ } as s) ->
      let globals =
        List.map
          (fun (_, addr, size, writable) ->
            let cap = Cap_table.register t.cap_table ~writable ~base:addr ~size in
            (addr, size, cap.Capability.pid))
          (Os.Process.symbols proc)
      in
      let arr = Array.of_list (List.sort compare globals) in
      s.s_globals <- Some arr;
      t.globals <- arr
    | None ->
      let globals =
        List.map
          (fun (_, addr, size, writable) ->
            let cap = Cap_table.register t.cap_table ~writable ~base:addr ~size in
            (addr, size, cap.Capability.pid))
          (Os.Process.symbols proc)
      in
      t.globals <- Array.of_list (List.sort compare globals)
  end;
  t

let attach_checker t checker = t.checker <- Some checker
let checker t = t.checker
let set_on_check t f = t.on_check <- f
let variant t = t.variant
let cap_table t = t.cap_table
let tracker t = t.tracker
let alias_table t = t.alias_table
let rules t = t.rules
let predictor t = t.predictor

(* Shadow storage consumed by the capability and alias tables (Fig 9);
   the insecure baseline maintains none. *)
let shadow_storage_bytes t =
  if not (Variant.protects t.variant) then 0
  else Cap_table.storage_bytes t.cap_table + Alias_table.storage_bytes t.alias_table

(* PID of the global object containing [addr], or 0. *)
let global_pid_of t addr =
  let arr = t.globals in
  let n = Array.length arr in
  let rec bsearch lo hi =
    if lo >= hi then lo - 1
    else
      let mid = (lo + hi) / 2 in
      let a, _, _ = arr.(mid) in
      if a <= addr then bsearch (mid + 1) hi else bsearch lo mid
  in
  let i = bsearch 0 n in
  if i < 0 then 0
  else
    let a, size, pid = arr.(i) in
    if addr >= a && addr < a + size then pid else 0

let protects t = Variant.protects t.variant

(* PID guarding a memory operand: the base register's tag, or — for
   absolute addressing — the global object's capability (the
   constant-pool path of Section VII-B). *)
let mem_pid t (m : Insn.mem) =
  match m.base with
  | Some r -> Tracker.current_pid t.tracker (Uop.Greg r)
  | None -> global_pid_of t m.disp

(* --- prediction FIFO (int ring) ------------------------------------------ *)

let pq_grow t =
  let cap = Array.length t.pq_pc in
  let pc' = Array.make (2 * cap) 0 and pid' = Array.make (2 * cap) 0 in
  for i = 0 to t.pq_tail - t.pq_head - 1 do
    pc'.(i) <- t.pq_pc.((t.pq_head + i) land (cap - 1));
    pid'.(i) <- t.pq_pid.((t.pq_head + i) land (cap - 1))
  done;
  t.pq_tail <- t.pq_tail - t.pq_head;
  t.pq_head <- 0;
  t.pq_pc <- pc';
  t.pq_pid <- pid'

let pq_push t pc pid =
  let cap = Array.length t.pq_pc in
  if t.pq_tail - t.pq_head >= cap then pq_grow t;
  let m = Array.length t.pq_pc - 1 in
  t.pq_pc.(t.pq_tail land m) <- pc;
  t.pq_pid.(t.pq_tail land m) <- pid;
  t.pq_tail <- t.pq_tail + 1

let pq_is_empty t = t.pq_head = t.pq_tail

(* Callers check [pq_is_empty] first, as [Queue.pop] callers did. *)
let pq_pop_pc t = t.pq_pc.(t.pq_head land (Array.length t.pq_pc - 1))

let pq_pop_pid t =
  let pid = t.pq_pid.(t.pq_head land (Array.length t.pq_pid - 1)) in
  t.pq_head <- t.pq_head + 1;
  pid

(* --- decode-time: rule propagation -------------------------------------- *)

let tracked_load_dst width = function
  | (Uop.Greg _ | Uop.Tmp _) when width = Insn.W64 -> true
  | _ -> false

(* Per-micro-op, so deliberately allocation-free: [Tracker.assign] is the
   lock-step set+commit, destinations are matched directly (same cases as
   [Uop.writes]) and source PIDs read without an intermediate closure. *)
let apply_rule t pc (uop : Uop.t) =
  let tr = t.tracker in
  let seq = Tracker.next_seq tr in
  (match Rules.action_for t.rules uop with
  | Rules.Copy_src -> (
    match uop with
    | Mov { dst; src } -> Tracker.assign tr dst ~seq ~pid:(Tracker.current_pid tr src)
    | Lea { dst; mem } ->
      let pid =
        match mem.base with
        | Some b -> Tracker.current_pid tr (Uop.Greg b)
        | None -> global_pid_of t mem.disp
      in
      Tracker.assign tr dst ~seq ~pid
    | _ -> ())
  | Rules.Copy_first -> (
    match uop with
    | Alu { dst; src1; _ } ->
      Tracker.assign tr dst ~seq ~pid:(Tracker.current_pid tr src1)
    | _ -> ())
  | Rules.Nonzero_of_sources -> (
    match uop with
    | Alu { dst; src1; src2 = Uop.Loc s2; _ } ->
      Tracker.assign tr dst ~seq
        ~pid:
          (Rules.combine_nonzero (Tracker.current_pid tr src1)
             (Tracker.current_pid tr s2))
    | Alu { dst; src1; src2 = Uop.Imm _; _ } ->
      Tracker.assign tr dst ~seq ~pid:(Tracker.current_pid tr src1)
    | _ -> ())
  | Rules.From_memory -> (
    match uop with
    | Load { dst; width; _ } when tracked_load_dst width dst ->
      let predicted = Alias_predictor.predict t.predictor pc in
      Tracker.assign tr dst ~seq ~pid:predicted;
      pq_push t pc predicted
    | Load { dst; _ } -> Tracker.assign tr dst ~seq ~pid:0
    | _ -> ())
  | Rules.To_memory -> ()  (* alias spill handled at execute *)
  | Rules.Wild -> (
    match uop with
    | Limm { dst; _ } -> Tracker.assign tr dst ~seq ~pid:(-1)
    | _ -> ())
  | Rules.Clear -> (
    match uop with
    | Mov { dst; _ }
    | Limm { dst; _ }
    | Alu { dst; _ }
    | Lea { dst; _ }
    | Load { dst; _ }
    | Fp { dst; _ }
    | Cvt { dst; _ } ->
      Tracker.assign tr dst ~seq ~pid:0
    | Store _ | Cmp _ | Branch _ | Cap _ | Guard _ | Nop -> ()));
  if Tracker.has_transients tr then Tracker.commit_upto tr ~seq

(* --- decode-time: check injection ---------------------------------------- *)

let checks_for_mem t pc mem width ~is_store =
  let in_scope = Variant.in_scope t.variant pc in
  (
    match t.variant.Variant.scheme with
    | Variant.Insecure -> []
    | Variant.Hardware_only ->
      (* No injection; the LSU checks as part of the memory micro-op. *)
      Queue.push (mem_pid t mem, is_store) t.lsu_checks;
      []
    | Variant.Binary_translation ->
      if in_scope then begin
        (* Capture the PID at decode: the rule update for this very
           micro-op may retag the base register (pointer chase). *)
        Queue.push (mem_pid t mem, is_store) t.lsu_checks;
        [
          Uop.Guard { kind = Uop.Bt_bounds_low; mem; width; is_store };
          Uop.Guard { kind = Uop.Bt_bounds_high; mem; width; is_store };
        ]
      end
      else []
    | Variant.Microcode_always_on ->
      if in_scope then [ Uop.Cap (Uop.Cap_check { pid = mem_pid t mem; mem; width; is_store }) ]
      else []
    | Variant.Microcode_prediction ->
      let pid = mem_pid t mem in
      if in_scope && pid <> 0 then
        [ Uop.Cap (Uop.Cap_check { pid; mem; width; is_store }) ]
      else [])

(* Matched directly (not via [Uop.mem_operand]) so non-memory micro-ops
   pay nothing. *)
let checks_for t pc (uop : Uop.t) =
  match uop with
  | Uop.Load { mem; width; _ } -> checks_for_mem t pc mem width ~is_store:false
  | Uop.Store { mem; width; _ } -> checks_for_mem t pc mem width ~is_store:true
  | _ -> []

(* --- decode-time: heap-function interception ----------------------------- *)

let stub_injection t (ctx : Machine.Hooks.ctx) =
  match ctx.stub with
  | None -> []
  | Some (_, Machine.Hooks.Entry) -> (
    match Os.Msrs.lookup_entry t.msrs ctx.pc with
    | None -> []
    | Some reg -> (
      match reg.Os.Msrs.kind with
      | Os.Msrs.Malloc | Os.Msrs.Calloc | Os.Msrs.Realloc -> [ Uop.Cap Uop.Cap_gen_begin ]
      | Os.Msrs.Free ->
        let pid = Tracker.current_pid t.tracker (Uop.Greg Reg.RDI) in
        [ Uop.Cap (Uop.Cap_free_begin { pid }) ]))
  | Some (_, Machine.Hooks.Exit) -> (
    match Os.Msrs.lookup_exit t.msrs ctx.pc with
    | None -> []
    | Some reg -> (
      match reg.Os.Msrs.kind with
      | Os.Msrs.Malloc | Os.Msrs.Calloc | Os.Msrs.Realloc -> [ Uop.Cap Uop.Cap_gen_end ]
      | Os.Msrs.Free ->
        let pid = match t.pending_free with Some pid -> pid | None -> 0 in
        [ Uop.Cap (Uop.Cap_free_end { pid }) ]))

(* --- decode-time: memoized check injection (microcode schemes) ----------- *)

(* Interleaved capture+rules walk: each memory micro-op's decode-time PID
   is captured into [t.memo_pids] {e before} its own rule runs (the rule
   may retag the base register), exactly mirroring the generic path's
   [checks_for]-then-[apply_rule] order.  Returns the memory-micro-op
   count.  Top-level recursion: no closure per step. *)
let rec capture_walk t pc uops k =
  match uops with
  | [] -> k
  | uop :: rest ->
    let k =
      match uop with
      | Uop.Load { mem; _ } | Uop.Store { mem; _ } ->
        t.memo_pids.(k) <- mem_pid t mem;
        k + 1
      | _ -> k
    in
    apply_rule t pc uop;
    capture_walk t pc rest k

let rec pids_equal (pids : int array) (scratch : int array) n i =
  if i >= n then true else pids.(i) = scratch.(i) && pids_equal pids scratch n (i + 1)

(* Under prediction only nonzero PIDs inject; always-on checks every
   in-scope memory micro-op. *)
let rec needs_check t n i =
  if i >= n then false
  else if (not t.is_prediction) || t.memo_pids.(i) <> 0 then true
  else needs_check t n (i + 1)

(* Rebuild the spliced list from the captured PIDs; each check precedes
   its memory micro-op, as in the generic splice. *)
let rec rebuild_checks t scratch k uops =
  match uops with
  | [] -> []
  | uop :: rest -> (
    match uop with
    | Uop.Load { mem; width; _ } ->
      let pid = scratch.(k) in
      let rest' = rebuild_checks t scratch (k + 1) rest in
      if (not t.is_prediction) || pid <> 0 then
        Uop.Cap (Uop.Cap_check { pid; mem; width; is_store = false }) :: uop :: rest'
      else uop :: rest'
    | Uop.Store { mem; width; _ } ->
      let pid = scratch.(k) in
      let rest' = rebuild_checks t scratch (k + 1) rest in
      if (not t.is_prediction) || pid <> 0 then
        Uop.Cap (Uop.Cap_check { pid; mem; width; is_store = true }) :: uop :: rest'
      else uop :: rest'
    | _ -> uop :: rebuild_checks t scratch k rest)

let build_injected t pc uops n =
  if n = 0 || not (Variant.in_scope t.variant pc) || not (needs_check t n 0) then uops
  else rebuild_checks t t.memo_pids 0 uops

(* Same splice shape iff every site keeps its inject-or-not decision:
   always the case under always-on; under prediction a PID flipping
   between zero and nonzero changes the shape. *)
let rec same_shape t (old_pids : int array) (scratch : int array) n i =
  if i >= n then true
  else
    ((not t.is_prediction) || (old_pids.(i) <> 0) = (scratch.(i) <> 0))
    && same_shape t old_pids scratch n (i + 1)

(* Re-tag a memoized spliced list in place: each [Cap_check] precedes
   its memory micro-op and [Cap_check.pid] is mutable for exactly this.
   [k] counts memory micro-ops, matching the capture walk. *)
let rec patch_checks (scratch : int array) k uops =
  match uops with
  | [] -> ()
  | Uop.Cap (Uop.Cap_check r) :: rest -> (
    r.pid <- scratch.(k);
    match rest with _mem :: rest' -> patch_checks scratch (k + 1) rest' | [] -> ())
  | (Uop.Load _ | Uop.Store _) :: rest -> patch_checks scratch (k + 1) rest
  | _ :: rest -> patch_checks scratch k rest

(* Fast path for the microcode schemes (non-stub steps): the spliced
   crack is fully determined by (pc, captured PIDs), so it is memoized
   per site and reused while the PIDs repeat — the common case.  The
   rules walk still runs every step; the memo-hit path allocates
   nothing. *)
let instrument_microcode t (ctx : Machine.Hooks.ctx) uops =
  let pc = ctx.pc in
  let n = capture_walk t pc uops 0 in
  let i = Mem.Intmap.find t.inject_memo pc ~default:(-1) in
  if i >= 0 then begin
    let memo = t.memo_tbl.(i) in
    if not (pids_equal memo.m_pids t.memo_pids n 0) then begin
      if same_shape t memo.m_pids t.memo_pids n 0 then
        patch_checks t.memo_pids 0 memo.m_uops
      else memo.m_uops <- build_injected t pc uops n;
      Array.blit t.memo_pids 0 memo.m_pids 0 n
    end;
    memo.m_uops
  end
  else begin
    let memo = { m_pids = Array.sub t.memo_pids 0 n; m_uops = build_injected t pc uops n } in
    let i = t.memo_n in
    if i >= Array.length t.memo_tbl then begin
      let tbl = Array.make (if i = 0 then 256 else 2 * i) memo in
      Array.blit t.memo_tbl 0 tbl 0 i;
      t.memo_tbl <- tbl
    end;
    t.memo_tbl.(i) <- memo;
    t.memo_n <- i + 1;
    Mem.Intmap.set t.inject_memo pc i;
    memo.m_uops
  end

let instrument t (ctx : Machine.Hooks.ctx) uops =
  if not (protects t) then uops
  else
    match ctx.stub with
    | None when t.is_microcode -> instrument_microcode t ctx uops
    | _ ->
  begin
    (* Binary translation: charge a one-time translation cost per newly
       seen macro-op address. *)
    if t.is_bt && not (Hashtbl.mem t.bt_translated ctx.pc) then begin
      Hashtbl.add t.bt_translated ctx.pc ();
      t.pending_bt_cost <- t.pending_bt_cost + t.variant.Variant.bt_translation_cycles;
      Chex86_stats.Counter.incr_handle t.counters t.h_bt_translated
    end;
    let pre = stub_injection t ctx in
    (* Single interleaved pass: rules always run in place; the crack is
       only rebuilt when check micro-ops actually get spliced in (rare
       under the prediction scheme, where most PIDs read 0), otherwise
       the memoized list is returned as-is. *)
    let injected = ref [] in
    List.iteri
      (fun i uop ->
        (match checks_for t ctx.pc uop with
        | [] -> ()
        | checks -> injected := (i, checks) :: !injected);
        apply_rule t ctx.pc uop)
      uops;
    match (pre, !injected) with
    | [], [] -> uops
    | _ ->
      let inj = List.rev !injected in
      (* Cracks are <= 8 micro-ops, so plain recursion is fine. *)
      let rec splice i inj rest =
        match rest with
        | [] -> []
        | u :: tail -> (
          match inj with
          | (j, checks) :: inj' when j = i -> checks @ (u :: splice (i + 1) inj' tail)
          | _ -> u :: splice (i + 1) inj tail)
      in
      pre @ splice 0 inj uops
  end

(* --- execute-time -------------------------------------------------------- *)

(* Shadow address spaces for the capability and alias tables: misses
   are serviced through the regular cache hierarchy, so hot shadow lines
   stay in L2 and the DRAM bandwidth impact matches the paper's
   observation that it is negligible. *)
let cap_shadow_base = 0x7FE0_0000_0000
let alias_shadow_base = 0x7FD0_0000_0000

let cap_lookup_latency t pid =
  if pid <= 0 then 1
  else if Cap_cache.access t.cap_cache pid then 1
  else
    (* Miss: fetch the 128-bit capability from the shadow table. *)
    t.variant.Variant.cap_table_latency
    + Mem.Hierarchy.access t.hier ~kind:Mem.Hierarchy.Data ~write:false
        (cap_shadow_base + (pid * 16))

let do_check t ~pid ~ea ~width ~is_store =
  let latency = cap_lookup_latency t pid in
  if pid = -1 then raise (Violation.Security_violation (Wild_dereference { ea; is_store }));
  (if pid > 0 then
     match Cap_table.find t.cap_table pid with
     | None -> ()
     | Some cap ->
       if not cap.Capability.busy then begin
         if not cap.Capability.valid then
           raise (Violation.Security_violation (Use_after_free { pid; ea; is_store }));
         if not (Capability.contains cap ~ea ~width:(Insn.bytes_of_width width)) then
           raise
             (Violation.Security_violation
                (Out_of_bounds
                   {
                     pid;
                     ea;
                     base = cap.Capability.base;
                     size = cap.Capability.size;
                     is_store;
                   }));
         if is_store && not cap.Capability.writable then
           raise (Violation.Security_violation (Permission_denied { pid; ea; is_store }));
         if (not is_store) && not cap.Capability.readable then
           raise (Violation.Security_violation (Permission_denied { pid; ea; is_store }));
         (* Opt-in uninitialized-read extension: byte-granular
            write-before-read tracking on heap capabilities. *)
         let width_bytes = Insn.bytes_of_width width in
         if is_store then Capability.mark_initialized cap ~ea ~width:width_bytes
         else if
           t.variant.Variant.detect_uninitialized
           && not (Capability.is_initialized cap ~ea ~width:width_bytes)
         then raise (Violation.Security_violation (Uninitialized_read { pid; ea }))
       end);
  latency

(* Shadow alias lookup with the paper's three-stage filter: TLB
   alias-hosting bit, then the alias cache (+victim), then the 5-level
   table walk.  Returns (actual pid, latency). *)
(* Page-table alias-hosting bit: under SMP the authoritative bits are
   shared across cores (page-table metadata); single-core uses the TLB's
   side table. *)
let page_hosts_aliases t vpn =
  match t.shared with
  | Some s -> Hashtbl.mem s.s_alias_pages vpn
  | None -> Mem.Tlb.page_alias_bit t.tlb vpn

let alias_lookup t ea =
  if
    t.variant.Variant.tlb_alias_filter
    && not (page_hosts_aliases t (ea lsr Mem.Image.page_bits))
  then begin
    Chex86_stats.Counter.incr_handle t.counters t.h_tlb_filtered;
    (0, 0, false)
  end
  else if Mem.Cache.access t.alias_cache ~write:false ea then
    (Alias_table.find t.alias_table ea, 0, true)
  else begin
    let pid, levels = Alias_table.get t.alias_table ea in
    let line_latency =
      Mem.Hierarchy.access t.hier ~kind:Mem.Hierarchy.Data ~write:false
        (alias_shadow_base + (ea lsr 3 * 8))
    in
    (pid, (levels * t.variant.Variant.alias_walk_latency_per_level) + line_latency, true)
  end

let incr t (h : Chex86_stats.Counter.handle) = Chex86_stats.Counter.incr_handle t.counters h

(* Validate the front-end prediction for a pointer-reload candidate and
   drive the Fig 5 recovery paths. *)
(* Returns the validation latency; the flush / killed-check out-params
   land in [t.vp_flush]/[t.vp_killed] (no tuple per tracked load). *)
let validate_prediction t ~pc ~ea ~dst =
  t.vp_flush <- false;
  t.vp_killed <- 0;
  let predicted =
    if pq_is_empty t then begin
      incr t t.h_queue_empty;
      0
    end
    else begin
      let qpc = pq_pop_pc t in
      let p = pq_pop_pid t in
      if qpc = pc then p
      else begin
        incr t t.h_queue_mismatch;
        0
      end
    end
  in
  let actual, latency, alias_page = alias_lookup t ea in
  Alias_predictor.update ~alias_page t.predictor pc ~actual;
  Tracker.force_pid t.tracker dst actual;
  let is_prediction_scheme = t.is_prediction in
  if alias_page then incr t t.h_pred_events;
  if predicted = actual then begin
    if alias_page then incr t t.h_pred_correct;
    if actual <> 0 then incr t t.h_pred_reloads;
    latency
  end
  else begin
    if predicted <> 0 && actual = 0 then begin
      (* PNA0: the injected check downstream becomes a zero-idiom. *)
      incr t t.h_pred_pna0;
      if is_prediction_scheme then t.vp_killed <- 1
    end
    else if predicted = 0 && actual <> 0 then begin
      (* P0AN: flush and refetch with the right checks injected. *)
      incr t t.h_pred_p0an;
      t.vp_flush <- is_prediction_scheme
    end
    else
      (* PMAN: forward the corrected PID, no flush. *)
      incr t t.h_pred_pman;
    latency
  end

(* Record a spilled pointer alias for a committed store (rule ST). *)
let record_spill t ~ea ~pid =
  if pid > 0 then begin
    Alias_table.set t.alias_table ea pid;
    (match t.shared with
    | Some s ->
      Hashtbl.replace s.s_alias_pages (ea lsr Mem.Image.page_bits) ();
      (* Alias-cache coherence: invalidate the granule in other cores. *)
      ignore (Bus.broadcast s.s_bus ~from_core:t.core (Bus.Alias_invalidate ea))
    | None -> ());
    Mem.Tlb.set_alias_hosting t.tlb ea;
    ignore (Mem.Cache.access t.alias_cache ~write:true ea);
    incr t t.h_spills
  end
  else if
    page_hosts_aliases t (ea lsr Mem.Image.page_bits)
    && Alias_table.find t.alias_table ea <> 0
  then begin
    (* Overwriting a spilled pointer with data kills the alias. *)
    Alias_table.set t.alias_table ea 0;
    match t.shared with
    | Some s -> ignore (Bus.broadcast s.s_bus ~from_core:t.core (Bus.Alias_invalidate ea))
    | None -> ()
  end

let run_checker t ~pc ~uop ~result ~dst =
  match t.checker with
  | None -> ()
  | Some checker ->
    if result <> Machine.Hooks.no_result then
      Checker.check checker ~pc ~uop ~result
        ~predicted:(Tracker.current_pid t.tracker dst)

let alloc_size_of_kind (ctx : Machine.Hooks.ctx) = function
  | Os.Msrs.Malloc -> ctx.read_reg Reg.RDI
  | Os.Msrs.Calloc -> ctx.read_reg Reg.RDI * ctx.read_reg Reg.RSI
  | Os.Msrs.Realloc -> ctx.read_reg Reg.RSI
  | Os.Msrs.Free -> 0

let exec_uop t (ctx : Machine.Hooks.ctx) (uop : Uop.t) ~ea ~result =
  if not (protects t) then Machine.Hooks.no_reaction
  else begin
    let bt_cost = t.pending_bt_cost in
    t.pending_bt_cost <- 0;
    let reaction =
      match uop with
      | Cap Cap_gen_begin -> (
        match ctx.stub with
        | Some _ -> (
          match Os.Msrs.lookup_entry t.msrs ctx.pc with
          | None -> Machine.Hooks.no_reaction
          | Some reg ->
            let size = alloc_size_of_kind ctx reg.Os.Msrs.kind in
            if size > t.variant.Variant.max_alloc_bytes then
              raise
                (Violation.Security_violation
                   (Resource_exhaustion
                      { requested = size; limit = t.variant.Variant.max_alloc_bytes }));
            let realloc_old =
              match reg.Os.Msrs.kind with
              | Os.Msrs.Realloc -> Tracker.current_pid t.tracker (Uop.Greg Reg.RDI)
              | _ -> 0
            in
            let cap = Cap_table.fresh t.cap_table ~size:(max size 0) in
            if t.variant.Variant.detect_uninitialized then
              (* calloc returns zeroed memory; realloc copies the old
                 payload — both conservatively start initialized. *)
              Capability.track_initialization
                ~initialized:
                  (match reg.Os.Msrs.kind with
                  | Os.Msrs.Calloc | Os.Msrs.Realloc -> true
                  | Os.Msrs.Malloc | Os.Msrs.Free -> false)
                cap;
            t.pending_alloc <-
              Some { pid = cap.Capability.pid; kind = reg.Os.Msrs.kind; realloc_old };
            Machine.Hooks.take t.rpool ~extra_latency:2 ~commit_latency:0 ~flush:false
              ~killed_uops:0)
        | None -> Machine.Hooks.no_reaction)
      | Cap Cap_gen_end -> (
        match t.pending_alloc with
        | None -> Machine.Hooks.no_reaction
        | Some { pid; kind; realloc_old } ->
          let base = ctx.read_reg Reg.RAX in
          Cap_table.finalize t.cap_table pid ~base;
          if base <> 0 then begin
            Tracker.force_pid t.tracker (Uop.Greg Reg.RAX) pid;
            if kind = Os.Msrs.Realloc && realloc_old > 0 then begin
              Cap_table.end_free t.cap_table realloc_old;
              Cap_cache.invalidate t.cap_cache realloc_old
            end
          end;
          incr t t.h_cap_generated;
          t.pending_alloc <- None;
          Machine.Hooks.take t.rpool ~extra_latency:2 ~commit_latency:0 ~flush:false
            ~killed_uops:0)
      | Cap (Cap_free_begin { pid }) ->
        let addr = ctx.read_reg Reg.RDI in
        if addr = 0 then begin
          (* free(NULL) is benign. *)
          t.pending_free <- None;
          Machine.Hooks.no_reaction
        end
        else begin
          let latency = cap_lookup_latency t pid in
          if pid <= 0 then
            raise (Violation.Security_violation (Invalid_free { pid; addr }));
          (match Cap_table.find t.cap_table pid with
          | None -> raise (Violation.Security_violation (Invalid_free { pid; addr }))
          | Some cap ->
            if not cap.Capability.valid then
              raise (Violation.Security_violation (Double_free { pid; addr }));
            if cap.Capability.base <> addr then
              raise (Violation.Security_violation (Invalid_free { pid; addr }));
            Cap_table.begin_free t.cap_table pid);
          t.pending_free <- Some pid;
          Machine.Hooks.take t.rpool ~extra_latency:0 ~commit_latency:latency ~flush:false
            ~killed_uops:0
        end
      | Cap (Cap_free_end _) ->
        let bus_cost = ref 0 in
        (match t.pending_free with
        | Some pid ->
          Cap_table.end_free t.cap_table pid;
          Cap_cache.invalidate t.cap_cache pid;
          (* SMP: reset the capability in every other core's cache; sent
             once per free thanks to unforgeability (Section IV-C). *)
          (match t.shared with
          | Some s ->
            bus_cost := 2 * Bus.broadcast s.s_bus ~from_core:t.core (Bus.Cap_invalidate pid)
          | None -> ());
          incr t t.h_cap_freed
        | None -> ());
        t.pending_free <- None;
        Machine.Hooks.take t.rpool ~extra_latency:0 ~commit_latency:!bus_cost ~flush:false
          ~killed_uops:0
      | Cap (Cap_check { pid; width; is_store; _ }) ->
        let latency = do_check t ~pid ~ea ~width ~is_store in
        incr t t.h_cap_checks;
        t.on_check ~pc:ctx.pc ~pid ~is_store;
        Machine.Hooks.take t.rpool ~extra_latency:0 ~commit_latency:latency ~flush:false
          ~killed_uops:0
      | Guard { kind = Uop.Bt_bounds_low; width; _ } ->
        let pid, is_store =
          match Queue.take_opt t.lsu_checks with Some x -> x | None -> (0, false)
        in
        let latency = do_check t ~pid ~ea ~width ~is_store in
        incr t t.h_cap_checks;
        Machine.Hooks.take t.rpool ~extra_latency:0 ~commit_latency:latency ~flush:false
          ~killed_uops:0
      | Guard _ -> Machine.Hooks.no_reaction
      | Load { dst; width; _ } ->
        let lsu_latency =
          if t.is_hw_only then begin
            match Queue.take_opt t.lsu_checks with
            | Some (pid, is_store) ->
              incr t t.h_cap_checks;
              do_check t ~pid ~ea ~width ~is_store
            | None -> 0
          end
          else 0
        in
        if tracked_load_dst width dst then begin
          let latency = validate_prediction t ~pc:ctx.pc ~ea ~dst in
          run_checker t ~pc:ctx.pc ~uop ~result ~dst;
          Machine.Hooks.take t.rpool
            ~extra_latency:(if lsu_latency > 0 then 1 else 0)
            ~commit_latency:(latency + lsu_latency) ~flush:t.vp_flush
            ~killed_uops:t.vp_killed
        end
        else begin
          run_checker t ~pc:ctx.pc ~uop ~result ~dst;
          Machine.Hooks.take t.rpool
            ~extra_latency:(if lsu_latency > 0 then 1 else 0)
            ~commit_latency:lsu_latency ~flush:false ~killed_uops:0
        end
      | Store { src; width; _ } ->
        let lsu_latency =
          if t.is_hw_only then begin
            match Queue.take_opt t.lsu_checks with
            | Some (pid, is_store) ->
              incr t t.h_cap_checks;
              do_check t ~pid ~ea ~width ~is_store
            | None -> 0
          end
          else 0
        in
        if width = Insn.W64 then begin
          let pid =
            match src with
            | Uop.Loc ((Uop.Greg _ | Uop.Tmp _) as l) -> Tracker.current_pid t.tracker l
            | Uop.Loc (Uop.Xreg _) | Uop.Imm _ -> 0
          in
          record_spill t ~ea ~pid
        end;
        Machine.Hooks.take t.rpool ~extra_latency:0 ~commit_latency:lsu_latency ~flush:false
          ~killed_uops:0
      | uop ->
        (* [Uop.writes] boxes its answer, so only consult it when a
           checker is actually attached (validation runs only). *)
        (match t.checker with
        | None -> ()
        | Some _ -> (
          match Uop.writes uop with
          | Some dst -> run_checker t ~pc:ctx.pc ~uop ~result ~dst
          | None -> ()));
        Machine.Hooks.no_reaction
    in
    if bt_cost = 0 then reaction
    else
      Machine.Hooks.take t.rpool
        ~extra_latency:(reaction.Machine.Hooks.extra_latency + bt_cost)
        ~commit_latency:reaction.Machine.Hooks.commit_latency
        ~flush:reaction.Machine.Hooks.flush
        ~killed_uops:reaction.Machine.Hooks.killed_uops
  end

(* Install this monitor's behaviour into a hook record shared with the
   engine. *)
let install t (hooks : Machine.Hooks.t) =
  hooks.instrument <- instrument t;
  hooks.exec_uop <- exec_uop t;
  (* The insecure scheme leaves the hooks inactive: both callbacks are
     no-ops for it, and the flag lets the engine skip the calls. *)
  if protects t then hooks.active <- true
