(** CHEx86 design variants and configuration knobs (§IV, Fig 6). *)

type scheme =
  | Insecure
  | Hardware_only  (** LSU performs the check on every memory micro-op *)
  | Binary_translation  (** per-macro-op software/ISA-extension checks *)
  | Microcode_always_on  (** capCheck injected for every load/store *)
  | Microcode_prediction  (** the default CHEx86: prediction-driven injection *)

(** Context-sensitive enforcement: check injection limited to instruction
    address ranges (allocations are always tracked). *)
type scope = All_code | Ranges of (int * int) list

type t = {
  scheme : scheme;
  scope : scope;
  cap_cache_entries : int;
  alias_cache_sets : int;  (** x 2 ways *)
  alias_victim_entries : int;
  predictor_entries : int;
  max_alloc_bytes : int;  (** resource-exhaustion limit (1 GB in the paper) *)
  cap_table_latency : int;
  alias_walk_latency_per_level : int;
  bt_translation_cycles : int;
  predictor_stride : bool;  (** ablation: stride field of the predictor *)
  predictor_blacklist : bool;  (** ablation: non-reload blacklist *)
  tlb_alias_filter : bool;  (** ablation: alias-hosting TLB filter *)
  detect_uninitialized : bool;  (** opt-in uninitialized-read detection *)
}

val make :
  ?scope:scope ->
  ?cap_cache_entries:int ->
  ?alias_cache_sets:int ->
  ?alias_victim_entries:int ->
  ?predictor_entries:int ->
  ?max_alloc_bytes:int ->
  ?predictor_stride:bool ->
  ?predictor_blacklist:bool ->
  ?tlb_alias_filter:bool ->
  ?detect_uninitialized:bool ->
  scheme ->
  t

(** [make Microcode_prediction] with the paper's default structures. *)
val default : t

(** Apply a µarch preset's monitor-structure sizing; fields that no
    longer carry the stock defaults (explicit ablation sizing) are left
    untouched. *)
val resize :
  cap_cache_entries:int ->
  alias_cache_sets:int ->
  alias_victim_entries:int ->
  t ->
  t

(** The Fig 6 legend name. *)
val scheme_name : scheme -> string

val protects : t -> bool
val in_scope : t -> int -> bool
