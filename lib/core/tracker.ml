(* Speculative pointer tracker register tags (Section V-D).

   Every tracked location (16 integer registers + 2 decoder temporaries)
   carries (1) the finalized PID propagated by the last committed
   instruction and (2) a vector of transient PIDs from in-flight older
   instructions with their sequence numbers.  Capability transfers use
   the transient PID with the highest sequence number; on a squash, all
   transient PIDs younger than the offending instruction are discarded;
   on commit, transient entries drain into the finalized field.

   The in-order engine drives this in lock-step (set, then commit), but
   the transient machinery is exercised directly by the misspeculation
   tests and by the monitor's alias-misprediction recovery. *)

open Chex86_isa

let slots = Reg.count + 2

type tag = { mutable committed : int; mutable transient : (int * int) list }
(* transient: (seq, pid), newest first *)

(* [pending] counts transient entries across all tags so the lock-step
   engine path (set then immediately commit) can skip the per-tag sweep
   entirely when nothing is in flight. *)
type t = { tags : tag array; mutable seq : int; mutable pending : int }

let create () =
  { tags = Array.init slots (fun _ -> { committed = 0; transient = [] }); seq = 0; pending = 0 }

(* Slot index of a tracked location; -1 for XMM registers, which never
   hold pointers. *)
let slot_of_loc = function
  | Uop.Greg r -> Reg.index r
  | Uop.Tmp i -> Reg.count + i
  | Uop.Xreg _ -> -1

(* Fresh sequence number for the next tracked instruction. *)
let next_seq t =
  t.seq <- t.seq + 1;
  t.seq

(* Capability transfers use the youngest transient PID (the fetch stage
   runs ahead of the rest of the pipeline). *)
let current_pid t loc =
  let slot = slot_of_loc loc in
  if slot < 0 then 0
  else
    let tag = t.tags.(slot) in
    match tag.transient with (_, pid) :: _ -> pid | [] -> tag.committed

let set_pid t loc ~seq ~pid =
  let slot = slot_of_loc loc in
  if slot >= 0 then begin
    let tag = t.tags.(slot) in
    tag.transient <- (seq, pid) :: tag.transient;
    t.pending <- t.pending + 1
  end

let has_transients t = t.pending > 0

(* Commit every transient entry with sequence number <= [seq]: the newest
   such entry becomes the finalized PID. *)
let commit_upto t ~seq =
  if t.pending > 0 then begin
    let remaining = ref 0 in
    Array.iter
      (fun tag ->
        let rec split kept = function
          | (s, pid) :: rest when s > seq -> split ((s, pid) :: kept) rest
          | older ->
            (match older with
            | (_, pid) :: _ -> tag.committed <- pid
            | [] -> ());
            remaining := !remaining + List.length kept;
            tag.transient <- List.rev kept
        in
        split [] tag.transient)
      t.tags;
    t.pending <- !remaining
  end

(* Squash: discard transient PIDs younger than the offending instruction
   (Fig 2's "squash transient state within the pointer tracker"). *)
let squash_after t ~seq =
  if t.pending > 0 then begin
    let remaining = ref 0 in
    Array.iter
      (fun tag ->
        tag.transient <- List.filter (fun (s, _) -> s <= seq) tag.transient;
        remaining := !remaining + List.length tag.transient)
      t.tags;
    t.pending <- !remaining
  end

(* Overwrite a location's finalized PID immediately (used by alias
   misprediction recovery to forward the corrected PID, Fig 5(e)). *)
let force_pid t loc pid =
  let slot = slot_of_loc loc in
  if slot >= 0 then begin
    let tag = t.tags.(slot) in
    tag.committed <- pid;
    t.pending <- t.pending - List.length tag.transient;
    tag.transient <- []
  end

(* The engine drives the tracker in lock-step (set, then commit the same
   sequence number); with no in-flight transients that collapses to a
   single committed-field write with no list cell allocated. *)
let assign t loc ~seq ~pid =
  let slot = slot_of_loc loc in
  if slot >= 0 then begin
    if t.pending = 0 then t.tags.(slot).committed <- pid
    else begin
      let tag = t.tags.(slot) in
      tag.transient <- (seq, pid) :: tag.transient;
      t.pending <- t.pending + 1;
      commit_upto t ~seq
    end
  end

let reset t =
  Array.iter
    (fun tag ->
      tag.committed <- 0;
      tag.transient <- [])
    t.tags;
  t.seq <- 0;
  t.pending <- 0

let pp ppf t =
  Array.iteri
    (fun i tag ->
      let pid =
        match tag.transient with (_, pid) :: _ -> pid | [] -> tag.committed
      in
      if pid <> 0 then
        let name =
          if i < Reg.count then Reg.name (Reg.of_index i)
          else Printf.sprintf "t%d" (i - Reg.count)
        in
        Format.fprintf ppf "%s=PID(%d) " name pid)
    t.tags
