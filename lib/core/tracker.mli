(** Speculative pointer tracker register tags (§V-D): per-location
    finalized (committed) PID plus a vector of transient PIDs with
    sequence numbers, so misspeculation recovery can discard exactly the
    younger-than-the-squash state. *)

type t

val create : unit -> t

(** Fresh sequence number for the next tracked instruction. *)
val next_seq : t -> int

(** Youngest transient PID, else the committed PID. XMM locations are
    never tracked and always read 0. *)
val current_pid : t -> Chex86_isa.Uop.loc -> int

(** Record a transient capability transfer. *)
val set_pid : t -> Chex86_isa.Uop.loc -> seq:int -> pid:int -> unit

(** [set_pid] immediately followed by [commit_upto] at the same sequence
    number — the in-order engine's lock-step path, allocation-free when
    no transient entries are outstanding. *)
val assign : t -> Chex86_isa.Uop.loc -> seq:int -> pid:int -> unit

(** Any transient (uncommitted) entries outstanding? *)
val has_transients : t -> bool

(** Drain transient entries with sequence <= [seq] into the finalized
    field. *)
val commit_upto : t -> seq:int -> unit

(** Squash: discard transient PIDs younger than [seq]. *)
val squash_after : t -> seq:int -> unit

(** Overwrite a location's PID immediately (alias-misprediction
    recovery forwarding, Fig 5(e)). *)
val force_pid : t -> Chex86_isa.Uop.loc -> int -> unit

val reset : t -> unit
val pp : Format.formatter -> t -> unit
