(* 5-level hierarchical shadow alias table (Section V-C).

   Maps the virtual address of every 8-byte granule hosting a spilled
   pointer to the PID of that pointer.  Like the in-memory page table it
   is a radix structure traversed by a hardware walker; unlike page-table
   entries, the lowest level holds PIDs, not physical page numbers.

   45 granule-address bits are consumed 9 at a time: four levels of
   pointer nodes and one leaf level of PID arrays.  Storage is accounted
   per allocated 512-entry node (4 KB each), which is what makes the
   paper's claim that shadow overhead scales with the number of
   *references* rather than the number of words in memory measurable in
   Fig 9. *)

type node = Interior of node option array | Leaf of int array

let fanout = 512
let levels = 5

type t = {
  mutable root : node option array;
  mutable nodes : int;  (* allocated nodes, for storage accounting *)
  counters : Chex86_stats.Counter.group;
  h_updates : Chex86_stats.Counter.handle;
  h_walks : Chex86_stats.Counter.handle;
}

let create counters =
  {
    root = Array.make fanout None;
    nodes = 1;
    counters;
    h_updates = Chex86_stats.Counter.handle counters "aliastable.updates";
    h_walks = Chex86_stats.Counter.handle counters "aliastable.walks";
  }

let index_at addr level =
  (* level 0 is the root; granule address = addr lsr 3, 45 bits. *)
  let granule = addr lsr 3 in
  (granule lsr ((levels - 1 - level) * 9)) land (fanout - 1)

(* [set t addr pid] installs/overwrites the PID for the granule of
   [addr]; pid 0 clears. Missing intermediate nodes are allocated only on
   non-zero installs. *)
let rec set_level t arr addr level pid =
  let idx = index_at addr level in
  if level = levels - 2 then begin
    match arr.(idx) with
    | Some (Leaf leaf) -> leaf.(index_at addr (levels - 1)) <- pid
    | Some (Interior _) -> assert false
    | None ->
      if pid <> 0 then begin
        let leaf = Array.make fanout 0 in
        t.nodes <- t.nodes + 1;
        leaf.(index_at addr (levels - 1)) <- pid;
        arr.(idx) <- Some (Leaf leaf)
      end
  end
  else begin
    match arr.(idx) with
    | Some (Interior child) -> set_level t child addr (level + 1) pid
    | Some (Leaf _) -> assert false
    | None ->
      if pid <> 0 then begin
        let child = Array.make fanout None in
        t.nodes <- t.nodes + 1;
        arr.(idx) <- Some (Interior child);
        set_level t child addr (level + 1) pid
      end
  end

let set t addr pid =
  Chex86_stats.Counter.incr_handle t.counters t.h_updates;
  set_level t t.root addr 0 pid

(* [get t addr] returns [(pid, levels_walked)]; the walker latency is
   proportional to the second component. *)
let get t addr =
  Chex86_stats.Counter.incr_handle t.counters t.h_walks;
  let rec walk arr level =
    let idx = index_at addr level in
    match arr.(idx) with
    | None -> (0, level + 1)
    | Some (Leaf leaf) -> (leaf.(index_at addr (levels - 1)), level + 2)
    | Some (Interior child) -> walk child (level + 1)
  in
  walk t.root 0

let find t addr = fst (get t addr)

(* Shadow storage: each radix node is one 4 KB page (512 x 8 bytes). *)
let storage_bytes t = t.nodes * 4096

let entries t =
  let rec count arr =
    Array.fold_left
      (fun acc slot ->
        match slot with
        | None -> acc
        | Some (Leaf leaf) ->
          acc + Array.fold_left (fun a pid -> if pid <> 0 then a + 1 else a) 0 leaf
        | Some (Interior child) -> acc + count child)
      0 arr
  in
  count t.root
