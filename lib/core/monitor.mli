(** The CHEx86 monitor: microcode customization unit + shadow capability
    table/cache + speculative pointer tracker + alias prediction, behind
    the machine's hook interface. *)

type t

(** Shadow state shared by the per-core monitors of an SMP system:
    capability/alias tables, page-table alias-hosting bits, the
    invalidation bus, and the once-registered global capabilities. *)
type shared

val make_shared : Chex86_stats.Counter.group -> shared

(** [create ?core ?shared ...] — under SMP each hardware thread gets its
    own monitor (private tracker, predictor, capability/alias caches)
    over the [shared] shadow state; frees and alias spills broadcast
    invalidations to the other cores' caches (§IV-C / §V-C). *)
val create :
  ?variant:Variant.t ->
  ?core:int ->
  ?shared:shared ->
  proc:Chex86_os.Process.t ->
  hier:Chex86_mem.Hierarchy.t ->
  unit ->
  t

(** Point a shared hook record at this monitor's decode/execute logic. *)
val install : t -> Chex86_machine.Hooks.t -> unit

(** Attach the hardware checker (rule-construction mode, §V-A). *)
val attach_checker : t -> Checker.t -> unit

val checker : t -> Checker.t option

(** Observe every executed capability check (pc, PID, store?). *)
val set_on_check : t -> (pc:int -> pid:int -> is_store:bool -> unit) -> unit

val variant : t -> Variant.t
val cap_table : t -> Cap_table.t
val tracker : t -> Tracker.t
val alias_table : t -> Alias_table.t
val rules : t -> Rules.t
val predictor : t -> Alias_predictor.t

(** Capability + alias table storage (Fig 9); 0 for the insecure
    baseline. *)
val shadow_storage_bytes : t -> int

(** PID of the global object containing [addr], or 0. *)
val global_pid_of : t -> int -> int

(** Decode-time instrumentation hook (exposed for tests). *)
val instrument :
  t -> Chex86_machine.Hooks.ctx -> Chex86_isa.Uop.t list -> Chex86_isa.Uop.t list

(** Execute-time hook (exposed for tests); may raise
    [Violation.Security_violation]. *)
val exec_uop :
  t ->
  Chex86_machine.Hooks.ctx ->
  Chex86_isa.Uop.t ->
  ea:int ->
  result:int ->
  Chex86_machine.Hooks.reaction
