(** SMP driver: one hardware thread per entry label over a shared
    process, with per-core CHEx86 monitors, shared shadow tables, and
    the paper's cross-core capability/alias cache invalidations. *)

type outcome =
  | Completed
  | Violation_detected of { core : int; kind : Violation.kind }
  | Heap_abort of { core : int; message : string }
  | Guest_fault of { core : int; message : string }
  | Budget_exhausted

type result = {
  outcome : outcome;
  cycles : int;  (** slowest core *)
  per_core_cycles : int list;
  macro_insns : int;  (** summed over cores *)
  counters : Chex86_stats.Counter.group;
  cap_invalidations : int;
  alias_invalidations : int;
  proc : Chex86_os.Process.t;  (** shared process image, for post-mortem reads *)
}

(** Private 1 MB stack region of hardware thread [tid]. *)
val stack_top_for : int -> int

(** [run ~threads program] — [threads] are the entry labels, one per
    hardware thread, interleaved round-robin [quantum] macro-ops at a
    time (default 1).  [heap] selects the allocator personality. *)
val run :
  ?variant:Variant.t ->
  ?config:Chex86_machine.Config.t ->
  ?max_insns:int ->
  ?timing:bool ->
  ?quantum:int ->
  ?heap:Chex86_os.Allocator.personality ->
  threads:string list ->
  Chex86_isa.Program.t ->
  result
