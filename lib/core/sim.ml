(* End-to-end convenience driver: load a program, attach a CHEx86
   monitor for the chosen variant, and run it on the timing model.  This
   is the entry point the examples and the harness use. *)

module Os = Chex86_os
module Machine = Chex86_machine

type outcome =
  | Completed
  | Violation_detected of Violation.kind
  | Heap_abort of string  (* allocator integrity check (glibc-style abort) *)
  | Guest_fault of string
  | Budget_exhausted

type run = {
  outcome : outcome;
  result : Machine.Simulator.result;
  monitor : Monitor.t;
  proc : Os.Process.t;
  profile : Os.Heap_profile.t option;
}

let classify_outcome = function
  | Machine.Simulator.Finished -> Completed
  | Machine.Simulator.Budget_exhausted -> Budget_exhausted
  | Machine.Simulator.Faulted (Violation.Security_violation kind) ->
    Violation_detected kind
  | Machine.Simulator.Faulted (Os.Allocator.Heap_abort msg) -> Heap_abort msg
  | Machine.Simulator.Faulted (Machine.Engine.Guest_fault msg) -> Guest_fault msg
  | Machine.Simulator.Faulted e -> raise e

(* [run ?variant ?profile program] — [profile] attaches a Fig 3 heap
   profiler fed with retired instructions and data accesses. *)
let run ?(variant = Variant.default) ?config ?hier_config
    ?(max_insns = 50_000_000) ?(timing = true) ?(with_checker = false)
    ?(configure = fun (_ : Monitor.t) -> ()) ?profile_interval
    ?(heap = Os.Allocator.Glibc) program =
  (* A non-stock preset also sizes the monitor structures, but only on
     variants still carrying the stock sizes — ablation sweeps that
     hand-picked them keep their values. *)
  let preset = Machine.Preset.current () in
  let variant =
    if Machine.Preset.is_stock preset then variant
    else
      Variant.resize ~cap_cache_entries:preset.Machine.Preset.cap_cache_entries
        ~alias_cache_sets:preset.Machine.Preset.alias_cache_sets
        ~alias_victim_entries:preset.Machine.Preset.alias_victim_entries variant
  in
  let proc = Os.Process.load ~heap program in
  let hooks = Machine.Hooks.none () in
  let sim = Machine.Simulator.create ?config ?hier_config ~hooks proc in
  let monitor =
    Monitor.create ~variant ~proc ~hier:(Machine.Simulator.hierarchy sim) ()
  in
  if with_checker then
    Monitor.attach_checker monitor (Checker.create (Monitor.cap_table monitor));
  configure monitor;
  Monitor.install monitor hooks;
  let profile =
    match profile_interval with
    | None -> None
    | Some interval ->
      let p = Os.Heap_profile.create ~interval_insns:interval proc.Os.Process.heap in
      let engine = Machine.Simulator.engine sim in
      let previous = engine.Machine.Engine.on_access in
      engine.Machine.Engine.on_access <-
        (fun ~addr ~write ->
          previous ~addr ~write;
          Os.Heap_profile.on_access p addr);
      hooks.Machine.Hooks.on_retire <- (fun _ -> Os.Heap_profile.on_insn p);
      Some p
  in
  let result =
    if timing then Machine.Simulator.run ~max_insns sim
    else Machine.Simulator.run_functional ~max_insns sim
  in
  {
    outcome = classify_outcome result.Machine.Simulator.outcome;
    result;
    monitor;
    proc;
    profile;
  }
