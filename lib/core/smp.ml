(* SMP driver: N hardware threads over one shared process image.

   The paper's PARSEC evaluation is multithreaded and models the
   invalidation traffic of frees and alias spills between cores
   (Sections IV-C and V-C); this driver reproduces that setting:

   - one process (shared text, heap, allocator, globals);
   - one engine + timing pipeline + CHEx86 monitor per hardware thread,
     each with a private stack region, pointer tracker, predictor, and
     capability/alias caches;
   - shared shadow capability/alias tables and the invalidation bus.

   Threads are interleaved round-robin one macro-op at a time (a
   sequentially consistent interleaving — the timing model charges each
   core its own cycles, and the run's cycle count is the slowest core).
   A security violation on any core stops the machine. *)

module Os = Chex86_os
module Machine = Chex86_machine

type outcome =
  | Completed
  | Violation_detected of { core : int; kind : Violation.kind }
  | Heap_abort of { core : int; message : string }
  | Guest_fault of { core : int; message : string }
  | Budget_exhausted

type core = {
  id : int;
  engine : Machine.Engine.t;
  pipeline : Machine.Pipeline.t;
  monitor : Monitor.t;
}

type result = {
  outcome : outcome;
  cycles : int;  (* slowest core *)
  per_core_cycles : int list;
  macro_insns : int;  (* all cores *)
  counters : Chex86_stats.Counter.group;
  cap_invalidations : int;
  alias_invalidations : int;
  proc : Os.Process.t;
}

(* Each hardware thread gets a 1 MB stack carved below the previous
   one. *)
let stack_top_for tid = Chex86_isa.Program.stack_top - (tid * (1 lsl 20))

(* [run ~threads program] starts one hardware thread per entry label.
   [quantum] is the number of macro-ops a core executes per scheduler
   turn (the shared-state machinery must be interleaving-invariant). *)
let run ?(variant = Variant.default) ?config ?(max_insns = 50_000_000)
    ?(timing = true) ?(quantum = 1) ?(heap = Os.Allocator.Glibc) ~threads
    program =
  if quantum < 1 then invalid_arg "Smp.run: quantum < 1";
  if threads = [] then invalid_arg "Smp.run: no thread entry points";
  let preset = Machine.Preset.current () in
  let config = match config with Some c -> c | None -> preset.Machine.Preset.core in
  let hier_config = preset.Machine.Preset.hier in
  let variant =
    if Machine.Preset.is_stock preset then variant
    else
      Variant.resize ~cap_cache_entries:preset.Machine.Preset.cap_cache_entries
        ~alias_cache_sets:preset.Machine.Preset.alias_cache_sets
        ~alias_victim_entries:preset.Machine.Preset.alias_victim_entries variant
  in
  let proc = Os.Process.load ~heap program in
  let counters = proc.Os.Process.counters in
  let shared = Monitor.make_shared counters in
  let cores =
    List.mapi
      (fun id entry ->
        let hooks = Machine.Hooks.none () in
        let hier = Chex86_mem.Hierarchy.create ~config:hier_config counters in
        let monitor = Monitor.create ~variant ~core:id ~shared ~proc ~hier () in
        Monitor.install monitor hooks;
        let engine =
          Machine.Engine.create ~hooks ~entry ~stack_top:(stack_top_for id) proc
        in
        let pipeline = Machine.Pipeline.create ~config hier counters in
        { id; engine; pipeline; monitor })
      threads
  in
  let total_insns () =
    List.fold_left (fun acc c -> acc + Machine.Engine.insn_count c.engine) 0 cores
  in
  let finish outcome =
    List.iter (fun c -> Machine.Pipeline.finalize c.pipeline) cores;
    let per_core_cycles = List.map (fun c -> Machine.Pipeline.cycles c.pipeline) cores in
    {
      outcome;
      cycles = List.fold_left max 0 per_core_cycles;
      per_core_cycles;
      macro_insns = total_insns ();
      counters;
      cap_invalidations = Chex86_stats.Counter.get counters "bus.cap_invalidations";
      alias_invalidations = Chex86_stats.Counter.get counters "bus.alias_invalidations";
      proc;
    }
  in
  (* Round-robin interleaving, one macro-op per turn. *)
  let rec loop () =
    if total_insns () >= max_insns then finish Budget_exhausted
    else begin
      let progressed = ref false in
      let fault = ref None in
      List.iter
        (fun c ->
          let budget = ref quantum in
          while
            !fault = None && !budget > 0 && not (Machine.Engine.halted c.engine)
          do
            decr budget;
            match Machine.Engine.step c.engine with
            | Some step ->
              progressed := true;
              if timing then Machine.Pipeline.on_step c.pipeline step
            | None -> ()
            | exception Violation.Security_violation kind ->
              fault := Some (Violation_detected { core = c.id; kind })
            | exception Os.Allocator.Heap_abort message ->
              fault := Some (Heap_abort { core = c.id; message })
            | exception Machine.Engine.Guest_fault message ->
              fault := Some (Guest_fault { core = c.id; message })
          done)
        cores;
      match !fault with
      | Some outcome -> finish outcome
      | None -> if !progressed then loop () else finish Completed
    end
  in
  loop ()
