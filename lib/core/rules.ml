(* The pointer-tracking rule database (Table I of the paper).

   Each rule maps a (micro-op class, addressing mode) pair to a
   capability-propagation action.  The database is configurable data, not
   hard-wired logic: it can be extended at run time (modelling in-field
   microcode updates), and the hardware checker (Checker) validates it
   against exhaustive shadow-table searches, which is how the paper's
   automatic rule construction works. *)

open Chex86_isa

type uop_class = MOV | AND | LEA | ADD | SUB | LD | ST | MOVI | OTHER

type addr_mode = Reg_reg | Reg_imm | Reg_mem

(* PID propagation actions.  [Nonzero_of_sources]: if one source PID is
   zero, take the other (the AND/ADD rule); a genuine PID beats the wild
   PID(-1) when both are tagged. *)
type action =
  | Copy_src  (* PID(dst) <- PID(src) *)
  | Nonzero_of_sources
  | Copy_first  (* SUB: always the first source operand (the minuend) *)
  | From_memory  (* LD: PID(dst) <- PID(Mem[EA]), via the alias predictor *)
  | To_memory  (* ST: PID(Mem[EA]) <- PID(src) *)
  | Wild  (* MOVI: PID(dst) <- PID(-1) *)
  | Clear  (* all other operations: PID(result) <- PID(0) *)

type rule = {
  uop : uop_class;
  mode : addr_mode;
  action : action;
  example : string;
  propagation : string;
  code_example : string;
}

(* [matrix] is the database compiled to a dense (class x mode) action
   table so the per-micro-op lookup is one array read instead of a list
   scan; it is rebuilt whenever the rule list changes. *)
type t = { mutable rules : rule list; matrix : action array }

let class_count = 9
let mode_count = 3

let class_index = function
  | MOV -> 0
  | AND -> 1
  | LEA -> 2
  | ADD -> 3
  | SUB -> 4
  | LD -> 5
  | ST -> 6
  | MOVI -> 7
  | OTHER -> 8

let mode_index = function Reg_reg -> 0 | Reg_imm -> 1 | Reg_mem -> 2

let key_code cls mode = (class_index cls * mode_count) + mode_index mode

(* First matching rule wins, as with the original list scan. *)
let rebuild_matrix t =
  Array.fill t.matrix 0 (Array.length t.matrix) Clear;
  let filled = Array.make (class_count * mode_count) false in
  List.iter
    (fun r ->
      let c = key_code r.uop r.mode in
      if not filled.(c) then begin
        filled.(c) <- true;
        t.matrix.(c) <- r.action
      end)
    t.rules

(* The automatically constructed database of Table I. *)
let table_i =
  [
    {
      uop = MOV;
      mode = Reg_reg;
      action = Copy_src;
      example = "mov %rcx, %rbx";
      propagation = "PID(rcx) <- PID(rbx)";
      code_example = "ptr1 = ptr2;";
    };
    {
      uop = AND;
      mode = Reg_reg;
      action = Nonzero_of_sources;
      example = "and %rcx, %rbx, %rax";
      propagation = "if PID of one source is zero, take the other";
      code_example = "ptr2 = ptr1 & mask;";
    };
    {
      uop = AND;
      mode = Reg_imm;
      action = Copy_first;
      example = "andi %rcx, %rbx, $imm";
      propagation = "PID(rcx) <- PID(rbx)";
      code_example = "ptr2 = ptr1 & 0xffff0000;";
    };
    {
      uop = LEA;
      mode = Reg_reg;
      action = Copy_src;
      example = "lea %rcx, (%rbx, %idx, scl)";
      propagation = "PID(rcx) <- PID(rbx)";
      code_example = "ptr = &a[50];";
    };
    {
      uop = ADD;
      mode = Reg_reg;
      action = Nonzero_of_sources;
      example = "add %rcx, %rbx, %rax";
      propagation = "if PID of one source is zero, take the other";
      code_example = "ptr2 = ptr1 + const;";
    };
    {
      uop = ADD;
      mode = Reg_imm;
      action = Copy_first;
      example = "addi %rcx, %rbx, $imm";
      propagation = "PID(rcx) <- PID(rbx)";
      code_example = "ptr2 = ptr1 + 4;";
    };
    {
      uop = SUB;
      mode = Reg_reg;
      action = Copy_first;
      example = "sub %rcx, %rbx, %rax";
      propagation = "PID(rcx) <- PID(rbx)";
      code_example = "ptr2 = ptr1 - const;";
    };
    {
      uop = SUB;
      mode = Reg_imm;
      action = Copy_first;
      example = "subi %rcx, %rbx, $imm";
      propagation = "PID(rcx) <- PID(rbx)";
      code_example = "ptr2 = ptr1 - 4;";
    };
    {
      uop = LD;
      mode = Reg_mem;
      action = From_memory;
      example = "ldq %rcx, [EA]";
      propagation = "PID(rcx) <- PID(Mem[EA])";
      code_example = "int *ptr2 = ptr1[100];";
    };
    {
      uop = ST;
      mode = Reg_mem;
      action = To_memory;
      example = "stq %rcx, [EA]";
      propagation = "PID(Mem[EA]) <- PID(rcx)";
      code_example = "*ptr1 = ptr2;";
    };
    {
      uop = MOVI;
      mode = Reg_imm;
      action = Wild;
      example = "limm %rax, $imm";
      propagation = "PID(rax) <- PID(-1)";
      code_example = "int *p = (int *)0x7fff1000;";
    };
  ]

let create ?(rules = table_i) () =
  let t = { rules; matrix = Array.make (class_count * mode_count) Clear } in
  rebuild_matrix t;
  t

let add_rule t rule =
  t.rules <- t.rules @ [ rule ];
  rebuild_matrix t

let rules t = t.rules

(* Classify a micro-op into the database's key space. *)
let classify (uop : Uop.t) =
  match uop with
  | Mov _ -> Some (MOV, Reg_reg)
  | Limm _ -> Some (MOVI, Reg_imm)
  | Lea _ -> Some (LEA, Reg_reg)
  | Load _ -> Some (LD, Reg_mem)
  | Store _ -> Some (ST, Reg_mem)
  | Alu { op; src2; _ } -> (
    let mode = match src2 with Uop.Imm _ -> Reg_imm | Uop.Loc _ -> Reg_reg in
    match op with
    | Insn.Add -> Some (ADD, mode)
    | Insn.Sub -> Some (SUB, mode)
    | Insn.And -> Some (AND, mode)
    | Insn.Or | Insn.Xor | Insn.Imul | Insn.Shl | Insn.Shr -> Some (OTHER, mode))
  | Fp _ | Cvt _ | Cmp _ | Branch _ | Cap _ | Guard _ | Nop -> None

(* [classify] without the option/tuple boxing: the dense matrix key, or
   -1 for micro-ops outside the database's key space.  Must stay in
   lock-step with [classify]. *)
let classify_code (uop : Uop.t) =
  match uop with
  | Mov _ -> 0 (* MOV, Reg_reg *)
  | Limm _ -> 22 (* MOVI, Reg_imm *)
  | Lea _ -> 6 (* LEA, Reg_reg *)
  | Load _ -> 17 (* LD, Reg_mem *)
  | Store _ -> 20 (* ST, Reg_mem *)
  | Alu { op; src2; _ } -> (
    let mode = match src2 with Uop.Imm _ -> 1 | Uop.Loc _ -> 0 in
    match op with
    | Insn.Add -> 9 + mode
    | Insn.Sub -> 12 + mode
    | Insn.And -> 3 + mode
    | Insn.Or | Insn.Xor | Insn.Imul | Insn.Shl | Insn.Shr -> 24 + mode)
  | Fp _ | Cvt _ | Cmp _ | Branch _ | Cap _ | Guard _ | Nop -> -1

(* Action for a micro-op under the current database; OTHER and unmatched
   classes clear the destination PID ("All other operations"). *)
let action_for t uop =
  let c = classify_code uop in
  if c < 0 then Clear else t.matrix.(c)

(* Combine two source PIDs under [Nonzero_of_sources]; a real PID beats
   the wild PID(-1). *)
let combine_nonzero a b =
  if a = 0 then b
  else if b = 0 then a
  else if a = -1 then b
  else if b = -1 then a
  else a

let class_name = function
  | MOV -> "MOV"
  | AND -> "AND"
  | LEA -> "LEA"
  | ADD -> "ADD"
  | SUB -> "SUB"
  | LD -> "LD"
  | ST -> "ST"
  | MOVI -> "MOVI"
  | OTHER -> "OTHER"

let mode_name = function
  | Reg_reg -> "Reg-Reg"
  | Reg_imm -> "Reg-Imm"
  | Reg_mem -> "Reg-Mem(qw)"

(* Rows for the Table I bench target. *)
let render_rows t =
  List.map
    (fun r ->
      [ class_name r.uop; mode_name r.mode; r.example; r.propagation; r.code_example ])
    t.rules
  @ [ [ "OTHER"; "-"; "all other operations"; "PID(result) <- PID(0)"; "" ] ]
