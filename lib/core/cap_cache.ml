(* In-processor capability cache (Section IV-B, Fig 7 top).

   A small fully associative LRU cache of capabilities currently in use,
   motivated by the observation that the number of allocations in use in
   any execution interval is orders of magnitude below the total
   allocation count (Fig 3).  Default 64 entries (1 KB); Fig 7 also
   evaluates 128.  Only PIDs are cached here — the capability payload is
   read from the table on a miss (charged as latency by the monitor). *)

type t = {
  pids : int array;
  stamps : int array;
  (* Exact pid -> slot index for the per-check probe.  Positive PIDs
     are unique in [pids] (insertion happens only after a failed probe),
     so the map answers exactly what the first-match scan would;
     non-positive PIDs (initial fill, invalidations, wild -1) can occupy
     many slots and fall back to the scan. *)
  index : Chex86_mem.Intmap.t;
  mutable clock : int;
  counters : Chex86_stats.Counter.group;
  h_hit : Chex86_stats.Counter.handle;
  h_miss : Chex86_stats.Counter.handle;
}

let create ?(entries = 64) counters =
  {
    pids = Array.make entries 0;
    stamps = Array.make entries 0;
    index = Chex86_mem.Intmap.create ~capacity:(4 * entries) ();
    counters;
    clock = 0;
    h_hit = Chex86_stats.Counter.handle counters "capcache.hit";
    h_miss = Chex86_stats.Counter.handle counters "capcache.miss";
  }

let entries t = Array.length t.pids

(* Slot holding [pid], or -1; top-level so the per-access probe carries
   no closure. *)
let rec find_pid (pids : int array) (pid : int) n i =
  if i >= n then -1 else if pids.(i) = pid then i else find_pid pids pid n (i + 1)

(* [access t pid] returns true on hit; misses allocate (LRU).  Runs once
   per checked memory access, so the probe is an int-sentinel scan and
   the counters are pre-resolved handles (DESIGN.md hot-path rules). *)
let access t pid =
  t.clock <- t.clock + 1;
  let n = Array.length t.pids in
  let i =
    if pid > 0 then Chex86_mem.Intmap.find t.index pid ~default:(-1)
    else find_pid t.pids pid n 0
  in
  if i >= 0 then begin
    t.stamps.(i) <- t.clock;
    Chex86_stats.Counter.incr_handle t.counters t.h_hit;
    true
  end
  else begin
    Chex86_stats.Counter.incr_handle t.counters t.h_miss;
    let victim = ref 0 in
    for i = 1 to n - 1 do
      if t.stamps.(i) < t.stamps.(!victim) then victim := i
    done;
    let old = t.pids.(!victim) in
    if old > 0 then Chex86_mem.Intmap.remove t.index old;
    if pid > 0 then Chex86_mem.Intmap.set t.index pid !victim;
    t.pids.(!victim) <- pid;
    t.stamps.(!victim) <- t.clock;
    false
  end

(* Invalidate on capability free — the paper's cross-core invalidation
   requests reduced to the single modelled core. *)
let invalidate t pid =
  Array.iteri (fun i p -> if p = pid then t.pids.(i) <- 0) t.pids;
  if pid > 0 then Chex86_mem.Intmap.remove t.index pid

let miss_rate t =
  let h = Chex86_stats.Counter.get_handle t.counters t.h_hit
  and m = Chex86_stats.Counter.get_handle t.counters t.h_miss in
  if h + m = 0 then 0. else float_of_int m /. float_of_int (h + m)
