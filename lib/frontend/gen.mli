(** Deterministic (seeded-LCG) trace generators for smoke tests and
    golden files — same seed, same bytes, on every platform. *)

(** [n] lines of [R 0xADDR] / [W 0xADDR] text mixing sequential runs, a
    hot set, large strides and DRAM-sized random traffic. *)
val cachetrace : ?seed:int -> n:int -> unit -> string

(** [n] µop records mixing loads, stores, ALU ops and mostly-taken
    conditional branches. *)
val uoptrace : ?seed:int -> n:int -> unit -> Uoptrace.record list
