(** Parser/driver for the cachetrace stdin format ([R 0xADDR] /
    [W 0xADDR], blank lines and [#]-comments skipped). *)

type access = { write : bool; addr : int }

(** [Ok None] for blank/comment lines; errors carry no line number
    (the caller adds it). *)
val parse_line : string -> (access option, string) result

type summary = {
  accesses : int;
  reads : int;
  writes : int;
  l1_hits : int;
  l2_hits : int;
  misses : int;
  total_latency : int;
  mem_bytes : int;
  writeback_bytes : int;
}

val miss_rate : summary -> float
val avg_latency : summary -> float

(** [run ?csv ~counters hier read_line] drives [hier] with every access
    from [read_line] (returns [None] at EOF); [counters] must be the
    group [hier] was created with (level classification watches its
    cache counters).  [csv] receives one
    ["seq,op,addr,latency,level"] row per access.  Malformed input
    yields [Error "line N: …"]. *)
val run :
  ?csv:out_channel ->
  counters:Chex86_stats.Counter.group ->
  Chex86_mem.Hierarchy.t ->
  (unit -> string option) ->
  (summary, string) result
