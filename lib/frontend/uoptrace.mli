(** Self-describing µop-trace JSONL format (header
    [{"format":"chex86-uoptrace-v1"}]) with a writer, a validating
    parser, and a timing-pipeline replay harness. *)

type op = Load | Store | Alu | Branch | Nop

type record = {
  pc : int;
  op : op;
  addr : int;  (** Load/Store effective address; 0 otherwise *)
  width : int;  (** Load/Store bytes (1/2/4/8); 0 otherwise *)
  taken : bool;  (** Branch *)
  target : int;  (** Branch *)
}

(** Canonical constructors (op-irrelevant fields zeroed, so
    writer/parser round-trips are structural equalities). *)
val load : pc:int -> addr:int -> width:int -> record

val store : pc:int -> addr:int -> width:int -> record
val alu : pc:int -> record
val branch : pc:int -> taken:bool -> target:int -> record
val nop : pc:int -> record

val op_name : op -> string
val format_id : string

(** The header line (no trailing newline). *)
val header : string

val to_line : record -> string
val of_line : string -> (record, string) result

(** Header plus one line per record. *)
val write : out_channel -> record list -> unit

(** [read read_line] validates the header and parses every record;
    blank/comment lines are skipped; errors are ["line N: …"]. *)
val read : (unit -> string option) -> (record list, string) result

(** Feed one synthesized [Engine.step] per record to the pipeline and
    finalize it (publishing ["pipeline.*"] counters); [observe] sees
    each record with the committed-cycle horizon after its step. *)
val replay :
  ?observe:(seq:int -> record -> cycles:int -> unit) ->
  pipeline:Chex86_machine.Pipeline.t ->
  record list ->
  unit
