(* Self-describing µop-trace JSONL format and its replay harness.

   Line 1 is the header

     {"format":"chex86-uoptrace-v1"}

   and every following line one micro-op record:

     {"pc":N,"op":"load"|"store","addr":N,"width":1|2|4|8}
     {"pc":N,"op":"branch","taken":BOOL,"target":N}
     {"pc":N,"op":"alu"} / {"pc":N,"op":"nop"}

   Replay synthesizes one [Engine.step] per record and feeds it to the
   timing pipeline, so a trace exercises the full OoO model (fetch
   bandwidth, queues, functional units, branch prediction) without the
   functional engine.  A trace carries no register numbers, so data
   dependence is approximated: every ALU op consumes the most recent
   load's result (the classic load-use chain), loads/stores depend only
   on their addresses. *)

type op = Load | Store | Alu | Branch | Nop

type record = {
  pc : int;
  op : op;
  addr : int;  (* Load/Store effective address; 0 otherwise *)
  width : int;  (* Load/Store bytes (1/2/4/8); 0 otherwise *)
  taken : bool;  (* Branch *)
  target : int;  (* Branch *)
}

(* Smart constructors keep the op-irrelevant fields at their canonical
   zeros, so writer -> parser round-trips structurally. *)
let load ~pc ~addr ~width = { pc; op = Load; addr; width; taken = false; target = 0 }
let store ~pc ~addr ~width = { pc; op = Store; addr; width; taken = false; target = 0 }
let alu ~pc = { pc; op = Alu; addr = 0; width = 0; taken = false; target = 0 }
let branch ~pc ~taken ~target = { pc; op = Branch; addr = 0; width = 0; taken; target }
let nop ~pc = { pc; op = Nop; addr = 0; width = 0; taken = false; target = 0 }

let format_id = "chex86-uoptrace-v1"

module Json = Chex86_stats.Json

let header = Json.to_string (Json.Obj [ ("format", Json.String format_id) ])

let op_name = function
  | Load -> "load"
  | Store -> "store"
  | Alu -> "alu"
  | Branch -> "branch"
  | Nop -> "nop"

let to_line r =
  let base = [ ("pc", Json.Int r.pc); ("op", Json.String (op_name r.op)) ] in
  let fields =
    match r.op with
    | Load | Store -> base @ [ ("addr", Json.Int r.addr); ("width", Json.Int r.width) ]
    | Branch -> base @ [ ("taken", Json.Bool r.taken); ("target", Json.Int r.target) ]
    | Alu | Nop -> base
  in
  Json.to_string (Json.Obj fields)

let valid_width = function 1 | 2 | 4 | 8 -> true | _ -> false

let of_line line =
  match Json.of_string line with
  | Error msg -> Error msg
  | Ok json -> (
    let int_field k = Option.bind (Json.member k json) Json.to_int_opt in
    let pc = match int_field "pc" with Some pc when pc >= 0 -> pc | _ -> -1 in
    if pc < 0 then Error "missing or negative \"pc\""
    else
      match Option.bind (Json.member "op" json) Json.to_string_opt with
      | None -> Error "missing \"op\""
      | Some op_str -> (
        match op_str with
        | "alu" -> Ok (alu ~pc)
        | "nop" -> Ok (nop ~pc)
        | "load" | "store" -> (
          match (int_field "addr", int_field "width") with
          | Some addr, Some width when addr >= 0 && valid_width width ->
            Ok (if op_str = "load" then load ~pc ~addr ~width else store ~pc ~addr ~width)
          | _ -> Error "load/store needs \"addr\" >= 0 and \"width\" in {1,2,4,8}")
        | "branch" -> (
          let taken =
            match Json.member "taken" json with Some (Json.Bool b) -> Some b | _ -> None
          in
          match (taken, int_field "target") with
          | Some taken, Some target when target >= 0 -> Ok (branch ~pc ~taken ~target)
          | _ -> Error "branch needs boolean \"taken\" and \"target\" >= 0")
        | other -> Error (Printf.sprintf "unknown op %S" other)))

let write out records =
  output_string out header;
  output_char out '\n';
  List.iter
    (fun r ->
      output_string out (to_line r);
      output_char out '\n')
    records

(* [read read_line] -> records, validating the header and reporting
   1-based line numbers.  Blank lines and [#]-comments are skipped after
   the header, mirroring the cachetrace reader. *)
let read read_line =
  match read_line () with
  | None -> Error "line 1: empty input (expected uoptrace header)"
  | Some first -> (
    let ok_header =
      match Json.of_string (String.trim first) with
      | Ok json -> (
        match Option.bind (Json.member "format" json) Json.to_string_opt with
        | Some f -> f = format_id
        | None -> false)
      | Error _ -> false
    in
    if not ok_header then
      Error (Printf.sprintf "line 1: not a %s header: %S" format_id (String.trim first))
    else begin
      let records = ref [] in
      let lineno = ref 1 in
      let err = ref None in
      let running = ref true in
      while !running do
        match read_line () with
        | None -> running := false
        | Some line -> (
          incr lineno;
          let line = String.trim line in
          if line = "" || line.[0] = '#' then ()
          else
            match of_line line with
            | Ok r -> records := r :: !records
            | Error msg ->
              err := Some (Printf.sprintf "line %d: %s" !lineno msg);
              running := false)
      done;
      match !err with Some e -> Error e | None -> Ok (List.rev !records)
    end)

(* --- replay -------------------------------------------------------------- *)

module Isa = Chex86_isa
module Machine = Chex86_machine

let width_of_bytes = function
  | 1 -> Isa.Insn.W8
  | 2 -> Isa.Insn.W16
  | 4 -> Isa.Insn.W32
  | _ -> Isa.Insn.W64

let uop_of r =
  match r.op with
  | Load ->
    Isa.Uop.Load
      { dst = Isa.Uop.Tmp 0; mem = Isa.Insn.mem_abs r.addr; width = width_of_bytes r.width }
  | Store ->
    Isa.Uop.Store
      { src = Isa.Uop.Imm 0; mem = Isa.Insn.mem_abs r.addr; width = width_of_bytes r.width }
  | Alu ->
    (* Consume the last load's destination: the load-use dependence is
       the one chain a register-free trace can still express. *)
    Isa.Uop.Alu
      { op = Isa.Insn.Add; dst = Isa.Uop.Tmp 1; src1 = Isa.Uop.Tmp 0; src2 = Isa.Uop.Imm 1 }
  | Branch -> Isa.Uop.Branch { kind = Isa.Uop.Cond Isa.Insn.Eq; target = None }
  | Nop -> Isa.Uop.Nop

let step_of r =
  let eu =
    { Machine.Engine.uop = uop_of r; ea = r.addr; reaction = Machine.Hooks.no_reaction }
  in
  let branch =
    match r.op with
    | Branch ->
      Some
        { Machine.Engine.kind = Isa.Uop.Cond Isa.Insn.Eq; taken = r.taken; target = r.target }
    | _ -> None
  in
  {
    Machine.Engine.pc = r.pc;
    insn = None;
    native = None;
    path = Isa.Decoder.Simple;
    uops = [| eu |];
    branch;
  }

let replay ?observe ~pipeline records =
  let seq = ref 0 in
  List.iter
    (fun r ->
      Machine.Pipeline.on_step pipeline (step_of r);
      (match observe with
      | Some f -> f ~seq:!seq r ~cycles:(Machine.Pipeline.cycles pipeline)
      | None -> ());
      incr seq)
    records;
  Machine.Pipeline.finalize pipeline
