(* Deterministic trace generator for smoke tests and golden files: a
   fixed LCG (no dependence on Random's global state) produces the same
   byte stream for the same seed on every platform, so CSVs diffed
   against goldens never flake.  The mix deliberately exercises every
   level: sequential runs (L1-friendly), a revisited hot set
   (L2-friendly), large strides (set-conflict pressure) and random
   accesses over a window larger than the L2 (DRAM + writebacks). *)

let lcg_a = 2862933555777941757
let lcg_c = 3037000493

let next state =
  let x = (state * lcg_a) + lcg_c in
  x land max_int

(* [cachetrace ~seed ~n] -> [n] trace lines in the [R 0xADDR] format. *)
let cachetrace ?(seed = 1) ~n () =
  let buf = Buffer.create (n * 12) in
  Buffer.add_string buf "# generated cachetrace (seed ";
  Buffer.add_string buf (string_of_int seed);
  Buffer.add_string buf ")\n";
  let state = ref (next (seed + 1)) in
  let rand bound =
    state := next !state;
    !state mod bound
  in
  let seq_base = ref 0x10000 in
  for i = 0 to n - 1 do
    let op, addr =
      match i mod 10 with
      | 0 | 1 | 2 | 3 ->
        (* Sequential read run, 8 B apart. *)
        seq_base := !seq_base + 8;
        ("R", !seq_base)
      | 4 | 5 ->
        (* Hot-set revisit: 16 KB window. *)
        ("R", 0x200000 + (rand 2048 * 8))
      | 6 ->
        (* Strided writes, 4 KB apart: set-conflict pressure. *)
        ("W", 0x400000 + (i * 4096))
      | 7 | 8 ->
        (* Random reads over 8 MB: mostly DRAM on small presets. *)
        ("R", 0x800000 + (rand (8 * 1024 * 1024 / 64) * 64))
      | _ ->
        (* Random writes over the same window: dirty lines + writebacks. *)
        ("W", 0x800000 + (rand (8 * 1024 * 1024 / 64) * 64))
    in
    Buffer.add_string buf op;
    Buffer.add_string buf " 0x";
    Buffer.add_string buf (Printf.sprintf "%x" addr);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* [uoptrace ~seed ~n] -> [n] records: a loop-ish mix of loads, stores,
   ALU ops and conditional branches with a mostly-regular pattern the
   branch predictor can partially learn. *)
let uoptrace ?(seed = 1) ~n () =
  let state = ref (next (seed + 0x5bd1)) in
  let rand bound =
    state := next !state;
    !state mod bound
  in
  let records = ref [] in
  let pc = ref 0x40_0000 in
  for i = 0 to n - 1 do
    pc := !pc + 4;
    let r =
      match i mod 8 with
      | 0 | 1 -> Uoptrace.load ~pc:!pc ~addr:(0x100000 + (rand 4096 * 8)) ~width:8
      | 2 -> Uoptrace.load ~pc:!pc ~addr:(0x900000 + (rand 65536 * 64)) ~width:4
      | 3 | 4 -> Uoptrace.alu ~pc:!pc
      | 5 -> Uoptrace.store ~pc:!pc ~addr:(0x500000 + (rand 8192 * 8)) ~width:8
      | 6 ->
        (* Taken 7 times out of 8: learnable but not trivial. *)
        Uoptrace.branch ~pc:!pc ~taken:(rand 8 <> 0) ~target:(!pc - (rand 64 * 4))
      | _ -> Uoptrace.nop ~pc:!pc
    in
    records := r :: !records
  done;
  List.rev !records
