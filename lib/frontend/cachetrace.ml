(* The cachetrace stdin format: one memory access per line,

     R 0xADDR
     W 0xADDR

   with blank lines and [#]-comments skipped.  [run] feeds every access
   to a [Hierarchy] as a data reference and classifies which level
   served it by watching the cache counters move — which is exact for
   any preset, unlike inferring the level from the returned latency
   (TLB-walk cycles can make two levels' totals collide). *)

type access = { write : bool; addr : int }

(* [Ok None] for blank/comment lines; [Error] carries no line number —
   [run] adds it, since only the reader knows where it is. *)
let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    match String.index_opt line ' ' with
    | None -> Error (Printf.sprintf "expected 'R 0xADDR' or 'W 0xADDR', got %S" line)
    | Some i -> (
      let op = String.sub line 0 i in
      let rest = String.trim (String.sub line i (String.length line - i)) in
      let write =
        match op with
        | "R" | "r" -> Some false
        | "W" | "w" -> Some true
        | _ -> None
      in
      match write with
      | None -> Error (Printf.sprintf "unknown op %S (expected R or W)" op)
      | Some write -> (
        match int_of_string_opt rest with
        | Some addr when addr >= 0 -> Ok (Some { write; addr })
        | _ -> Error (Printf.sprintf "bad address %S" rest)))

type summary = {
  accesses : int;
  reads : int;
  writes : int;
  l1_hits : int;
  l2_hits : int;
  misses : int;
  total_latency : int;
  mem_bytes : int;
  writeback_bytes : int;
}

let miss_rate s =
  if s.accesses = 0 then 0. else float_of_int s.misses /. float_of_int s.accesses

let avg_latency s =
  if s.accesses = 0 then 0. else float_of_int s.total_latency /. float_of_int s.accesses

(* [run ?csv ~counters hier read_line] drives [hier] with every access
   produced by [read_line] (a stateful reader returning [None] at EOF).
   [csv] receives one "seq,op,addr,latency,level" row per access.
   Errors abort with the 1-based line number. *)
let run ?csv ~counters hier read_line =
  let module C = Chex86_stats.Counter in
  let h_l1 = C.handle counters "l1d.hit" in
  let h_l2 = C.handle counters "l2.hit" in
  (match csv with
  | Some out -> output_string out "seq,op,addr,latency,level\n"
  | None -> ());
  let seq = ref 0 and lineno = ref 0 in
  let reads = ref 0 and writes = ref 0 in
  let l1_hits = ref 0 and l2_hits = ref 0 and misses = ref 0 in
  let total_latency = ref 0 in
  let err = ref None in
  let running = ref true in
  while !running do
    match read_line () with
    | None -> running := false
    | Some line -> (
      incr lineno;
      match parse_line line with
      | Error msg ->
        err := Some (Printf.sprintf "line %d: %s" !lineno msg);
        running := false
      | Ok None -> ()
      | Ok (Some { write; addr }) ->
        let l1_before = C.get_handle counters h_l1 in
        let l2_before = C.get_handle counters h_l2 in
        let lat = Chex86_mem.Hierarchy.access hier ~kind:Data ~write addr in
        let level =
          if C.get_handle counters h_l1 > l1_before then begin
            incr l1_hits;
            "l1"
          end
          else if C.get_handle counters h_l2 > l2_before then begin
            incr l2_hits;
            "l2"
          end
          else begin
            incr misses;
            "mem"
          end
        in
        if write then incr writes else incr reads;
        total_latency := !total_latency + lat;
        (match csv with
        | Some out ->
          Printf.fprintf out "%d,%c,0x%x,%d,%s\n" !seq
            (if write then 'W' else 'R')
            addr lat level
        | None -> ());
        incr seq)
  done;
  match !err with
  | Some e -> Error e
  | None ->
    Ok
      {
        accesses = !seq;
        reads = !reads;
        writes = !writes;
        l1_hits = !l1_hits;
        l2_hits = !l2_hits;
        misses = !misses;
        total_latency = !total_latency;
        mem_bytes = Chex86_mem.Hierarchy.mem_bytes hier;
        writeback_bytes = Chex86_mem.Hierarchy.writeback_bytes hier;
      }
