(* Minimal JSON value type with an emitter and a parser.

   The telemetry layer (trace spans, metrics dumps) emits one JSON
   object per line and reads its own output back for aggregation, so
   this only has to cover the subset both ends agree on: objects,
   arrays, strings, integers, floats, booleans and null.  No external
   dependency; the parser is a plain recursive descent over a string. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- emission ------------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then
      (* %.17g round-trips doubles; trim is not worth the complexity. *)
      Buffer.add_string buf (Printf.sprintf "%.17g" f)
    else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  emit buf v;
  Buffer.contents buf

(* --- parsing -------------------------------------------------------------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun msg -> raise (Parse_error (Printf.sprintf "at %d: %s" !pos msg))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail "expected %C" c
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "expected %s" word
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               (match int_of_string_opt ("0x" ^ hex) with
               | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
               | Some _ ->
                 (* Out of the emitter's subset; keep the bytes legible. *)
                 Buffer.add_string buf ("\\u" ^ hex)
               | None -> fail "bad \\u escape %S" hex);
               pos := !pos + 5
             | c -> fail "bad escape \\%C" c);
          go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character %C" c
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at %d" !pos) else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors ------------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
