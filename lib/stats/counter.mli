(** Named event counters, grouped per simulation run. *)

type group

val create_group : unit -> group

(** A pre-resolved counter slot: components obtain one per counter at
    create time with {!handle} and bump it with {!incr_handle} on their
    per-access/per-µop hot paths — one array update, no string hashing,
    no allocation.  Handles are only meaningful against the group that
    issued them. *)
type handle

(** [handle g name] resolves (creating at zero if new) the slot of
    [name].  Call once at component-create time, not per event. *)
val handle : group -> string -> handle

(** [incr_handle ?by g h] bumps the counter behind [h]. *)
val incr_handle : ?by:int -> group -> handle -> unit

(** [get_handle g h] is the current value behind [h]. *)
val get_handle : group -> handle -> int

(** [incr ?by g name] bumps counter [name], creating it at zero if new.

    There is deliberately no [set]: overwriting is merge-unsafe under
    the additive snapshot merging below. To republish a running total,
    add the delta since the last publication with [incr ~by]. *)
val incr : ?by:int -> group -> string -> unit

(** [get g name] is the current value, or 0 if the counter was never touched. *)
val get : group -> string -> int

(** Reset every counter in the group to zero (the set of names is kept). *)
val reset : group -> unit

(** [ratio g ~num ~den] is num/(num+den), for hit/miss style pairs; 0. when
    both are zero. *)
val ratio : group -> num:string -> den:string -> float

(** [fraction g ~num ~total] is num/total; 0. when total is zero. *)
val fraction : group -> num:string -> total:string -> float

(** All counters, sorted by name. *)
val to_list : group -> (string * int) list

(** An immutable, name-sorted view of a group, safe to pass between
    domains. [merge] is pointwise addition: associative, commutative,
    with [empty_snapshot] as identity, so parallel workers' private
    groups can be combined independent of scheduling order. *)
type snapshot

val empty_snapshot : snapshot
val group_snapshot : group -> snapshot
val merge : snapshot -> snapshot -> snapshot

(** [absorb g s] adds every counter of [s] into [g]. *)
val absorb : group -> snapshot -> unit

(** A fresh group holding exactly the snapshot's counters. *)
val of_snapshot : snapshot -> group

val snapshot_to_list : snapshot -> (string * int) list

(** One JSON object, counter names as keys in sorted order — the
    metrics-dump wire form. *)
val json_of_snapshot : snapshot -> Json.t

val pp : Format.formatter -> group -> unit
