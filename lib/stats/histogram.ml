(* Integer-valued histogram with streaming insertion.

   Used for allocation-size distributions (Fig 3), temporal PID stride
   histograms (Table II) and squash-length distributions (Fig 8).  Values
   are kept exactly in a hash table keyed by sample value; summary
   statistics are derived on demand. *)

type t = {
  buckets : (int, int ref) Hashtbl.t;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { buckets = Hashtbl.create 64; count = 0; sum = 0; min_v = max_int; max_v = min_int }

let add ?(weight = 1) hist value =
  (* A zero weight would still insert a bucket and widen min/max; a
     negative one would decrement count/sum while min/max kept
     widening — both corrupt the summary stats, so reject them loudly
     (add_snapshot's silent-drop guard filters its input instead). *)
  if weight <= 0 then
    invalid_arg (Printf.sprintf "Histogram.add: weight %d <= 0" weight);
  (match Hashtbl.find_opt hist.buckets value with
  | Some cell -> cell := !cell + weight
  | None -> Hashtbl.add hist.buckets value (ref weight));
  hist.count <- hist.count + weight;
  hist.sum <- hist.sum + (value * weight);
  if value < hist.min_v then hist.min_v <- value;
  if value > hist.max_v then hist.max_v <- value

let count hist = hist.count
let total hist = hist.sum
let min_value hist = if hist.count = 0 then 0 else hist.min_v
let max_value hist = if hist.count = 0 then 0 else hist.max_v

let mean hist =
  if hist.count = 0 then 0. else float_of_int hist.sum /. float_of_int hist.count

let sorted hist =
  Hashtbl.fold (fun v cell acc -> (v, !cell) :: acc) hist.buckets []
  |> List.sort compare

(* Smallest value v such that at least [q] of the mass is <= v.  [q] is
   clamped to [0, 1]: callers computing quantile positions from noisy
   float arithmetic must not be able to walk past max_v (q > 1) or
   below the distribution (q < 0, NaN). *)
let percentile hist q =
  if hist.count = 0 then 0
  else begin
    let q = if Float.is_nan q then 0. else Float.max 0. (Float.min 1. q) in
    let threshold = q *. float_of_int hist.count in
    let rec walk acc = function
      | [] -> hist.max_v
      | (v, n) :: rest ->
        let acc = acc + n in
        if float_of_int acc >= threshold then v else walk acc rest
    in
    walk 0 (sorted hist)
  end

let mode hist =
  List.fold_left
    (fun (best_v, best_n) (v, n) -> if n > best_n then (v, n) else (best_v, best_n))
    (0, 0) (sorted hist)
  |> fst

let fold f init hist = List.fold_left (fun acc (v, n) -> f acc v n) init (sorted hist)

(* --- snapshots ------------------------------------------------------------ *)

(* Immutable value-sorted view, safe to hand between domains.  [merge]
   adds bucket weights pointwise, so it is associative and commutative
   with [empty_snapshot] as identity; the parallel sweep coordinator
   merges worker snapshots in task-key order and the result is identical
   to sequential accumulation. *)
type snapshot = (int * int) list

let empty_snapshot : snapshot = []
let snapshot hist : snapshot = sorted hist
let snapshot_to_list (s : snapshot) = s

let merge (a : snapshot) (b : snapshot) : snapshot =
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (va, na) :: ta, (vb, nb) :: tb ->
      if va < vb then (va, na) :: go ta b
      else if vb < va then (vb, nb) :: go a tb
      else (va, na + nb) :: go ta tb
  in
  go a b

let add_snapshot hist (s : snapshot) =
  List.iter (fun (value, weight) -> if weight > 0 then add ~weight hist value) s

let of_snapshot (s : snapshot) =
  let hist = create () in
  add_snapshot hist s;
  hist

let json_of_snapshot (s : snapshot) : Json.t =
  Json.Obj
    [
      ("n", Json.Int (List.fold_left (fun acc (_, w) -> acc + w) 0 s));
      ("buckets", Json.List (List.map (fun (v, w) -> Json.List [ Json.Int v; Json.Int w ]) s));
    ]

let pp ppf hist =
  (* An empty histogram must not be printable as a real all-zero
     distribution: min/max/p50/p99 have no value to report. *)
  if hist.count = 0 then Format.fprintf ppf "n=0 (empty)"
  else
    Format.fprintf ppf "n=%d mean=%.2f min=%d max=%d p50=%d p99=%d" hist.count (mean hist)
      (min_value hist) (max_value hist) (percentile hist 0.50) (percentile hist 0.99)
