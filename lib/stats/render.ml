(* ASCII rendering of the paper's tables and figures.

   Every bench target prints through these helpers so all output shares
   one look: a boxed title, a column-aligned table, and horizontal bar
   charts for the figures (one bar per benchmark/series point). *)

let rule width = String.make width '-'

let banner title =
  let width = max 60 (String.length title + 4) in
  Printf.sprintf "%s\n| %-*s |\n%s" (rule width) (width - 4) title (rule width)

(* --- Tables ------------------------------------------------------------ *)

type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

(* [table ~header rows] renders rows of string cells under a header, each
   column sized to its widest cell.  Numeric-looking cells are
   right-aligned.  Ragged rows are padded with empty cells up to the
   widest row: widths are computed over every row, so a short row
   rendered short would leave its cells misaligned under the
   separator. *)
let table ~header rows =
  let all = header :: rows in
  let columns = List.fold_left (fun acc row -> max acc (List.length row)) 0 all in
  let widths = Array.make (max 1 columns) 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  (* Right-align only cells that contain an actual digit: bare "-", "e"
     or "+" placeholders are words, not numbers. *)
  let numeric s =
    s <> ""
    && String.for_all (fun c -> (c >= '0' && c <= '9') || String.contains ".%xX-+e" c) s
    && String.exists (fun c -> c >= '0' && c <= '9') s
  in
  let render_row row =
    let row =
      row @ List.init (max 0 (columns - List.length row)) (fun _ -> "")
    in
    List.mapi
      (fun i cell -> pad (if numeric cell then Right else Left) widths.(i) cell)
      row
    |> String.concat "  "
  in
  let body = List.map render_row rows in
  let head = render_row header in
  let sep =
    Array.to_list (Array.map (fun w -> String.make w '-') widths) |> String.concat "  "
  in
  String.concat "\n" (head :: sep :: body)

(* --- Bar charts --------------------------------------------------------- *)

(* [bars ~unit series] renders labelled horizontal bars scaled so the
   largest value spans [width] characters.  Values are printed next to the
   bars with [fmt]. *)
let bars ?(width = 44) ?(fmt = fun v -> Printf.sprintf "%.2f" v) ?(unit_label = "") series =
  let max_v = List.fold_left (fun acc (_, v) -> max acc v) 0. series in
  let max_v = if max_v <= 0. then 1. else max_v in
  let label_w =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 series
  in
  List.map
    (fun (label, v) ->
      let n = int_of_float (Float.round (v /. max_v *. float_of_int width)) in
      let n = max 0 (min width n) in
      Printf.sprintf "%s |%s%s %s%s" (pad Left label_w label) (String.make n '#')
        (String.make (width - n) ' ')
        (fmt v) unit_label)
    series
  |> String.concat "\n"

(* Grouped bars: one block per label with one bar per series, used for the
   multi-configuration figures (Fig 6 has six configurations per
   benchmark). *)
let grouped_bars ?(width = 40) ?(fmt = fun v -> Printf.sprintf "%.2f" v) ~series_names
    groups =
  let max_v =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left (fun acc v -> max acc v) acc vs)
      0. groups
  in
  let max_v = if max_v <= 0. then 1. else max_v in
  let name_w =
    List.fold_left (fun acc name -> max acc (String.length name)) 0 series_names
  in
  let render_group (label, vs) =
    let lines =
      List.map2
        (fun name v ->
          let n = int_of_float (Float.round (v /. max_v *. float_of_int width)) in
          let n = max 0 (min width n) in
          Printf.sprintf "  %s |%s %s" (pad Left name_w name) (String.make n '#') (fmt v))
        series_names vs
    in
    String.concat "\n" ((label ^ ":") :: lines)
  in
  String.concat "\n" (List.map render_group groups)

let percent v = Printf.sprintf "%.1f%%" (v *. 100.)
