(* Named event counters, grouped per simulation run.

   A [group] is a flat namespace of monotonically increasing integer
   counters.  Components allocate counters lazily by name; benches read
   them back by name after a run.  Ratios between two counters are a
   common derived quantity (miss rates, prediction accuracy), so they get
   a dedicated accessor.

   Storage is a flat int array indexed by allocation order, with a
   name -> slot hashtable on the side.  Hot components resolve a [handle]
   (the slot index) once at create time and bump through it with
   [incr_handle] — a single array update, no string hashing and no
   allocation — which is what the per-access/per-µop paths of the cache,
   TLB, branch predictor and pipeline use.  The string-keyed [incr]/[get]
   remain for cold paths and reporting. *)

type group = {
  index : (string, int) Hashtbl.t;  (* name -> slot *)
  mutable names : string array;
  mutable values : int array;
  mutable used : int;
}

type handle = int

let create_group () =
  { index = Hashtbl.create 64; names = Array.make 64 ""; values = Array.make 64 0; used = 0 }

(* Resolve (allocating if new) the slot of [name].  O(1) amortized; hot
   callers do this once and keep the handle. *)
let handle group name =
  match Hashtbl.find_opt group.index name with
  | Some slot -> slot
  | None ->
    let slot = group.used in
    if slot = Array.length group.values then begin
      let values = Array.make (2 * slot) 0 and names = Array.make (2 * slot) "" in
      Array.blit group.values 0 values 0 slot;
      Array.blit group.names 0 names 0 slot;
      group.values <- values;
      group.names <- names
    end;
    group.names.(slot) <- name;
    group.values.(slot) <- 0;
    Hashtbl.add group.index name slot;
    group.used <- slot + 1;
    slot

let incr_handle ?(by = 1) group (h : handle) = group.values.(h) <- group.values.(h) + by

let get_handle group (h : handle) = group.values.(h)

let incr ?(by = 1) group name = incr_handle ~by group (handle group name)

(* No [set]: absolute assignment is merge-unsafe — snapshots combine by
   pointwise addition, so an overwritten counter absorbed into a
   non-empty group would silently mix set-then-add semantics. Publish
   totals as deltas with [incr ~by] (see Pipeline.finalize). *)

let get group name =
  match Hashtbl.find_opt group.index name with
  | Some slot -> group.values.(slot)
  | None -> 0

let reset group = Array.fill group.values 0 group.used 0

(* [ratio g num den] is num / (num + den) if [den] names the complementary
   event (e.g. hits vs misses), expressed by the caller passing the two
   event names; returns 0. when both are zero. *)
let ratio group ~num ~den =
  let n = float_of_int (get group num) and d = float_of_int (get group den) in
  if n +. d = 0. then 0. else n /. (n +. d)

let fraction group ~num ~total =
  let n = float_of_int (get group num) and t = float_of_int (get group total) in
  if t = 0. then 0. else n /. t

let to_list group =
  List.init group.used (fun slot -> (group.names.(slot), group.values.(slot)))
  |> List.sort compare

(* --- snapshots ------------------------------------------------------------ *)

(* An immutable, name-sorted view of a group.  Snapshots cross domain
   boundaries in the parallel sweep engine: each worker accumulates into a
   private group, snapshots it, and the coordinator merges the snapshots
   in task-key order.  Because [merge] is pointwise addition over a sorted
   namespace it is associative and commutative with [empty_snapshot] as
   identity, so the merged totals never depend on scheduling order. *)
type snapshot = (string * int) list

let empty_snapshot : snapshot = []
let group_snapshot group : snapshot = to_list group
let snapshot_to_list (s : snapshot) = s

let merge (a : snapshot) (b : snapshot) : snapshot =
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (na, va) :: ta, (nb, vb) :: tb ->
      if na < nb then (na, va) :: go ta b
      else if nb < na then (nb, vb) :: go a tb
      else (na, va + vb) :: go ta tb
  in
  go a b

let absorb group (s : snapshot) = List.iter (fun (name, v) -> incr ~by:v group name) s

let of_snapshot (s : snapshot) =
  let group = create_group () in
  absorb group s;
  group

let json_of_snapshot (s : snapshot) : Json.t =
  Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) s)

let pp ppf group =
  List.iter (fun (name, v) -> Format.fprintf ppf "%-40s %d@." name v) (to_list group)
