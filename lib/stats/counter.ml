(* Named event counters, grouped per simulation run.

   A [group] is a flat namespace of monotonically increasing integer
   counters.  Components allocate counters lazily by name; benches read
   them back by name after a run.  Ratios between two counters are a
   common derived quantity (miss rates, prediction accuracy), so they get
   a dedicated accessor. *)

type group = { counters : (string, int ref) Hashtbl.t }

let create_group () = { counters = Hashtbl.create 64 }

let find group name =
  match Hashtbl.find_opt group.counters name with
  | Some cell -> cell
  | None ->
    let cell = ref 0 in
    Hashtbl.add group.counters name cell;
    cell

let incr ?(by = 1) group name =
  let cell = find group name in
  cell := !cell + by

(* No [set]: absolute assignment is merge-unsafe — snapshots combine by
   pointwise addition, so an overwritten counter absorbed into a
   non-empty group would silently mix set-then-add semantics. Publish
   totals as deltas with [incr ~by] (see Pipeline.finalize). *)

let get group name =
  match Hashtbl.find_opt group.counters name with Some cell -> !cell | None -> 0

let reset group = Hashtbl.iter (fun _ cell -> cell := 0) group.counters

(* [ratio g num den] is num / (num + den) if [den] names the complementary
   event (e.g. hits vs misses), expressed by the caller passing the two
   event names; returns 0. when both are zero. *)
let ratio group ~num ~den =
  let n = float_of_int (get group num) and d = float_of_int (get group den) in
  if n +. d = 0. then 0. else n /. (n +. d)

let fraction group ~num ~total =
  let n = float_of_int (get group num) and t = float_of_int (get group total) in
  if t = 0. then 0. else n /. t

let to_list group =
  Hashtbl.fold (fun name cell acc -> (name, !cell) :: acc) group.counters []
  |> List.sort compare

(* --- snapshots ------------------------------------------------------------ *)

(* An immutable, name-sorted view of a group.  Snapshots cross domain
   boundaries in the parallel sweep engine: each worker accumulates into a
   private group, snapshots it, and the coordinator merges the snapshots
   in task-key order.  Because [merge] is pointwise addition over a sorted
   namespace it is associative and commutative with [empty_snapshot] as
   identity, so the merged totals never depend on scheduling order. *)
type snapshot = (string * int) list

let empty_snapshot : snapshot = []
let group_snapshot group : snapshot = to_list group
let snapshot_to_list (s : snapshot) = s

let merge (a : snapshot) (b : snapshot) : snapshot =
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (na, va) :: ta, (nb, vb) :: tb ->
      if na < nb then (na, va) :: go ta b
      else if nb < na then (nb, vb) :: go a tb
      else (na, va + vb) :: go ta tb
  in
  go a b

let absorb group (s : snapshot) = List.iter (fun (name, v) -> incr ~by:v group name) s

let of_snapshot (s : snapshot) =
  let group = create_group () in
  absorb group s;
  group

let json_of_snapshot (s : snapshot) : Json.t =
  Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) s)

let pp ppf group =
  List.iter (fun (name, v) -> Format.fprintf ppf "%-40s %d@." name v) (to_list group)
