(** Exact integer histogram with streaming insertion. *)

type t

val create : unit -> t

(** [add ?weight h v] records [weight] (default 1) occurrences of value
    [v]. Raises [Invalid_argument] if [weight <= 0]: a zero or negative
    weight would corrupt the count/sum/min/max bookkeeping. *)
val add : ?weight:int -> t -> int -> unit

(** Number of samples recorded (sum of weights). *)
val count : t -> int

(** Sum of all recorded values (weighted). *)
val total : t -> int

val min_value : t -> int
val max_value : t -> int
val mean : t -> float

(** [percentile h q] with [q] in [0,1] (out-of-range and NaN [q] are
    clamped into it): smallest value covering a [q] fraction of the
    mass. 0 on an empty histogram. *)
val percentile : t -> float -> int

(** Most frequent value; 0 on an empty histogram. *)
val mode : t -> int

(** [fold f init h] folds [f acc value count] over buckets in increasing
    value order. *)
val fold : ('a -> int -> int -> 'a) -> 'a -> t -> 'a

(** Sorted (value, count) pairs. *)
val sorted : t -> (int * int) list

(** An immutable value-sorted view, safe to pass between domains.
    [merge] adds bucket weights pointwise: associative, commutative,
    with [empty_snapshot] as identity. *)
type snapshot

val empty_snapshot : snapshot
val snapshot : t -> snapshot
val merge : snapshot -> snapshot -> snapshot

(** [add_snapshot h s] records every bucket of [s] into [h]. *)
val add_snapshot : t -> snapshot -> unit

(** A fresh histogram holding exactly the snapshot's buckets. *)
val of_snapshot : snapshot -> t

val snapshot_to_list : snapshot -> (int * int) list

(** [{"n": total weight, "buckets": [[value, weight], ...]}], buckets in
    ascending value order — the metrics-dump wire form. *)
val json_of_snapshot : snapshot -> Json.t

(** Summary line; an empty histogram prints ["n=0 (empty)"] so it is
    never mistaken for a real all-zero distribution. *)
val pp : Format.formatter -> t -> unit
