(** ASCII rendering helpers shared by every bench target. *)

(** Boxed section title. *)
val banner : string -> string

(** [table ~header rows] column-aligns string cells; numeric-looking
    cells (containing at least one digit) are right-aligned. Rows
    shorter than the widest row are padded with empty cells. *)
val table : header:string list -> string list list -> string

(** Labelled horizontal bar chart, scaled to the largest value. *)
val bars :
  ?width:int ->
  ?fmt:(float -> string) ->
  ?unit_label:string ->
  (string * float) list ->
  string

(** One block per group label, one bar per series inside each block. *)
val grouped_bars :
  ?width:int ->
  ?fmt:(float -> string) ->
  series_names:string list ->
  (string * float list) list ->
  string

(** [percent 0.123] is ["12.3%"]. *)
val percent : float -> string
