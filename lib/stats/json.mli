(** Minimal JSON values: emission and parsing for the telemetry layer.

    Covers the subset the trace/metrics emitters produce — objects,
    arrays, strings, ints, floats, booleans, null. Non-finite floats
    emit as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact single-line rendering (no extra whitespace). *)
val to_string : t -> string

(** Parse one JSON value; the whole input must be consumed (trailing
    whitespace allowed). Never raises. *)
val of_string : string -> (t, string) result

(** [member k v] is the field [k] of an object, [None] otherwise. *)
val member : string -> t -> t option

val to_int_opt : t -> int option

(** Ints coerce to floats. *)
val to_float_opt : t -> float option

val to_string_opt : t -> string option
