# Entry points for the CHEx86 reproduction.
#
#   make check   build + full test suite + parallel smoke sweep
#   make build   compile everything
#   make test    dune runtest only

.PHONY: all build test smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Quick end-to-end sanity: a figure-6 sweep on three representative
# workloads, sharded over 2 worker domains.  Exercises the domain pool,
# the memo prefetch, and the stats merge path in one run.
smoke: build
	CHEX86_WORKLOADS=mcf,canneal,freqmine CHEX86_SCALE=1 \
		dune exec bench/main.exe -- --jobs 2 figure6

check: build test smoke

clean:
	dune clean
