# Entry points for the CHEx86 reproduction.
#
#   make check   build + full test suite + parallel smoke sweep
#   make build   compile everything
#   make test    dune runtest only

.PHONY: all build test bench smoke fault-smoke remote-smoke trace-smoke \
	trace-frontend-smoke security-matrix store-smoke daemon-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Simulator-throughput trajectory: times each (workload, variant) pair
# end-to-end and writes BENCH_<n>.json at the next free index (committed
# snapshots form the perf history).  Fails with exit 1 if any pair
# regresses more than CHEX86_BENCH_MAX_REGRESS (default 0.20) against
# the latest earlier snapshot.  Knobs: CHEX86_BENCH_MIN_SECONDS,
# CHEX86_BENCH_DIR, CHEX86_SCALE, CHEX86_WORKLOADS.
bench: build
	dune exec bench/main.exe -- bench

# Quick end-to-end sanity: a figure-6 sweep on three representative
# workloads, sharded over 2 worker domains in batched chunks.
# Exercises the domain pool, batched dispatch, the memo prefetch, and
# the stats merge path in one run.
smoke: build
	CHEX86_WORKLOADS=mcf,canneal,freqmine CHEX86_SCALE=1 \
		dune exec bench/main.exe -- --jobs 2 --batch-size 2 figure6

# Supervision sanity: with deterministic fault injection armed, the
# sweep must still complete (exit 0, non-empty fault report); the same
# sweep under --strict must flip the exit code.
fault-smoke: build
	CHEX86_WORKLOADS=mcf,canneal CHEX86_SCALE=1 \
	CHEX86_FAULT_RATE=0.5 CHEX86_FAULT_SEED=11 \
		dune exec bench/main.exe -- --jobs 2 --no-cache figure6 \
		| grep -q "sweep fault report"
	! CHEX86_WORKLOADS=mcf,canneal CHEX86_SCALE=1 \
	CHEX86_FAULT_RATE=0.5 CHEX86_FAULT_SEED=11 \
		dune exec bench/main.exe -- --jobs 2 --no-cache --strict figure6 \
		> /dev/null

# Distributed dispatch sanity, three legs:
#  1. spawn mode: the full security sweep sharded over 2 worker
#     processes must block every exploit (exit 0);
#  2. spawn mode under injected worker kills: workers SIGKILL
#     themselves mid-chunk, the supervisor respawns and re-dispatches,
#     and the sweep still completes;
#  3. TCP loopback: two `--listen` workers driven as --worker peers.
remote-smoke: build
	./_build/default/bin/security_eval.exe --workers 2 --no-cache
	CHEX86_FAULT_RATE=0.003 CHEX86_FAULT_SEED=7 CHEX86_FAULT_KIND=kill \
		./_build/default/bin/security_eval.exe --workers 2 --no-cache
	./_build/default/bin/chex86_worker.exe --listen 7641 & W1=$$!; \
	./_build/default/bin/chex86_worker.exe --listen 7642 & W2=$$!; \
	trap 'kill $$W1 $$W2 2>/dev/null' EXIT; sleep 1; \
	./_build/default/bin/security_eval.exe \
		--worker 127.0.0.1:7641 --worker 127.0.0.1:7642 --no-cache

# Telemetry sanity: a traced + metered security sweep over 2 worker
# processes must (1) leave a trace the trace-summary validator accepts
# (every end has a begin, parents close after children), (2) contain
# stitched worker span streams alongside the supervisor's, and (3) dump
# a parseable metrics snapshot.
trace-smoke: build
	rm -f /tmp/chex86-trace.jsonl /tmp/chex86-metrics.json
	./_build/default/bin/security_eval.exe --workers 2 --no-cache \
		--trace /tmp/chex86-trace.jsonl --metrics /tmp/chex86-metrics.json
	./_build/default/bin/chex86_sim.exe trace-summary /tmp/chex86-trace.jsonl
	grep -q '"src":"w' /tmp/chex86-trace.jsonl
	grep -q '"pool.ok":' /tmp/chex86-metrics.json

# Trace-driven frontend sanity: the acceptance one-liner, then the
# deterministic generated trace (seed 1) piped through two presets with
# the per-access CSVs byte-compared against the checked-in goldens (and
# against each other — the presets must actually disagree), plus a
# µop-trace replay leg through the OoO pipeline.  Regenerate the
# goldens after an intentional timing change with:
#   chex86_sim trace-gen --seed 1 --count 2000 > /tmp/t.txt
#   chex86_sim trace --cpu skylake --csv test/golden/trace_skylake.csv /tmp/t.txt
#   chex86_sim trace --cpu tiny --csv test/golden/trace_tiny.csv /tmp/t.txt
trace-frontend-smoke: build
	printf 'R 0x1000\nW 0x1040\n' | ./_build/default/bin/chex86_sim.exe \
		trace --cpu skylake --csv /tmp/chex86-trace-accept.csv > /dev/null
	./_build/default/bin/chex86_sim.exe trace-gen --seed 1 --count 2000 \
		> /tmp/chex86-cachetrace.txt
	./_build/default/bin/chex86_sim.exe trace --cpu skylake \
		--csv /tmp/chex86-trace-skylake.csv /tmp/chex86-cachetrace.txt > /dev/null
	./_build/default/bin/chex86_sim.exe trace --cpu tiny \
		--csv /tmp/chex86-trace-tiny.csv /tmp/chex86-cachetrace.txt > /dev/null
	cmp test/golden/trace_skylake.csv /tmp/chex86-trace-skylake.csv
	cmp test/golden/trace_tiny.csv /tmp/chex86-trace-tiny.csv
	! cmp -s /tmp/chex86-trace-skylake.csv /tmp/chex86-trace-tiny.csv
	./_build/default/bin/chex86_sim.exe trace-gen --format uoptrace \
		--seed 1 --count 500 \
		| ./_build/default/bin/chex86_sim.exe trace --format uoptrace \
			--cpu nehalem --csv /tmp/chex86-uoptrace.csv > /dev/null

# Golden detection matrix: the generated-campaign sweep's
# per-(family x allocator x configuration) matrix must be byte-identical
# to the checked-in golden file — serially, sharded over domains, and
# through spawned worker processes (same seed, same corpus).  Regenerate
# the golden file with:
#   security_eval --campaign-matrix --matrix-seed 1 --matrix-per-family 4 \
#     --matrix-out test/golden/campaign_matrix.json
security-matrix: build
	./_build/default/bin/security_eval.exe --campaign-matrix \
		--matrix-seed 1 --matrix-per-family 4 \
		--matrix-out /tmp/chex86-campaign-matrix.json > /dev/null
	cmp test/golden/campaign_matrix.json /tmp/chex86-campaign-matrix.json
	./_build/default/bin/security_eval.exe --campaign-matrix \
		--matrix-seed 1 --matrix-per-family 4 --jobs 3 --batch-size 2 \
		--matrix-out /tmp/chex86-campaign-matrix-sharded.json > /dev/null
	cmp test/golden/campaign_matrix.json /tmp/chex86-campaign-matrix-sharded.json
	./_build/default/bin/security_eval.exe --campaign-matrix \
		--matrix-seed 1 --matrix-per-family 4 --workers 2 \
		--matrix-out /tmp/chex86-campaign-matrix-workers.json > /dev/null
	cmp test/golden/campaign_matrix.json /tmp/chex86-campaign-matrix-workers.json

# Store crash-safety soak: randomized SIGKILLs at named injection
# points of the publish protocol across serial / --jobs / --workers
# geometries (7 legs x 3 geometries = 21 kill points), each leg
# resumed and byte-compared against a fault-free reference, plus an
# explicit `chex86_sim store fsck` pass over a freshly written store.
# Reports land in /tmp for CI artifact upload.
store-smoke: build
	./_build/default/test/chaos_soak.exe --legs 7 --seed 42 \
		--report /tmp/chex86-chaos-report.json
	rm -rf /tmp/chex86-store-smoke-cache
	CHEX86_WORKLOADS=mcf,canneal CHEX86_SCALE=1 \
		dune exec bench/main.exe -- --jobs 2 figure6 \
		--cache-dir /tmp/chex86-store-smoke-cache > /dev/null
	./_build/default/bin/chex86_sim.exe store stats \
		--cache-dir /tmp/chex86-store-smoke-cache
	./_build/default/bin/chex86_sim.exe store fsck \
		--cache-dir /tmp/chex86-store-smoke-cache \
		--out /tmp/chex86-fsck.json
	./_build/default/bin/chex86_sim.exe store gc \
		--cache-dir /tmp/chex86-store-smoke-cache --store-max-bytes 4K
	./_build/default/bin/chex86_sim.exe store fsck \
		--cache-dir /tmp/chex86-store-smoke-cache > /dev/null
	rm -rf /tmp/chex86-store-smoke-cache

# Daemon crash-tolerance soak: submit job batches to chex86d over the
# JSON control port while randomized SIGKILLs fire at the daemon's
# named fault points (accept / journal-append / dispatch /
# result-publish), across serial / --jobs 2 / --workers 2 geometries
# (7 legs x 3 geometries = 21 kills).  Every leg must replay its
# journal on restart to exactly-once completion with results
# byte-identical to a fault-free serial reference, leave a clean store
# fsck, and release the store lock; a final admission-control leg
# saturates a --queue-limit 2 daemon and requires explicit `REJECTED
# busy` answers (bounded queue, never a hang).  The last stanza proves
# `make bench` refuses to run while a daemon holds the store lock.
# Report lands in /tmp for CI artifact upload.
daemon-smoke: build
	./_build/default/test/daemon_soak.exe --legs 7 --seed 42 \
		--report /tmp/chex86-daemon-report.json
	rm -rf /tmp/chex86-daemon-guard
	./_build/default/bin/chex86d.exe --cache-dir /tmp/chex86-daemon-guard \
		--port 7719 > /dev/null 2>&1 & DPID=$$!; \
	trap 'kill -9 $$DPID 2>/dev/null' EXIT; sleep 1; \
	./_build/default/bench/main.exe bench \
		--cache-dir /tmp/chex86-daemon-guard 2>&1 \
		| grep -q "holds the store lock"
	rm -rf /tmp/chex86-daemon-guard

check: build test smoke fault-smoke remote-smoke trace-smoke \
	trace-frontend-smoke security-matrix store-smoke daemon-smoke

clean:
	dune clean
