# Entry points for the CHEx86 reproduction.
#
#   make check   build + full test suite + parallel smoke sweep
#   make build   compile everything
#   make test    dune runtest only

.PHONY: all build test smoke fault-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Quick end-to-end sanity: a figure-6 sweep on three representative
# workloads, sharded over 2 worker domains in batched chunks.
# Exercises the domain pool, batched dispatch, the memo prefetch, and
# the stats merge path in one run.
smoke: build
	CHEX86_WORKLOADS=mcf,canneal,freqmine CHEX86_SCALE=1 \
		dune exec bench/main.exe -- --jobs 2 --batch-size 2 figure6

# Supervision sanity: with deterministic fault injection armed, the
# sweep must still complete (exit 0, non-empty fault report); the same
# sweep under --strict must flip the exit code.
fault-smoke: build
	CHEX86_WORKLOADS=mcf,canneal CHEX86_SCALE=1 \
	CHEX86_FAULT_RATE=0.5 CHEX86_FAULT_SEED=11 \
		dune exec bench/main.exe -- --jobs 2 --no-cache figure6 \
		| grep -q "sweep fault report"
	! CHEX86_WORKLOADS=mcf,canneal CHEX86_SCALE=1 \
	CHEX86_FAULT_RATE=0.5 CHEX86_FAULT_SEED=11 \
		dune exec bench/main.exe -- --jobs 2 --no-cache --strict figure6 \
		> /dev/null

check: build test smoke fault-smoke

clean:
	dune clean
