(* Temporal pointer access patterns and the alias predictor (Table II /
   Section V-B).

     dune exec examples/pointer_patterns.exe

   Runs the eight pattern-generator guest programs, captures the PID
   stream observed by the capability checks, classifies each stream with
   the Table II classifier, and reports the alias predictor's accuracy
   on each — showing the paper's core observation: temporal pointer
   access patterns are remarkably predictable, keyed by instruction
   address, even when the addresses themselves are not. *)

let () =
  Printf.printf "%-20s %-20s %-10s %s\n" "pattern" "classified as" "accuracy"
    "observed PID stream (prefix)";
  Printf.printf "%s\n" (String.make 86 '-');
  List.iter
    (fun (name, build) ->
      let trace = ref [] in
      let configure m =
        Chex86.Monitor.set_on_check m (fun ~pc:_ ~pid ~is_store ->
            if is_store && pid > 2 then trace := pid :: !trace)
      in
      let run = Chex86.Sim.run ~configure (build ()) in
      let seq = List.rev !trace in
      let classified = Chex86.Pattern_classifier.classify seq in
      let counters = run.Chex86.Sim.result.Chex86_machine.Simulator.counters in
      let events = Chex86_stats.Counter.get counters "alias.pred_events" in
      let correct = Chex86_stats.Counter.get counters "alias.pred_correct" in
      let accuracy =
        if events = 0 then "n/a"
        else Printf.sprintf "%.0f%%" (100. *. float_of_int correct /. float_of_int events)
      in
      let prefix =
        seq
        |> List.filteri (fun i _ -> i < 12)
        |> List.map string_of_int
        |> String.concat " "
      in
      Printf.printf "%-20s %-20s %-10s %s\n" name
        (Chex86.Pattern_classifier.name classified)
        accuracy prefix)
    Chex86_workloads.Patterns.all
