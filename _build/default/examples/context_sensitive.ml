(* Context-sensitive (on-demand) enforcement — the headline flexibility
   of the microcode variant (Sections I and IV).

     dune exec examples/context_sensitive.exe

   One guest program contains a "security-critical" parser function and
   a bulk numeric kernel.  With scope = Ranges covering only the parser,
   CHEx86 tracks *all* allocations but injects capCheck micro-ops only
   for dereferences inside the parser: a bug there is still caught, the
   numeric kernel runs without micro-op bloat, and the micro-op counts
   show the difference. *)

open Chex86_isa

(* Returns (program, parser address range). *)
let program ~bug =
  let b = Asm.create () in
  Asm.label b "_start";
  Asm.emit b (Insn.Jmp "main");
  (* --- security-critical parser: walks a heap buffer of tag bytes ----- *)
  let parser_start = Asm.here_addr b in
  Asm.label b "parse";
  Asm.emit b (Insn.Mov (W64, Reg RCX, Imm 0));
  let loop = Asm.fresh b "parse_loop" in
  Asm.label b loop;
  Asm.emit b (Insn.Mov (W8, Reg RAX, Mem (Insn.mem ~base:RBX ~index:RCX ())));
  Asm.emit b (Insn.Alu (Add, Reg RDX, Reg RAX));
  Asm.emit b (Insn.Inc (Reg RCX));
  Asm.emit b (Insn.Cmp (Reg RCX, Imm (if bug then 80 else 64)));  (* 64-byte buffer! *)
  Asm.emit b (Insn.Jcc (Lt, loop));
  Asm.emit b Insn.Ret;
  let parser_end = Asm.here_addr b in
  (* --- bulk numeric kernel ------------------------------------------- *)
  Asm.label b "kernel";
  Asm.emit b (Insn.Mov (W64, Reg RCX, Imm 0));
  let kloop = Asm.fresh b "kernel_loop" in
  Asm.label b kloop;
  Asm.emit b (Insn.Inc (Mem (Insn.mem ~base:R12 ~index:RCX ~scale:8 ())));
  Asm.emit b (Insn.Inc (Reg RCX));
  Asm.emit b (Insn.Cmp (Reg RCX, Imm 512));
  Asm.emit b (Insn.Jcc (Lt, kloop));
  Asm.emit b Insn.Ret;
  Asm.label b "main";
  Asm.call_malloc b 64;
  Asm.emit b (Insn.Mov (W64, Reg RBX, Reg RAX));
  Asm.call_malloc b 4096;
  Asm.emit b (Insn.Mov (W64, Reg R12, Reg RAX));
  Asm.loop_n b ~counter:R15 ~n:50 (fun () ->
      Asm.emit b (Insn.Call (Label "parse"));
      Asm.emit b (Insn.Call (Label "kernel")));
  Asm.emit b Insn.Halt;
  (Asm.build b, (parser_start, parser_end))

let run label scope ~bug =
  let prog, range = program ~bug in
  let scope = if scope then Chex86.Variant.Ranges [ range ] else Chex86.Variant.All_code in
  let variant = Chex86.Variant.make ~scope Chex86.Variant.Microcode_prediction in
  let run = Chex86.Sim.run ~variant prog in
  let r = run.Chex86.Sim.result in
  Printf.printf "%-28s %-44s uops=%7d injected=%6d\n" label
    (match run.Chex86.Sim.outcome with
    | Chex86.Sim.Completed -> "completed"
    | Chex86.Sim.Violation_detected k -> "BLOCKED: " ^ Chex86.Violation.to_string k
    | _ -> "unexpected outcome")
    r.Chex86_machine.Simulator.uops r.Chex86_machine.Simulator.uops_injected

let () =
  print_endline "-- clean program: full enforcement vs parser-only scope --";
  run "always-on scope, no bug:" false ~bug:false;
  run "parser-only scope, no bug:" true ~bug:false;
  print_endline "\n-- buggy parser (reads past its 64-byte buffer) --";
  run "always-on scope, bug:" false ~bug:true;
  run "parser-only scope, bug:" true ~bug:true;
  print_endline
    "\nThe surgical scope keeps most of the injected-uop bloat out of the numeric\n\
     kernel while still catching the parser's out-of-bounds read."
