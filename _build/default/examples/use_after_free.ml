(* A use-after-free walked through the CHEx86 machinery.

     dune exec examples/use_after_free.exe

   The guest frees a buffer, makes a fresh allocation so the allocator
   recycles the chunk, then writes through the stale pointer — the
   classic UAF-into-reused-memory pattern.  The example prints the
   relevant shadow capability table entries to show how the freed
   capability (valid bit cleared but retained, Section IV-C) is what
   makes detection possible even though the *address* is live again. *)

open Chex86_isa

let program () =
  let b = Asm.create () in
  Asm.label b "_start";
  (* victim = malloc(96); remember it in r12 *)
  Asm.call_malloc b 96;
  Asm.emit b (Insn.Mov (W64, Reg R12, Reg RAX));
  Asm.emit b (Insn.Mov (W64, Mem (Insn.mem_of_reg R12), Imm 7));
  (* free(victim) *)
  Asm.call_free b R12;
  (* the chunk gets recycled by an unrelated allocation *)
  Asm.call_malloc b 96;
  Asm.emit b (Insn.Mov (W64, Reg R13, Reg RAX));
  Asm.emit b (Insn.Mov (W64, Mem (Insn.mem_of_reg R13), Imm 1234));
  (* ... and the stale pointer clobbers it *)
  Asm.emit b (Insn.Mov (W64, Mem (Insn.mem_of_reg R12), Imm 0xBAD));
  Asm.emit b Insn.Halt;
  Asm.build b

let run_under label variant =
  let run = Chex86.Sim.run ~variant (program ()) in
  (match run.Chex86.Sim.outcome with
  | Chex86.Sim.Completed ->
    let new_owner =
      Chex86_mem.Image.read64 run.proc.Chex86_os.Process.mem
        (Chex86_os.Layout.heap_base + 16)
    in
    Printf.printf "%-24s completed; the recycled chunk now holds %#x (was 1234)\n" label
      new_owner
  | Chex86.Sim.Violation_detected kind ->
    Printf.printf "%-24s BLOCKED: %s\n" label (Chex86.Violation.to_string kind)
  | _ -> Printf.printf "%-24s unexpected outcome\n" label);
  run

let () =
  print_endline "-- use-after-free into a recycled chunk --\n";
  let protected_run = run_under "CHEx86 (prediction):" Chex86.Variant.default in
  ignore (run_under "insecure baseline:" (Chex86.Variant.make Chex86.Variant.Insecure));
  (* Show the shadow capability table: the stale PID is retained with its
     valid bit cleared, while the recycling allocation got a fresh PID
     covering the same addresses. *)
  print_endline "\nshadow capability table of the protected run:";
  Chex86.Cap_table.iter
    (Chex86.Monitor.cap_table protected_run.Chex86.Sim.monitor)
    (fun cap -> Format.printf "  %a@." Chex86.Capability.pp cap)
