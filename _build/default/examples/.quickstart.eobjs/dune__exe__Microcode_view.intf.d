examples/microcode_view.mli:
