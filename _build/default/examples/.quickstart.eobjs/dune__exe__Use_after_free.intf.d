examples/use_after_free.mli:
