examples/pointer_patterns.mli:
