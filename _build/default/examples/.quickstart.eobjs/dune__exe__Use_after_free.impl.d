examples/use_after_free.ml: Asm Chex86 Chex86_isa Chex86_mem Chex86_os Format Insn Printf
