examples/quickstart.ml: Asm Chex86 Chex86_isa Chex86_machine Insn Printf
