examples/pointer_patterns.ml: Chex86 Chex86_machine Chex86_stats Chex86_workloads List Printf String
