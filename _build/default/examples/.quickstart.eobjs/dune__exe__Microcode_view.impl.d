examples/microcode_view.ml: Asm Chex86 Chex86_isa Chex86_machine Chex86_os Format Insn List Printf
