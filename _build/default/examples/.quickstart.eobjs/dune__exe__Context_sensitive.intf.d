examples/context_sensitive.mli:
