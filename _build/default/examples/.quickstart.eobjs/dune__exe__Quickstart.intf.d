examples/quickstart.mli:
