(* A window into the microcode customization unit.

     dune exec examples/microcode_view.exe

   Runs a small bounds-checked-access gadget and prints, for every
   macro-op, the micro-op crack the decoder produced and what the
   monitor injected into it (capGen/capCheck/capFree).  Two things to
   observe:

   1. capCheck travels *inside* the same macro-op as the dereference it
      guards.  This is the paper's Spectre-v1 argument (§III): a
      transiently executed dereference cannot be separated from its
      check the way a software bounds-check branch can, because the
      check is not a separate branch — it is part of the crack.

   2. The malloc/free entry and exit stubs receive the two-step
      capGen.Begin/End and capFree.Begin/End micro-ops (busy-bit
      protocol of §IV-C). *)

open Chex86_isa
module Machine = Chex86_machine

let program () =
  let b = Asm.create () in
  Asm.label b "_start";
  Asm.call_malloc b 32;
  Asm.emit b (Insn.Mov (W64, Reg RBX, Reg RAX));
  (* the Spectre-v1 shape: if (i < len) y = buf[i]; *)
  Asm.emit b (Insn.Mov (W64, Reg RCX, Imm 2));
  Asm.emit b (Insn.Cmp (Reg RCX, Imm 4));
  Asm.emit b (Insn.Jcc (Ge, "skip"));
  Asm.emit b (Insn.Mov (W64, Reg RDX, Mem (Insn.mem ~base:RBX ~index:RCX ~scale:8 ())));
  Asm.label b "skip";
  Asm.call_free b RBX;
  Asm.emit b Insn.Halt;
  Asm.build b

let () =
  let proc = Chex86_os.Process.load (program ()) in
  let hooks = Machine.Hooks.none () in
  let sim = Machine.Simulator.create ~hooks proc in
  let monitor =
    Chex86.Monitor.create ~proc ~hier:(Machine.Simulator.hierarchy sim) ()
  in
  Chex86.Monitor.install monitor hooks;
  (* Wrap the decode-time hook with a printer. *)
  let inner = hooks.Machine.Hooks.instrument in
  hooks.Machine.Hooks.instrument <-
    (fun ctx uops ->
      let out = inner ctx uops in
      let describe =
        match (ctx.Machine.Hooks.insn, ctx.Machine.Hooks.stub) with
        | _, Some (name, Machine.Hooks.Entry) -> Printf.sprintf "<%s native body>" name
        | _, Some (name, Machine.Hooks.Exit) -> Printf.sprintf "<%s exit: ret>" name
        | Some insn, None -> Format.asprintf "%a" Insn.pp insn
        | None, None -> "<?>"
      in
      Printf.printf "%#x  %-28s " ctx.Machine.Hooks.pc describe;
      List.iter
        (fun uop ->
          let s = Format.asprintf "%a" Chex86_isa.Uop.pp uop in
          if Chex86_isa.Uop.is_injected uop then Printf.printf "[+%s] " s
          else Printf.printf "%s; " s)
        out;
      print_newline ();
      out);
  (match (Machine.Simulator.run_functional sim).Machine.Simulator.outcome with
  | Machine.Simulator.Finished -> ()
  | _ -> prerr_endline "unexpected outcome");
  print_newline ();
  print_endline
    "[+...] marks micro-ops injected by the microcode customization unit.\n\
     Note the capCheck inside the same macro-op as the guarded load: a\n\
     Spectre-v1 gadget cannot transiently bypass it the way it bypasses a\n\
     software bounds-check branch."
