(* Quickstart: build a tiny guest program with the assembler, run it on
   the simulated CHEx86 machine, and watch a heap overflow get caught.

     dune exec examples/quickstart.exe

   The guest allocates a 64-byte buffer, fills it in bounds, then —
   depending on the run — writes one word past the end.  Under the
   default microcode prediction-driven variant the out-of-bounds store is
   intercepted by an injected capCheck micro-op before it lands; under
   the insecure baseline the corruption goes through silently. *)

open Chex86_isa

let program ~overflow =
  let b = Asm.create () in
  Asm.label b "_start";
  (* rbx = malloc(64) *)
  Asm.call_malloc b 64;
  Asm.emit b (Insn.Mov (W64, Reg RBX, Reg RAX));
  (* for (i = 0; i < 8; i++) rbx[i] = i *)
  Asm.emit b (Insn.Mov (W64, Reg RCX, Imm 0));
  let loop = Asm.fresh b "fill" in
  Asm.label b loop;
  Asm.emit b (Insn.Mov (W64, Mem (Insn.mem ~base:RBX ~index:RCX ~scale:8 ()), Reg RCX));
  Asm.emit b (Insn.Inc (Reg RCX));
  Asm.emit b (Insn.Cmp (Reg RCX, Imm 8));
  Asm.emit b (Insn.Jcc (Lt, loop));
  (* the bug: rbx[8] = 0x41, one word past the allocation *)
  if overflow then
    Asm.emit b (Insn.Mov (W64, Mem (Insn.mem ~base:RBX ~disp:64 ()), Imm 0x41));
  Asm.call_free b RBX;
  Asm.emit b Insn.Halt;
  Asm.build b

let describe label (run : Chex86.Sim.run) =
  (match run.outcome with
  | Chex86.Sim.Completed -> Printf.printf "%-22s completed cleanly" label
  | Chex86.Sim.Violation_detected kind ->
    Printf.printf "%-22s BLOCKED: %s" label (Chex86.Violation.to_string kind)
  | Chex86.Sim.Heap_abort msg -> Printf.printf "%-22s allocator abort: %s" label msg
  | Chex86.Sim.Guest_fault msg -> Printf.printf "%-22s guest fault: %s" label msg
  | Chex86.Sim.Budget_exhausted -> Printf.printf "%-22s ran out of budget" label);
  Printf.printf "  (%d macro-ops, %d uops, %d injected, %d cycles)\n"
    run.result.Chex86_machine.Simulator.macro_insns
    run.result.Chex86_machine.Simulator.uops
    run.result.Chex86_machine.Simulator.uops_injected
    run.result.Chex86_machine.Simulator.cycles

let () =
  print_endline "-- clean program under CHEx86 (prediction-driven) --";
  describe "clean:" (Chex86.Sim.run (program ~overflow:false));
  print_endline "\n-- overflowing program, three ways --";
  describe "CHEx86 (prediction):" (Chex86.Sim.run (program ~overflow:true));
  describe "CHEx86 (hw-only):"
    (Chex86.Sim.run
       ~variant:(Chex86.Variant.make Chex86.Variant.Hardware_only)
       (program ~overflow:true));
  describe "insecure baseline:"
    (Chex86.Sim.run
       ~variant:(Chex86.Variant.make Chex86.Variant.Insecure)
       (program ~overflow:true))
