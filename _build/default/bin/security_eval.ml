(* security_eval: run the three exploit suites (RIPE, ASan tests,
   How2Heap) against a protection configuration and print the Section
   VII-A summary plus a per-exploit listing for the named suites. *)

module Runner = Chex86_harness.Runner
module Security = Chex86_harness.Security
module Exploit = Chex86_exploits.Exploit

let () =
  let verbose = Array.exists (fun a -> a = "-v" || a = "--verbose") Sys.argv in
  let results = Security.sweep Chex86_exploits.Exploits.all in
  if verbose then
    List.iter
      (fun (r : Security.result) ->
        if r.exploit.Exploit.suite <> Exploit.Ripe then begin
          let status =
            match r.under_protection.Runner.outcome with
            | Runner.Blocked kind -> "blocked: " ^ Chex86.Violation.to_string kind
            | Runner.Completed -> "NOT DETECTED"
            | Runner.Aborted msg -> "allocator abort: " ^ msg
            | Runner.Faulted msg -> "fault: " ^ msg
            | Runner.Budget_exhausted -> "budget exhausted"
          in
          Printf.printf "%-34s %s\n" r.exploit.Exploit.name status
        end)
      results;
  List.iter
    (fun suite ->
      let s = Security.summarize suite results in
      Printf.printf "%-16s %4d exploits, %4d blocked, %4d with the expected class\n"
        (Exploit.suite_name suite) s.Security.total s.Security.blocked
        s.Security.expected_class)
    [ Exploit.Ripe; Exploit.Asan_suite; Exploit.How2heap ];
  let total = List.length results in
  let blocked = List.length (List.filter Security.blocked results) in
  Printf.printf "\n%d/%d exploits blocked under CHEx86 (micro-code prediction driven)\n"
    blocked total;
  if blocked < total then exit 1
