(* Tests for the AddressSanitizer baseline: shadow memory encoding,
   the redzone + quarantine runtime, instrumentation expansion, and
   end-to-end detection parity with CHEx86. *)

open Chex86_isa
module Shadow = Chex86_asan.Shadow
module Runtime = Chex86_asan.Runtime
module Counter = Chex86_stats.Counter

let new_shadow () = Shadow.create (Counter.create_group ())

let test_shadow_default_addressable () =
  let s = new_shadow () in
  Alcotest.(check bool) "fresh memory addressable" true
    (Shadow.check s 0x1234 8 = Ok ())

let test_shadow_poison_unpoison () =
  let s = new_shadow () in
  Shadow.poison s 0x1000 32 Shadow.Heap_redzone;
  Alcotest.(check bool) "poisoned" true (Shadow.check s 0x1010 4 <> Ok ());
  Shadow.unpoison s 0x1000 32;
  Alcotest.(check bool) "unpoisoned" true (Shadow.check s 0x1010 4 = Ok ())

let test_shadow_partial_granule () =
  let s = new_shadow () in
  (* 33-byte object: the 5th granule is Partial 1. *)
  Shadow.unpoison s 0x1000 33;
  Alcotest.(check bool) "byte 32 ok" true (Shadow.check s (0x1000 + 32) 1 = Ok ());
  Alcotest.(check bool) "byte 33 trips" true (Shadow.check s (0x1000 + 33) 1 <> Ok ())

let test_shadow_wide_access_crossing () =
  let s = new_shadow () in
  Shadow.unpoison s 0x1000 16;
  Shadow.poison s 0x1010 16 Shadow.Heap_redzone;
  Alcotest.(check bool) "in-bounds 8B" true (Shadow.check s 0x1008 8 = Ok ());
  Alcotest.(check bool) "8B crossing into redzone trips" true
    (Shadow.check s 0x100C 8 <> Ok ())

let new_runtime () =
  let mem = Chex86_mem.Image.create () in
  let g = Counter.create_group () in
  let heap = Chex86_os.Allocator.create mem g in
  let shadow = Shadow.create g in
  (Runtime.create heap shadow g, shadow)

let test_runtime_redzones () =
  let rt, shadow = new_runtime () in
  let p = Runtime.malloc rt 64 in
  Alcotest.(check bool) "payload addressable" true (Shadow.check shadow p 64 = Ok ());
  Alcotest.(check bool) "left redzone poisoned" true (Shadow.check shadow (p - 8) 8 <> Ok ());
  Alcotest.(check bool) "right redzone poisoned" true
    (Shadow.check shadow (p + 64) 8 <> Ok ())

let test_runtime_uaf_poison () =
  let rt, shadow = new_runtime () in
  let p = Runtime.malloc rt 64 in
  Runtime.free rt p;
  (match Shadow.check shadow p 8 with
  | Error Shadow.Freed -> ()
  | _ -> Alcotest.fail "freed memory must be poisoned as Freed");
  (* The quarantine keeps the chunk out of circulation: a same-size
     allocation must not reuse it immediately. *)
  let q = Runtime.malloc rt 64 in
  Alcotest.(check bool) "quarantine delays reuse" true (q <> p)

let test_runtime_double_and_invalid_free () =
  let rt, _ = new_runtime () in
  let p = Runtime.malloc rt 64 in
  Runtime.free rt p;
  (try
     Runtime.free rt p;
     Alcotest.fail "double free undetected"
   with Chex86.Violation.Security_violation (Chex86.Violation.Double_free _) -> ());
  try
    Runtime.free rt (p + 8);
    Alcotest.fail "invalid free undetected"
  with Chex86.Violation.Security_violation (Chex86.Violation.Invalid_free _) -> ()

let test_runtime_quarantine_drains () =
  let rt, _ = new_runtime () in
  (* Push well past the quarantine capacity; the runtime must recycle
     rather than leak forever. *)
  for _ = 1 to 80 do
    let p = Runtime.malloc rt 16384 in
    Runtime.free rt p
  done;
  Alcotest.(check bool) "storage bounded by quarantine cap" true
    (Runtime.storage_bytes rt < (1 lsl 18) + (200 * 16384 / 8))

let simple_program body =
  let b = Asm.create () in
  Asm.label b "_start";
  body b;
  Asm.emit b Insn.Halt;
  Asm.build b

let run_asan program =
  let _, result, _ = Chex86_asan.Asan_monitor.run ~timing:false program in
  result

let test_asan_detects_oob () =
  let r =
    run_asan
      (simple_program (fun b ->
           Asm.call_malloc b 64;
           Asm.emit b (Insn.Mov (W64, Mem (Insn.mem ~base:RAX ~disp:64 ()), Imm 1))))
  in
  match r.Chex86_machine.Simulator.outcome with
  | Chex86_machine.Simulator.Faulted
      (Chex86.Violation.Security_violation (Chex86.Violation.Out_of_bounds _)) ->
    ()
  | _ -> Alcotest.fail "ASan must flag the redzone write"

let test_asan_detects_uaf () =
  let r =
    run_asan
      (simple_program (fun b ->
           Asm.call_malloc b 64;
           Asm.emit b (Insn.Mov (W64, Reg R12, Reg RAX));
           Asm.call_free b R12;
           Asm.emit b (Insn.Mov (W64, Reg RBX, Mem (Insn.mem_of_reg R12)))))
  in
  match r.Chex86_machine.Simulator.outcome with
  | Chex86_machine.Simulator.Faulted
      (Chex86.Violation.Security_violation (Chex86.Violation.Use_after_free _)) ->
    ()
  | _ -> Alcotest.fail "ASan must flag the freed read"

let test_asan_clean_program () =
  let r =
    run_asan
      (simple_program (fun b ->
           Asm.call_malloc b 64;
           Asm.emit b (Insn.Mov (W64, Mem (Insn.mem ~base:RAX ~disp:56 ()), Imm 1));
           Asm.call_free b RAX))
  in
  match r.Chex86_machine.Simulator.outcome with
  | Chex86_machine.Simulator.Finished -> ()
  | _ -> Alcotest.fail "clean program must pass under ASan"

let test_asan_instrumentation_expansion () =
  (* Every load/store gains a 3-uop software check. *)
  let program =
    simple_program (fun b ->
        Asm.call_malloc b 64;
        for i = 0 to 7 do
          Asm.emit b (Insn.Mov (W64, Mem (Insn.mem ~base:RAX ~disp:(8 * i) ()), Imm i))
        done)
  in
  (* uop accounting lives in the timing pipeline, so run with timing. *)
  let _, r, _ = Chex86_asan.Asan_monitor.run program in
  Alcotest.(check bool) "3 guards per memory access" true
    (r.Chex86_machine.Simulator.uops_injected
    >= 3 * 8 (* the stores *) + 3 (* the call's return-address push *));
  let insecure =
    Chex86.Sim.run ~variant:(Chex86.Variant.make Chex86.Variant.Insecure) program
  in
  Alcotest.(check bool) "ASan roughly doubles the uop count" true
    (float_of_int r.Chex86_machine.Simulator.uops
    > 1.5 *. float_of_int insecure.Chex86.Sim.result.Chex86_machine.Simulator.uops)

let () =
  Alcotest.run "asan"
    [
      ( "shadow",
        [
          Alcotest.test_case "default addressable" `Quick test_shadow_default_addressable;
          Alcotest.test_case "poison/unpoison" `Quick test_shadow_poison_unpoison;
          Alcotest.test_case "partial granule" `Quick test_shadow_partial_granule;
          Alcotest.test_case "wide access crossing" `Quick test_shadow_wide_access_crossing;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "redzones" `Quick test_runtime_redzones;
          Alcotest.test_case "UAF poisoning + quarantine" `Quick test_runtime_uaf_poison;
          Alcotest.test_case "double/invalid free" `Quick
            test_runtime_double_and_invalid_free;
          Alcotest.test_case "quarantine drains" `Quick test_runtime_quarantine_drains;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "detects OOB" `Quick test_asan_detects_oob;
          Alcotest.test_case "detects UAF" `Quick test_asan_detects_uaf;
          Alcotest.test_case "clean program" `Quick test_asan_clean_program;
          Alcotest.test_case "instrumentation expansion" `Quick
            test_asan_instrumentation_expansion;
        ] );
    ]
