(* Tests for the ISA layer: registers, macro instructions, the CISC->uop
   decoder, programs and the assembler. *)

open Chex86_isa

let qcheck_reg_roundtrip =
  QCheck.Test.make ~name:"reg index/of_index roundtrip" QCheck.(int_range 0 15) (fun i ->
      Reg.index (Reg.of_index i) = i)

let test_reg_names_unique () =
  let names = Array.to_list (Array.map Reg.name Reg.all) in
  Alcotest.(check int) "16 unique names" 16 (List.length (List.sort_uniq compare names))

let uop_count insn = List.length (Decoder.decode insn)

let test_decoder_crack_sizes () =
  let m = Insn.mem_of_reg Reg.RBX in
  Alcotest.(check int) "mov reg,reg" 1 (uop_count (Mov (W64, Reg RAX, Reg RBX)));
  Alcotest.(check int) "mov reg,imm" 1 (uop_count (Mov (W64, Reg RAX, Imm 7)));
  Alcotest.(check int) "load" 1 (uop_count (Mov (W64, Reg RAX, Mem m)));
  Alcotest.(check int) "store" 1 (uop_count (Mov (W64, Mem m, Reg RAX)));
  Alcotest.(check int) "alu reg,mem (load-op)" 2 (uop_count (Alu (Add, Reg RAX, Mem m)));
  Alcotest.(check int) "alu mem,reg (RMW)" 3 (uop_count (Alu (Add, Mem m, Reg RAX)));
  Alcotest.(check int) "inc mem (RMW)" 3 (uop_count (Insn.Inc (Mem m)));
  Alcotest.(check int) "push" 2 (uop_count (Push (Reg RAX)));
  Alcotest.(check int) "pop" 2 (uop_count (Pop Reg.RAX));
  Alcotest.(check int) "call" 3 (uop_count (Call (Label "f")));
  Alcotest.(check int) "ret" 3 (uop_count Ret);
  Alcotest.(check int) "jcc" 1 (uop_count (Jcc (Eq, "l")))

(* The paper's Fig 5(f): inc (%rax) cracks into ld t; add t,t,1; st t. *)
let test_decoder_rmw_shape () =
  match Decoder.decode (Insn.Inc (Mem (Insn.mem_of_reg Reg.RAX))) with
  | [ Uop.Load { dst = Tmp 0; _ }; Uop.Alu { op = Insn.Add; dst = Tmp 0; src2 = Imm 1; _ };
      Uop.Store { src = Loc (Tmp 0); _ } ] ->
    ()
  | uops ->
    Alcotest.failf "unexpected crack: %s"
      (String.concat "; " (List.map (Format.asprintf "%a" Uop.pp) uops))

let test_decoder_rejects_malformed () =
  Alcotest.check_raises "imm destination" (Invalid_argument "Decoder.decode: immediate destination")
    (fun () -> ignore (Decoder.decode (Mov (W64, Imm 1, Reg RAX))))

let test_decoder_paths () =
  Alcotest.(check bool) "mov is simple" true
    (Decoder.path (Mov (W64, Reg RAX, Reg RBX)) = Decoder.Simple);
  Alcotest.(check bool) "RMW is complex" true
    (Decoder.path (Insn.Inc (Mem (Insn.mem_of_reg Reg.RAX))) = Decoder.Complex)

let test_uop_reads_writes () =
  let m = Insn.mem ~base:Reg.RBX ~index:Reg.RCX ~scale:8 () in
  (match Decoder.decode (Mov (W64, Reg RAX, Mem m)) with
  | [ load ] ->
    Alcotest.(check bool) "load reads base+index" true
      (List.mem (Uop.Greg Reg.RBX) (Uop.reads load)
      && List.mem (Uop.Greg Reg.RCX) (Uop.reads load));
    Alcotest.(check bool) "load writes rax" true (Uop.writes load = Some (Uop.Greg Reg.RAX))
  | _ -> Alcotest.fail "expected single load");
  match Decoder.decode (Mov (W64, Mem m, Reg RDX)) with
  | [ store ] ->
    Alcotest.(check bool) "store reads source" true
      (List.mem (Uop.Greg Reg.RDX) (Uop.reads store));
    Alcotest.(check bool) "store writes nothing" true (Uop.writes store = None)
  | _ -> Alcotest.fail "expected single store"

let test_uop_classification () =
  Alcotest.(check bool) "imul uses the multiplier" true
    (Uop.fu_class (Uop.Alu { op = Insn.Imul; dst = Greg RAX; src1 = Greg RAX; src2 = Imm 3 })
    = Uop.FU_mult);
  Alcotest.(check bool) "injected check flagged" true
    (Uop.is_injected (Uop.Cap Uop.Cap_gen_begin));
  Alcotest.(check bool) "native uop not injected" true
    (not (Uop.is_injected (Uop.Limm { dst = Greg RAX; imm = 0 })))

let test_asm_labels_and_build () =
  let b = Asm.create () in
  Asm.label b "_start";
  Asm.emit b (Insn.Jmp "end");
  Asm.label b "end";
  Asm.emit b Insn.Halt;
  let p = Asm.build b in
  Alcotest.(check int) "two instructions" 2 (Program.length p);
  Alcotest.(check int) "label resolves" 1 (Program.label_index p "end");
  Alcotest.(check int) "entry is _start" (Program.addr_of_index 0) (Program.entry_addr p)

let test_asm_duplicate_label () =
  let b = Asm.create () in
  Asm.label b "x";
  Alcotest.check_raises "duplicate" (Invalid_argument "Asm.label: duplicate label \"x\"")
    (fun () -> Asm.label b "x")

let test_asm_undefined_label () =
  let b = Asm.create () in
  Asm.label b "_start";
  Asm.emit b (Insn.Jmp "nowhere");
  Alcotest.check_raises "undefined target"
    (Invalid_argument "Program: undefined label \"nowhere\"") (fun () ->
      ignore (Asm.build b))

let qcheck_asm_globals_disjoint =
  QCheck.Test.make ~name:"globals are 16-aligned and disjoint"
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 1 500))
    (fun sizes ->
      let b = Asm.create () in
      let addrs = List.mapi (fun i size -> (Asm.global b (Printf.sprintf "g%d" i) size, size)) sizes in
      List.for_all (fun (a, _) -> a land 15 = 0) addrs
      &&
      let rec disjoint = function
        | (a1, s1) :: ((a2, _) :: _ as rest) -> a1 + s1 <= a2 && disjoint rest
        | _ -> true
      in
      disjoint addrs)

(* Random valid instructions always crack to 1..4 micro-ops (the 1:1 /
   1:4 decoder constraint) with at most one store. *)
let qcheck_decoder_bounds =
  let reg_gen = QCheck.Gen.map Reg.of_index (QCheck.Gen.int_range 0 15) in
  let mem_gen =
    QCheck.Gen.map2
      (fun base disp -> Insn.mem ~base ~disp ())
      reg_gen (QCheck.Gen.int_range (-64) 256)
  in
  let operand_gen =
    QCheck.Gen.oneof
      [
        QCheck.Gen.map (fun r -> Insn.Reg r) reg_gen;
        QCheck.Gen.map (fun i -> Insn.Imm i) (QCheck.Gen.int_range (-1000) 1000);
        QCheck.Gen.map (fun m -> Insn.Mem m) mem_gen;
      ]
  in
  let alu_gen =
    QCheck.Gen.oneofl [ Insn.Add; Insn.Sub; Insn.And; Insn.Or; Insn.Xor; Insn.Imul ]
  in
  let insn_gen =
    QCheck.Gen.oneof
      [
        QCheck.Gen.map2
          (fun d s ->
            match (d, s) with
            | Insn.Imm _, _ | Insn.Mem _, Insn.Mem _ -> Insn.Nop
            | _ -> Insn.Mov (Insn.W64, d, s))
          operand_gen operand_gen;
        QCheck.Gen.map3
          (fun op d s ->
            match (d, s) with
            | Insn.Imm _, _ | Insn.Mem _, Insn.Mem _ -> Insn.Nop
            | _ -> Insn.Alu (op, d, s))
          alu_gen operand_gen operand_gen;
        QCheck.Gen.map (fun r -> Insn.Push (Insn.Reg r)) reg_gen;
        QCheck.Gen.map (fun r -> Insn.Pop r) reg_gen;
        QCheck.Gen.map (fun m -> Insn.Inc (Insn.Mem m)) mem_gen;
        QCheck.Gen.return Insn.Ret;
      ]
  in
  QCheck.Test.make ~name:"decoder cracks are 1..4 uops with <=1 store" ~count:500
    (QCheck.make insn_gen) (fun insn ->
      let uops = Decoder.decode insn in
      let n = List.length uops in
      let stores =
        List.length (List.filter (function Uop.Store _ -> true | _ -> false) uops)
      in
      n >= 1 && n <= 4 && stores <= 1)

let test_program_addr_roundtrip () =
  for i = 0 to 100 do
    Alcotest.(check (option int))
      "index/addr roundtrip" (Some i)
      (Program.index_of_addr (Program.addr_of_index i))
  done;
  Alcotest.(check (option int)) "misaligned addr" None
    (Program.index_of_addr (Program.text_base + 2))

let test_program_fetch () =
  let b = Asm.create () in
  Asm.label b "_start";
  Asm.emit b Insn.Nop;
  Asm.emit b Insn.Halt;
  let p = Asm.build b in
  Alcotest.(check bool) "fetch first" true (Program.fetch p Program.text_base = Some Insn.Nop);
  Alcotest.(check bool) "fetch past end" true
    (Program.fetch p (Program.addr_of_index 2) = None)

let () =
  Alcotest.run "isa"
    [
      ( "reg",
        [
          QCheck_alcotest.to_alcotest qcheck_reg_roundtrip;
          Alcotest.test_case "unique names" `Quick test_reg_names_unique;
        ] );
      ( "decoder",
        [
          Alcotest.test_case "crack sizes" `Quick test_decoder_crack_sizes;
          Alcotest.test_case "RMW shape (Fig 5f)" `Quick test_decoder_rmw_shape;
          Alcotest.test_case "rejects malformed" `Quick test_decoder_rejects_malformed;
          Alcotest.test_case "decoder paths" `Quick test_decoder_paths;
          QCheck_alcotest.to_alcotest qcheck_decoder_bounds;
        ] );
      ( "uop",
        [
          Alcotest.test_case "reads/writes" `Quick test_uop_reads_writes;
          Alcotest.test_case "classification" `Quick test_uop_classification;
        ] );
      ( "asm",
        [
          Alcotest.test_case "labels and build" `Quick test_asm_labels_and_build;
          Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
          Alcotest.test_case "undefined label" `Quick test_asm_undefined_label;
          QCheck_alcotest.to_alcotest qcheck_asm_globals_disjoint;
        ] );
      ( "program",
        [
          Alcotest.test_case "addr roundtrip" `Quick test_program_addr_roundtrip;
          Alcotest.test_case "fetch" `Quick test_program_fetch;
        ] );
    ]
