test/test_workloads.ml: Alcotest Chex86 Chex86_machine Chex86_os Chex86_stats Chex86_workloads List Printf
