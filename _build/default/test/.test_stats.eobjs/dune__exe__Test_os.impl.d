test/test_os.ml: Alcotest Chex86_mem Chex86_os Chex86_stats Gen List QCheck QCheck_alcotest
