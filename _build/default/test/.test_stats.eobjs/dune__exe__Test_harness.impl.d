test/test_harness.ml: Alcotest Chex86 Chex86_exploits Chex86_harness Chex86_isa Chex86_stats Chex86_workloads List String
