test/test_stats.ml: Alcotest Array Chex86_stats Counter Gen Histogram List QCheck QCheck_alcotest Render Rng String
