test/test_asan.ml: Alcotest Asm Chex86 Chex86_asan Chex86_isa Chex86_machine Chex86_mem Chex86_os Chex86_stats Insn
