test/test_asan.mli:
