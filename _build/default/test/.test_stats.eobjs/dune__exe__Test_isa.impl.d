test/test_isa.ml: Alcotest Array Asm Chex86_isa Decoder Format Gen Insn List Printf Program QCheck QCheck_alcotest Reg String Uop
