test/test_mem.ml: Alcotest Chex86_mem Chex86_stats Int64 Printf QCheck QCheck_alcotest
