test/test_machine.ml: Alcotest Asm Chex86_isa Chex86_machine Chex86_os Chex86_stats Chex86_workloads Insn List Printf Program Reg Uop
