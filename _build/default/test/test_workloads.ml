(* Tests for the benchmark workloads: every program assembles, terminates,
   and runs without false positives under full CHEx86 protection; the
   pattern generators produce streams the classifier recognizes; the
   allocation profiles have the Fig 3 shape. *)

module W = Chex86_workloads.Workloads
module Bench_spec = Chex86_workloads.Bench_spec

let small_run ?(variant = Chex86.Variant.default) (w : Bench_spec.t) =
  Chex86.Sim.run ~variant ~timing:false ~max_insns:400_000 (w.build ~scale:1)

let acceptable name (run : Chex86.Sim.run) =
  match run.outcome with
  | Chex86.Sim.Completed | Chex86.Sim.Budget_exhausted -> ()
  | Chex86.Sim.Violation_detected kind ->
    Alcotest.failf "%s: false positive %s" name (Chex86.Violation.to_string kind)
  | Chex86.Sim.Heap_abort msg -> Alcotest.failf "%s: allocator abort %s" name msg
  | Chex86.Sim.Guest_fault msg -> Alcotest.failf "%s: guest fault %s" name msg

let test_workload_clean name () =
  let w = W.find name in
  acceptable name (small_run w);
  acceptable (name ^ "/insecure")
    (small_run ~variant:(Chex86.Variant.make Chex86.Variant.Insecure) w)

let test_registry () =
  Alcotest.(check int) "8 SPEC + 6 PARSEC" 14 (List.length W.all);
  Alcotest.(check int) "8 SPEC" 8 (List.length W.spec);
  Alcotest.(check int) "6 PARSEC" 6 (List.length W.parsec);
  Alcotest.check_raises "unknown workload"
    (Invalid_argument "Workloads.find: unknown workload \"nope\"") (fun () ->
      ignore (W.find "nope"))

let test_workloads_terminate () =
  (* Each workload must actually reach Halt at scale 1 (not just survive
     a budget cap). *)
  List.iter
    (fun (w : Bench_spec.t) ->
      let run =
        Chex86.Sim.run
          ~variant:(Chex86.Variant.make Chex86.Variant.Insecure)
          ~timing:false ~max_insns:5_000_000 (w.build ~scale:1)
      in
      match run.outcome with
      | Chex86.Sim.Completed -> ()
      | _ -> Alcotest.failf "%s did not terminate" w.name)
    W.all

let test_patterns_classify () =
  List.iter
    (fun (name, build) ->
      let trace = ref [] in
      let configure m =
        Chex86.Monitor.set_on_check m (fun ~pc:_ ~pid ~is_store ->
            if is_store && pid > 2 then trace := pid :: !trace)
      in
      let run = Chex86.Sim.run ~timing:false ~configure (build ()) in
      (match run.outcome with
      | Chex86.Sim.Completed -> ()
      | _ -> Alcotest.failf "pattern %s did not complete" name);
      let classified = Chex86.Pattern_classifier.classify (List.rev !trace) in
      Alcotest.(check string) name name (Chex86.Pattern_classifier.name classified))
    Chex86_workloads.Patterns.all

let test_allocation_profile_shape () =
  (* Fig 3's premise: total >= max live >= 1, and xalancbmk makes the
     most allocations of the suite. *)
  let profiles =
    List.map
      (fun (w : Bench_spec.t) ->
        let run =
          Chex86.Sim.run
            ~variant:(Chex86.Variant.make Chex86.Variant.Insecure)
            ~timing:false ~profile_interval:100_000 (w.build ~scale:1)
        in
        match run.profile with
        | Some p -> (w.name, Chex86_os.Heap_profile.report p)
        | None -> Alcotest.fail "profile missing")
      W.all
  in
  List.iter
    (fun (name, (r : Chex86_os.Heap_profile.report)) ->
      Alcotest.(check bool) (name ^ ": total >= max live") true
        (r.total_allocations >= r.max_live_allocations);
      Alcotest.(check bool) (name ^ ": allocates") true (r.total_allocations >= 1))
    profiles;
  let total name = (List.assoc name profiles).Chex86_os.Heap_profile.total_allocations in
  List.iter
    (fun other ->
      if other <> "xalancbmk" then
        Alcotest.(check bool)
          (Printf.sprintf "xalancbmk out-allocates %s" other)
          true
          (total "xalancbmk" > total other))
    (List.map (fun (w : Bench_spec.t) -> w.name) W.all)

let test_pointer_intensity_contrast () =
  (* The design intent behind Fig 6's outliers: mcf reloads spilled
     pointers constantly (alias-predictor traffic), lbm keeps its two
     grid pointers in registers and exhibits almost none. *)
  let reloads_per_kinsn name =
    let run = small_run (W.find name) in
    let c = run.Chex86.Sim.result.Chex86_machine.Simulator.counters in
    1000. *. float_of_int (Chex86_stats.Counter.get c "alias.pred_events")
    /. float_of_int run.Chex86.Sim.result.Chex86_machine.Simulator.macro_insns
  in
  let mcf = reloads_per_kinsn "mcf" and lbm = reloads_per_kinsn "lbm" in
  Alcotest.(check bool)
    (Printf.sprintf "mcf (%.1f/kinsn) >> lbm (%.1f/kinsn)" mcf lbm)
    true (mcf > 10. *. lbm)

let () =
  Alcotest.run "workloads"
    [
      ("registry", [ Alcotest.test_case "registry" `Quick test_registry ]);
      ( "no false positives",
        List.map
          (fun (w : Bench_spec.t) ->
            Alcotest.test_case w.name `Slow (test_workload_clean w.name))
          W.all );
      ( "behaviour",
        [
          Alcotest.test_case "terminate" `Slow test_workloads_terminate;
          Alcotest.test_case "patterns classify" `Quick test_patterns_classify;
          Alcotest.test_case "allocation profile shape" `Slow
            test_allocation_profile_shape;
          Alcotest.test_case "pointer intensity contrast" `Slow
            test_pointer_intensity_contrast;
        ] );
    ]
