(* Model-specific registers that register heap-management functions.

   Section IV-C: "the OS kernel or other trusted entities may configure a
   set of model-specific registers (MSRs) to register the instruction
   address of the entry and exit points of key heap management
   functions... along with their respective signatures".  Both entry and
   exit are intercepted so capability generation/freeing happens in two
   steps (busy bit protocol). *)

type kind = Malloc | Calloc | Realloc | Free

type registration = { kind : kind; entry : int; exit_ : int }

type t = { mutable registrations : registration list; max_entries : int }

let create ?(max_entries = 16) () = { registrations = []; max_entries }

let register t ~kind ~entry ~exit_ =
  if List.length t.registrations >= t.max_entries then
    invalid_arg "Msrs.register: model-specific limit on entry/exit points reached";
  t.registrations <- { kind; entry; exit_ } :: t.registrations

(* Default registration for the modelled libc stubs. *)
let register_default_libc t =
  List.iter
    (fun (name, kind) ->
      register t ~kind ~entry:(Layout.extern_addr name)
        ~exit_:(Layout.extern_exit_addr name))
    [ ("malloc", Malloc); ("calloc", Calloc); ("realloc", Realloc); ("free", Free) ]

let lookup_entry t pc = List.find_opt (fun r -> r.entry = pc) t.registrations
let lookup_exit t pc = List.find_opt (fun r -> r.exit_ = pc) t.registrations

let is_allocating = function Malloc | Calloc | Realloc -> true | Free -> false
