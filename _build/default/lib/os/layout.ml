(* Guest address-space layout.

   |  text   | 0x0040_0000  program macro-ops, 4 bytes each
   |  data   | 0x0060_0000  globals (symbol table entries)
   |  heap   | 0x1000_0000  allocator arena, grows up
   |  stack  | 0x7FFF_FFF0  grows down
   |  libc   | 0x7F00_0000_0000  runtime stubs (malloc, free, ...)
   |  arena  | 0x7F10_0000_0000  allocator state (bin heads, top pointer)

   Shadow structures (capability table, alias table, ASan shadow) live in
   a disjoint shadow address space only reachable by privileged micro-ops,
   modelled as separate OCaml structures with storage accounting. *)

let heap_base = 0x1000_0000
let heap_max = 0x4000_0000
let libc_base = 0x7F00_0000_0000
let arena_base = 0x7F10_0000_0000

(* Each runtime stub occupies two macro-op slots: the native body at the
   entry address and a Ret at entry+4 (the exit address registered in the
   MSRs). *)
let stub_stride = 16

let externs = [ "malloc"; "free"; "calloc"; "realloc"; "memset"; "memcpy"; "puts"; "rand" ]

let extern_addr name =
  let rec index i = function
    | [] -> invalid_arg (Printf.sprintf "Layout.extern_addr: unknown extern %S" name)
    | x :: _ when x = name -> i
    | _ :: rest -> index (i + 1) rest
  in
  libc_base + (stub_stride * index 0 externs)

let extern_exit_addr name = extern_addr name + 4

(* Inverse mapping used by the engine's fetch path. *)
let extern_of_addr addr =
  if addr < libc_base || addr >= libc_base + (stub_stride * List.length externs) then None
  else
    let off = addr - libc_base in
    let idx = off / stub_stride in
    let name = List.nth externs idx in
    if off mod stub_stride = 0 then Some (name, `Entry)
    else if off mod stub_stride = 4 then Some (name, `Exit)
    else None
