(* Allocation-behaviour profiler for Fig 3.

   Collects, per benchmark: (1) the total number of allocations, (2) the
   maximum number of live allocations at any point, and (3) the average
   number of distinct allocations actually dereferenced in each execution
   interval.  The paper used 100M-instruction intervals under valgrind;
   our workloads are shorter, so the interval length is a parameter (the
   harness documents its scaling in EXPERIMENTS.md). *)

type t = {
  heap : Allocator.t;
  interval_insns : int;
  mutable total_allocs : int;
  mutable live : int;
  mutable max_live : int;
  mutable insns : int;
  mutable insns_in_interval : int;
  in_use : (int, unit) Hashtbl.t;  (* allocation ids touched this interval *)
  mutable intervals : int;
  mutable in_use_sum : int;
}

let create ?(interval_insns = 200_000) heap =
  let t =
    {
      heap;
      interval_insns;
      total_allocs = 0;
      live = 0;
      max_live = 0;
      insns = 0;
      insns_in_interval = 0;
      in_use = Hashtbl.create 256;
      intervals = 0;
      in_use_sum = 0;
    }
  in
  Allocator.set_event_handler heap (function
    | Allocator.Alloc _ ->
      t.total_allocs <- t.total_allocs + 1;
      t.live <- t.live + 1;
      if t.live > t.max_live then t.max_live <- t.live
    | Allocator.Free _ -> t.live <- max 0 (t.live - 1)
    | Allocator.Alloc_failed _ -> ());
  t

let close_interval t =
  if t.insns_in_interval > 0 then begin
    t.intervals <- t.intervals + 1;
    t.in_use_sum <- t.in_use_sum + Hashtbl.length t.in_use;
    Hashtbl.reset t.in_use;
    t.insns_in_interval <- 0
  end

let on_insn t =
  t.insns <- t.insns + 1;
  t.insns_in_interval <- t.insns_in_interval + 1;
  if t.insns_in_interval >= t.interval_insns then close_interval t

(* Distinct live buffers (by base address) dereferenced this interval —
   the valgrind-level "allocations in use" of Fig 3. *)
let on_access t addr =
  match Allocator.find_allocation t.heap addr with
  | Some (base, _, _) -> Hashtbl.replace t.in_use base ()
  | None -> ()

type report = {
  total_allocations : int;
  max_live_allocations : int;
  avg_in_use_per_interval : float;
}

let report t =
  close_interval t;
  {
    total_allocations = t.total_allocs;
    max_live_allocations = t.max_live;
    avg_in_use_per_interval =
      (if t.intervals = 0 then 0.
       else float_of_int t.in_use_sum /. float_of_int t.intervals);
  }
