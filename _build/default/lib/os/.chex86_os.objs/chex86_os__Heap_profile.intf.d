lib/os/heap_profile.mli: Allocator
