lib/os/heap_profile.ml: Allocator Hashtbl
