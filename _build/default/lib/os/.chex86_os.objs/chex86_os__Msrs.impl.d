lib/os/msrs.ml: Layout List
