lib/os/allocator.mli: Chex86_mem Chex86_stats
