lib/os/msrs.mli:
