lib/os/allocator.ml: Chex86_mem Chex86_stats Int Layout Map
