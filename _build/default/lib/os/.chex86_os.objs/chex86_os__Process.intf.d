lib/os/process.mli: Allocator Chex86_isa Chex86_mem Chex86_stats Msrs
