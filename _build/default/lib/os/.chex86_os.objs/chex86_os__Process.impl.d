lib/os/process.ml: Allocator Chex86_isa Chex86_mem Chex86_stats List Msrs
