lib/os/layout.ml: List Printf
