lib/os/layout.mli:
