(** Guest address-space layout and the native libc stub addresses. *)

val heap_base : int
val heap_max : int
val libc_base : int
val arena_base : int

(** Stub size: native body at +0, Ret at +4. *)
val stub_stride : int

val externs : string list
val extern_addr : string -> int
val extern_exit_addr : string -> int

(** Classify a libc-region address as a stub entry or exit. *)
val extern_of_addr : int -> (string * [ `Entry | `Exit ]) option
