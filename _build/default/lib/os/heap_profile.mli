(** Allocation-behaviour profiler (Fig 3: total / max-live / in-use). *)

type t

(** Hooks the allocator's event stream. [interval_insns] is the profiling
    interval (the paper's 100M instructions, scaled down). *)
val create : ?interval_insns:int -> Allocator.t -> t

(** Call once per retired macro instruction. *)
val on_insn : t -> unit

(** Call for every data access (classifies which allocation is in use). *)
val on_access : t -> int -> unit

type report = {
  total_allocations : int;
  max_live_allocations : int;
  avg_in_use_per_interval : float;
}

val report : t -> report
