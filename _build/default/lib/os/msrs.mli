(** MSR registration of heap-management function entry/exit points. *)

type kind = Malloc | Calloc | Realloc | Free
type registration = { kind : kind; entry : int; exit_ : int }
type t

(** [max_entries] models the per-process limit on registered points. *)
val create : ?max_entries:int -> unit -> t

(** Raises [Invalid_argument] past the model-specific limit. *)
val register : t -> kind:kind -> entry:int -> exit_:int -> unit

(** Register malloc/calloc/realloc/free of the modelled libc. *)
val register_default_libc : t -> unit

val lookup_entry : t -> int -> registration option
val lookup_exit : t -> int -> registration option
val is_allocating : kind -> bool
