(** Macro-level (CISC) instructions of the modelled x86-64 subset. *)

(** Effective address: base + index*scale + disp. [base = None] models
    absolute / constant-pool addressing. *)
type mem = { base : Reg.t option; index : Reg.t option; scale : int; disp : int }

val mem : ?base:Reg.t -> ?index:Reg.t -> ?scale:int -> ?disp:int -> unit -> mem

(** [(disp)(%r)] addressing. *)
val mem_of_reg : ?disp:int -> Reg.t -> mem

(** Absolute address. *)
val mem_abs : int -> mem

type width = W8 | W16 | W32 | W64

val bytes_of_width : width -> int

type operand = Reg of Reg.t | Imm of int | Mem of mem
type alu = Add | Sub | And | Or | Xor | Imul | Shl | Shr
type fpop = Fadd | Fsub | Fmul | Fdiv | Fsqrt
type cond = Eq | Ne | Lt | Le | Gt | Ge

(** Program label or external runtime (libc) function. *)
type target = Label of string | Extern of string

type t =
  | Mov of width * operand * operand  (** dst, src; at most one [Mem] *)
  | Lea of Reg.t * mem
  | Alu of alu * operand * operand  (** dst op= src; at most one [Mem] *)
  | Cmp of operand * operand
  | Test of operand * operand
  | Inc of operand
  | Dec of operand
  | Neg of Reg.t
  | Push of operand
  | Pop of Reg.t
  | Call of target
  | Call_reg of Reg.t
  | Ret
  | Jmp of string
  | Jmp_reg of Reg.t
  | Jcc of cond * string
  | Movsd_load of int * mem  (** xmm <- [mem] *)
  | Movsd_store of mem * int  (** [mem] <- xmm *)
  | Fp of fpop * int * int  (** xmm_dst op= xmm_src *)
  | Cvtsi2sd of int * Reg.t
  | Cvtsd2si of Reg.t * int
  | Nop
  | Halt

val xmm_count : int

(** Registers read to form the effective address of [m]. *)
val mem_regs : mem -> Reg.t list

val alu_name : alu -> string
val cond_name : cond -> string
val pp_mem : Format.formatter -> mem -> unit
val pp_operand : Format.formatter -> operand -> unit
val pp : Format.formatter -> t -> unit
