(* Macro-level (CISC) instructions of the modelled x86-64 subset.

   The subset deliberately keeps the register-memory addressing modes that
   make capability enforcement on x86 hard (the paper's motivation): any
   ALU operation can take a memory operand, read-modify-write forms
   exist, and pointer manipulation happens through MOV/LEA/ADD/SUB/AND
   with every combination of register, immediate and memory operands
   (Table I of the paper). *)

(* base + index*scale + disp.  [base = None] gives absolute addressing,
   which is how we model both PC-relative constant-pool accesses and the
   "constant integer address" dereferences discussed in Section VII-B. *)
type mem = { base : Reg.t option; index : Reg.t option; scale : int; disp : int }

let mem ?base ?index ?(scale = 1) ?(disp = 0) () = { base; index; scale; disp }
let mem_of_reg ?(disp = 0) r = { base = Some r; index = None; scale = 1; disp }
let mem_abs addr = { base = None; index = None; scale = 1; disp = addr }

type width = W8 | W16 | W32 | W64

let bytes_of_width = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8

type operand = Reg of Reg.t | Imm of int | Mem of mem

type alu = Add | Sub | And | Or | Xor | Imul | Shl | Shr

type fpop = Fadd | Fsub | Fmul | Fdiv | Fsqrt

type cond = Eq | Ne | Lt | Le | Gt | Ge

(* Call/jump targets: a label into the program text, resolved by the
   assembler, or an external runtime function bound by the loader. *)
type target = Label of string | Extern of string

type t =
  | Mov of width * operand * operand  (* dst, src; at most one Mem operand *)
  | Lea of Reg.t * mem
  | Alu of alu * operand * operand  (* dst op= src; at most one Mem operand *)
  | Cmp of operand * operand
  | Test of operand * operand
  | Inc of operand
  | Dec of operand
  | Neg of Reg.t
  | Push of operand
  | Pop of Reg.t
  | Call of target
  | Call_reg of Reg.t
  | Ret
  | Jmp of string
  | Jmp_reg of Reg.t
  | Jcc of cond * string
  (* FP subset: XMM registers hold one double each.  Enough to model the
     FP-dominated SPEC/PARSEC workloads' functional-unit pressure. *)
  | Movsd_load of int * mem  (* xmm <- [mem] *)
  | Movsd_store of mem * int  (* [mem] <- xmm *)
  | Fp of fpop * int * int  (* xmm_dst op= xmm_src *)
  | Cvtsi2sd of int * Reg.t  (* xmm <- float of reg *)
  | Cvtsd2si of Reg.t * int  (* reg <- int of xmm *)
  | Nop
  | Halt

let xmm_count = 16

(* Registers read to form an effective address. *)
let mem_regs m =
  let add acc = function Some r -> r :: acc | None -> acc in
  add (add [] m.index) m.base

let pp_mem ppf m =
  let pp_opt ppf = function Some r -> Reg.pp ppf r | None -> () in
  Format.fprintf ppf "%d(%a,%a,%d)" m.disp pp_opt m.base pp_opt m.index m.scale

let pp_operand ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm i -> Format.fprintf ppf "$%d" i
  | Mem m -> pp_mem ppf m

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Imul -> "imul"
  | Shl -> "shl"
  | Shr -> "shr"

let cond_name = function
  | Eq -> "e"
  | Ne -> "ne"
  | Lt -> "l"
  | Le -> "le"
  | Gt -> "g"
  | Ge -> "ge"

let pp ppf = function
  | Mov (_, d, s) -> Format.fprintf ppf "mov %a, %a" pp_operand s pp_operand d
  | Lea (r, m) -> Format.fprintf ppf "lea %a, %a" pp_mem m Reg.pp r
  | Alu (op, d, s) ->
    Format.fprintf ppf "%s %a, %a" (alu_name op) pp_operand s pp_operand d
  | Cmp (a, b) -> Format.fprintf ppf "cmp %a, %a" pp_operand b pp_operand a
  | Test (a, b) -> Format.fprintf ppf "test %a, %a" pp_operand b pp_operand a
  | Inc o -> Format.fprintf ppf "inc %a" pp_operand o
  | Dec o -> Format.fprintf ppf "dec %a" pp_operand o
  | Neg r -> Format.fprintf ppf "neg %a" Reg.pp r
  | Push o -> Format.fprintf ppf "push %a" pp_operand o
  | Pop r -> Format.fprintf ppf "pop %a" Reg.pp r
  | Call (Label l) -> Format.fprintf ppf "call %s" l
  | Call (Extern l) -> Format.fprintf ppf "call %s@plt" l
  | Call_reg r -> Format.fprintf ppf "call *%a" Reg.pp r
  | Ret -> Format.fprintf ppf "ret"
  | Jmp l -> Format.fprintf ppf "jmp %s" l
  | Jmp_reg r -> Format.fprintf ppf "jmp *%a" Reg.pp r
  | Jcc (c, l) -> Format.fprintf ppf "j%s %s" (cond_name c) l
  | Movsd_load (x, m) -> Format.fprintf ppf "movsd %a, %%xmm%d" pp_mem m x
  | Movsd_store (m, x) -> Format.fprintf ppf "movsd %%xmm%d, %a" x pp_mem m
  | Fp (op, d, s) ->
    let n =
      match op with
      | Fadd -> "addsd"
      | Fsub -> "subsd"
      | Fmul -> "mulsd"
      | Fdiv -> "divsd"
      | Fsqrt -> "sqrtsd"
    in
    Format.fprintf ppf "%s %%xmm%d, %%xmm%d" n s d
  | Cvtsi2sd (x, r) -> Format.fprintf ppf "cvtsi2sd %a, %%xmm%d" Reg.pp r x
  | Cvtsd2si (r, x) -> Format.fprintf ppf "cvtsd2si %%xmm%d, %a" x Reg.pp r
  | Nop -> Format.fprintf ppf "nop"
  | Halt -> Format.fprintf ppf "hlt"
