(** CISC -> RISC micro-op translation (the paper's translation interface). *)

(** Crack a macro instruction into 1-4 micro-ops. Raises
    [Invalid_argument] on malformed operand combinations (e.g. immediate
    destinations). *)
val decode : Insn.t -> Uop.t list

(** Which decoder services the macro-op (front-end timing). *)
type path = Simple | Complex | Msrom

val path : Insn.t -> path
