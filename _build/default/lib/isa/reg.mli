(** Architectural integer registers of the modelled x86-64 subset. *)

type t =
  | RAX
  | RBX
  | RCX
  | RDX
  | RSI
  | RDI
  | RBP
  | RSP
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

val all : t array
val count : int

(** Stable dense index in [0, count). *)
val index : t -> int

(** Inverse of [index]; raises [Invalid_argument] out of range. *)
val of_index : int -> t

val name : t -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
