(* CISC -> RISC micro-op translation.

   This is the layer of indirection the paper piggybacks on: every macro
   instruction is cracked into 1-4 micro-ops.  Register-memory forms go
   through decoder temporaries exactly as in the paper's Fig 5(f)
   (`inc (%rax)` -> ld t1,(%rax); add t1,t1,1; st t1,(%rax)).

   The Branch micro-op deliberately carries no register operand: indirect
   branch/call targets are read from the macro instruction by the engine,
   keeping the micro-op IR small. *)

let t0 = Uop.Tmp 0

let rsp = Uop.Greg Reg.RSP

let alu op dst src1 src2 = Uop.Alu { op; dst; src1; src2 }
let load ?(width = Insn.W64) dst mem = Uop.Load { dst; mem; width }
let store ?(width = Insn.W64) src mem = Uop.Store { src; mem; width }

let rsp_mem = Insn.mem_of_reg Reg.RSP

let decode (insn : Insn.t) : Uop.t list =
  match insn with
  | Mov (_, Reg d, Reg s) -> [ Mov { dst = Greg d; src = Greg s } ]
  | Mov (_, Reg d, Imm i) -> [ Limm { dst = Greg d; imm = i } ]
  | Mov (w, Reg d, Mem m) -> [ load ~width:w (Greg d) m ]
  | Mov (w, Mem m, Reg s) -> [ store ~width:w (Loc (Greg s)) m ]
  | Mov (w, Mem m, Imm i) -> [ store ~width:w (Imm i) m ]
  | Mov (_, Imm _, _) -> invalid_arg "Decoder.decode: immediate destination"
  | Mov (_, Mem _, Mem _) -> invalid_arg "Decoder.decode: mem-to-mem mov"
  | Lea (r, m) -> [ Lea { dst = Greg r; mem = m } ]
  | Alu (op, Reg d, Reg s) -> [ alu op (Greg d) (Greg d) (Loc (Greg s)) ]
  | Alu (op, Reg d, Imm i) -> [ alu op (Greg d) (Greg d) (Imm i) ]
  | Alu (op, Reg d, Mem m) -> [ load t0 m; alu op (Greg d) (Greg d) (Loc t0) ]
  | Alu (op, Mem m, Reg s) -> [ load t0 m; alu op t0 t0 (Loc (Greg s)); store (Loc t0) m ]
  | Alu (op, Mem m, Imm i) -> [ load t0 m; alu op t0 t0 (Imm i); store (Loc t0) m ]
  | Alu (_, Imm _, _) | Alu (_, Mem _, Mem _) ->
    invalid_arg "Decoder.decode: unsupported alu operand combination"
  | Cmp (Reg a, Reg b) -> [ Cmp { src1 = Greg a; src2 = Loc (Greg b); is_test = false } ]
  | Cmp (Reg a, Imm i) -> [ Cmp { src1 = Greg a; src2 = Imm i; is_test = false } ]
  | Cmp (Reg a, Mem m) ->
    [ load t0 m; Cmp { src1 = Greg a; src2 = Loc t0; is_test = false } ]
  | Cmp (Mem m, Reg b) ->
    [ load t0 m; Cmp { src1 = t0; src2 = Loc (Greg b); is_test = false } ]
  | Cmp (Mem m, Imm i) -> [ load t0 m; Cmp { src1 = t0; src2 = Imm i; is_test = false } ]
  | Cmp (Imm _, _) -> invalid_arg "Decoder.decode: cmp immediate first operand"
  | Cmp (Mem _, Mem _) -> invalid_arg "Decoder.decode: mem-to-mem cmp"
  | Test (Reg a, Reg b) -> [ Cmp { src1 = Greg a; src2 = Loc (Greg b); is_test = true } ]
  | Test (Reg a, Imm i) -> [ Cmp { src1 = Greg a; src2 = Imm i; is_test = true } ]
  | Test (Mem m, Reg b) ->
    [ load t0 m; Cmp { src1 = t0; src2 = Loc (Greg b); is_test = true } ]
  | Test (Mem m, Imm i) -> [ load t0 m; Cmp { src1 = t0; src2 = Imm i; is_test = true } ]
  | Test _ -> invalid_arg "Decoder.decode: unsupported test form"
  | Inc (Reg r) -> [ alu Insn.Add (Greg r) (Greg r) (Imm 1) ]
  | Inc (Mem m) -> [ load t0 m; alu Insn.Add t0 t0 (Imm 1); store (Loc t0) m ]
  | Inc (Imm _) -> invalid_arg "Decoder.decode: inc immediate"
  | Dec (Reg r) -> [ alu Insn.Sub (Greg r) (Greg r) (Imm 1) ]
  | Dec (Mem m) -> [ load t0 m; alu Insn.Sub t0 t0 (Imm 1); store (Loc t0) m ]
  | Dec (Imm _) -> invalid_arg "Decoder.decode: dec immediate"
  | Neg r ->
    [ Limm { dst = t0; imm = 0 }; alu Insn.Sub (Greg r) t0 (Loc (Greg r)) ]
  | Push (Reg r) ->
    [ alu Insn.Sub rsp rsp (Imm 8); store (Loc (Greg r)) rsp_mem ]
  | Push (Imm i) -> [ alu Insn.Sub rsp rsp (Imm 8); store (Imm i) rsp_mem ]
  | Push (Mem m) ->
    [ load t0 m; alu Insn.Sub rsp rsp (Imm 8); store (Loc t0) rsp_mem ]
  | Pop r -> [ load (Greg r) rsp_mem; alu Insn.Add rsp rsp (Imm 8) ]
  | Call tgt ->
    (* The return-address store's value is the dynamic pc+4; the engine
       supplies it when executing the store of a Call macro-op. *)
    [
      alu Insn.Sub rsp rsp (Imm 8);
      store (Imm 0) rsp_mem;
      Branch { kind = Call; target = Some tgt };
    ]
  | Call_reg _ ->
    [
      alu Insn.Sub rsp rsp (Imm 8);
      store (Imm 0) rsp_mem;
      Branch { kind = Call; target = None };
    ]
  | Ret ->
    [ load t0 rsp_mem; alu Insn.Add rsp rsp (Imm 8); Branch { kind = Ret; target = None } ]
  | Jmp l -> [ Branch { kind = Jump; target = Some (Label l) } ]
  | Jmp_reg _ -> [ Branch { kind = Indirect; target = None } ]
  | Jcc (c, l) -> [ Branch { kind = Cond c; target = Some (Label l) } ]
  | Movsd_load (x, m) -> [ load (Xreg x) m ]
  | Movsd_store (m, x) -> [ store (Loc (Xreg x)) m ]
  | Fp (op, d, s) -> [ Fp { op; dst = Xreg d; src = Xreg s } ]
  | Cvtsi2sd (x, r) -> [ Cvt { dst = Xreg x; src = Greg r; to_fp = true } ]
  | Cvtsd2si (r, x) -> [ Cvt { dst = Greg r; src = Xreg x; to_fp = false } ]
  | Nop -> [ Nop ]
  | Halt -> [ Nop ]

(* Which decoder a macro-op uses: cracks of one micro-op go through the
   1:1 decoders, short cracks through the 1:4 complex decoder, anything
   longer is sourced from the MSROM.  The front-end model charges an
   extra decode cycle for MSROM-sourced macro-ops. *)
type path = Simple | Complex | Msrom

let path insn =
  match List.length (decode insn) with
  | 0 | 1 -> Simple
  | n when n <= 4 -> Complex
  | _ -> Msrom
