(* Architectural integer register file of the modelled x86-64 subset. *)

type t =
  | RAX
  | RBX
  | RCX
  | RDX
  | RSI
  | RDI
  | RBP
  | RSP
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

let all =
  [| RAX; RBX; RCX; RDX; RSI; RDI; RBP; RSP; R8; R9; R10; R11; R12; R13; R14; R15 |]

let count = Array.length all

let index = function
  | RAX -> 0
  | RBX -> 1
  | RCX -> 2
  | RDX -> 3
  | RSI -> 4
  | RDI -> 5
  | RBP -> 6
  | RSP -> 7
  | R8 -> 8
  | R9 -> 9
  | R10 -> 10
  | R11 -> 11
  | R12 -> 12
  | R13 -> 13
  | R14 -> 14
  | R15 -> 15

let of_index i =
  if i < 0 || i >= count then invalid_arg "Reg.of_index";
  all.(i)

let name = function
  | RAX -> "rax"
  | RBX -> "rbx"
  | RCX -> "rcx"
  | RDX -> "rdx"
  | RSI -> "rsi"
  | RDI -> "rdi"
  | RBP -> "rbp"
  | RSP -> "rsp"
  | R8 -> "r8"
  | R9 -> "r9"
  | R10 -> "r10"
  | R11 -> "r11"
  | R12 -> "r12"
  | R13 -> "r13"
  | R14 -> "r14"
  | R15 -> "r15"

let equal a b = index a = index b
let pp ppf r = Format.fprintf ppf "%%%s" (name r)
