(** Assembler / program builder used by workloads and exploit suites. *)

type t

val create : unit -> t
val emit : t -> Insn.t -> unit
val emit_list : t -> Insn.t list -> unit

(** Bind a label to the next emitted instruction. Raises on duplicates. *)
val label : t -> string -> unit

(** Fresh unique label with the given prefix. *)
val fresh : t -> string -> string

(** [global b name size] reserves a zero-initialized data object and
    returns its address; it appears in the program's symbol table.
    [writable:false] models a .rodata object. *)
val global : ?writable:bool -> t -> string -> int -> int

(** Address the next emitted instruction will have. *)
val here_addr : t -> int

(** Assemble. [entry] defaults to ["_start"]. *)
val build : ?entry:string -> t -> Program.t

(** [loop_n b ~counter ~n body] emits a counted loop (n-1..0), clobbering
    [counter]. *)
val loop_n : t -> counter:Reg.t -> n:int -> (unit -> unit) -> unit

val call_extern : t -> string -> unit

(** malloc(size): result in rax. Clobbers rdi. *)
val call_malloc : t -> int -> unit

(** free(reg). Clobbers rdi. *)
val call_free : t -> Reg.t -> unit
