(* Assembler / program builder.

   Workloads and exploits construct guest programs through this builder:
   emit instructions, drop labels, reserve zero-initialized globals.
   Global data addresses are assigned eagerly (bump allocation from
   [Program.data_base], 16-byte aligned) so instructions can embed
   absolute displacements; the resulting (name, addr, size) list is the
   program's symbol table. *)

type t = {
  mutable insns : Insn.t list;  (* reversed *)
  mutable count : int;
  labels : (string, int) Hashtbl.t;
  mutable globals : Program.global list;  (* reversed *)
  mutable data_cursor : int;
  mutable fresh_counter : int;
}

let create () =
  {
    insns = [];
    count = 0;
    labels = Hashtbl.create 64;
    globals = [];
    data_cursor = Program.data_base;
    fresh_counter = 0;
  }

let emit b insn =
  b.insns <- insn :: b.insns;
  b.count <- b.count + 1

let emit_list b insns = List.iter (emit b) insns

let label b name =
  if Hashtbl.mem b.labels name then
    invalid_arg (Printf.sprintf "Asm.label: duplicate label %S" name);
  Hashtbl.add b.labels name b.count

let fresh b prefix =
  b.fresh_counter <- b.fresh_counter + 1;
  Printf.sprintf ".%s_%d" prefix b.fresh_counter

let align16 n = (n + 15) land lnot 15

let global ?(writable = true) b name size =
  if size <= 0 then invalid_arg "Asm.global: size must be positive";
  let addr = align16 b.data_cursor in
  b.data_cursor <- addr + size;
  b.globals <- { Program.name; addr; size; writable } :: b.globals;
  addr

(* Current instruction address, for code that needs to reference itself. *)
let here_addr b = Program.addr_of_index b.count

let build ?(entry = "_start") b =
  let entry_index =
    match Hashtbl.find_opt b.labels entry with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Asm.build: no entry label %S" entry)
  in
  Program.make
    ~insns:(Array.of_list (List.rev b.insns))
    ~labels:b.labels ~globals:(List.rev b.globals) ~entry:entry_index
    ~data_end:b.data_cursor

(* --- Common idioms ------------------------------------------------------ *)

open Insn

(* [loop_n b ~counter ~n body] runs [body] with [counter] going n-1 .. 0.
   Clobbers [counter]. *)
let loop_n b ~counter ~n body =
  let top = fresh b "loop" in
  emit b (Mov (W64, Reg counter, Imm n));
  label b top;
  body ();
  emit b (Dec (Reg counter));
  emit b (Jcc (Ne, top))

(* Call an external runtime function; arguments already in rdi/rsi. *)
let call_extern b name = emit b (Call (Extern name))

(* malloc(size) -> result in rax. *)
let call_malloc b size =
  emit b (Mov (W64, Reg Reg.RDI, Imm size));
  call_extern b "malloc"

(* free(reg). *)
let call_free b reg =
  if not (Reg.equal reg Reg.RDI) then emit b (Mov (W64, Reg Reg.RDI, Reg reg));
  call_extern b "free"
