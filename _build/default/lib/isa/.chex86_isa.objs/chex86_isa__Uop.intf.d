lib/isa/uop.mli: Format Insn Reg
