lib/isa/decoder.ml: Insn List Reg Uop
