lib/isa/program.mli: Format Hashtbl Insn
