lib/isa/asm.ml: Array Hashtbl Insn List Printf Program Reg
