lib/isa/decoder.mli: Insn Uop
