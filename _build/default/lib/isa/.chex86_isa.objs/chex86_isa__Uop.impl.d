lib/isa/uop.ml: Format Insn List Reg
