(* In-processor capability cache (Section IV-B, Fig 7 top).

   A small fully associative LRU cache of capabilities currently in use,
   motivated by the observation that the number of allocations in use in
   any execution interval is orders of magnitude below the total
   allocation count (Fig 3).  Default 64 entries (1 KB); Fig 7 also
   evaluates 128.  Only PIDs are cached here — the capability payload is
   read from the table on a miss (charged as latency by the monitor). *)

type t = {
  pids : int array;
  stamps : int array;
  mutable clock : int;
  counters : Chex86_stats.Counter.group;
}

let create ?(entries = 64) counters =
  { pids = Array.make entries 0; stamps = Array.make entries 0; counters; clock = 0 }

let entries t = Array.length t.pids

(* [access t pid] returns true on hit; misses allocate (LRU). *)
let access t pid =
  t.clock <- t.clock + 1;
  let n = Array.length t.pids in
  let rec find i = if i >= n then None else if t.pids.(i) = pid then Some i else find (i + 1) in
  match find 0 with
  | Some i ->
    t.stamps.(i) <- t.clock;
    Chex86_stats.Counter.incr t.counters "capcache.hit";
    true
  | None ->
    Chex86_stats.Counter.incr t.counters "capcache.miss";
    let victim = ref 0 in
    for i = 1 to n - 1 do
      if t.stamps.(i) < t.stamps.(!victim) then victim := i
    done;
    t.pids.(!victim) <- pid;
    t.stamps.(!victim) <- t.clock;
    false

(* Invalidate on capability free — the paper's cross-core invalidation
   requests reduced to the single modelled core. *)
let invalidate t pid =
  Array.iteri (fun i p -> if p = pid then t.pids.(i) <- 0) t.pids

let miss_rate t =
  let h = Chex86_stats.Counter.get t.counters "capcache.hit"
  and m = Chex86_stats.Counter.get t.counters "capcache.miss" in
  if h + m = 0 then 0. else float_of_int m /. float_of_int (h + m)
