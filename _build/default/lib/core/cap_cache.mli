(** In-processor fully associative LRU capability cache (§IV-B, Fig 7);
    counts ["capcache.hit"/"capcache.miss"]. *)

type t

(** Default 64 entries (1 KB of 128-bit capabilities). *)
val create : ?entries:int -> Chex86_stats.Counter.group -> t

val entries : t -> int

(** True on hit; misses allocate the PID (LRU). *)
val access : t -> int -> bool

(** Drop a freed capability (the paper's invalidation requests). *)
val invalidate : t -> int -> unit

val miss_rate : t -> float
