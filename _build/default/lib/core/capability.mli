(** A CHEx86 capability: 128 bits of base, bounds and permissions in the
    shadow capability table (§IV-B). *)

type t = {
  pid : int;  (** non-zero unique capability identifier *)
  mutable base : int;
  mutable size : int;  (** bounds field, 32 bits *)
  mutable readable : bool;
  mutable writable : bool;
  mutable executable : bool;
  mutable busy : bool;  (** allocation/free in progress (two-step protocol) *)
  mutable valid : bool;  (** cleared on free: enables UAF detection *)
  mutable init_map : Bytes.t option;
      (** byte-granular initialized bitmap (opt-in uninitialized-read
          extension); [None] = not tracked *)
}

val max_size : int

(** A complete, valid capability (e.g. for a global data object). *)
val make :
  ?readable:bool ->
  ?writable:bool ->
  ?executable:bool ->
  pid:int ->
  base:int ->
  size:int ->
  unit ->
  t

(** capGen.Begin: bounds recorded, base unknown, busy set. *)
val fresh : pid:int -> size:int -> t

(** Is the [width]-byte access at [ea] within bounds? *)
val contains : t -> ea:int -> width:int -> bool

(** Allocate the initialized bitmap ([initialized] pre-marks every
    byte, e.g. for calloc). No-op above [max_tracked_init_size]. *)
val track_initialization : ?initialized:bool -> t -> unit

val mark_initialized : t -> ea:int -> width:int -> unit

(** True when every byte of the access was written before (or the
    capability is untracked). *)
val is_initialized : t -> ea:int -> width:int -> bool

val max_tracked_init_size : int

(** 128-bit encoding: (base word, size|perms word). *)
val encode : t -> int64 * int64

val decode : pid:int -> int64 * int64 -> t
val pp : Format.formatter -> t -> unit
