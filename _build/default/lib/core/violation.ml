(* Security violations detected by CHEx86 capability checks.

   These correspond one-to-one to the violation classes of the paper's
   security evaluation (Section VII-A): out-of-bounds accesses,
   use-after-free, invalid free, double free, wild dereferences flagged
   by the MOVI rule, and heap-spray / resource-exhaustion attempts
   caught at capability-generation time. *)

type kind =
  | Out_of_bounds of { pid : int; ea : int; base : int; size : int; is_store : bool }
  | Use_after_free of { pid : int; ea : int; is_store : bool }
  | Double_free of { pid : int; addr : int }
  | Invalid_free of { pid : int; addr : int }
  | Uninitialized_read of { pid : int; ea : int }
  | Wild_dereference of { ea : int; is_store : bool }
  | Permission_denied of { pid : int; ea : int; is_store : bool }
  | Resource_exhaustion of { requested : int; limit : int }

exception Security_violation of kind

let class_name = function
  | Out_of_bounds _ -> "out-of-bounds"
  | Use_after_free _ -> "use-after-free"
  | Double_free _ -> "double-free"
  | Invalid_free _ -> "invalid-free"
  | Uninitialized_read _ -> "uninitialized-read"
  | Wild_dereference _ -> "wild-dereference"
  | Permission_denied _ -> "permission-denied"
  | Resource_exhaustion _ -> "resource-exhaustion"

let pp ppf = function
  | Out_of_bounds { pid; ea; base; size; is_store } ->
    Format.fprintf ppf "out-of-bounds %s at %#x (PID %d: [%#x, %#x))"
      (if is_store then "write" else "read")
      ea pid base (base + size)
  | Use_after_free { pid; ea; is_store } ->
    Format.fprintf ppf "use-after-free %s at %#x (PID %d)"
      (if is_store then "write" else "read")
      ea pid
  | Double_free { pid; addr } -> Format.fprintf ppf "double free of %#x (PID %d)" addr pid
  | Invalid_free { pid; addr } ->
    Format.fprintf ppf "invalid free of %#x (PID %d)" addr pid
  | Uninitialized_read { pid; ea } ->
    Format.fprintf ppf "uninitialized read at %#x (PID %d)" ea pid
  | Wild_dereference { ea; is_store } ->
    Format.fprintf ppf "wild-pointer %s at %#x" (if is_store then "write" else "read") ea
  | Permission_denied { pid; ea; is_store } ->
    Format.fprintf ppf "permission-denied %s at %#x (PID %d)"
      (if is_store then "write" else "read")
      ea pid
  | Resource_exhaustion { requested; limit } ->
    Format.fprintf ppf "resource exhaustion: requested %d bytes (limit %d)" requested
      limit

let to_string kind = Format.asprintf "%a" pp kind
