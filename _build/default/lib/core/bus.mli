(** Inter-core invalidation bus (the paper's multithreaded capability-
    and alias-cache coherence, §IV-C / §V-C). *)

type event =
  | Cap_invalidate of int  (** PID freed on another core *)
  | Alias_invalidate of int  (** spilled-alias granule updated *)

type t

val create : Chex86_stats.Counter.group -> t
val subscribe : t -> core:int -> (event -> unit) -> unit
val cores : t -> int

(** Deliver to every core but the sender; returns remote caches
    notified. Counted as ["bus.cap_invalidations"] /
    ["bus.alias_invalidations"]. *)
val broadcast : t -> from_core:int -> event -> int
