(* Speculative pointer tracker register tags (Section V-D).

   Every tracked location (16 integer registers + 2 decoder temporaries)
   carries (1) the finalized PID propagated by the last committed
   instruction and (2) a vector of transient PIDs from in-flight older
   instructions with their sequence numbers.  Capability transfers use
   the transient PID with the highest sequence number; on a squash, all
   transient PIDs younger than the offending instruction are discarded;
   on commit, transient entries drain into the finalized field.

   The in-order engine drives this in lock-step (set, then commit), but
   the transient machinery is exercised directly by the misspeculation
   tests and by the monitor's alias-misprediction recovery. *)

open Chex86_isa

let slots = Reg.count + 2

type tag = { mutable committed : int; mutable transient : (int * int) list }
(* transient: (seq, pid), newest first *)

type t = { tags : tag array; mutable seq : int }

let create () =
  { tags = Array.init slots (fun _ -> { committed = 0; transient = [] }); seq = 0 }

let slot_of_loc = function
  | Uop.Greg r -> Some (Reg.index r)
  | Uop.Tmp i -> Some (Reg.count + i)
  | Uop.Xreg _ -> None  (* XMM registers never hold pointers *)

(* Fresh sequence number for the next tracked instruction. *)
let next_seq t =
  t.seq <- t.seq + 1;
  t.seq

(* Capability transfers use the youngest transient PID (the fetch stage
   runs ahead of the rest of the pipeline). *)
let current_pid t loc =
  match slot_of_loc loc with
  | None -> 0
  | Some slot -> (
    let tag = t.tags.(slot) in
    match tag.transient with (_, pid) :: _ -> pid | [] -> tag.committed)

let set_pid t loc ~seq ~pid =
  match slot_of_loc loc with
  | None -> ()
  | Some slot ->
    let tag = t.tags.(slot) in
    tag.transient <- (seq, pid) :: tag.transient

(* Commit every transient entry with sequence number <= [seq]: the newest
   such entry becomes the finalized PID. *)
let commit_upto t ~seq =
  Array.iter
    (fun tag ->
      let rec split kept = function
        | (s, pid) :: rest when s > seq -> split ((s, pid) :: kept) rest
        | older ->
          (match older with
          | (_, pid) :: _ -> tag.committed <- pid
          | [] -> ());
          tag.transient <- List.rev kept
      in
      split [] tag.transient)
    t.tags

(* Squash: discard transient PIDs younger than the offending instruction
   (Fig 2's "squash transient state within the pointer tracker"). *)
let squash_after t ~seq =
  Array.iter
    (fun tag -> tag.transient <- List.filter (fun (s, _) -> s <= seq) tag.transient)
    t.tags

(* Overwrite a location's finalized PID immediately (used by alias
   misprediction recovery to forward the corrected PID, Fig 5(e)). *)
let force_pid t loc pid =
  match slot_of_loc loc with
  | None -> ()
  | Some slot ->
    let tag = t.tags.(slot) in
    tag.committed <- pid;
    tag.transient <- []

let reset t =
  Array.iter
    (fun tag ->
      tag.committed <- 0;
      tag.transient <- [])
    t.tags;
  t.seq <- 0

let pp ppf t =
  Array.iteri
    (fun i tag ->
      let pid =
        match tag.transient with (_, pid) :: _ -> pid | [] -> tag.committed
      in
      if pid <> 0 then
        let name =
          if i < Reg.count then Reg.name (Reg.of_index i)
          else Printf.sprintf "t%d" (i - Reg.count)
        in
        Format.fprintf ppf "%s=PID(%d) " name pid)
    t.tags
