(* Temporal pointer access pattern classifier (Table II).

   Classifies a sequence of PIDs observed at one code region into the
   eight classes the paper identifies.  The decision procedure mirrors
   the table:

   - one distinct value                      -> Constant
   - unit run lengths, constant PID stride   -> Stride
   - batched runs, strided batch heads       -> Batch + Stride
   - batched runs, non-strided heads         -> Batch + No stride
   - periodic head sequence, strided period  -> Repeat + Stride
   - periodic head sequence, otherwise       -> Repeat + No stride
   - interleaved strided subsequences        -> Random + Stride
   - anything else                           -> Random + No stride *)

type t =
  | Constant
  | Stride
  | Batch_stride
  | Batch_no_stride
  | Repeat_stride
  | Repeat_no_stride
  | Random_stride
  | Random_no_stride

let name = function
  | Constant -> "Constant"
  | Stride -> "Stride"
  | Batch_stride -> "Batch + Stride"
  | Batch_no_stride -> "Batch + No Stride"
  | Repeat_stride -> "Repeat + Stride"
  | Repeat_no_stride -> "Repeat + No Stride"
  | Random_stride -> "Random + Stride"
  | Random_no_stride -> "Random + No Stride"

(* Run-length compress: [11;11;15;15] -> [(11,2);(15,2)]. *)
let runs seq =
  List.fold_left
    (fun acc v ->
      match acc with
      | (v', n) :: rest when v' = v -> (v', n + 1) :: rest
      | _ -> (v, 1) :: acc)
    [] seq
  |> List.rev

let all_equal = function [] -> true | x :: rest -> List.for_all (( = ) x) rest

let diffs = function
  | [] | [ _ ] -> []
  | first :: rest -> List.rev (fst (List.fold_left (fun (acc, prev) v -> ((v - prev) :: acc, v)) ([], first) rest))

(* Smallest period p such that the sequence is (a prefix of) a repetition
   of its first p elements; requires at least two full periods. *)
let period heads =
  let arr = Array.of_list heads in
  let n = Array.length arr in
  let rec try_p p =
    if p > n / 2 then None
    else begin
      let ok = ref true in
      for i = p to n - 1 do
        if arr.(i) <> arr.(i - p) then ok := false
      done;
      if !ok then Some p else try_p (p + 1)
    end
  in
  try_p 1

(* Interleaved-stride heuristic for the Random classes: the fraction of
   elements that continue a +/-1 stride from an occurrence within a small
   preceding window. *)
let interleaved_stride_fraction heads =
  let arr = Array.of_list heads in
  let n = Array.length arr in
  if n < 2 then 0.
  else begin
    let hits = ref 0 in
    for i = 1 to n - 1 do
      let lo = max 0 (i - 4) in
      let found = ref false in
      for j = lo to i - 1 do
        if arr.(i) = arr.(j) + 1 || arr.(i) = arr.(j) - 1 then found := true
      done;
      if !found then incr hits
    done;
    float_of_int !hits /. float_of_int (n - 1)
  end

let classify seq =
  match seq with
  | [] | [ _ ] -> Constant
  | _ ->
    let rs = runs seq in
    let heads = List.map fst rs in
    let lengths = List.map snd rs in
    if List.length heads = 1 then Constant
    else begin
      let batched = List.exists (fun n -> n > 1) lengths in
      let head_diffs = diffs heads in
      let strided = head_diffs <> [] && all_equal head_diffs in
      if batched then if strided then Batch_stride else Batch_no_stride
      else if strided then Stride
      else
        match period heads with
        | Some p ->
          let period_heads = List.filteri (fun i _ -> i < p) heads in
          let pd = diffs period_heads in
          if pd = [] || all_equal pd then Repeat_stride else Repeat_no_stride
        | None ->
          if interleaved_stride_fraction heads >= 0.6 then Random_stride
          else Random_no_stride
    end

(* Table II's own example rows, used by the bench target and as a
   self-check in the test suite. *)
let table_ii_examples =
  [
    ("Constant", "0", [ 31; 31; 31; 31; 31; 31; 31 ]);
    ("Stride", "3", [ 13; 16; 19; 22; 25; 28; 31 ]);
    ("Batch + Stride", "4", [ 11; 11; 11; 15; 15; 15; 15 ]);
    ("Batch + No Stride", "NA", [ 22; 22; 22; 13; 99; 99; 99 ]);
    ("Repeat + Stride", "1", [ 26; 27; 28; 26; 27; 28; 26 ]);
    ("Repeat + No Stride", "NA", [ 26; 57; 5; 26; 57; 5; 26 ]);
    ("Random + Stride", "NA", [ 26; 23; 29; 27; 24; 30; 28 ]);
    ("Random + No Stride", "NA", [ 26; 23; 29; 31; 29; 34; 40 ]);
  ]
