(** Temporal pointer access pattern classifier (Table II). *)

type t =
  | Constant
  | Stride
  | Batch_stride
  | Batch_no_stride
  | Repeat_stride
  | Repeat_no_stride
  | Random_stride
  | Random_no_stride

(** Table II's row label. *)
val name : t -> string

(** Classify a PID stream observed at a code region. *)
val classify : int list -> t

(** Table II's own example rows: (label, stride, PID sequence). *)
val table_ii_examples : (string * string * int list) list
