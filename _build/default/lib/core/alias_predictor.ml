(* Stride-based pointer-alias (pointer reload) predictor (Section V-C,
   Fig 4).

   Indexed by instruction address, not effective address: the insight of
   Section V-B is that the *temporal pattern of PIDs* accessed by a given
   load instruction is highly predictable even when its addresses are
   not.  Each entry holds the last observed PID, a PID stride, and a
   2-bit confidence ("bias") counter; a separate blacklist of 2-bit
   counters filters the vast majority of loads that reload data values
   rather than spilled pointers, preventing destructive aliasing. *)

type entry = {
  mutable tag : int;
  mutable last_pid : int;
  mutable stride : int;
  mutable conf : int;  (* 2-bit saturating *)
}

type t = {
  entries : entry array;
  blacklist : int array;  (* 2-bit saturating; saturated means "not a reload" *)
  use_stride : bool;  (* ablation: fall back to last-PID prediction *)
  use_blacklist : bool;  (* ablation: never filter *)
  counters : Chex86_stats.Counter.group;
}

let create ?(entries = 512) ?(blacklist_entries = 4096) ?(use_stride = true)
    ?(use_blacklist = true) counters =
  {
    entries = Array.init entries (fun _ -> { tag = -1; last_pid = 0; stride = 0; conf = 0 });
    blacklist = Array.make blacklist_entries 1;
    use_stride;
    use_blacklist;
    counters;
  }

let size t = Array.length t.entries

let index t pc = (pc lsr 2) mod Array.length t.entries
let tag_of pc = pc lsr 2
let bl_index t pc = (pc lsr 2) mod Array.length t.blacklist

let blacklisted t pc = t.use_blacklist && t.blacklist.(bl_index t pc) >= 3

(* Predicted PID for the load at [pc]; 0 = "not a pointer reload".

   A tag hit means the predictor knows this PC reloads pointers, so it
   always ventures a PID (wrong PIDs recover through the cheap PMAN
   forwarding path of Fig 5(e)); the expensive P0AN flush is reserved for
   reloads it did not anticipate at all.  Low confidence falls back to
   the last observed PID without the stride. *)
let predict t pc =
  if blacklisted t pc then 0
  else begin
    let e = t.entries.(index t pc) in
    if e.tag <> tag_of pc then 0
    else if t.use_stride && e.conf >= 2 then e.last_pid + e.stride
    else e.last_pid
  end

let clamp v = max 0 (min 3 v)

(* [alias_page] is the TLB's alias-hosting bit for the accessed page: only
   loads from pages with no spilled pointers at all train the blacklist
   (they are data-value loads); a zero PID from an alias-hosting page may
   simply be a NULL pointer or an overwritten slot and must not blacklist
   a genuine reload PC. *)
let update ?(alias_page = true) t pc ~actual =
  let bl = bl_index t pc in
  if actual = 0 then begin
    if not alias_page then t.blacklist.(bl) <- clamp (t.blacklist.(bl) + 1);
    let e = t.entries.(index t pc) in
    if e.tag = tag_of pc then e.conf <- clamp (e.conf - 1)
  end
  else begin
    (* A pointer outcome proves the PC is a reload: reset the blacklist
       counter so occasional NULL loads cannot blacklist it (asymmetric
       training). *)
    t.blacklist.(bl) <- 0;
    let e = t.entries.(index t pc) in
    if e.tag <> tag_of pc then begin
      e.tag <- tag_of pc;
      e.last_pid <- actual;
      e.stride <- 0;
      e.conf <- 1
    end
    else begin
      let predicted = e.last_pid + e.stride in
      if predicted = actual then e.conf <- clamp (e.conf + 1)
      else begin
        e.stride <- actual - e.last_pid;
        e.conf <- clamp (e.conf - 1)
      end;
      e.last_pid <- actual
    end
  end
