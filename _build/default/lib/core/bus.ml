(* Inter-core invalidation bus.

   The paper (Sections IV-C and V-C): "when a pointer is freed on one
   core, invalidate requests are sent to all other cores ... to ensure
   that the valid and busy bit of the capability entries ... are reset
   across all in-processor capability caches", and likewise "when a
   store instruction updates a spilled pointer alias on one core,
   invalidate requests are sent to all other cores ... so the
   in-processor alias caches are coherent.  Due to the unforgeability
   property of capabilities, these invalidation requests have to be sent
   only once at the time of freeing."

   Every per-core monitor subscribes; broadcasts deliver to every *other*
   core and are counted (the overheads the paper says it models). *)

type event =
  | Cap_invalidate of int  (* PID freed on another core *)
  | Alias_invalidate of int  (* spilled-alias granule address updated *)

type t = {
  mutable subscribers : (int * (event -> unit)) list;  (* (core id, handler) *)
  counters : Chex86_stats.Counter.group;
}

let create counters = { subscribers = []; counters }

let subscribe t ~core handler = t.subscribers <- (core, handler) :: t.subscribers

let cores t = List.length t.subscribers

(* Deliver [event] to every core other than the sender; returns the
   number of remote caches notified (bus occupancy for the timing
   model). *)
let broadcast t ~from_core event =
  let name =
    match event with
    | Cap_invalidate _ -> "bus.cap_invalidations"
    | Alias_invalidate _ -> "bus.alias_invalidations"
  in
  let delivered = ref 0 in
  List.iter
    (fun (core, handler) ->
      if core <> from_core then begin
        incr delivered;
        handler event
      end)
    t.subscribers;
  if !delivered > 0 then Chex86_stats.Counter.incr ~by:!delivered t.counters name;
  !delivered
