(* A CHEx86 capability (Section IV-B).

   128 bits in the shadow capability table: 64 bits of base address, 32
   bits of bounds (object size), and 32 bits of permissions including
   read, write, execute, busy and valid.  The busy bit marks an
   allocation/free in progress (the two-step capGen/capFree protocol);
   the valid bit cleared marks freed memory, which is how use-after-free
   is detected. *)

type t = {
  pid : int;
  mutable base : int;
  mutable size : int;  (* bounds field: 32 bits *)
  mutable readable : bool;
  mutable writable : bool;
  mutable executable : bool;
  mutable busy : bool;
  mutable valid : bool;
  (* Byte-granular initialized bitmap for the opt-in uninitialized-read
     extension; [None] = not tracked (treated as initialized).  Shadow
     state, not part of the 128-bit architectural encoding. *)
  mutable init_map : Bytes.t option;
}

let max_size = (1 lsl 32) - 1

(* Bitmaps are only worth allocating for reasonably sized objects. *)
let max_tracked_init_size = 1 lsl 24

let track_initialization ?(initialized = false) t =
  if t.size > 0 && t.size <= max_tracked_init_size then
    t.init_map <- Some (Bytes.make ((t.size + 7) / 8) (if initialized then '\xff' else '\000'))

let mark_initialized t ~ea ~width =
  match t.init_map with
  | None -> ()
  | Some map ->
    for i = 0 to width - 1 do
      let off = ea + i - t.base in
      if off >= 0 && off < t.size then
        Bytes.unsafe_set map (off lsr 3)
          (Char.unsafe_chr (Char.code (Bytes.unsafe_get map (off lsr 3)) lor (1 lsl (off land 7))))
    done

let is_initialized t ~ea ~width =
  match t.init_map with
  | None -> true
  | Some map ->
    let rec go i =
      i >= width
      ||
      let off = ea + i - t.base in
      (off < 0 || off >= t.size
      || Char.code (Bytes.unsafe_get map (off lsr 3)) land (1 lsl (off land 7)) <> 0)
      && go (i + 1)
    in
    go 0

let make ?(readable = true) ?(writable = true) ?(executable = false) ~pid ~base ~size ()
    =
  if size < 0 || size > max_size then invalid_arg "Capability.make: size out of range";
  { pid; base; size; readable; writable; executable; busy = false; valid = true;
    init_map = None }

(* Fresh capability at the start of capability generation: bounds are
   recorded from %rdi, base is unknown, busy is set. *)
let fresh ~pid ~size =
  {
    pid;
    base = 0;
    size;
    readable = true;
    writable = true;
    executable = false;
    busy = true;
    valid = false;
    init_map = None;
  }

let contains t ~ea ~width = ea >= t.base && ea + width <= t.base + t.size

(* 128-bit encoding: word0 = base; word1 = size (low 32) | perms (high 32). *)
let perm_bit shift b = if b then 1 lsl shift else 0

let encode t =
  let perms =
    perm_bit 0 t.readable
    lor perm_bit 1 t.writable
    lor perm_bit 2 t.executable
    lor perm_bit 3 t.busy
    lor perm_bit 4 t.valid
  in
  let word0 = Int64.of_int t.base in
  let word1 = Int64.logor (Int64.of_int (t.size land max_size))
      (Int64.shift_left (Int64.of_int perms) 32)
  in
  (word0, word1)

let decode ~pid (word0, word1) =
  let base = Int64.to_int word0 in
  let size = Int64.to_int (Int64.logand word1 0xFFFFFFFFL) in
  let perms = Int64.to_int (Int64.shift_right_logical word1 32) in
  {
    pid;
    base;
    size;
    readable = perms land 1 <> 0;
    writable = perms land 2 <> 0;
    executable = perms land 4 <> 0;
    busy = perms land 8 <> 0;
    valid = perms land 16 <> 0;
    init_map = None;
  }

let pp ppf t =
  Format.fprintf ppf "PID %d: [%#x, %#x) %s%s%s%s%s" t.pid t.base (t.base + t.size)
    (if t.readable then "r" else "-")
    (if t.writable then "w" else "-")
    (if t.executable then "x" else "-")
    (if t.busy then " busy" else "")
    (if t.valid then " valid" else " freed")
