(** Stride-based pointer-reload (alias) predictor (§V-C, Fig 4):
    PC-indexed entries of (last PID, PID stride, 2-bit confidence) plus a
    blacklist of non-reload PCs. *)

type t

(** Default 512 entries; Fig 8 evaluates 1024 and 2048. [use_stride] and
    [use_blacklist] are ablation switches (both on by default). *)
val create :
  ?entries:int ->
  ?blacklist_entries:int ->
  ?use_stride:bool ->
  ?use_blacklist:bool ->
  Chex86_stats.Counter.group ->
  t

val size : t -> int

(** Predicted PID for the load at [pc]; 0 = "not a pointer reload".
    A tag hit always ventures a PID — wrong PIDs recover via PMAN
    forwarding; the P0AN flush is reserved for unanticipated reloads. *)
val predict : t -> int -> int

(** Train with the actual PID from the shadow alias table.
    [alias_page] is the TLB's alias-hosting bit: only loads from pages
    with no spilled pointers train the blacklist (true data loads); a
    pointer outcome resets it (asymmetric training). *)
val update : ?alias_page:bool -> t -> int -> actual:int -> unit

val blacklisted : t -> int -> bool
