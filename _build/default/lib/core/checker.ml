(* Hardware checker co-processor for automatic rule construction
   (Section V-A).

   For every micro-op it sees, the checker exhaustively searches the
   shadow capability table to decide whether the micro-op's *result* is
   an address pointing into any tracked (allocated or freed) block, and
   compares that ground truth against the PID the rule-based tracker
   predicted.  A mismatch dumps the offending micro-op with its execution
   state and requests a rule-database update — the protocol by which
   Table I was constructed.  It runs only in offline profiling mode (the
   bench's table1 target and the test suite). *)

open Chex86_isa

type mismatch = {
  pc : int;
  uop : string;
  result : int;
  predicted_pid : int;
  actual_pid : int;
}

type t = {
  cap_table : Cap_table.t;
  mutable checked : int;
  mutable agreed : int;
  mutable mismatches : mismatch list;
  max_mismatches : int;
}

let create ?(max_mismatches = 64) cap_table =
  { cap_table; checked = 0; agreed = 0; mismatches = []; max_mismatches }

(* Ground-truth PID of a value: the tracked block it points into, if
   any.  The wild PID(-1) is ground truth for nothing. *)
let actual_pid t value =
  match Cap_table.find_by_address t.cap_table value with
  | Some cap -> cap.Capability.pid
  | None -> 0

(* [check t ~pc ~uop ~result ~predicted] validates one executed micro-op
   whose integer result is known. *)
let check t ~pc ~uop ~result ~predicted =
  t.checked <- t.checked + 1;
  let actual = actual_pid t result in
  (* The tracker may legitimately carry PID(-1) (wild) or a PID for a
     value that is no longer interior to the block (one-past-the-end
     pointers): agreement means "same block or both untracked". *)
  let agrees =
    actual = predicted
    || (predicted = -1 && actual = 0)
    || (predicted <> 0 && actual = 0)  (* stale/interior arithmetic *)
  in
  if agrees then t.agreed <- t.agreed + 1
  else if List.length t.mismatches < t.max_mismatches then
    t.mismatches <-
      {
        pc;
        uop = Format.asprintf "%a" Uop.pp uop;
        result;
        predicted_pid = predicted;
        actual_pid = actual;
      }
      :: t.mismatches

let checked t = t.checked
let agreement_rate t = if t.checked = 0 then 1. else float_of_int t.agreed /. float_of_int t.checked
let mismatches t = List.rev t.mismatches
