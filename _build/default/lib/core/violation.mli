(** Security violations detected by CHEx86 capability checks, matching
    the violation classes of the paper's security evaluation (§VII-A). *)

type kind =
  | Out_of_bounds of { pid : int; ea : int; base : int; size : int; is_store : bool }
  | Use_after_free of { pid : int; ea : int; is_store : bool }
  | Double_free of { pid : int; addr : int }
  | Invalid_free of { pid : int; addr : int }
  | Uninitialized_read of { pid : int; ea : int }
      (** read of never-written heap bytes (opt-in extension; the paper
          lists uninitialized reads among its target classes) *)
  | Wild_dereference of { ea : int; is_store : bool }
      (** constant-integer-address dereference flagged by the MOVI rule *)
  | Permission_denied of { pid : int; ea : int; is_store : bool }
  | Resource_exhaustion of { requested : int; limit : int }
      (** heap-spray / huge-allocation attempt caught at capGen *)

exception Security_violation of kind

(** Short class slug (["out-of-bounds"], ["use-after-free"], ...). *)
val class_name : kind -> string

val pp : Format.formatter -> kind -> unit
val to_string : kind -> string
