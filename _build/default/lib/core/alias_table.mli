(** 5-level hierarchical shadow alias table (§V-C): virtual-address
    granule (8 bytes) -> PID of the spilled pointer hosted there.
    Storage is accounted per allocated radix node, so shadow overhead
    scales with the number of references, not with memory size (Fig 9). *)

type t

val create : Chex86_stats.Counter.group -> t

(** Install/overwrite the PID for [addr]'s granule; 0 clears. *)
val set : t -> int -> int -> unit

(** [(pid, levels_walked)] — the walker latency is proportional to the
    second component. *)
val get : t -> int -> int * int

(** PID only. *)
val find : t -> int -> int

(** Allocated radix nodes x 4 KB. *)
val storage_bytes : t -> int

(** Live (non-zero) alias entries. *)
val entries : t -> int
