(** Hardware checker co-processor for automatic rule construction
    (§V-A): validates the tracker's PID predictions against exhaustive
    shadow-capability-table searches, dumping mismatches that call for a
    rule-database update. Offline-profiling use only. *)

type mismatch = {
  pc : int;
  uop : string;
  result : int;
  predicted_pid : int;
  actual_pid : int;
}

type t

val create : ?max_mismatches:int -> Cap_table.t -> t

(** Ground-truth PID of a value (the tracked block it points into). *)
val actual_pid : t -> int -> int

(** Validate one executed micro-op with a known integer result. *)
val check : t -> pc:int -> uop:Chex86_isa.Uop.t -> result:int -> predicted:int -> unit

val checked : t -> int
val agreement_rate : t -> float
val mismatches : t -> mismatch list
