(* The per-process shadow capability table (Section IV-B).

   Stores every capability granted to the process — live and freed —
   tagged by a non-zero unique identifier (PID).  It lives in a shadow
   address space only reachable by privileged (microcode-injected)
   micro-ops; here that is modelled as an OCaml growable array with
   storage accounted at 16 bytes per entry (the 128-bit capability).

   Freed capabilities are retained (valid bit cleared) so later
   dereferences through stale pointers are detected as use-after-free. *)

type t = {
  mutable entries : Capability.t option array;
  mutable next_pid : int;
  counters : Chex86_stats.Counter.group;
}

let create counters = { entries = Array.make 1024 None; next_pid = 1; counters }

let grow t needed =
  if needed >= Array.length t.entries then begin
    let bigger = Array.make (max (needed + 1) (2 * Array.length t.entries)) None in
    Array.blit t.entries 0 bigger 0 (Array.length t.entries);
    t.entries <- bigger
  end

let add t cap =
  let pid = cap.Capability.pid in
  grow t pid;
  t.entries.(pid) <- Some cap

(* Allocate a fresh PID and record a busy capability with the given
   bounds (capGen.Begin). *)
let fresh t ~size =
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  let cap = Capability.fresh ~pid ~size in
  add t cap;
  Chex86_stats.Counter.incr t.counters "captable.generated";
  cap

(* Register a pre-formed capability, e.g. for a global data object from
   the symbol table; [writable:false] for .rodata objects. *)
let register ?(writable = true) t ~base ~size =
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  let cap = Capability.make ~writable ~pid ~base ~size () in
  add t cap;
  cap

let find t pid =
  if pid <= 0 || pid >= Array.length t.entries then None else t.entries.(pid)

(* capGen.End: record the base from %rax, clear busy, validate iff the
   base is non-zero. *)
let finalize t pid ~base =
  match find t pid with
  | None -> ()
  | Some cap ->
    cap.Capability.base <- base;
    cap.Capability.busy <- false;
    cap.Capability.valid <- base <> 0

let begin_free t pid =
  match find t pid with
  | None -> ()
  | Some cap -> cap.Capability.busy <- true

let end_free t pid =
  match find t pid with
  | None -> ()
  | Some cap ->
    cap.Capability.busy <- false;
    cap.Capability.valid <- false;
    Chex86_stats.Counter.incr t.counters "captable.freed"

let count t = t.next_pid - 1

(* Shadow storage: 16 bytes per 128-bit capability entry. *)
let storage_bytes t = 16 * count t

let iter t f =
  Array.iter (function Some cap -> f cap | None -> ()) t.entries

(* Exhaustive search used by the hardware checker (Section V-A): does
   [addr] point into any tracked block?  Valid (live) capabilities take
   precedence over freed ones; among freed ones the youngest wins. *)
let find_by_address t addr =
  let best = ref None in
  iter t (fun cap ->
      if
        (not cap.Capability.busy)
        && addr >= cap.Capability.base
        && cap.Capability.base <> 0
        && addr < cap.Capability.base + cap.Capability.size
      then
        match !best with
        | Some prev
          when prev.Capability.valid && not cap.Capability.valid -> ()
        | Some prev
          when prev.Capability.valid = cap.Capability.valid
               && prev.Capability.pid > cap.Capability.pid -> ()
        | _ -> best := Some cap);
  !best
