(** The per-process shadow capability table (§IV-B): every capability
    ever granted, live and freed, tagged by PID. Freed capabilities are
    retained with the valid bit cleared. *)

type t

val create : Chex86_stats.Counter.group -> t

(** capGen.Begin: allocate a fresh PID with the given bounds, busy set. *)
val fresh : t -> size:int -> Capability.t

(** Register a pre-formed capability (global data object);
    [writable:false] for .rodata. *)
val register : ?writable:bool -> t -> base:int -> size:int -> Capability.t

val find : t -> int -> Capability.t option

(** capGen.End: record the base; valid iff it is non-zero. *)
val finalize : t -> int -> base:int -> unit

val begin_free : t -> int -> unit
val end_free : t -> int -> unit

(** Capabilities ever created. *)
val count : t -> int

(** Shadow storage at 16 bytes per entry. *)
val storage_bytes : t -> int

val iter : t -> (Capability.t -> unit) -> unit

(** Exhaustive search (the hardware checker's ground truth): the tracked
    block containing [addr]; live capabilities win over freed ones. *)
val find_by_address : t -> int -> Capability.t option
