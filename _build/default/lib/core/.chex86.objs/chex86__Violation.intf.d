lib/core/violation.mli: Format
