lib/core/tracker.mli: Chex86_isa Format
