lib/core/smp.mli: Chex86_isa Chex86_machine Chex86_stats Variant Violation
