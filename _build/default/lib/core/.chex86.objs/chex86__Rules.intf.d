lib/core/rules.mli: Chex86_isa
