lib/core/cap_table.ml: Array Capability Chex86_stats
