lib/core/rules.ml: Chex86_isa Insn List Uop
