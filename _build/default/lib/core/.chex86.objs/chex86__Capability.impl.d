lib/core/capability.ml: Bytes Char Format Int64
