lib/core/checker.ml: Cap_table Capability Chex86_isa Format List Uop
