lib/core/alias_table.mli: Chex86_stats
