lib/core/smp.ml: Chex86_isa Chex86_machine Chex86_mem Chex86_os Chex86_stats List Monitor Variant Violation
