lib/core/alias_predictor.mli: Chex86_stats
