lib/core/sim.ml: Checker Chex86_machine Chex86_os Monitor Variant Violation
