lib/core/checker.mli: Cap_table Chex86_isa
