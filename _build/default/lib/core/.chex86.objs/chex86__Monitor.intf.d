lib/core/monitor.mli: Alias_predictor Alias_table Cap_table Checker Chex86_isa Chex86_machine Chex86_mem Chex86_os Chex86_stats Rules Tracker Variant
