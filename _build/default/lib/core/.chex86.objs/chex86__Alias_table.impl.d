lib/core/alias_table.ml: Array Chex86_stats
