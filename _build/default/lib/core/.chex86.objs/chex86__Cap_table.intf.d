lib/core/cap_table.mli: Capability Chex86_stats
