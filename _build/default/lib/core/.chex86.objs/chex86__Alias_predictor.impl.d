lib/core/alias_predictor.ml: Array Chex86_stats
