lib/core/variant.mli:
