lib/core/capability.mli: Bytes Format
