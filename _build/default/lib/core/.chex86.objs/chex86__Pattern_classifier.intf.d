lib/core/pattern_classifier.mli:
