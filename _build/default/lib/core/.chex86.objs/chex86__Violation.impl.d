lib/core/violation.ml: Format
