lib/core/cap_cache.mli: Chex86_stats
