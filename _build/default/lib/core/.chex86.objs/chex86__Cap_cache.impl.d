lib/core/cap_cache.ml: Array Chex86_stats
