lib/core/pattern_classifier.ml: Array List
