lib/core/variant.ml: List
