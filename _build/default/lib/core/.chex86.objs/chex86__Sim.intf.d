lib/core/sim.mli: Chex86_isa Chex86_machine Chex86_os Monitor Variant Violation
