lib/core/bus.ml: Chex86_stats List
