lib/core/bus.mli: Chex86_stats
