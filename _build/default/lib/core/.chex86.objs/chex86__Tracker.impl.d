lib/core/tracker.ml: Array Chex86_isa Format List Printf Reg Uop
