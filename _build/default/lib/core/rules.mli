(** The pointer-tracking rule database of Table I: configurable data
    mapping (micro-op class, addressing mode) to a PID-propagation
    action, extensible at run time (in-field microcode updates). *)

type uop_class = MOV | AND | LEA | ADD | SUB | LD | ST | MOVI | OTHER
type addr_mode = Reg_reg | Reg_imm | Reg_mem

type action =
  | Copy_src  (** PID(dst) <- PID(src) *)
  | Nonzero_of_sources  (** the AND/ADD rule *)
  | Copy_first  (** SUB: the minuend's PID *)
  | From_memory  (** LD: PID(dst) <- PID(Mem[EA]) via the alias predictor *)
  | To_memory  (** ST: PID(Mem[EA]) <- PID(src) *)
  | Wild  (** MOVI: PID(-1) *)
  | Clear  (** all other operations *)

type rule = {
  uop : uop_class;
  mode : addr_mode;
  action : action;
  example : string;
  propagation : string;
  code_example : string;
}

type t

(** The automatically constructed database of Table I. *)
val table_i : rule list

val create : ?rules:rule list -> unit -> t

(** Extend the database (modelled microcode update). *)
val add_rule : t -> rule -> unit

val rules : t -> rule list

(** Key of a micro-op in the database, [None] for non-tracking micro-ops. *)
val classify : Chex86_isa.Uop.t -> (uop_class * addr_mode) option

(** Propagation action under the current database; unmatched -> [Clear]. *)
val action_for : t -> Chex86_isa.Uop.t -> action

(** Combine source PIDs under [Nonzero_of_sources]; a real PID beats the
    wild PID(-1). *)
val combine_nonzero : int -> int -> int

val class_name : uop_class -> string
val mode_name : addr_mode -> string

(** Rows for the Table I bench target. *)
val render_rows : t -> string list list
