(** Registry of all benchmark workloads. *)

val spec : Bench_spec.t list
val parsec : Bench_spec.t list
val all : Bench_spec.t list

(** Raises [Invalid_argument] for unknown names. *)
val find : string -> Bench_spec.t

val names : string list
