(** Shared program-fragment generators for the synthetic benchmarks.
    Register conventions are documented in the implementation header. *)

open Chex86_isa

(** table[i] = malloc(size) for i < count, as a guest loop. Clobbers r8. *)
val alloc_into_table : Asm.t -> table:int -> count:int -> size:int -> unit

(** free(table[i]) for i < count, as a guest loop. Clobbers r8. *)
val free_table : Asm.t -> table:int -> count:int -> unit

(** Read-modify-write [words] words of *[ptr] with the given stride.
    Clobbers r10. *)
val touch_buffer : Asm.t -> ptr:Reg.t -> words:int -> stride:int -> unit

(** In-register LCG step: dst <- next(state). *)
val lcg_next : Asm.t -> state:Reg.t -> dst:Reg.t -> unit

(** dst <- table[random mod count]; count must be a power of two.
    Clobbers r11. *)
val random_pointer : Asm.t -> table:int -> count:int -> state:Reg.t -> dst:Reg.t -> unit

(** Build an [n]-node singly linked list (next at +0); head left in
    [head] and spilled to [head_slot]. Clobbers rcx, r10. *)
val build_list : Asm.t -> n:int -> node_size:int -> head:Reg.t -> head_slot:int -> unit

(** Walk the list from [head], updating two payload fields per node
    (the paper's Listing 1 chase). Clobbers rbx, r10. *)
val chase_list : Asm.t -> head:Reg.t -> unit

(** FP stencil over *[ptr]; xmm2/xmm3 must hold constants
    ([fp_constants]). Clobbers r10, xmm0-1. *)
val fp_stream : Asm.t -> ptr:Reg.t -> words:int -> unit

val fp_constants : Asm.t -> unit

(** Wrap [body] in pushes/pops of r12/r13 (stack pointer spills). *)
val with_spills : Asm.t -> (unit -> unit) -> unit

val table_slot : int -> int -> Insn.mem
