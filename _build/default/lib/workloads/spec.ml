(* Synthetic stand-ins for the C/C++ SPEC CPU2017 benchmarks the paper
   evaluates (perlbench, gcc, mcf, xalancbmk, deepsjeng, leela, lbm,
   nab).  Each is calibrated to the pointer/allocation behaviour the
   paper reports: mcf and xalancbmk are the pointer-intensive outliers of
   Fig 6, perlbench exhibits the most Batch+Stride temporal patterns
   (Table II), lbm is FP streaming with almost no pointer activity, and
   xalancbmk makes by far the most allocations (Fig 3). *)

open Chex86_isa
open Insn

(* mcf: network-simplex flavour — a table of long-lived node objects
   walked in a data-dependent pseudo-random order.  Every iteration
   reloads a node pointer from the table (random temporal PID pattern,
   hostile to the alias predictor) and read-modify-writes three fields. *)
let mcf ~scale =
  let b = Asm.create () in
  let nodes = 1024 in
  let table = Asm.global b "node_table" (8 * nodes) in
  (* potential = potential + cost; flow ^= orientation *)
  let update_node () =
    Asm.emit b (Mov (W64, Reg RAX, Mem (mem ~base:RBX ~disp:8 ())));
    Asm.emit b (Alu (Add, Reg RAX, Mem (mem ~base:RBX ~disp:16 ())));
    Asm.emit b (Mov (W64, Mem (mem ~base:RBX ~disp:8 ()), Reg RAX));
    Asm.emit b (Alu (Xor, Mem (mem ~base:RBX ~disp:24 ()), Reg RAX))
  in
  Asm.label b "_start";
  Kernels.alloc_into_table b ~table ~count:nodes ~size:64;
  Asm.emit b (Mov (W64, Reg R9, Imm 0x9e3779b9));
  Asm.loop_n b ~counter:R15 ~n:(scale * 12) (fun () ->
      (* pricing sweep: arcs scanned in allocation order (strided,
         predictable reloads)... *)
      Asm.emit b (Mov (W64, Reg R12, Imm 0));
      let sweep = Asm.fresh b "sweep" in
      Asm.label b sweep;
      Asm.emit b (Mov (W64, Reg RBX, Mem (mem ~index:R12 ~scale:8 ~disp:table ())));
      update_node ();
      Asm.emit b (Inc (Reg R12));
      Asm.emit b (Cmp (Reg R12, Imm (nodes / 2)));
      Asm.emit b (Jcc (Lt, sweep));
      (* ...followed by data-dependent pivot chasing (random reloads). *)
      Asm.loop_n b ~counter:RCX ~n:128 (fun () ->
          Kernels.random_pointer b ~table ~count:nodes ~state:R9 ~dst:RBX;
          update_node ()));
  Kernels.free_table b ~table ~count:nodes;
  Asm.emit b Halt;
  Asm.build b

(* xalancbmk: DOM-like churn — repeatedly build a small tree of nodes,
   walk it, and free it.  The heaviest allocator traffic of the suite
   and intense pointer reloading while walking. *)
let xalancbmk ~scale =
  let b = Asm.create () in
  let degree = 64 in
  let kids = Asm.global b "children" (8 * degree) in
  Asm.label b "_start";
  Asm.loop_n b ~counter:R15 ~n:(scale * 220) (fun () ->
      (* build: children[i] = malloc(48), child->len = i *)
      Asm.emit b (Mov (W64, Reg R14, Imm 0));
      let build = Asm.fresh b "build" in
      Asm.label b build;
      Asm.call_malloc b 48;
      Asm.emit b (Mov (W64, Mem (mem ~index:R14 ~scale:8 ~disp:kids ()), Reg RAX));
      Asm.emit b (Mov (W64, Mem (mem ~base:RAX ~disp:8 ()), Reg R14));
      Asm.emit b (Inc (Reg R14));
      Asm.emit b (Cmp (Reg R14, Imm degree));
      Asm.emit b (Jcc (Lt, build));
      (* walk: sum child->len, touch payloads *)
      Asm.emit b (Mov (W64, Reg R14, Imm 0));
      Asm.emit b (Mov (W64, Reg R13, Imm 0));
      let walk = Asm.fresh b "walk" in
      Asm.label b walk;
      Asm.emit b (Mov (W64, Reg RBX, Mem (mem ~index:R14 ~scale:8 ~disp:kids ())));
      Asm.emit b (Alu (Add, Reg R13, Mem (mem ~base:RBX ~disp:8 ())));
      Asm.emit b (Inc (Mem (mem ~base:RBX ~disp:16 ())));
      Asm.emit b (Alu (Xor, Mem (mem ~base:RBX ~disp:24 ()), Reg R13));
      Asm.emit b (Inc (Reg R14));
      Asm.emit b (Cmp (Reg R14, Imm degree));
      Asm.emit b (Jcc (Lt, walk));
      (* teardown *)
      Asm.emit b (Mov (W64, Reg R14, Imm 0));
      let teardown = Asm.fresh b "teardown" in
      Asm.label b teardown;
      Asm.emit b (Mov (W64, Reg RDI, Mem (mem ~index:R14 ~scale:8 ~disp:kids ())));
      Asm.call_extern b "free";
      Asm.emit b (Inc (Reg R14));
      Asm.emit b (Cmp (Reg R14, Imm degree));
      Asm.emit b (Jcc (Lt, teardown)));
  Asm.emit b Halt;
  Asm.build b

(* perlbench: hash-table interpreter flavour — buckets of chained small
   allocations, processed bucket after bucket (the Batch + Stride
   pattern of Table II), with periodic insert/delete churn. *)
let perlbench ~scale =
  let b = Asm.create () in
  let buckets = 32 in
  let table = Asm.global b "hash_buckets" (8 * buckets) in
  Asm.label b "_start";
  (* seed each bucket with an 8-node chain *)
  for i = 0 to buckets - 1 do
    Kernels.build_list b ~n:8 ~node_size:32 ~head:RBX
      ~head_slot:(table + (8 * i))
  done;
  Asm.loop_n b ~counter:R15 ~n:(scale * 500) (fun () ->
      (* batch: chase each bucket in order *)
      Asm.emit b (Mov (W64, Reg R14, Imm 0));
      let bucket = Asm.fresh b "bucket" in
      Asm.label b bucket;
      Asm.emit b (Mov (W64, Reg RBX, Mem (mem ~index:R14 ~scale:8 ~disp:table ())));
      Kernels.chase_list b ~head:RBX;
      (* second pass over the same bucket: the batch reuse of Table II *)
      Asm.emit b (Mov (W64, Reg RBX, Mem (mem ~index:R14 ~scale:8 ~disp:table ())));
      Kernels.chase_list b ~head:RBX;
      Asm.emit b (Inc (Reg R14));
      Asm.emit b (Cmp (Reg R14, Imm buckets));
      Asm.emit b (Jcc (Lt, bucket));
      (* churn: prepend a node to bucket 0, drop the head of bucket 1 *)
      Asm.call_malloc b 32;
      Asm.emit b (Mov (W64, Reg R10, Mem (mem_abs table)));
      Asm.emit b (Mov (W64, Mem (mem_of_reg RAX), Reg R10));
      Asm.emit b (Mov (W64, Mem (mem_abs table), Reg RAX));
      Asm.emit b (Mov (W64, Reg RBX, Mem (mem_abs (table + 8))));
      Asm.emit b (Test (Reg RBX, Reg RBX));
      let skip = Asm.fresh b "skip" in
      Asm.emit b (Jcc (Eq, skip));
      Asm.emit b (Mov (W64, Reg R10, Mem (mem_of_reg RBX)));
      Asm.emit b (Mov (W64, Mem (mem_abs (table + 8)), Reg R10));
      Asm.call_free b RBX;
      Asm.label b skip);
  Asm.emit b Halt;
  Asm.build b

(* gcc: AST flavour — build a binary tree bottom-up into a worklist
   table, then repeatedly fold over it with call-heavy traversal. *)
let gcc ~scale =
  let b = Asm.create () in
  let leaves = 256 in
  let work = Asm.global b "worklist" (8 * 2 * leaves) in
  Asm.label b "_start";
  Asm.emit b (Jmp "main");
  (* fold(node in rbx): rax += node->val; recurse via explicit spill *)
  Asm.label b "fold";
  Asm.emit b (Test (Reg RBX, Reg RBX));
  Asm.emit b (Jcc (Eq, "fold_out"));
  Asm.emit b (Alu (Add, Reg R13, Mem (mem ~base:RBX ~disp:16 ())));
  (* per-node "analysis" work: hash/fold the accumulated value *)
  Asm.emit b (Mov (W64, Reg R10, Reg R13));
  Asm.emit b (Alu (Imul, Reg R10, Imm 0x9E3779B9));
  Asm.emit b (Mov (W64, Reg R11, Reg R10));
  Asm.emit b (Alu (Shr, Reg R11, Imm 13));
  Asm.emit b (Alu (Xor, Reg R10, Reg R11));
  Asm.emit b (Alu (Imul, Reg R10, Imm 0xC2B2AE35));
  Asm.emit b (Mov (W64, Reg R11, Reg R10));
  Asm.emit b (Alu (Shr, Reg R11, Imm 16));
  Asm.emit b (Alu (Xor, Reg R10, Reg R11));
  Asm.emit b (Alu (And, Reg R10, Imm 0xFFFF));
  Asm.emit b (Alu (Add, Reg R13, Reg R10));
  Asm.emit b (Push (Reg RBX));
  Asm.emit b (Mov (W64, Reg RBX, Mem (mem_of_reg RBX)));  (* left *)
  Asm.emit b (Call (Label "fold"));
  Asm.emit b (Pop RBX);
  Asm.emit b (Mov (W64, Reg RBX, Mem (mem ~base:RBX ~disp:8 ())));  (* right *)
  Asm.emit b (Call (Label "fold"));
  Asm.label b "fold_out";
  Asm.emit b Ret;
  Asm.label b "main";
  (* leaves *)
  for i = 0 to leaves - 1 do
    Asm.call_malloc b 32;
    Asm.emit b (Mov (W64, Mem (mem_abs (work + (8 * i))), Reg RAX));
    Asm.emit b (Mov (W64, Mem (mem ~base:RAX ~disp:16 ()), Imm (i * 3)))
  done;
  (* internal nodes pair up worklist entries *)
  let rec levels lo count =
    if count > 1 then begin
      let next = lo + count in
      for i = 0 to (count / 2) - 1 do
        Asm.call_malloc b 32;
        Asm.emit b (Mov (W64, Reg R10, Mem (mem_abs (work + (8 * (lo + (2 * i)))))));
        Asm.emit b (Mov (W64, Mem (mem_of_reg RAX), Reg R10));
        Asm.emit b (Mov (W64, Reg R10, Mem (mem_abs (work + (8 * (lo + (2 * i) + 1))))));
        Asm.emit b (Mov (W64, Mem (mem ~base:RAX ~disp:8 ()), Reg R10));
        Asm.emit b (Mov (W64, Mem (mem ~base:RAX ~disp:16 ()), Imm 1));
        Asm.emit b (Mov (W64, Mem (mem_abs (work + (8 * (next + i)))), Reg RAX))
      done;
      levels next (count / 2)
    end
    else lo
  in
  let root_slot = levels 0 leaves in
  Asm.loop_n b ~counter:R15 ~n:(scale * 120) (fun () ->
      Asm.emit b (Mov (W64, Reg R13, Imm 0));
      Asm.emit b (Mov (W64, Reg RBX, Mem (mem_abs (work + (8 * root_slot)))));
      Asm.emit b (Call (Label "fold")));
  Asm.emit b Halt;
  Asm.build b

(* deepsjeng: transposition-table flavour — one big calloc'd table
   probed with hashed indices; heavy integer ALU, few pointer reloads. *)
let deepsjeng ~scale =
  let b = Asm.create () in
  let tt_slot = Asm.global b "tt_ptr" 8 in
  Asm.label b "_start";
  let entries = 8192 in
  Asm.emit b (Mov (W64, Reg RDI, Imm entries));
  Asm.emit b (Mov (W64, Reg RSI, Imm 16));
  Asm.call_extern b "calloc";
  Asm.emit b (Mov (W64, Mem (mem_abs tt_slot), Reg RAX));
  Asm.emit b (Mov (W64, Reg R12, Reg RAX));
  Asm.emit b (Mov (W64, Reg R9, Imm 0x517cc1b7));
  Asm.loop_n b ~counter:R15 ~n:(scale * 20_000) (fun () ->
      (* zobrist-ish hash mix *)
      Kernels.lcg_next b ~state:R9 ~dst:R10;
      Asm.emit b (Mov (W64, Reg R11, Reg R10));
      Asm.emit b (Alu (Shr, Reg R11, Imm 7));
      Asm.emit b (Alu (Xor, Reg R10, Reg R11));
      Asm.emit b (Alu (And, Reg R10, Imm (entries - 1)));
      Asm.emit b (Alu (Shl, Reg R10, Imm 4));
      (* probe + update *)
      Asm.emit b (Mov (W64, Reg RAX, Mem (mem ~base:R12 ~index:R10 ())));
      Asm.emit b (Alu (Add, Reg RAX, Imm 1));
      Asm.emit b (Mov (W64, Mem (mem ~base:R12 ~index:R10 ()), Reg RAX));
      Asm.emit b (Mov (W64, Mem (mem ~base:R12 ~index:R10 ~disp:8 ()), Reg R15));
      (* occasional move-list scratch allocation *)
      Asm.emit b (Test (Reg R15, Imm 255));
      let skip = Asm.fresh b "skip_alloc" in
      Asm.emit b (Jcc (Ne, skip));
      Asm.call_malloc b 96;
      Asm.emit b (Mov (W64, Reg R13, Reg RAX));
      Kernels.touch_buffer b ~ptr:R13 ~words:12 ~stride:1;
      Asm.call_free b R13;
      Asm.label b skip);
  Asm.emit b (Mov (W64, Reg RDI, Reg R12));
  Asm.call_extern b "free";
  Asm.emit b Halt;
  Asm.build b

(* leela: MCTS flavour — grow a tree of nodes in a table, repeatedly
   descend through child pointers (pointer-intensive UCT descent), with
   subtree recycling. *)
let leela ~scale =
  let b = Asm.create () in
  let slots = 512 in
  let tree = Asm.global b "tree_nodes" (8 * slots) in
  Asm.label b "_start";
  Kernels.alloc_into_table b ~table:tree ~count:slots ~size:56;
  (* link: node[i].child = node[(2i+1) mod slots]; .sibling = node[(i+7) mod slots] *)
  for i = 0 to slots - 1 do
    Asm.emit b (Mov (W64, Reg RBX, Mem (mem_abs (tree + (8 * i)))));
    Asm.emit b (Mov (W64, Reg R10, Mem (mem_abs (tree + (8 * (((2 * i) + 1) mod slots))))));
    Asm.emit b (Mov (W64, Mem (mem_of_reg RBX), Reg R10));
    Asm.emit b (Mov (W64, Reg R10, Mem (mem_abs (tree + (8 * ((i + 7) mod slots))))));
    Asm.emit b (Mov (W64, Mem (mem ~base:RBX ~disp:8 ()), Reg R10))
  done;
  Asm.emit b (Mov (W64, Reg R9, Imm 0xabcdef));
  Asm.loop_n b ~counter:R15 ~n:(scale * 2_500) (fun () ->
      (* descend 12 plies: alternate child/sibling based on visit count *)
      Asm.emit b (Mov (W64, Reg RBX, Mem (mem_abs tree)));
      for _ply = 1 to 12 do
        Asm.emit b (Inc (Mem (mem ~base:RBX ~disp:16 ())));
        Asm.emit b (Mov (W64, Reg RAX, Mem (mem ~base:RBX ~disp:16 ())));
        (* UCT score: exploration term from visits and reward *)
        Asm.emit b (Mov (W64, Reg R10, Mem (mem ~base:RBX ~disp:24 ())));
        Asm.emit b (Alu (Shl, Reg R10, Imm 10));
        Asm.emit b (Cvtsi2sd (0, R10));
        Asm.emit b (Mov (W64, Reg R11, Reg RAX));
        Asm.emit b (Alu (Add, Reg R11, Imm 1));
        Asm.emit b (Cvtsi2sd (1, R11));
        Asm.emit b (Fp (Fdiv, 0, 1));
        Asm.emit b (Fp (Fsqrt, 0, 0));
        Asm.emit b (Cvtsd2si (R10, 0));
        Asm.emit b (Alu (Add, Reg RAX, Reg R10));
        Asm.emit b (Test (Reg RAX, Imm 1));
        let sib = Asm.fresh b "sib" and next = Asm.fresh b "next" in
        Asm.emit b (Jcc (Ne, sib));
        Asm.emit b (Mov (W64, Reg RBX, Mem (mem_of_reg RBX)));
        Asm.emit b (Jmp next);
        Asm.label b sib;
        Asm.emit b (Mov (W64, Reg RBX, Mem (mem ~base:RBX ~disp:8 ())));
        Asm.label b next
      done;
      (* backprop: bump reward *)
      Asm.emit b (Inc (Mem (mem ~base:RBX ~disp:24 ()))));
  Kernels.free_table b ~table:tree ~count:slots;
  Asm.emit b Halt;
  Asm.build b

(* lbm: lattice-Boltzmann flavour — two big FP grids, streaming stencil
   sweeps; almost no pointer activity (near-native CHEx86 performance in
   Fig 6). *)
let lbm ~scale =
  let b = Asm.create () in
  let grid_slot = Asm.global b "grids" 16 in
  Asm.label b "_start";
  let words = 16384 in
  Asm.call_malloc b (8 * words);
  Asm.emit b (Mov (W64, Mem (mem_abs grid_slot), Reg RAX));
  Asm.emit b (Mov (W64, Reg R12, Reg RAX));
  Asm.call_malloc b (8 * words);
  Asm.emit b (Mov (W64, Mem (mem_abs (grid_slot + 8)), Reg RAX));
  Asm.emit b (Mov (W64, Reg R13, Reg RAX));
  Kernels.fp_constants b;
  Asm.loop_n b ~counter:R15 ~n:(scale * 3) (fun () ->
      Kernels.fp_stream b ~ptr:R12 ~words;
      Kernels.fp_stream b ~ptr:R13 ~words);
  Asm.emit b (Mov (W64, Reg RDI, Reg R12));
  Asm.call_extern b "free";
  Asm.emit b (Mov (W64, Reg RDI, Reg R13));
  Asm.call_extern b "free";
  Asm.emit b Halt;
  Asm.build b

(* nab: molecular-dynamics flavour — arrays of atom structs, FP force
   accumulation with some neighbour-pointer dereferencing. *)
let nab ~scale =
  let b = Asm.create () in
  let atoms = 256 in
  let table = Asm.global b "atoms" (8 * atoms) in
  Asm.label b "_start";
  Kernels.alloc_into_table b ~table ~count:atoms ~size:64;
  Kernels.fp_constants b;
  Asm.loop_n b ~counter:R15 ~n:(scale * 400) (fun () ->
      Asm.emit b (Mov (W64, Reg R14, Imm 0));
      let atom = Asm.fresh b "atom" in
      Asm.label b atom;
      Asm.emit b (Mov (W64, Reg RBX, Mem (mem ~index:R14 ~scale:8 ~disp:table ())));
      (* force += pos * c0 / c1, three coordinates *)
      for c = 0 to 2 do
        Asm.emit b (Movsd_load (0, mem ~base:RBX ~disp:(8 * c) ()));
        Asm.emit b (Fp (Fmul, 0, 2));
        Asm.emit b (Fp (Fdiv, 0, 3));
        Asm.emit b (Movsd_store (mem ~base:RBX ~disp:(24 + (8 * c)) (), 0))
      done;
      Asm.emit b (Inc (Reg R14));
      Asm.emit b (Cmp (Reg R14, Imm atoms));
      Asm.emit b (Jcc (Lt, atom)));
  Kernels.free_table b ~table ~count:atoms;
  Asm.emit b Halt;
  Asm.build b

let all : Bench_spec.t list =
  [
    {
      name = "perlbench";
      suite = Bench_spec.Spec;
      description = "hash buckets of chained allocations, batch+stride reloads";
      build = perlbench;
    };
    {
      name = "gcc";
      suite = Bench_spec.Spec;
      description = "AST build + recursive folds with stack pointer spills";
      build = gcc;
    };
    {
      name = "mcf";
      suite = Bench_spec.Spec;
      description = "random pointer reloads over long-lived node table";
      build = mcf;
    };
    {
      name = "xalancbmk";
      suite = Bench_spec.Spec;
      description = "DOM-like allocate/walk/free churn";
      build = xalancbmk;
    };
    {
      name = "deepsjeng";
      suite = Bench_spec.Spec;
      description = "transposition-table probes, ALU heavy";
      build = deepsjeng;
    };
    {
      name = "leela";
      suite = Bench_spec.Spec;
      description = "MCTS descent through child/sibling pointers";
      build = leela;
    };
    {
      name = "lbm";
      suite = Bench_spec.Spec;
      description = "FP streaming stencil over two grids";
      build = lbm;
    };
    {
      name = "nab";
      suite = Bench_spec.Spec;
      description = "FP force accumulation over atom structs";
      build = nab;
    };
  ]
