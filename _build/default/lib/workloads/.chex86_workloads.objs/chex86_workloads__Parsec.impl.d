lib/workloads/parsec.ml: Asm Bench_spec Chex86_isa Insn Kernels
