lib/workloads/parsec.mli: Bench_spec
