lib/workloads/spec.ml: Asm Bench_spec Chex86_isa Insn Kernels
