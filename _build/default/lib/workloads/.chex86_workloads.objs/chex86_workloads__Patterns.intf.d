lib/workloads/patterns.mli: Chex86_isa
