lib/workloads/kernels.ml: Asm Chex86_isa Insn Reg
