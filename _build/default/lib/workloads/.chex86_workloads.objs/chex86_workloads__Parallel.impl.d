lib/workloads/parallel.ml: Asm Chex86_isa Insn Kernels List Printf
