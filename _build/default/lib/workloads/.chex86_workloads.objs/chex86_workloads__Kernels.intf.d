lib/workloads/kernels.mli: Asm Chex86_isa Insn Reg
