lib/workloads/patterns.ml: Array Asm Chex86_isa Insn Kernels List
