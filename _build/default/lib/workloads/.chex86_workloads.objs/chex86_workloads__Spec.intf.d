lib/workloads/spec.mli: Bench_spec
