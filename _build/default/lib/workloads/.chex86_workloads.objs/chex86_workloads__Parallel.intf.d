lib/workloads/parallel.mli: Chex86_isa
