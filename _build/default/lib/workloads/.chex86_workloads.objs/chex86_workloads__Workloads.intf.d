lib/workloads/workloads.mli: Bench_spec
