lib/workloads/bench_spec.mli: Chex86_isa
