lib/workloads/bench_spec.ml: Chex86_isa
