lib/workloads/workloads.ml: Bench_spec List Parsec Printf Spec
