(* Benchmark descriptor shared by the SPEC-like and PARSEC-like
   workloads.  [build ~scale] assembles the guest program; scale 1 is the
   size the bench harness runs (a few hundred thousand macro-ops), tests
   use smaller scales. *)

type suite = Spec | Parsec

type t = {
  name : string;
  suite : suite;
  description : string;
  build : scale:int -> Chex86_isa.Program.t;
}

let suite_name = function Spec -> "SPEC CPU2017" | Parsec -> "PARSEC 2.1"
