(** Guest programs realizing the Table II temporal pointer access
    patterns; the pointer reload happens at a single load PC so the
    PC-indexed alias predictor can exercise the pattern. *)

val buffers : int
val rounds : int

(** (Table II row label, program generator) for all eight patterns. *)
val all : (string * (unit -> Chex86_isa.Program.t)) list
