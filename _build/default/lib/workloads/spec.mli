(** Synthetic stand-ins for the paper's C/C++ SPEC CPU2017 benchmarks
    (perlbench, gcc, mcf, xalancbmk, deepsjeng, leela, lbm, nab). *)

val all : Bench_spec.t list
