(** Synthetic stand-ins for the paper's PARSEC 2.1 benchmarks
    (blackscholes, bodytrack, fluidanimate, freqmine, swaptions,
    canneal). *)

val all : Bench_spec.t list
