(* Synthetic stand-ins for the PARSEC 2.1 benchmarks of the paper
   (blackscholes, bodytrack, fluidanimate, freqmine, swaptions, canneal),
   single-threaded regions-of-interest.  PARSEC skews FP/array heavy,
   which is why the paper's CHEx86 overhead is lower there (9% vs 14%)
   and the ASan gap larger (2.2x). *)

open Chex86_isa
open Insn

(* blackscholes: an array of option structs; per-element FP pricing with
   mul/div/sqrt chains; negligible pointer traffic. *)
let blackscholes ~scale =
  let b = Asm.create () in
  let opts_slot = Asm.global b "options" 8 in
  Asm.label b "_start";
  let n = 4096 in
  Asm.call_malloc b (n * 40);
  Asm.emit b (Mov (W64, Mem (mem_abs opts_slot), Reg RAX));
  Asm.emit b (Mov (W64, Reg R12, Reg RAX));
  Kernels.fp_constants b;
  Asm.loop_n b ~counter:R15 ~n:(scale * 12) (fun () ->
      Asm.emit b (Mov (W64, Reg R10, Imm 0));
      let opt = Asm.fresh b "opt" in
      Asm.label b opt;
      Asm.emit b (Movsd_load (0, mem ~base:R12 ~index:R10 ~scale:8 ()));
      Asm.emit b (Fp (Fmul, 0, 2));
      Asm.emit b (Fp (Fsqrt, 1, 0));
      Asm.emit b (Fp (Fdiv, 1, 3));
      Asm.emit b (Fp (Fadd, 0, 1));
      Asm.emit b (Movsd_store (mem ~base:R12 ~index:R10 ~scale:8 ~disp:8 (), 0));
      Asm.emit b (Alu (Add, Reg R10, Imm 5));
      Asm.emit b (Cmp (Reg R10, Imm ((n * 5) - 5)));
      Asm.emit b (Jcc (Lt, opt)));
  Asm.emit b (Mov (W64, Reg RDI, Reg R12));
  Asm.call_extern b "free";
  Asm.emit b Halt;
  Asm.build b

(* bodytrack: per-frame particle weights — an FP pass over a particle
   array plus a per-frame scratch allocation. *)
let bodytrack ~scale =
  let b = Asm.create () in
  let particles_slot = Asm.global b "particles" 8 in
  Asm.label b "_start";
  let n = 2048 in
  Asm.call_malloc b (n * 24);
  Asm.emit b (Mov (W64, Mem (mem_abs particles_slot), Reg RAX));
  Asm.emit b (Mov (W64, Reg R12, Reg RAX));
  Kernels.fp_constants b;
  Asm.loop_n b ~counter:R15 ~n:(scale * 60) (fun () ->
      (* scratch frame buffer *)
      Asm.call_malloc b 512;
      Asm.emit b (Mov (W64, Reg R13, Reg RAX));
      Kernels.touch_buffer b ~ptr:R13 ~words:64 ~stride:1;
      (* weight pass *)
      Asm.emit b (Mov (W64, Reg R10, Imm 0));
      let pass = Asm.fresh b "pass" in
      Asm.label b pass;
      Asm.emit b (Movsd_load (0, mem ~base:R12 ~index:R10 ~scale:8 ()));
      Asm.emit b (Fp (Fmul, 0, 2));
      Asm.emit b (Fp (Fadd, 0, 3));
      Asm.emit b (Movsd_store (mem ~base:R12 ~index:R10 ~scale:8 ~disp:8 (), 0));
      Asm.emit b (Alu (Add, Reg R10, Imm 3));
      Asm.emit b (Cmp (Reg R10, Imm ((n * 3) - 3)));
      Asm.emit b (Jcc (Lt, pass));
      Asm.call_free b R13);
  Asm.emit b (Mov (W64, Reg RDI, Reg R12));
  Asm.call_extern b "free";
  Asm.emit b Halt;
  Asm.build b

(* fluidanimate: grid cells each owning a particle list — pointer chase
   within a cell, FP update per particle. *)
let fluidanimate ~scale =
  let b = Asm.create () in
  let cells = 64 in
  let grid = Asm.global b "grid" (8 * cells) in
  Asm.label b "_start";
  for i = 0 to cells - 1 do
    Kernels.build_list b ~n:12 ~node_size:48 ~head:RBX ~head_slot:(grid + (8 * i))
  done;
  Kernels.fp_constants b;
  Asm.loop_n b ~counter:R15 ~n:(scale * 40) (fun () ->
      Asm.emit b (Mov (W64, Reg R14, Imm 0));
      let cell = Asm.fresh b "cell" in
      Asm.label b cell;
      Asm.emit b (Mov (W64, Reg RBX, Mem (mem ~index:R14 ~scale:8 ~disp:grid ())));
      let particle = Asm.fresh b "particle" and done_ = Asm.fresh b "cell_done" in
      Asm.label b particle;
      Asm.emit b (Test (Reg RBX, Reg RBX));
      Asm.emit b (Jcc (Eq, done_));
      Asm.emit b (Movsd_load (0, mem ~base:RBX ~disp:8 ()));
      Asm.emit b (Fp (Fmul, 0, 2));
      Asm.emit b (Fp (Fadd, 0, 3));
      Asm.emit b (Movsd_store (mem ~base:RBX ~disp:16 (), 0));
      Asm.emit b (Movsd_load (1, mem ~base:RBX ~disp:24 ()));
      Asm.emit b (Fp (Fadd, 1, 0));
      Asm.emit b (Movsd_store (mem ~base:RBX ~disp:32 (), 1));
      Asm.emit b (Inc (Mem (mem ~base:RBX ~disp:40 ())));
      Asm.emit b (Mov (W64, Reg RBX, Mem (mem_of_reg RBX)));
      Asm.emit b (Jmp particle);
      Asm.label b done_;
      Asm.emit b (Inc (Reg R14));
      Asm.emit b (Cmp (Reg R14, Imm cells));
      Asm.emit b (Jcc (Lt, cell)));
  Asm.emit b Halt;
  Asm.build b

(* freqmine: FP-tree mining flavour — many small node allocations linked
   into chains keyed by a header table, then repeated conditional-pattern
   walks. *)
let freqmine ~scale =
  let b = Asm.create () in
  let headers = 16 in
  let header_table = Asm.global b "header_table" (8 * headers) in
  Asm.label b "_start";
  for i = 0 to headers - 1 do
    Kernels.build_list b ~n:(16 + (4 * (i mod 4))) ~node_size:40 ~head:RBX
      ~head_slot:(header_table + (8 * i))
  done;
  Asm.loop_n b ~counter:R15 ~n:(scale * 250) (fun () ->
      Asm.emit b (Mov (W64, Reg R14, Imm 0));
      let item = Asm.fresh b "item" in
      Asm.label b item;
      Asm.emit b (Mov (W64, Reg RBX, Mem (mem ~index:R14 ~scale:8 ~disp:header_table ())));
      Kernels.chase_list b ~head:RBX;
      Asm.emit b (Mov (W64, Reg RBX, Mem (mem ~index:R14 ~scale:8 ~disp:header_table ())));
      Kernels.chase_list b ~head:RBX;
      Asm.emit b (Inc (Reg R14));
      Asm.emit b (Cmp (Reg R14, Imm headers));
      Asm.emit b (Jcc (Lt, item)));
  Asm.emit b Halt;
  Asm.build b

(* swaptions: HJM Monte-Carlo flavour — per-trial scratch buffers and FP
   accumulation driven by the rand stub. *)
let swaptions ~scale =
  let b = Asm.create () in
  let acc_slot = Asm.global b "accum" 8 in
  Asm.label b "_start";
  Kernels.fp_constants b;
  Asm.loop_n b ~counter:R15 ~n:(scale * 150) (fun () ->
      Asm.call_malloc b 256;
      Asm.emit b (Mov (W64, Reg R13, Reg RAX));
      (* fill with rand-derived values and integrate *)
      Asm.emit b (Mov (W64, Reg R14, Imm 0));
      let trial = Asm.fresh b "trial" in
      Asm.label b trial;
      Asm.call_extern b "rand";
      Asm.emit b (Alu (And, Reg RAX, Imm 1023));
      Asm.emit b (Cvtsi2sd (0, RAX));
      Asm.emit b (Fp (Fdiv, 0, 3));
      Asm.emit b (Fp (Fmul, 0, 2));
      Asm.emit b (Movsd_store (mem ~base:R13 ~index:R14 ~scale:8 (), 0));
      Asm.emit b (Inc (Reg R14));
      Asm.emit b (Cmp (Reg R14, Imm 32));
      Asm.emit b (Jcc (Lt, trial));
      (* integrate *)
      Asm.emit b (Mov (W64, Reg R14, Imm 0));
      let sum = Asm.fresh b "sum" in
      Asm.label b sum;
      Asm.emit b (Movsd_load (1, mem ~base:R13 ~index:R14 ~scale:8 ()));
      Asm.emit b (Fp (Fadd, 4, 1));
      Asm.emit b (Inc (Reg R14));
      Asm.emit b (Cmp (Reg R14, Imm 32));
      Asm.emit b (Jcc (Lt, sum));
      Asm.emit b (Movsd_store (mem_abs acc_slot, 4));
      Asm.call_free b R13);
  Asm.emit b Halt;
  Asm.build b

(* canneal: netlist element swaps — two random pointer reloads per step
   from a big element table and field exchanges through them. *)
let canneal ~scale =
  let b = Asm.create () in
  let elements = 2048 in
  let netlist = Asm.global b "netlist" (8 * elements) in
  Asm.label b "_start";
  Kernels.alloc_into_table b ~table:netlist ~count:elements ~size:48;
  Asm.emit b (Mov (W64, Reg R9, Imm 0xfeed));
  Asm.loop_n b ~counter:R15 ~n:(scale * 8_000) (fun () ->
      Kernels.random_pointer b ~table:netlist ~count:elements ~state:R9 ~dst:RBX;
      Kernels.random_pointer b ~table:netlist ~count:elements ~state:R9 ~dst:RDX;
      (* cost evaluation touches several fields of both elements *)
      Asm.emit b (Mov (W64, Reg RAX, Mem (mem ~base:RBX ~disp:8 ())));
      Asm.emit b (Alu (Add, Reg RAX, Mem (mem ~base:RBX ~disp:16 ())));
      Asm.emit b (Alu (Add, Reg RAX, Mem (mem ~base:RBX ~disp:24 ())));
      Asm.emit b (Mov (W64, Reg R10, Mem (mem ~base:RDX ~disp:8 ())));
      Asm.emit b (Alu (Add, Reg R10, Mem (mem ~base:RDX ~disp:16 ())));
      Asm.emit b (Alu (Add, Reg R10, Mem (mem ~base:RDX ~disp:24 ())));
      (* then swaps the cost fields *)
      Asm.emit b (Mov (W64, Mem (mem ~base:RBX ~disp:8 ()), Reg R10));
      Asm.emit b (Mov (W64, Mem (mem ~base:RDX ~disp:8 ()), Reg RAX)));
  Kernels.free_table b ~table:netlist ~count:elements;
  Asm.emit b Halt;
  Asm.build b

let all : Bench_spec.t list =
  [
    {
      name = "blackscholes";
      suite = Bench_spec.Parsec;
      description = "FP option pricing over a flat array";
      build = blackscholes;
    };
    {
      name = "bodytrack";
      suite = Bench_spec.Parsec;
      description = "per-frame FP particle weights + scratch allocations";
      build = bodytrack;
    };
    {
      name = "fluidanimate";
      suite = Bench_spec.Parsec;
      description = "grid cells with particle-list chases + FP updates";
      build = fluidanimate;
    };
    {
      name = "freqmine";
      suite = Bench_spec.Parsec;
      description = "FP-tree chains walked from a header table";
      build = freqmine;
    };
    {
      name = "swaptions";
      suite = Bench_spec.Parsec;
      description = "Monte-Carlo trials with scratch buffers";
      build = swaptions;
    };
    {
      name = "canneal";
      suite = Bench_spec.Parsec;
      description = "random element swaps through a pointer table";
      build = canneal;
    };
  ]
