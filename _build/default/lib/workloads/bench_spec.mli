(** Benchmark workload descriptor. *)

type suite = Spec | Parsec

type t = {
  name : string;
  suite : suite;
  description : string;
  build : scale:int -> Chex86_isa.Program.t;
      (** scale 1 is the bench-harness size (a few hundred thousand
          macro-ops) *)
}

val suite_name : suite -> string
