(* Shared program-fragment generators for the synthetic benchmarks.

   Every kernel emits guest code through the Asm builder.  Register
   conventions used throughout the workloads:

     r12..r15   long-lived pointers / table bases
     rbx        current object pointer
     rcx        loop counters (clobbered by Asm.loop_n)
     rax        values / malloc results
     rsi, rdi   call arguments
     r10, r11   scratch / LCG state

   Pointer tables are the crux of the reproduction: storing a malloc'd
   pointer into a table is a *spilled pointer alias*, and loading it back
   is the pointer-reload event the alias predictor speculates on. *)

open Chex86_isa
open Insn

let table_slot table i = mem_abs (table + (8 * i))

(* Allocate [count] buffers of [size] bytes, storing the pointers into a
   global table at [table]: table[i] = malloc(size).  Emitted as a guest
   loop (one load/store PC), as compiled code would be. Clobbers r8. *)
let alloc_into_table b ~table ~count ~size =
  Asm.emit b (Mov (W64, Reg R8, Imm 0));
  let top = Asm.fresh b "alloc_tab" in
  Asm.label b top;
  Asm.call_malloc b size;
  Asm.emit b (Mov (W64, Mem (mem ~index:R8 ~scale:8 ~disp:table ()), Reg RAX));
  Asm.emit b (Inc (Reg R8));
  Asm.emit b (Cmp (Reg R8, Imm count));
  Asm.emit b (Jcc (Lt, top))

(* Free every pointer in the table (reloading each — temporal pattern:
   stride through the allocation-order PIDs). Clobbers r8. *)
let free_table b ~table ~count =
  Asm.emit b (Mov (W64, Reg R8, Imm 0));
  let top = Asm.fresh b "free_tab" in
  Asm.label b top;
  Asm.emit b (Mov (W64, Reg RDI, Mem (mem ~index:R8 ~scale:8 ~disp:table ())));
  Asm.call_extern b "free";
  Asm.emit b (Inc (Reg R8));
  Asm.emit b (Cmp (Reg R8, Imm count));
  Asm.emit b (Jcc (Lt, top))

(* Touch [words] 8-byte words of the buffer whose pointer is in [ptr],
   read-modify-write with a stride of [stride] words. *)
let touch_buffer b ~ptr ~words ~stride =
  Asm.emit b (Mov (W64, Reg R10, Imm 0));
  let top = Asm.fresh b "touch" in
  Asm.label b top;
  Asm.emit b (Inc (Mem (mem ~base:ptr ~index:R10 ~scale:8 ())));
  Asm.emit b (Alu (Add, Reg R10, Imm stride));
  Asm.emit b (Cmp (Reg R10, Imm words));
  Asm.emit b (Jcc (Lt, top))

(* In-register LCG producing a pseudo-random value in [dst]; state kept
   in [state] (updated).  Used for data-dependent access patterns without
   calling the rand stub. *)
let lcg_next b ~state ~dst =
  Asm.emit b (Alu (Imul, Reg state, Imm 1103515245));
  Asm.emit b (Alu (Add, Reg state, Imm 12345));
  Asm.emit b (Mov (W64, Reg dst, Reg state));
  Asm.emit b (Alu (Shr, Reg dst, Imm 16))

(* dst <- table[random % count]: the canonical random pointer reload. *)
let random_pointer b ~table ~count ~state ~dst =
  lcg_next b ~state ~dst:R11;
  (* Cheap modulus for power-of-two counts; callers pass powers of 2. *)
  assert (count land (count - 1) = 0);
  Asm.emit b (Alu (And, Reg R11, Imm (count - 1)));
  Asm.emit b (Mov (W64, Reg dst, Mem (mem ~index:R11 ~scale:8 ~disp:table ())))

(* Build a singly linked list of [n] nodes of [node_size] bytes: next
   pointer at offset 0, payload at offset 8.  Head pointer left in
   [head] and also spilled to the global slot [head_slot]. *)
let build_list b ~n ~node_size ~head ~head_slot =
  Asm.emit b (Mov (W64, Mem (mem_abs head_slot), Imm 0));
  Asm.loop_n b ~counter:RCX ~n (fun () ->
      Asm.emit b (Push (Reg RCX));
      Asm.call_malloc b node_size;
      Asm.emit b (Pop RCX);
      (* node->next = head_slot contents; head_slot = node *)
      Asm.emit b (Mov (W64, Reg R10, Mem (mem_abs head_slot)));
      Asm.emit b (Mov (W64, Mem (mem_of_reg RAX), Reg R10));
      Asm.emit b (Mov (W64, Mem (mem_abs head_slot), Reg RAX)));
  Asm.emit b (Mov (W64, Reg head, Mem (mem_abs head_slot)))

(* Chase the list from [head], incrementing each payload (the paper's
   Listing 1 `chase`). Clobbers rbx. *)
let chase_list b ~head =
  if not (Reg.equal head RBX) then Asm.emit b (Mov (W64, Reg RBX, Reg head));
  let top = Asm.fresh b "chase" and out = Asm.fresh b "chase_done" in
  Asm.label b top;
  Asm.emit b (Test (Reg RBX, Reg RBX));
  Asm.emit b (Jcc (Eq, out));
  Asm.emit b (Inc (Mem (mem ~base:RBX ~disp:8 ())));
  Asm.emit b (Mov (W64, Reg R10, Mem (mem ~base:RBX ~disp:8 ())));
  Asm.emit b (Alu (Add, Reg R10, Mem (mem ~base:RBX ~disp:16 ())));
  Asm.emit b (Mov (W64, Mem (mem ~base:RBX ~disp:16 ()), Reg R10));
  Asm.emit b (Mov (W64, Reg RBX, Mem (mem_of_reg RBX)));
  Asm.emit b (Jmp top);
  Asm.label b out

(* FP stencil over a buffer pointed to by [ptr]: for each element,
   x[i] = (x[i] * c0 + x[i+1]) / c1. *)
let fp_stream b ~ptr ~words =
  Asm.emit b (Mov (W64, Reg R10, Imm 0));
  let top = Asm.fresh b "fp" in
  Asm.label b top;
  Asm.emit b (Movsd_load (0, mem ~base:ptr ~index:R10 ~scale:8 ()));
  Asm.emit b (Movsd_load (1, mem ~base:ptr ~index:R10 ~scale:8 ~disp:8 ()));
  Asm.emit b (Fp (Fmul, 0, 2));  (* xmm2 holds c0, set by caller *)
  Asm.emit b (Fp (Fadd, 0, 1));
  Asm.emit b (Fp (Fdiv, 0, 3));  (* xmm3 holds c1 *)
  Asm.emit b (Movsd_store (mem ~base:ptr ~index:R10 ~scale:8 (), 0));
  Asm.emit b (Inc (Reg R10));
  Asm.emit b (Cmp (Reg R10, Imm (words - 1)));
  Asm.emit b (Jcc (Lt, top))

(* Load FP constants into xmm2/xmm3 through integer conversion. *)
let fp_constants b =
  Asm.emit b (Mov (W64, Reg R10, Imm 3));
  Asm.emit b (Cvtsi2sd (2, R10));
  Asm.emit b (Mov (W64, Reg R10, Imm 7));
  Asm.emit b (Cvtsi2sd (3, R10))

(* A function frame that spills callee-saved pointer registers to the
   stack and reloads them: exercises stack spilled-pointer aliases. *)
let with_spills b body =
  Asm.emit b (Push (Reg R12));
  Asm.emit b (Push (Reg R13));
  body ();
  Asm.emit b (Pop R13);
  Asm.emit b (Pop R12)
