(* Multithreaded workloads for the SMP machine.

   The paper's PARSEC runs are multithreaded and model cross-core
   capability/alias cache invalidation traffic.  [canneal_mt] builds a
   canneal-style program with one entry label per hardware thread:
   every thread owns a partition of one shared element table, performs
   random swaps within it, and periodically frees + reallocates an
   element — each free broadcasts a capability invalidation and each
   pointer spill an alias invalidation to the other cores. *)

open Chex86_isa
open Insn

let elements_per_thread = 256

(* Entry labels for [Smp.run ~threads]. *)
let thread_labels n = List.init n (fun i -> Printf.sprintf "thread%d" i)

let canneal_mt ~threads ~scale =
  if threads < 1 then invalid_arg "Parallel.canneal_mt: threads < 1";
  let b = Asm.create () in
  let total = threads * elements_per_thread in
  let netlist = Asm.global b "netlist_mt" (8 * total) in
  (* A dummy _start so single-threaded tools can still load the program;
     it simply runs thread 0. *)
  Asm.label b "_start";
  Asm.emit b (Jmp "thread0");
  for tid = 0 to threads - 1 do
    let base_slot = tid * elements_per_thread in
    Asm.label b (Printf.sprintf "thread%d" tid);
    (* allocate this thread's partition *)
    Asm.emit b (Mov (W64, Reg R8, Imm 0));
    let fill = Asm.fresh b "fill" in
    Asm.label b fill;
    Asm.call_malloc b 48;
    Asm.emit b
      (Mov (W64, Mem (mem ~index:R8 ~scale:8 ~disp:(netlist + (8 * base_slot)) ()), Reg RAX));
    Asm.emit b (Inc (Reg R8));
    Asm.emit b (Cmp (Reg R8, Imm elements_per_thread));
    Asm.emit b (Jcc (Lt, fill));
    (* anneal within the partition *)
    Asm.emit b (Mov (W64, Reg R9, Imm (0xfeed + (tid * 7919))));
    Asm.loop_n b ~counter:R15 ~n:(scale * 1_500) (fun () ->
        Kernels.random_pointer b ~table:(netlist + (8 * base_slot))
          ~count:elements_per_thread ~state:R9 ~dst:RBX;
        Kernels.random_pointer b ~table:(netlist + (8 * base_slot))
          ~count:elements_per_thread ~state:R9 ~dst:RDX;
        Asm.emit b (Mov (W64, Reg RAX, Mem (mem ~base:RBX ~disp:8 ())));
        Asm.emit b (Mov (W64, Reg R10, Mem (mem ~base:RDX ~disp:8 ())));
        Asm.emit b (Mov (W64, Mem (mem ~base:RBX ~disp:8 ()), Reg R10));
        Asm.emit b (Mov (W64, Mem (mem ~base:RDX ~disp:8 ()), Reg RAX));
        (* periodic element churn: the cross-core invalidation source.
           rdx came from slot r11 (random_pointer's last index), so the
           freed element's slot is exactly the one reinstalled below. *)
        Asm.emit b (Test (Reg R15, Imm 63));
        let skip = Asm.fresh b "skip_churn" in
        Asm.emit b (Jcc (Ne, skip));
        Asm.emit b (Mov (W64, Reg RDI, Reg RDX));
        Asm.call_extern b "free";
        Asm.call_malloc b 48;
        Asm.emit b
          (Mov
             ( W64,
               Mem (mem ~index:R11 ~scale:8 ~disp:(netlist + (8 * base_slot)) ()),
               Reg RAX ));
        Asm.label b skip);
    Asm.emit b Halt
  done;
  Asm.build b

(* A deliberately racy variant: thread 1 uses a pointer that thread 0
   publishes and then frees — a cross-core use-after-free that must be
   caught through the *shared* capability table even though thread 1's
   core never saw the free locally. *)
let cross_core_uaf () =
  let b = Asm.create () in
  let slot = Asm.global b "shared_ptr" 8 in
  let ready = Asm.global b "ready_flag" 8 in
  Asm.label b "_start";
  Asm.emit b (Jmp "thread0");
  (* thread 0: publish, let thread 1 spin up, then free *)
  Asm.label b "thread0";
  Asm.call_malloc b 64;
  Asm.emit b (Mov (W64, Mem (mem_abs slot), Reg RAX));
  Asm.emit b (Mov (W64, Mem (mem_abs ready), Imm 1));
  (* give thread 1 time to load the pointer *)
  Asm.loop_n b ~counter:RCX ~n:64 (fun () -> Asm.emit b Nop);
  Asm.emit b (Mov (W64, Reg RDI, Mem (mem_abs slot)));
  Asm.call_extern b "free";
  (* signal the free and halt *)
  Asm.emit b (Mov (W64, Mem (mem_abs ready), Imm 2));
  Asm.emit b Halt;
  (* thread 1: wait for the pointer, wait for the free, then use it *)
  Asm.label b "thread1";
  let wait1 = Asm.fresh b "wait_ptr" in
  Asm.label b wait1;
  Asm.emit b (Mov (W64, Reg RAX, Mem (mem_abs ready)));
  Asm.emit b (Cmp (Reg RAX, Imm 1));
  Asm.emit b (Jcc (Lt, wait1));
  Asm.emit b (Mov (W64, Reg R12, Mem (mem_abs slot)));
  let wait2 = Asm.fresh b "wait_free" in
  Asm.label b wait2;
  Asm.emit b (Mov (W64, Reg RAX, Mem (mem_abs ready)));
  Asm.emit b (Cmp (Reg RAX, Imm 2));
  Asm.emit b (Jcc (Lt, wait2));
  (* the cross-core stale write *)
  Asm.emit b (Mov (W64, Mem (mem_of_reg R12), Imm 0xBAD));
  Asm.emit b Halt;
  Asm.build b
