(** Multithreaded workloads for the SMP machine. *)

val elements_per_thread : int

(** Entry labels ["thread0"]..["thread<n-1>"] for [Chex86.Smp.run]. *)
val thread_labels : int -> string list

(** canneal-style annealing over per-thread partitions of one shared
    element table, with periodic free/realloc churn (the cross-core
    invalidation source). *)
val canneal_mt : threads:int -> scale:int -> Chex86_isa.Program.t

(** Thread 0 publishes then frees a pointer thread 1 uses: a cross-core
    use-after-free detected through the shared capability table. *)
val cross_core_uaf : unit -> Chex86_isa.Program.t
