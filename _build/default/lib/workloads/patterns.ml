(* Guest programs realizing the temporal pointer access patterns of
   Table II, used to regenerate the table from real machine-level PID
   streams and to exercise the alias/stride predictor.

   Each generator allocates [buffers] heap objects (consecutive PIDs in
   allocation order) and then dereferences them in the pattern's order.
   The monitor's capability-check trace recovers the PID sequence. *)

open Chex86_isa
open Insn

let buffers = 8
let rounds = 40

(* The whole deref order is materialized in a global array walked by ONE
   guest loop, so the pointer reload happens at a single instruction
   address — the paper's predictability is keyed by PC, and an unrolled
   sequence would defeat the predictor by construction. *)
let build order_fn =
  let order =
    List.concat_map (fun r -> order_fn r) (List.init rounds (fun r -> r))
  in
  let n = List.length order in
  let b = Asm.create () in
  let table = Asm.global b "pattern_table" (8 * buffers) in
  let order_tab = Asm.global b "pattern_order" (8 * max n 1) in
  Asm.label b "_start";
  Kernels.alloc_into_table b ~table ~count:buffers ~size:64;
  List.iteri
    (fun i slot -> Asm.emit b (Mov (W64, Mem (mem_abs (order_tab + (8 * i))), Imm slot)))
    order;
  (* for (i = 0; i < n; i++) { p = table[order[i]]; p->count++; } *)
  Asm.emit b (Mov (W64, Reg RCX, Imm 0));
  let loop = Asm.fresh b "pattern" in
  Asm.label b loop;
  Asm.emit b (Mov (W64, Reg R10, Mem (mem ~index:RCX ~scale:8 ~disp:order_tab ())));
  Asm.emit b (Mov (W64, Reg RBX, Mem (mem ~index:R10 ~scale:8 ~disp:table ())));
  Asm.emit b (Inc (Mem (mem ~base:RBX ~disp:8 ())));
  Asm.emit b (Inc (Reg RCX));
  Asm.emit b (Cmp (Reg RCX, Imm n));
  Asm.emit b (Jcc (Lt, loop));
  Asm.emit b Halt;
  Asm.build b

let constant () = build (fun _ -> [ 3; 3; 3 ])

(* One monotone pass: buffers dereferenced in allocation order. *)
let stride () = build (fun r -> if r = 0 then List.init buffers (fun i -> i) else [])

(* Each buffer accessed in a batch before moving to the next. *)
let batch_stride () = build (fun r -> if r < buffers then List.init 4 (fun _ -> r) else [])

let batch_no_stride () =
  let order = [| 5; 1; 6; 2; 7; 0; 4; 3 |] in
  build (fun r -> if r < buffers then List.init 4 (fun _ -> order.(r)) else [])

let repeat_stride () = build (fun _ -> [ 0; 1; 2 ])

let repeat_no_stride () = build (fun _ -> [ 4; 0; 6 ])

(* Interleaved strided subsequences, non-periodic (Table II row 7:
   "26 23 29 27 24 30 28"). *)
let random_stride () =
  build (fun r -> if r = 0 then [ 4; 1; 7; 5; 2; 6; 3 ] else [])

let random_no_stride () =
  build (fun r -> if r = 0 then [ 0; 5; 2; 7; 0; 3; 6; 2; 5; 0; 7; 3 ] else [])

let all =
  [
    ("Constant", constant);
    ("Stride", stride);
    ("Batch + Stride", batch_stride);
    ("Batch + No Stride", batch_no_stride);
    ("Repeat + Stride", repeat_stride);
    ("Repeat + No Stride", repeat_no_stride);
    ("Random + Stride", random_stride);
    ("Random + No Stride", random_no_stride);
  ]
