(* Registry of all benchmark workloads. *)

let spec = Spec.all
let parsec = Parsec.all
let all = Spec.all @ Parsec.all

let find name =
  match List.find_opt (fun (w : Bench_spec.t) -> w.name = name) all with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Workloads.find: unknown workload %S" name)

let names = List.map (fun (w : Bench_spec.t) -> w.name) all
