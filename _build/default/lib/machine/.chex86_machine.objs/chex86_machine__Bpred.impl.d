lib/machine/bpred.ml: Array Chex86_isa Chex86_stats
