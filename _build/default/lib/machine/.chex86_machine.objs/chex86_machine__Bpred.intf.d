lib/machine/bpred.mli: Chex86_isa Chex86_stats
