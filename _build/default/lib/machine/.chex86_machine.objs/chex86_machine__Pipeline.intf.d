lib/machine/pipeline.mli: Chex86_mem Chex86_stats Config Engine
