lib/machine/hooks.ml: Chex86_isa
