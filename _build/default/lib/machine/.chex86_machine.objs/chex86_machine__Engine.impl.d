lib/machine/engine.ml: Array Chex86_isa Chex86_mem Chex86_os Decoder Hooks Insn List Printf Program Reg Uop
