lib/machine/simulator.ml: Chex86_mem Chex86_os Chex86_stats Config Engine Hooks Pipeline
