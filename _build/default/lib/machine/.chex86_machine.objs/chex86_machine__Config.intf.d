lib/machine/config.mli:
