lib/machine/engine.mli: Chex86_isa Chex86_os Decoder Hooks Insn Reg Uop
