lib/machine/pipeline.ml: Array Bpred Chex86_isa Chex86_mem Chex86_stats Config Decoder Engine Hashtbl Hooks Insn List Reg Uop
