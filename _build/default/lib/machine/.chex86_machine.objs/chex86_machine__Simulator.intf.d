lib/machine/simulator.mli: Chex86_mem Chex86_os Chex86_stats Config Engine Hooks Pipeline
