lib/machine/hooks.mli: Chex86_isa
