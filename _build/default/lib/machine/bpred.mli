(** LTAGE-style branch predictor with BTB and return-address stack.

    Counts outcomes in the counter group as ["bpred.cond_correct"],
    ["bpred.cond_mispredict"], ["bpred.ras_*"], ["bpred.btb_*"]. *)

type t

val create : Chex86_stats.Counter.group -> t

(** Direction prediction for a conditional at [pc] (no state change). *)
val predict_direction : t -> int -> bool

(** [resolve t ~pc ~kind ~taken ~target] updates all predictor state and
    returns whether the front-end prediction was correct. *)
val resolve :
  t -> pc:int -> kind:Chex86_isa.Uop.branch_kind -> taken:bool -> target:int -> bool

(** Push a return address (used for indirect calls, which resolve their
    target through the BTB). *)
val ras_push : t -> int -> unit

val ras_pop : t -> int
val btb_lookup : t -> int -> int option
val btb_update : t -> int -> int -> unit
