(* Functional execution engine.

   Executes the guest program macro-op by macro-op, cracking each into
   micro-ops, letting the monitor instrument the crack (decode time) and
   observe each executed micro-op (execute time, with resolved effective
   addresses and results).  Architectural state is updated in program
   order; the timing model consumes the step records this engine
   produces, modelling speculation as timing (see Pipeline).

   Runtime (libc) functions are native stubs: the entry address runs the
   allocator/memcpy/etc. natively against guest memory, and the address
   entry+4 holds a Ret.  Both addresses are interceptable by the MSR
   registry, which is how capGen/capFree injection observes allocation
   events with %rdi/%rax in hand (Section IV-C). *)

open Chex86_isa

exception Guest_fault of string

type exec_uop = { uop : Uop.t; ea : int option; reaction : Hooks.reaction }

type branch_info = { kind : Uop.branch_kind; taken : bool; target : int }

type step = {
  pc : int;
  insn : Insn.t option;  (* None for a native stub body *)
  native : string option;
  path : Decoder.path;
  uops : exec_uop list;
  branch : branch_info option;
}

type t = {
  proc : Chex86_os.Process.t;
  hooks : Hooks.t;
  regs : int array;
  xmm : float array;
  tmps : int array;
  mutable eq : bool;
  mutable lt : bool;
  mutable rip : int;
  mutable halted : bool;
  mutable insn_count : int;
  mutable rand_state : int;
  mutable on_access : addr:int -> write:bool -> unit;
}

(* [entry]/[stack_top] support SMP: each hardware thread starts at its
   own label with a private stack region. *)
let create ?(hooks = Hooks.none ()) ?entry ?stack_top proc =
  let program = proc.Chex86_os.Process.program in
  let t =
    {
      proc;
      hooks;
      regs = Array.make Reg.count 0;
      xmm = Array.make Insn.xmm_count 0.;
      tmps = Array.make 2 0;
      eq = false;
      lt = false;
      rip =
        (match entry with
        | Some label -> Program.label_addr program label
        | None -> Program.entry_addr program);
      halted = false;
      insn_count = 0;
      rand_state = 0x12345;
      on_access = (fun ~addr:_ ~write:_ -> ());
    }
  in
  t.regs.(Reg.index Reg.RSP) <-
    (match stack_top with Some sp -> sp | None -> Program.stack_top);
  t

let halted t = t.halted
let insn_count t = t.insn_count
let read_reg t r = t.regs.(Reg.index r)
let write_reg t r v = t.regs.(Reg.index r) <- v
let rip t = t.rip

let get_loc t = function
  | Uop.Greg r -> t.regs.(Reg.index r)
  | Uop.Tmp i -> t.tmps.(i)
  | Uop.Xreg _ -> raise (Guest_fault "integer read of xmm register")

let set_loc t loc v =
  match loc with
  | Uop.Greg r -> t.regs.(Reg.index r) <- v
  | Uop.Tmp i -> t.tmps.(i) <- v
  | Uop.Xreg _ -> raise (Guest_fault "integer write of xmm register")

let get_src t = function Uop.Loc l -> get_loc t l | Uop.Imm i -> i

let effective_address t (m : Insn.mem) =
  (match m.base with Some r -> t.regs.(Reg.index r) | None -> 0)
  + (match m.index with Some r -> t.regs.(Reg.index r) * m.scale | None -> 0)
  + m.disp

let mask_width w v =
  match w with
  | Insn.W8 -> v land 0xFF
  | Insn.W16 -> v land 0xFFFF
  | Insn.W32 -> v land 0xFFFFFFFF
  | Insn.W64 -> v

let alu_eval op a b =
  match op with
  | Insn.Add -> a + b
  | Insn.Sub -> a - b
  | Insn.And -> a land b
  | Insn.Or -> a lor b
  | Insn.Xor -> a lxor b
  | Insn.Imul -> a * b
  | Insn.Shl -> a lsl (b land 63)
  | Insn.Shr -> a lsr (b land 63)

let fp_eval op a b =
  match op with
  | Insn.Fadd -> a +. b
  | Insn.Fsub -> a -. b
  | Insn.Fmul -> a *. b
  | Insn.Fdiv -> a /. b
  | Insn.Fsqrt -> sqrt b

let set_flags t v =
  t.eq <- v = 0;
  t.lt <- v < 0

let eval_cond t = function
  | Insn.Eq -> t.eq
  | Insn.Ne -> not t.eq
  | Insn.Lt -> t.lt
  | Insn.Le -> t.lt || t.eq
  | Insn.Gt -> not (t.lt || t.eq)
  | Insn.Ge -> not t.lt

(* Execute one micro-op functionally; returns (ea, result). [insn] gives
   macro context for the return-address store of Call and for indirect
   branch targets. *)
let exec_uop t (insn : Insn.t option) pc (uop : Uop.t) =
  let mem = t.proc.Chex86_os.Process.mem in
  match uop with
  | Mov { dst; src } ->
    let v = get_loc t src in
    set_loc t dst v;
    (None, Some v)
  | Limm { dst; imm } ->
    set_loc t dst imm;
    (None, Some imm)
  | Alu { op; dst; src1; src2 } ->
    let v = alu_eval op (get_loc t src1) (get_src t src2) in
    set_loc t dst v;
    set_flags t v;
    (None, Some v)
  | Lea { dst; mem = m } ->
    let ea = effective_address t m in
    set_loc t dst ea;
    (None, Some ea)
  | Load { dst; mem = m; width } ->
    let ea = effective_address t m in
    t.on_access ~addr:ea ~write:false;
    (match dst with
    | Xreg i -> t.xmm.(i) <- Chex86_mem.Image.read_float mem ea
    | _ ->
      let v = mask_width width (Chex86_mem.Image.read mem ea (Insn.bytes_of_width width)) in
      set_loc t dst v);
    let result =
      match dst with Xreg _ -> None | _ -> Some (get_loc t dst)
    in
    (Some ea, result)
  | Store { src; mem = m; width } ->
    let ea = effective_address t m in
    t.on_access ~addr:ea ~write:true;
    (match src with
    | Loc (Xreg i) -> Chex86_mem.Image.write_float mem ea t.xmm.(i)
    | _ ->
      let v =
        match (insn, src) with
        (* Return-address store of a call macro-op. *)
        | (Some (Insn.Call _ | Insn.Call_reg _)), Uop.Imm 0 -> pc + 4
        | _ -> get_src t src
      in
      Chex86_mem.Image.write mem ea (Insn.bytes_of_width width) (mask_width width v));
    (Some ea, None)
  | Fp { op; dst = Xreg d; src = Xreg s } ->
    t.xmm.(d) <- fp_eval op t.xmm.(d) t.xmm.(s);
    (None, None)
  | Fp _ -> raise (Guest_fault "fp micro-op on integer register")
  | Cvt { dst = Xreg d; src; to_fp = true } ->
    t.xmm.(d) <- float_of_int (get_loc t src);
    (None, None)
  | Cvt { dst; src = Xreg s; to_fp = false } ->
    let v = int_of_float t.xmm.(s) in
    set_loc t dst v;
    (None, Some v)
  | Cvt _ -> raise (Guest_fault "malformed cvt micro-op")
  | Cmp { src1; src2; is_test } ->
    let a = get_loc t src1 and b = get_src t src2 in
    if is_test then begin
      let v = a land b in
      t.eq <- v = 0;
      t.lt <- v < 0
    end
    else begin
      t.eq <- a = b;
      t.lt <- a < b
    end;
    (None, None)
  | Branch _ -> (None, None)  (* resolved at the macro level *)
  | Cap (Cap_check { mem = m; _ }) | Guard { mem = m; _ } ->
    (* Checks compute the same effective address as the access they
       guard; the monitor performs the actual check. *)
    (Some (effective_address t m), None)
  | Cap _ | Nop -> (None, None)

(* --- native runtime stubs ------------------------------------------------ *)

let run_native t name =
  let runtime = t.proc.Chex86_os.Process.runtime in
  let mem = t.proc.Chex86_os.Process.mem in
  let rdi = read_reg t Reg.RDI
  and rsi = read_reg t Reg.RSI
  and rdx = read_reg t Reg.RDX in
  match name with
  | "malloc" -> write_reg t Reg.RAX (runtime.malloc rdi)
  | "free" ->
    runtime.free rdi;
    write_reg t Reg.RAX 0
  | "calloc" -> write_reg t Reg.RAX (runtime.calloc ~count:rdi ~size:rsi)
  | "realloc" -> write_reg t Reg.RAX (runtime.realloc rdi rsi)
  | "memset" ->
    for i = 0 to rdx - 1 do
      Chex86_mem.Image.write_byte mem (rdi + i) (rsi land 0xFF)
    done;
    write_reg t Reg.RAX rdi
  | "memcpy" ->
    for i = 0 to rdx - 1 do
      Chex86_mem.Image.write_byte mem (rdi + i) (Chex86_mem.Image.read_byte mem (rsi + i))
    done;
    write_reg t Reg.RAX rdi
  | "puts" -> write_reg t Reg.RAX 0
  | "rand" ->
    t.rand_state <- (t.rand_state * 1103515245) + 12345;
    write_reg t Reg.RAX ((t.rand_state lsr 16) land 0x3FFFFFFF)
  | _ -> raise (Guest_fault (Printf.sprintf "unknown native stub %S" name))

(* --- macro step ---------------------------------------------------------- *)

(* Resolve the control flow of the macro-op after its micro-ops ran.
   Returns [(branch_info option, next_rip)]. *)
let resolve_branch t pc (insn : Insn.t) =
  let prog = t.proc.Chex86_os.Process.program in
  let target_of = function
    | Insn.Label l -> Program.label_addr prog l
    | Insn.Extern name -> Chex86_os.Layout.extern_addr name
  in
  match insn with
  | Jmp l ->
    let tgt = Program.label_addr prog l in
    (Some { kind = Uop.Jump; taken = true; target = tgt }, tgt)
  | Jmp_reg r ->
    let tgt = read_reg t r in
    (Some { kind = Uop.Indirect; taken = true; target = tgt }, tgt)
  | Jcc (c, l) ->
    let taken = eval_cond t c in
    let tgt = if taken then Program.label_addr prog l else pc + 4 in
    (Some { kind = Uop.Cond c; taken; target = tgt }, tgt)
  | Call tgt ->
    let tgt = target_of tgt in
    (Some { kind = Uop.Call; taken = true; target = tgt }, tgt)
  | Call_reg r ->
    let tgt = read_reg t r in
    (Some { kind = Uop.Indirect; taken = true; target = tgt }, tgt)
  | Ret ->
    let tgt = t.tmps.(0) in
    (Some { kind = Uop.Ret; taken = true; target = tgt }, tgt)
  | Halt ->
    t.halted <- true;
    (None, pc)
  | _ -> (None, pc + 4)

let execute_uops t ctx insn pc uops =
  List.map
    (fun uop ->
      let ea, result = exec_uop t insn pc uop in
      let reaction = t.hooks.Hooks.exec_uop ctx uop ~ea ~result in
      { uop; ea; reaction })
    uops

let step t =
  if t.halted then None
  else begin
    let pc = t.rip in
    t.insn_count <- t.insn_count + 1;
    match Chex86_os.Layout.extern_of_addr pc with
    | Some (name, `Entry) ->
      (* Native stub body. *)
      let ctx =
        {
          Hooks.pc;
          insn = None;
          stub = Some (name, Hooks.Entry);
          read_reg = read_reg t;
        }
      in
      let uops = t.hooks.Hooks.instrument ctx [ Uop.Nop ] in
      (* Injected capability micro-ops run before the native body so that
         capGen.Begin sees %rdi before the allocator clobbers state. *)
      let exec = execute_uops t ctx None pc uops in
      run_native t name;
      t.rip <- pc + 4;
      t.hooks.Hooks.on_retire ctx;
      Some { pc; insn = None; native = Some name; path = Decoder.Msrom; uops = exec; branch = None }
    | Some (name, `Exit) ->
      (* The Ret at the stub's registered exit point. *)
      let insn = Insn.Ret in
      let ctx =
        {
          Hooks.pc;
          insn = Some insn;
          stub = Some (name, Hooks.Exit);
          read_reg = read_reg t;
        }
      in
      let uops = t.hooks.Hooks.instrument ctx (Decoder.decode insn) in
      let exec = execute_uops t ctx (Some insn) pc uops in
      let branch, next = resolve_branch t pc insn in
      t.rip <- next;
      t.hooks.Hooks.on_retire ctx;
      Some { pc; insn = Some insn; native = None; path = Decoder.Simple; uops = exec; branch }
    | None -> (
      match Program.fetch t.proc.Chex86_os.Process.program pc with
      | None -> raise (Guest_fault (Printf.sprintf "execution left the text segment at %#x" pc))
      | Some insn ->
        let ctx = { Hooks.pc; insn = Some insn; stub = None; read_reg = read_reg t } in
        let path = Decoder.path insn in
        let uops = t.hooks.Hooks.instrument ctx (Decoder.decode insn) in
        let exec = execute_uops t ctx (Some insn) pc uops in
        let branch, next = resolve_branch t pc insn in
        t.rip <- next;
        t.hooks.Hooks.on_retire ctx;
        Some { pc; insn = Some insn; native = None; path; uops = exec; branch })
  end
