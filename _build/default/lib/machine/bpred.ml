(* LTAGE-style branch predictor, BTB and return-address stack.

   A bimodal base table plus three tagged tables indexed with
   geometrically increasing global-history lengths; the longest-history
   hit provides the prediction (TAGE's "provider"), with a simple
   allocate-on-mispredict policy.  Direction prediction drives the
   squash accounting in the timing model; target prediction uses the BTB
   for computed branches and the RAS for returns. *)

type tagged_entry = { mutable tag : int; mutable ctr : int; mutable useful : int }

type t = {
  bimodal : int array;  (* 2-bit counters *)
  tagged : tagged_entry array array;  (* 3 tables *)
  history_lengths : int array;
  mutable ghist : int;  (* global history, newest outcome in bit 0 *)
  btb : int array;  (* pc -> target *)
  btb_tags : int array;
  ras : int array;
  mutable ras_top : int;
  counters : Chex86_stats.Counter.group;
}

let bimodal_bits = 13
let tagged_bits = 10
let tag_bits = 9

let create counters =
  {
    bimodal = Array.make (1 lsl bimodal_bits) 2;
    tagged =
      Array.init 3 (fun _ ->
          Array.init (1 lsl tagged_bits) (fun _ -> { tag = -1; ctr = 4; useful = 0 }));
    history_lengths = [| 5; 15; 44 |];
    ghist = 0;
    btb = Array.make 4096 0;
    btb_tags = Array.make 4096 (-1);
    ras = Array.make 64 0;
    ras_top = 0;
    counters;
  }

let fold_history ghist len bits =
  let mask = (1 lsl len) - 1 in
  let h = ghist land mask in
  let rec fold h acc = if h = 0 then acc else fold (h lsr bits) (acc lxor (h land ((1 lsl bits) - 1))) in
  fold h 0

let tagged_index t i pc =
  let h = fold_history t.ghist t.history_lengths.(i) tagged_bits in
  ((pc lsr 2) lxor h lxor (i * 0x9E37)) land ((1 lsl tagged_bits) - 1)

let tagged_tag t i pc =
  let h = fold_history t.ghist t.history_lengths.(i) tag_bits in
  ((pc lsr 4) lxor h) land ((1 lsl tag_bits) - 1)

(* Longest-history hitting table, if any. *)
let provider t pc =
  let rec find i =
    if i < 0 then None
    else
      let e = t.tagged.(i).(tagged_index t i pc) in
      if e.tag = tagged_tag t i pc then Some (i, e) else find (i - 1)
  in
  find 2

let predict_direction t pc =
  match provider t pc with
  | Some (_, e) -> e.ctr >= 4
  | None -> t.bimodal.((pc lsr 2) land ((1 lsl bimodal_bits) - 1)) >= 2

let clamp v lo hi = max lo (min hi v)

let update_direction t pc ~taken =
  let predicted = predict_direction t pc in
  (match provider t pc with
  | Some (_, e) -> e.ctr <- clamp (e.ctr + if taken then 1 else -1) 0 7
  | None ->
    let idx = (pc lsr 2) land ((1 lsl bimodal_bits) - 1) in
    t.bimodal.(idx) <- clamp (t.bimodal.(idx) + if taken then 1 else -1) 0 3);
  (* Allocate a longer-history entry on misprediction. *)
  if predicted <> taken then begin
    let start = match provider t pc with Some (i, _) -> i + 1 | None -> 0 in
    let rec alloc i =
      if i <= 2 then begin
        let e = t.tagged.(i).(tagged_index t i pc) in
        if e.useful = 0 then begin
          e.tag <- tagged_tag t i pc;
          e.ctr <- (if taken then 4 else 3);
          e.useful <- 0
        end
        else begin
          e.useful <- e.useful - 1;
          alloc (i + 1)
        end
      end
    in
    alloc start
  end
  else begin
    match provider t pc with
    | Some (_, e) -> e.useful <- clamp (e.useful + 1) 0 3
    | None -> ()
  end;
  t.ghist <- ((t.ghist lsl 1) lor if taken then 1 else 0) land ((1 lsl 60) - 1);
  predicted = taken

let btb_lookup t pc =
  let idx = (pc lsr 2) land 4095 in
  if t.btb_tags.(idx) = pc then Some t.btb.(idx) else None

let btb_update t pc target =
  let idx = (pc lsr 2) land 4095 in
  t.btb_tags.(idx) <- pc;
  t.btb.(idx) <- target

let ras_push t addr =
  t.ras.(t.ras_top land 63) <- addr;
  t.ras_top <- t.ras_top + 1

let ras_pop t =
  if t.ras_top = 0 then 0
  else begin
    t.ras_top <- t.ras_top - 1;
    t.ras.(t.ras_top land 63)
  end

(* [resolve t ~pc ~kind ~taken ~target] returns whether the front-end
   prediction (direction and target) was correct, updating all state. *)
let resolve t ~pc ~kind ~taken ~target =
  let open Chex86_isa.Uop in
  match kind with
  | Cond _ ->
    let ok = update_direction t pc ~taken in
    Chex86_stats.Counter.incr t.counters
      (if ok then "bpred.cond_correct" else "bpred.cond_mispredict");
    ok
  | Jump -> true  (* direct unconditional: decoded target, always correct *)
  | Call ->
    ras_push t (pc + 4);
    true
  | Ret ->
    let predicted = ras_pop t in
    let ok = predicted = target in
    Chex86_stats.Counter.incr t.counters
      (if ok then "bpred.ras_correct" else "bpred.ras_mispredict");
    ok
  | Indirect ->
    let ok = match btb_lookup t pc with Some p -> p = target | None -> false in
    btb_update t pc target;
    Chex86_stats.Counter.incr t.counters
      (if ok then "bpred.btb_correct" else "bpred.btb_mispredict");
    ok
