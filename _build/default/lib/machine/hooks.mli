(** Monitor interface between the engine and a protection scheme. *)

type stub_phase = Entry | Exit

type ctx = {
  pc : int;
  insn : Chex86_isa.Insn.t option;  (** [None] inside a native stub body *)
  stub : (string * stub_phase) option;
  read_reg : Chex86_isa.Reg.t -> int;
}

type reaction = {
  extra_latency : int;  (** delays the micro-op's result (dependents see it) *)
  commit_latency : int;
      (** delays only validation/commit: off-critical-path shadow lookups *)
  flush : bool;  (** squash + refetch once this micro-op's checks resolve *)
  killed_uops : int;  (** injected checks turned into zero-idioms (PNA0) *)
}

val no_reaction : reaction

type t = {
  mutable instrument : ctx -> Chex86_isa.Uop.t list -> Chex86_isa.Uop.t list;
      (** decode-time: may inject Cap/Guard micro-ops into the crack *)
  mutable exec_uop :
    ctx -> Chex86_isa.Uop.t -> ea:int option -> result:int option -> reaction;
      (** execute-time: functional checks (may raise) + timing feedback *)
  mutable on_retire : ctx -> unit;  (** after each macro-op completes *)
}

(** Hooks that do nothing (the insecure machine). *)
val none : unit -> t
