(** Dependence-driven out-of-order timing model (Table III core).

    Consumes engine step records in program order; models fetch/decode
    bandwidth, ROB/IQ/LQ/SQ occupancy, register/memory dependences,
    functional-unit pools, branch mispredictions and alias-misprediction
    flushes. Wrong-path work appears as front-end stalls (squash cycles),
    the standard trace-driven simplification. Fills the counter group
    with ["pipeline.*"] events. *)

type t

val create : ?config:Config.t -> Chex86_mem.Hierarchy.t -> Chex86_stats.Counter.group -> t

(** Account one executed macro-op (with its crack and reactions). *)
val on_step : t -> Engine.step -> unit

(** Cycles up to the last committed micro-op. *)
val cycles : t -> int

(** Record the final cycle count into the counter group. *)
val finalize : t -> unit
