(** Functional execution engine producing per-macro-op step records. *)

open Chex86_isa

(** Raised on malformed guest execution (fetch outside text, type-confused
    micro-ops). *)
exception Guest_fault of string

type exec_uop = { uop : Uop.t; ea : int option; reaction : Hooks.reaction }
type branch_info = { kind : Uop.branch_kind; taken : bool; target : int }

type step = {
  pc : int;
  insn : Insn.t option;  (** [None] for a native stub body *)
  native : string option;
  path : Decoder.path;
  uops : exec_uop list;
  branch : branch_info option;
}

type t = {
  proc : Chex86_os.Process.t;
  hooks : Hooks.t;
  regs : int array;
  xmm : float array;
  tmps : int array;
  mutable eq : bool;
  mutable lt : bool;
  mutable rip : int;
  mutable halted : bool;
  mutable insn_count : int;
  mutable rand_state : int;
  mutable on_access : addr:int -> write:bool -> unit;
}

(** [entry] (a label) and [stack_top] support SMP hardware threads. *)
val create : ?hooks:Hooks.t -> ?entry:string -> ?stack_top:int -> Chex86_os.Process.t -> t
val halted : t -> bool
val insn_count : t -> int
val rip : t -> int
val read_reg : t -> Reg.t -> int
val write_reg : t -> Reg.t -> int -> unit

(** Execute one macro-op (or stub); [None] once halted. *)
val step : t -> step option
