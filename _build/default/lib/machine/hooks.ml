(* Monitor interface between the functional engine and a protection
   scheme (CHEx86, ASan, or nothing).

   [instrument] runs at decode time and may inject Cap/Guard micro-ops
   into the crack (the microcode customization path).  [exec_uop] runs
   when a micro-op executes, with the resolved effective address; it
   performs functional checks (raising on violations) and returns a
   [reaction] that feeds the timing model: extra latency from shadow
   structures, a pipeline-flush request (alias misprediction recovery,
   P0AN), and zero-idiom kills of already-injected checks (PNA0). *)

type stub_phase = Entry | Exit

type ctx = {
  pc : int;
  insn : Chex86_isa.Insn.t option;  (* None while inside a native stub body *)
  stub : (string * stub_phase) option;
  read_reg : Chex86_isa.Reg.t -> int;
}

type reaction = {
  extra_latency : int;  (* delays the micro-op's result (dependents see it) *)
  commit_latency : int;
  (* delays only validation/commit: shadow-structure lookups that run off
     the critical path of the access (capability cache misses, alias
     table walks) *)
  flush : bool;  (* squash + refetch once this micro-op's checks resolve *)
  killed_uops : int;  (* injected checks turned into zero-idioms *)
}

let no_reaction = { extra_latency = 0; commit_latency = 0; flush = false; killed_uops = 0 }

type t = {
  mutable instrument : ctx -> Chex86_isa.Uop.t list -> Chex86_isa.Uop.t list;
  mutable exec_uop :
    ctx -> Chex86_isa.Uop.t -> ea:int option -> result:int option -> reaction;
  mutable on_retire : ctx -> unit;  (* after a macro-op completes *)
}

let none () =
  {
    instrument = (fun _ uops -> uops);
    exec_uop = (fun _ _ ~ea:_ ~result:_ -> no_reaction);
    on_retire = (fun _ -> ());
  }
