(** Security evaluation sweep (§VII-A): every exploit run on the
    insecure baseline and under a protection configuration. *)

type result = {
  exploit : Chex86_exploits.Exploit.t;
  insecure : Runner.run;
  under_protection : Runner.run;
}

val evaluate : ?config:Runner.config -> Chex86_exploits.Exploit.t -> result
val sweep : ?config:Runner.config -> Chex86_exploits.Exploit.t list -> result list
val blocked : result -> bool
val blocked_as_expected : result -> bool

(** The attack did not set the pwned flag under protection. *)
val corruption_prevented : result -> bool

type suite_summary = {
  suite : Chex86_exploits.Exploit.suite;
  total : int;
  blocked : int;
  expected_class : int;
  prevented : int;
  insecure_corrupts : int;
  insecure_aborts : int;
}

val summarize : Chex86_exploits.Exploit.suite -> result list -> suite_summary

(** Violation-class histogram of the blocked exploits. *)
val class_breakdown : result list -> (string * int) list
