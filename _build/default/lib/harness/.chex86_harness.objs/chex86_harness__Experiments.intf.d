lib/harness/experiments.mli:
