lib/harness/security.mli: Chex86_exploits Runner
