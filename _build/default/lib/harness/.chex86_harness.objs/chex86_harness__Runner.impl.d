lib/harness/runner.ml: Chex86 Chex86_asan Chex86_exploits Chex86_isa Chex86_machine Chex86_mem Chex86_os Chex86_stats Chex86_workloads Exploit_defs Hashtbl Option Printexc Printf
