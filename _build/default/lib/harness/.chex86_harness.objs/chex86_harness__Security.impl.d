lib/harness/security.ml: Chex86 Chex86_exploits Hashtbl List Option Runner
