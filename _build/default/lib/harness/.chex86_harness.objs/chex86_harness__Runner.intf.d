lib/harness/runner.mli: Chex86 Chex86_isa Chex86_os Chex86_stats Chex86_workloads
