lib/harness/multicore.mli: Chex86
