lib/harness/experiments.ml: Chex86 Chex86_exploits Chex86_machine Chex86_os Chex86_stats Chex86_workloads List Printf Runner Security String Sys
