lib/harness/ablations.mli:
