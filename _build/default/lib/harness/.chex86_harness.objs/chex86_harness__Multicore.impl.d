lib/harness/multicore.ml: Chex86 Chex86_stats Chex86_workloads Experiments List Printf String
