lib/harness/ablations.ml: Chex86 Chex86_isa Chex86_stats Chex86_workloads Experiments List Printf Runner String
