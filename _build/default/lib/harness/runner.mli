(** Unified runner over protection configurations, with memoized
    workload runs shared between bench targets. *)

type config = Chex of Chex86.Variant.t | Asan

val insecure : config
val prediction : config
val config_name : config -> string

type outcome =
  | Completed
  | Blocked of Chex86.Violation.kind
  | Aborted of string  (** allocator integrity abort *)
  | Faulted of string
  | Budget_exhausted

type run = {
  outcome : outcome;
  macro_insns : int;
  uops : int;
  uops_injected : int;
  uops_killed : int;
  cycles : int;
  counters : Chex86_stats.Counter.group;
  shadow_bytes : int;
  resident_bytes : int;
  mem_bytes : int;
  pwned : bool;  (** the exploit pwned flag, read back from guest memory *)
  profile : Chex86_os.Heap_profile.report option;
}

val run_program :
  ?timing:bool ->
  ?max_insns:int ->
  ?profile:bool ->
  ?configure:(Chex86.Monitor.t -> unit) ->
  config ->
  Chex86_isa.Program.t ->
  run

(** Memoized on (workload, config, scale, timing, profile, tag). *)
val run_workload :
  ?tag:string ->
  ?timing:bool ->
  ?profile:bool ->
  ?configure:(Chex86.Monitor.t -> unit) ->
  scale:int ->
  config ->
  Chex86_workloads.Bench_spec.t ->
  run
