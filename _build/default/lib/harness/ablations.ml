(* Ablation studies for the design choices DESIGN.md calls out.

   Each ablation switches off (or resizes) one mechanism of the
   prediction-driven CHEx86 and measures its contribution on the
   pointer-intensive subset of the workloads:

   - capability cache size sweep (the Fig 3 motivation: a handful of
     allocations are in use at a time);
   - alias-predictor stride field and non-reload blacklist;
   - the TLB alias-hosting filter (how many shadow lookups it saves);
   - the 32-entry alias victim cache;
   - context-sensitive scope (enforced text fraction vs micro-op bloat). *)

module Render = Chex86_stats.Render
module Counter = Chex86_stats.Counter
module W = Chex86_workloads.Workloads

let pointer_workloads = [ "perlbench"; "gcc"; "mcf"; "xalancbmk"; "leela"; "canneal" ]

let scale = Experiments.scale

let run ~tag variant name =
  Runner.run_workload ~tag ~scale (Runner.Chex variant) (W.find name)

let cap_cache_sweep () =
  let sizes = [ 16; 32; 64; 128; 256 ] in
  let rows =
    List.map
      (fun name ->
        name
        :: List.map
             (fun entries ->
               let variant =
                 Chex86.Variant.make ~cap_cache_entries:entries
                   Chex86.Variant.Microcode_prediction
               in
               let r = run ~tag:(Printf.sprintf "capsweep%d" entries) variant name in
               Render.percent
                 (Counter.ratio r.Runner.counters ~num:"capcache.miss" ~den:"capcache.hit"))
             sizes)
      pointer_workloads
  in
  String.concat "\n"
    [
      Render.banner "Ablation: capability cache size sweep (miss rate)";
      Render.table
        ~header:("Benchmark" :: List.map (fun s -> Printf.sprintf "%de" s) sizes)
        rows;
    ]

let predictor_ablation () =
  let configs =
    [
      ("full", Chex86.Variant.make Chex86.Variant.Microcode_prediction);
      ( "no stride",
        Chex86.Variant.make ~predictor_stride:false Chex86.Variant.Microcode_prediction );
      ( "no blacklist",
        Chex86.Variant.make ~predictor_blacklist:false Chex86.Variant.Microcode_prediction
      );
    ]
  in
  let rows =
    List.map
      (fun name ->
        name
        :: List.concat_map
             (fun (tag, variant) ->
               let r = run ~tag:("pred-" ^ tag) variant name in
               let c = r.Runner.counters in
               let events = Counter.get c "alias.pred_events" in
               let wrong =
                 Counter.get c "alias.pred_pna0"
                 + Counter.get c "alias.pred_p0an"
                 + Counter.get c "alias.pred_pman"
               in
               [
                 (if events = 0 then "n/a"
                  else Render.percent (float_of_int wrong /. float_of_int events));
                 string_of_int (Counter.get c "pipeline.uops_killed");
               ])
             configs)
      pointer_workloads
  in
  String.concat "\n"
    [
      Render.banner "Ablation: alias predictor features (mispredict rate / killed uops)";
      Render.table
        ~header:
          [
            "Benchmark";
            "full";
            "kills";
            "no-stride";
            "kills";
            "no-blacklist";
            "kills";
          ]
        rows;
    ]

let tlb_filter_ablation () =
  let rows =
    List.map
      (fun name ->
        let with_filter =
          run ~tag:"tlb-on" (Chex86.Variant.make Chex86.Variant.Microcode_prediction) name
        in
        let without =
          run ~tag:"tlb-off"
            (Chex86.Variant.make ~tlb_alias_filter:false
               Chex86.Variant.Microcode_prediction)
            name
        in
        let accesses (r : Runner.run) =
          Counter.get r.Runner.counters "aliascache.hit"
          + Counter.get r.Runner.counters "aliascache.victim_hit"
          + Counter.get r.Runner.counters "aliascache.miss"
        in
        let filtered = Counter.get with_filter.Runner.counters "alias.tlb_filtered" in
        [
          name;
          string_of_int (accesses with_filter);
          string_of_int (accesses without);
          string_of_int filtered;
          (let a = accesses without in
           if a = 0 then "n/a"
           else Render.percent (1. -. (float_of_int (accesses with_filter) /. float_of_int a)));
        ])
      pointer_workloads
  in
  String.concat "\n"
    [
      Render.banner "Ablation: TLB alias-hosting filter (alias-cache lookups saved)";
      Render.table
        ~header:[ "Benchmark"; "Lookups (filter)"; "Lookups (none)"; "TLB-filtered"; "Saved" ]
        rows;
    ]

let victim_cache_ablation () =
  let miss (r : Runner.run) =
    let hit = Counter.get r.Runner.counters "aliascache.hit"
    and victim = Counter.get r.Runner.counters "aliascache.victim_hit"
    and miss = Counter.get r.Runner.counters "aliascache.miss" in
    if hit + victim + miss < 200 then None
    else Some (float_of_int miss /. float_of_int (hit + victim + miss))
  in
  let rows =
    List.map
      (fun name ->
        let with_victim =
          run ~tag:"vc-on" (Chex86.Variant.make Chex86.Variant.Microcode_prediction) name
        in
        let without =
          run ~tag:"vc-off"
            (Chex86.Variant.make ~alias_victim_entries:0
               Chex86.Variant.Microcode_prediction)
            name
        in
        let opt = function Some r -> Render.percent r | None -> "n/a" in
        [ name; opt (miss with_victim); opt (miss without) ])
      pointer_workloads
  in
  String.concat "\n"
    [
      Render.banner "Ablation: 32-entry alias victim cache (alias-cache miss rate)";
      Render.table ~header:[ "Benchmark"; "with victim"; "no victim" ] rows;
    ]

(* Context sensitivity: enforce only a prefix of the text segment and
   watch injected micro-ops fall while allocations stay tracked. *)
let scope_sweep () =
  let fractions = [ 0; 25; 50; 75; 100 ] in
  let rows =
    List.map
      (fun name ->
        let w = W.find name in
        let program = w.Chex86_workloads.Bench_spec.build ~scale in
        let text_len = 4 * Chex86_isa.Program.length program in
        name
        :: List.map
             (fun pct ->
               let hi = Chex86_isa.Program.text_base + (text_len * pct / 100) in
               let scope =
                 Chex86.Variant.Ranges [ (Chex86_isa.Program.text_base, hi) ]
               in
               let variant =
                 Chex86.Variant.make ~scope Chex86.Variant.Microcode_prediction
               in
               let r =
                 Runner.run_workload ~tag:(Printf.sprintf "scope%d" pct) ~scale
                   (Runner.Chex variant) w
               in
               Printf.sprintf "%.1f%%"
                 (100.
                 *. float_of_int r.Runner.uops_injected
                 /. float_of_int (max 1 r.Runner.uops)))
             fractions)
      [ "perlbench"; "mcf"; "canneal" ]
  in
  String.concat "\n"
    [
      Render.banner
        "Ablation: context-sensitive scope (injected uop share vs enforced text fraction)";
      Render.table
        ~header:("Benchmark" :: List.map (fun p -> Printf.sprintf "%d%%" p) fractions)
        rows;
      "(allocations are tracked at every scope; only check injection is scoped)";
    ]

let all =
  [
    ("ablation-capcache", cap_cache_sweep);
    ("ablation-predictor", predictor_ablation);
    ("ablation-tlb", tlb_filter_ablation);
    ("ablation-victim", victim_cache_ablation);
    ("ablation-scope", scope_sweep);
  ]
