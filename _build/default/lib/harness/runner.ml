(* Unified runner for benchmarks and exploits across every protection
   configuration (the six bars of Fig 6 plus ASan), with memoization so
   the bench targets that share runs (Fig 6 / Table IV / Fig 9) only
   simulate each (workload, configuration) pair once. *)

module Machine = Chex86_machine
module Os = Chex86_os

type config =
  | Chex of Chex86.Variant.t
  | Asan

let insecure = Chex (Chex86.Variant.make Chex86.Variant.Insecure)
let prediction = Chex Chex86.Variant.default

let config_name = function
  | Chex v -> Chex86.Variant.scheme_name v.Chex86.Variant.scheme
  | Asan -> "ASan"

type outcome =
  | Completed
  | Blocked of Chex86.Violation.kind
  | Aborted of string  (* allocator integrity abort *)
  | Faulted of string
  | Budget_exhausted

type run = {
  outcome : outcome;
  macro_insns : int;
  uops : int;
  uops_injected : int;
  uops_killed : int;
  cycles : int;
  counters : Chex86_stats.Counter.group;
  shadow_bytes : int;  (* capability/alias tables or ASan shadow *)
  resident_bytes : int;
  mem_bytes : int;  (* DRAM traffic *)
  pwned : bool;
  profile : Os.Heap_profile.report option;
}

let read_pwned proc program =
  match Chex86_isa.Program.find_global program Exploit_defs.pwned_global with
  | None -> false
  | Some g ->
    Chex86_mem.Image.read64 proc.Os.Process.mem g.Chex86_isa.Program.addr
    = Chex86_exploits.Exploit.pwned_value

let of_sim_result program proc ~shadow_bytes ~profile
    (result : Machine.Simulator.result) outcome =
  {
    outcome;
    macro_insns = result.macro_insns;
    uops = result.uops;
    uops_injected = result.uops_injected;
    uops_killed = result.uops_killed;
    cycles = result.cycles;
    counters = result.counters;
    shadow_bytes;
    resident_bytes = result.resident_bytes;
    mem_bytes = result.mem_bytes;
    pwned = read_pwned proc program;
    profile;
  }

(* Execute [program] under [config].  [timing:false] runs the functional
   engine only (used for the security sweep, which needs no cycles). *)
let run_program ?(timing = true) ?(max_insns = 50_000_000) ?(profile = false)
    ?(configure = fun (_ : Chex86.Monitor.t) -> ()) config program =
  match config with
  | Chex variant ->
    let profile_interval = if profile then Some 100_000 else None in
    let run =
      Chex86.Sim.run ~variant ~max_insns ~timing ~configure ?profile_interval program
    in
    let outcome =
      match run.Chex86.Sim.outcome with
      | Chex86.Sim.Completed -> Completed
      | Chex86.Sim.Violation_detected kind -> Blocked kind
      | Chex86.Sim.Heap_abort msg -> Aborted msg
      | Chex86.Sim.Guest_fault msg -> Faulted msg
      | Chex86.Sim.Budget_exhausted -> Budget_exhausted
    in
    of_sim_result program run.Chex86.Sim.proc
      ~shadow_bytes:(Chex86.Monitor.shadow_storage_bytes run.Chex86.Sim.monitor)
      ~profile:(Option.map Os.Heap_profile.report run.Chex86.Sim.profile)
      run.Chex86.Sim.result outcome
  | Asan ->
    let monitor, result, proc = Chex86_asan.Asan_monitor.run ~timing ~max_insns program in
    let outcome =
      match result.Machine.Simulator.outcome with
      | Machine.Simulator.Finished -> Completed
      | Machine.Simulator.Budget_exhausted -> Budget_exhausted
      | Machine.Simulator.Faulted (Chex86.Violation.Security_violation kind) ->
        Blocked kind
      | Machine.Simulator.Faulted (Os.Allocator.Heap_abort msg) -> Aborted msg
      | Machine.Simulator.Faulted (Machine.Engine.Guest_fault msg) -> Faulted msg
      | Machine.Simulator.Faulted e -> Faulted (Printexc.to_string e)
    in
    {
      outcome;
      macro_insns = result.macro_insns;
      uops = result.uops;
      uops_injected = result.uops_injected;
      uops_killed = result.uops_killed;
      cycles = result.cycles;
      counters = result.counters;
      shadow_bytes = Chex86_asan.Asan_monitor.storage_bytes monitor;
      resident_bytes = result.resident_bytes;
      mem_bytes = result.mem_bytes;
      pwned = read_pwned proc program;
      profile = None;
    }

(* --- memoized workload runs ---------------------------------------------- *)

let memo : (string, run) Hashtbl.t = Hashtbl.create 64

let run_workload ?(tag = "") ?(timing = true) ?(profile = false) ?configure ~scale config
    (w : Chex86_workloads.Bench_spec.t) =
  let key =
    Printf.sprintf "%s/%s/%d/%b/%b/%s" w.name (config_name config) scale timing profile
      tag
  in
  match Hashtbl.find_opt memo key with
  | Some run -> run
  | None ->
    let run = run_program ~timing ~profile ?configure config (w.build ~scale) in
    Hashtbl.add memo key run;
    run
