(** Ablation studies of CHEx86's design choices: capability-cache size,
    alias-predictor features, the TLB alias-hosting filter, the alias
    victim cache, and context-sensitive scope. *)

val cap_cache_sweep : unit -> string
val predictor_ablation : unit -> string
val tlb_filter_ablation : unit -> string
val victim_cache_ablation : unit -> string
val scope_sweep : unit -> string

(** All ablation targets by bench name. *)
val all : (string * (unit -> string)) list
