(** Multicore experiment: multithreaded canneal with the paper's
    cross-core capability/alias-cache invalidation traffic. *)

val run_one : threads:int -> Chex86.Variant.t -> Chex86.Smp.result
val report : unit -> string
