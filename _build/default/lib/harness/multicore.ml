(* Multicore experiment: the paper's multithreaded PARSEC setting with
   cross-core capability/alias-cache invalidations (§IV-C / §V-C).

   Runs the canneal-style multithreaded workload on 1/2/4 hardware
   threads under the insecure baseline and the prediction-driven CHEx86,
   reporting cycle counts (slowest core), the CHEx86 overhead at each
   core count, and the invalidation traffic the protection generates. *)

module Render = Chex86_stats.Render

let run_one ~threads variant =
  let program = Chex86_workloads.Parallel.canneal_mt ~threads ~scale:Experiments.scale in
  Chex86.Smp.run ~variant ~threads:(Chex86_workloads.Parallel.thread_labels threads)
    program

let report () =
  let rows =
    List.map
      (fun threads ->
        let base = run_one ~threads (Chex86.Variant.make Chex86.Variant.Insecure) in
        let pred = run_one ~threads Chex86.Variant.default in
        let overhead =
          100.
          *. (float_of_int pred.Chex86.Smp.cycles /. float_of_int base.Chex86.Smp.cycles
             -. 1.)
        in
        [
          string_of_int threads;
          string_of_int base.Chex86.Smp.cycles;
          string_of_int pred.Chex86.Smp.cycles;
          Printf.sprintf "%.1f%%" overhead;
          string_of_int pred.Chex86.Smp.cap_invalidations;
          string_of_int pred.Chex86.Smp.alias_invalidations;
        ])
      [ 1; 2; 4 ]
  in
  String.concat "\n"
    [
      Render.banner
        "Multicore: canneal-mt with cross-core invalidations (Sections IV-C / V-C)";
      Render.table
        ~header:
          [
            "Threads";
            "Cycles (insecure)";
            "Cycles (CHEx86)";
            "Overhead";
            "Cap invalidations";
            "Alias invalidations";
          ]
        rows;
      "(cycles = slowest core; invalidations are deliveries to remote caches)";
    ]
