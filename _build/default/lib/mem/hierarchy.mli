(** L1I/L1D + L2 + DRAM timing model with bandwidth accounting. *)

type config = {
  l1_sets : int;
  l1_ways : int;
  l2_sets : int;
  l2_ways : int;
  line_bytes : int;
  l1_latency : int;
  l2_latency : int;
  mem_latency : int;
  tlb_walk_latency : int;
}

(** Table III-like: 32 KB 8-way L1s, 256 KB L2, 64 B lines. *)
val default_config : config

type t

val create : ?config:config -> Chex86_stats.Counter.group -> t

(** The data TLB (carries the alias-hosting bits). *)
val dtlb : t -> Tlb.t

type kind = Inst | Data

(** [access t ~kind ~write addr] returns the access latency in cycles and
    updates cache state, TLB state and DRAM traffic counters. *)
val access : t -> kind:kind -> write:bool -> int -> int

(** Extra DRAM traffic in bytes charged by shadow structures etc. *)
val mem_traffic : t -> int -> unit

(** Total DRAM bytes transferred so far. *)
val mem_bytes : t -> int
