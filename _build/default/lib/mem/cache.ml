(* Generic set-associative cache model with true-LRU replacement.

   Used for the L1/L2 data and instruction caches, and reused (with
   [sets = 1]) for the fully associative in-processor capability cache
   and the alias victim cache of the paper.  Only tags are modelled; the
   data payload lives in the functional memory image.

   An optional victim cache catches blocks evicted from the main array,
   as in the paper's "256-entry 2-way alias cache augmented by a
   32-entry victim cache". *)

type line = { mutable tag : int; mutable valid : bool; mutable stamp : int }

type t = {
  name : string;
  sets : line array array;
  set_bits : int;
  line_bits : int;
  hash_index : bool;  (* XOR-fold the block number into the set index *)
  victim : t option;
  counters : Chex86_stats.Counter.group;
  mutable clock : int;
}

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2)

let create ?victim ?(hash_index = false) ~name ~sets ~ways ~line_bytes counters =
  if sets land (sets - 1) <> 0 then invalid_arg "Cache.create: sets not a power of 2";
  {
    name;
    sets = Array.init sets (fun _ -> Array.init ways (fun _ -> { tag = -1; valid = false; stamp = 0 }));
    set_bits = log2 sets;
    line_bits = log2 line_bytes;
    hash_index;
    victim;
    counters;
    clock = 0;
  }

let set_count c = Array.length c.sets

let index_and_tag c addr =
  let block = addr lsr c.line_bits in
  let idx =
    if c.hash_index then
      (block lxor (block lsr c.set_bits) lxor (block lsr (2 * c.set_bits)))
      land (set_count c - 1)
    else block land (set_count c - 1)
  in
  (idx, block lsr c.set_bits)

let find_way set tag =
  let n = Array.length set in
  let rec go i = if i >= n then None else if set.(i).valid && set.(i).tag = tag then Some i else go (i + 1) in
  go 0

let lru_way set =
  let best = ref 0 in
  for i = 1 to Array.length set - 1 do
    if (not set.(i).valid) && set.(!best).valid then best := i
    else if set.(i).valid = set.(!best).valid && set.(i).stamp < set.(!best).stamp then
      best := i
  done;
  !best

(* Insert [tag] into [set], returning the evicted tag if a valid line was
   displaced. *)
let insert c set tag =
  let way = lru_way set in
  let victim_tag = if set.(way).valid then Some set.(way).tag else None in
  set.(way).tag <- tag;
  set.(way).valid <- true;
  set.(way).stamp <- c.clock;
  victim_tag

(* Probe without the victim path. *)
let probe_main c addr =
  let idx, tag = index_and_tag c addr in
  let set = c.sets.(idx) in
  match find_way set tag with
  | Some way ->
    set.(way).stamp <- c.clock;
    true
  | None -> false

let access c ~write:_ addr =
  c.clock <- c.clock + 1;
  let idx, tag = index_and_tag c addr in
  let set = c.sets.(idx) in
  match find_way set tag with
  | Some way ->
    set.(way).stamp <- c.clock;
    Chex86_stats.Counter.incr c.counters (c.name ^ ".hit");
    true
  | None ->
    let hit_in_victim =
      match c.victim with
      | None -> false
      | Some v ->
        v.clock <- v.clock + 1;
        if probe_main v addr then begin
          (* Swap back into the main array. *)
          (match insert c set tag with
          | Some evicted ->
            let eaddr = ((evicted lsl c.set_bits) lor idx) lsl c.line_bits in
            let vidx, vtag = index_and_tag v eaddr in
            ignore (insert v v.sets.(vidx) vtag)
          | None -> ());
          true
        end
        else false
    in
    if hit_in_victim then begin
      Chex86_stats.Counter.incr c.counters (c.name ^ ".victim_hit");
      true
    end
    else begin
      Chex86_stats.Counter.incr c.counters (c.name ^ ".miss");
      (match insert c set tag with
      | Some evicted ->
        (match c.victim with
        | Some v ->
          let eaddr = ((evicted lsl c.set_bits) lor idx) lsl c.line_bits in
          let vidx, vtag = index_and_tag v eaddr in
          ignore (insert v v.sets.(vidx) vtag)
        | None -> ())
      | None -> ());
      false
    end

let invalidate c addr =
  let idx, tag = index_and_tag c addr in
  let set = c.sets.(idx) in
  (match find_way set tag with Some way -> set.(way).valid <- false | None -> ());
  match c.victim with None -> () | Some v -> (
    let vidx, vtag = index_and_tag v addr in
    match find_way v.sets.(vidx) vtag with
    | Some way -> v.sets.(vidx).(way).valid <- false
    | None -> ())

let invalidate_all c =
  Array.iter (fun set -> Array.iter (fun l -> l.valid <- false) set) c.sets;
  match c.victim with
  | None -> ()
  | Some v -> Array.iter (fun set -> Array.iter (fun l -> l.valid <- false) set) v.sets

let hits c = Chex86_stats.Counter.get c.counters (c.name ^ ".hit")

let misses c = Chex86_stats.Counter.get c.counters (c.name ^ ".miss")

let miss_rate c =
  let vh = Chex86_stats.Counter.get c.counters (c.name ^ ".victim_hit") in
  let h = hits c + vh and m = misses c in
  if h + m = 0 then 0. else float_of_int m /. float_of_int (h + m)
