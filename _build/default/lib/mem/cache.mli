(** Generic set-associative cache with true LRU and an optional victim
    cache; [sets = 1] gives a fully associative cache. *)

type t

(** [create ?victim ~name ~sets ~ways ~line_bytes counters] — hit/miss
    events are counted as ["<name>.hit"], ["<name>.miss"] and
    ["<name>.victim_hit"] in [counters]. [sets] must be a power of two. *)
val create :
  ?victim:t ->
  ?hash_index:bool ->
  name:string ->
  sets:int ->
  ways:int ->
  line_bytes:int ->
  Chex86_stats.Counter.group ->
  t

(** [access c ~write addr] returns whether the access hit (main array or
    victim); misses allocate. *)
val access : t -> write:bool -> int -> bool

val invalidate : t -> int -> unit
val invalidate_all : t -> unit
val hits : t -> int
val misses : t -> int

(** Misses / (hits + victim hits + misses); 0. before any access. *)
val miss_rate : t -> float
