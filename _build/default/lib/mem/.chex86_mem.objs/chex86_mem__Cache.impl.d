lib/mem/cache.ml: Array Chex86_stats
