lib/mem/image.ml: Bytes Char Hashtbl Int64
