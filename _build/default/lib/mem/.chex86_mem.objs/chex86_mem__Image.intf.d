lib/mem/image.mli:
