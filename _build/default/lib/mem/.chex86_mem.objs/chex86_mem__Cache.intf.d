lib/mem/cache.mli: Chex86_stats
