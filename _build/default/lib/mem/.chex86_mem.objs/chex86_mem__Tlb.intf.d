lib/mem/tlb.mli: Chex86_stats
