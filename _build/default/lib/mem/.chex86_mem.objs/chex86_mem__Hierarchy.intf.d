lib/mem/hierarchy.mli: Chex86_stats Tlb
