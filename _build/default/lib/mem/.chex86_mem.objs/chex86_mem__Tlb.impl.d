lib/mem/tlb.ml: Array Chex86_stats Hashtbl Image
