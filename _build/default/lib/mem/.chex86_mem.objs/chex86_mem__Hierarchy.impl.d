lib/mem/hierarchy.ml: Cache Chex86_stats Hashtbl Tlb
