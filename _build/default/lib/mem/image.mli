(** Sparse byte-addressable guest memory with first-touch page allocation. *)

val page_bits : int
val page_size : int

type t

val create : unit -> t
val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit

(** [read mem addr n] reads an n-byte (n <= 8) little-endian value. *)
val read : t -> int -> int -> int

val write : t -> int -> int -> int -> unit
val read64 : t -> int -> int
val write64 : t -> int -> int -> unit
val zero_range : t -> int -> int -> unit

(** Pages touched so far (resident set size). *)
val resident_pages : t -> int

val resident_bytes : t -> int

(** Bit-exact IEEE double accessors. *)
val read_float : t -> int -> float

val write_float : t -> int -> float -> unit
