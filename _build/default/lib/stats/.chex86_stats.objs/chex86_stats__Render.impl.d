lib/stats/render.ml: Array Float List Printf String
