lib/stats/rng.mli:
