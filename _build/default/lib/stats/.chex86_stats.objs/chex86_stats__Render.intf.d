lib/stats/render.mli:
