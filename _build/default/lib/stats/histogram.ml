(* Integer-valued histogram with streaming insertion.

   Used for allocation-size distributions (Fig 3), temporal PID stride
   histograms (Table II) and squash-length distributions (Fig 8).  Values
   are kept exactly in a hash table keyed by sample value; summary
   statistics are derived on demand. *)

type t = {
  buckets : (int, int ref) Hashtbl.t;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { buckets = Hashtbl.create 64; count = 0; sum = 0; min_v = max_int; max_v = min_int }

let add ?(weight = 1) hist value =
  (match Hashtbl.find_opt hist.buckets value with
  | Some cell -> cell := !cell + weight
  | None -> Hashtbl.add hist.buckets value (ref weight));
  hist.count <- hist.count + weight;
  hist.sum <- hist.sum + (value * weight);
  if value < hist.min_v then hist.min_v <- value;
  if value > hist.max_v then hist.max_v <- value

let count hist = hist.count
let total hist = hist.sum
let min_value hist = if hist.count = 0 then 0 else hist.min_v
let max_value hist = if hist.count = 0 then 0 else hist.max_v

let mean hist =
  if hist.count = 0 then 0. else float_of_int hist.sum /. float_of_int hist.count

let sorted hist =
  Hashtbl.fold (fun v cell acc -> (v, !cell) :: acc) hist.buckets []
  |> List.sort compare

(* Smallest value v such that at least [q] of the mass is <= v. *)
let percentile hist q =
  if hist.count = 0 then 0
  else begin
    let threshold = q *. float_of_int hist.count in
    let rec walk acc = function
      | [] -> hist.max_v
      | (v, n) :: rest ->
        let acc = acc + n in
        if float_of_int acc >= threshold then v else walk acc rest
    in
    walk 0 (sorted hist)
  end

let mode hist =
  List.fold_left
    (fun (best_v, best_n) (v, n) -> if n > best_n then (v, n) else (best_v, best_n))
    (0, 0) (sorted hist)
  |> fst

let fold f init hist = List.fold_left (fun acc (v, n) -> f acc v n) init (sorted hist)

let pp ppf hist =
  Format.fprintf ppf "n=%d mean=%.2f min=%d max=%d p50=%d p99=%d" hist.count (mean hist)
    (min_value hist) (max_value hist) (percentile hist 0.50) (percentile hist 0.99)
