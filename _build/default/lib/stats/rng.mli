(** Deterministic splitmix64 PRNG; each consumer carries its own stream. *)

type t

val create : int -> t
val next_int64 : t -> int64

(** Uniform int in [0, bound); raises [Invalid_argument] if bound <= 0. *)
val int : t -> int -> int

val bool : t -> bool

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform pick from a non-empty array. *)
val choose : t -> 'a array -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
