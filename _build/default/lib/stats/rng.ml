(* Deterministic splitmix64 PRNG.

   Workload generation and the RIPE exploit sweep must be reproducible
   across runs and independent of global [Random] state, so every consumer
   carries its own seeded stream. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 rng =
  let open Int64 in
  rng.state <- add rng.state 0x9E3779B97F4A7C15L;
  let z = rng.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Non-negative int in [0, bound).  The raw draw keeps 62 bits so that
   [Int64.to_int] cannot wrap into OCaml's sign bit. *)
let int rng bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 rng) 2) in
  raw mod bound

let bool rng = Int64.logand (next_int64 rng) 1L = 1L

let float rng =
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 rng) 11) in
  float_of_int raw /. float_of_int (1 lsl 53)

(* Pick uniformly from a non-empty array. *)
let choose rng options =
  if Array.length options = 0 then invalid_arg "Rng.choose: empty";
  options.(int rng (Array.length options))

let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
