(** ASan runtime: redzone allocator with a freed-chunk quarantine.
    Double/invalid frees raise [Chex86.Violation.Security_violation]. *)

val redzone : int
val quarantine_cap_bytes : int

type t

val create : Chex86_os.Allocator.t -> Shadow.t -> Chex86_stats.Counter.group -> t
val malloc : t -> int -> int
val free : t -> int -> unit

(** Redzones + quarantined payloads + shadow pages (Fig 9). *)
val storage_bytes : t -> int

(** Package as the process runtime behind the libc stubs. *)
val as_runtime : t -> Chex86_mem.Image.t -> Chex86_os.Process.runtime
