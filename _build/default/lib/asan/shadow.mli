(** ASan shadow memory: one state per 8-byte application granule. *)

type state =
  | Addressable
  | Partial of int  (** first k bytes addressable, 1 <= k <= 7 *)
  | Heap_redzone
  | Freed

type t

val create : Chex86_stats.Counter.group -> t
val set_state : t -> int -> state -> unit
val state_of : t -> int -> state
val poison : t -> int -> int -> state -> unit

(** Unpoison [len] bytes, encoding a trailing partial granule. *)
val unpoison : t -> int -> int -> unit

(** Full addressability of a [width]-byte access; the poison reason on
    failure. *)
val check : t -> int -> int -> (unit, state) result

(** Touched 4 KB shadow pages (each covering 32 KB of memory). *)
val storage_bytes : t -> int
