(* ASan runtime: redzone allocator with a quarantine.

   malloc(n) reserves  [redzone | payload | redzone]  from the underlying
   allocator, poisons the redzones and unpoisons the payload; free(p)
   poisons the whole payload as [Freed] and parks the pointer in a FIFO
   quarantine so that use-after-free is caught until the quarantine
   recycles it.  Double free and invalid free are detected against the
   allocation registry, as the real ASan runtime does. *)

let redzone = 16
let quarantine_cap_bytes = 1 lsl 18

type t = {
  inner : Chex86_os.Allocator.t;
  shadow : Shadow.t;
  live : (int, int) Hashtbl.t;  (* user ptr -> payload size *)
  quarantine : (int * int) Queue.t;  (* (user ptr, payload size) *)
  mutable quarantine_bytes : int;
  mutable redzone_bytes : int;
  counters : Chex86_stats.Counter.group;
}

let create inner shadow counters =
  {
    inner;
    shadow;
    live = Hashtbl.create 256;
    quarantine = Queue.create ();
    quarantine_bytes = 0;
    redzone_bytes = 0;
    counters;
  }

let malloc t req =
  if req <= 0 then 0
  else begin
    let inner_req = req + (2 * redzone) in
    let raw = Chex86_os.Allocator.malloc t.inner inner_req in
    if raw = 0 then 0
    else begin
      let user = raw + redzone in
      Shadow.poison t.shadow raw redzone Shadow.Heap_redzone;
      Shadow.unpoison t.shadow user req;
      Shadow.poison t.shadow (user + ((req + 7) land lnot 7)) redzone Shadow.Heap_redzone;
      t.redzone_bytes <- t.redzone_bytes + (2 * redzone);
      Hashtbl.replace t.live user req;
      user
    end
  end

let drain_quarantine t =
  while t.quarantine_bytes > quarantine_cap_bytes && not (Queue.is_empty t.quarantine) do
    let user, size = Queue.pop t.quarantine in
    t.quarantine_bytes <- t.quarantine_bytes - size;
    t.redzone_bytes <- max 0 (t.redzone_bytes - (2 * redzone));
    Chex86_os.Allocator.free t.inner (user - redzone)
  done

let free t p =
  if p = 0 then ()
  else begin
    match Hashtbl.find_opt t.live p with
    | None ->
      if Queue.fold (fun acc (q, _) -> acc || q = p) false t.quarantine then
        raise
          (Chex86.Violation.Security_violation
             (Chex86.Violation.Double_free { pid = 0; addr = p }))
      else
        raise
          (Chex86.Violation.Security_violation
             (Chex86.Violation.Invalid_free { pid = 0; addr = p }))
    | Some size ->
      Hashtbl.remove t.live p;
      Shadow.poison t.shadow p size Shadow.Freed;
      Queue.push (p, size) t.quarantine;
      t.quarantine_bytes <- t.quarantine_bytes + size;
      drain_quarantine t
  end

(* Storage overhead attributable to ASan: redzones + quarantined payloads
   + shadow pages. *)
let storage_bytes t =
  t.redzone_bytes + t.quarantine_bytes + Shadow.storage_bytes t.shadow

let as_runtime t mem : Chex86_os.Process.runtime =
  {
    malloc = malloc t;
    free = free t;
    calloc =
      (fun ~count ~size ->
        let p = malloc t (count * size) in
        if p <> 0 then Chex86_mem.Image.zero_range mem p (count * size);
        p);
    realloc =
      (fun p req ->
        if p = 0 then malloc t req
        else begin
          let old = match Hashtbl.find_opt t.live p with Some s -> s | None -> 0 in
          let q = malloc t req in
          if q <> 0 then begin
            let n = min old req in
            for i = 0 to (n / 8) - 1 do
              Chex86_mem.Image.write64 mem (q + (8 * i))
                (Chex86_mem.Image.read64 mem (p + (8 * i)))
            done;
            free t p
          end;
          q
        end);
  }
