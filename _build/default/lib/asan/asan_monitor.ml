(* AddressSanitizer baseline monitor.

   Models the compiler instrumentation: every load and store micro-op is
   preceded by a three-micro-op software check sequence — shadow address
   computation, shadow byte load (real D-cache traffic in shadow space),
   and compare+branch — which is where ASan's >2x micro-op expansion in
   Fig 6 (bottom) comes from.  The functional check happens at the
   compare micro-op; redzone hits and freed-memory hits are reported
   through the same violation vocabulary as CHEx86 so the harness can
   compare detection head-to-head. *)

open Chex86_isa
module Machine = Chex86_machine
module Os = Chex86_os

type t = {
  shadow : Shadow.t;
  runtime : Runtime.t;
  counters : Chex86_stats.Counter.group;
}

let create ~proc () =
  let counters = proc.Os.Process.counters in
  let shadow = Shadow.create counters in
  let runtime = Runtime.create proc.Os.Process.heap shadow counters in
  (* Interpose the redzone allocator behind the libc stubs. *)
  proc.Os.Process.runtime <- Runtime.as_runtime runtime proc.Os.Process.mem;
  { shadow; runtime; counters }

let storage_bytes t = Runtime.storage_bytes t.runtime

(* Stack and global accesses are checked too (their shadow defaults to
   addressable); only the text segment is exempt, as in ASan. *)
let instrument _t (_ctx : Machine.Hooks.ctx) uops =
  List.concat_map
    (fun uop ->
      match Uop.mem_operand uop with
      | Some (mem, width, is_store) ->
        [
          Uop.Guard { kind = Uop.Shadow_addr_calc; mem; width; is_store };
          Uop.Guard { kind = Uop.Shadow_load; mem; width; is_store };
          Uop.Guard { kind = Uop.Shadow_compare; mem; width; is_store };
          uop;
        ]
      | None -> [ uop ])
    uops

let violation_of_poison ~ea ~is_store = function
  | Shadow.Heap_redzone | Shadow.Partial _ ->
    Chex86.Violation.Out_of_bounds { pid = 0; ea; base = 0; size = 0; is_store }
  | Shadow.Freed -> Chex86.Violation.Use_after_free { pid = 0; ea; is_store }
  | Shadow.Addressable -> assert false

let exec_uop t (_ctx : Machine.Hooks.ctx) (uop : Uop.t) ~ea ~result:_ =
  match uop with
  | Uop.Guard { kind = Uop.Shadow_compare; width; is_store; _ } -> (
    let ea = match ea with Some ea -> ea | None -> 0 in
    Chex86_stats.Counter.incr t.counters "asan.checks";
    match Shadow.check t.shadow ea (Insn.bytes_of_width width) with
    | Ok () -> Machine.Hooks.no_reaction
    | Error reason ->
      raise
        (Chex86.Violation.Security_violation (violation_of_poison ~ea ~is_store reason)))
  | _ -> Machine.Hooks.no_reaction

let install t (hooks : Machine.Hooks.t) =
  hooks.Machine.Hooks.instrument <- instrument t;
  hooks.Machine.Hooks.exec_uop <- exec_uop t

(* Convenience end-to-end runner mirroring Chex86.Sim.run. *)
let run ?(config = Machine.Config.default) ?(max_insns = 50_000_000) ?(timing = true)
    program =
  let proc = Os.Process.load program in
  let hooks = Machine.Hooks.none () in
  let sim = Machine.Simulator.create ~config ~hooks proc in
  let t = create ~proc () in
  install t hooks;
  let result =
    if timing then Machine.Simulator.run ~max_insns sim
    else Machine.Simulator.run_functional ~max_insns sim
  in
  (t, result, proc)
