(* ASan shadow memory model.

   One shadow state per 8-byte granule of application memory, as in
   AddressSanitizer's 1/8 shadow encoding: a granule is fully
   addressable, partially addressable (first k bytes), or poisoned with
   a reason (heap redzone / freed memory).  Shadow pages touched are
   accounted for the Fig 9 storage comparison. *)

type state =
  | Addressable
  | Partial of int  (* first k bytes addressable, 1 <= k <= 7 *)
  | Heap_redzone
  | Freed

type t = {
  granules : (int, state) Hashtbl.t;
  pages : (int, unit) Hashtbl.t;  (* shadow pages touched *)
  counters : Chex86_stats.Counter.group;
}

let create counters = { granules = Hashtbl.create 4096; pages = Hashtbl.create 64; counters }

let granule addr = addr lsr 3

let set_state t addr state =
  let g = granule addr in
  Hashtbl.replace t.pages (g lsr 12) ();
  match state with
  | Addressable -> Hashtbl.remove t.granules g
  | s -> Hashtbl.replace t.granules g s

let state_of t addr =
  match Hashtbl.find_opt t.granules (granule addr) with
  | Some s -> s
  | None -> Addressable

(* Poison [len] bytes starting at [addr] (granule-aligned in practice). *)
let poison t addr len reason =
  let g0 = granule addr and g1 = granule (addr + len - 1) in
  for g = g0 to g1 do
    Hashtbl.replace t.pages (g lsr 12) ();
    Hashtbl.replace t.granules g reason
  done

let unpoison t addr len =
  let g0 = granule addr and g1 = granule (addr + len - 1) in
  for g = g0 to g1 do
    Hashtbl.replace t.pages (g lsr 12) ();
    Hashtbl.remove t.granules g
  done;
  (* Trailing partial granule. *)
  let tail = (addr + len) land 7 in
  if tail <> 0 then Hashtbl.replace t.granules (granule (addr + len)) (Partial tail)

(* Is a [width]-byte access at [addr] fully addressable?  Returns the
   poison reason on failure. *)
let check t addr width =
  let rec go a remaining =
    if remaining <= 0 then Ok ()
    else
      match state_of t a with
      | Addressable -> go ((a lor 7) + 1) (remaining - (8 - (a land 7)))
      | Partial k ->
        let off = a land 7 in
        if off + min remaining (8 - off) <= k then
          go ((a lor 7) + 1) (remaining - (8 - off))
        else Error Heap_redzone
      | (Heap_redzone | Freed) as reason -> Error reason
  in
  go addr width

(* Shadow storage: one byte per granule, rounded to touched 4 KB shadow
   pages (each covering 32 KB of application memory). *)
let storage_bytes t = Hashtbl.length t.pages * 4096
