lib/asan/runtime.ml: Chex86 Chex86_mem Chex86_os Chex86_stats Hashtbl Queue Shadow
