lib/asan/asan_monitor.ml: Chex86 Chex86_isa Chex86_machine Chex86_os Chex86_stats Insn List Runtime Shadow Uop
