lib/asan/runtime.mli: Chex86_mem Chex86_os Chex86_stats Shadow
