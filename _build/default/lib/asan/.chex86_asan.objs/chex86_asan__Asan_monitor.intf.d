lib/asan/asan_monitor.mli: Chex86_isa Chex86_machine Chex86_os
