lib/asan/shadow.ml: Chex86_stats Hashtbl
