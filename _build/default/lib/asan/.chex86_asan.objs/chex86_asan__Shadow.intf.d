lib/asan/shadow.mli: Chex86_stats
