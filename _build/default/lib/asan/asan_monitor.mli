(** AddressSanitizer baseline monitor: 3-micro-op software check
    sequences on every load/store, redzone allocator interposed behind
    the libc stubs. *)

type t

(** Create and interpose the redzone runtime into [proc]. *)
val create : proc:Chex86_os.Process.t -> unit -> t

val storage_bytes : t -> int
val install : t -> Chex86_machine.Hooks.t -> unit

(** End-to-end runner mirroring [Chex86.Sim.run]. *)
val run :
  ?config:Chex86_machine.Config.t ->
  ?max_insns:int ->
  ?timing:bool ->
  Chex86_isa.Program.t ->
  t * Chex86_machine.Simulator.result * Chex86_os.Process.t
