(* Tests for the experiment harness: runner outcomes and memoization,
   and shape assertions on the regenerated tables/figures (the claims
   EXPERIMENTS.md records are enforced here at reduced scale). *)

module Runner = Chex86_harness.Runner
module Experiments = Chex86_harness.Experiments
module W = Chex86_workloads.Workloads
module Counter = Chex86_stats.Counter

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_runner_memoizes () =
  let w = W.find "swaptions" in
  let a = Runner.run_workload ~scale:1 Runner.insecure w in
  let b = Runner.run_workload ~scale:1 Runner.insecure w in
  Alcotest.(check bool) "same run object returned" true (a == b)

let test_runner_config_names () =
  Alcotest.(check string) "asan" "ASan" (Runner.config_name Runner.Asan);
  Alcotest.(check string) "prediction" "CHEx86: Micro-code Prediction Driven"
    (Runner.config_name Runner.prediction)

let test_figure_shapes () =
  (* The paper's qualitative ordering on a pointer-intensive workload:
     ASan inflates uops far beyond CHEx86 prediction, which inflates
     beyond the insecure baseline; cycle counts order the same way. *)
  let w = W.find "freqmine" in
  let base = Runner.run_workload ~scale:1 Runner.insecure w in
  let pred = Runner.run_workload ~scale:1 Runner.prediction w in
  let asan = Runner.run_workload ~scale:1 Runner.Asan w in
  Alcotest.(check bool) "uops: asan > chex" true (asan.Runner.uops > pred.Runner.uops);
  Alcotest.(check bool) "uops: chex > base" true (pred.Runner.uops > base.Runner.uops);
  Alcotest.(check bool) "cycles: asan > chex" true
    (asan.Runner.cycles > pred.Runner.cycles);
  Alcotest.(check bool) "cycles: chex >= base" true
    (pred.Runner.cycles >= base.Runner.cycles);
  (* Fig 9: both protections consume real shadow storage; the insecure
     baseline none.  (The asan-vs-chex ordering depends on footprint and
     is only meaningful at full scale, so it is not asserted here.) *)
  Alcotest.(check bool) "both consume shadow storage" true
    (asan.Runner.shadow_bytes > 0 && pred.Runner.shadow_bytes > 0);
  Alcotest.(check int) "baseline has no shadow storage" 0 base.Runner.shadow_bytes

let test_capability_cache_sensitivity () =
  (* Fig 7: a larger capability cache cannot have a higher miss rate. *)
  let w = W.find "perlbench" in
  let miss (run : Runner.run) =
    Counter.ratio run.Runner.counters ~num:"capcache.miss" ~den:"capcache.hit"
  in
  let small =
    Runner.run_workload ~tag:"t64" ~scale:1
      (Runner.Chex (Chex86.Variant.make ~cap_cache_entries:64 Chex86.Variant.Microcode_prediction))
      w
  and big =
    Runner.run_workload ~tag:"t128" ~scale:1
      (Runner.Chex (Chex86.Variant.make ~cap_cache_entries:128 Chex86.Variant.Microcode_prediction))
      w
  in
  Alcotest.(check bool) "128-entry <= 64-entry miss rate" true (miss big <= miss small)

let test_table2_text () =
  let out = Experiments.table2 () in
  List.iter
    (fun (name, _) ->
      (* Each generated pattern row must classify as itself: the name
         appears at least twice (generator column + classification). *)
      let occurrences =
        let rec count i acc =
          if i + String.length name > String.length out then acc
          else if String.sub out i (String.length name) = name then count (i + 1) (acc + 1)
          else count (i + 1) acc
        in
        count 0 0
      in
      Alcotest.(check bool) (name ^ " classified as itself") true (occurrences >= 2))
    Chex86_workloads.Patterns.all

let test_table3_text () =
  let out = Experiments.table3 () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains ~needle out))
    [ "3.4 GHz"; "224 entries"; "LTAGE"; "72/56 entries"; "4096 entries" ]

let test_table1_text () =
  let out = Experiments.table1 () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains ~needle out))
    [ "MOV"; "LEA"; "MOVI"; "PID(rcx) <- PID(Mem[EA])"; "Agreement" ]

let test_figure1_text () =
  let out = Experiments.figure1 () in
  Alcotest.(check bool) "covers 2006-2018" true
    (contains ~needle:"2006" out && contains ~needle:"2018" out)

(* Every [Runner.outcome] failure path is a reported value, never an
   exception escaping [run_program]. *)
let test_outcome_budget_exhausted () =
  let program =
    let b = Chex86_isa.Asm.create () in
    Chex86_isa.Asm.label b "_start";
    Chex86_isa.Asm.label b "spin";
    Chex86_isa.Asm.emit b (Chex86_isa.Insn.Jmp "spin");
    Chex86_isa.Asm.build b
  in
  let run = Runner.run_program ~timing:false ~max_insns:10_000 Runner.insecure program in
  (match run.Runner.outcome with
  | Runner.Budget_exhausted -> ()
  | _ -> Alcotest.fail "expected Budget_exhausted");
  Alcotest.(check bool) "consumed the whole budget" true (run.Runner.macro_insns >= 10_000)

let test_outcome_faulted () =
  (* An indirect jump to an address far outside the text segment is a
     guest fault (wild *loads* are served zeros by the sparse memory). *)
  let program =
    let b = Chex86_isa.Asm.create () in
    Chex86_isa.Asm.label b "_start";
    Chex86_isa.Asm.emit b (Chex86_isa.Insn.Mov (W64, Reg RAX, Imm 0x7eee_0000));
    Chex86_isa.Asm.emit b (Chex86_isa.Insn.Jmp_reg RAX);
    Chex86_isa.Asm.emit b Chex86_isa.Insn.Halt;
    Chex86_isa.Asm.build b
  in
  let run = Runner.run_program ~timing:false Runner.insecure program in
  match run.Runner.outcome with
  | Runner.Faulted _ -> ()
  | _ -> Alcotest.fail "expected Faulted"

let test_outcome_aborted () =
  (* An allocator-integrity exploit on the *insecure* baseline dies in
     the allocator's own checks: reported as Aborted. *)
  let exploit =
    List.find
      (fun (e : Chex86_exploits.Exploit.t) ->
        e.insecure = Chex86_exploits.Exploit.Allocator_abort)
      Chex86_exploits.Exploits.all
  in
  let run =
    Runner.run_program ~timing:false ~max_insns:2_000_000 Runner.insecure
      (exploit.build ())
  in
  match run.Runner.outcome with
  | Runner.Aborted _ -> ()
  | _ -> Alcotest.fail "expected Aborted"

(* CHEX86_WORKLOADS resolution: unknown names warn-and-ignore by
   default but are an error under --strict. *)
let test_resolve_workloads () =
  let all = W.all in
  let names ws = List.map (fun (w : Chex86_workloads.Bench_spec.t) -> w.name) ws in
  (match Experiments.resolve_workloads ~all "mcf , canneal" with
  | Ok ws -> Alcotest.(check (list string)) "subset picked" [ "mcf"; "canneal" ] (names ws)
  | Error e -> Alcotest.fail e);
  (match Experiments.resolve_workloads ~all "" with
  | Ok ws -> Alcotest.(check int) "empty spec sweeps all" (List.length all) (List.length ws)
  | Error e -> Alcotest.fail e);
  (* Non-strict: unknown names are dropped with a warning. *)
  (match Experiments.resolve_workloads ~all "bogus,mcf" with
  | Ok ws -> Alcotest.(check (list string)) "unknown ignored" [ "mcf" ] (names ws)
  | Error e -> Alcotest.fail e);
  (* Non-strict with no known name left: falls back to all. *)
  (match Experiments.resolve_workloads ~all "bogus" with
  | Ok ws -> Alcotest.(check int) "fallback to all" (List.length all) (List.length ws)
  | Error e -> Alcotest.fail e);
  (* Strict: the same unknown name is a hard error naming the culprit. *)
  (match Experiments.resolve_workloads ~strict:true ~all "bogus,mcf" with
  | Ok _ -> Alcotest.fail "strict resolution should reject unknown names"
  | Error msg ->
    Alcotest.(check bool) "error names the unknown workload" true
      (contains ~needle:"bogus" msg));
  (* Strict with only valid names still succeeds. *)
  match Experiments.resolve_workloads ~strict:true ~all "mcf" with
  | Ok ws -> Alcotest.(check (list string)) "strict ok" [ "mcf" ] (names ws)
  | Error e -> Alcotest.fail e

let test_ablation_tlb_filter () =
  (* The alias-hosting filter can only reduce alias-cache lookups. *)
  let w = W.find "mcf" in
  let lookups (r : Runner.run) =
    Counter.get r.Runner.counters "aliascache.hit"
    + Counter.get r.Runner.counters "aliascache.victim_hit"
    + Counter.get r.Runner.counters "aliascache.miss"
  in
  let on =
    Runner.run_workload ~tag:"abl-tlb-on" ~scale:1
      (Runner.Chex (Chex86.Variant.make Chex86.Variant.Microcode_prediction))
      w
  and off =
    Runner.run_workload ~tag:"abl-tlb-off" ~scale:1
      (Runner.Chex
         (Chex86.Variant.make ~tlb_alias_filter:false Chex86.Variant.Microcode_prediction))
      w
  in
  Alcotest.(check bool) "filter saves lookups" true (lookups on < lookups off);
  Alcotest.(check bool) "filtered events counted" true
    (Counter.get on.Runner.counters "alias.tlb_filtered" > 0);
  (* Detection must be unaffected: both runs complete cleanly. *)
  Alcotest.(check bool) "no false positives either way" true
    (on.Runner.outcome = Runner.Completed && off.Runner.outcome = Runner.Completed)

let test_ablation_scope_reduces_bloat () =
  let w = W.find "canneal" in
  let narrow =
    Chex86.Variant.make
      ~scope:(Chex86.Variant.Ranges [ (Chex86_isa.Program.text_base, Chex86_isa.Program.text_base + 64) ])
      Chex86.Variant.Microcode_prediction
  in
  let scoped = Runner.run_workload ~tag:"abl-scope" ~scale:1 (Runner.Chex narrow) w in
  let full = Runner.run_workload ~scale:1 Runner.prediction w in
  Alcotest.(check bool) "scoped run injects fewer uops" true
    (scoped.Runner.uops_injected < full.Runner.uops_injected)

let test_ablation_victim_cache_helps () =
  let w = W.find "perlbench" in
  let miss (r : Runner.run) =
    let hit = Counter.get r.Runner.counters "aliascache.hit"
    and victim = Counter.get r.Runner.counters "aliascache.victim_hit"
    and m = Counter.get r.Runner.counters "aliascache.miss" in
    float_of_int m /. float_of_int (max 1 (hit + victim + m))
  in
  let with_victim = Runner.run_workload ~tag:"abl-vc-on" ~scale:1 Runner.prediction w
  and without =
    Runner.run_workload ~tag:"abl-vc-off" ~scale:1
      (Runner.Chex
         (Chex86.Variant.make ~alias_victim_entries:0 Chex86.Variant.Microcode_prediction))
      w
  in
  Alcotest.(check bool) "victim cache does not hurt" true
    (miss with_victim <= miss without +. 0.01)

let test_security_summary () =
  (* Full sweep: every exploit of all three suites blocked. *)
  let results = Chex86_harness.Security.sweep Chex86_exploits.Exploits.all in
  List.iter
    (fun suite ->
      let s = Chex86_harness.Security.summarize suite results in
      Alcotest.(check int)
        (Chex86_exploits.Exploit.suite_name suite ^ " all blocked")
        s.Chex86_harness.Security.total s.Chex86_harness.Security.blocked;
      Alcotest.(check int)
        (Chex86_exploits.Exploit.suite_name suite ^ " expected classes")
        s.Chex86_harness.Security.total s.Chex86_harness.Security.expected_class)
    [
      Chex86_exploits.Exploit.Ripe;
      Chex86_exploits.Exploit.Asan_suite;
      Chex86_exploits.Exploit.How2heap;
    ]

let () =
  Alcotest.run "harness"
    [
      ( "runner",
        [
          Alcotest.test_case "memoization" `Quick test_runner_memoizes;
          Alcotest.test_case "config names" `Quick test_runner_config_names;
          Alcotest.test_case "budget exhaustion reported" `Quick
            test_outcome_budget_exhausted;
          Alcotest.test_case "guest fault reported" `Quick test_outcome_faulted;
          Alcotest.test_case "allocator abort reported" `Quick test_outcome_aborted;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "figure shapes" `Slow test_figure_shapes;
          Alcotest.test_case "cap cache sensitivity" `Slow
            test_capability_cache_sensitivity;
          Alcotest.test_case "table1 text" `Quick test_table1_text;
          Alcotest.test_case "table2 text" `Quick test_table2_text;
          Alcotest.test_case "table3 text" `Quick test_table3_text;
          Alcotest.test_case "figure1 text" `Quick test_figure1_text;
          Alcotest.test_case "workload resolution strictness" `Quick
            test_resolve_workloads;
        ] );
      ( "multicore",
        [
          Alcotest.test_case "report shape" `Slow (fun () ->
              let out = Chex86_harness.Multicore.report () in
              List.iter
                (fun needle ->
                  Alcotest.(check bool) ("mentions " ^ needle) true
                    (contains ~needle out))
                [ "Threads"; "Cap invalidations"; "Alias invalidations" ]);
        ] );
      ( "ablations",
        [
          Alcotest.test_case "TLB filter" `Slow test_ablation_tlb_filter;
          Alcotest.test_case "scope reduces bloat" `Slow test_ablation_scope_reduces_bloat;
          Alcotest.test_case "victim cache" `Slow test_ablation_victim_cache_helps;
        ] );
      ("security", [ Alcotest.test_case "all suites blocked" `Slow test_security_summary ]);
    ]
