(* Tests for the structured tracing/metrics layer (Chex86_harness.Trace).

   The load-bearing property is NO PERTURBATION: a traced sweep's merged
   stats must be bit-identical to the untraced run at the same (jobs,
   batch) geometry — tracing observes the sweep, it never participates
   in it.  On top of that: the emitted JSONL must be well-formed (every
   line parses, every end has a matching begin, parents close after
   children — [Trace.summarize_file] validates all three), worker span
   streams must stitch into the supervisor's file over the socket path,
   and the --metrics accumulator must dump the merged totals. *)

module Pool = Chex86_harness.Pool
module Remote = Chex86_harness.Remote
module Trace = Chex86_harness.Trace
module Faultinject = Chex86_harness.Faultinject
module Counter = Chex86_stats.Counter
module Histogram = Chex86_stats.Histogram
module Json = Chex86_stats.Json

let selftest_fn =
  match Remote.find_kind Remote.selftest_kind with
  | Some fn -> fn
  | None -> Alcotest.fail "selftest kind not registered"

let tasks_n n = Array.init n (fun i -> Printf.sprintf "task-%d" i)

let sweep ?retries ~jobs ~batch_size tasks =
  Pool.map_stats_supervised_batched ~jobs ~batch_size ?retries ~key:Fun.id
    (fun key ctx -> selftest_fn ~key ~arg:"8" ctx)
    tasks

let with_trace_file f =
  let path = Filename.temp_file "chex86_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Trace.set_output None;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let counters_list (s : Pool.merged_stats) = Counter.to_list s.Pool.counters

(* Naive substring search; the test stanza has no dependency on Str. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let hists_list (s : Pool.merged_stats) =
  List.map
    (fun (n, h) -> (n, Histogram.snapshot_to_list (Histogram.snapshot h)))
    s.Pool.histograms

(* --- off by default -------------------------------------------------------- *)

let test_off_by_default () =
  Trace.set_output None;
  Alcotest.(check bool) "tracing off" false (Trace.on ());
  Alcotest.(check int) "span_begin returns the null id" 0
    (Trace.span_begin ~stage:"task" [ ("key", "k") ]);
  (* Null-id end is the documented no-op, not an error. *)
  Trace.span_end 0

(* --- no perturbation: traced == untraced, bit for bit ---------------------- *)

(* Same geometry with and without tracing: everything must match,
   including the scheduling-dependent [pool.chunks] (the geometry is
   identical, only the observer differs). *)
let prop_traced_untraced_identical =
  QCheck.Test.make ~count:8 ~name:"traced sweep bit-identical to untraced"
    QCheck.(pair (int_range 1 3) (int_range 1 5))
    (fun (jobs, batch_size) ->
      let tasks = tasks_n 9 in
      Trace.set_output None;
      let ur, ustats, _ = sweep ~jobs ~batch_size tasks in
      let tr, tstats =
        with_trace_file (fun path ->
            Trace.set_output (Some path);
            let tr, tstats, _ = sweep ~jobs ~batch_size tasks in
            (tr, tstats))
      in
      ur = tr
      && counters_list ustats = counters_list tstats
      && hists_list ustats = hists_list tstats)

(* Retries in the picture: the retry instants and per-attempt spans must
   not leak into the merged stats either. *)
let test_traced_untraced_with_retries () =
  let tasks = tasks_n 8 in
  let plan =
    Faultinject.of_list
      [ ("task-2", Faultinject.crash ~attempts:1 ()); ("task-5", Faultinject.crash ()) ]
  in
  let run () =
    Faultinject.arm plan;
    Fun.protect ~finally:Faultinject.disarm (fun () ->
        sweep ~retries:2 ~jobs:2 ~batch_size:3 tasks)
  in
  Trace.set_output None;
  let ur, ustats, ureport = run () in
  with_trace_file (fun path ->
      Trace.set_output (Some path);
      let tr, tstats, treport = run () in
      Trace.set_output None;
      Alcotest.(check bool) "results equal" true (ur = tr);
      Alcotest.(check (list (pair string int)))
        "counters equal" (counters_list ustats) (counters_list tstats);
      Alcotest.(check bool) "histograms equal" true
        (hists_list ustats = hists_list tstats);
      Alcotest.(check int) "same retries used" ureport.Pool.retries_used
        treport.Pool.retries_used;
      (* The trace must have recorded the retry instants. *)
      let lines = read_lines path in
      Alcotest.(check bool) "retry instants present" true
        (List.exists
           (fun l ->
             match Json.of_string l with
             | Ok v ->
               Option.bind (Json.member "stage" v) Json.to_string_opt
               = Some "retry"
             | Error _ -> false)
           lines))

(* --- JSONL well-formedness -------------------------------------------------- *)

let test_jsonl_well_formed () =
  with_trace_file (fun path ->
      Trace.set_output (Some path);
      ignore (sweep ~jobs:3 ~batch_size:2 (tasks_n 10));
      Trace.set_output None;
      let lines = read_lines path in
      Alcotest.(check bool) "trace is non-empty" true (List.length lines > 0);
      List.iter
        (fun line ->
          match Json.of_string line with
          | Error msg -> Alcotest.failf "unparseable line %S: %s" line msg
          | Ok v ->
            List.iter
              (fun field ->
                if Json.member field v = None then
                  Alcotest.failf "line %S missing %S" line field)
              [ "ev"; "t"; "src" ])
        lines;
      (* summarize_file validates the structural contract: every end has
         a begin, parents close after children. *)
      match Trace.summarize_file path with
      | Error msg -> Alcotest.failf "summary rejected a real trace: %s" msg
      | Ok rendered ->
        List.iter
          (fun stage ->
            Alcotest.(check bool)
              (Printf.sprintf "summary mentions %S" stage)
              true (contains rendered stage))
          [ "chunk"; "task"; "main" ])

let write_file path lines =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> List.iter (fun l -> output_string oc (l ^ "\n")) lines)

let test_summary_rejects_malformed () =
  let path = Filename.temp_file "chex86_trace_bad" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* An end without a begin is a structural error. *)
      write_file path [ {|{"ev":"e","id":7,"t":1.0,"src":"main"}|} ];
      (match Trace.summarize_file path with
      | Ok _ -> Alcotest.fail "orphan end accepted"
      | Error _ -> ());
      (* Unparseable JSON mid-stream is an error: only the FINAL line
         may be garbage (a crash can tear exactly one trailing write). *)
      write_file path
        [ "{not json"; {|{"ev":"i","t":1.0,"src":"main","stage":"x"}|} ];
      (match Trace.summarize_file path with
      | Ok _ -> Alcotest.fail "mid-stream parse error accepted"
      | Error _ -> ());
      (* A parent closing before its child is an error. *)
      write_file path
        [
          {|{"ev":"b","id":1,"t":1.0,"src":"main","stage":"chunk"}|};
          {|{"ev":"b","id":2,"par":1,"t":1.1,"src":"main","stage":"task"}|};
          {|{"ev":"e","id":1,"t":1.2,"src":"main"}|};
          {|{"ev":"e","id":2,"t":1.3,"src":"main"}|};
        ];
      (match Trace.summarize_file path with
      | Ok _ -> Alcotest.fail "parent-closed-before-child accepted"
      | Error _ -> ());
      (* An unclosed begin is NOT an error (a killed worker loses its
         tail); it is reported as unclosed. *)
      write_file path [ {|{"ev":"b","id":1,"t":1.0,"src":"main","stage":"task"}|} ];
      (match Trace.summarize_file path with
      | Error msg -> Alcotest.failf "unclosed span rejected: %s" msg
      | Ok rendered ->
        Alcotest.(check bool) "reported unclosed" true (contains rendered "1 unclosed"));
      (* A truncated FINAL line is NOT an error either (a SIGKILL'd
         writer tears at most its last buffered write): the summary
         skips it, reports it, and still renders the valid prefix. *)
      write_file path
        [
          {|{"ev":"b","id":1,"t":1.0,"src":"main","stage":"task"}|};
          {|{"ev":"e","id":1,"t":1.5,"src":"main"}|};
          {|{"ev":"e","id":1,"t":2.|};
        ];
      match Trace.summarize_file path with
      | Error msg -> Alcotest.failf "truncated final line rejected: %s" msg
      | Ok rendered ->
        Alcotest.(check bool) "notes the truncation" true
          (contains rendered "truncated final line");
        Alcotest.(check bool) "valid prefix still summarized" true
          (contains rendered "task"))

(* --- worker-span stitching over the socket path ----------------------------- *)

let worker_exe_for_tests () =
  let dir = Filename.dirname Sys.executable_name in
  let candidate =
    Filename.concat dir (Filename.concat ".." (Filename.concat "bin" "chex86_worker.exe"))
  in
  if Sys.file_exists candidate then Some candidate else None

let test_worker_span_stitching () =
  match worker_exe_for_tests () with
  | None -> Alcotest.skip ()
  | Some _ ->
    with_trace_file (fun path ->
        Trace.set_output (Some path);
        let tasks = tasks_n 8 in
        let _, rstats, report =
          Remote.sweep ~spec:(Remote.Spawn 2) ~batch_size:2
            ~kind:Remote.selftest_kind ~key:Fun.id
            ~arg:(fun _ -> "8")
            tasks
        in
        Trace.set_output None;
        Alcotest.(check int) "no faults" 0 (List.length report.Pool.task_faults);
        Alcotest.(check int) "not degraded" 0
          (Counter.get rstats.Pool.counters "remote.degraded");
        let lines = read_lines path in
        let srcs =
          List.filter_map
            (fun l ->
              match Json.of_string l with
              | Ok v -> Option.bind (Json.member "src" v) Json.to_string_opt
              | Error _ -> None)
            lines
        in
        Alcotest.(check bool) "supervisor events present" true
          (List.mem "main" srcs);
        Alcotest.(check bool) "worker events stitched in" true
          (List.exists (fun s -> String.length s > 1 && s.[0] = 'w') srcs);
        (* Worker task spans carry through with their own chunk parents;
           the merged file must still satisfy the structural contract. *)
        let worker_task_spans =
          List.exists
            (fun l ->
              match Json.of_string l with
              | Ok v ->
                let src = Option.bind (Json.member "src" v) Json.to_string_opt in
                let stage = Option.bind (Json.member "stage" v) Json.to_string_opt in
                (match src with
                | Some s -> String.length s > 1 && s.[0] = 'w' && stage = Some "task"
                | None -> false)
              | Error _ -> false)
            lines
        in
        Alcotest.(check bool) "worker task spans present" true worker_task_spans;
        match Trace.summarize_file path with
        | Error msg -> Alcotest.failf "stitched trace rejected: %s" msg
        | Ok rendered ->
          (* Per-source utilization must list the workers. *)
          Alcotest.(check bool) "summary lists a worker source" true
            (String.split_on_char '\n' rendered
            |> List.exists (fun l ->
                   String.length l > 1 && l.[0] = 'w' && l.[1] >= '0' && l.[1] <= '9')))

(* --- metrics export --------------------------------------------------------- *)

let test_metrics_export () =
  let path = Filename.temp_file "chex86_metrics" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Trace.set_metrics None;
      Trace.reset_metrics_for_tests ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Trace.reset_metrics_for_tests ();
      Trace.set_metrics (Some path);
      let tasks = tasks_n 6 in
      let _, stats, _ = sweep ~jobs:2 ~batch_size:2 tasks in
      Trace.write_metrics ();
      let body = String.concat "\n" (read_lines path) in
      match Json.of_string body with
      | Error msg -> Alcotest.failf "metrics file unparseable: %s" msg
      | Ok v ->
        let counter name =
          Option.bind (Json.member "counters" v) (Json.member name)
          |> Fun.flip Option.bind Json.to_int_opt
        in
        Alcotest.(check (option int))
          "selftest.runs matches merged stats"
          (Some (Counter.get stats.Pool.counters "selftest.runs"))
          (counter "selftest.runs");
        Alcotest.(check (option int))
          "pool.tasks exported" (Some 6) (counter "pool.tasks");
        let draws_n =
          Option.bind (Json.member "histograms" v) (Json.member "selftest.draws")
          |> Fun.flip Option.bind (Json.member "n")
          |> Fun.flip Option.bind Json.to_int_opt
        in
        Alcotest.(check (option int))
          "histogram mass matches merged stats"
          (Some
             (Histogram.count (List.assoc "selftest.draws" stats.Pool.histograms)))
          draws_n)

let () =
  Alcotest.run "trace"
    [
      ( "core",
        [
          Alcotest.test_case "off by default" `Quick test_off_by_default;
          QCheck_alcotest.to_alcotest prop_traced_untraced_identical;
          Alcotest.test_case "traced == untraced with retries" `Quick
            test_traced_untraced_with_retries;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "well-formed" `Quick test_jsonl_well_formed;
          Alcotest.test_case "malformed rejected" `Quick test_summary_rejects_malformed;
        ] );
      ( "remote",
        [
          Alcotest.test_case "worker span stitching" `Quick test_worker_span_stitching;
        ] );
      ( "metrics",
        [ Alcotest.test_case "export" `Quick test_metrics_export ] );
    ]
